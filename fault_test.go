package hierdrl_test

import (
	"math"
	"testing"

	"hierdrl"
)

// faultCfg builds a baseline configuration with exponential crash/repair
// faults aggressive enough that a few-thousand-job run sees multiple crashes.
func faultCfg(m int) hierdrl.Config {
	cfg := hierdrl.RoundRobin(m)
	cfg.Name = "fault-baseline"
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.Faults = hierdrl.FaultExpCrash
	cfg.MTTFSec = 20000
	cfg.MTTRSec = 600
	cfg.Retry = hierdrl.RetryImmediate
	return cfg
}

// faultBits extends the shared summary fingerprint with every fault-facing
// field, so two runs compare bitwise across both the base measurements and
// the robustness telemetry.
func faultBits(s hierdrl.Summary) [14]uint64 {
	base := summaryBits(s)
	return [14]uint64{
		base[0], base[1], base[2], base[3], base[4], base[5], base[6], base[7],
		math.Float64bits(s.Availability),
		math.Float64bits(s.MTTRSec),
		math.Float64bits(s.LostWorkSec),
		uint64(s.Failures)<<32 | uint64(s.Repairs),
		uint64(s.JobsInterrupted),
		uint64(s.JobsRetried)<<32 | uint64(s.JobsLost),
	}
}

// TestFaultInjectionStrict exercises the full crash -> evict -> requeue ->
// complete cycle on the strict tier: with immediate retries every job must
// still finish, and the robustness telemetry must be populated and sane.
func TestFaultInjectionStrict(t *testing.T) {
	cfg := faultCfg(6)
	tr := hierdrl.SyntheticTraceForCluster(3000, 6, 1)

	s, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary

	if s.Completed() != int64(tr.Len()) {
		t.Errorf("completed %d of %d jobs", s.Completed(), tr.Len())
	}
	if sum.Failures == 0 || sum.Repairs == 0 {
		t.Errorf("expected crashes at MTTF=%vs over %vs: failures=%d repairs=%d",
			cfg.MTTFSec, sum.DurationSec, sum.Failures, sum.Repairs)
	}
	if !(sum.Availability > 0 && sum.Availability < 1) {
		t.Errorf("availability %v outside (0, 1)", sum.Availability)
	}
	if !(sum.MTTRSec > 0) {
		t.Errorf("MTTRSec %v, want > 0", sum.MTTRSec)
	}
	if sum.JobsInterrupted == 0 || sum.JobsRetried == 0 {
		t.Errorf("expected interrupted work: interrupted=%d retried=%d",
			sum.JobsInterrupted, sum.JobsRetried)
	}
	if sum.JobsLost != 0 {
		t.Errorf("immediate retry lost %d jobs", sum.JobsLost)
	}
	if !(sum.LostWorkSec > 0) {
		t.Errorf("LostWorkSec %v, want > 0 (evicted jobs had started)", sum.LostWorkSec)
	}
}

// TestFaultReproducibleAcrossRuns is the robustness acceptance test: with
// failure clocks armed, two runs at the same shard count P are bitwise
// identical for every P — the failure schedule is a pure function of
// (seed, serverID), never of goroutine interleaving.
func TestFaultReproducibleAcrossRuns(t *testing.T) {
	cfg := faultCfg(8)
	cfg.Retry = hierdrl.RetryBackoff
	tr := hierdrl.SyntheticTraceForCluster(2000, 8, 1)

	for _, p := range []int{1, 2, 4, 8} {
		var ref [14]uint64
		for run := 0; run < 2; run++ {
			res, err := hierdrl.RunWith(cfg, tr, hierdrl.WithShards(p))
			if err != nil {
				t.Fatalf("P=%d run %d: %v", p, run, err)
			}
			bits := faultBits(res.Summary)
			if run == 0 {
				ref = bits
				if res.Summary.Failures == 0 {
					t.Fatalf("P=%d: no failures injected; test is vacuous", p)
				}
				continue
			}
			if bits != ref {
				t.Errorf("P=%d: runs differ bitwise:\n  run0 %v\n  run1 %v", p, ref, bits)
			}
		}
	}
}

// alwaysDrop is a registry-registered retry policy that refuses every
// requeue, so each interruption becomes a lost job.
type alwaysDrop struct{}

func (alwaysDrop) Name() string { return "always-drop" }
func (alwaysDrop) Retry(now float64, j hierdrl.Job, attempt int) (float64, bool) {
	return 0, false
}

// TestRegisteredRetryPolicy drives the crash path through an externally
// registered policy and checks the loss accounting closes: every ingested
// job either completes or is counted lost, and nothing retries.
func TestRegisteredRetryPolicy(t *testing.T) {
	hierdrl.RegisterRetryPolicy("always-drop", func(cfg *hierdrl.Config) (hierdrl.RetryPolicy, error) {
		return alwaysDrop{}, nil
	})
	cfg := faultCfg(6)
	cfg.Retry = "always-drop"
	tr := hierdrl.SyntheticTraceForCluster(3000, 6, 1)

	for _, p := range []int{1, 4} {
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		res, err := s.Result()
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		sum := res.Summary
		if sum.JobsLost == 0 {
			t.Errorf("P=%d: no jobs lost under always-drop with %d failures", p, sum.Failures)
		}
		if sum.JobsLost != sum.JobsInterrupted {
			t.Errorf("P=%d: lost %d != interrupted %d", p, sum.JobsLost, sum.JobsInterrupted)
		}
		if sum.JobsRetried != 0 {
			t.Errorf("P=%d: retried %d under always-drop", p, sum.JobsRetried)
		}
		if got := s.Completed() + sum.JobsLost; got != s.Ingested() {
			t.Errorf("P=%d: completed %d + lost %d != ingested %d",
				p, s.Completed(), sum.JobsLost, s.Ingested())
		}
		s.Close()
	}
}
