package hierdrl_test

import (
	"math"
	"testing"

	"hierdrl"
)

// faultCfg builds a baseline configuration with exponential crash/repair
// faults aggressive enough that a few-thousand-job run sees multiple crashes.
func faultCfg(m int) hierdrl.Config {
	cfg := hierdrl.RoundRobin(m)
	cfg.Name = "fault-baseline"
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.Faults = hierdrl.FaultExpCrash
	cfg.MTTFSec = 20000
	cfg.MTTRSec = 600
	cfg.Retry = hierdrl.RetryImmediate
	return cfg
}

// faultBits extends the shared summary fingerprint with every fault-facing
// field — including the correlated/fail-slow/drain telemetry — so two runs
// compare bitwise across both the base measurements and the robustness
// telemetry.
func faultBits(s hierdrl.Summary) [17]uint64 {
	base := summaryBits(s)
	return [17]uint64{
		base[0], base[1], base[2], base[3], base[4], base[5], base[6], base[7],
		math.Float64bits(s.Availability),
		math.Float64bits(s.MTTRSec),
		math.Float64bits(s.LostWorkSec),
		uint64(s.Failures)<<32 | uint64(s.Repairs),
		uint64(s.JobsInterrupted),
		uint64(s.JobsRetried)<<32 | uint64(s.JobsLost),
		uint64(s.JobsMigrated)<<32 | uint64(s.Drains),
		uint64(s.DomainOutages),
		math.Float64bits(s.DegradedSec),
	}
}

// TestFaultInjectionStrict exercises the full crash -> evict -> requeue ->
// complete cycle on the strict tier: with immediate retries every job must
// still finish, and the robustness telemetry must be populated and sane.
func TestFaultInjectionStrict(t *testing.T) {
	cfg := faultCfg(6)
	tr := hierdrl.SyntheticTraceForCluster(3000, 6, 1)

	s, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary

	if s.Completed() != int64(tr.Len()) {
		t.Errorf("completed %d of %d jobs", s.Completed(), tr.Len())
	}
	if sum.Failures == 0 || sum.Repairs == 0 {
		t.Errorf("expected crashes at MTTF=%vs over %vs: failures=%d repairs=%d",
			cfg.MTTFSec, sum.DurationSec, sum.Failures, sum.Repairs)
	}
	if !(sum.Availability > 0 && sum.Availability < 1) {
		t.Errorf("availability %v outside (0, 1)", sum.Availability)
	}
	if !(sum.MTTRSec > 0) {
		t.Errorf("MTTRSec %v, want > 0", sum.MTTRSec)
	}
	if sum.JobsInterrupted == 0 || sum.JobsRetried == 0 {
		t.Errorf("expected interrupted work: interrupted=%d retried=%d",
			sum.JobsInterrupted, sum.JobsRetried)
	}
	if sum.JobsLost != 0 {
		t.Errorf("immediate retry lost %d jobs", sum.JobsLost)
	}
	if !(sum.LostWorkSec > 0) {
		t.Errorf("LostWorkSec %v, want > 0 (evicted jobs had started)", sum.LostWorkSec)
	}
}

// TestFaultReproducibleAcrossRuns is the robustness acceptance test: with
// failure clocks armed, two runs at the same shard count P are bitwise
// identical for every P — the failure schedule is a pure function of
// (seed, serverID), never of goroutine interleaving.
func TestFaultReproducibleAcrossRuns(t *testing.T) {
	cfg := faultCfg(8)
	cfg.Retry = hierdrl.RetryBackoff
	tr := hierdrl.SyntheticTraceForCluster(2000, 8, 1)

	for _, p := range []int{1, 2, 4, 8} {
		var ref [17]uint64
		for run := 0; run < 2; run++ {
			res, err := hierdrl.RunWith(cfg, tr, hierdrl.WithShards(p))
			if err != nil {
				t.Fatalf("P=%d run %d: %v", p, run, err)
			}
			bits := faultBits(res.Summary)
			if run == 0 {
				ref = bits
				if res.Summary.Failures == 0 {
					t.Fatalf("P=%d: no failures injected; test is vacuous", p)
				}
				continue
			}
			if bits != ref {
				t.Errorf("P=%d: runs differ bitwise:\n  run0 %v\n  run1 %v", p, ref, bits)
			}
		}
	}
}

// correlatedCfg arms domain-correlated crashes: 4 racks of 2 on 8 servers,
// aggressive enough that whole-rack outages occur within a short run.
func correlatedCfg(m int) hierdrl.Config {
	cfg := faultCfg(m)
	cfg.Name = "fault-correlated"
	cfg.Faults = hierdrl.FaultCorrelatedCrash
	cfg.Domains = hierdrl.EqualDomains(m/2, m)
	cfg.Retry = hierdrl.RetryBackoff
	return cfg
}

// degradeCfg arms fail-slow degradation (no eviction, just slow servers).
func degradeCfg(m int) hierdrl.Config {
	cfg := faultCfg(m)
	cfg.Name = "fault-degrade"
	cfg.Faults = hierdrl.FaultDegrade
	cfg.DegradeFactor = 0.25
	cfg.MTTFSec = 8000
	cfg.MTTRSec = 2000
	return cfg
}

// drainCfg arms rolling maintenance windows frequent enough that several
// servers drain during a short run; pack-fit concentrates queues so drains
// actually find queued jobs to migrate.
func drainCfg(m int) hierdrl.Config {
	cfg := faultCfg(m)
	cfg.Name = "fault-drain"
	cfg.Alloc = hierdrl.AllocPackFit
	cfg.Faults = hierdrl.FaultDrain
	cfg.DrainEverySec = 6000
	cfg.DrainWindowSec = 400
	cfg.Retry = hierdrl.RetryImmediate
	return cfg
}

// TestNewFaultModelsReproducibleAcrossRuns extends the robustness acceptance
// test to the three topology-aware fault classes: for each of
// correlated-crash, degrade, and maintenance-drain, two runs at every shard
// count P are bitwise identical, and each model's distinctive telemetry is
// actually exercised (the runs are not vacuous).
func TestNewFaultModelsReproducibleAcrossRuns(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(2000, 8, 1)
	cases := []struct {
		name  string
		cfg   hierdrl.Config
		check func(t *testing.T, p int, s hierdrl.Summary)
	}{
		{"correlated-crash", correlatedCfg(8), func(t *testing.T, p int, s hierdrl.Summary) {
			if s.Failures == 0 {
				t.Fatalf("P=%d: no correlated crashes injected; test is vacuous", p)
			}
			if s.DomainOutages == 0 {
				t.Errorf("P=%d: correlated crashes produced no whole-domain outages", p)
			}
		}},
		{"degrade", degradeCfg(8), func(t *testing.T, p int, s hierdrl.Summary) {
			if s.Failures == 0 {
				t.Fatalf("P=%d: no degrade windows opened; test is vacuous", p)
			}
			if !(s.DegradedSec > 0) {
				t.Errorf("P=%d: DegradedSec %v, want > 0", p, s.DegradedSec)
			}
			if s.JobsInterrupted != 0 || s.JobsLost != 0 || s.LostWorkSec != 0 {
				t.Errorf("P=%d: fail-slow must not evict: interrupted=%d lost=%d lostWork=%v",
					p, s.JobsInterrupted, s.JobsLost, s.LostWorkSec)
			}
		}},
		{"maintenance-drain", drainCfg(8), func(t *testing.T, p int, s hierdrl.Summary) {
			if s.Drains == 0 {
				t.Fatalf("P=%d: no maintenance windows opened; test is vacuous", p)
			}
			if s.JobsInterrupted != 0 {
				t.Errorf("P=%d: planned drains interrupted %d running jobs", p, s.JobsInterrupted)
			}
			if s.JobsMigrated < 0 || s.JobsLost != 0 {
				t.Errorf("P=%d: migrated=%d lost=%d", p, s.JobsMigrated, s.JobsLost)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range []int{1, 2, 4, 8} {
				var ref [17]uint64
				for run := 0; run < 2; run++ {
					res, err := hierdrl.RunWith(tc.cfg, tr, hierdrl.WithShards(p))
					if err != nil {
						t.Fatalf("P=%d run %d: %v", p, run, err)
					}
					bits := faultBits(res.Summary)
					if run == 0 {
						ref = bits
						tc.check(t, p, res.Summary)
						continue
					}
					if bits != ref {
						t.Errorf("P=%d: runs differ bitwise:\n  run0 %v\n  run1 %v", p, ref, bits)
					}
				}
			}
		})
	}
}

// TestMaintenanceDrainMigratesQueue forces queued work onto draining servers
// (pack-fit concentrates load, short drain period) and checks the graceful
// path end to end: queued jobs migrate rather than being interrupted, every
// job still completes, and the migrated/interrupted split stays disjoint.
func TestMaintenanceDrainMigratesQueue(t *testing.T) {
	cfg := drainCfg(4)
	cfg.DrainEverySec = 3000
	tr := hierdrl.SyntheticTraceForCluster(4000, 3, 1) // overload 4 servers with a 3-server rate

	s, err := hierdrl.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if s.Completed() != int64(tr.Len()) {
		t.Errorf("completed %d of %d jobs", s.Completed(), tr.Len())
	}
	if sum.Drains == 0 {
		t.Fatal("no maintenance windows opened; test is vacuous")
	}
	if sum.JobsMigrated == 0 {
		t.Errorf("overloaded drain run migrated no queued jobs (drains=%d)", sum.Drains)
	}
	if sum.JobsInterrupted != 0 {
		t.Errorf("drains interrupted %d running jobs; planned maintenance must let them finish",
			sum.JobsInterrupted)
	}
	if sum.JobsLost != 0 || sum.LostWorkSec != 0 {
		t.Errorf("graceful drain lost jobs/work: lost=%d lostWork=%v", sum.JobsLost, sum.LostWorkSec)
	}
	if !(sum.Availability > 0 && sum.Availability < 1) {
		t.Errorf("availability %v outside (0, 1) despite %d drains", sum.Availability, sum.Drains)
	}
}

// TestDegradeStretchesLatency pins the fail-slow semantics against a
// fault-free control: identical workload and policy, so any latency growth
// is attributable to degraded service speed — and the fault-free run must
// report zero extended-fault telemetry.
func TestDegradeStretchesLatency(t *testing.T) {
	tr := hierdrl.SyntheticTraceForCluster(3000, 6, 1)
	base := faultCfg(6)
	base.Faults = hierdrl.FaultNone

	ctl, err := hierdrl.Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := hierdrl.Run(degradeCfg(6), tr)
	if err != nil {
		t.Fatal(err)
	}
	c, d := ctl.Summary, deg.Summary
	if c.DegradedSec != 0 || c.JobsMigrated != 0 || c.DomainOutages != 0 || c.Drains != 0 {
		t.Errorf("fault-free run reports fault telemetry: %+v", c)
	}
	if !(d.DegradedSec > 0) {
		t.Fatalf("DegradedSec %v, want > 0", d.DegradedSec)
	}
	if !(d.AccLatencySec > c.AccLatencySec) {
		t.Errorf("degraded run accumulated less latency than the control: %v <= %v",
			d.AccLatencySec, c.AccLatencySec)
	}
	if d.Availability != 1 {
		t.Errorf("fail-slow availability %v, want exactly 1 (servers never leave service)",
			d.Availability)
	}
}

// alwaysDrop is a registry-registered retry policy that refuses every
// requeue, so each interruption becomes a lost job.
type alwaysDrop struct{}

func (alwaysDrop) Name() string { return "always-drop" }
func (alwaysDrop) Retry(now float64, j hierdrl.Job, attempt int) (float64, bool) {
	return 0, false
}

// TestRegisteredRetryPolicy drives the crash path through an externally
// registered policy and checks the loss accounting closes: every ingested
// job either completes or is counted lost, and nothing retries.
func TestRegisteredRetryPolicy(t *testing.T) {
	hierdrl.RegisterRetryPolicy("always-drop", func(cfg *hierdrl.Config) (hierdrl.RetryPolicy, error) {
		return alwaysDrop{}, nil
	})
	cfg := faultCfg(6)
	cfg.Retry = "always-drop"
	tr := hierdrl.SyntheticTraceForCluster(3000, 6, 1)

	for _, p := range []int{1, 4} {
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		res, err := s.Result()
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		sum := res.Summary
		if sum.JobsLost == 0 {
			t.Errorf("P=%d: no jobs lost under always-drop with %d failures", p, sum.Failures)
		}
		if sum.JobsLost != sum.JobsInterrupted {
			t.Errorf("P=%d: lost %d != interrupted %d", p, sum.JobsLost, sum.JobsInterrupted)
		}
		if sum.JobsRetried != 0 {
			t.Errorf("P=%d: retried %d under always-drop", p, sum.JobsRetried)
		}
		if got := s.Completed() + sum.JobsLost; got != s.Ingested() {
			t.Errorf("P=%d: completed %d + lost %d != ingested %d",
				p, s.Completed(), sum.JobsLost, s.Ingested())
		}
		s.Close()
	}
}

// TestDRLDispatchMonotoneUnderFaultRequeues pins the sharded engine's
// monotone-decision clamp. A drain (or crash) can hand back several queued
// jobs at one instant t0 while an arrival at t1 > t0 is already allocated
// but not yet committed; the first migrated job then dispatches at t1 and
// the next would — without the clamp — dispatch back at its nominal t0,
// driving the DRL reward integrator backwards (panic: "time went
// backwards"). The DRL allocator over the fixed-timeout tier with a short
// staggered drain reproduces that interleaving at P >= 2; the same config
// must also stay bitwise reproducible run to run.
func TestDRLDispatchMonotoneUnderFaultRequeues(t *testing.T) {
	mkCfg := func() hierdrl.Config {
		cfg := hierdrl.FixedTimeoutBaseline(16, 60)
		cfg.Seed = 1
		cfg.Faults = hierdrl.FaultDrain
		cfg.DrainEverySec = 7200
		cfg.DrainWindowSec = 300
		cfg.Retry = hierdrl.RetryImmediate
		return cfg
	}
	tr := hierdrl.SyntheticTraceForCluster(3000, 16, 1)
	for _, p := range []int{2, 4} {
		var ref [17]uint64
		for run := 0; run < 2; run++ {
			res, err := hierdrl.RunWith(mkCfg(), tr, hierdrl.WithShards(p))
			if err != nil {
				t.Fatalf("P=%d run %d: %v", p, run, err)
			}
			if res.Summary.Drains == 0 {
				t.Fatalf("P=%d: no drains fired; test is vacuous", p)
			}
			bits := faultBits(res.Summary)
			if run == 0 {
				ref = bits
			} else if bits != ref {
				t.Errorf("P=%d: run %d summary diverged:\n  run0 %v\n  run%d %v", p, run, ref, run, bits)
			}
		}
	}
}
