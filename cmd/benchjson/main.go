// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for machine tracking of the perf trajectory across
// PRs. The raw benchmark lines are preserved verbatim under "raw", so the
// file stays benchstat-compatible: extract that array (one line each) and
// feed it to benchstat directly.
//
//	go test -run=NONE -bench=. -benchmem | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	// Sim mirrors the event-engine benchmarks (also present in Benchmarks)
	// under their own key, so the simulation substrate's perf trajectory is
	// separately machine-readable across PRs.
	Sim []Benchmark `json:"sim,omitempty"`
	Raw []string    `json:"raw"`
}

// simBenchmarks are the benchmark name prefixes that make up the "sim"
// section: the discrete-event engine, the cluster observation path, and the
// end-to-end decision epoch it feeds.
var simBenchmarks = []string{
	"BenchmarkEventLoop",
	"BenchmarkSimulatorEvents",
	"BenchmarkSnapshot",
	"BenchmarkAllocateEpoch",
}

func isSimBenchmark(name string) bool {
	for _, p := range simBenchmarks {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	out := Output{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"),
			strings.HasPrefix(trimmed, "goarch:"),
			strings.HasPrefix(trimmed, "pkg:"),
			strings.HasPrefix(trimmed, "cpu:"):
			out.Raw = append(out.Raw, line)
			parts := strings.SplitN(trimmed, ":", 2)
			out.Context[parts[0]] = strings.TrimSpace(parts[1])
		case strings.HasPrefix(trimmed, "Benchmark"):
			out.Raw = append(out.Raw, line)
			if b, ok := parseBench(trimmed); ok {
				out.Benchmarks = append(out.Benchmarks, b)
				if isSimBenchmark(b.Name) {
					out.Sim = append(out.Sim, b)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses "BenchmarkName-8  10  123 ns/op  4 B/op  2 allocs/op
// 1.5 some_metric" into a Benchmark.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
