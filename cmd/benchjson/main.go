// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for machine tracking of the perf trajectory across
// PRs. The raw benchmark lines are preserved verbatim under "raw", so the
// file stays benchstat-compatible: extract that array (one line each) and
// feed it to benchstat directly.
//
//	go test -run=NONE -bench=. -benchmem | benchjson > BENCH.json
//
// Besides BENCH_kernels.json, the Makefile uses it to record
// BENCH_table1.json (the end-to-end Table I benchmark's ns/op, allocs/op
// and bytes, under its own "table1" section). cmd/benchguard compares fresh
// runs against these committed baselines in CI.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hierdrl/internal/benchfmt"
)

// Output is the whole document.
type Output struct {
	Context    map[string]string    `json:"context"`
	Benchmarks []benchfmt.Benchmark `json:"benchmarks"`
	// Sim mirrors the event-engine benchmarks (also present in Benchmarks)
	// under their own key, so the simulation substrate's perf trajectory is
	// separately machine-readable across PRs.
	Sim []benchfmt.Benchmark `json:"sim,omitempty"`
	// Table1 mirrors the end-to-end experiment benchmarks (BenchmarkTable1_*)
	// the same way: the headline "one full run" cost per PR.
	Table1 []benchfmt.Benchmark `json:"table1,omitempty"`
	// Telemetry mirrors the observability hot-path benchmarks (t-digest
	// add/merge, epoch-span record): the per-job overhead budget of the live
	// telemetry subsystem, gated like any other kernel.
	Telemetry []benchfmt.Benchmark `json:"telemetry,omitempty"`
	Raw       []string             `json:"raw"`
}

// simBenchmarks are the benchmark name prefixes that make up the "sim"
// section: the discrete-event engine, the cluster observation path, and the
// end-to-end decision epoch it feeds.
var simBenchmarks = []string{
	"BenchmarkEventLoop",
	"BenchmarkSimulatorEvents",
	"BenchmarkSnapshot",
	"BenchmarkAllocateEpoch",
}

// telemetryBenchmarks are the benchmark name prefixes that make up the
// "telemetry" section: the mergeable-sketch and epoch-trace hot paths.
var telemetryBenchmarks = []string{
	"BenchmarkTDigest",
	"BenchmarkEpochSpan",
}

func hasPrefixAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	out := Output{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := benchfmt.ContextLine(line); ok {
			out.Raw = append(out.Raw, line)
			out.Context[k] = v
			continue
		}
		if b, ok := benchfmt.ParseLine(line); ok {
			out.Raw = append(out.Raw, line)
			out.Benchmarks = append(out.Benchmarks, b)
			if hasPrefixAny(b.Name, simBenchmarks) {
				out.Sim = append(out.Sim, b)
			}
			if strings.HasPrefix(b.Name, "BenchmarkTable1_") {
				out.Table1 = append(out.Table1, b)
			}
			if hasPrefixAny(b.Name, telemetryBenchmarks) {
				out.Telemetry = append(out.Telemetry, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
