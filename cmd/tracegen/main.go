// Command tracegen generates synthetic Google-style workload traces in the
// canonical CSV format ("arrival,duration,cpu,mem,disk").
//
// Usage:
//
//	tracegen -jobs 95000 -servers 30 -seed 1 -out trace.csv
//
// Omitting -out writes to stdout. The -servers flag scales the arrival rate
// so the offered load matches the paper's 30-server operating point on a
// cluster of that size.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hierdrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	jobs := flag.Int("jobs", 95000, "number of jobs to generate")
	servers := flag.Int("servers", 30, "cluster size the workload is calibrated for")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print workload statistics to stderr")
	flag.Parse()

	if *jobs <= 0 || *servers <= 0 {
		log.Fatal("-jobs and -servers must be positive")
	}

	tr := hierdrl.SyntheticTraceForCluster(*jobs, *servers, *seed)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := hierdrl.WriteTraceCSV(w, tr); err != nil {
		log.Fatalf("write trace: %v", err)
	}
	if *stats {
		s := hierdrl.TraceStatsOf(tr)
		fmt.Fprintf(os.Stderr,
			"jobs=%d span=%.0fs meanGap=%.2fs meanDur=%.0fs p95Dur=%.0fs meanCPU=%.3f offeredCPU=%.2f servers\n",
			s.Jobs, s.Span, s.MeanInterArrive, s.MeanDuration, s.P95Duration,
			s.MeanReq[0], s.OfferedLoad[0])
	}
}
