// Command tracegen generates synthetic Google-style workload traces in the
// canonical CSV format ("arrival,duration,cpu,mem,disk").
//
// Usage:
//
//	tracegen -jobs 95000 -servers 30 -seed 1 -out trace.csv
//	tracegen -preset scale-10k -out scale.csv
//	tracegen -scenario flashcrowd -out flash.csv
//	tracegen -scenario heavytail -servers 60 -jobs 40000 | hiersim -stream -servers 60
//
// Omitting -out writes to stdout. The -servers flag scales the arrival rate
// so the offered load matches the paper's 30-server operating point on a
// cluster of that size. The scale-10k preset emits the sharded engine's
// benchmark workload (2,000,000 jobs calibrated for 10,000 servers) through
// the streaming generator, so it writes in constant memory. -scenario writes
// a registered workload scenario's job stream (see hiersim -list), also in
// constant memory; -servers/-jobs rescale the scenario when set explicitly,
// and replaying the CSV reproduces a hiersim -scenario run bit for bit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"hierdrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	jobs := flag.Int("jobs", 95000, "number of jobs to generate")
	servers := flag.Int("servers", 30, "cluster size the workload is calibrated for")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print workload statistics to stderr")
	preset := flag.String("preset", "", `workload preset: "scale-10k" = 2,000,000 jobs calibrated for 10,000 servers, written streaming (overrides -jobs/-servers unless set explicitly)`)
	scenario := flag.String("scenario", "",
		"write a registered workload scenario's job stream (see hiersim -list); -servers/-jobs rescale it when set explicitly")
	flag.Parse()

	if *scenario != "" && *preset != "" {
		log.Fatal("-scenario and -preset both pick a workload; use one")
	}
	switch *preset {
	case "":
	case "scale-10k":
		if !flagWasSet("servers") {
			*servers = hierdrl.ScaleM
		}
		if !flagWasSet("jobs") {
			*jobs = hierdrl.ScaleJobs
		}
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *jobs <= 0 || *servers <= 0 {
		log.Fatal("-jobs and -servers must be positive")
	}

	var tr *hierdrl.Trace
	if *preset == "" && *scenario == "" {
		tr = hierdrl.SyntheticTraceForCluster(*jobs, *servers, *seed)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	if tr != nil {
		if err := hierdrl.WriteTraceCSV(w, tr); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		if *stats {
			s := hierdrl.TraceStatsOf(tr)
			fmt.Fprintf(os.Stderr,
				"jobs=%d span=%.0fs meanGap=%.2fs meanDur=%.0fs p95Dur=%.0fs meanCPU=%.3f offeredCPU=%.2f servers\n",
				s.Jobs, s.Span, s.MeanInterArrive, s.MeanDuration, s.P95Duration,
				s.MeanReq[0], s.OfferedLoad[0])
		}
		return
	}

	// Preset/scenario mode: pull from the incremental generator and write rows
	// as they are produced, tracking summary stats inline — a 2M-job trace
	// never exists in memory.
	var src hierdrl.JobSource
	if *scenario != "" {
		sc, ok := hierdrl.LookupScenario(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q; registered: %s",
				*scenario, strings.Join(hierdrl.Scenarios(), " "))
		}
		m, j := 0, 0
		if flagWasSet("servers") {
			m = *servers
		}
		if flagWasSet("jobs") {
			j = *jobs
		}
		var err error
		src, err = sc.Scaled(m, j).Source(*seed)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
	} else {
		var err error
		src, err = hierdrl.ScaleStream(*jobs, *servers, *seed)
		if err != nil {
			log.Fatalf("generator: %v", err)
		}
	}
	var n int
	var span, durSum, cpuSum float64
	if err := hierdrl.WriteTraceCSVStream(w, func() (hierdrl.Job, bool) {
		j, ok := src.Next()
		if ok {
			n++
			span = j.Arrival
			durSum += j.Duration
			cpuSum += j.Req[0]
		}
		return j, ok
	}); err != nil {
		log.Fatalf("write trace: %v", err)
	}
	if *stats && n > 0 {
		meanGap := 0.0
		if n > 1 {
			meanGap = span / float64(n-1) // same definition as trace.Stats
		}
		fmt.Fprintf(os.Stderr, "jobs=%d span=%.0fs meanGap=%.2fs meanDur=%.0fs meanCPU=%.3f\n",
			n, span, meanGap, durSum/float64(n), cpuSum/float64(n))
	}
}

// flagWasSet reports whether the named flag was passed explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
