// Command benchguard is the CI perf-regression gate: it reads a fresh
// `go test -bench -benchmem` run from stdin and compares it against the
// committed BENCH_*.json baselines (written by cmd/benchjson).
//
//	go test -run=NONE -bench='...' -benchmem . | benchguard BENCH_kernels.json BENCH_table1.json
//
// Rules:
//
//   - An allocs/op increase on any benchmark present in both runs fails —
//     allocation counts are near-deterministic, so growth is a real
//     regression regardless of the machine. Micro-benchmarks (baseline
//     under 1000 allocs/op) are gated exactly; end-to-end benchmarks get a
//     0.1% slack because concurrent runners contribute ±1-in-100k
//     scheduling jitter. The baseline aggregates -count>1 samples by max.
//   - A ns/op regression beyond -time-tol (default 15%) fails only when the
//     fresh run's "cpu:" context matches the baseline's; across different
//     machines wall-time comparison is noise, so it is reported as a warning
//     instead.
//   - Samples from -count>1 (baseline and fresh run alike) aggregate by
//     median (time) and maximum (allocs) before judging.
//
// Exit status: 0 clean, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hierdrl/internal/benchfmt"
)

// baseline is the subset of cmd/benchjson's output benchguard consumes.
type baseline struct {
	Context    map[string]string    `json:"context"`
	Benchmarks []benchfmt.Benchmark `json:"benchmarks"`
}

// entry aggregates one benchmark's baseline samples.
type entry struct {
	ns     []float64
	allocs float64
	hasAll bool
	cpu    string
}

func main() {
	timeTol := flag.Float64("time-tol", 0.15, "allowed fractional ns/op regression on a matching cpu")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: usage: go test -bench ... | benchguard BASELINE.json...")
		os.Exit(2)
	}

	base := map[string]*entry{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		var b baseline
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, bm := range b.Benchmarks {
			name := benchfmt.NormalizeName(bm.Name)
			e := base[name]
			if e == nil {
				e = &entry{allocs: -1, cpu: b.Context["cpu"]}
				base[name] = e
			}
			e.ns = append(e.ns, bm.NsPerOp)
			if bm.AllocsPerOp != nil {
				if !e.hasAll || *bm.AllocsPerOp > e.allocs {
					e.allocs = *bm.AllocsPerOp
					e.hasAll = true
				}
			}
		}
	}

	// Collect the whole fresh run first: repeated samples (-count>1)
	// aggregate by median time / max allocs before judging, which keeps the
	// 15% gate meaningful for microsecond benchmarks.
	freshCPU := ""
	fresh := map[string]*entry{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the run through so CI logs keep the raw numbers
		if k, v, ok := benchfmt.ContextLine(line); ok && k == "cpu" {
			freshCPU = v
			continue
		}
		bm, ok := benchfmt.ParseLine(line)
		if !ok {
			continue
		}
		name := benchfmt.NormalizeName(bm.Name)
		e := fresh[name]
		if e == nil {
			e = &entry{allocs: -1}
			fresh[name] = e
			order = append(order, name)
		}
		e.ns = append(e.ns, bm.NsPerOp)
		if bm.AllocsPerOp != nil {
			if !e.hasAll || *bm.AllocsPerOp > e.allocs {
				e.allocs = *bm.AllocsPerOp
				e.hasAll = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failed := false
	compared := 0
	for _, name := range order {
		f := fresh[name]
		e := base[name]
		if e == nil {
			fmt.Printf("benchguard: %-40s (no baseline, skipped)\n", name)
			continue
		}
		compared++
		if e.hasAll && f.hasAll {
			limit := e.allocs
			if limit >= 1000 {
				limit *= 1.001 // end-to-end runs: absorb ±1-in-100k scheduling jitter
			}
			if f.allocs > limit {
				fmt.Printf("benchguard: FAIL %-35s allocs/op %v > baseline %v\n", name, f.allocs, e.allocs)
				failed = true
			}
		}
		baseNs := median(e.ns)
		if baseNs <= 0 {
			continue
		}
		ratio := median(f.ns)/baseNs - 1
		switch {
		case ratio <= *timeTol:
			fmt.Printf("benchguard: ok   %-35s %+6.1f%% time vs baseline\n", name, 100*ratio)
		case freshCPU != "" && freshCPU == e.cpu:
			fmt.Printf("benchguard: FAIL %-35s %+6.1f%% time vs baseline (> %0.f%%, same cpu)\n",
				name, 100*ratio, 100**timeTol)
			failed = true
		default:
			fmt.Printf("benchguard: warn %-35s %+6.1f%% time vs baseline (different cpu %q vs %q — not gating)\n",
				name, 100*ratio, freshCPU, e.cpu)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark overlapped a baseline — wrong -bench filter?")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks within budget\n", compared)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
