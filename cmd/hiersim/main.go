// Command hiersim runs one cloud resource-allocation and power-management
// configuration end to end and prints the summary (and optionally the
// accumulated latency/energy series).
//
// Usage:
//
//	hiersim -system hierarchical -servers 30 -jobs 95000
//	hiersim -system round-robin -servers 40 -jobs 20000 -series
//	hiersim -system fixed-timeout -timeout 60 -trace mytrace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hierdrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hiersim: ")

	system := flag.String("system", "hierarchical",
		"system to run: round-robin | drl-only | hierarchical | fixed-timeout")
	servers := flag.Int("servers", 30, "cluster size M")
	jobs := flag.Int("jobs", 95000, "synthetic workload length (ignored with -trace)")
	warmup := flag.Int("warmup", 20000, "offline-phase rollout length for DRL systems")
	timeout := flag.Float64("timeout", 60, "fixed timeout seconds (system=fixed-timeout)")
	seed := flag.Int64("seed", 1, "random seed")
	traceFile := flag.String("trace", "", "CSV trace to replay instead of a synthetic workload")
	series := flag.Bool("series", false, "print the accumulated latency/energy series")
	predictor := flag.String("predictor", "lstm",
		"workload predictor for the hierarchical local tier: lstm | ewma | last-value | window-mean")
	flag.Parse()

	var cfg hierdrl.Config
	switch *system {
	case "round-robin":
		cfg = hierdrl.RoundRobin(*servers)
	case "drl-only":
		cfg = hierdrl.DRLOnly(*servers)
	case "hierarchical":
		cfg = hierdrl.Hierarchical(*servers)
		cfg.Predictor = hierdrl.PredictorKind(*predictor)
	case "fixed-timeout":
		cfg = hierdrl.FixedTimeoutBaseline(*servers, *timeout)
	default:
		log.Fatalf("unknown system %q", *system)
	}
	cfg.Seed = *seed
	if *series {
		cfg.CheckpointEvery = max(1, *jobs/20)
	}

	var tr *hierdrl.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("open trace: %v", err)
		}
		tr, err = hierdrl.ReadTraceCSV(f)
		cerr := f.Close()
		if err != nil {
			log.Fatalf("parse trace: %v", err)
		}
		if cerr != nil {
			log.Fatalf("close trace: %v", cerr)
		}
	} else {
		tr = hierdrl.SyntheticTraceForCluster(*jobs, *servers, *seed)
	}
	if cfg.Alloc == hierdrl.AllocDRL && *warmup > 0 {
		cfg.WarmupTrace = hierdrl.SyntheticTraceForCluster(*warmup, *servers, *seed+1000)
	}

	res, err := hierdrl.Run(cfg, tr)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	s := res.Summary
	fmt.Printf("system            %s\n", s.Policy)
	fmt.Printf("servers           %d\n", s.M)
	fmt.Printf("jobs              %d\n", s.Jobs)
	fmt.Printf("simulated span    %.0f s (%.2f days)\n", s.DurationSec, s.DurationSec/86400)
	fmt.Printf("energy            %.2f kWh\n", s.EnergykWh)
	fmt.Printf("acc latency       %.2f x10^6 s\n", s.AccLatencySec/1e6)
	fmt.Printf("avg power         %.2f W\n", s.AvgPowerW)
	fmt.Printf("avg latency       %.1f s\n", s.AvgLatencySec)
	fmt.Printf("p95 latency       %.1f s\n", s.P95LatencySec)
	fmt.Printf("mean wait         %.1f s\n", s.MeanWaitSec)
	fmt.Printf("wakeups/shutdowns %d / %d\n", res.TotalWakeups, res.TotalShutdowns)
	if res.AgentDiag != "" {
		fmt.Printf("agent             %s\n", res.AgentDiag)
	}
	if *series {
		fmt.Println("\njobs,time_s,acc_latency_s,energy_kwh")
		for _, cp := range res.Checkpoints {
			fmt.Printf("%d,%.0f,%.0f,%.4f\n",
				cp.Jobs, cp.Time.Seconds(), cp.AccLatencySec, cp.EnergykWh)
		}
	}
}
