// Command hiersim runs one cloud resource-allocation and power-management
// configuration end to end and prints the summary (and optionally the
// accumulated latency/energy series).
//
// Usage:
//
//	hiersim -system hierarchical -servers 30 -jobs 95000
//	hiersim -system round-robin -servers 40 -jobs 20000 -series
//	hiersim -system fixed-timeout -timeout 60 -trace mytrace.csv
//	hiersim -system scale-10k -shards 8
//	hiersim -system round-robin -faults exp-crash -mttf 20000 -mttr 600 -retry backoff
//	hiersim -system round-robin -faults correlated-crash -domains 4 -mttf 40000
//	hiersim -system hierarchical -faults degrade -degrade-factor 0.3
//	hiersim -system fixed-timeout -faults maintenance-drain -drain-every 7200 -drain-window 300
//	hiersim -system hierarchical -servers 30 -checkpoint run.ckpt -checkpoint-every 500
//	hiersim -resume run.ckpt
//	hiersim -list
//	hiersim -scenario flashcrowd
//	hiersim -scenario mixed-het -system hierarchical -servers 60 -jobs 40000 -shards 4
//
// -list prints every registered allocator, power manager, predictor, fault
// model, retry policy, and workload scenario, then exits. -scenario runs a
// registered scenario (cluster layout plus streamed workload); -servers and
// -jobs rescale it when set explicitly, and -system picks the policy stack
// (default fixed-timeout, the cheap non-learning baseline).
//
// The scale-10k system is the multi-core single-run preset: 10,000 servers,
// 2M jobs streamed from the generator, least-loaded dispatch over the
// RL/LSTM local tier. -shards P partitions the cluster into P event lanes
// stepped on P cores (the parallel tier; see DESIGN.md §12).
//
// Streaming mode ingests jobs from stdin line by line through the Session
// API ("arrival,duration,cpu,mem,disk" CSV rows, header optional), advances
// the simulated clock as arrivals come in, and prints a live Snapshot
// summary every -snap-every jobs:
//
//	tracegen -jobs 20000 | hiersim -stream -system hierarchical -servers 30
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hierdrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hiersim: ")

	system := flag.String("system", "hierarchical",
		"system to run: round-robin | drl-only | hierarchical | fixed-timeout | scale-10k")
	servers := flag.Int("servers", 30, "cluster size M (scale-10k default: 10000)")
	jobs := flag.Int("jobs", 95000, "synthetic workload length (ignored with -trace/-stream; scale-10k default: 2000000)")
	shards := flag.Int("shards", 1,
		"event-lane shards P: 1 = strict single-core tier, >= 2 = parallel tier (one worker per shard)")
	warmup := flag.Int("warmup", 20000, "offline-phase rollout length for DRL systems")
	timeout := flag.Float64("timeout", 60, "fixed timeout seconds (system=fixed-timeout)")
	seed := flag.Int64("seed", 1, "random seed")
	traceFile := flag.String("trace", "", "CSV trace to replay instead of a synthetic workload")
	series := flag.Bool("series", false, "print the accumulated latency/energy series")
	predictor := flag.String("predictor", "lstm",
		"workload predictor for the hierarchical local tier: lstm | ewma | last-value | window-mean")
	stream := flag.Bool("stream", false,
		"read jobs from stdin CSV and simulate as they arrive (Session streaming mode)")
	snapEvery := flag.Int("snap-every", 1000,
		"print a live snapshot every N streamed jobs (with -stream)")
	faults := flag.String("faults", "none",
		"failure model: none | exp-crash | correlated-crash | degrade | maintenance-drain (see -list)")
	mttf := flag.Float64("mttf", 172800, "mean time to failure/degradation onset in seconds (crash and degrade models)")
	mttr := flag.Float64("mttr", 600, "mean time to repair in seconds (crash and degrade models)")
	domains := flag.Int("domains", 0,
		"failure domains for -faults correlated-crash: split the cluster into N contiguous equal racks "+
			"(0 = one domain per server class, or the whole cluster)")
	degradeFactor := flag.Float64("degrade-factor", 0,
		"fail-slow speed multiplier in (0,1) (with -faults degrade; 0 = default 0.25)")
	drainEvery := flag.Float64("drain-every", 0,
		"seconds between maintenance windows per server (with -faults maintenance-drain; 0 = default 14400)")
	drainWindow := flag.Float64("drain-window", 0,
		"maintenance window length in seconds (with -faults maintenance-drain; 0 = default 600)")
	retry := flag.String("retry", "backoff",
		"requeue policy for crash-evicted jobs: immediate | backoff | drop-after")
	retryMax := flag.Int("retry-max", 0,
		"max retry attempts before a job is dropped (0 = unbounded; required > 0 with -retry drop-after)")
	checkpointPath := flag.String("checkpoint", "",
		"write a crash-safe snapshot to this file every -checkpoint-every completed jobs "+
			"and on SIGINT/SIGTERM (batch mode; resume with -resume)")
	checkpointEvery := flag.Int("checkpoint-every", 1000,
		"completed jobs between automatic snapshots (with -checkpoint)")
	resume := flag.String("resume", "",
		"resume a batch run from a snapshot written by -checkpoint "+
			"(the config and workload come from the snapshot; system/trace flags are ignored)")
	scenario := flag.String("scenario", "",
		"run a registered workload scenario (see -list); -servers/-jobs rescale it when set explicitly")
	list := flag.Bool("list", false,
		"print registered allocators, power managers, predictors, fault models, retry policies, and scenarios, then exit")
	telemetryAddr := flag.String("telemetry-addr", "",
		"serve live telemetry on this address (/metrics Prometheus text, /healthz, /snapshot JSON, "+
			"/debug/pprof); e.g. 127.0.0.1:9188, or 127.0.0.1:0 for an ephemeral port")
	epochTrace := flag.String("epoch-trace", "",
		"write the last decision epochs as Chrome trace-event JSON to this file at exit "+
			"(load in chrome://tracing; requires -shards >= 2)")
	sketchOnly := flag.Bool("sketch-only", false,
		"constant-memory quantiles: drop the per-job latency samples and answer p50/p95/p99 "+
			"from merging t-digest sketches (for unbounded streams)")
	snapFormat := flag.String("snap-format", "table",
		"live snapshot format (with -stream): table | json (one object per line, matching the "+
			"telemetry endpoint's /snapshot schema)")
	flag.Parse()

	if *list {
		printRegistry()
		return
	}

	// Fail fast on unknown extension-point names with the registered set in
	// the message (exit 2: usage error, distinct from runtime failures).
	if msg := checkRegistered("fault model", *faults, faultModelNames()); msg != "" {
		fmt.Fprintln(os.Stderr, "hiersim: "+msg)
		os.Exit(2)
	}
	if msg := checkRegistered("retry policy", *retry, retryPolicyNames()); msg != "" {
		fmt.Fprintln(os.Stderr, "hiersim: "+msg)
		os.Exit(2)
	}
	if *snapFormat != "table" && *snapFormat != "json" {
		fmt.Fprintf(os.Stderr, "hiersim: unknown -snap-format %q; supported: table json\n", *snapFormat)
		os.Exit(2)
	}
	if *epochTrace != "" && *shards < 2 {
		fmt.Fprintln(os.Stderr, "hiersim: -epoch-trace records the parallel tier's decision epochs; it requires -shards >= 2")
		os.Exit(2)
	}

	// Telemetry options ride along on every run path (batch, stream,
	// scenario, scale-10k, resume).
	var telOpts []hierdrl.SessionOption
	if *telemetryAddr != "" {
		telOpts = append(telOpts, hierdrl.WithTelemetry(*telemetryAddr))
	}
	if *sketchOnly {
		telOpts = append(telOpts, hierdrl.WithSketchOnly())
	}
	if *epochTrace != "" {
		telOpts = append(telOpts, hierdrl.WithEpochTraceFile(*epochTrace, 0))
	}

	var scen *hierdrl.Scenario
	if *scenario != "" {
		if *traceFile != "" || *stream || *resume != "" || *checkpointPath != "" {
			log.Fatal("-scenario generates its own streamed workload; it cannot be combined with -trace, -stream, -resume, or -checkpoint")
		}
		sc, ok := hierdrl.LookupScenario(*scenario)
		if !ok {
			log.Fatalf("unknown scenario %q; registered: %s",
				*scenario, strings.Join(hierdrl.Scenarios(), " "))
		}
		m, j := 0, 0
		if flagWasSet("servers") {
			m = *servers
		}
		if flagWasSet("jobs") {
			j = *jobs
		}
		sc = sc.Scaled(m, j)
		if !flagWasSet("system") {
			// Scenarios compare workloads, not learners; default to the cheap
			// non-learning baseline instead of a full hierarchical warmup.
			*system = "fixed-timeout"
		}
		*servers = sc.M
		scen = &sc
	}

	var cfg hierdrl.Config
	switch *system {
	case "round-robin":
		cfg = hierdrl.RoundRobin(*servers)
	case "drl-only":
		cfg = hierdrl.DRLOnly(*servers)
	case "hierarchical":
		cfg = hierdrl.Hierarchical(*servers)
		cfg.Predictor = hierdrl.PredictorKind(*predictor)
	case "fixed-timeout":
		cfg = hierdrl.FixedTimeoutBaseline(*servers, *timeout)
	case "scale-10k":
		// The multi-core single-run preset: M=10,000 servers, 2M streamed
		// jobs, least-loaded dispatch over the RL/LSTM local tier. The flag
		// defaults above are for the paper-scale systems; rewrite them here
		// unless the user overrode them.
		if !flagWasSet("servers") {
			*servers = hierdrl.ScaleM
		}
		if !flagWasSet("jobs") {
			*jobs = hierdrl.ScaleJobs
		}
		cfg = hierdrl.ScaleSim(*servers)
	default:
		log.Fatalf("unknown system %q", *system)
	}
	cfg.Seed = *seed
	cfg.Faults = hierdrl.FaultKind(*faults)
	cfg.MTTFSec = *mttf
	cfg.MTTRSec = *mttr
	cfg.Retry = hierdrl.RetryKind(*retry)
	cfg.RetryMax = *retryMax
	if *domains > 0 {
		cfg.Domains = hierdrl.EqualDomains(*domains, cfg.M)
	}
	cfg.DegradeFactor = *degradeFactor
	cfg.DrainEverySec = *drainEvery
	cfg.DrainWindowSec = *drainWindow
	if *series {
		if *stream {
			// The stream length is unknown up front; checkpoint at the
			// snapshot cadence instead of a -jobs-derived interval (fall
			// back to the cadence default when snapshots are disabled —
			// never to per-job checkpointing).
			cfg.CheckpointEvery = *snapEvery
			if cfg.CheckpointEvery <= 0 {
				cfg.CheckpointEvery = 1000
			}
		} else {
			cfg.CheckpointEvery = max(1, *jobs/20)
		}
	}
	if cfg.Alloc == hierdrl.AllocDRL && *warmup > 0 {
		cfg.WarmupTrace = hierdrl.SyntheticTraceForCluster(*warmup, *servers, *seed+1000)
	}

	// SIGINT/SIGTERM cancel the session between events; the run then surfaces
	// a final snapshot (and, with -checkpoint, flushes a resumable snapshot
	// file) and exits cleanly instead of dying mid-simulation. A second
	// signal (after stop restores the default handler) kills hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if scen != nil {
		scen.ApplyTo(&cfg)
		src, err := scen.Source(*seed)
		if err != nil {
			log.Fatalf("scenario: %v", err)
		}
		opts := append([]hierdrl.SessionOption{
			hierdrl.WithShards(*shards), hierdrl.WithContext(ctx)}, telOpts...)
		res, err := hierdrl.RunSource(cfg, src, opts...)
		if err != nil {
			if ctx.Err() != nil {
				log.Println("interrupted — partial run discarded")
				return
			}
			log.Fatalf("run: %v", err)
		}
		printResult(res, *series)
		return
	}

	if *resume != "" {
		if *stream {
			log.Fatal("-resume continues a batch run; it cannot be combined with -stream")
		}
		runResume(ctx, *resume, *checkpointPath, *checkpointEvery, *series, telOpts)
		return
	}
	if *checkpointPath != "" && (*stream || (*system == "scale-10k" && *traceFile == "")) {
		// A snapshot captures every ingested-but-unfinished job, but not an
		// external stdin stream or generator feed, so such runs cannot resume.
		log.Fatal("-checkpoint supports batch runs over a materialized trace; streamed runs are not resumable")
	}

	if *stream {
		if *traceFile != "" {
			log.Fatal("-trace replays a file; with -stream, pipe the CSV to stdin instead")
		}
		runStream(ctx, cfg, *shards, *snapEvery, *series, *snapFormat == "json", telOpts)
		return
	}

	if *system == "scale-10k" && *traceFile == "" {
		// The 2M-job workload is pulled from the generator incrementally —
		// at this length the trace must never materialize.
		src, err := hierdrl.ScaleStream(*jobs, *servers, *seed)
		if err != nil {
			log.Fatalf("workload: %v", err)
		}
		opts := append([]hierdrl.SessionOption{
			hierdrl.WithShards(*shards), hierdrl.WithContext(ctx)}, telOpts...)
		res, err := hierdrl.RunStreamed(cfg, src, opts...)
		if err != nil {
			if ctx.Err() != nil {
				log.Println("interrupted — partial run discarded")
				return
			}
			log.Fatalf("run: %v", err)
		}
		printResult(res, *series)
		return
	}

	var tr *hierdrl.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("open trace: %v", err)
		}
		tr, err = hierdrl.ReadTraceCSV(f)
		cerr := f.Close()
		if err != nil {
			log.Fatalf("parse trace: %v", err)
		}
		if cerr != nil {
			log.Fatalf("close trace: %v", cerr)
		}
	} else {
		tr = hierdrl.SyntheticTraceForCluster(*jobs, *servers, *seed)
	}

	runBatch(ctx, cfg, tr, *shards, *series, *checkpointPath, *checkpointEvery, telOpts)
}

// runBatch replays one materialized trace through a Session the command owns
// (rather than the Run wrapper), so an interrupt can surface a final
// snapshot of the partial run — and, with -checkpoint, flush a resumable
// snapshot file — before exiting.
func runBatch(ctx context.Context, cfg hierdrl.Config, tr *hierdrl.Trace, shards int, series bool, ckpt string, every int, telOpts []hierdrl.SessionOption) {
	opts := []hierdrl.SessionOption{hierdrl.WithShards(shards)}
	opts = append(opts, telOpts...)
	if ckpt == "" {
		// Without checkpointing the context latches cancellation inside the
		// session (Drain returns it); with checkpointing the drive loop polls
		// the context itself, so the session stays consistent and resumable
		// at the instant the final snapshot is flushed.
		opts = append(opts, hierdrl.WithContext(ctx))
	} else {
		opts = append(opts, hierdrl.WithAutoCheckpoint(ckpt, every))
	}
	s, err := hierdrl.NewSession(cfg, opts...)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	defer closeSession(s)
	logTelemetryAddr(s)
	if err := s.SubmitTrace(tr); err != nil {
		log.Fatalf("submit: %v", err)
	}
	if ckpt != "" {
		driveCheckpointed(ctx, s, ckpt)
	} else if err := s.Drain(); err != nil {
		if ctx.Err() != nil {
			exitInterrupted(s)
		}
		log.Fatalf("drain: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		log.Fatalf("result: %v", err)
	}
	printResult(res, series)
}

// runResume restores a session from a snapshot file and drives it to
// completion, checkpointing onward to ckpt (or back over the source file if
// -checkpoint was not given) so a resumed run remains interruptible.
func runResume(ctx context.Context, from, ckpt string, every int, series bool, telOpts []hierdrl.SessionOption) {
	if ckpt == "" {
		ckpt = from
	}
	f, err := os.Open(from)
	if err != nil {
		log.Fatalf("open snapshot: %v", err)
	}
	opts := append([]hierdrl.SessionOption{hierdrl.WithAutoCheckpoint(ckpt, every)}, telOpts...)
	s, err := hierdrl.Restore(f, opts...)
	cerr := f.Close()
	if err != nil {
		log.Fatalf("restore: %v", err)
	}
	if cerr != nil {
		log.Fatalf("close snapshot: %v", cerr)
	}
	defer closeSession(s)
	logTelemetryAddr(s)
	driveCheckpointed(ctx, s, ckpt)
	res, err := s.Result()
	if err != nil {
		log.Fatalf("result: %v", err)
	}
	printResult(res, series)
}

// driveCheckpointed advances the session to completion, mirroring Drain's
// stop conditions (idle engine; drained accounting on fault runs, whose
// crash/repair timers never exhaust the queue), while polling the signal
// context so an interrupt flushes one final snapshot and exits resumable.
func driveCheckpointed(ctx context.Context, s *hierdrl.Session, ckpt string) {
	done := ctx.Done()
	faulty := s.FaultsEnabled()
	for i := 0; ; i++ {
		if i&255 == 0 {
			select {
			case <-done:
				if err := flushCheckpoint(s, ckpt); err != nil {
					log.Fatalf("final checkpoint: %v", err)
				}
				fmt.Printf("\ninterrupted — snapshot flushed; resume with -resume %s\n", ckpt)
				os.Exit(0)
			default:
			}
		}
		if faulty && s.Drained() {
			return
		}
		more, err := s.Step()
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		if !more {
			return
		}
	}
}

// flushCheckpoint writes one snapshot atomically: serialize next to the
// target, fsync, then rename into place, so a crash mid-flush never
// clobbers the last periodic snapshot.
func flushCheckpoint(s *hierdrl.Session, path string) error {
	tmp := path + ".final.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// exitInterrupted prints a final snapshot of a canceled session and exits
// with status 0 (a partial run yields no Result, by design).
func exitInterrupted(s *hierdrl.Session) {
	fmt.Println("\ninterrupted — final snapshot:")
	printSnapHeader()
	printSnap(s.Snapshot())
	os.Exit(0)
}

// printRegistry lists every registered extension point, one entry per line
// in sorted order, so scripts can discover what this build supports.
func printRegistry() {
	fmt.Println("allocators:")
	for _, a := range hierdrl.Allocators() {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println("power managers:")
	for _, p := range hierdrl.PowerManagers() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("predictors:")
	for _, p := range hierdrl.Predictors() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("fault models:")
	for _, f := range hierdrl.FaultModels() {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println("retry policies:")
	for _, r := range hierdrl.RetryPolicies() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("scenarios:")
	for _, name := range hierdrl.Scenarios() {
		sc, _ := hierdrl.LookupScenario(name)
		fmt.Printf("  %-18s %s\n", name, sc.Description)
	}
}

// checkRegistered returns "" when name is one of registered, else a one-line
// usage-error message naming the registered set. Split out of main so the
// CLI test can pin the exact message without forking the binary.
func checkRegistered(kind, name string, registered []string) string {
	for _, r := range registered {
		if r == name {
			return ""
		}
	}
	return fmt.Sprintf("unknown %s %q; registered: %s", kind, name, strings.Join(registered, " "))
}

func faultModelNames() []string {
	ks := hierdrl.FaultModels()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

func retryPolicyNames() []string {
	ks := hierdrl.RetryPolicies()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

// flagWasSet reports whether the named flag was passed explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runStream drives the Session API end to end: Submit per stdin row,
// StepUntil to chase the ingested arrivals, Snapshot for live progress,
// Drain + Result at EOF.
func runStream(ctx context.Context, cfg hierdrl.Config, shards, snapEvery int, series, jsonSnaps bool, telOpts []hierdrl.SessionOption) {
	opts := append([]hierdrl.SessionOption{
		hierdrl.WithShards(shards), hierdrl.WithContext(ctx)}, telOpts...)
	s, err := hierdrl.NewSession(cfg, opts...)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	defer closeSession(s)
	logTelemetryAddr(s)

	// printLive emits one live snapshot in the selected format: the table row,
	// or one JSON object per line matching the telemetry /snapshot schema.
	printLive := func() {
		if jsonSnaps {
			b, err := s.SnapshotJSON()
			if err != nil {
				log.Fatalf("snapshot: %v", err)
			}
			fmt.Println(string(b))
			return
		}
		printSnap(s.Snapshot())
	}
	if !jsonSnaps {
		printSnapHeader()
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "arrival")) {
			continue
		}
		job, err := hierdrl.ParseTraceCSVRow(text)
		if err != nil {
			log.Fatalf("stdin line %d: %v", line, err)
		}
		if err := s.Submit(job); err != nil {
			log.Fatalf("stdin line %d: %v", line, err)
		}
		if n := s.Ingested(); snapEvery > 0 && n%int64(snapEvery) == 0 {
			// Chase the stream: advance the clock to the newest arrival so
			// the snapshot reflects live progress, not a deferred backlog.
			if err := s.StepUntil(hierdrl.Time(job.Arrival)); err != nil {
				if ctx.Err() != nil {
					exitInterrupted(s)
				}
				log.Fatalf("step: %v", err)
			}
			printLive()
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("stdin: %v", err)
	}
	if s.Ingested() == 0 {
		log.Fatal("no jobs on stdin")
	}
	if err := s.Drain(); err != nil {
		if ctx.Err() != nil {
			exitInterrupted(s)
		}
		log.Fatalf("drain: %v", err)
	}
	printLive()
	res, err := s.Result()
	if err != nil {
		log.Fatalf("result: %v", err)
	}
	fmt.Println()
	printResult(res, series)
}

// closeSession closes s, surfacing the only error Close can produce (a
// failing -epoch-trace dump) instead of discarding it in a defer.
func closeSession(s *hierdrl.Session) {
	if err := s.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

// logTelemetryAddr prints the bound telemetry endpoint (once, to stderr) so
// ephemeral -telemetry-addr ports ("127.0.0.1:0") are discoverable.
func logTelemetryAddr(s *hierdrl.Session) {
	if addr := s.TelemetryAddr(); addr != "" {
		log.Printf("telemetry: http://%s/metrics", addr)
	}
}

func printSnapHeader() {
	fmt.Printf("%10s %10s %10s %8s %10s %12s %10s\n",
		"t(s)", "submitted", "completed", "queued", "power(W)", "energy(kWh)", "avgLat(s)")
}

func printSnap(sn hierdrl.SessionSnapshot) {
	fmt.Printf("%10.0f %10d %10d %8d %10.1f %12.3f %10.1f\n",
		sn.Now.Seconds(), sn.Ingested, sn.Completed,
		sn.PendingArrivals+sn.JobsInSystem, sn.TotalPowerW, sn.EnergykWh, sn.AvgLatencySec)
	if sn.Failures > 0 {
		fmt.Printf("%21s down=%d failures=%d retried=%d lost=%d availability=%.4f\n",
			"faults:", sn.ServersDown, sn.Failures, sn.JobsRetried, sn.JobsLost, sn.Availability)
		if sn.JobsMigrated > 0 || sn.DomainOutages > 0 || sn.DegradedSec > 0 {
			fmt.Printf("%21s unavailable=%d migrated=%d outages=%d degraded=%.0fs\n",
				"", sn.ServersUnavailable, sn.JobsMigrated, sn.DomainOutages, sn.DegradedSec)
		}
	}
}

func printResult(res *hierdrl.Result, series bool) {
	s := res.Summary
	fmt.Printf("system            %s\n", s.Policy)
	fmt.Printf("servers           %d\n", s.M)
	fmt.Printf("jobs              %d\n", s.Jobs)
	fmt.Printf("simulated span    %.0f s (%.2f days)\n", s.DurationSec, s.DurationSec/86400)
	fmt.Printf("energy            %.2f kWh\n", s.EnergykWh)
	fmt.Printf("acc latency       %.2f x10^6 s\n", s.AccLatencySec/1e6)
	fmt.Printf("avg power         %.2f W\n", s.AvgPowerW)
	fmt.Printf("avg latency       %.1f s\n", s.AvgLatencySec)
	fmt.Printf("p95 latency       %.1f s\n", s.P95LatencySec)
	fmt.Printf("p50/p99 latency   %.1f / %.1f s\n", s.P50LatencySec, s.P99LatencySec)
	fmt.Printf("mean wait         %.1f s\n", s.MeanWaitSec)
	fmt.Printf("wakeups/shutdowns %d / %d\n", res.TotalWakeups, res.TotalShutdowns)
	if s.Failures > 0 {
		fmt.Printf("availability      %.4f\n", s.Availability)
		fmt.Printf("failures/repairs  %d / %d (MTTR %.0f s)\n", s.Failures, s.Repairs, s.MTTRSec)
		fmt.Printf("retried/lost      %d / %d (lost work %.0f s)\n",
			s.JobsRetried, s.JobsLost, s.LostWorkSec)
		if s.DomainOutages > 0 {
			fmt.Printf("domain outages    %d\n", s.DomainOutages)
		}
		if s.DegradedSec > 0 {
			fmt.Printf("degraded time     %.0f server-s\n", s.DegradedSec)
		}
		if s.Drains > 0 {
			fmt.Printf("drains/migrated   %d / %d\n", s.Drains, s.JobsMigrated)
		}
	}
	if res.AgentDiag != "" {
		fmt.Printf("agent             %s\n", res.AgentDiag)
	}
	if series {
		fmt.Println("\njobs,time_s,acc_latency_s,energy_kwh")
		for _, cp := range res.Checkpoints {
			fmt.Printf("%d,%.0f,%.0f,%.4f\n",
				cp.Jobs, cp.Time.Seconds(), cp.AccLatencySec, cp.EnergykWh)
		}
	}
}
