package main

import (
	"strings"
	"testing"
)

// TestCheckRegistered pins the usage-error contract for -faults/-retry: a
// registered name passes silently, an unknown name yields exactly one line
// naming the offending value and the full registered set (main prints that
// line and exits 2).
func TestCheckRegistered(t *testing.T) {
	cases := []struct {
		name       string
		kind, val  string
		registered []string
		wantOK     bool
		wantParts  []string
	}{
		{"fault-known-none", "fault model", "none", faultModelNames(), true, nil},
		{"fault-known-exp-crash", "fault model", "exp-crash", faultModelNames(), true, nil},
		{"fault-known-correlated", "fault model", "correlated-crash", faultModelNames(), true, nil},
		{"fault-known-degrade", "fault model", "degrade", faultModelNames(), true, nil},
		{"fault-known-drain", "fault model", "maintenance-drain", faultModelNames(), true, nil},
		{"fault-unknown", "fault model", "bit-rot", faultModelNames(), false,
			[]string{`unknown fault model "bit-rot"`, "registered:", "exp-crash", "correlated-crash", "degrade", "maintenance-drain", "none"}},
		{"fault-empty", "fault model", "", faultModelNames(), false,
			[]string{`unknown fault model ""`}},
		{"retry-known-backoff", "retry policy", "backoff", retryPolicyNames(), true, nil},
		{"retry-known-immediate", "retry policy", "immediate", retryPolicyNames(), true, nil},
		{"retry-unknown", "retry policy", "exponentail", retryPolicyNames(), false,
			[]string{`unknown retry policy "exponentail"`, "registered:", "backoff", "drop-after", "immediate"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := checkRegistered(tc.kind, tc.val, tc.registered)
			if tc.wantOK {
				if msg != "" {
					t.Fatalf("checkRegistered(%q) = %q, want accepted", tc.val, msg)
				}
				return
			}
			if msg == "" {
				t.Fatalf("checkRegistered(%q) accepted an unknown name", tc.val)
			}
			if strings.Contains(msg, "\n") {
				t.Fatalf("usage error is not one line: %q", msg)
			}
			for _, part := range tc.wantParts {
				if !strings.Contains(msg, part) {
					t.Fatalf("usage error %q missing %q", msg, part)
				}
			}
		})
	}
}
