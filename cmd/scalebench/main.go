// Command scalebench measures the sharded engine's single-run scaling: it
// executes the scale-10k preset (or a reduced -m/-jobs variant) at each
// requested shard count and prints the wall-clock speedup table. With -json
// it writes the machine-readable BENCH_scale.json tracked at the repo root,
// so every PR can compare against the committed scaling baseline.
//
//	scalebench                         # P = 1,2,4,8 at full scale, table to stdout
//	scalebench -shards 1,2 -m 2000 -jobs 200000   # CI smoke
//	scalebench -json BENCH_scale.json  # record the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hierdrl"
)

// Row is one shard count's measurement.
type Row struct {
	Shards     int     `json:"shards"`
	Seconds    float64 `json:"seconds"`
	Speedup    float64 `json:"speedup"` // vs the P=1 row
	JobsPerSec float64 `json:"jobs_per_sec"`
	EnergykWh  float64 `json:"energy_kwh"` // result fingerprint: must agree across P
	AvgLatSec  float64 `json:"avg_latency_sec"`
}

// Output is the BENCH_scale.json document.
type Output struct {
	Context map[string]string `json:"context"`
	Preset  map[string]int    `json:"preset"`
	Rows    []Row             `json:"rows"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")

	m := flag.Int("m", hierdrl.ScaleM, "cluster size")
	jobs := flag.Int("jobs", hierdrl.ScaleJobs, "workload length")
	seed := flag.Int64("seed", 1, "workload seed")
	shardList := flag.String("shards", "", "comma-separated shard counts (default \"1,2,4,8\" capped at NumCPU; a P=1 baseline row is always prepended if missing)")
	all := flag.Bool("cpus", false, "measure every P in 1..NumCPU instead of the default ladder")
	jsonOut := flag.String("json", "", "also write the results as JSON to this file")
	flag.Parse()

	var ps []int
	switch {
	case *shardList != "":
		for _, f := range strings.Split(*shardList, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || p < 1 {
				log.Fatalf("bad -shards entry %q", f)
			}
			ps = append(ps, p)
		}
	case *all:
		for p := 1; p <= runtime.NumCPU(); p++ {
			ps = append(ps, p)
		}
	default:
		ps = []int{1}
		for _, p := range []int{2, 4, 8} {
			if p <= runtime.NumCPU() {
				ps = append(ps, p)
			}
		}
	}

	fmt.Printf("scale preset: M=%d jobs=%d seed=%d (GOMAXPROCS=%d, NumCPU=%d)\n",
		*m, *jobs, *seed, runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Printf("%8s %10s %9s %12s %14s %12s\n", "shards", "wall(s)", "speedup", "jobs/s", "energy(kWh)", "avgLat(s)")

	out := Output{
		Context: map[string]string{
			"goarch":     runtime.GOARCH,
			"goos":       runtime.GOOS,
			"num_cpu":    strconv.Itoa(runtime.NumCPU()),
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		},
		Preset: map[string]int{"m": *m, "jobs": *jobs, "seed": int(*seed)},
	}
	// Speedup is defined against the strict tier: an explicit -shards list
	// without a P=1 entry gets one prepended so the baseline always exists.
	hasOne := false
	for _, p := range ps {
		if p == 1 {
			hasOne = true
		}
	}
	if !hasOne {
		ps = append([]int{1}, ps...)
	}
	var base float64
	for _, p := range ps {
		cfg := hierdrl.ScaleSim(*m)
		cfg.Seed = *seed
		src, err := hierdrl.ScaleStream(*jobs, *m, *seed)
		if err != nil {
			log.Fatalf("workload: %v", err)
		}
		start := time.Now()
		res, err := hierdrl.RunStreamed(cfg, src, hierdrl.WithShards(p))
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		wall := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "scalebench: P=%d done in %.2fs\n", p, wall)
		if p == 1 {
			base = wall
		}
		out.Rows = append(out.Rows, Row{
			Shards:     p,
			Seconds:    wall,
			JobsPerSec: float64(*jobs) / wall,
			EnergykWh:  res.Summary.EnergykWh,
			AvgLatSec:  res.Summary.AvgLatencySec,
		})
	}
	// Speedups are filled after all runs so a P=1 entry anywhere in the list
	// anchors every row.
	for i := range out.Rows {
		r := &out.Rows[i]
		r.Speedup = base / r.Seconds
		fmt.Printf("%8d %10.2f %8.2fx %12.0f %14.2f %12.1f\n",
			r.Shards, r.Seconds, r.Speedup, r.JobsPerSec, r.EnergykWh, r.AvgLatSec)
	}

	// The engine's determinism contract makes the metrics a cross-P check:
	// a result fingerprint that drifts with P is a sharding bug, not noise.
	for _, r := range out.Rows[1:] {
		if r.EnergykWh != out.Rows[0].EnergykWh {
			log.Fatalf("result drift: P=%d energy %v != P=%d energy %v",
				r.Shards, r.EnergykWh, out.Rows[0].Shards, out.Rows[0].EnergykWh)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("create %s: %v", *jsonOut, err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("encode: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
