// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII) plus the two extension studies documented in
// DESIGN.md:
//
//	experiments -exp table1             // Table I, M=30 and M=40
//	experiments -exp fig8               // Fig. 8 series, M=30
//	experiments -exp fig9               // Fig. 9 series, M=40
//	experiments -exp fig10              // Fig. 10 trade-off curves
//	experiments -exp lstm               // X1: predictor accuracy comparison
//	experiments -exp ablation           // X2: autoencoder / weight-sharing ablation
//	experiments -exp faultmatrix        // X3: allocators x fault classes degradation matrix
//	experiments -exp all
//
// -scale bench runs the 20x-reduced configuration (minutes); -scale full
// reproduces the 95,000-job operating point (tens of minutes).
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	exp := flag.String("exp", "all", "experiment: table1 | fig8 | fig9 | fig10 | lstm | ablation | faultmatrix | all")
	scaleName := flag.String("scale", "bench", "bench (20x reduced) or full (95,000 jobs)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	scaleFor := func(m int) hierdrl.Scale {
		var sc hierdrl.Scale
		switch *scaleName {
		case "bench":
			sc = hierdrl.BenchScale(m)
		case "full":
			sc = hierdrl.FullScale(m)
		default:
			log.Fatalf("unknown scale %q", *scaleName)
		}
		sc.Seed = *seed
		return sc
	}

	run := map[string]func(func(int) hierdrl.Scale){
		"table1":   table1,
		"fig8":     func(s func(int) hierdrl.Scale) { figSeries(8, 30, s) },
		"fig9":     func(s func(int) hierdrl.Scale) { figSeries(9, 40, s) },
		"fig10":    fig10,
		"lstm":        lstmStudy,
		"ablation":    ablation,
		"faultmatrix": faultMatrix,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig8", "fig9", "fig10", "lstm", "ablation", "faultmatrix"} {
			run[name](scaleFor)
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	fn(scaleFor)
}

func table1(scaleFor func(int) hierdrl.Scale) {
	fmt.Println("== Table I: energy / accumulated latency / average power ==")
	for _, m := range []int{30, 40} {
		sc := scaleFor(m)
		fmt.Printf("\n-- M = %d, jobs = %d --\n", m, sc.Jobs)
		cmp, err := hierdrl.RunComparison(m, sc, 0)
		if err != nil {
			log.Fatalf("table1 M=%d: %v", m, err)
		}
		fmt.Printf("%-14s %14s %18s %12s\n", "policy", "Energy (kWh)", "Latency (10^6 s)", "Power (W)")
		for _, s := range cmp.Rows() {
			fmt.Printf("%-14s %14.2f %18.2f %12.2f\n",
				s.Policy, s.EnergykWh, s.AccLatencySec/1e6, s.AvgPowerW)
		}
		rr, hier, drl := cmp.RoundRobin.Summary, cmp.Hierarchical.Summary, cmp.DRLOnly.Summary
		fmt.Printf("hierarchical vs round-robin: %+.2f%% energy\n",
			100*(hier.EnergykWh-rr.EnergykWh)/rr.EnergykWh)
		fmt.Printf("hierarchical vs drl-only:    %+.2f%% energy, %+.2f%% latency\n",
			100*(hier.EnergykWh-drl.EnergykWh)/drl.EnergykWh,
			100*(hier.AccLatencySec-drl.AccLatencySec)/drl.AccLatencySec)
	}
}

func figSeries(fig, m int, scaleFor func(int) hierdrl.Scale) {
	sc := scaleFor(m)
	fmt.Printf("\n== Fig. %d: accumulated latency & energy vs #jobs (M = %d) ==\n", fig, m)
	cmp, err := hierdrl.RunComparison(m, sc, max(1, sc.Jobs/19))
	if err != nil {
		log.Fatalf("fig%d: %v", fig, err)
	}
	fmt.Printf("%-8s | %-26s | %-26s | %-26s\n", "", "round-robin", "drl-only", "hierarchical")
	fmt.Printf("%-8s | %12s %13s | %12s %13s | %12s %13s\n",
		"jobs", "latency(s)", "energy(kWh)", "latency(s)", "energy(kWh)", "latency(s)", "energy(kWh)")
	series := [][]hierdrl.Checkpoint{
		cmp.RoundRobin.Checkpoints, cmp.DRLOnly.Checkpoints, cmp.Hierarchical.Checkpoints,
	}
	n := len(series[0])
	for _, s := range series[1:] {
		if len(s) < n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%-8d | %12.0f %13.2f | %12.0f %13.2f | %12.0f %13.2f\n",
			series[0][i].Jobs,
			series[0][i].AccLatencySec, series[0][i].EnergykWh,
			series[1][i].AccLatencySec, series[1][i].EnergykWh,
			series[2][i].AccLatencySec, series[2][i].EnergykWh)
	}
}

func fig10(scaleFor func(int) hierdrl.Scale) {
	m := 30
	sc := scaleFor(m)
	// The full sweep is expensive (16 end-to-end runs); thin the workload.
	sc.Jobs = max(2000, sc.Jobs/4)
	sc.WarmupJobs = max(500, sc.WarmupJobs/4)
	fmt.Printf("\n== Fig. 10: latency/energy trade-off (M = %d, jobs = %d) ==\n", m, sc.Jobs)
	lambdas := []float64{0.15, 0.35, 0.55, 0.75}
	curves, err := hierdrl.RunTradeoff(m, sc, lambdas)
	if err != nil {
		log.Fatalf("fig10: %v", err)
	}
	show := func(name string, pts []hierdrl.TradeoffPoint) {
		fmt.Printf("%-14s", name)
		for _, p := range pts {
			fmt.Printf("  (lat=%.0fs, E=%.0fkJ)", p.AvgLatencySec, p.AvgEnergyJPerJob/1e3)
		}
		fmt.Println()
	}
	show("hierarchical", curves.Hierarchical)
	show("fixed-30", curves.Fixed30)
	show("fixed-60", curves.Fixed60)
	show("fixed-90", curves.Fixed90)

	// The paper's "smallest area against the axes" comparison, reported as
	// dominated hypervolume (larger = better trade-off curve).
	var refLat, refE float64
	for _, curve := range curves.All() {
		for _, p := range curve {
			if p.AvgLatencySec > refLat {
				refLat = p.AvgLatencySec
			}
			if p.AvgEnergyJPerJob > refE {
				refE = p.AvgEnergyJPerJob
			}
		}
	}
	refLat *= 1.05
	refE *= 1.05
	fmt.Println("dominated hypervolume (larger = better):")
	fmt.Printf("  hierarchical %.3g | fixed-30 %.3g | fixed-60 %.3g | fixed-90 %.3g\n",
		hierdrl.HypervolumeOf(curves.Hierarchical, refLat, refE),
		hierdrl.HypervolumeOf(curves.Fixed30, refLat, refE),
		hierdrl.HypervolumeOf(curves.Fixed60, refLat, refE),
		hierdrl.HypervolumeOf(curves.Fixed90, refLat, refE))
}

func lstmStudy(scaleFor func(int) hierdrl.Scale) {
	fmt.Println("\n== X1: workload predictor accuracy (one-step inter-arrival) ==")
	n := 3000
	if scaleFor(30).Jobs > 10000 {
		n = 10000
	}
	scores, err := hierdrl.RunPredictorComparison(n, 1)
	if err != nil {
		log.Fatalf("lstm study: %v", err)
	}
	fmt.Printf("%-14s %12s %12s %10s\n", "predictor", "RMSE(log)", "MAE(s)", "samples")
	for _, s := range scores {
		fmt.Printf("%-14s %12.4f %12.2f %10d\n", s.Name, s.RMSELog, s.MAE, s.Samples)
	}
}

func faultMatrix(scaleFor func(int) hierdrl.Scale) {
	m := 30
	sc := scaleFor(m)
	fmt.Printf("\n== X3: graceful degradation — allocators x fault classes (M = %d, jobs = %d) ==\n", m, sc.Jobs)
	points, err := hierdrl.RunFaultMatrix(m, sc)
	if err != nil {
		log.Fatalf("faultmatrix: %v", err)
	}
	fmt.Printf("%-14s %-18s %8s %10s %10s %9s %9s %9s %11s\n",
		"policy", "faults", "avail", "avgLat(s)", "E(kWh)", "retried", "lost", "migrated", "degraded(s)")
	for _, p := range points {
		s := p.Summary
		fmt.Printf("%-14s %-18s %8.4f %10.1f %10.2f %9d %9d %9d %11.0f\n",
			p.Alloc, p.Faults, s.Availability, s.AvgLatencySec, s.EnergykWh,
			s.JobsRetried, s.JobsLost, s.JobsMigrated, s.DegradedSec)
	}
}

func ablation(scaleFor func(int) hierdrl.Scale) {
	fmt.Println("\n== X2: Fig. 6 architecture ablation (offline Q-regression) ==")
	steps := 300
	if scaleFor(30).Jobs > 10000 {
		steps = 1500
	}
	results, err := hierdrl.RunAblation(30, steps, []int{2, 3, 5}, 1)
	if err != nil {
		log.Fatalf("ablation: %v", err)
	}
	fmt.Printf("%-20s %4s %10s %12s\n", "variant", "K", "params", "final loss")
	for _, r := range results {
		fmt.Printf("%-20s %4d %10d %12.5f\n", r.Variant, r.K, r.Params, r.FinalLoss)
	}
}
