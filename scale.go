package hierdrl

import (
	"fmt"

	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/trace"
)

// This file defines the scale-10k operating point: the preset configuration
// and the bounded-memory streaming runner that drive a single M=10,000-server
// run over >= 2M jobs — the workload the sharded engine (WithShards) exists
// for. See EXPERIMENTS.md for the measured speedup curve and `make scale`
// for the harness.

// ScaleJobs is the scale-10k preset's workload length.
const ScaleJobs = 2_000_000

// ScaleM is the scale-10k preset's cluster size.
const ScaleM = 10_000

// ScaleSim returns the scale-10k system: latency-greedy least-loaded global
// allocation (answered from the engine's incremental per-shard load index —
// a per-arrival O(M) scan would dominate the whole run at this M) over the
// paper's RL local power-management tier with a compact per-server LSTM
// predictor. The global DRL agent is deliberately not used here: a 10k-way
// action space is far outside the paper's design envelope, while the local
// tier is exactly its "one independent manager per machine" shape — which is
// also what makes the run shard-parallel.
//
// The LSTM is downsized (lookback 16, hidden 8, history 64) so 10k per-server
// replicas fit comfortably in memory while still giving the local tier its
// learned inter-arrival forecasts.
func ScaleSim(m int) Config {
	lp := lstm.DefaultPredictorConfig()
	lp.Lookback = 16
	lp.Network.Hidden = 8
	lp.TrainEvery = 64
	lp.BatchSize = 2
	lp.HistoryCap = 64
	return Config{
		Name:          "scale",
		M:             m,
		Seed:          1,
		Alloc:         AllocLeastLoaded,
		DPM:           DPMRL,
		LocalRL:       local.DefaultRLConfig(),
		Predictor:     PredictorLSTM,
		LSTMPredictor: lp,
	}
}

// ScaleStream returns the incremental generator of the scale workload: n
// jobs with the arrival rate scaled to an m-server cluster (the same
// calibration as SyntheticTraceForCluster, without materializing the trace).
func ScaleStream(n, m int, seed int64) (*TraceStream, error) {
	cfg := trace.DefaultGeneratorConfig()
	cfg.NumJobs = n
	cfg.BaseRate *= float64(m) / 30.0
	return trace.NewStream(cfg, seed)
}

// TraceStream re-exports the incremental workload generator.
type TraceStream = trace.Stream

// RunStreamed executes one run fed from the classic incremental generator.
// It is RunSource specialized to *TraceStream, kept for compatibility; both
// stream in bounded chunks so the workload never materializes.
func RunStreamed(cfg Config, src *TraceStream, opts ...SessionOption) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("hierdrl: nil job source")
	}
	return RunSource(cfg, src, opts...)
}

// RunSource executes one run fed from any incremental job source (a
// *TraceStream, a scenario's WorkloadSource, or any JobSource) in bounded
// chunks: each chunk is submitted, then the clock is advanced to its last
// arrival before the next chunk is pulled, so neither the workload nor the
// pending queue ever materializes more than chunk+in-flight jobs. This is
// how the scale presets push >= 2M jobs through a 10k-server cluster in a
// few hundred MB. Combine with WithShards(P) for the parallel tier.
func RunSource(cfg Config, src JobSource, opts ...SessionOption) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("hierdrl: nil job source")
	}
	s, err := NewSession(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	const chunk = 1 << 15
	buf := make([]Job, 0, chunk)
	tr := &Trace{}
	for {
		buf = buf[:0]
		for len(buf) < chunk {
			j, ok := src.Next()
			if !ok {
				break
			}
			buf = append(buf, j)
		}
		if len(buf) == 0 {
			break
		}
		tr.Jobs = buf
		if err := s.SubmitTrace(tr); err != nil {
			return nil, err
		}
		// Chase the chunk: dispatch everything up to its last arrival so the
		// pending queue stays O(chunk) while completions drain behind it.
		if err := s.StepUntil(Time(buf[len(buf)-1].Arrival)); err != nil {
			return nil, err
		}
	}
	if s.Ingested() == 0 {
		return nil, fmt.Errorf("hierdrl: empty job source")
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	return s.Result()
}
