package hierdrl_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hierdrl"
)

// TestTraceCSVRoundTripExact checks the public codec preserves every field
// bit for bit: the writer's shortest-round-trip float formatting must parse
// back to identical float64s.
func TestTraceCSVRoundTripExact(t *testing.T) {
	tr := hierdrl.SyntheticTrace(200, 7)
	var buf bytes.Buffer
	if err := hierdrl.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatalf("WriteTraceCSV: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "arrival,duration,cpu,mem,disk\n") {
		t.Fatalf("missing header: %q", buf.String()[:40])
	}
	back, err := hierdrl.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round-trip length %d want %d", back.Len(), tr.Len())
	}
	for i, want := range tr.Jobs {
		got := back.Jobs[i]
		if got.ID != i {
			t.Fatalf("job %d: ID %d", i, got.ID)
		}
		if math.Float64bits(got.Arrival) != math.Float64bits(want.Arrival) ||
			math.Float64bits(got.Duration) != math.Float64bits(want.Duration) {
			t.Fatalf("job %d: arrival/duration drifted: %v/%v want %v/%v",
				i, got.Arrival, got.Duration, want.Arrival, want.Duration)
		}
		for p := range got.Req {
			if math.Float64bits(got.Req[p]) != math.Float64bits(want.Req[p]) {
				t.Fatalf("job %d: req[%d] drifted: %v want %v", i, p, got.Req[p], want.Req[p])
			}
		}
	}
}

// TestTraceCSVTolerantParsing checks the reader's lenient-but-safe inputs:
// optional header, blank lines, surrounding whitespace.
func TestTraceCSVTolerantParsing(t *testing.T) {
	const in = "arrival,duration,cpu,mem,disk\n" +
		"\n" +
		" 0 , 60 , 0.1 , 0.2 , 0.3 \n" +
		"10,120,0.2,0.2,0.2\n" +
		"\n"
	tr, err := hierdrl.ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTraceCSV: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("parsed %d jobs want 2", tr.Len())
	}
	if tr.Jobs[1].Arrival != 10 || tr.Jobs[1].Req[0] != 0.2 {
		t.Fatalf("job 1 = %+v", tr.Jobs[1])
	}

	// No header is fine too.
	tr, err = hierdrl.ReadTraceCSV(strings.NewReader("5,60,0.1,0.1,0.1\n"))
	if err != nil || tr.Len() != 1 {
		t.Fatalf("headerless parse: %v len=%d", err, tr.Len())
	}

	// Empty input parses as an empty trace (which Run then rejects).
	tr, err = hierdrl.ReadTraceCSV(strings.NewReader(""))
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty parse: %v len=%d", err, tr.Len())
	}
	if _, err := hierdrl.Run(hierdrl.RoundRobin(2), tr); err == nil {
		t.Fatal("Run accepted the empty parsed trace")
	}
}

// TestParseTraceCSVRow checks the exported row parser (the streaming
// counterpart of ReadTraceCSV, feeding Session.Submit) on good and bad rows.
func TestParseTraceCSVRow(t *testing.T) {
	j, err := hierdrl.ParseTraceCSVRow(" 5 , 60 , 0.1 , 0.2 , 0.3 ")
	if err != nil {
		t.Fatalf("ParseTraceCSVRow: %v", err)
	}
	if j.Arrival != 5 || j.Duration != 60 || j.Req != [3]float64{0.1, 0.2, 0.3} {
		t.Fatalf("parsed %+v", j)
	}
	for _, bad := range []string{"", "1,2,3,4", "1,2,3,4,5,6", "a,60,0.1,0.2,0.3"} {
		if _, err := hierdrl.ParseTraceCSVRow(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestTraceCSVMalformedInputs checks every malformed-input class fails with
// an error (and never panics) at the public surface.
func TestTraceCSVMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"too few fields", "0,60,0.1,0.2\n"},
		{"too many fields", "0,60,0.1,0.2,0.3,0.4\n"},
		{"non-numeric field", "0,sixty,0.1,0.2,0.3\n"},
		{"negative arrival", "-5,60,0.1,0.2,0.3\n"},
		{"zero duration", "0,0,0.1,0.2,0.3\n"},
		{"negative duration", "0,-60,0.1,0.2,0.3\n"},
		{"zero demand", "0,60,0,0.2,0.3\n"},
		{"demand above capacity", "0,60,1.5,0.2,0.3\n"},
		{"unsorted arrivals", "10,60,0.1,0.2,0.3\n5,60,0.1,0.2,0.3\n"},
		{"NaN demand", "0,60,NaN,0.2,0.3\n"},
	}
	for _, tc := range cases {
		if _, err := hierdrl.ReadTraceCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
}
