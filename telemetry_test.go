package hierdrl_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"hierdrl"
)

// obsCfg builds the observability smoke configuration: least-loaded dispatch
// with exponential crash/repair faults aggressive enough for a few-thousand-
// job run to see crashes while being scraped.
func obsCfg(m int) hierdrl.Config {
	cfg := hierdrl.RoundRobin(m)
	cfg.Name = "obs-smoke"
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.Faults = hierdrl.FaultExpCrash
	cfg.MTTFSec = 20000
	cfg.MTTRSec = 600
	cfg.Retry = hierdrl.RetryImmediate
	return cfg
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of the exact series line "name value" (name
// including its label set) from a Prometheus text body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: parse %q: %v", series, rest, err)
		}
		return v
	}
	t.Fatalf("series %s not found in /metrics body:\n%s", series, body)
	return 0
}

// TestObsSmoke is the live-telemetry acceptance run: a sharded (P=2) fault-
// injected workload scraped mid-run — /metrics must expose the simulation
// and process families, /healthz must answer — and, after completion, the
// published t-digest p99 must fall within the documented q-space error of
// the exact latency distribution collected through the Observer.
func TestObsSmoke(t *testing.T) {
	m := 8
	cfg := obsCfg(m)
	tr := hierdrl.SyntheticTraceForCluster(3000, m, 7)

	var exact []float64
	obs := hierdrl.Observer{OnJobDone: func(_ hierdrl.Time, j *hierdrl.ClusterJob) {
		exact = append(exact, j.Latency())
	}}
	s, err := hierdrl.NewSession(cfg,
		hierdrl.WithShards(2),
		hierdrl.WithTelemetry("127.0.0.1:0"),
		hierdrl.WithObserver(obs))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	addr := s.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with WithTelemetry configured")
	}
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Run to roughly the half-way point, then scrape while the session is
	// live (parked between decision epochs). Publishes are wall-clock
	// throttled to ~4/s, so wait out the gap and step again to force a
	// mid-run publish before scraping.
	for s.Completed() < 1500 && !s.Drained() {
		if _, err := s.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	for s.Completed() < 2100 && !s.Drained() {
		if _, err := s.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if hz := httpGet(t, "http://"+addr+"/healthz"); hz != "ok\n" {
		t.Fatalf("/healthz = %q", hz)
	}
	mid := httpGet(t, "http://"+addr+"/metrics")
	for _, fam := range []string{
		"hiersim_sim_time_seconds",
		"hiersim_jobs_completed_total",
		"hiersim_jobs_in_system",
		"hiersim_power_watts",
		"hiersim_energy_kwh",
		"hiersim_jobs_per_second",
		"hiersim_events_per_second",
		"hiersim_failures_total",
		"hiersim_availability",
		`hiersim_latency_seconds{quantile="0.99"}`,
		`hiersim_latency_seconds{class="short",quantile="0.5"}`,
		"hiersim_wait_seconds",
		"go_goroutines",
		"go_heap_alloc_bytes",
		"process_uptime_seconds",
	} {
		if !strings.Contains(mid, fam) {
			t.Errorf("mid-run /metrics missing %s", fam)
		}
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/snapshot")), &rec); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if c, _ := rec["completed"].(float64); c < 500 {
		t.Errorf("/snapshot completed %v, want >= 500 (publish cadence)", rec["completed"])
	}

	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatalf("result: %v", err)
	}

	// Result publishes the final blobs: the served p99 must land inside the
	// exact distribution's [0.985, 0.995] quantile window (DESIGN.md §17's
	// documented ±0.004 q-space bound at p99, with slack for interpolation).
	final := httpGet(t, "http://"+addr+"/metrics")
	p99 := metricValue(t, final, `hiersim_latency_seconds{quantile="0.99"}`)
	sort.Float64s(exact)
	n := len(exact)
	if n < 2000 {
		t.Fatalf("only %d completions observed", n)
	}
	lo := exact[int(0.985*float64(n-1))]
	hi := exact[int(0.995*float64(n-1))]
	if p99 < lo || p99 > hi {
		t.Errorf("published p99 %v outside exact window [%v, %v] (n=%d)", p99, lo, hi, n)
	}
	if got := metricValue(t, final, "hiersim_jobs_completed_total"); int(got) != n {
		t.Errorf("published completions %v, observer saw %d", got, n)
	}

	// The /snapshot body and Session.SnapshotJSON share one schema and, with
	// the engine idle since the final publish, one byte stream.
	snapBody := httpGet(t, "http://"+addr+"/snapshot")
	js, err := s.SnapshotJSON()
	if err != nil {
		t.Fatalf("SnapshotJSON: %v", err)
	}
	if snapBody != string(js) {
		t.Errorf("/snapshot and SnapshotJSON diverge:\n%s\nvs\n%s", snapBody, js)
	}
}

// TestTelemetryPreservesBitwiseMetrics asserts the observability layer's
// zero-perturbation contract: attaching WithTelemetry (sketches feeding a
// live endpoint) changes no summary bit of a strict-tier run.
func TestTelemetryPreservesBitwiseMetrics(t *testing.T) {
	m := 8
	cfg := hierdrl.RoundRobin(m)
	tr := hierdrl.SyntheticTraceForCluster(800, m, 7)
	base, err := hierdrl.Run(cfg, tr)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	wired, err := hierdrl.RunWith(cfg, tr, hierdrl.WithTelemetry("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	if summaryBits(base.Summary) != summaryBits(wired.Summary) {
		t.Fatalf("telemetry perturbed the summary: %+v vs %+v", base.Summary, wired.Summary)
	}
}

// TestSketchOnlySummary asserts the constant-memory mode: exact aggregate
// metrics survive bitwise (they never depended on the sample slices), and
// the sketch-answered quantiles land inside tight q-space windows of the
// exact distribution collected through the Observer.
func TestSketchOnlySummary(t *testing.T) {
	m := 8
	cfg := hierdrl.RoundRobin(m)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	tr := hierdrl.SyntheticTraceForCluster(4000, m, 11)

	base, err := hierdrl.Run(cfg, tr)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	var exact []float64
	obs := hierdrl.Observer{OnJobDone: func(_ hierdrl.Time, j *hierdrl.ClusterJob) {
		exact = append(exact, j.Latency())
	}}
	sk, err := hierdrl.RunWith(cfg, tr, hierdrl.WithSketchOnly(), hierdrl.WithObserver(obs))
	if err != nil {
		t.Fatalf("sketch-only: %v", err)
	}
	if math.Float64bits(sk.Summary.EnergykWh) != math.Float64bits(base.Summary.EnergykWh) ||
		math.Float64bits(sk.Summary.AccLatencySec) != math.Float64bits(base.Summary.AccLatencySec) ||
		math.Float64bits(sk.Summary.AvgLatencySec) != math.Float64bits(base.Summary.AvgLatencySec) ||
		math.Float64bits(sk.Summary.MeanWaitSec) != math.Float64bits(base.Summary.MeanWaitSec) {
		t.Fatalf("sketch-only perturbed exact aggregates: %+v vs %+v", sk.Summary, base.Summary)
	}
	sort.Float64s(exact)
	n := len(exact)
	window := func(q, w float64) (float64, float64) {
		loQ, hiQ := math.Max(q-w, 0), math.Min(q+w, 1)
		return exact[int(loQ*float64(n-1))], exact[int(hiQ*float64(n-1))]
	}
	for _, c := range []struct {
		name string
		got  float64
		q, w float64
	}{
		{"p50", sk.Summary.P50LatencySec, 0.50, 0.02},
		{"p95", sk.Summary.P95LatencySec, 0.95, 0.008},
		{"p99", sk.Summary.P99LatencySec, 0.99, 0.005},
	} {
		lo, hi := window(c.q, c.w)
		if c.got < lo || c.got > hi {
			t.Errorf("%s %v outside exact window [%v, %v]", c.name, c.got, lo, hi)
		}
	}
}

// TestEpochTraceChromeJSON drives a sharded run with the decision-epoch ring
// attached and asserts the dump is loadable Chrome trace-event JSON with
// per-shard phases and the coordinator's replay/alloc segments visible.
func TestEpochTraceChromeJSON(t *testing.T) {
	m := 8
	cfg := hierdrl.RoundRobin(m)
	cfg.Alloc = hierdrl.AllocLeastLoaded
	tr := hierdrl.SyntheticTraceForCluster(400, m, 7)
	s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(2), hierdrl.WithEpochTrace(4096))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatalf("result: %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteEpochTrace(&buf); err != nil {
		t.Fatalf("WriteEpochTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	names := map[string]bool{}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Fatalf("event %s has non-positive dur %v", ev.Name, ev.Dur)
		}
		names[ev.Name] = true
		tids[ev.Tid] = true
		if _, ok := ev.Args["epoch"]; !ok {
			t.Fatalf("event %s missing epoch arg", ev.Name)
		}
	}
	for _, want := range []string{"run", "replay", "alloc+gemm"} {
		if !names[want] {
			t.Errorf("trace missing %q events (got %v)", want, names)
		}
	}
	// Both shards and the coordinator row (tid = P) must be populated.
	for _, tid := range []int{0, 1, 2} {
		if !tids[tid] {
			t.Errorf("trace missing events for tid %d (got %v)", tid, tids)
		}
	}
}

// TestEpochTraceRequiresShards pins the construction-time error: epoch
// tracing measures the parallel tier's barrier phases, so it is meaningless
// (and rejected) on the strict tier.
func TestEpochTraceRequiresShards(t *testing.T) {
	cfg := hierdrl.RoundRobin(4)
	if _, err := hierdrl.NewSession(cfg, hierdrl.WithEpochTrace(64)); err == nil {
		t.Fatal("WithEpochTrace on the strict tier must error")
	}
}

// TestCheckpointRoundTripSketches checkpoints a sketch-only fault run
// mid-stream and resumes it twice — with and without re-attaching the
// option — asserting both continuations reproduce the uninterrupted run's
// sketch-answered quantiles bitwise (the snapshot is authoritative for the
// collection mode and the digest state).
func TestCheckpointRoundTripSketches(t *testing.T) {
	m := 8
	cfg := obsCfg(m)
	tr := hierdrl.SyntheticTraceForCluster(2000, m, 13)

	run := func(opts ...hierdrl.SessionOption) *hierdrl.Session {
		t.Helper()
		s, err := hierdrl.NewSession(cfg, opts...)
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatalf("submit: %v", err)
		}
		return s
	}
	finish := func(s *hierdrl.Session) hierdrl.Summary {
		t.Helper()
		if err := s.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		res, err := s.Result()
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		return res.Summary
	}
	quantBits := func(s hierdrl.Summary) [3]uint64 {
		return [3]uint64{
			math.Float64bits(s.P50LatencySec),
			math.Float64bits(s.P95LatencySec),
			math.Float64bits(s.P99LatencySec),
		}
	}

	// Uninterrupted reference.
	ref := run(hierdrl.WithSketchOnly())
	defer ref.Close()
	want := finish(ref)

	// Interrupted at ~1000 completions, snapshotted, resumed.
	s := run(hierdrl.WithSketchOnly())
	defer s.Close()
	for s.Completed() < 1000 && !s.Drained() {
		if _, err := s.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	var snap bytes.Buffer
	if err := s.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	for _, opts := range [][]hierdrl.SessionOption{nil, {hierdrl.WithSketchOnly()}} {
		r, err := hierdrl.Restore(bytes.NewReader(snap.Bytes()), opts...)
		if err != nil {
			t.Fatalf("restore (opts %v): %v", opts, err)
		}
		got := finish(r)
		r.Close()
		if quantBits(got) != quantBits(want) {
			t.Fatalf("resumed quantiles diverged (opts %v): %+v vs %+v", opts, got, want)
		}
		if math.Float64bits(got.EnergykWh) != math.Float64bits(want.EnergykWh) ||
			got.Jobs != want.Jobs {
			t.Fatalf("resumed run diverged (opts %v): %+v vs %+v", opts, got, want)
		}
	}
}
