package hierdrl

import (
	"fmt"
	"sort"
	"sync"

	"hierdrl/internal/cluster"
	"hierdrl/internal/fault"
	"hierdrl/internal/global"
	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/policy"
	"hierdrl/internal/sim"
)

// Public extension-point types. These are aliases of the engine's own
// interfaces, so a policy registered here runs on the hot path with no
// adapter layer in between (and therefore no per-event interface boxing
// beyond what the engine itself does).
type (
	// Allocator is the global tier's extension point: it picks the target
	// server for every arriving job. The paper's DRL agent, round-robin,
	// random, least-loaded, and pack-fit all implement it.
	Allocator = policy.Allocator
	// PowerManager is the local tier's extension point: one instance runs
	// per server and decides sleep timeouts at each idle decision epoch
	// (OnIdle), classifies arrival epochs (OnArrival), and integrates the
	// local reward signal (Observe).
	PowerManager = cluster.DPMPolicy
	// Predictor forecasts the next job inter-arrival time for the RL power
	// manager (the paper argues for an LSTM; EWMA/last-value/window-mean are
	// the linear-history baselines).
	Predictor = local.ArrivalPredictor
	// FaultModel assigns each server its failure/repair clock. Clocks are
	// derived from (Config.Seed, serverID) alone — never from the run RNG —
	// so fault schedules are identical at every shard count.
	FaultModel = fault.Model
	// FailureClock is one server's failure/repair process (see FaultModel).
	FailureClock = fault.Clock
	// RetryPolicy decides whether (and when) a crash-evicted job re-enters
	// the pending queue.
	RetryPolicy = fault.RetryPolicy
	// FailureDomain groups contiguous server IDs into one failure domain
	// (rack/zone) for topology-aware fault models (Config.Domains).
	FailureDomain = fault.Domain

	// ClusterJob is the in-flight form of a job inside the simulator, handed
	// to Allocator.Allocate and the per-job-completion observer. Completed
	// jobs are pooled and renewed — do not retain pointers past the callback.
	ClusterJob = cluster.Job
	// ClusterView is the immutable-by-convention snapshot of cluster state
	// handed to allocators at each decision epoch.
	ClusterView = cluster.View
	// Server exposes one simulated machine to PowerManager implementations.
	Server = cluster.Server
	// PowerState is a server's power mode (sleep/waking/active/shutting-down).
	PowerState = cluster.PowerState
	// Resources is a per-dimension (CPU, memory, disk) resource vector.
	Resources = cluster.Resources
	// Time is simulated time in seconds since the start of the run.
	Time = sim.Time
	// RNG is the deterministic random source threaded through every
	// stochastic component; factories derive independent streams via Split.
	RNG = mat.RNG
)

// Re-exported power modes for PowerManager implementations.
const (
	StateSleep        = cluster.StateSleep
	StateWaking       = cluster.StateWaking
	StateActive       = cluster.StateActive
	StateShuttingDown = cluster.StateShuttingDown
	StateDown         = cluster.StateDown
)

// AllocatorFactory builds one run's allocator. cfg is the validated run
// configuration; rng is the run's RNG — derive any private stream with
// rng.Split() (and nothing else) so runs stay reproducible from Config.Seed.
type AllocatorFactory func(cfg *Config, rng *RNG) (Allocator, error)

// PowerManagerFactory builds one server's power manager; it is invoked once
// per server index in ascending order, all sharing the run RNG.
type PowerManagerFactory func(cfg *Config, serverID int, rng *RNG) (PowerManager, error)

// PredictorFactory builds one workload predictor for an RL power manager.
type PredictorFactory func(cfg *Config, rng *RNG) (Predictor, error)

// FaultModelFactory builds one run's fault model. It deliberately receives no
// RNG: failure clocks must derive all randomness from (cfg.Seed, serverID)
// so the schedule is a pure function of the configuration, independent of
// shard count and of every other random stream. Returning a nil FaultModel
// (with a nil error) disables fault injection.
type FaultModelFactory func(cfg *Config) (FaultModel, error)

// RetryPolicyFactory builds one run's retry policy.
type RetryPolicyFactory func(cfg *Config) (RetryPolicy, error)

// Registry entries pair the factory with an optional config check that runs
// at validation time (NewSession/Run), so bad configurations fail before any
// simulation state is built. Built-in entries use checks to preserve the
// historical validation errors; externally registered policies typically
// validate inside their factory instead.
type (
	allocEntry struct {
		build AllocatorFactory
		check func(cfg *Config) error
	}
	pmEntry struct {
		build PowerManagerFactory
		check func(cfg *Config) error
	}
	predEntry struct {
		build PredictorFactory
	}
	faultEntry struct {
		build FaultModelFactory
		check func(cfg *Config) error
	}
	retryEntry struct {
		build RetryPolicyFactory
		check func(cfg *Config) error
	}
)

var (
	registryMu sync.RWMutex
	allocators = map[AllocPolicy]allocEntry{}
	powerMgrs  = map[DPMKind]pmEntry{}
	predictors = map[PredictorKind]predEntry{}
	faultMdls  = map[FaultKind]faultEntry{}
	retryPols  = map[RetryKind]retryEntry{}
)

// RegisterAllocator makes a custom allocation policy resolvable through
// Config.Alloc. It panics on an empty name, a nil factory, or a name already
// registered (including the built-ins).
func RegisterAllocator(name AllocPolicy, build AllocatorFactory) {
	registerAllocator(name, build, nil)
}

func registerAllocator(name AllocPolicy, build AllocatorFactory, check func(*Config) error) {
	if name == "" || build == nil {
		panic("hierdrl: RegisterAllocator with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := allocators[name]; dup {
		panic(fmt.Sprintf("hierdrl: allocator %q already registered", name))
	}
	allocators[name] = allocEntry{build: build, check: check}
}

// RegisterPowerManager makes a custom local-tier policy resolvable through
// Config.DPM. Panics on misuse, like RegisterAllocator.
func RegisterPowerManager(name DPMKind, build PowerManagerFactory) {
	registerPowerManager(name, build, nil)
}

func registerPowerManager(name DPMKind, build PowerManagerFactory, check func(*Config) error) {
	if name == "" || build == nil {
		panic("hierdrl: RegisterPowerManager with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := powerMgrs[name]; dup {
		panic(fmt.Sprintf("hierdrl: power manager %q already registered", name))
	}
	powerMgrs[name] = pmEntry{build: build, check: check}
}

// RegisterPredictor makes a custom workload predictor resolvable through
// Config.Predictor. Panics on misuse, like RegisterAllocator.
func RegisterPredictor(name PredictorKind, build PredictorFactory) {
	if name == "" || build == nil {
		panic("hierdrl: RegisterPredictor with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := predictors[name]; dup {
		panic(fmt.Sprintf("hierdrl: predictor %q already registered", name))
	}
	predictors[name] = predEntry{build: build}
}

// RegisterFaultModel makes a custom fault model resolvable through
// Config.Faults. Panics on misuse, like RegisterAllocator.
func RegisterFaultModel(name FaultKind, build FaultModelFactory) {
	registerFaultModel(name, build, nil)
}

func registerFaultModel(name FaultKind, build FaultModelFactory, check func(*Config) error) {
	if name == "" || build == nil {
		panic("hierdrl: RegisterFaultModel with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := faultMdls[name]; dup {
		panic(fmt.Sprintf("hierdrl: fault model %q already registered", name))
	}
	faultMdls[name] = faultEntry{build: build, check: check}
}

// RegisterRetryPolicy makes a custom retry policy resolvable through
// Config.Retry. Panics on misuse, like RegisterAllocator.
func RegisterRetryPolicy(name RetryKind, build RetryPolicyFactory) {
	registerRetryPolicy(name, build, nil)
}

func registerRetryPolicy(name RetryKind, build RetryPolicyFactory, check func(*Config) error) {
	if name == "" || build == nil {
		panic("hierdrl: RegisterRetryPolicy with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := retryPols[name]; dup {
		panic(fmt.Sprintf("hierdrl: retry policy %q already registered", name))
	}
	retryPols[name] = retryEntry{build: build, check: check}
}

// sortedNames returns a registry map's keys in sorted order. Listings are
// the registry's discovery surface (hiersim -list), so the order is stable
// regardless of registration order.
func sortedNames[K ~string, V any](m map[K]V) []K {
	registryMu.RLock()
	names := make([]K, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Allocators returns every registered allocation-policy name, sorted.
func Allocators() []AllocPolicy { return sortedNames(allocators) }

// PowerManagers returns every registered power-manager name, sorted.
func PowerManagers() []DPMKind { return sortedNames(powerMgrs) }

// Predictors returns every registered predictor name, sorted.
func Predictors() []PredictorKind { return sortedNames(predictors) }

// FaultModels returns every registered fault-model name, sorted.
func FaultModels() []FaultKind { return sortedNames(faultMdls) }

// RetryPolicies returns every registered retry-policy name, sorted.
func RetryPolicies() []RetryKind { return sortedNames(retryPols) }

func lookupAllocator(name AllocPolicy) (allocEntry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := allocators[name]
	return e, ok
}

func lookupPowerManager(name DPMKind) (pmEntry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := powerMgrs[name]
	return e, ok
}

func lookupPredictor(name PredictorKind) (predEntry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := predictors[name]
	return e, ok
}

func lookupFaultModel(name FaultKind) (faultEntry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := faultMdls[name]
	return e, ok
}

func lookupRetryPolicy(name RetryKind) (retryEntry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := retryPols[name]
	return e, ok
}

// checkAllocConfig validates Config.Alloc through the registry.
func checkAllocConfig(cfg *Config) error {
	e, ok := lookupAllocator(cfg.Alloc)
	if !ok {
		return fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
	if e.check != nil {
		return e.check(cfg)
	}
	return nil
}

// checkDPMConfig validates Config.DPM (and, transitively, Config.Predictor)
// through the registry.
func checkDPMConfig(cfg *Config) error {
	e, ok := lookupPowerManager(cfg.DPM)
	if !ok {
		return fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
	if e.check != nil {
		return e.check(cfg)
	}
	return nil
}

// checkFaultConfig validates Config.Faults through the registry.
func checkFaultConfig(cfg *Config) error {
	e, ok := lookupFaultModel(cfg.Faults)
	if !ok {
		return fmt.Errorf("hierdrl: unknown fault model %q", cfg.Faults)
	}
	if e.check != nil {
		return e.check(cfg)
	}
	return nil
}

// checkRetryConfig validates Config.Retry through the registry.
func checkRetryConfig(cfg *Config) error {
	e, ok := lookupRetryPolicy(cfg.Retry)
	if !ok {
		return fmt.Errorf("hierdrl: unknown retry policy %q", cfg.Retry)
	}
	if e.check != nil {
		return e.check(cfg)
	}
	return nil
}

// EqualDomains splits m servers into n contiguous equal failure domains
// named "dom0".."domN-1" (the first m%n domains absorb the remainder).
// Convenience for driver code building Config.Domains.
func EqualDomains(n, m int) []FailureDomain { return fault.EqualDomains(n, m) }

// domainSpec resolves the failure-domain partition for FaultCorrelatedCrash:
// an explicit Config.Domains wins, then one domain per heterogeneous server
// class (classes are contiguous ID ranges, the natural rack analogue), then
// the whole cluster as a single domain.
func domainSpec(cfg *Config) []fault.Domain {
	if len(cfg.Domains) > 0 {
		return cfg.Domains
	}
	if len(cfg.Cluster.Classes) > 0 {
		out := make([]fault.Domain, len(cfg.Cluster.Classes))
		for i, cl := range cfg.Cluster.Classes {
			out[i] = fault.Domain{Name: cl.Name, Count: cl.Count}
		}
		return out
	}
	return fault.EqualDomains(1, cfg.M)
}

// degradeFactor resolves FaultDegrade's speed multiplier (default 0.25).
func degradeFactor(cfg *Config) float64 {
	if cfg.DegradeFactor == 0 {
		return 0.25
	}
	return cfg.DegradeFactor
}

// drainSpec resolves FaultDrain's period and window (defaults 14400s / 600s).
func drainSpec(cfg *Config) (everySec, windowSec float64) {
	everySec, windowSec = cfg.DrainEverySec, cfg.DrainWindowSec
	if everySec == 0 {
		everySec = 14400
	}
	if windowSec == 0 {
		windowSec = 600
	}
	return everySec, windowSec
}

// buildFaultLayer resolves the fault model and retry policy for one session.
// A nil model (FaultNone, or any factory returning nil) disables the whole
// subsystem; the retry policy is only built alongside a live model.
func buildFaultLayer(cfg *Config) (FaultModel, RetryPolicy, error) {
	fe, ok := lookupFaultModel(cfg.Faults)
	if !ok {
		return nil, nil, fmt.Errorf("hierdrl: unknown fault model %q", cfg.Faults)
	}
	fm, err := fe.build(cfg)
	if err != nil {
		return nil, nil, err
	}
	if fm == nil {
		return nil, nil, nil
	}
	re, ok := lookupRetryPolicy(cfg.Retry)
	if !ok {
		return nil, nil, fmt.Errorf("hierdrl: unknown retry policy %q", cfg.Retry)
	}
	rp, err := re.build(cfg)
	if err != nil {
		return nil, nil, err
	}
	if rp == nil {
		return nil, nil, fmt.Errorf("hierdrl: retry policy %q built nil", cfg.Retry)
	}
	return fm, rp, nil
}

// buildAllocator resolves the global tier for one session. The DRL policy is
// the one allocator the registry cannot build: its agent belongs to (and
// persists across the passes of) the session, so the session injects it here.
func buildAllocator(cfg *Config, agent *global.Agent, rng *RNG) (Allocator, error) {
	if cfg.Alloc == AllocDRL {
		if agent == nil {
			return nil, fmt.Errorf("hierdrl: DRL allocation without an agent")
		}
		return agent, nil
	}
	e, ok := lookupAllocator(cfg.Alloc)
	if !ok {
		return nil, fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
	return e.build(cfg, rng)
}

// buildPowerManager resolves one server's local tier through the registry.
func buildPowerManager(cfg *Config, serverID int, rng *RNG) (PowerManager, error) {
	e, ok := lookupPowerManager(cfg.DPM)
	if !ok {
		return nil, fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
	return e.build(cfg, serverID, rng)
}

// buildPredictor resolves a workload predictor through the registry.
func buildPredictor(cfg *Config, rng *RNG) (Predictor, error) {
	e, ok := lookupPredictor(cfg.Predictor)
	if !ok {
		return nil, fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
	}
	return e.build(cfg, rng)
}

// Built-in policies register through the same machinery external code uses,
// so AllocPolicy/DPMKind/PredictorKind strings all resolve one way. The RNG
// split order inside each factory is part of the reproducibility contract:
// it matches the historical construction order bit for bit.
func init() {
	registerAllocator(AllocRoundRobin, func(*Config, *RNG) (Allocator, error) {
		return policy.NewRoundRobin(), nil
	}, nil)
	registerAllocator(AllocRandom, func(_ *Config, rng *RNG) (Allocator, error) {
		return policy.NewRandom(rng.Split()), nil
	}, nil)
	registerAllocator(AllocLeastLoaded, func(*Config, *RNG) (Allocator, error) {
		return policy.NewLeastLoaded(), nil
	}, nil)
	registerAllocator(AllocPackFit, func(*Config, *RNG) (Allocator, error) {
		return policy.NewPackFit(0.05)
	}, nil)
	registerAllocator(AllocDRL, func(*Config, *RNG) (Allocator, error) {
		return nil, fmt.Errorf("hierdrl: the DRL allocator is built by its session (it owns the learning agent)")
	}, func(cfg *Config) error {
		if err := cfg.Global.Validate(cfg.M); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})

	registerPowerManager(DPMAlwaysOn, func(*Config, int, *RNG) (PowerManager, error) {
		return local.AlwaysOn{}, nil
	}, nil)
	registerPowerManager(DPMAdHoc, func(*Config, int, *RNG) (PowerManager, error) {
		return local.AdHoc{}, nil
	}, nil)
	registerPowerManager(DPMFixedTimeout, func(cfg *Config, _ int, _ *RNG) (PowerManager, error) {
		return local.NewFixedTimeout(cfg.FixedTimeoutSec), nil
	}, func(cfg *Config) error {
		if cfg.FixedTimeoutSec < 0 {
			return fmt.Errorf("hierdrl: negative fixed timeout %v", cfg.FixedTimeoutSec)
		}
		return nil
	})
	registerPowerManager(DPMRL, func(cfg *Config, _ int, rng *RNG) (PowerManager, error) {
		pred, err := buildPredictor(cfg, rng)
		if err != nil {
			return nil, err
		}
		return local.NewRLTimeout(cfg.LocalRL, pred, rng.Split())
	}, func(cfg *Config) error {
		if err := cfg.LocalRL.Validate(); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		if cfg.Predictor == "" {
			cfg.Predictor = PredictorLSTM
		}
		if _, ok := lookupPredictor(cfg.Predictor); !ok {
			return fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
		}
		return nil
	})

	RegisterPredictor(PredictorLSTM, func(cfg *Config, rng *RNG) (Predictor, error) {
		return lstm.NewPredictor(cfg.LSTMPredictor, rng.Split()), nil
	})
	RegisterPredictor(PredictorEWMA, func(*Config, *RNG) (Predictor, error) {
		return local.NewEWMA(0.3), nil
	})
	RegisterPredictor(PredictorLastValue, func(*Config, *RNG) (Predictor, error) {
		return local.NewLastValue(), nil
	})
	RegisterPredictor(PredictorWindowMean, func(*Config, *RNG) (Predictor, error) {
		return local.NewWindowMean(10), nil
	})

	registerFaultModel(FaultNone, func(*Config) (FaultModel, error) {
		return nil, nil
	}, nil)
	registerFaultModel(FaultExpCrash, func(cfg *Config) (FaultModel, error) {
		return fault.NewExpCrash(cfg.Seed, cfg.MTTFSec, cfg.MTTRSec)
	}, func(cfg *Config) error {
		if _, err := fault.NewExpCrash(cfg.Seed, cfg.MTTFSec, cfg.MTTRSec); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})
	registerFaultModel(FaultCorrelatedCrash, func(cfg *Config) (FaultModel, error) {
		return fault.NewCorrelatedCrash(cfg.Seed, domainSpec(cfg), cfg.M, cfg.MTTFSec, cfg.MTTRSec)
	}, func(cfg *Config) error {
		// The check runs before the cluster default is derived, so only an
		// explicit Domains override is validated here; class-derived domains
		// are covered by Cluster.Validate (counts must sum to M either way).
		if len(cfg.Domains) > 0 {
			if err := fault.ValidateDomains(cfg.Domains, cfg.M); err != nil {
				return fmt.Errorf("hierdrl: %w", err)
			}
		}
		if _, err := fault.NewExpCrash(cfg.Seed, cfg.MTTFSec, cfg.MTTRSec); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})
	registerFaultModel(FaultDegrade, func(cfg *Config) (FaultModel, error) {
		return fault.NewFailSlow(cfg.Seed, degradeFactor(cfg), cfg.MTTFSec, cfg.MTTRSec)
	}, func(cfg *Config) error {
		if _, err := fault.NewFailSlow(cfg.Seed, degradeFactor(cfg), cfg.MTTFSec, cfg.MTTRSec); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})
	registerFaultModel(FaultDrain, func(cfg *Config) (FaultModel, error) {
		every, window := drainSpec(cfg)
		return fault.NewMaintenanceDrain(every, window, cfg.M)
	}, func(cfg *Config) error {
		every, window := drainSpec(cfg)
		if _, err := fault.NewMaintenanceDrain(every, window, cfg.M); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})

	registerRetryPolicy(RetryImmediate, func(*Config) (RetryPolicy, error) {
		return fault.Immediate{}, nil
	}, nil)
	registerRetryPolicy(RetryBackoff, func(cfg *Config) (RetryPolicy, error) {
		base, capSec := cfg.RetryBackoffSec, cfg.RetryBackoffCapSec
		if base == 0 {
			base = 30
		}
		if capSec == 0 {
			capSec = 600
		}
		return fault.NewBackoff(base, capSec, cfg.RetryMax)
	}, func(cfg *Config) error {
		base, capSec := cfg.RetryBackoffSec, cfg.RetryBackoffCapSec
		if base == 0 {
			base = 30
		}
		if capSec == 0 {
			capSec = 600
		}
		if _, err := fault.NewBackoff(base, capSec, cfg.RetryMax); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		return nil
	})
	registerRetryPolicy(RetryDropAfter, func(cfg *Config) (RetryPolicy, error) {
		return fault.DropAfter{Max: cfg.RetryMax}, nil
	}, func(cfg *Config) error {
		if cfg.RetryMax <= 0 {
			return fmt.Errorf("hierdrl: retry policy %q needs RetryMax > 0, got %d", RetryDropAfter, cfg.RetryMax)
		}
		return nil
	})
}
