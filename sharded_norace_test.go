//go:build !race

package hierdrl_test

import (
	"testing"

	"hierdrl"
)

// TestShardedSteadyStepZeroAlloc pins the parallel tier's steady-state
// allocation budget: with every pool warm (event slots, job pool, per-shard
// logs, metric buffers, load index) a decision epoch — barrier round, lane
// stepping in the workers, merged replay, load-index allocation, dispatch —
// performs zero heap allocations. The configuration avoids the RL power
// manager (whose Q-table state keys are strings by design) so the pin
// measures the sharding machinery itself.
//
// The build tag mirrors the other alloc-pinned suites: race instrumentation
// allocates, so exact counts only hold without -race.
func TestShardedSteadyStepZeroAlloc(t *testing.T) {
	m := 16
	cfg := hierdrl.RoundRobin(m)
	cfg.Name = "least-loaded"
	cfg.Alloc = hierdrl.AllocLeastLoaded
	cfg.DPM = hierdrl.DPMFixedTimeout
	cfg.FixedTimeoutSec = 30

	tr := hierdrl.SyntheticTraceForCluster(4000, m, 9)
	s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(4), hierdrl.WithExpectedJobs(2*len(tr.Jobs)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Warm every pool — event slots, job pool, logs, queues — with one full
	// pass, so the measured second stream's in-flight population never
	// exceeds what the pools already hold.
	if err := s.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	span := tr.Jobs[len(tr.Jobs)-1].Arrival
	second := &hierdrl.Trace{Jobs: make([]hierdrl.Job, len(tr.Jobs))}
	copy(second.Jobs, tr.Jobs)
	base := float64(s.Now())
	for i := range second.Jobs {
		second.Jobs[i].Arrival += base + span/1000
	}
	if err := s.SubmitTrace(second); err != nil {
		t.Fatal(err)
	}
	if err := s.StepUntil(hierdrl.Time(second.Jobs[len(second.Jobs)/2].Arrival)); err != nil {
		t.Fatal(err)
	}

	const epochs = 500
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < epochs; i++ {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perEpoch := avg / epochs; perEpoch > 0.01 {
		t.Errorf("sharded steady step allocates %.3f allocs/epoch, want 0", perEpoch)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIntoZeroAllocWarm pins the Session.Snapshot satellite: a warm
// SnapshotInto — including the per-shard view refresh and the fixed-order
// aggregate reduction — allocates nothing, in both tiers.
func TestSnapshotIntoZeroAllocWarm(t *testing.T) {
	for _, p := range []int{1, 4} {
		cfg := hierdrl.RoundRobin(8)
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p))
		if err != nil {
			t.Fatal(err)
		}
		tr := hierdrl.SyntheticTraceForCluster(300, 8, 4)
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatal(err)
		}
		if err := s.StepUntil(hierdrl.Time(tr.Jobs[150].Arrival)); err != nil {
			t.Fatal(err)
		}
		var snap hierdrl.SessionSnapshot
		s.SnapshotInto(&snap) // first call sizes the view buffers
		if avg := testing.AllocsPerRun(100, func() { s.SnapshotInto(&snap) }); avg > 0 {
			t.Errorf("P=%d: warm SnapshotInto allocates %.1f allocs/op, want 0", p, avg)
		}
		if snap.View.M != 8 || snap.Ingested != int64(len(tr.Jobs)) {
			t.Fatalf("P=%d: bad snapshot %+v", p, snap)
		}
		s.Close()
	}
}
