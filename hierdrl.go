// Package hierdrl reproduces "A Hierarchical Framework of Cloud Resource
// Allocation and Power Management Using Deep Reinforcement Learning"
// (Liu et al., ICDCS 2017) as a runnable Go library.
//
// The package wires the paper's two tiers around a discrete-event cluster
// simulator:
//
//   - the global tier dispatches every arriving VM/job to a server with a
//     deep-RL agent (autoencoder + weight-shared Sub-Q network, deep
//     Q-learning for SMDP, experience replay, epsilon-greedy exploration);
//   - the local tier power-manages each server independently with a
//     model-free RL timeout policy fed by an LSTM inter-arrival predictor.
//
// The primary entry point is the Session: a long-lived run that accepts
// jobs incrementally (Submit / SubmitTrace), advances the simulated clock
// under caller control (Step / StepUntil / Drain), exposes live state
// (Snapshot, Observer hooks), honors context cancellation, and produces the
// paper's measurements (Result). Quickstart:
//
//	s, err := hierdrl.NewSession(hierdrl.Hierarchical(30))
//	if err != nil { ... }
//	defer s.Close()
//	s.SubmitTrace(hierdrl.SyntheticTrace(10000, 1)) // or s.Submit(job) per job
//	if err := s.Drain(); err != nil { ... }
//	res, err := s.Result()
//	if err != nil { ... }
//	fmt.Println(res.Summary)
//
// The batch helper Run(cfg, tr) wraps exactly that sequence; RunComparison
// and RunTradeoff fan batched runs out in parallel. Custom allocation
// policies, power managers, and workload predictors plug in through
// RegisterAllocator / RegisterPowerManager / RegisterPredictor, after which
// the Config.Alloc / Config.DPM / Config.Predictor strings resolve to them
// like to the built-ins.
//
// The three preset constructors mirror the paper's evaluation systems:
// RoundRobin (baseline: even dispatch, servers always on), DRLOnly (DRL
// allocation with ad-hoc immediate sleep, Fig. 4(a)), and Hierarchical (DRL
// allocation plus the RL/LSTM local tier, Fig. 4(b)). See EXPERIMENTS.md for
// the Table I / Fig. 8-10 reproductions.
package hierdrl

import (
	"hierdrl/internal/cluster"
	"hierdrl/internal/global"
	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/metrics"
	"hierdrl/internal/trace"
)

// Re-exported result types so downstream users never import internal
// packages.
type (
	// Summary is one Table I row: accumulated energy/latency plus averages.
	Summary = metrics.Summary
	// Checkpoint is one Fig. 8/9 series point.
	Checkpoint = metrics.Checkpoint
	// TradeoffPoint is one Fig. 10 point.
	TradeoffPoint = metrics.TradeoffPoint
	// Trace is an arrival-ordered job workload.
	Trace = trace.Trace
	// TraceStats summarizes a workload.
	TraceStats = trace.Stats
	// Job is one workload record: an arrival instant, a duration, and
	// per-dimension resource demands. It is both a Trace element and the
	// unit of streaming ingestion (Session.Submit).
	Job = trace.Job
)

// JoulesPerKWh converts joules to kilowatt-hours.
const JoulesPerKWh = metrics.JoulesPerKWh

// ParetoFrontOf filters trade-off points to the non-dominated subset, sorted
// by latency.
func ParetoFrontOf(points []TradeoffPoint) []TradeoffPoint {
	return metrics.ParetoFront(points)
}

// HypervolumeOf returns the area a trade-off curve dominates relative to a
// reference corner — the quantitative form of the paper's "smallest area
// against the axes" comparison in Fig. 10 (larger = better).
func HypervolumeOf(points []TradeoffPoint, refLat, refEnergy float64) float64 {
	return metrics.HypervolumeArea(points, refLat, refEnergy)
}

// AllocPolicy selects the global-tier allocation policy.
type AllocPolicy string

// Allocation policies.
const (
	AllocRoundRobin  AllocPolicy = "round-robin"
	AllocRandom      AllocPolicy = "random"
	AllocLeastLoaded AllocPolicy = "least-loaded"
	AllocPackFit     AllocPolicy = "pack-fit"
	AllocDRL         AllocPolicy = "drl"
)

// DPMKind selects the local-tier power-management policy.
type DPMKind string

// Power-management policies.
const (
	DPMAlwaysOn     DPMKind = "always-on"
	DPMAdHoc        DPMKind = "ad-hoc"
	DPMFixedTimeout DPMKind = "fixed-timeout"
	DPMRL           DPMKind = "rl"
)

// PredictorKind selects the workload predictor feeding the RL power manager.
type PredictorKind string

// Predictors.
const (
	PredictorLSTM       PredictorKind = "lstm"
	PredictorEWMA       PredictorKind = "ewma"
	PredictorLastValue  PredictorKind = "last-value"
	PredictorWindowMean PredictorKind = "window-mean"
)

// FaultKind selects the failure/repair model.
type FaultKind string

// Fault models.
const (
	// FaultNone disables fault injection (the default).
	FaultNone FaultKind = "none"
	// FaultExpCrash gives every server an independent exponential
	// crash/repair process parameterized by MTTFSec/MTTRSec, derived from
	// (Seed, serverID) so the schedule is identical at every shard count.
	FaultExpCrash FaultKind = "exp-crash"
	// FaultCorrelatedCrash crashes whole failure domains (racks/zones)
	// together: one exponential crash/repair process per domain (MTTFSec/
	// MTTRSec), derived from (Seed, domain index), with every member down
	// and repaired at identical instants. Domains come from Config.Domains,
	// falling back to one domain per Cluster.Classes entry, then to the
	// whole cluster as a single domain.
	FaultCorrelatedCrash FaultKind = "correlated-crash"
	// FaultDegrade is the fail-slow model: instead of dying, a server's
	// effective speed is multiplied by DegradeFactor for an exponential
	// window (MTTFSec mean time to onset, MTTRSec mean window length).
	// Running jobs keep their committed finish instants; jobs started while
	// degraded stretch by 1/DegradeFactor; allocators observe the degraded
	// speed through the cluster view.
	FaultDegrade FaultKind = "degrade"
	// FaultDrain models planned maintenance: every DrainEverySec (staggered
	// evenly across servers) a server stops accepting work, migrates its
	// queue through the Retry policy (counted JobsMigrated, not
	// JobsInterrupted), finishes its running jobs, then powers off for
	// DrainWindowSec before rejoining cold. The schedule is RNG-free.
	FaultDrain FaultKind = "maintenance-drain"
)

// RetryKind selects what happens to jobs evicted by a server crash.
type RetryKind string

// Retry policies.
const (
	// RetryImmediate requeues every evicted job at the crash instant.
	RetryImmediate RetryKind = "immediate"
	// RetryBackoff requeues with capped exponential delay
	// (RetryBackoffSec doubling up to RetryBackoffCapSec), dropping after
	// RetryMax attempts when RetryMax > 0.
	RetryBackoff RetryKind = "backoff"
	// RetryDropAfter requeues immediately up to RetryMax attempts, then
	// drops the job.
	RetryDropAfter RetryKind = "drop-after"
)

// Config describes one end-to-end experiment.
type Config struct {
	// Name labels the run in reports.
	Name string
	// M is the cluster size.
	M int
	// Seed drives every stochastic component.
	Seed int64

	// Alloc selects the global tier.
	Alloc AllocPolicy
	// Global configures the DRL agent (used when Alloc == AllocDRL).
	Global global.Config
	// WarmupTrace, when non-nil and Alloc == AllocDRL, drives the offline
	// phase of Algorithm 1: high-epsilon rollouts fill the experience
	// memory, the autoencoder pretrains on observed group states, and
	// fitted-Q sweeps refine the DNN before the measured run.
	WarmupTrace *Trace
	// WarmupEpsilon is the exploration rate during warmup (default 1.0:
	// the "arbitrary policy" of Algorithm 1).
	WarmupEpsilon float64
	// AEPretrainEpochs and OfflineSweeps size the offline phase.
	AEPretrainEpochs int
	OfflineSweeps    int
	// PostWarmupEpsilon is the exploration rate entering the measured run
	// (<= 0 restores the pre-warmup epsilon).
	PostWarmupEpsilon float64

	// DPM selects the local tier.
	DPM DPMKind
	// FixedTimeoutSec parameterizes DPMFixedTimeout.
	FixedTimeoutSec float64
	// LocalRL configures the RL power manager (used when DPM == DPMRL).
	LocalRL local.RLConfig
	// Predictor selects the workload predictor for DPMRL.
	Predictor PredictorKind
	// LSTMPredictor configures the LSTM predictor.
	LSTMPredictor lstm.PredictorConfig

	// Faults selects the failure/repair model (default FaultNone). With
	// FaultExpCrash every server crashes and repairs on an independent
	// exponential process; running and queued jobs are evicted into the
	// session's pending queue through the Retry policy, and allocation
	// degrades gracefully around the dead servers.
	Faults FaultKind
	// MTTFSec/MTTRSec parameterize FaultExpCrash (mean time to failure /
	// repair, seconds; both must be positive).
	MTTFSec float64
	MTTRSec float64
	// Retry selects the requeue policy for crash-evicted jobs (default
	// RetryImmediate; only consulted when Faults is active).
	Retry RetryKind
	// RetryBackoffSec/RetryBackoffCapSec parameterize RetryBackoff (defaults
	// 30s base doubling to a 600s cap).
	RetryBackoffSec    float64
	RetryBackoffCapSec float64
	// RetryMax bounds retry attempts for RetryBackoff (0 = unbounded) and
	// RetryDropAfter (required > 0); beyond it the job is dropped and
	// counted in Summary.JobsLost.
	RetryMax int
	// Domains partitions the cluster into contiguous failure domains
	// (racks/zones) for FaultCorrelatedCrash; counts must sum to M. Empty
	// falls back to one domain per Cluster.Classes entry when classes are
	// configured, else the whole cluster forms one domain.
	Domains []FailureDomain
	// DegradeFactor is FaultDegrade's speed multiplier in (0, 1) applied
	// while a server is fail-slow (default 0.25).
	DegradeFactor float64
	// DrainEverySec/DrainWindowSec parameterize FaultDrain: the period
	// between a server's maintenance windows and the powered-off window
	// length (defaults 14400s / 600s).
	DrainEverySec  float64
	DrainWindowSec float64

	// CheckpointEvery records a Fig. 8/9 series point after this many job
	// completions (0 disables).
	CheckpointEvery int
	// Cluster overrides the cluster configuration; when zero-valued it is
	// derived from M via cluster.DefaultConfig.
	Cluster cluster.Config
}

// RoundRobin returns the paper's baseline: round-robin dispatch with servers
// always on.
func RoundRobin(m int) Config {
	return Config{
		Name:  "round-robin",
		M:     m,
		Seed:  1,
		Alloc: AllocRoundRobin,
		DPM:   DPMAlwaysOn,
	}
}

// DRLOnly returns the paper's middle comparator: DRL-based allocation with
// ad-hoc power management (servers sleep the instant they go idle,
// Fig. 4(a)).
func DRLOnly(m int) Config {
	return Config{
		Name:              "drl-only",
		M:                 m,
		Seed:              1,
		Alloc:             AllocDRL,
		Global:            global.DefaultConfig(m),
		WarmupEpsilon:     1.0,
		PostWarmupEpsilon: 0.08,
		DPM:               DPMAdHoc,
	}
}

// Hierarchical returns the paper's proposed system: DRL allocation plus the
// RL/LSTM local power-management tier (Fig. 4(b)).
func Hierarchical(m int) Config {
	lp := lstm.DefaultPredictorConfig()
	// Calibrated online-training cadence: every 32 arrivals, 4 windows per
	// round — enough signal for the timeout categories while keeping the
	// per-server BPTT cost tractable at 95k-job scale.
	lp.TrainEvery = 32
	lp.BatchSize = 4
	return Config{
		Name:              "hierarchical",
		M:                 m,
		Seed:              1,
		Alloc:             AllocDRL,
		Global:            global.DefaultConfig(m),
		WarmupEpsilon:     1.0,
		PostWarmupEpsilon: 0.08,
		DPM:               DPMRL,
		LocalRL:           local.DefaultRLConfig(),
		Predictor:         PredictorLSTM,
		LSTMPredictor:     lp,
	}
}

// FixedTimeoutBaseline returns the Fig. 10 baseline: DRL allocation with a
// fixed local timeout.
func FixedTimeoutBaseline(m int, timeoutSec float64) Config {
	cfg := DRLOnly(m)
	cfg.Name = "fixed-timeout"
	cfg.DPM = DPMFixedTimeout
	cfg.FixedTimeoutSec = timeoutSec
	return cfg
}

// SyntheticTrace generates a Google-style workload with n jobs (see
// internal/trace for the calibration; DESIGN.md documents the substitution
// for the proprietary Google cluster traces). The arrival rate is calibrated
// for the paper's 30-server operating point.
func SyntheticTrace(n int, seed int64) *Trace {
	cfg := trace.DefaultGeneratorConfig()
	cfg.NumJobs = n
	return trace.MustGenerate(cfg, seed)
}

// TraceGenConfig re-exports the synthetic-workload generator configuration;
// see its field docs for the calibration knobs (arrival rate, diurnal and
// burst modulation, duration and demand distributions).
type TraceGenConfig = trace.GeneratorConfig

// DefaultTraceGen returns the generator calibration matched to the paper's
// published Google-trace marginals.
func DefaultTraceGen() TraceGenConfig { return trace.DefaultGeneratorConfig() }

// GenerateTrace produces a synthetic workload from an explicit generator
// configuration.
func GenerateTrace(cfg TraceGenConfig, seed int64) (*Trace, error) {
	return trace.Generate(cfg, seed)
}

// SyntheticTraceForCluster generates a workload whose arrival rate is scaled
// so an m-server cluster sees the same relative offered load as the paper's
// 30-server configuration (~20% of aggregate CPU capacity). Use it when
// evaluating reduced-size clusters so results are not dominated by
// saturation effects.
func SyntheticTraceForCluster(n, m int, seed int64) *Trace {
	cfg := trace.DefaultGeneratorConfig()
	cfg.NumJobs = n
	cfg.BaseRate *= float64(m) / 30.0
	return trace.MustGenerate(cfg, seed)
}

// Result carries everything one run produces.
type Result struct {
	// Summary is the Table I row.
	Summary Summary
	// Checkpoints is the Fig. 8/9 series (empty unless CheckpointEvery > 0).
	Checkpoints []Checkpoint
	// AgentDiag describes the DRL agent's learning state ("" for
	// non-learning allocators).
	AgentDiag string
	// TotalWakeups and TotalShutdowns count server mode transitions.
	TotalWakeups   int64
	TotalShutdowns int64
}

// Tradeoff converts the result into a Fig. 10 point.
func (r *Result) Tradeoff(label string, weight float64) TradeoffPoint {
	return TradeoffPoint{
		Label:            label,
		Weight:           weight,
		AvgLatencySec:    r.Summary.AvgLatencySec,
		AvgEnergyJPerJob: r.Summary.AvgEnergyJPerJob,
	}
}
