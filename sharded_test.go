package hierdrl_test

import (
	"math"
	"sync/atomic"
	"testing"

	"hierdrl"
)

// shardTestTol is the strict-vs-parallel metric tolerance asserted here —
// far tighter than DESIGN.md §12's documented contract, because on these
// workloads (continuous arrival processes, no cross-shard simultaneity) the
// tiers are expected to agree bitwise; the margin only covers a pathological
// timestamp tie.
const shardTestTol = 1e-9

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= shardTestTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// shardTestSystems returns the three compared systems at a reduced M=8
// operating point (P=8 needs at least 8 servers).
func shardTestSystems(t *testing.T) (map[string]hierdrl.Config, *hierdrl.Trace) {
	t.Helper()
	m := 8
	warm := hierdrl.SyntheticTraceForCluster(150, m, 1007)
	tr := hierdrl.SyntheticTraceForCluster(500, m, 7)
	cfgs := map[string]hierdrl.Config{}

	rr := hierdrl.RoundRobin(m)
	cfgs["round-robin"] = rr

	drl := hierdrl.DRLOnly(m)
	drl.WarmupTrace = warm
	cfgs["drl-only"] = drl

	hier := hierdrl.Hierarchical(m)
	hier.WarmupTrace = warm
	cfgs["hierarchical"] = hier

	ll := hierdrl.RoundRobin(m)
	ll.Name = "least-loaded"
	ll.Alloc = hierdrl.AllocLeastLoaded
	cfgs["least-loaded"] = ll
	return cfgs, tr
}

// TestShardedMatchesStrict runs the compared systems strict (P=1) and
// sharded (P in {2,4,8}) on the same workload and asserts the parallel
// tier's results equal the strict tier's within the documented tolerance —
// including the full DRL hierarchy, whose reward integral flows through the
// merged change feed.
func TestShardedMatchesStrict(t *testing.T) {
	if testing.Short() {
		t.Skip("DRL warmup passes are slow; run without -short")
	}
	cfgs, tr := shardTestSystems(t)
	for name, cfg := range cfgs {
		strict, err := hierdrl.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s strict: %v", name, err)
		}
		for _, p := range []int{2, 4, 8} {
			res, err := hierdrl.RunWith(cfg, tr, hierdrl.WithShards(p))
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			if res.Summary.Jobs != strict.Summary.Jobs {
				t.Errorf("%s P=%d: %d jobs vs strict %d", name, p, res.Summary.Jobs, strict.Summary.Jobs)
			}
			pairs := map[string][2]float64{
				"energy":   {res.Summary.EnergykWh, strict.Summary.EnergykWh},
				"accLat":   {res.Summary.AccLatencySec, strict.Summary.AccLatencySec},
				"avgPower": {res.Summary.AvgPowerW, strict.Summary.AvgPowerW},
				"duration": {res.Summary.DurationSec, strict.Summary.DurationSec},
			}
			for metric, v := range pairs {
				if !relClose(v[0], v[1]) {
					t.Errorf("%s P=%d: %s %v vs strict %v", name, p, metric, v[0], v[1])
				}
			}
			if res.TotalWakeups != strict.TotalWakeups || res.TotalShutdowns != strict.TotalShutdowns {
				t.Errorf("%s P=%d: transitions %d/%d vs strict %d/%d", name, p,
					res.TotalWakeups, res.TotalShutdowns, strict.TotalWakeups, strict.TotalShutdowns)
			}
		}
	}
}

// TestShardedReproducibleRunToRun asserts the parallel tier's determinism
// contract: the same configuration at the same P yields bitwise-identical
// metrics on repeated runs (goroutine scheduling must never leak into
// results).
func TestShardedReproducibleRunToRun(t *testing.T) {
	m := 8
	cfg := hierdrl.Hierarchical(m)
	cfg.WarmupTrace = hierdrl.SyntheticTraceForCluster(100, m, 1007)
	tr := hierdrl.SyntheticTraceForCluster(300, m, 7)
	var ref *hierdrl.Result
	for run := 0; run < 3; run++ {
		res, err := hierdrl.RunWith(cfg, tr, hierdrl.WithShards(4))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Float64bits(res.Summary.EnergykWh) != math.Float64bits(ref.Summary.EnergykWh) ||
			math.Float64bits(res.Summary.AccLatencySec) != math.Float64bits(ref.Summary.AccLatencySec) {
			t.Fatalf("run %d diverged: energy %x vs %x, accLat %x vs %x", run,
				math.Float64bits(res.Summary.EnergykWh), math.Float64bits(ref.Summary.EnergykWh),
				math.Float64bits(res.Summary.AccLatencySec), math.Float64bits(ref.Summary.AccLatencySec))
		}
	}
}

// TestRunStreamedMatchesRun asserts the chunked streaming runner reproduces
// the batch Run exactly, in both tiers: same workload, same metrics.
func TestRunStreamedMatchesRun(t *testing.T) {
	m := 8
	cfg := hierdrl.ScaleSim(m)
	tr := hierdrl.SyntheticTraceForCluster(2000, m, 3)
	batch, err := hierdrl.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		src, err := hierdrl.ScaleStream(2000, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := hierdrl.RunStreamed(cfg, src, hierdrl.WithShards(p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !relClose(res.Summary.EnergykWh, batch.Summary.EnergykWh) ||
			!relClose(res.Summary.AccLatencySec, batch.Summary.AccLatencySec) {
			t.Errorf("P=%d: energy %v accLat %v vs batch %v %v", p,
				res.Summary.EnergykWh, res.Summary.AccLatencySec,
				batch.Summary.EnergykWh, batch.Summary.AccLatencySec)
		}
	}
}

// TestShardedObserverHammer drives a sharded session with every Observer
// hook active — each one taking a mid-run snapshot through the reused
// buffer — and asserts the callback streams match the strict tier's. Under
// `go test -race` this doubles as the concurrency soak for the logging/
// replay machinery: P lanes step concurrently while the observer reads
// cluster state at every barrier.
func TestShardedObserverHammer(t *testing.T) {
	m := 16
	tr := hierdrl.SyntheticTraceForCluster(1500, m, 11)
	cfg := hierdrl.ScaleSim(m)
	cfg.CheckpointEvery = 100

	type counts struct {
		done, trans, checkpoints int64
	}
	runWith := func(p int) (counts, *hierdrl.Result) {
		var c counts
		var snap hierdrl.SessionSnapshot
		var lastDone hierdrl.Time
		obs := hierdrl.Observer{
			OnJobDone: func(tm hierdrl.Time, j *hierdrl.ClusterJob) {
				atomic.AddInt64(&c.done, 1)
				if tm < lastDone {
					t.Errorf("P=%d: completion replay not time-ordered: %v after %v", p, tm, lastDone)
				}
				lastDone = tm
			},
			OnModeTransition: func(tm hierdrl.Time, server int, from, to hierdrl.PowerState) {
				atomic.AddInt64(&c.trans, 1)
			},
			OnCheckpoint: func(cp hierdrl.Checkpoint) { atomic.AddInt64(&c.checkpoints, 1) },
		}
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p), hierdrl.WithObserver(obs))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		defer s.Close()
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		// Interleave stepping with mid-run snapshots through the reused view.
		span := tr.Jobs[len(tr.Jobs)-1].Arrival
		for i := 1; i <= 10; i++ {
			if err := s.StepUntil(hierdrl.Time(span * float64(i) / 10)); err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			s.SnapshotInto(&snap)
			if snap.View.M != m {
				t.Fatalf("P=%d: snapshot M=%d", p, snap.View.M)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		res, err := s.Result()
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		return c, res
	}

	strictCounts, strictRes := runWith(1)
	if strictCounts.done != int64(len(tr.Jobs)) {
		t.Fatalf("strict saw %d completions, want %d", strictCounts.done, len(tr.Jobs))
	}
	for _, p := range []int{2, 4} {
		c, res := runWith(p)
		if c != strictCounts {
			t.Errorf("P=%d: observer counts %+v vs strict %+v", p, c, strictCounts)
		}
		if !relClose(res.Summary.EnergykWh, strictRes.Summary.EnergykWh) {
			t.Errorf("P=%d: energy %v vs strict %v", p, res.Summary.EnergykWh, strictRes.Summary.EnergykWh)
		}
		if len(res.Checkpoints) != len(strictRes.Checkpoints) {
			t.Errorf("P=%d: %d checkpoints vs strict %d", p, len(res.Checkpoints), len(strictRes.Checkpoints))
		}
	}
}

// TestWithShardsValidation asserts the option's error surface.
func TestWithShardsValidation(t *testing.T) {
	cfg := hierdrl.RoundRobin(4)
	if _, err := hierdrl.NewSession(cfg, hierdrl.WithShards(8)); err == nil {
		t.Fatal("NewSession with more shards than servers did not fail")
	}
	s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(0))
	if err != nil {
		t.Fatalf("WithShards(0) should mean the strict default: %v", err)
	}
	s.Close()
}

// TestShardedLateSubmit mirrors the strict pump's late-arrival clamping: a
// job submitted with an arrival already in the past is dispatched at the
// current clock, in both tiers, with identical results.
func TestShardedLateSubmit(t *testing.T) {
	m := 8
	run := func(p int) hierdrl.Summary {
		cfg := hierdrl.ScaleSim(m)
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		tr := hierdrl.SyntheticTraceForCluster(200, m, 5)
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatal(err)
		}
		if err := s.StepUntil(hierdrl.Time(tr.Jobs[len(tr.Jobs)-1].Arrival + 100)); err != nil {
			t.Fatal(err)
		}
		// Arrival far in the past: dispatched at the current clock.
		late := tr.Jobs[0]
		late.Arrival = 1
		if err := s.Submit(late); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary
	}
	strict := run(1)
	for _, p := range []int{2, 4} {
		got := run(p)
		if !relClose(got.EnergykWh, strict.EnergykWh) || !relClose(got.AccLatencySec, strict.AccLatencySec) {
			t.Errorf("P=%d: energy %v accLat %v vs strict %v %v", p,
				got.EnergykWh, got.AccLatencySec, strict.EnergykWh, strict.AccLatencySec)
		}
	}
}
