// Live telemetry: WithTelemetry attaches an HTTP observability endpoint
// (Prometheus /metrics, /healthz, /snapshot JSON, net/http/pprof) to a
// running session, WithSketchOnly switches the metrics collector to
// constant-memory quantile sketches (dropping the O(jobs) sample slices),
// and WithEpochTrace records the parallel tier's decision-epoch phases into
// a fixed ring dumpable as Chrome trace-event JSON. The HTTP goroutines read
// only immutable blobs published at epoch boundaries, so telemetry never
// perturbs the simulation's determinism contract (DESIGN.md §17).
package hierdrl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"hierdrl/internal/telemetry"
)

// WithSketchOnly drops the collector's per-job latency/wait sample slices and
// answers the summary quantiles (p50/p95/p99, mean wait) from merging
// t-digest sketches instead: memory stays constant in the job count, at the
// cost of the documented sketch error (DESIGN.md §17; |q̂-q| ≲ 0.004 in
// q-space at p99 with the default compression). Exact-quantile goldens do not
// hold under this option — it is for unbounded streaming runs.
func WithSketchOnly() SessionOption {
	return func(o *sessionOptions) { o.sketchOnly = true }
}

// WithTelemetry serves live observability on addr (e.g. "127.0.0.1:9188", or
// "127.0.0.1:0" for an ephemeral port — read it back with TelemetryAddr):
// Prometheus-text /metrics (simulation families plus process self-metrics),
// /healthz, /snapshot (the latest SessionSnapshot as JSON), and
// /debug/pprof/. Metrics are published at epoch boundaries — every
// telemetryPublishEvery completed jobs, wall-clock throttled to one publish
// per telemetryMinPublishGap — and once at Result; scrapes read only the
// published blobs, never live simulation state. The option also enables the
// quantile sketches (without dropping the exact samples — combine with
// WithSketchOnly for constant memory).
func WithTelemetry(addr string) SessionOption {
	return func(o *sessionOptions) { o.telAddr = addr }
}

// telemetryPublishEvery is the default publish cadence in completed jobs,
// checked at the same epoch boundaries as WithAutoCheckpoint.
const telemetryPublishEvery = 500

// telemetryMinPublishGap throttles publishes by wall clock: a fast engine can
// clear 500 jobs in well under a millisecond, and each publish walks the
// O(M) cluster view — without the throttle that walk dominates small-epoch
// runs. The gap bounds publish work at ~4/s regardless of simulation speed.
// Wall time never reaches the engine: a publish only renders already-final
// state, so throttling cannot perturb the bitwise goldens.
const telemetryMinPublishGap = 250 * time.Millisecond

// WithEpochTrace records the last capacity decision epochs (capacity < 1
// defaults to 2048) of the parallel tier into a fixed-size ring: per-shard
// barrier-wait, dispatch-commit, lane-run, and view-refresh/encode segments,
// plus the coordinator's merged replay and allocation/GEMM. Zero steady-state
// allocation. Dump with Session.WriteEpochTrace (Chrome trace-event JSON).
// Requires WithShards(p >= 2); NewSession errors otherwise.
func WithEpochTrace(capacity int) SessionOption {
	return func(o *sessionOptions) {
		if capacity < 1 {
			capacity = 2048
		}
		o.etraceCap = capacity
	}
}

// WithEpochTraceFile is WithEpochTrace plus an automatic dump: Close writes
// the ring to path as Chrome trace-event JSON, so wrapper-owned sessions
// (RunSource, RunStreamed) can record traces too. A failing dump surfaces
// from Close.
func WithEpochTraceFile(path string, capacity int) SessionOption {
	return func(o *sessionOptions) {
		if capacity < 1 {
			capacity = 2048
		}
		o.etraceCap = capacity
		o.etracePath = path
	}
}

// sessionTelemetry is the per-session publishing state behind WithTelemetry
// and WithEpochTraceFile: the HTTP server (nil with only an epoch-trace
// file), the publish cadence, reused snapshot/encode buffers, and the
// wall-clock rate trackers.
type sessionTelemetry struct {
	srv        *telemetry.Server
	every      int64
	last       int64
	snap       SessionSnapshot
	prom       bytes.Buffer
	js         bytes.Buffer
	etracePath string

	lastWall   time.Time
	lastJobs   int64
	lastEvents int64
	jobsRate   float64
	eventsRate float64
}

// TelemetryAddr returns the bound address of the session's telemetry
// endpoint ("" when WithTelemetry was not configured). With "127.0.0.1:0"
// this resolves the ephemeral port actually bound.
func (s *Session) TelemetryAddr() string {
	if s.tel == nil || s.tel.srv == nil {
		return ""
	}
	return s.tel.srv.Addr()
}

// WriteEpochTrace dumps the decision-epoch ring as Chrome trace-event JSON
// (load in chrome://tracing or ui.perfetto.dev). Errors unless the session
// was built with WithEpochTrace / WithEpochTraceFile.
func (s *Session) WriteEpochTrace(w io.Writer) error {
	if s.sr == nil || s.sr.etrace == nil {
		return fmt.Errorf("hierdrl: epoch trace not enabled (WithEpochTrace requires WithShards(p >= 2))")
	}
	return s.sr.etrace.WriteChromeTrace(w)
}

// telTick publishes the metric blobs if the completed-job cadence has passed
// and the wall-clock throttle allows it. Called at the same epoch boundaries
// as autoTick; one branch when telemetry is off or publish-less (epoch-trace
// file only). The clock is only consulted after the (cheap) job-count gate.
func (s *Session) telTick() {
	t := s.tel
	if t == nil || t.srv == nil {
		return
	}
	done := s.cl.Completed()
	if done-t.last < t.every {
		return
	}
	if !t.lastWall.IsZero() && time.Since(t.lastWall) < telemetryMinPublishGap {
		return
	}
	t.last = done
	t.publish(s)
}

// telClose dumps the configured epoch-trace file and shuts the HTTP server
// down. Called once from Close.
func (s *Session) telClose() error {
	t := s.tel
	if t == nil {
		return nil
	}
	var err error
	if t.etracePath != "" {
		err = s.dumpEpochTrace(t.etracePath)
	}
	if t.srv != nil {
		t.srv.Close()
	}
	return err
}

func (s *Session) dumpEpochTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hierdrl: epoch trace: %w", err)
	}
	if err := s.WriteEpochTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("hierdrl: epoch trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hierdrl: epoch trace: %w", err)
	}
	return nil
}

// publish refreshes the reused snapshot, rebuilds both blobs, and swaps them
// into the server. Runs on the driving goroutine at an epoch boundary (all
// lanes quiescent), so the snapshot walk is race-free.
func (t *sessionTelemetry) publish(s *Session) {
	s.SnapshotInto(&t.snap)
	now := time.Now()
	fired := s.eventsFired()
	if !t.lastWall.IsZero() {
		if dt := now.Sub(t.lastWall).Seconds(); dt > 0 {
			t.jobsRate = float64(t.snap.Completed-t.lastJobs) / dt
			t.eventsRate = float64(fired-t.lastEvents) / dt
		}
	}
	t.lastWall, t.lastJobs, t.lastEvents = now, t.snap.Completed, fired

	t.buildProm(s)
	rec := buildSnapshotRecord(s, &t.snap)
	t.js.Reset()
	enc := json.NewEncoder(&t.js)
	enc.Encode(&rec) // the record has no unmarshalable fields; cannot fail
	t.srv.Publish(t.prom.Bytes(), bytes.TrimRight(t.js.Bytes(), "\n"))
}

// eventsFired sums fired events across all lanes.
func (s *Session) eventsFired() int64 {
	p := 1
	if s.sr != nil {
		p = s.sr.p
	}
	var n int64
	for i := 0; i < p; i++ {
		n += s.cl.Lane(i).Fired()
	}
	return n
}

// promQuantiles emits one summary-style family from a t-digest with optional
// extra labels (`class="short",`-form prefix, empty for none).
func promQuantiles(b *bytes.Buffer, family, labels string, d *telemetry.TDigest) {
	if d.Count() == 0 {
		return
	}
	for _, q := range [3]float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(b, "%s{%squantile=\"%g\"} %g\n", family, labels, q, d.Quantile(q))
	}
	cnt := family + "_count"
	if labels != "" {
		cnt += "{" + labels[:len(labels)-1] + "}" // drop the trailing comma
	}
	fmt.Fprintf(b, "%s %.0f\n", cnt, d.Count())
}

// buildProm renders the simulation metric families as Prometheus text into
// the reused buffer. Process self-metrics (goroutines, heap, GC) are appended
// by the server at scrape time.
func (t *sessionTelemetry) buildProm(s *Session) {
	b := &t.prom
	b.Reset()
	sn := &t.snap

	head := func(name, typ, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	head("hiersim_sim_time_seconds", "gauge", "Simulated clock.")
	fmt.Fprintf(b, "hiersim_sim_time_seconds %g\n", sn.Now.Seconds())
	head("hiersim_jobs_ingested_total", "counter", "Jobs accepted by the session.")
	fmt.Fprintf(b, "hiersim_jobs_ingested_total %d\n", sn.Ingested)
	head("hiersim_jobs_completed_total", "counter", "Jobs finished.")
	fmt.Fprintf(b, "hiersim_jobs_completed_total %d\n", sn.Completed)
	head("hiersim_jobs_pending", "gauge", "Ingested jobs not yet dispatched.")
	fmt.Fprintf(b, "hiersim_jobs_pending %d\n", sn.PendingArrivals)
	head("hiersim_jobs_in_system", "gauge", "Jobs queued or running on servers.")
	fmt.Fprintf(b, "hiersim_jobs_in_system %d\n", sn.JobsInSystem)
	head("hiersim_power_watts", "gauge", "Instantaneous cluster power draw.")
	fmt.Fprintf(b, "hiersim_power_watts %g\n", sn.TotalPowerW)
	head("hiersim_energy_kwh", "counter", "Energy integrated since t=0.")
	fmt.Fprintf(b, "hiersim_energy_kwh %g\n", sn.EnergykWh)
	head("hiersim_shards", "gauge", "Event-lane shard count (1 = strict tier).")
	p := 1
	if s.sr != nil {
		p = s.sr.p
	}
	fmt.Fprintf(b, "hiersim_shards %d\n", p)
	head("hiersim_jobs_per_second", "gauge", "Wall-clock job completion rate between publishes.")
	fmt.Fprintf(b, "hiersim_jobs_per_second %g\n", t.jobsRate)
	head("hiersim_events_per_second", "gauge", "Wall-clock simulation event rate between publishes.")
	fmt.Fprintf(b, "hiersim_events_per_second %g\n", t.eventsRate)

	if sk := s.col.Sketches(); sk != nil {
		head("hiersim_latency_seconds", "summary",
			"Completed-job latency quantiles (t-digest; overall and per duration class).")
		promQuantiles(b, "hiersim_latency_seconds", "", sk.MergedLatency())
		for cls := 0; cls < telemetry.NumJobClasses; cls++ {
			promQuantiles(b, "hiersim_latency_seconds",
				fmt.Sprintf("class=%q,", telemetry.JobClassNames[cls]), sk.ClassLatency(cls))
		}
		head("hiersim_wait_seconds", "summary", "Completed-job queue-wait quantiles (t-digest).")
		promQuantiles(b, "hiersim_wait_seconds", "", sk.Wait())
	}

	if classes := s.cl.ServerClasses(); len(classes) > 0 {
		head("hiersim_class_energy_joules", "counter",
			"Energy integrated per heterogeneous server class.")
		lo := 0
		for i, c := range classes {
			hi := lo + c.Count
			name := c.Name
			if name == "" {
				name = fmt.Sprintf("class%d", i)
			}
			fmt.Fprintf(b, "hiersim_class_energy_joules{class=%q} %g\n",
				name, s.cl.RangeEnergyJoules(sn.Now, lo, hi))
			lo = hi
		}
	}

	head("hiersim_servers_down", "gauge", "Servers currently crashed.")
	fmt.Fprintf(b, "hiersim_servers_down %d\n", sn.ServersDown)
	head("hiersim_servers_unavailable", "gauge", "Servers crashed or draining.")
	fmt.Fprintf(b, "hiersim_servers_unavailable %d\n", sn.ServersUnavailable)
	head("hiersim_failures_total", "counter", "Server crash events.")
	fmt.Fprintf(b, "hiersim_failures_total %d\n", sn.Failures)
	head("hiersim_jobs_retried_total", "counter", "Retry-policy requeues.")
	fmt.Fprintf(b, "hiersim_jobs_retried_total %d\n", sn.JobsRetried)
	head("hiersim_jobs_lost_total", "counter", "Jobs dropped by the retry policy.")
	fmt.Fprintf(b, "hiersim_jobs_lost_total %d\n", sn.JobsLost)
	head("hiersim_jobs_migrated_total", "counter", "Drain-time queue migrations.")
	fmt.Fprintf(b, "hiersim_jobs_migrated_total %d\n", sn.JobsMigrated)
	head("hiersim_availability", "gauge", "1 - downtime/(M * elapsed).")
	fmt.Fprintf(b, "hiersim_availability %g\n", sn.Availability)
}

// SnapshotRecord is the flat JSON schema served by the telemetry endpoint's
// /snapshot and printed per line by `hiersim -snap-format json`: the
// SessionSnapshot aggregates (the per-server View excluded) plus the sketch
// quantiles when enabled. Quantile fields are nil until a first job
// completes (JSON cannot carry NaN).
type SnapshotRecord struct {
	TSec            float64 `json:"t_s"`
	Ingested        int64   `json:"ingested"`
	Completed       int64   `json:"completed"`
	PendingArrivals int     `json:"pending_arrivals"`
	JobsInSystem    int     `json:"jobs_in_system"`
	PowerW          float64 `json:"power_w"`
	EnergykWh       float64 `json:"energy_kwh"`
	AvgLatencySec   float64 `json:"avg_latency_s"`

	P50LatencySec *float64 `json:"p50_latency_s,omitempty"`
	P95LatencySec *float64 `json:"p95_latency_s,omitempty"`
	P99LatencySec *float64 `json:"p99_latency_s,omitempty"`

	ServersDown        int     `json:"servers_down"`
	ServersUnavailable int     `json:"servers_unavailable"`
	Failures           int64   `json:"failures"`
	JobsRetried        int64   `json:"jobs_retried"`
	JobsLost           int64   `json:"jobs_lost"`
	JobsMigrated       int64   `json:"jobs_migrated"`
	DomainOutages      int64   `json:"domain_outages"`
	LostWorkSec        float64 `json:"lost_work_s"`
	DegradedSec        float64 `json:"degraded_s"`
	Availability       float64 `json:"availability"`
}

// buildSnapshotRecord flattens a refreshed SessionSnapshot (plus the sketch
// quantiles, when enabled) into the shared JSON schema.
func buildSnapshotRecord(s *Session, sn *SessionSnapshot) SnapshotRecord {
	rec := SnapshotRecord{
		TSec:            sn.Now.Seconds(),
		Ingested:        sn.Ingested,
		Completed:       sn.Completed,
		PendingArrivals: sn.PendingArrivals,
		JobsInSystem:    sn.JobsInSystem,
		PowerW:          sn.TotalPowerW,
		EnergykWh:       sn.EnergykWh,
		AvgLatencySec:   sn.AvgLatencySec,

		ServersDown:        sn.ServersDown,
		ServersUnavailable: sn.ServersUnavailable,
		Failures:           sn.Failures,
		JobsRetried:        sn.JobsRetried,
		JobsLost:           sn.JobsLost,
		JobsMigrated:       sn.JobsMigrated,
		DomainOutages:      sn.DomainOutages,
		LostWorkSec:        sn.LostWorkSec,
		DegradedSec:        sn.DegradedSec,
		Availability:       sn.Availability,
	}
	if sk := s.col.Sketches(); sk != nil {
		if m := sk.MergedLatency(); m.Count() > 0 {
			p50, p95, p99 := m.Quantile(0.50), m.Quantile(0.95), m.Quantile(0.99)
			rec.P50LatencySec, rec.P95LatencySec, rec.P99LatencySec = &p50, &p95, &p99
		}
	}
	return rec
}

// SnapshotJSON refreshes a live snapshot and returns it as one JSON object
// (no trailing newline) in the SnapshotRecord schema — byte-compatible with
// the telemetry endpoint's /snapshot body. Safe wherever Snapshot is.
func (s *Session) SnapshotJSON() ([]byte, error) {
	var sn SessionSnapshot
	if s.tel != nil {
		// Reuse the publisher's snapshot buffers when present.
		s.SnapshotInto(&s.tel.snap)
		rec := buildSnapshotRecord(s, &s.tel.snap)
		return json.Marshal(&rec)
	}
	s.SnapshotInto(&sn)
	rec := buildSnapshotRecord(s, &sn)
	return json.Marshal(&rec)
}
