// Pluggable: extend the framework without forking internal/ — register a
// custom allocation policy and a custom power manager through the public
// registry, then drive them with the streaming Session API as if jobs were
// arriving from a live queue.
//
//	go run ./examples/pluggable
//	go run ./examples/pluggable -jobs 200   # smoke-sized
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

// coolestFirst is a thermal-style allocator: it sends each job to the awake
// server with the lowest committed CPU load, waking the first sleeper only
// when every awake server is above a load threshold.
type coolestFirst struct {
	threshold float64
}

func (coolestFirst) Name() string { return "coolest-first" }

func (c coolestFirst) Allocate(_ *hierdrl.ClusterJob, v *hierdrl.ClusterView) int {
	best, bestLoad := -1, 2.0
	firstSleeper := -1
	for i := 0; i < v.M; i++ {
		if v.State[i] == hierdrl.StateSleep {
			if firstSleeper < 0 {
				firstSleeper = i
			}
			continue
		}
		if load := v.Util[i][0] + v.Pending[i][0]; load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best >= 0 && (bestLoad < c.threshold || firstSleeper < 0) {
		return best
	}
	if firstSleeper >= 0 {
		return firstSleeper
	}
	return 0
}

// hysteresisNap is a custom power manager: it sleeps after a timeout that
// doubles each time the server is woken shortly after sleeping (exponential
// hysteresis), and resets once a sleep pays off.
type hysteresisNap struct {
	base, max float64
	current   float64
	lastSleep hierdrl.Time
}

func (h *hysteresisNap) OnIdle(t hierdrl.Time, _ *hierdrl.Server) float64 {
	if h.current == 0 {
		h.current = h.base
	}
	return h.current
}

func (h *hysteresisNap) OnArrival(t hierdrl.Time, _ *hierdrl.Server, before hierdrl.PowerState) {
	if before != hierdrl.StateSleep && before != hierdrl.StateShuttingDown {
		return
	}
	// Woken out of (or during) a sleep: if the sleep was short-lived the
	// timeout was too eager — back off. A long sleep earns a reset.
	if t-h.lastSleep < hierdrl.Time(10*h.base) {
		if h.current *= 2; h.current > h.max {
			h.current = h.max
		}
	} else {
		h.current = h.base
	}
	h.lastSleep = t
}

func (h *hysteresisNap) Observe(hierdrl.Time, float64, int) {}

func init() {
	hierdrl.RegisterAllocator("coolest-first", func(*hierdrl.Config, *hierdrl.RNG) (hierdrl.Allocator, error) {
		return coolestFirst{threshold: 0.6}, nil
	})
	hierdrl.RegisterPowerManager("hysteresis-nap", func(*hierdrl.Config, int, *hierdrl.RNG) (hierdrl.PowerManager, error) {
		return &hysteresisNap{base: 20, max: 320}, nil
	})
}

func main() {
	servers := flag.Int("servers", 8, "cluster size M")
	jobs := flag.Int("jobs", 2000, "workload length")
	flag.Parse()

	// The registered names resolve through Config exactly like built-ins.
	cfg := hierdrl.RoundRobin(*servers)
	cfg.Name = "coolest-first+nap"
	cfg.Alloc = "coolest-first"
	cfg.DPM = "hysteresis-nap"

	var transitions int
	s, err := hierdrl.NewSession(cfg, hierdrl.WithObserver(hierdrl.Observer{
		OnModeTransition: func(_ hierdrl.Time, _ int, _, _ hierdrl.PowerState) { transitions++ },
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Stream jobs in one at a time, draining the clock behind the stream —
	// the pattern a live ingestion frontend would use.
	workload := hierdrl.SyntheticTraceForCluster(*jobs, *servers, 1)
	for i, j := range workload.Jobs {
		if err := s.Submit(j); err != nil {
			log.Fatal(err)
		}
		if i%500 == 499 {
			if err := s.StepUntil(hierdrl.Time(j.Arrival)); err != nil {
				log.Fatal(err)
			}
			snap := s.Snapshot()
			fmt.Printf("t=%7.0fs  %4d/%4d done  %6.0f W  %5.2f kWh\n",
				snap.Now.Seconds(), snap.Completed, snap.Ingested,
				snap.TotalPowerW, snap.EnergykWh)
		}
	}
	if err := s.Drain(); err != nil {
		log.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s on %d servers: %.2f kWh, %.1f s avg latency, %d mode transitions\n",
		res.Summary.Policy, *servers, res.Summary.EnergykWh, res.Summary.AvgLatencySec, transitions)

	// Compare against the stock baselines on the same workload (round-robin
	// allocation in both, so the comparison isolates the power managers).
	for _, base := range []hierdrl.Config{hierdrl.RoundRobin(*servers), hierdrl.FixedTimeoutBaseline(*servers, 60)} {
		base.Alloc = hierdrl.AllocRoundRobin
		r, err := hierdrl.Run(base, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %.2f kWh, %.1f s avg latency\n",
			r.Summary.Policy+":", r.Summary.EnergykWh, r.Summary.AvgLatencySec)
	}
}
