// Tradeoff: the Fig. 10 study — sweep the latency-emphasis weight and plot
// (in ASCII) the average-latency / average-energy frontier of the
// hierarchical framework against DRL + fixed-timeout baselines.
//
//	go run ./examples/tradeoff
//	go run ./examples/tradeoff -jobs 200 -warmup 50   # smoke-sized
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"hierdrl"
)

func main() {
	jobs := flag.Int("jobs", 3000, "measured workload length per run")
	warmup := flag.Int("warmup", 1000, "offline-phase rollout length")
	flag.Parse()

	const m = 10
	sc := hierdrl.Scale{Jobs: *jobs, WarmupJobs: *warmup, Seed: 1, ClusterM: m}
	lambdas := []float64{0.2, 0.5, 0.8}

	fmt.Printf("sweeping lambda in %v on %d servers, %d jobs per run...\n",
		lambdas, m, sc.Jobs)
	curves, err := hierdrl.RunTradeoff(m, sc, lambdas)
	if err != nil {
		log.Fatal(err)
	}

	type curve struct {
		name string
		pts  []hierdrl.TradeoffPoint
	}
	all := []curve{
		{"hierarchical", curves.Hierarchical},
		{"fixed-30", curves.Fixed30},
		{"fixed-60", curves.Fixed60},
		{"fixed-90", curves.Fixed90},
	}

	fmt.Printf("\n%-14s %8s %14s %16s\n", "system", "lambda", "avg latency", "avg energy/job")
	var maxLat, maxE float64
	for _, c := range all {
		for _, p := range c.pts {
			fmt.Printf("%-14s %8.2f %12.1f s %13.1f kJ\n",
				c.name, p.Weight, p.AvgLatencySec, p.AvgEnergyJPerJob/1e3)
			maxLat = math.Max(maxLat, p.AvgLatencySec)
			maxE = math.Max(maxE, p.AvgEnergyJPerJob)
		}
	}

	// ASCII scatter: latency on x, energy on y.
	const w, h = 64, 16
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	marks := []byte{'H', '3', '6', '9'}
	for ci, c := range all {
		for _, p := range c.pts {
			x := int(p.AvgLatencySec / maxLat * float64(w-1))
			y := h - 1 - int(p.AvgEnergyJPerJob/maxE*float64(h-1))
			grid[y][x] = marks[ci]
		}
	}
	fmt.Println("\nenergy/job ^   (H=hierarchical, 3/6/9=fixed timeout 30/60/90)")
	for _, row := range grid {
		fmt.Printf("  %s\n", row)
	}
	fmt.Printf("  %s> latency\n", strings.Repeat("-", w))

	refLat, refE := maxLat*1.05, maxE*1.05
	fmt.Println("\ndominated hypervolume (larger = better trade-off):")
	for _, c := range all {
		fmt.Printf("  %-14s %.4g\n", c.name, hierdrl.HypervolumeOf(c.pts, refLat, refE))
	}
}
