// Quickstart: run the paper's hierarchical framework on a small synthetic
// workload through the Session API — streaming ingestion, a mid-run
// snapshot, observer hooks — and print the Table-I-style summary.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -jobs 500 -warmup 100   # CI-sized
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

func main() {
	servers := flag.Int("servers", 10, "cluster size M")
	jobs := flag.Int("jobs", 3000, "measured workload length")
	warmup := flag.Int("warmup", 1500, "offline-phase rollout length")
	flag.Parse()

	// A Google-style workload calibrated for the cluster size.
	workload := hierdrl.SyntheticTraceForCluster(*jobs, *servers, 1)

	// The proposed system: DRL global tier + RL/LSTM local tier. The
	// warmup trace drives the offline phase of Algorithm 1 (experience
	// memory fill, autoencoder pretraining, fitted-Q sweeps) inside
	// NewSession.
	cfg := hierdrl.Hierarchical(*servers)
	cfg.WarmupTrace = hierdrl.SyntheticTraceForCluster(*warmup, *servers, 2)
	cfg.Predictor = hierdrl.PredictorEWMA // swap for PredictorLSTM for the full paper setup
	cfg.CheckpointEvery = max(1, *jobs/5)

	// Observe the run as it happens: every checkpoint prints one progress
	// line, without touching the simulation hot path.
	obs := hierdrl.Observer{
		OnCheckpoint: func(cp hierdrl.Checkpoint) {
			fmt.Printf("  ... %5d jobs done at t=%.0fs: %.2f kWh\n",
				cp.Jobs, cp.Time.Seconds(), cp.EnergykWh)
		},
	}

	s, err := hierdrl.NewSession(cfg, hierdrl.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Stream the workload in: jobs could equally arrive one Submit at a
	// time from a socket or a queue.
	if err := s.SubmitTrace(workload); err != nil {
		log.Fatal(err)
	}

	// Advance the clock halfway and peek at the live cluster.
	mid := hierdrl.Time(workload.Jobs[workload.Len()/2].Arrival)
	if err := s.StepUntil(mid); err != nil {
		log.Fatal(err)
	}
	snap := s.Snapshot()
	asleep := 0
	for _, st := range snap.View.State {
		if st == hierdrl.StateSleep {
			asleep++
		}
	}
	fmt.Printf("mid-run: t=%.0fs, %d/%d jobs done, %.0f W draw, %d/%d servers asleep\n",
		snap.Now.Seconds(), snap.Completed, snap.Ingested, snap.TotalPowerW, asleep, *servers)

	// Finish and summarize.
	if err := s.Drain(); err != nil {
		log.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nhierarchical framework on", *servers, "servers:")
	fmt.Printf("  energy       %.2f kWh\n", res.Summary.EnergykWh)
	fmt.Printf("  avg power    %.1f W\n", res.Summary.AvgPowerW)
	fmt.Printf("  avg latency  %.1f s per job\n", res.Summary.AvgLatencySec)
	fmt.Printf("  transitions  %d wakeups, %d shutdowns\n",
		res.TotalWakeups, res.TotalShutdowns)
	fmt.Printf("  agent        %s\n", res.AgentDiag)

	// Baseline for context: round-robin with always-on servers (the batch
	// helper Run is the same Session driven end to end).
	rr, err := hierdrl.Run(hierdrl.RoundRobin(*servers), workload)
	if err != nil {
		log.Fatal(err)
	}
	saving := 100 * (rr.Summary.EnergykWh - res.Summary.EnergykWh) / rr.Summary.EnergykWh
	fmt.Printf("\nvs round-robin: %.1f%% energy saving (%.2f kWh -> %.2f kWh)\n",
		saving, rr.Summary.EnergykWh, res.Summary.EnergykWh)
}
