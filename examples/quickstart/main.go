// Quickstart: run the paper's hierarchical framework on a small synthetic
// workload and print the Table-I-style summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hierdrl"
)

func main() {
	const servers = 10

	// A Google-style workload calibrated for a 10-server cluster
	// (~3,000 jobs, a few simulated hours).
	workload := hierdrl.SyntheticTraceForCluster(3000, servers, 1)

	// The proposed system: DRL global tier + RL/LSTM local tier. The
	// warmup trace drives the offline phase of Algorithm 1 (experience
	// memory fill, autoencoder pretraining, fitted-Q sweeps).
	cfg := hierdrl.Hierarchical(servers)
	cfg.WarmupTrace = hierdrl.SyntheticTraceForCluster(1500, servers, 2)
	cfg.Predictor = hierdrl.PredictorEWMA // swap for PredictorLSTM for the full paper setup

	res, err := hierdrl.Run(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hierarchical framework on", servers, "servers:")
	fmt.Printf("  energy       %.2f kWh\n", res.Summary.EnergykWh)
	fmt.Printf("  avg power    %.1f W\n", res.Summary.AvgPowerW)
	fmt.Printf("  avg latency  %.1f s per job\n", res.Summary.AvgLatencySec)
	fmt.Printf("  transitions  %d wakeups, %d shutdowns\n",
		res.TotalWakeups, res.TotalShutdowns)
	fmt.Printf("  agent        %s\n", res.AgentDiag)

	// Baseline for context: round-robin with always-on servers.
	rr, err := hierdrl.Run(hierdrl.RoundRobin(servers), workload)
	if err != nil {
		log.Fatal(err)
	}
	saving := 100 * (rr.Summary.EnergykWh - res.Summary.EnergykWh) / rr.Summary.EnergykWh
	fmt.Printf("\nvs round-robin: %.1f%% energy saving (%.2f kWh -> %.2f kWh)\n",
		saving, rr.Summary.EnergykWh, res.Summary.EnergykWh)
}
