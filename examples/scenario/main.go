// Scenario: drive the simulator with the composable workload subsystem — run
// a registered scenario, then declare a custom one (diurnal base, an MMPP
// burst layer, a two-class mix on a heterogeneous big.LITTLE-style cluster)
// and register it through the same machinery the built-ins use.
//
//	go run ./examples/scenario
//	go run ./examples/scenario -scenario heavytail -jobs 5000
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

func init() {
	// A scenario is plain data: base rate layer x modulators x job classes,
	// plus an optional heterogeneous cluster layout. Registration validates
	// it and makes it addressable by name (also from hiersim -scenario).
	hierdrl.RegisterScenario(hierdrl.Scenario{
		Name:        "example-bursty-het",
		Description: "diurnal web load with hourly burst trains on a big.LITTLE cluster",
		M:           12,
		Workload: hierdrl.WorkloadConfig{
			NumJobs: 4000,
			Base:    hierdrl.WorkloadBase{Kind: hierdrl.BaseDiurnal, Rate: 0.07, Amplitude: 0.4},
			Mods: []hierdrl.WorkloadModulator{
				{Kind: hierdrl.ModMMPP, Factor: 2, MeanEverySec: 3600, MeanLenSec: 300},
			},
			Classes: []hierdrl.WorkloadClass{
				{
					Name:           "web",
					Weight:         0.8,
					Duration:       hierdrl.WorkloadDist{Kind: hierdrl.DistExponential, Mean: 150},
					CPU:            hierdrl.WorkloadDist{Kind: hierdrl.DistLogNormal, Median: 0.02, Sigma: 0.5},
					MemCorrelation: 0.6,
					Disk:           hierdrl.WorkloadDist{Kind: hierdrl.DistLogNormal, Median: 0.006, Sigma: 0.5},
				},
				{
					Name:           "batch",
					Weight:         0.2,
					Duration:       hierdrl.WorkloadDist{Kind: hierdrl.DistPareto, Alpha: 1.4, Xm: 400},
					CPU:            hierdrl.WorkloadDist{Kind: hierdrl.DistLogNormal, Median: 0.06, Sigma: 0.6},
					MemCorrelation: 0.8,
					Disk:           hierdrl.WorkloadDist{Kind: hierdrl.DistLogNormal, Median: 0.02, Sigma: 0.6},
				},
			},
		},
		Classes: []hierdrl.ServerClass{
			{Name: "little", Count: 8, Speed: 0.8, Power: hierdrl.PowerModel{IdleW: 65, PeakW: 110, TransitionW: 110}},
			{Name: "big", Count: 4, Speed: 1.6, Power: hierdrl.PowerModel{IdleW: 120, PeakW: 230, TransitionW: 230}},
		},
	})
}

func main() {
	name := flag.String("scenario", "example-bursty-het", "registered scenario to run")
	jobs := flag.Int("jobs", 0, "override the scenario's job count (0 = keep)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	sc, ok := hierdrl.LookupScenario(*name)
	if !ok {
		log.Fatalf("unknown scenario %q; registered: %v", *name, hierdrl.Scenarios())
	}
	sc = sc.Scaled(0, *jobs)
	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)

	// One Config per allocator, the scenario applied on top: ApplyTo sets the
	// cluster size and (for heterogeneous scenarios) the server-class layout.
	// Each run streams its jobs from a fresh Source — same seed, so every
	// allocator sees the bitwise-identical arrival sequence.
	for _, alloc := range []hierdrl.AllocPolicy{hierdrl.AllocRoundRobin, hierdrl.AllocLeastLoaded} {
		cfg := hierdrl.Config{
			Name:            string(alloc),
			Seed:            *seed,
			Alloc:           alloc,
			DPM:             hierdrl.DPMFixedTimeout,
			FixedTimeoutSec: 60,
		}
		sc.ApplyTo(&cfg)
		src, err := sc.Source(*seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hierdrl.RunSource(cfg, src)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-13s %5d jobs on %d servers: %6.2f kWh, %7.1f s avg latency, %6.1f W avg\n",
			string(alloc)+":", s.Jobs, s.M, s.EnergykWh, s.AvgLatencySec, s.AvgPowerW)
	}
}
