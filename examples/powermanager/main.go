// Powermanager: a single-server study of the local tier (Sec. VI). One
// machine receives a bursty arrival stream; we compare the RL timeout
// manager (with an LSTM or EWMA predictor) against always-on, ad-hoc
// immediate sleep, and fixed timeouts — the per-server version of Fig. 4.
//
//	go run ./examples/powermanager
//	go run ./examples/powermanager -jobs 150   # smoke-sized
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

func main() {
	jobs := flag.Int("jobs", 1500, "workload length")
	flag.Parse()

	const m = 1
	// One server's worth of arrivals: short jobs in bursts separated by
	// long quiet periods — exactly the regime where timeout choice matters.
	gen := hierdrl.DefaultTraceGen()
	gen.NumJobs = *jobs
	gen.BaseRate = 1.0 / 420 // one job every ~7 minutes on average
	gen.BurstRateFactor = 10 // ...arriving mostly in bursts
	gen.MeanBurstEvery = 2 * 3600
	gen.MeanBurstLen = 900
	gen.DurationLogMedian = 150 // short jobs (median 2.5 min)
	gen.DurationLogSigma = 0.5
	gen.CPULogMedian = 0.3 // each job loads the machine noticeably
	workload, err := hierdrl.GenerateTrace(gen, 7)
	if err != nil {
		log.Fatal(err)
	}

	type system struct {
		name string
		cfg  hierdrl.Config
	}
	systems := []system{
		{"always-on", func() hierdrl.Config {
			c := hierdrl.RoundRobin(m)
			return c
		}()},
		{"ad-hoc (sleep now)", func() hierdrl.Config {
			c := hierdrl.RoundRobin(m)
			c.DPM = hierdrl.DPMAdHoc
			return c
		}()},
		{"fixed timeout 30s", func() hierdrl.Config {
			c := hierdrl.RoundRobin(m)
			c.DPM = hierdrl.DPMFixedTimeout
			c.FixedTimeoutSec = 30
			return c
		}()},
		{"fixed timeout 90s", func() hierdrl.Config {
			c := hierdrl.RoundRobin(m)
			c.DPM = hierdrl.DPMFixedTimeout
			c.FixedTimeoutSec = 90
			return c
		}()},
		{"RL + EWMA predictor", func() hierdrl.Config {
			c := hierdrl.Hierarchical(m)
			c.Alloc = hierdrl.AllocRoundRobin // single server: allocation is trivial
			c.Predictor = hierdrl.PredictorEWMA
			return c
		}()},
		{"RL + LSTM predictor", func() hierdrl.Config {
			c := hierdrl.Hierarchical(m)
			c.Alloc = hierdrl.AllocRoundRobin
			c.Predictor = hierdrl.PredictorLSTM
			return c
		}()},
	}

	fmt.Printf("%-22s %12s %12s %12s %12s\n",
		"policy", "energy(kWh)", "avgLat(s)", "wakeups", "avgPower(W)")
	for _, sys := range systems {
		res, err := hierdrl.Run(sys.cfg, workload)
		if err != nil {
			log.Fatalf("%s: %v", sys.name, err)
		}
		fmt.Printf("%-22s %12.3f %12.1f %12d %12.1f\n",
			sys.name, res.Summary.EnergykWh, res.Summary.AvgLatencySec,
			res.TotalWakeups, res.Summary.AvgPowerW)
	}
	fmt.Println("\nthe RL manager should land between always-on (fast, hungry)")
	fmt.Println("and ad-hoc (frugal, slow): most of the energy saving at a")
	fmt.Println("fraction of the latency cost — the Fig. 4(b) effect.")
}
