// Datacenter: the paper's headline comparison (Sec. VII-B) at adjustable
// scale — round-robin vs DRL-only vs the hierarchical framework on the same
// week-like workload, with the Fig. 8-style accumulated series.
//
//	go run ./examples/datacenter                      # 20x-reduced, ~30 s
//	go run ./examples/datacenter -full                # 95,000 jobs, tens of minutes
//	go run ./examples/datacenter -jobs 200 -warmup 50 # smoke-sized
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdrl"
)

func main() {
	full := flag.Bool("full", false, "run the full 95,000-job operating point")
	servers := flag.Int("servers", 30, "cluster size M")
	jobs := flag.Int("jobs", 0, "override the measured workload length (0 = scale default)")
	warmup := flag.Int("warmup", -1, "override the warmup rollout length (-1 = scale default)")
	flag.Parse()

	sc := hierdrl.BenchScale(*servers)
	if *full {
		sc = hierdrl.FullScale(*servers)
	}
	if *jobs > 0 {
		sc.Jobs = *jobs
	}
	if *warmup >= 0 {
		sc.WarmupJobs = *warmup
	}

	fmt.Printf("comparing 3 systems on %d servers, %d jobs (warmup %d)...\n\n",
		*servers, sc.Jobs, sc.WarmupJobs)
	cmp, err := hierdrl.RunComparison(*servers, sc, sc.Jobs/10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %14s %18s %12s %14s\n",
		"policy", "Energy (kWh)", "Latency (10^6 s)", "Power (W)", "AvgLat (s)")
	for _, s := range cmp.Rows() {
		fmt.Printf("%-14s %14.2f %18.3f %12.1f %14.1f\n",
			s.Policy, s.EnergykWh, s.AccLatencySec/1e6, s.AvgPowerW, s.AvgLatencySec)
	}

	rr := cmp.RoundRobin.Summary
	hier := cmp.Hierarchical.Summary
	fmt.Printf("\nhierarchical saves %.1f%% power/energy vs round-robin\n",
		100*(rr.EnergykWh-hier.EnergykWh)/rr.EnergykWh)

	fmt.Println("\naccumulated energy series (Fig. 8(b) shape):")
	fmt.Printf("%-10s %14s %14s %14s\n", "jobs", "round-robin", "drl-only", "hierarchical")
	n := min(len(cmp.RoundRobin.Checkpoints),
		min(len(cmp.DRLOnly.Checkpoints), len(cmp.Hierarchical.Checkpoints)))
	for i := 0; i < n; i++ {
		fmt.Printf("%-10d %14.2f %14.2f %14.2f\n",
			cmp.RoundRobin.Checkpoints[i].Jobs,
			cmp.RoundRobin.Checkpoints[i].EnergykWh,
			cmp.DRLOnly.Checkpoints[i].EnergykWh,
			cmp.Hierarchical.Checkpoints[i].EnergykWh)
	}
}
