package rl

import (
	"fmt"
	"math"
)

// RewardIntegrator accumulates the exactly-discounted integral of a
// piecewise-constant reward rate:
//
//	I(t) = ∫_{t0}^{t} e^{-beta (u - t0)} r(u) du
//
// Eqn. (2) of the paper assumes the reward rate is constant over the sojourn
// between two decision epochs. In the simulated cluster the rate (power
// draw, queue length) changes at every event inside the sojourn, so both
// tiers feed their reward signals through this integrator and then extract
// the *equivalent constant rate* — the unique constant rate that produces
// the same discounted integral over the sojourn — which makes the Eqn. (2)
// update exact.
type RewardIntegrator struct {
	beta float64

	started  bool
	t0       float64
	last     float64
	rate     float64
	integral float64
}

// NewRewardIntegrator returns an integrator with discount rate beta >= 0.
func NewRewardIntegrator(beta float64) *RewardIntegrator {
	if beta < 0 {
		panic(fmt.Sprintf("rl: NewRewardIntegrator negative beta %v", beta))
	}
	return &RewardIntegrator{beta: beta}
}

// Reset starts a new sojourn at time t with the given initial reward rate.
func (ri *RewardIntegrator) Reset(t, rate float64) {
	ri.started = true
	ri.t0 = t
	ri.last = t
	ri.rate = rate
	ri.integral = 0
}

// Started reports whether Reset has been called.
func (ri *RewardIntegrator) Started() bool { return ri.started }

// SetRate records that the reward rate changed to rate at time t. Calls must
// be non-decreasing in t.
func (ri *RewardIntegrator) SetRate(t, rate float64) {
	ri.advance(t)
	ri.rate = rate
}

// advance integrates the current constant piece up to time t.
func (ri *RewardIntegrator) advance(t float64) {
	if !ri.started {
		panic("rl: RewardIntegrator used before Reset")
	}
	if t < ri.last-1e-9 {
		panic(fmt.Sprintf("rl: RewardIntegrator time went backwards: %v < %v", t, ri.last))
	}
	if t <= ri.last {
		return
	}
	dt := t - ri.last
	if ri.beta <= 1e-12 {
		ri.integral += ri.rate * dt
	} else {
		// ∫_{last}^{t} e^{-beta(u-t0)} du = e^{-beta(last-t0)} (1-e^{-beta dt})/beta
		ri.integral += ri.rate * math.Exp(-ri.beta*(ri.last-ri.t0)) *
			(1 - math.Exp(-ri.beta*dt)) / ri.beta
	}
	ri.last = t
}

// Integral returns the discounted integral accumulated through time t.
func (ri *RewardIntegrator) Integral(t float64) float64 {
	ri.advance(t)
	return ri.integral
}

// EquivalentRate closes the sojourn at time t and returns (rEq, tau): the
// constant reward rate and sojourn length such that
// SojournGain(beta,tau)*rEq equals the exact discounted integral. For an
// empty sojourn (tau == 0) it returns the current instantaneous rate.
func (ri *RewardIntegrator) EquivalentRate(t float64) (rEq, tau float64) {
	ri.advance(t)
	tau = ri.last - ri.t0
	if tau <= 0 {
		return ri.rate, 0
	}
	gain := SojournGain(ri.beta, tau)
	return ri.integral / gain, tau
}

// Rate returns the current instantaneous reward rate.
func (ri *RewardIntegrator) Rate() float64 { return ri.rate }
