package rl

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
)

func TestDiscountAndGain(t *testing.T) {
	if got := DiscountFactor(0.5, 0); got != 1 {
		t.Fatalf("DiscountFactor(0.5,0) = %v want 1", got)
	}
	if got := DiscountFactor(0.5, 2); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("DiscountFactor(0.5,2) = %v want e^-1", got)
	}
	// Gain for beta->0 approaches tau.
	if got := SojournGain(0, 7); math.Abs(got-7) > 1e-12 {
		t.Fatalf("SojournGain(0,7) = %v want 7", got)
	}
	if got := SojournGain(0.5, 2); math.Abs(got-(1-math.Exp(-1))/0.5) > 1e-12 {
		t.Fatalf("SojournGain(0.5,2) = %v", got)
	}
}

func TestSMDPTargetReducesToDiscreteQ(t *testing.T) {
	// For tau -> 0 the target approaches nextBest; for tau -> inf it
	// approaches rRate/beta (the value of earning rRate forever).
	if got := SMDPTarget(0.5, 1e-12, 3, 10); math.Abs(got-10) > 1e-6 {
		t.Fatalf("short-sojourn target %v want ~10", got)
	}
	if got := SMDPTarget(0.5, 1e9, 3, 10); math.Abs(got-6) > 1e-6 {
		t.Fatalf("long-sojourn target %v want ~6", got)
	}
}

func TestNegativeSojournPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"DiscountFactor": func() { DiscountFactor(0.5, -1) },
		"SojournGain":    func() { SojournGain(0.5, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestQTableBasics(t *testing.T) {
	q := NewQTable(3, 0.5, 0.5, 0)
	if q.NumActions() != 3 {
		t.Fatalf("NumActions %d", q.NumActions())
	}
	if got := q.Q("s", 1); got != 0 {
		t.Fatalf("fresh Q = %v want 0", got)
	}
	a, v := q.Best("s")
	if a != 0 || v != 0 {
		t.Fatalf("fresh Best = (%d,%v)", a, v)
	}
	q.Update("s", 1, 10, 1, "s2")
	if q.Q("s", 1) <= 0 {
		t.Fatal("positive reward must raise Q")
	}
	a, _ = q.Best("s")
	if a != 1 {
		t.Fatalf("Best after positive update = %d want 1", a)
	}
	if q.Visits("s", 1) != 1 {
		t.Fatalf("Visits = %d want 1", q.Visits("s", 1))
	}
	if q.States() != 2 { // "s" and "s2"
		t.Fatalf("States = %d want 2", q.States())
	}
}

func TestQTableOptimisticInit(t *testing.T) {
	q := NewQTable(2, 0.5, 0.5, 5)
	if got := q.Q("s", 0); got != 5 {
		t.Fatalf("optimistic init = %v want 5", got)
	}
}

// A two-state SMDP with known optimal policy: in state "idle" action 1 earns
// rate 1 and returns to "idle" after tau=1; action 0 earns rate 0. The agent
// must learn Q(idle,1) > Q(idle,0).
func TestQTableLearnsSimpleSMDP(t *testing.T) {
	q := NewQTable(2, 0.2, 0.5, 0)
	rng := mat.NewRNG(1)
	pol := NewEpsilonGreedy(0.3, 0.05, 0.999, rng)
	for i := 0; i < 3000; i++ {
		a := pol.Select(2, func() int { b, _ := q.Best("idle"); return b })
		rate := 0.0
		if a == 1 {
			rate = 1.0
		}
		q.Update("idle", a, rate, 1, "idle")
	}
	if q.Q("idle", 1) <= q.Q("idle", 0) {
		t.Fatalf("failed to learn: Q1=%v Q0=%v", q.Q("idle", 1), q.Q("idle", 0))
	}
	// The fixed point of always taking action 1:
	// Q = g + d*Q with g=(1-e^-0.5)/0.5, d=e^-0.5 => Q = g/(1-d) ≈ 2.0
	want := SojournGain(0.5, 1) / (1 - DiscountFactor(0.5, 1))
	if math.Abs(q.Q("idle", 1)-want) > 0.3 {
		t.Fatalf("Q(idle,1)=%v want ~%v", q.Q("idle", 1), want)
	}
}

func TestQTableUpdateTerminal(t *testing.T) {
	q := NewQTable(1, 1, 0.5, 0)
	q.UpdateTerminal("s", 0, 2, 1)
	want := SojournGain(0.5, 1) * 2
	if math.Abs(q.Q("s", 0)-want) > 1e-12 {
		t.Fatalf("terminal update: got %v want %v", q.Q("s", 0), want)
	}
}

// Property: with alpha=1 a single update sets Q exactly to the target.
func TestQTableFullLearningRateProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		q := NewQTable(4, 1, 0.5, 0)
		state := fmt.Sprintf("s%d", g.Intn(5))
		next := fmt.Sprintf("s%d", g.Intn(5))
		a := g.Intn(4)
		rate := g.Normal(0, 10)
		tau := g.Float64() * 100
		_, nextBest := q.Best(next)
		want := SMDPTarget(0.5, tau, rate, nextBest)
		q.Update(state, a, rate, tau, next)
		return math.Abs(q.Q(state, a)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQTableActionRangePanics(t *testing.T) {
	q := NewQTable(2, 0.5, 0.5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range action should panic")
		}
	}()
	q.Q("s", 2)
}

func TestEpsilonGreedyExploresAndExploits(t *testing.T) {
	rng := mat.NewRNG(2)
	pol := NewEpsilonGreedy(1, 0, 1, rng) // pure exploration
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[pol.Select(4, func() int { return 0 })]++
	}
	for a, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("pure exploration non-uniform: action %d count %d", a, c)
		}
	}

	pol.SetEpsilon(0) // pure exploitation
	for i := 0; i < 100; i++ {
		if got := pol.Select(4, func() int { return 2 }); got != 2 {
			t.Fatalf("pure exploitation chose %d", got)
		}
	}
}

func TestEpsilonGreedyDecay(t *testing.T) {
	rng := mat.NewRNG(3)
	pol := NewEpsilonGreedy(1, 0.1, 0.5, rng)
	for i := 0; i < 10; i++ {
		pol.Select(2, func() int { return 0 })
	}
	if pol.Epsilon() != 0.1 {
		t.Fatalf("epsilon after decay = %v want floor 0.1", pol.Epsilon())
	}
}

func TestEpsilonGreedyValidation(t *testing.T) {
	rng := mat.NewRNG(4)
	cases := []func(){
		func() { NewEpsilonGreedy(-0.1, 0, 1, rng) },
		func() { NewEpsilonGreedy(0.5, 0.6, 1, rng) },
		func() { NewEpsilonGreedy(0.5, 0.1, 0, rng) },
		func() { NewEpsilonGreedy(0.5, 0.1, 1.5, rng) },
		func() { NewEpsilonGreedy(0.5, 0.1, 1, rng).Select(0, func() int { return 0 }) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestReplayRingSemantics(t *testing.T) {
	r := NewReplay[int](3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh replay Len=%d Cap=%d", r.Len(), r.Cap())
	}
	r.Add(1)
	r.Add(2)
	if r.Latest() != 2 {
		t.Fatalf("Latest = %d want 2", r.Latest())
	}
	r.Add(3)
	r.Add(4) // evicts 1
	if r.Len() != 3 {
		t.Fatalf("Len after overflow = %d want 3", r.Len())
	}
	var got []int
	r.Each(func(x int) { got = append(got, x) })
	want := []int{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order: got %v want %v", got, want)
		}
	}
	if r.Latest() != 4 {
		t.Fatalf("Latest = %d want 4", r.Latest())
	}
}

func TestReplaySampleUniform(t *testing.T) {
	r := NewReplay[int](8)
	for i := 0; i < 8; i++ {
		r.Add(i)
	}
	rng := mat.NewRNG(5)
	counts := make([]int, 8)
	for _, v := range r.Sample(8000, rng) {
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("sample count for %d = %d, not ~1000", v, c)
		}
	}
}

func TestReplayPanics(t *testing.T) {
	rng := mat.NewRNG(6)
	for name, fn := range map[string]func(){
		"ZeroCap":     func() { NewReplay[int](0) },
		"EmptySample": func() { NewReplay[int](4).Sample(1, rng) },
		"EmptyLatest": func() { NewReplay[int](4).Latest() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestRewardIntegratorConstantRate(t *testing.T) {
	ri := NewRewardIntegrator(0.5)
	ri.Reset(10, 3)
	rEq, tau := ri.EquivalentRate(14)
	if math.Abs(tau-4) > 1e-12 {
		t.Fatalf("tau = %v want 4", tau)
	}
	// Constant rate in == constant rate out.
	if math.Abs(rEq-3) > 1e-9 {
		t.Fatalf("rEq = %v want 3", rEq)
	}
	// Exact integral: 3*(1-e^{-2})/0.5
	want := 3 * (1 - math.Exp(-2)) / 0.5
	if got := ri.Integral(14); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Integral = %v want %v", got, want)
	}
}

func TestRewardIntegratorPiecewise(t *testing.T) {
	// Rate 2 on [0,1), rate 5 on [1,3). Closed form:
	// I = 2*(1-e^{-b})/b + 5*e^{-b}*(1-e^{-2b})/b with b=0.5
	b := 0.5
	ri := NewRewardIntegrator(b)
	ri.Reset(0, 2)
	ri.SetRate(1, 5)
	got := ri.Integral(3)
	want := 2*(1-math.Exp(-b))/b + 5*math.Exp(-b)*(1-math.Exp(-2*b))/b
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("piecewise integral = %v want %v", got, want)
	}
	// EquivalentRate must reproduce the integral through SojournGain.
	rEq, tau := ri.EquivalentRate(3)
	if math.Abs(SojournGain(b, tau)*rEq-want) > 1e-9 {
		t.Fatal("EquivalentRate does not reproduce the exact integral")
	}
}

func TestRewardIntegratorZeroBeta(t *testing.T) {
	ri := NewRewardIntegrator(0)
	ri.Reset(0, 2)
	ri.SetRate(1, 4)
	if got := ri.Integral(2); math.Abs(got-6) > 1e-12 {
		t.Fatalf("undiscounted integral = %v want 6", got)
	}
}

func TestRewardIntegratorEmptySojourn(t *testing.T) {
	ri := NewRewardIntegrator(0.5)
	ri.Reset(5, 7)
	rEq, tau := ri.EquivalentRate(5)
	if tau != 0 || rEq != 7 {
		t.Fatalf("empty sojourn: got (%v,%v) want (7,0)", rEq, tau)
	}
}

func TestRewardIntegratorGuards(t *testing.T) {
	cases := map[string]func(){
		"NegativeBeta": func() { NewRewardIntegrator(-1) },
		"UseBeforeReset": func() {
			NewRewardIntegrator(0.5).SetRate(1, 1)
		},
		"TimeBackwards": func() {
			ri := NewRewardIntegrator(0.5)
			ri.Reset(10, 1)
			ri.SetRate(5, 2)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: for any piecewise-constant rate profile, the equivalent-rate
// identity SojournGain(beta,tau)*rEq == exact integral holds.
func TestRewardIntegratorEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		beta := g.Float64() * 2
		ri := NewRewardIntegrator(beta)
		t0 := g.Float64() * 100
		ri.Reset(t0, g.Normal(0, 5))
		tNow := t0
		// Reference numerical integral via fine sampling.
		type piece struct{ start, rate float64 }
		pieces := []piece{{t0, ri.Rate()}}
		for k := 0; k < 1+g.Intn(6); k++ {
			tNow += g.Float64() * 10
			rate := g.Normal(0, 5)
			ri.SetRate(tNow, rate)
			pieces = append(pieces, piece{tNow, rate})
		}
		tEnd := tNow + g.Float64()*10
		rEq, tau := ri.EquivalentRate(tEnd)

		// Closed-form exact integral over pieces.
		var exact float64
		for i, p := range pieces {
			end := tEnd
			if i+1 < len(pieces) {
				end = pieces[i+1].start
			}
			if end <= p.start {
				continue
			}
			if beta <= 1e-12 {
				exact += p.rate * (end - p.start)
			} else {
				exact += p.rate * (math.Exp(-beta*(p.start-t0)) - math.Exp(-beta*(end-t0))) / beta
			}
		}
		return math.Abs(SojournGain(beta, tau)*rEq-exact) < 1e-6*(1+math.Abs(exact))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQTableConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewQTable(0, 0.5, 0.5, 0) },
		func() { NewQTable(2, 0, 0.5, 0) },
		func() { NewQTable(2, 1.5, 0.5, 0) },
		func() { NewQTable(2, 0.5, 0, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// NextSlot/CommitSlot must behave exactly like Add — same ordering, same
// generations, same eviction — while letting callers reuse slot memory.
func TestReplayEmplaceMatchesAdd(t *testing.T) {
	ra := NewReplay[int](4)
	rb := NewReplay[int](4)
	for i := 0; i < 11; i++ {
		ra.Add(i)
		slot := rb.NextSlot()
		*slot = i
		rb.CommitSlot()
		if ra.Len() != rb.Len() {
			t.Fatalf("len diverged: %d vs %d", ra.Len(), rb.Len())
		}
	}
	for i := 0; i < ra.Len(); i++ {
		if ra.At(i) != rb.At(i) {
			t.Fatalf("slot %d: %d vs %d", i, ra.At(i), rb.At(i))
		}
		if ra.Gen(i) != rb.Gen(i) {
			t.Fatalf("gen %d: %d vs %d", i, ra.Gen(i), rb.Gen(i))
		}
	}
	if ra.Latest() != rb.Latest() {
		t.Fatalf("latest: %d vs %d", ra.Latest(), rb.Latest())
	}
}

// SampleIndicesInto must consume the RNG identically to SampleIndices.
func TestSampleIndicesIntoMatchesSampleIndices(t *testing.T) {
	r := NewReplay[int](32)
	for i := 0; i < 20; i++ {
		r.Add(i)
	}
	a := r.SampleIndices(16, mat.NewRNG(7))
	scratch := make([]int, 0, 16)
	b := r.SampleIndicesInto(scratch[:0], 16, mat.NewRNG(7))
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// SelectAction must consume the RNG identically to Select with a constant
// greedy callback, including epsilon decay.
func TestSelectActionMatchesSelect(t *testing.T) {
	pa := NewEpsilonGreedy(0.5, 0.01, 0.99, mat.NewRNG(3))
	pb := NewEpsilonGreedy(0.5, 0.01, 0.99, mat.NewRNG(3))
	for i := 0; i < 200; i++ {
		best := i % 7
		a := pa.Select(7, func() int { return best })
		b := pb.SelectAction(7, best)
		if a != b {
			t.Fatalf("step %d: Select %d != SelectAction %d", i, a, b)
		}
		if pa.Epsilon() != pb.Epsilon() {
			t.Fatalf("step %d: epsilon diverged %v vs %v", i, pa.Epsilon(), pb.Epsilon())
		}
	}
}
