package rl

import (
	"fmt"

	"hierdrl/internal/mat"
)

// Replay is a bounded experience-replay ring buffer ("experience memory D
// with capacity ND" in Algorithm 1). When full, the oldest transitions are
// overwritten. Sampling is uniform with replacement, which — per the DQN
// line of work the paper builds on — decorrelates minibatches and smooths
// learning.
type Replay[T any] struct {
	buf  []T
	gens []int64
	cap  int
	next int
	full bool
}

// NewReplay returns a replay memory with the given capacity.
func NewReplay[T any](capacity int) *Replay[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: NewReplay invalid capacity %d", capacity))
	}
	return &Replay[T]{buf: make([]T, capacity), gens: make([]int64, capacity), cap: capacity}
}

// Add appends a transition, evicting the oldest when at capacity.
func (r *Replay[T]) Add(t T) {
	r.buf[r.next] = t
	r.gens[r.next]++
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.full = true
	}
}

// NextSlot returns a pointer to the slot the next Add would occupy, so the
// caller can build the transition in place — reusing the evicted
// transition's buffers instead of allocating fresh ones. The write is not
// visible to sampling until CommitSlot runs; NextSlot/CommitSlot pairs must
// not interleave with Add.
func (r *Replay[T]) NextSlot() *T { return &r.buf[r.next] }

// CommitSlot finalizes a slot populated via NextSlot, with the same
// bookkeeping as Add (generation bump, cursor advance, wrap-around).
func (r *Replay[T]) CommitSlot() {
	r.gens[r.next]++
	r.next++
	if r.next == r.cap {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of stored transitions.
func (r *Replay[T]) Len() int {
	if r.full {
		return r.cap
	}
	return r.next
}

// Cap returns the capacity ND.
func (r *Replay[T]) Cap() int { return r.cap }

// Sample fills dst with n transitions drawn uniformly with replacement.
// It panics when the memory is empty.
func (r *Replay[T]) Sample(n int, rng *mat.RNG) []T {
	ln := r.Len()
	if ln == 0 {
		panic("rl: Sample from empty replay memory")
	}
	out := make([]T, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(ln)]
	}
	return out
}

// SampleIndices draws n slot indices uniformly with replacement, consuming
// the RNG exactly as Sample does (so the two are interchangeable for
// deterministic replays). Use At to dereference and Gen to detect slot
// reuse across draws.
func (r *Replay[T]) SampleIndices(n int, rng *mat.RNG) []int {
	return r.SampleIndicesInto(make([]int, 0, n), n, rng)
}

// SampleIndicesInto is SampleIndices appending into dst (pass dst[:0] to
// reuse a retained scratch slice; steady-state calls are allocation-free).
// RNG consumption is identical to SampleIndices.
func (r *Replay[T]) SampleIndicesInto(dst []int, n int, rng *mat.RNG) []int {
	ln := r.Len()
	if ln == 0 {
		panic("rl: Sample from empty replay memory")
	}
	for i := 0; i < n; i++ {
		dst = append(dst, rng.Intn(ln))
	}
	return dst
}

// At returns the transition stored in slot i (0 <= i < Len).
func (r *Replay[T]) At(i int) T { return r.buf[i] }

// Gen returns the write generation of slot i: it increments every time the
// slot is overwritten, so a (slot, generation) pair uniquely identifies one
// stored transition for memoization purposes.
func (r *Replay[T]) Gen(i int) int64 { return r.gens[i] }

// Each calls fn for every stored transition in insertion order (oldest
// first).
func (r *Replay[T]) Each(fn func(T)) {
	if r.full {
		for i := r.next; i < r.cap; i++ {
			fn(r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		fn(r.buf[i])
	}
}

// Latest returns the most recently added transition. It panics when empty.
func (r *Replay[T]) Latest() T {
	if r.Len() == 0 {
		panic("rl: Latest on empty replay memory")
	}
	idx := r.next - 1
	if idx < 0 {
		idx = r.cap - 1
	}
	return r.buf[idx]
}
