package rl

import (
	"bytes"
	"errors"
	"testing"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/mat"
)

func encInt(e *checkpoint.Enc, v int) { e.Int(v) }
func decInt(d *checkpoint.Dec) int    { return d.Int() }
func section(t *testing.T, fill func(*checkpoint.Enc)) *checkpoint.Dec {
	t.Helper()
	w := checkpoint.NewWriter(0)
	fill(w.Section("s"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("s")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	return d
}

// TestReplayRoundTrip covers both a partially filled and a wrapped ring:
// cursor, fill flag, slot generations, and contents must all survive.
func TestReplayRoundTrip(t *testing.T) {
	for _, adds := range []int{5, 12} {
		r1 := NewReplay[int](8)
		for i := 0; i < adds; i++ {
			r1.Add(100 + i)
		}
		d := section(t, func(e *checkpoint.Enc) { SaveReplay(r1, e, encInt) })
		r2 := NewReplay[int](8)
		if err := RestoreReplay(r2, d, decInt); err != nil {
			t.Fatalf("adds=%d RestoreReplay: %v", adds, err)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("adds=%d trailing bytes: %v", adds, err)
		}
		if r2.Len() != r1.Len() || r2.next != r1.next || r2.full != r1.full {
			t.Fatalf("adds=%d cursor state: (%d,%d,%v) vs (%d,%d,%v)",
				adds, r2.Len(), r2.next, r2.full, r1.Len(), r1.next, r1.full)
		}
		for i := 0; i < r1.Len(); i++ {
			if r2.At(i) != r1.At(i) || r2.Gen(i) != r1.Gen(i) {
				t.Fatalf("adds=%d slot %d: (%d,gen %d) vs (%d,gen %d)",
					adds, i, r2.At(i), r2.Gen(i), r1.At(i), r1.Gen(i))
			}
		}
		// The restored ring must keep evicting in the original order.
		r1.Add(999)
		r2.Add(999)
		if r1.next != r2.next || r1.Latest() != r2.Latest() {
			t.Fatalf("adds=%d post-restore Add diverges", adds)
		}
	}
}

func TestReplayRestoreCapacityMismatch(t *testing.T) {
	r1 := NewReplay[int](8)
	r1.Add(1)
	d := section(t, func(e *checkpoint.Enc) { SaveReplay(r1, e, encInt) })
	r2 := NewReplay[int](16)
	if err := RestoreReplay(r2, d, decInt); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Fatalf("capacity mismatch: got %v, want ErrConfigMismatch", err)
	}
}

// TestEpsilonGreedyAndIntegratorRoundTrip checks the exploration schedule
// and the in-flight reward sojourn restore verbatim.
func TestEpsilonGreedyAndIntegratorRoundTrip(t *testing.T) {
	p1 := NewEpsilonGreedy(1.0, 0.05, 0.999, mat.NewRNG(3))
	for i := 0; i < 40; i++ {
		p1.Select(4, func() int { return 0 })
	}
	ri1 := NewRewardIntegrator(0.5)
	ri1.Reset(10, 2.25)
	ri1.SetRate(12, 3.5)

	d := section(t, func(e *checkpoint.Enc) {
		p1.SaveState(e)
		ri1.SaveState(e)
	})
	p2 := NewEpsilonGreedy(1.0, 0.05, 0.999, mat.NewRNG(3))
	ri2 := NewRewardIntegrator(0.5)
	if err := p2.RestoreState(d); err != nil {
		t.Fatalf("EpsilonGreedy.RestoreState: %v", err)
	}
	if err := ri2.RestoreState(d); err != nil {
		t.Fatalf("RewardIntegrator.RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if p2.Epsilon() != p1.Epsilon() {
		t.Fatalf("epsilon %v vs %v", p2.Epsilon(), p1.Epsilon())
	}
	if ri2.started != ri1.started || ri2.t0 != ri1.t0 || ri2.last != ri1.last ||
		ri2.rate != ri1.rate || ri2.integral != ri1.integral {
		t.Fatalf("integrator state diverged: %+v vs %+v", *ri2, *ri1)
	}
}
