package rl

import (
	"fmt"

	"hierdrl/internal/mat"
)

// EpsilonGreedy implements the epsilon-greedy exploration policy with
// multiplicative decay toward a floor: with probability eps a uniformly
// random action is taken, otherwise the greedy action.
type EpsilonGreedy struct {
	eps   float64
	min   float64
	decay float64
	rng   *mat.RNG
}

// NewEpsilonGreedy returns a policy that starts at eps, multiplies eps by
// decay after every Select, and never goes below min. decay == 1 keeps eps
// constant.
func NewEpsilonGreedy(eps, min, decay float64, rng *mat.RNG) *EpsilonGreedy {
	if eps < 0 || eps > 1 || min < 0 || min > eps || decay <= 0 || decay > 1 {
		panic(fmt.Sprintf("rl: NewEpsilonGreedy invalid params eps=%v min=%v decay=%v",
			eps, min, decay))
	}
	return &EpsilonGreedy{eps: eps, min: min, decay: decay, rng: rng}
}

// Select returns greedy(), or a uniform action in [0, nActions), exploring
// with the current epsilon. Epsilon decays after each call.
func (p *EpsilonGreedy) Select(nActions int, greedy func() int) int {
	if nActions <= 0 {
		panic("rl: Select requires nActions > 0")
	}
	a := -1
	if p.rng.Float64() < p.eps {
		a = p.rng.Intn(nActions)
	} else {
		a = greedy()
	}
	p.eps *= p.decay
	if p.eps < p.min {
		p.eps = p.min
	}
	if a < 0 || a >= nActions {
		panic(fmt.Sprintf("rl: greedy chose out-of-range action %d", a))
	}
	return a
}

// SelectAction is Select with the greedy action passed by value instead of
// through a callback, so hot paths avoid constructing a closure per
// decision. RNG consumption and results are identical to
// Select(nActions, func() int { return best }).
func (p *EpsilonGreedy) SelectAction(nActions, best int) int {
	if nActions <= 0 {
		panic("rl: SelectAction requires nActions > 0")
	}
	a := best
	if p.rng.Float64() < p.eps {
		a = p.rng.Intn(nActions)
	}
	p.eps *= p.decay
	if p.eps < p.min {
		p.eps = p.min
	}
	if a < 0 || a >= nActions {
		panic(fmt.Sprintf("rl: greedy chose out-of-range action %d", a))
	}
	return a
}

// Epsilon returns the current exploration rate.
func (p *EpsilonGreedy) Epsilon() float64 { return p.eps }

// SetEpsilon overrides the current exploration rate (e.g., to freeze a
// trained policy for evaluation).
func (p *EpsilonGreedy) SetEpsilon(eps float64) {
	if eps < 0 || eps > 1 {
		panic(fmt.Sprintf("rl: SetEpsilon invalid %v", eps))
	}
	p.eps = eps
	if p.min > eps {
		p.min = eps
	}
}
