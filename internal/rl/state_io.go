package rl

import (
	"fmt"
	"sort"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/mat"
)

// SaveState serializes the exploration schedule. The RNG is owned and
// serialized by the policy's holder (it may be shared), so only the decayed
// epsilon trajectory lives here; min and decay are construction config but
// min can be lowered by SetEpsilon, so both mutable fields go in.
func (p *EpsilonGreedy) SaveState(e *checkpoint.Enc) {
	e.F64(p.eps)
	e.F64(p.min)
}

// RestoreState reads what SaveState wrote.
func (p *EpsilonGreedy) RestoreState(d *checkpoint.Dec) error {
	p.eps = d.F64()
	p.min = d.F64()
	return nil
}

// RNG exposes the policy's random source for checkpointing by its holder.
func (p *EpsilonGreedy) RNG() *mat.RNG { return p.rng }

// SaveState serializes the in-flight sojourn of the integrator.
func (ri *RewardIntegrator) SaveState(e *checkpoint.Enc) {
	e.Bool(ri.started)
	e.F64(ri.t0)
	e.F64(ri.last)
	e.F64(ri.rate)
	e.F64(ri.integral)
}

// RestoreState reads what SaveState wrote. Beta is construction config.
func (ri *RewardIntegrator) RestoreState(d *checkpoint.Dec) error {
	ri.started = d.Bool()
	ri.t0 = d.F64()
	ri.last = d.F64()
	ri.rate = d.F64()
	ri.integral = d.F64()
	return nil
}

// SaveState serializes the ring buffer's cursor state and every slot through
// the element codec enc (slots beyond Len have never been written and are
// skipped). Generation counters are included so (slot, generation) memo keys
// stay valid across a restore.
func SaveReplay[T any](r *Replay[T], e *checkpoint.Enc, enc func(*checkpoint.Enc, T)) {
	e.Int(r.cap)
	e.Int(r.next)
	e.Bool(r.full)
	e.I64s(r.gens)
	n := r.Len()
	e.Int(n)
	for i := 0; i < n; i++ {
		enc(e, r.buf[i])
	}
}

// RestoreReplay reads what SaveReplay wrote into r, which must have been
// constructed with the same capacity.
func RestoreReplay[T any](r *Replay[T], d *checkpoint.Dec, dec func(*checkpoint.Dec) T) error {
	capSaved := d.Int()
	next := d.Int()
	full := d.Bool()
	gens := d.I64s()
	n := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if capSaved != r.cap {
		return fmt.Errorf("%w: replay capacity %d, want %d", checkpoint.ErrConfigMismatch, capSaved, r.cap)
	}
	if len(gens) != r.cap || next < 0 || next >= r.cap || n < 0 || n > r.cap {
		return fmt.Errorf("%w: replay cursor state out of range", checkpoint.ErrCorrupt)
	}
	r.next = next
	r.full = full
	copy(r.gens, gens)
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	for i := 0; i < n; i++ {
		r.buf[i] = dec(d)
	}
	return d.Sticky()
}

// SaveState serializes the learned Q-values and visit counts with sorted
// state keys, so identical tables always produce identical bytes.
func (t *QTable) SaveState(e *checkpoint.Enc) {
	keys := make([]string, 0, len(t.q))
	for k := range t.q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Int(len(keys))
	for _, k := range keys {
		e.Str(k)
		e.F64s(t.q[k])
		e.Ints(t.visits[k])
	}
}

// RestoreState reads what SaveState wrote, replacing the table contents.
func (t *QTable) RestoreState(d *checkpoint.Dec) error {
	n := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("%w: QTable state count %d", checkpoint.ErrCorrupt, n)
	}
	t.q = make(map[string][]float64, n)
	t.visits = make(map[string][]int, n)
	for i := 0; i < n; i++ {
		k := d.Str()
		q := d.F64s()
		v := d.Ints()
		if len(q) != t.nActions || len(v) != t.nActions {
			if d.Sticky() != nil {
				return d.Sticky()
			}
			return fmt.Errorf("%w: QTable row width %d/%d, want %d", checkpoint.ErrCorrupt, len(q), len(v), t.nActions)
		}
		t.q[k] = q
		t.visits[k] = v
	}
	return d.Sticky()
}
