// Package rl provides the reinforcement-learning machinery shared by both
// tiers of the hierarchical framework: continuous-time Q-learning for
// semi-Markov decision processes (paper Eqn. 2), epsilon-greedy exploration,
// a bounded experience-replay memory, and an exact discounted reward-rate
// integrator for piecewise-constant reward processes.
package rl

import (
	"fmt"
	"math"
)

// DiscountFactor computes e^{-beta*tau}, the continuous-time discount over a
// sojourn of tau seconds.
func DiscountFactor(beta, tau float64) float64 {
	if tau < 0 {
		panic(fmt.Sprintf("rl: negative sojourn time %v", tau))
	}
	return math.Exp(-beta * tau)
}

// SojournGain computes (1 - e^{-beta*tau})/beta, the integral of the
// discount kernel over the sojourn — the factor multiplying the constant
// reward rate in Eqn. (2). For beta -> 0 it degrades gracefully to tau.
func SojournGain(beta, tau float64) float64 {
	if tau < 0 {
		panic(fmt.Sprintf("rl: negative sojourn time %v", tau))
	}
	if beta <= 1e-12 {
		return tau
	}
	return (1 - math.Exp(-beta*tau)) / beta
}

// SMDPTarget computes the Q-learning target for SMDP:
//
//	y = (1 - e^{-beta*tau})/beta * rRate + e^{-beta*tau} * nextBest
//
// where rRate is the (equivalent constant) reward rate over the sojourn tau
// and nextBest is max_a' Q(s', a'). Both tiers and the deep global tier use
// this single definition so the semantics cannot drift apart.
func SMDPTarget(beta, tau, rRate, nextBest float64) float64 {
	return SojournGain(beta, tau)*rRate + DiscountFactor(beta, tau)*nextBest
}

// QTable is a tabular continuous-time Q-learning agent over a finite action
// set with string-encoded states. The zero value is not usable; construct
// with NewQTable.
type QTable struct {
	nActions int
	alpha    float64
	beta     float64
	optInit  float64

	q      map[string][]float64
	visits map[string][]int
}

// NewQTable returns a Q-table for nActions actions with learning rate alpha
// and discount rate beta. optInit is the optimistic initial Q-value for
// unseen state-action pairs (0 is the common choice; the local power manager
// benefits from mildly optimistic initialization).
func NewQTable(nActions int, alpha, beta, optInit float64) *QTable {
	if nActions <= 0 {
		panic(fmt.Sprintf("rl: NewQTable invalid action count %d", nActions))
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("rl: NewQTable invalid learning rate %v", alpha))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("rl: NewQTable invalid discount rate %v", beta))
	}
	return &QTable{
		nActions: nActions,
		alpha:    alpha,
		beta:     beta,
		optInit:  optInit,
		q:        make(map[string][]float64),
		visits:   make(map[string][]int),
	}
}

// NumActions returns the size of the action set.
func (t *QTable) NumActions() int { return t.nActions }

func (t *QTable) row(state string) []float64 {
	row, ok := t.q[state]
	if !ok {
		row = make([]float64, t.nActions)
		for i := range row {
			row[i] = t.optInit
		}
		t.q[state] = row
		t.visits[state] = make([]int, t.nActions)
	}
	return row
}

// Q returns the current value estimate for (state, action).
func (t *QTable) Q(state string, action int) float64 {
	t.checkAction(action)
	return t.row(state)[action]
}

// Best returns the greedy action and its value for state. Ties break toward
// the lowest action index, which keeps runs deterministic.
func (t *QTable) Best(state string) (action int, value float64) {
	row := t.row(state)
	action, value = 0, row[0]
	for a := 1; a < len(row); a++ {
		if row[a] > value {
			action, value = a, row[a]
		}
	}
	return action, value
}

// Update applies the Eqn. (2) value update for a transition that started in
// state with action, accrued the equivalent constant reward rate rRate over
// sojourn tau, and landed in nextState. It returns the TD error.
func (t *QTable) Update(state string, action int, rRate, tau float64, nextState string) float64 {
	t.checkAction(action)
	_, nextBest := t.Best(nextState)
	target := SMDPTarget(t.beta, tau, rRate, nextBest)
	row := t.row(state)
	td := target - row[action]
	row[action] += t.alpha * td
	t.visits[state][action]++
	return td
}

// UpdateTerminal applies an update for a transition with no successor (used
// at the end of an episode): the target is just the discounted reward.
func (t *QTable) UpdateTerminal(state string, action int, rRate, tau float64) float64 {
	t.checkAction(action)
	target := SojournGain(t.beta, tau) * rRate
	row := t.row(state)
	td := target - row[action]
	row[action] += t.alpha * td
	t.visits[state][action]++
	return td
}

// Visits returns how many updates (state, action) has received.
func (t *QTable) Visits(state string, action int) int {
	t.checkAction(action)
	t.row(state)
	return t.visits[state][action]
}

// States returns the number of distinct states materialized so far.
func (t *QTable) States() int { return len(t.q) }

func (t *QTable) checkAction(a int) {
	if a < 0 || a >= t.nActions {
		panic(fmt.Sprintf("rl: action %d out of range [0,%d)", a, t.nActions))
	}
}
