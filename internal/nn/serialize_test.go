package nn

import (
	"bytes"
	"testing"

	"hierdrl/internal/mat"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := mat.NewRNG(1)
	a := NewMLP([]int{3, 5, 2}, []Activation{ELU{}, Identity{}}, rng)
	b := NewMLP([]int{3, 5, 2}, []Activation{ELU{}, Identity{}}, rng)

	var buf bytes.Buffer
	if err := TakeSnapshot(a.Params()).Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if err := snap.Restore(b.Params()); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	x := mat.Vec{0.3, -0.2, 0.9}
	ya, yb := a.Infer(x), b.Infer(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("restored network differs at %d: %v vs %v", i, ya[i], yb[i])
		}
	}
}

func TestSnapshotRejectsMismatchedArchitecture(t *testing.T) {
	rng := mat.NewRNG(2)
	small := NewMLP([]int{3, 4, 2}, []Activation{ELU{}, Identity{}}, rng)
	big := NewMLP([]int{3, 8, 2}, []Activation{ELU{}, Identity{}}, rng)
	deep := NewMLP([]int{3, 4, 4, 2}, []Activation{ELU{}, ELU{}, Identity{}}, rng)

	snap := TakeSnapshot(small.Params())
	if err := snap.Restore(big.Params()); err == nil {
		t.Fatal("wrong layer width accepted")
	}
	if err := snap.Restore(deep.Params()); err == nil {
		t.Fatal("wrong depth accepted")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := []Param{{Name: "w", Val: []float64{1, 2}, Grad: []float64{0, 0}}}
	snap := TakeSnapshot(p)
	p[0].Val[0] = 42
	if snap["w"][0] != 1 {
		t.Fatal("snapshot aliases live weights")
	}
}

func TestReadSnapshotBadJSON(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("{oops")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
