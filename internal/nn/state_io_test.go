package nn

import (
	"bytes"
	"math"
	"testing"

	"hierdrl/internal/checkpoint"
)

func adamSection(t *testing.T, a *Adam) *checkpoint.Dec {
	t.Helper()
	w := checkpoint.NewWriter(0)
	a.SaveState(w.Section("adam"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("adam")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	return d
}

func mkParams(vals ...float64) []Param {
	ps := make([]Param, len(vals))
	for i, v := range vals {
		ps[i] = Param{Val: []float64{v, v * 2}, Grad: []float64{0, 0}}
	}
	return ps
}

func fakeGrads(ps []Param, step int) {
	for i := range ps {
		for k := range ps[i].Grad {
			ps[i].Grad[k] = math.Sin(float64(step*7+i*3+k)) * 0.1
		}
	}
}

// TestAdamStateRoundTrip: a restored optimizer must continue the moment
// trajectory bitwise — identical further Steps on identical params produce
// identical weights (bias correction depends on t, so t must survive too).
func TestAdamStateRoundTrip(t *testing.T) {
	a1 := NewAdam(0.01)
	p1 := mkParams(1, -2, 0.5)
	for s := 0; s < 10; s++ {
		fakeGrads(p1, s)
		a1.Step(p1)
	}

	d := adamSection(t, a1)
	a2 := NewAdam(0.01)
	if err := a2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
	if a2.Steps() != a1.Steps() {
		t.Fatalf("step count %d vs %d", a2.Steps(), a1.Steps())
	}

	// Clone the params and continue both optimizers in lockstep.
	p2 := make([]Param, len(p1))
	for i := range p1 {
		p2[i] = Param{
			Val:  append([]float64(nil), p1[i].Val...),
			Grad: make([]float64, len(p1[i].Grad)),
		}
	}
	for s := 10; s < 20; s++ {
		fakeGrads(p1, s)
		fakeGrads(p2, s)
		a1.Step(p1)
		a2.Step(p2)
	}
	for i := range p1 {
		for k := range p1[i].Val {
			if math.Float64bits(p1[i].Val[k]) != math.Float64bits(p2[i].Val[k]) {
				t.Fatalf("param %d[%d] diverges: %v vs %v", i, k, p1[i].Val[k], p2[i].Val[k])
			}
		}
	}
}

// TestAdamNeverSteppedRoundTrip: lazily allocated moments mean a fresh
// optimizer serializes as (t=0, no tensors) and restores the same way.
func TestAdamNeverSteppedRoundTrip(t *testing.T) {
	a1 := NewAdam(0.01)
	d := adamSection(t, a1)
	a2 := NewAdam(0.01)
	// Pre-populate to prove restore clears back to the virgin state.
	a2.m = [][]float64{{1}}
	a2.v = [][]float64{{1}}
	a2.t = 5
	if err := a2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if a2.t != 0 || a2.m != nil || a2.v != nil {
		t.Fatalf("virgin optimizer restored as t=%d, %d moment tensors", a2.t, len(a2.m))
	}
}
