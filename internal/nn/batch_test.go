package nn

import (
	"testing"

	"hierdrl/internal/mat"
)

var batchShapes = []struct{ in, out, b int }{
	{1, 1, 1}, {1, 9, 4}, {9, 1, 4}, {3, 5, 1}, {5, 3, 2},
	{8, 8, 8}, {13, 7, 5}, {30, 40, 32}, {40, 30, 33},
}

func randBatch(b, n int, rng *mat.RNG) *mat.Dense {
	X := mat.NewDense(b, n)
	for i := range X.Data {
		X.Data[i] = rng.Normal(0, 1)
	}
	return X
}

func TestDenseInferBatchMatchesPerSample(t *testing.T) {
	rng := mat.NewRNG(11)
	for _, sh := range batchShapes {
		for _, act := range []Activation{Identity{}, ELU{}, Tanh{}, Sigmoid{}} {
			d := NewDense(sh.in, sh.out, act, rng)
			X := randBatch(sh.b, sh.in, rng)
			Y := mat.NewDense(sh.b, sh.out)
			d.InferBatch(X, Y)
			want := mat.NewVec(sh.out)
			for b := 0; b < sh.b; b++ {
				d.Infer(X.Row(b), want)
				for i := range want {
					if Y.At(b, i) != want[i] {
						t.Fatalf("in=%d out=%d b=%d act=%s: InferBatch row %d diverges",
							sh.in, sh.out, sh.b, act.Name(), b)
					}
				}
			}
		}
	}
}

func TestDenseForwardBatchMatchesPerSample(t *testing.T) {
	rng := mat.NewRNG(12)
	for _, sh := range batchShapes {
		// Two identical layers: one driven per sample, one batched.
		ref := NewDense(sh.in, sh.out, ELU{}, mat.NewRNG(99))
		bat := NewDense(sh.in, sh.out, ELU{}, mat.NewRNG(99))
		X := randBatch(sh.b, sh.in, rng)
		dY := randBatch(sh.b, sh.out, rng)

		dXRef := mat.NewDense(sh.b, sh.in)
		for b := 0; b < sh.b; b++ {
			_, back := ref.Forward(X.Row(b))
			dXRef.Row(b).CopyFrom(back(dY.Row(b)))
		}

		Y, back := bat.ForwardBatch(X)
		dX := back(dY)

		wantY := mat.NewVec(sh.out)
		for b := 0; b < sh.b; b++ {
			ref.Infer(X.Row(b), wantY)
			for i := range wantY {
				if Y.At(b, i) != wantY[i] {
					t.Fatalf("shape %+v: batched forward output row %d diverges", sh, b)
				}
			}
		}
		if !bat.GW.Equal(ref.GW, 0) {
			t.Fatalf("shape %+v: batched dW diverges from per-sample accumulation", sh)
		}
		if d := maxAbsDiffVec(bat.GB, ref.GB); d != 0 {
			t.Fatalf("shape %+v: batched db diverges by %g", sh, d)
		}
		if !dX.Equal(dXRef, 0) {
			t.Fatalf("shape %+v: batched dX diverges from per-sample backward", sh)
		}
	}
}

func maxAbsDiffVec(a, b mat.Vec) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		if x < 0 {
			x = -x
		}
		if x > d {
			d = x
		}
	}
	return d
}

func TestMLPBatchMatchesPerSample(t *testing.T) {
	rng := mat.NewRNG(13)
	sizes := []int{7, 11, 5, 3}
	acts := []Activation{ELU{}, Tanh{}, Identity{}}
	ref := NewMLP(sizes, acts, mat.NewRNG(42))
	bat := NewMLP(sizes, acts, mat.NewRNG(42))
	B := 17
	X := randBatch(B, 7, rng)
	dY := randBatch(B, 3, rng)

	dXRef := mat.NewDense(B, 7)
	for b := 0; b < B; b++ {
		_, back := ref.Forward(X.Row(b))
		dXRef.Row(b).CopyFrom(back(dY.Row(b)))
	}
	Y, back := bat.ForwardBatch(X)
	dX := back(dY)

	for b := 0; b < B; b++ {
		want := bat.Infer(X.Row(b))
		for i := range want {
			if Y.At(b, i) != want[i] {
				t.Fatalf("MLP batched forward row %d diverges", b)
			}
		}
	}
	refPs, batPs := ref.Params(), bat.Params()
	for i := range refPs {
		for j := range refPs[i].Grad {
			if refPs[i].Grad[j] != batPs[i].Grad[j] {
				t.Fatalf("MLP batched gradient diverges at %s[%d]", refPs[i].Name, j)
			}
		}
	}
	if !dX.Equal(dXRef, 0) {
		t.Fatal("MLP batched dX diverges")
	}

	// Workspace inference paths agree with the allocating ones.
	ws := mat.NewWorkspace()
	ws.Reset()
	Yws := bat.InferBatchWS(ws, X)
	if !Yws.Equal(Y, 0) {
		t.Fatal("InferBatchWS diverges from ForwardBatch output")
	}
	ws.Reset()
	yv := bat.InferWS(ws, X.Row(0))
	for i := range yv {
		if yv[i] != Y.At(0, i) {
			t.Fatal("InferWS diverges")
		}
	}
}

// trainBatchPerSampleRef replicates the seed's per-sample autoencoder
// training step (the pre-batching reference path).
func trainBatchPerSampleRef(a *Autoencoder, xs []mat.Vec, opt Optimizer, clipNorm float64) float64 {
	params := a.Params()
	ZeroGrads(params)
	var total float64
	scale := 1 / float64(len(xs))
	for _, x := range xs {
		code, encBack := a.Enc.Forward(x)
		y, decBack := a.Dec.Forward(code)
		loss, grad := MSE(y, x)
		total += loss
		grad.Scale(scale)
		encBack(decBack(grad))
	}
	if clipNorm > 0 {
		ClipGrads(params, clipNorm)
	}
	opt.Step(params)
	return total / float64(len(xs))
}

func TestAutoencoderTrainBatchMatchesPerSample(t *testing.T) {
	for _, B := range []int{1, 2, 7, 32} {
		ref := NewAutoencoder(12, []int{8, 4}, mat.NewRNG(7))
		bat := NewAutoencoder(12, []int{8, 4}, mat.NewRNG(7))
		refOpt := NewAdam(1e-3)
		batOpt := NewAdam(1e-3)
		rng := mat.NewRNG(int64(100 + B))
		for step := 0; step < 3; step++ {
			xs := make([]mat.Vec, B)
			for b := range xs {
				xs[b] = mat.NewVec(12)
				for i := range xs[b] {
					xs[b][i] = rng.Normal(0, 1)
				}
			}
			lRef := trainBatchPerSampleRef(ref, xs, refOpt, 10)
			lBat := bat.TrainBatch(xs, batOpt, 10)
			if lRef != lBat {
				t.Fatalf("B=%d step=%d: loss %v != %v", B, step, lBat, lRef)
			}
		}
		refPs, batPs := ref.Params(), bat.Params()
		for i := range refPs {
			for j := range refPs[i].Val {
				if refPs[i].Val[j] != batPs[i].Val[j] {
					t.Fatalf("B=%d: weights diverge at %s[%d]", B, refPs[i].Name, j)
				}
			}
		}
	}
}

func TestInferBatchSteadyStateZeroAlloc(t *testing.T) {
	rng := mat.NewRNG(21)
	m := NewMLP([]int{30, 40, 11}, []Activation{ELU{}, Identity{}}, rng)
	X := randBatch(16, 30, rng)
	ws := mat.NewWorkspace()
	// Prime the arena to its high-water mark.
	ws.Reset()
	m.InferBatchWS(ws, X)
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.InferBatchWS(ws, X)
	})
	if allocs != 0 {
		t.Fatalf("steady-state InferBatchWS allocates %v per run, want 0", allocs)
	}
	x := X.Row(0)
	ws.Reset()
	m.InferWS(ws, x)
	allocs = testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.InferWS(ws, x)
	})
	if allocs != 0 {
		t.Fatalf("steady-state InferWS allocates %v per run, want 0", allocs)
	}
}
