package nn

import "math"

// Devirtualized elementwise activation loops. The generic interface call per
// element costs more than the arithmetic for the cheap activations, so the
// hot layer paths funnel through these helpers, which type-switch once per
// vector and then run a direct loop. Each branch replicates the
// corresponding Activation method exactly, so results are bitwise identical
// to the interface path (the default case).

// applyAct computes dst[i] = act.F(src[i]). src and dst may alias.
func applyAct(act Activation, src, dst []float64) {
	dst = dst[:len(src)]
	switch a := act.(type) {
	case Identity:
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
	case ELU:
		al := a.alpha()
		for i, x := range src {
			if x >= 0 {
				dst[i] = x
			} else {
				dst[i] = al * (math.Exp(x) - 1)
			}
		}
	case ReLU:
		for i, x := range src {
			if x > 0 {
				dst[i] = x
			} else {
				dst[i] = 0
			}
		}
	case Tanh:
		for i, x := range src {
			dst[i] = math.Tanh(x)
		}
	case Sigmoid:
		for i, x := range src {
			dst[i] = 1 / (1 + math.Exp(-x))
		}
	default:
		for i, x := range src {
			dst[i] = act.F(x)
		}
	}
}

// applyActDeriv computes dst[i] = dy[i] * act.Deriv(pre[i], y[i]).
func applyActDeriv(act Activation, dy, pre, y, dst []float64) {
	n := len(dy)
	pre = pre[:n]
	y = y[:n]
	dst = dst[:n]
	switch a := act.(type) {
	case Identity:
		copy(dst, dy)
	case ELU:
		al := a.alpha()
		for i, g := range dy {
			if pre[i] >= 0 {
				dst[i] = g
			} else {
				dst[i] = g * (y[i] + al)
			}
		}
	case ReLU:
		for i, g := range dy {
			if pre[i] > 0 {
				dst[i] = g
			} else {
				dst[i] = g * 0 // keep the sign-of-zero of the generic path
			}
		}
	case Tanh:
		for i, g := range dy {
			dst[i] = g * (1 - y[i]*y[i])
		}
	case Sigmoid:
		for i, g := range dy {
			dst[i] = g * (y[i] * (1 - y[i]))
		}
	default:
		for i, g := range dy {
			dst[i] = g * act.Deriv(pre[i], y[i])
		}
	}
}
