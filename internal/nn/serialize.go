package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is a serializable copy of a parameter set, keyed by parameter
// name. It captures weights only (not optimizer state), which is what model
// checkpointing needs: a trained network can be saved after the offline
// phase and restored into a fresh process.
type Snapshot map[string][]float64

// TakeSnapshot deep-copies the current values of params.
func TakeSnapshot(params []Param) Snapshot {
	s := make(Snapshot, len(params))
	for _, p := range params {
		if _, dup := s[p.Name]; dup {
			panic(fmt.Sprintf("nn: duplicate parameter name %q in snapshot", p.Name))
		}
		s[p.Name] = append([]float64(nil), p.Val...)
	}
	return s
}

// Restore copies the snapshot's values into params. Every parameter must be
// present with a matching length; extra snapshot entries are an error too,
// so architecture mismatches fail loudly instead of loading garbage.
func (s Snapshot) Restore(params []Param) error {
	if len(s) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, network has %d", len(s), len(params))
	}
	for _, p := range params {
		vals, ok := s[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(vals) != len(p.Val) {
			return fmt.Errorf("nn: parameter %q has %d values, want %d",
				p.Name, len(vals), len(p.Val))
		}
	}
	for _, p := range params {
		copy(p.Val, s[p.Name])
	}
	return nil
}

// Write serializes the snapshot as JSON.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("nn: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a JSON snapshot.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decode snapshot: %w", err)
	}
	return s, nil
}
