package nn

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		y    float64
		dydx float64
	}{
		{ELU{}, 2, 2, 1},
		{ELU{}, -1, math.Exp(-1) - 1, math.Exp(-1)},
		{ELU{Alpha: 2}, -1, 2 * (math.Exp(-1) - 1), 2 * math.Exp(-1)},
		{ReLU{}, 3, 3, 1},
		{ReLU{}, -3, 0, 0},
		{Tanh{}, 0, 0, 1},
		{Sigmoid{}, 0, 0.5, 0.25},
		{Identity{}, -7, -7, 1},
	}
	for _, tc := range cases {
		y := tc.act.F(tc.x)
		if math.Abs(y-tc.y) > 1e-12 {
			t.Errorf("%s.F(%v) = %v, want %v", tc.act.Name(), tc.x, y, tc.y)
		}
		d := tc.act.Deriv(tc.x, y)
		if math.Abs(d-tc.dydx) > 1e-12 {
			t.Errorf("%s.Deriv(%v) = %v, want %v", tc.act.Name(), tc.x, d, tc.dydx)
		}
	}
}

// Property: each activation's Deriv matches a central finite difference.
func TestActivationDerivativeProperty(t *testing.T) {
	acts := []Activation{ELU{}, Tanh{}, Sigmoid{}, Identity{}}
	f := func(raw float64) bool {
		x := math.Mod(raw, 5)
		if math.IsNaN(x) {
			return true
		}
		const h = 1e-6
		for _, a := range acts {
			want := (a.F(x+h) - a.F(x-h)) / (2 * h)
			got := a.Deriv(x, a.F(x))
			if math.Abs(got-want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseForwardShapes(t *testing.T) {
	rng := mat.NewRNG(1)
	d := NewDense(3, 2, nil, rng)
	y, _ := d.Forward(mat.Vec{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output length %d want 2", len(y))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input length should panic")
		}
	}()
	d.Forward(mat.Vec{1, 2})
}

func TestDenseInferMatchesForward(t *testing.T) {
	rng := mat.NewRNG(2)
	d := NewDense(4, 3, ELU{}, rng)
	x := mat.Vec{0.1, -0.2, 0.3, 0.7}
	yF, _ := d.Forward(x)
	yI := mat.NewVec(3)
	d.Infer(x, yI)
	for i := range yF {
		if math.Abs(yF[i]-yI[i]) > 1e-12 {
			t.Fatalf("Forward/Infer mismatch at %d: %v vs %v", i, yF[i], yI[i])
		}
	}
}

// numericalGrad computes dLoss/dtheta by central differences for a scalar
// loss function of the network output.
func numericalGrad(theta []float64, loss func() float64) []float64 {
	const h = 1e-6
	out := make([]float64, len(theta))
	for i := range theta {
		orig := theta[i]
		theta[i] = orig + h
		lp := loss()
		theta[i] = orig - h
		lm := loss()
		theta[i] = orig
		out[i] = (lp - lm) / (2 * h)
	}
	return out
}

func TestDenseGradCheck(t *testing.T) {
	rng := mat.NewRNG(3)
	d := NewDense(3, 2, ELU{}, rng)
	x := mat.Vec{0.5, -0.4, 0.9}
	target := mat.Vec{0.3, -0.1}

	lossFn := func() float64 {
		y := mat.NewVec(2)
		d.Infer(x, y)
		l, _ := MSE(y, target)
		return l
	}

	ZeroGrads(d.Params())
	y, back := d.Forward(x)
	_, grad := MSE(y, target)
	dx := back(grad)

	for _, p := range d.Params() {
		want := numericalGrad(p.Val, lossFn)
		for i := range want {
			if math.Abs(p.Grad[i]-want[i]) > 1e-5 {
				t.Fatalf("param %s grad[%d]: analytic %v numeric %v",
					p.Name, i, p.Grad[i], want[i])
			}
		}
	}

	// Input gradient check.
	wantDx := numericalGrad(x, lossFn)
	for i := range wantDx {
		if math.Abs(dx[i]-wantDx[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx[i], wantDx[i])
		}
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := mat.NewRNG(4)
	m := NewMLP([]int{4, 5, 3}, []Activation{Tanh{}, Identity{}}, rng)
	x := mat.Vec{0.2, -0.7, 0.4, 0.1}
	target := mat.Vec{1, -1, 0.5}

	lossFn := func() float64 {
		l, _ := MSE(m.Infer(x), target)
		return l
	}

	ZeroGrads(m.Params())
	y, back := m.Forward(x)
	_, grad := MSE(y, target)
	back(grad)

	for _, p := range m.Params() {
		want := numericalGrad(p.Val, lossFn)
		for i := range want {
			if math.Abs(p.Grad[i]-want[i]) > 1e-5 {
				t.Fatalf("param %s grad[%d]: analytic %v numeric %v",
					p.Name, i, p.Grad[i], want[i])
			}
		}
	}
}

// Weight sharing: applying the same layer to two inputs must accumulate the
// sum of the per-input gradients.
func TestDenseWeightSharingAccumulates(t *testing.T) {
	rng := mat.NewRNG(5)
	d := NewDense(2, 2, nil, rng)
	x1 := mat.Vec{1, 0}
	x2 := mat.Vec{0, 1}
	target := mat.Vec{0, 0}

	// Individually.
	ZeroGrads(d.Params())
	y1, b1 := d.Forward(x1)
	_, g1 := MSE(y1, target)
	b1(g1)
	grad1 := d.GW.Clone()

	ZeroGrads(d.Params())
	y2, b2 := d.Forward(x2)
	_, g2 := MSE(y2, target)
	b2(g2)
	grad2 := d.GW.Clone()

	// Shared (two applications before reading gradients).
	ZeroGrads(d.Params())
	ya, ba := d.Forward(x1)
	yb, bb := d.Forward(x2)
	_, ga := MSE(ya, target)
	_, gb := MSE(yb, target)
	ba(ga)
	bb(gb)

	for i := range d.GW.Data {
		want := grad1.Data[i] + grad2.Data[i]
		if math.Abs(d.GW.Data[i]-want) > 1e-12 {
			t.Fatalf("shared grad[%d] = %v, want sum %v", i, d.GW.Data[i], want)
		}
	}
}

func TestMSE(t *testing.T) {
	loss, grad := MSE(mat.Vec{1, 2}, mat.Vec{0, 0})
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE loss: got %v want 2.5", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 || math.Abs(grad[1]-2) > 1e-12 {
		t.Fatalf("MSE grad: got %v", grad)
	}
}

func TestHuber(t *testing.T) {
	// Inside the quadratic zone Huber = 0.5*d^2.
	loss, grad := Huber(mat.Vec{0.5}, mat.Vec{0}, 1)
	if math.Abs(loss-0.125) > 1e-12 {
		t.Fatalf("Huber quadratic loss: got %v want 0.125", loss)
	}
	if math.Abs(grad[0]-0.5) > 1e-12 {
		t.Fatalf("Huber quadratic grad: got %v want 0.5", grad[0])
	}
	// Outside: linear with slope delta.
	loss, grad = Huber(mat.Vec{3}, mat.Vec{0}, 1)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("Huber linear loss: got %v want 2.5", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 {
		t.Fatalf("Huber linear grad: got %v want 1", grad[0])
	}
}

func TestHuberGradProperty(t *testing.T) {
	f := func(raw float64) bool {
		d := math.Mod(raw, 10)
		if math.IsNaN(d) || math.Abs(math.Abs(d)-1) < 1e-3 {
			return true // skip the non-differentiable kink
		}
		y := mat.Vec{d}
		tgt := mat.Vec{0}
		_, grad := Huber(y, tgt, 1)
		const h = 1e-6
		lp, _ := Huber(mat.Vec{d + h}, tgt, 1)
		lm, _ := Huber(mat.Vec{d - h}, tgt, 1)
		want := (lp - lm) / (2 * h)
		return math.Abs(grad[0]-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClipGrads(t *testing.T) {
	p := Param{Val: []float64{0, 0}, Grad: []float64{3, 4}}
	pre := ClipGrads([]Param{p}, 10)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm: got %v want 5", pre)
	}
	if p.Grad[0] != 3 || p.Grad[1] != 4 {
		t.Fatal("grads below maxNorm must be unchanged")
	}
	ClipGrads([]Param{p}, 1)
	if n := GradNorm([]Param{p}); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm: got %v want 1", n)
	}
	// Direction preserved.
	if math.Abs(p.Grad[0]/p.Grad[1]-0.75) > 1e-12 {
		t.Fatal("clipping changed gradient direction")
	}
}

func TestClipGradsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		n := 1 + g.Intn(20)
		grad := make([]float64, n)
		g.FillVecNormal(grad, 0, 5)
		p := []Param{{Val: make([]float64, n), Grad: grad}}
		max := 0.1 + g.Float64()*5
		ClipGrads(p, max)
		return GradNorm(p) <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with Adam.
	w := []float64{0}
	g := []float64{0}
	p := []Param{{Val: w, Grad: g}}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p)
	}
	if math.Abs(w[0]-3) > 0.05 {
		t.Fatalf("Adam did not converge: w=%v", w[0])
	}
	if opt.Steps() != 500 {
		t.Fatalf("Steps: got %d want 500", opt.Steps())
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	w := []float64{10}
	g := []float64{0}
	p := []Param{{Val: w, Grad: g}}
	opt := NewSGD(0.1, 0.5)
	for i := 0; i < 300; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step(p)
	}
	if math.Abs(w[0]-3) > 0.05 {
		t.Fatalf("SGD did not converge: w=%v", w[0])
	}
}

func TestMLPLearnsLinearMap(t *testing.T) {
	rng := mat.NewRNG(11)
	m := NewMLP([]int{2, 8, 1}, []Activation{Tanh{}, Identity{}}, rng)
	opt := NewAdam(0.01)
	params := m.Params()

	sample := func(g *mat.RNG) (mat.Vec, mat.Vec) {
		x := mat.Vec{g.Uniform(-1, 1), g.Uniform(-1, 1)}
		return x, mat.Vec{0.5*x[0] - 0.3*x[1]}
	}

	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		ZeroGrads(params)
		var total float64
		for b := 0; b < 16; b++ {
			x, tgt := sample(rng)
			y, back := m.Forward(x)
			l, grad := MSE(y, tgt)
			total += l
			grad.Scale(1.0 / 16)
			back(grad)
		}
		ClipGrads(params, 10)
		opt.Step(params)
		last = total / 16
	}
	if last > 1e-3 {
		t.Fatalf("MLP failed to fit linear map, final loss %v", last)
	}
}

func TestAutoencoderReconstruction(t *testing.T) {
	rng := mat.NewRNG(12)
	// Data on a 2-D manifold in 8-D space: the autoencoder with a 2-unit
	// code should reconstruct it well.
	basis1 := mat.NewVec(8)
	basis2 := mat.NewVec(8)
	rng.FillVecNormal(basis1, 0, 1)
	rng.FillVecNormal(basis2, 0, 1)
	sample := func() mat.Vec {
		a, b := rng.Uniform(-1, 1), rng.Uniform(-1, 1)
		x := mat.NewVec(8)
		for i := range x {
			x[i] = a*basis1[i] + b*basis2[i]
		}
		return x
	}
	ae := NewAutoencoder(8, []int{6, 2}, rng)
	opt := NewAdam(0.005)
	var loss float64
	for epoch := 0; epoch < 600; epoch++ {
		batch := make([]mat.Vec, 16)
		for i := range batch {
			batch[i] = sample()
		}
		loss = ae.TrainBatch(batch, opt, 10)
	}
	if loss > 0.02 {
		t.Fatalf("autoencoder failed to learn 2-D manifold, final loss %v", loss)
	}
	if ae.CodeDim() != 2 || ae.InDim() != 8 {
		t.Fatalf("dims: code=%d in=%d", ae.CodeDim(), ae.InDim())
	}
	x := sample()
	if rl := ae.ReconstructionLoss(x); rl > 0.05 {
		t.Fatalf("held-out reconstruction loss %v too high", rl)
	}
}

func TestAutoencoderEncodeGradCheck(t *testing.T) {
	rng := mat.NewRNG(13)
	ae := NewAutoencoder(4, []int{3, 2}, rng)
	x := mat.Vec{0.3, -0.2, 0.8, 0.1}
	target := mat.Vec{0.5, -0.5}

	lossFn := func() float64 {
		l, _ := MSE(ae.EncodeInfer(x), target)
		return l
	}

	params := ae.Enc.Params()
	ZeroGrads(params)
	code, back := ae.Encode(x)
	_, grad := MSE(code, target)
	back(grad)

	for _, p := range params {
		want := numericalGrad(p.Val, lossFn)
		for i := range want {
			if math.Abs(p.Grad[i]-want[i]) > 1e-5 {
				t.Fatalf("encoder %s grad[%d]: analytic %v numeric %v",
					p.Name, i, p.Grad[i], want[i])
			}
		}
	}
}

func TestMLPCopyWeights(t *testing.T) {
	rng := mat.NewRNG(14)
	a := NewMLP([]int{3, 4, 2}, []Activation{ELU{}, Identity{}}, rng)
	b := NewMLP([]int{3, 4, 2}, []Activation{ELU{}, Identity{}}, rng)
	x := mat.Vec{0.1, 0.2, 0.3}
	b.CopyWeightsFrom(a)
	ya := a.Infer(x)
	yb := b.Infer(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("CopyWeightsFrom did not make networks identical")
		}
	}
	if a.NumParams() != b.NumParams() {
		t.Fatal("param count mismatch")
	}
	// Check param counts: (3*4+4) + (4*2+2) = 26
	if a.NumParams() != 26 {
		t.Fatalf("NumParams: got %d want 26", a.NumParams())
	}
}

func TestConstructorPanics(t *testing.T) {
	rng := mat.NewRNG(1)
	cases := []struct {
		name string
		fn   func()
	}{
		{"DenseZeroIn", func() { NewDense(0, 1, nil, rng) }},
		{"MLPOneSize", func() { NewMLP([]int{3}, nil, rng) }},
		{"MLPActMismatch", func() { NewMLP([]int{3, 2}, []Activation{}, rng) }},
		{"AdamZeroLR", func() { NewAdam(0) }},
		{"SGDZeroLR", func() { NewSGD(0, 0) }},
		{"AEZeroIn", func() { NewAutoencoder(0, []int{2}, rng) }},
		{"AENoHidden", func() { NewAutoencoder(3, nil, rng) }},
		{"HuberZeroDelta", func() { Huber(mat.Vec{1}, mat.Vec{1}, 0) }},
		{"MSEMismatch", func() { MSE(mat.Vec{1}, mat.Vec{1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
