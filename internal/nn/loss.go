package nn

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
)

// MSE returns the mean-squared-error loss between prediction y and target t,
// along with the gradient dL/dy. The loss is 1/n * sum (y_i - t_i)^2.
func MSE(y, t mat.Vec) (loss float64, grad mat.Vec) {
	if len(y) != len(t) {
		panic(fmt.Sprintf("nn: MSE length mismatch %d != %d", len(y), len(t)))
	}
	grad = mat.NewVec(len(y))
	n := float64(len(y))
	for i := range y {
		d := y[i] - t[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// Huber returns the Huber loss (mean over elements) with threshold delta,
// along with the gradient dL/dy. Quadratic inside |d| <= delta, linear
// outside — the standard robust loss for Q-value regression.
func Huber(y, t mat.Vec, delta float64) (loss float64, grad mat.Vec) {
	if len(y) != len(t) {
		panic(fmt.Sprintf("nn: Huber length mismatch %d != %d", len(y), len(t)))
	}
	if delta <= 0 {
		panic("nn: Huber requires delta > 0")
	}
	grad = mat.NewVec(len(y))
	n := float64(len(y))
	for i := range y {
		d := y[i] - t[i]
		if math.Abs(d) <= delta {
			loss += 0.5 * d * d
			grad[i] = d / n
		} else {
			loss += delta * (math.Abs(d) - 0.5*delta)
			if d > 0 {
				grad[i] = delta / n
			} else {
				grad[i] = -delta / n
			}
		}
	}
	return loss / n, grad
}
