package nn

import (
	"fmt"

	"hierdrl/internal/mat"
)

// MLP is a stack of Dense layers applied in sequence.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a multilayer perceptron with the given layer sizes. sizes
// must contain at least two entries (input and output dimension). acts must
// have len(sizes)-1 entries, one per layer; nil entries mean Identity.
func NewMLP(sizes []int, acts []Activation, rng *mat.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic(fmt.Sprintf("nn: NewMLP got %d activations for %d layers",
			len(acts), len(sizes)-1))
	}
	m := &MLP{Layers: make([]*Dense, 0, len(sizes)-1)}
	for i := 0; i < len(sizes)-1; i++ {
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], acts[i], rng))
	}
	return m
}

// InDim returns the input dimensionality.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimensionality.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the network and returns the output plus a backward closure
// producing dL/dinput while accumulating parameter gradients.
func (m *MLP) Forward(x mat.Vec) (y mat.Vec, back func(dy mat.Vec) mat.Vec) {
	backs := make([]func(mat.Vec) mat.Vec, len(m.Layers))
	h := x
	for i, l := range m.Layers {
		h, backs[i] = l.Forward(h)
	}
	back = func(dy mat.Vec) mat.Vec {
		g := dy
		for i := len(backs) - 1; i >= 0; i-- {
			g = backs[i](g)
		}
		return g
	}
	return h, back
}

// Infer runs the network without capturing backprop state. It allocates and
// returns the output vector.
func (m *MLP) Infer(x mat.Vec) mat.Vec {
	h := x
	for _, l := range m.Layers {
		out := mat.NewVec(l.Out)
		l.Infer(h, out)
		h = out
	}
	return h
}

// Params enumerates all trainable parameters.
func (m *MLP) Params() []Param {
	var ps []Param
	for i, l := range m.Layers {
		for _, p := range l.Params() {
			p.Name = fmt.Sprintf("layer%d.%s", i, p.Name)
			ps = append(ps, p)
		}
	}
	return ps
}

// CopyWeightsFrom copies weights from src, layer by layer. Shapes must match.
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: MLP CopyWeightsFrom layer count mismatch")
	}
	for i := range m.Layers {
		m.Layers[i].CopyWeightsFrom(src.Layers[i])
	}
}

// InvalidateTransposes marks every layer's cached Wᵀ stale. Call after any
// out-of-band weight mutation (optimizer step, snapshot restore).
func (m *MLP) InvalidateTransposes() {
	for _, l := range m.Layers {
		l.InvalidateTranspose()
	}
}

// NumParams returns the total scalar parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += l.NumParams()
	}
	return n
}
