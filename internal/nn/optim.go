package nn

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
)

// Adam implements the Adam stochastic optimizer (Kingma & Ba, 2014), which
// the paper uses for both the DNN and the LSTM. The optimizer keeps one
// first/second moment buffer per parameter tensor, matched by position, so
// Step must always be called with the same parameter list.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic("nn: Adam requires lr > 0")
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update using the accumulated gradients in params and
// then leaves the gradients untouched (callers typically ZeroGrads after).
func (a *Adam) Step(params []Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Val))
			a.v[i] = make([]float64, len(p.Val))
		}
	}
	if len(params) != len(a.m) {
		panic(fmt.Sprintf("nn: Adam.Step param count changed: %d != %d",
			len(params), len(a.m)))
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		if len(p.Val) != len(a.m[i]) {
			panic(fmt.Sprintf("nn: Adam.Step param %d size changed: %d != %d",
				i, len(p.Val), len(a.m[i])))
		}
		mat.FusedAdam(p.Val, p.Grad, a.m[i], a.v[i],
			a.Beta1, a.Beta2, c1, c2, a.LR, a.Eps)
	}
}

// Steps returns how many updates have been applied.
func (a *Adam) Steps() int { return a.t }

// SGD is a plain stochastic-gradient-descent optimizer, available as a
// baseline for the ablation benchmarks.
type SGD struct {
	LR       float64
	Momentum float64

	vel [][]float64
}

// NewSGD returns an SGD optimizer with optional momentum.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic("nn: SGD requires lr > 0")
	}
	return &SGD{LR: lr, Momentum: momentum}
}

// Step applies one SGD update.
func (s *SGD) Step(params []Param) {
	if s.vel == nil {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, len(p.Val))
		}
	}
	if len(params) != len(s.vel) {
		panic(fmt.Sprintf("nn: SGD.Step param count changed: %d != %d",
			len(params), len(s.vel)))
	}
	for i, p := range params {
		vel := s.vel[i]
		for j, g := range p.Grad {
			vel[j] = s.Momentum*vel[j] - s.LR*g
			p.Val[j] += vel[j]
		}
	}
}

// Optimizer abstracts Adam and SGD so network trainers can be parameterized.
type Optimizer interface {
	Step(params []Param)
}

var (
	_ Optimizer = (*Adam)(nil)
	_ Optimizer = (*SGD)(nil)
)
