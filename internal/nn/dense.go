package nn

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
)

// Param is one trainable tensor (flattened) together with its accumulated
// gradient. Optimizers mutate Val in place.
type Param struct {
	Name string
	Val  []float64
	Grad []float64
}

// ZeroGrads clears the gradient buffers of all params.
func ZeroGrads(params []Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// GradNorm returns the global L2 norm across all parameter gradients.
func GradNorm(params []Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrads rescales all gradients so their global L2 norm is at most
// maxNorm (the paper clips at 10). It returns the pre-clip norm.
func ClipGrads(params []Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}

// Dense is a fully-connected layer: y = act(W x + b). Forward returns a
// backward closure that accumulates dW and db and returns dx, so the same
// layer object may be applied several times per sample (weight sharing).
type Dense struct {
	In, Out int
	Act     Activation

	W  *mat.Dense // Out x In
	B  mat.Vec    // Out
	GW *mat.Dense // gradient accumulator, Out x In
	GB mat.Vec    // gradient accumulator, Out

	// wt caches Wᵀ for the SIMD fast paths. It is rebuilt lazily after any
	// weight mutation; every code path that writes W (optimizer steps,
	// weight copies, snapshot restores) must call InvalidateTranspose.
	wt   *mat.Dense
	wtOK bool
}

// InvalidateTranspose marks the cached Wᵀ stale. Call after mutating W
// outside the layer's own methods.
func (d *Dense) InvalidateTranspose() { d.wtOK = false }

// transposedW returns the cached Wᵀ, rebuilding it if stale. It returns
// nil when no kernel would read the transpose (no SIMD support, or the
// layer is too narrow), so callers skip the cache maintenance entirely on
// such platforms/shapes.
func (d *Dense) transposedW() *mat.Dense {
	if !mat.BTUsable(d.Out) {
		return nil
	}
	if !d.wtOK {
		if d.wt == nil {
			d.wt = mat.NewDense(d.In, d.Out)
		}
		mat.TransposeInto(d.W, d.wt)
		d.wtOK = true
	}
	return d.wt
}

// NewDense returns a Dense layer with Xavier-initialized weights and zero
// biases. act may be nil, which means Identity.
func NewDense(in, out int, act Activation, rng *mat.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense invalid dims in=%d out=%d", in, out))
	}
	if act == nil {
		act = Identity{}
	}
	d := &Dense{
		In:  in,
		Out: out,
		Act: act,
		W:   mat.NewDense(out, in),
		B:   mat.NewVec(out),
		GW:  mat.NewDense(out, in),
		GB:  mat.NewVec(out),
	}
	rng.FillXavier(d.W, in, out)
	return d
}

// Forward computes y = act(Wx + b) and returns a backward closure. The
// closure accumulates parameter gradients into GW/GB and returns dL/dx.
// The returned y is freshly allocated and owned by the caller.
func (d *Dense) Forward(x mat.Vec) (y mat.Vec, back func(dy mat.Vec) mat.Vec) {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward input length %d want %d", len(x), d.In))
	}
	pre := mat.NewVec(d.Out)
	d.W.MulVec(x, pre)
	mat.AddScaled(pre, 1, d.B)
	y = mat.NewVec(d.Out)
	applyAct(d.Act, pre, y)
	xSaved := x.Clone()
	back = func(dy mat.Vec) mat.Vec {
		if len(dy) != d.Out {
			panic(fmt.Sprintf("nn: Dense backward grad length %d want %d", len(dy), d.Out))
		}
		dPre := mat.NewVec(d.Out)
		applyActDeriv(d.Act, dy, pre, y, dPre)
		d.GW.AddOuter(1, dPre, xSaved)
		d.GB.Add(dPre)
		dx := mat.NewVec(d.In)
		d.W.MulVecT(dPre, dx)
		return dx
	}
	return y, back
}

// ForwardSaved computes pre = W·x + b and y = act(pre) into caller-owned
// buffers — the training forward pass with the backprop state (x, pre, y)
// saved by the caller instead of captured in a closure, so recurrent
// unrolls (LSTM BPTT) can reuse one buffer set per time step and run
// allocation-free. Like Forward it reads no transpose cache, so it stays
// correct under out-of-band weight mutation without any invalidation
// discipline.
func (d *Dense) ForwardSaved(x, pre, y mat.Vec) {
	if len(x) != d.In || len(pre) != d.Out || len(y) != d.Out {
		panic(fmt.Sprintf("nn: Dense.ForwardSaved shapes len(x)=%d len(pre)=%d len(y)=%d want %d,%d,%d",
			len(x), len(pre), len(y), d.In, d.Out, d.Out))
	}
	d.W.MulVec(x, pre)
	mat.AddScaled(pre, 1, d.B)
	applyAct(d.Act, pre, y)
}

// BackwardSaved replays Forward's backward closure from buffers saved by
// ForwardSaved: it accumulates the parameter gradients (GW += dPre⊗x,
// GB += dPre) and writes dL/dx into dx. dPre is caller scratch of length
// Out (overwritten); dx has length In (overwritten). The arithmetic — and
// therefore every accumulated gradient bit — matches Forward's closure.
func (d *Dense) BackwardSaved(x, pre, y, dy, dPre, dx mat.Vec) {
	if len(dy) != d.Out || len(dPre) != d.Out || len(dx) != d.In {
		panic(fmt.Sprintf("nn: Dense.BackwardSaved shapes len(dy)=%d len(dPre)=%d len(dx)=%d want %d,%d,%d",
			len(dy), len(dPre), len(dx), d.Out, d.Out, d.In))
	}
	applyActDeriv(d.Act, dy, pre, y, dPre)
	d.GW.AddOuter(1, dPre, x)
	d.GB.Add(dPre)
	d.W.MulVecT(dPre, dx)
}

// Infer computes the layer output without capturing state for backprop.
// dst must have length Out; it is returned for convenience.
func (d *Dense) Infer(x, dst mat.Vec) mat.Vec {
	if len(x) != d.In || len(dst) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Infer shapes len(x)=%d len(dst)=%d want %d,%d",
			len(x), len(dst), d.In, d.Out))
	}
	d.W.MulVec(x, dst)
	mat.AddScaled(dst, 1, d.B)
	applyAct(d.Act, dst, dst)
	return dst
}

// InferFast is Infer routed through the cached-Wᵀ SIMD path (bitwise
// identical results). Unlike Infer it reads the transpose cache, so callers
// must guarantee InvalidateTranspose runs after every out-of-band weight
// mutation; the training loops in this repo are wired accordingly. Use
// plain Infer when in doubt — e.g. when perturbing weights through Params.
func (d *Dense) InferFast(x, dst mat.Vec) mat.Vec {
	if len(x) != d.In || len(dst) != d.Out {
		panic(fmt.Sprintf("nn: Dense.InferFast shapes len(x)=%d len(dst)=%d want %d,%d",
			len(x), len(dst), d.In, d.Out))
	}
	mat.MulVecWithBT(d.W, d.transposedW(), x, dst)
	mat.AddScaled(dst, 1, d.B)
	applyAct(d.Act, dst, dst)
	return dst
}

// Params implements the parameter enumeration used by optimizers.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: "W", Val: d.W.Data, Grad: d.GW.Data},
		{Name: "b", Val: d.B, Grad: d.GB},
	}
}

// CopyWeightsFrom copies the weights (not gradients) of src into d. The two
// layers must have identical shape. Used for target-network syncing.
func (d *Dense) CopyWeightsFrom(src *Dense) {
	if d.In != src.In || d.Out != src.Out {
		panic(fmt.Sprintf("nn: CopyWeightsFrom shape mismatch %dx%d != %dx%d",
			d.Out, d.In, src.Out, src.In))
	}
	d.W.CopyFrom(src.W)
	d.B.CopyFrom(src.B)
	d.wtOK = false
}

// NumParams returns the number of scalar parameters in the layer.
func (d *Dense) NumParams() int { return d.Out*d.In + d.Out }
