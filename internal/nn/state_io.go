package nn

import (
	"fmt"

	"hierdrl/internal/checkpoint"
)

// SaveState serializes the optimizer's step count and moment buffers. The
// moment buffers are lazily allocated on the first Step, so a never-stepped
// optimizer round-trips as (t=0, no buffers).
func (a *Adam) SaveState(e *checkpoint.Enc) {
	e.Int(a.t)
	e.Int(len(a.m))
	for i := range a.m {
		e.F64s(a.m[i])
		e.F64s(a.v[i])
	}
}

// RestoreState reads what SaveState wrote, replacing the optimizer's
// trajectory state. Hyperparameters (LR, betas, eps) are construction
// config and are not touched.
func (a *Adam) RestoreState(d *checkpoint.Dec) error {
	a.t = d.Int()
	n := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("%w: Adam moment tensor count %d", checkpoint.ErrCorrupt, n)
	}
	if n == 0 {
		a.m, a.v = nil, nil
		return nil
	}
	a.m = make([][]float64, n)
	a.v = make([][]float64, n)
	for i := 0; i < n; i++ {
		a.m[i] = d.F64s()
		a.v[i] = d.F64s()
	}
	return d.Sticky()
}
