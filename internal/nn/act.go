// Package nn implements the small neural-network toolkit the paper needs:
// fully-connected layers with closure-based backpropagation, ELU activations,
// the Adam optimizer, global gradient-norm clipping, and an autoencoder.
//
// The backward pass is expressed as closures: every Forward call returns the
// output along with a function that, given the gradient of the loss with
// respect to the output, accumulates parameter gradients and returns the
// gradient with respect to the input. Because gradients are *accumulated*,
// applying one layer object to several inputs within a sample (the paper's
// weight sharing across server groups, and the LSTM's sharing across time
// steps) falls out naturally.
package nn

import "math"

// Activation is an elementwise nonlinearity. Deriv receives both the
// pre-activation x and the activation y = F(x) so implementations can use
// whichever is cheaper.
type Activation interface {
	// F applies the function to a scalar.
	F(x float64) float64
	// Deriv returns dF/dx given the input x and output y = F(x).
	Deriv(x, y float64) float64
	// Name identifies the activation for diagnostics.
	Name() string
}

// ELU is the exponential linear unit used by the paper's autoencoder and
// Sub-Q networks: F(x) = x for x >= 0, alpha*(e^x - 1) otherwise.
type ELU struct {
	Alpha float64
}

// F implements Activation.
func (e ELU) F(x float64) float64 {
	if x >= 0 {
		return x
	}
	return e.alpha() * (math.Exp(x) - 1)
}

// Deriv implements Activation.
func (e ELU) Deriv(x, y float64) float64 {
	if x >= 0 {
		return 1
	}
	return y + e.alpha() // alpha*e^x = y + alpha
}

// Name implements Activation.
func (e ELU) Name() string { return "elu" }

func (e ELU) alpha() float64 {
	if e.Alpha == 0 {
		return 1
	}
	return e.Alpha
}

// ReLU is the rectified linear unit.
type ReLU struct{}

// F implements Activation.
func (ReLU) F(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Deriv implements Activation.
func (ReLU) Deriv(x, _ float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Tanh is the hyperbolic tangent.
type Tanh struct{}

// F implements Activation.
func (Tanh) F(x float64) float64 { return math.Tanh(x) }

// Deriv implements Activation.
func (Tanh) Deriv(_, y float64) float64 { return 1 - y*y }

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Sigmoid is the logistic function.
type Sigmoid struct{}

// F implements Activation.
func (Sigmoid) F(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Deriv implements Activation.
func (Sigmoid) Deriv(_, y float64) float64 { return y * (1 - y) }

// Name implements Activation.
func (Sigmoid) Name() string { return "sigmoid" }

// Identity is the linear (no-op) activation used for Q-value output layers.
type Identity struct{}

// F implements Activation.
func (Identity) F(x float64) float64 { return x }

// Deriv implements Activation.
func (Identity) Deriv(_, _ float64) float64 { return 1 }

// Name implements Activation.
func (Identity) Name() string { return "identity" }

var (
	_ Activation = ELU{}
	_ Activation = ReLU{}
	_ Activation = Tanh{}
	_ Activation = Sigmoid{}
	_ Activation = Identity{}
)
