package nn

import (
	"fmt"

	"hierdrl/internal/mat"
)

// Autoencoder is the representation-learning component of the paper's
// global-tier DNN (Sec. V-A): an encoder that compresses a server-group
// state vector to a low-dimensional code, plus a mirrored decoder used only
// during (pre-)training with a reconstruction objective. The paper's encoder
// is two fully-connected ELU layers with 30 and 15 neurons.
type Autoencoder struct {
	Enc *MLP
	Dec *MLP

	// ws is the scratch arena for TrainBatch (inputs, activations,
	// gradients); params caches the parameter enumeration. Both make warm
	// pretraining epochs allocation-free. An Autoencoder is not safe for
	// concurrent use.
	ws     *mat.Workspace
	params []Param
}

// NewAutoencoder builds an autoencoder for input dimension in with the given
// hidden sizes; the last hidden size is the code dimension. All encoder and
// decoder layers use ELU except the decoder output, which is linear so that
// arbitrary-range inputs can be reconstructed.
func NewAutoencoder(in int, hidden []int, rng *mat.RNG) *Autoencoder {
	if in <= 0 {
		panic(fmt.Sprintf("nn: NewAutoencoder invalid input dim %d", in))
	}
	if len(hidden) == 0 {
		panic("nn: NewAutoencoder needs at least one hidden size")
	}
	encSizes := append([]int{in}, hidden...)
	encActs := make([]Activation, len(hidden))
	for i := range encActs {
		encActs[i] = ELU{}
	}
	decSizes := make([]int, 0, len(hidden)+1)
	for i := len(hidden) - 1; i >= 0; i-- {
		decSizes = append(decSizes, hidden[i])
	}
	decSizes = append(decSizes, in)
	decActs := make([]Activation, len(decSizes)-1)
	for i := range decActs {
		if i == len(decActs)-1 {
			decActs[i] = Identity{}
		} else {
			decActs[i] = ELU{}
		}
	}
	return &Autoencoder{
		Enc: NewMLP(encSizes, encActs, rng),
		Dec: NewMLP(decSizes, decActs, rng),
	}
}

// CodeDim returns the dimensionality of the learned representation.
func (a *Autoencoder) CodeDim() int { return a.Enc.OutDim() }

// InDim returns the input dimensionality.
func (a *Autoencoder) InDim() int { return a.Enc.InDim() }

// Encode returns the code for x together with a backward closure (for use
// when the encoder participates in a larger computation graph, as in the
// global-tier Q-network).
func (a *Autoencoder) Encode(x mat.Vec) (code mat.Vec, back func(dy mat.Vec) mat.Vec) {
	return a.Enc.Forward(x)
}

// EncodeInfer returns the code for x without capturing backprop state.
func (a *Autoencoder) EncodeInfer(x mat.Vec) mat.Vec { return a.Enc.Infer(x) }

// ReconstructionLoss runs encode+decode on x and returns the MSE
// reconstruction loss without updating any weights.
func (a *Autoencoder) ReconstructionLoss(x mat.Vec) float64 {
	y := a.Dec.Infer(a.Enc.Infer(x))
	loss, _ := MSE(y, x)
	return loss
}

// TrainBatch performs one optimizer step on a minibatch of inputs using the
// reconstruction MSE objective, returning the mean loss over the batch. The
// whole minibatch flows through the encoder and decoder as batched GEMMs;
// the result (loss and updated weights) is bitwise identical to running the
// per-sample Forward path over the batch in order.
func (a *Autoencoder) TrainBatch(xs []mat.Vec, opt Optimizer, clipNorm float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	params := a.Params()
	ZeroGrads(params)
	if a.ws == nil {
		a.ws = mat.NewWorkspace()
	}
	ws := a.ws
	ws.Reset()
	B := len(xs)
	in := a.InDim()
	X := ws.TakeMatUninit(B, in)
	for b, x := range xs {
		X.Row(b).CopyFrom(x)
	}
	// The encoder is the graph's input layer: nothing consumes dL/dX, so
	// skip computing it (parameter gradients are unaffected).
	codes, encBack := a.Enc.ForwardBatchWS(ws, X, false)
	Y, decBack := a.Dec.ForwardBatchWS(ws, codes, true)

	var total float64
	scale := 1 / float64(B)
	n := float64(in)
	G := ws.TakeMatUninit(B, in)
	for b := 0; b < B; b++ {
		yRow, xRow, gRow := Y.Row(b), X.Row(b), G.Row(b)
		var loss float64
		for i := range yRow {
			d := yRow[i] - xRow[i]
			loss += d * d
			// MSE gradient (2d/n), pre-scaled by the batch weight exactly as
			// the per-sample path's grad.Scale(scale) would.
			gRow[i] = 2 * d / n * scale
		}
		total += loss / n
	}
	encBack(decBack(G))
	if clipNorm > 0 {
		ClipGrads(params, clipNorm)
	}
	opt.Step(params)
	a.Enc.InvalidateTransposes()
	a.Dec.InvalidateTransposes()
	return total / float64(B)
}

// Params enumerates encoder and decoder parameters (cached — the tensors
// are fixed at construction).
func (a *Autoencoder) Params() []Param {
	if a.params == nil {
		a.params = a.Enc.Params()
		for _, p := range a.Dec.Params() {
			p.Name = "dec." + p.Name
			a.params = append(a.params, p)
		}
	}
	return a.params
}

// CopyWeightsFrom copies all weights from src.
func (a *Autoencoder) CopyWeightsFrom(src *Autoencoder) {
	a.Enc.CopyWeightsFrom(src.Enc)
	a.Dec.CopyWeightsFrom(src.Dec)
}
