package nn

import (
	"fmt"

	"hierdrl/internal/mat"
)

// Autoencoder is the representation-learning component of the paper's
// global-tier DNN (Sec. V-A): an encoder that compresses a server-group
// state vector to a low-dimensional code, plus a mirrored decoder used only
// during (pre-)training with a reconstruction objective. The paper's encoder
// is two fully-connected ELU layers with 30 and 15 neurons.
type Autoencoder struct {
	Enc *MLP
	Dec *MLP
}

// NewAutoencoder builds an autoencoder for input dimension in with the given
// hidden sizes; the last hidden size is the code dimension. All encoder and
// decoder layers use ELU except the decoder output, which is linear so that
// arbitrary-range inputs can be reconstructed.
func NewAutoencoder(in int, hidden []int, rng *mat.RNG) *Autoencoder {
	if in <= 0 {
		panic(fmt.Sprintf("nn: NewAutoencoder invalid input dim %d", in))
	}
	if len(hidden) == 0 {
		panic("nn: NewAutoencoder needs at least one hidden size")
	}
	encSizes := append([]int{in}, hidden...)
	encActs := make([]Activation, len(hidden))
	for i := range encActs {
		encActs[i] = ELU{}
	}
	decSizes := make([]int, 0, len(hidden)+1)
	for i := len(hidden) - 1; i >= 0; i-- {
		decSizes = append(decSizes, hidden[i])
	}
	decSizes = append(decSizes, in)
	decActs := make([]Activation, len(decSizes)-1)
	for i := range decActs {
		if i == len(decActs)-1 {
			decActs[i] = Identity{}
		} else {
			decActs[i] = ELU{}
		}
	}
	return &Autoencoder{
		Enc: NewMLP(encSizes, encActs, rng),
		Dec: NewMLP(decSizes, decActs, rng),
	}
}

// CodeDim returns the dimensionality of the learned representation.
func (a *Autoencoder) CodeDim() int { return a.Enc.OutDim() }

// InDim returns the input dimensionality.
func (a *Autoencoder) InDim() int { return a.Enc.InDim() }

// Encode returns the code for x together with a backward closure (for use
// when the encoder participates in a larger computation graph, as in the
// global-tier Q-network).
func (a *Autoencoder) Encode(x mat.Vec) (code mat.Vec, back func(dy mat.Vec) mat.Vec) {
	return a.Enc.Forward(x)
}

// EncodeInfer returns the code for x without capturing backprop state.
func (a *Autoencoder) EncodeInfer(x mat.Vec) mat.Vec { return a.Enc.Infer(x) }

// ReconstructionLoss runs encode+decode on x and returns the MSE
// reconstruction loss without updating any weights.
func (a *Autoencoder) ReconstructionLoss(x mat.Vec) float64 {
	y := a.Dec.Infer(a.Enc.Infer(x))
	loss, _ := MSE(y, x)
	return loss
}

// TrainBatch performs one optimizer step on a minibatch of inputs using the
// reconstruction MSE objective, returning the mean loss over the batch.
func (a *Autoencoder) TrainBatch(xs []mat.Vec, opt Optimizer, clipNorm float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	params := a.Params()
	ZeroGrads(params)
	var total float64
	scale := 1 / float64(len(xs))
	for _, x := range xs {
		code, encBack := a.Enc.Forward(x)
		y, decBack := a.Dec.Forward(code)
		loss, grad := MSE(y, x)
		total += loss
		grad.Scale(scale)
		encBack(decBack(grad))
	}
	if clipNorm > 0 {
		ClipGrads(params, clipNorm)
	}
	opt.Step(params)
	return total / float64(len(xs))
}

// Params enumerates encoder and decoder parameters.
func (a *Autoencoder) Params() []Param {
	ps := a.Enc.Params()
	for _, p := range a.Dec.Params() {
		p.Name = "dec." + p.Name
		ps = append(ps, p)
	}
	return ps
}

// CopyWeightsFrom copies all weights from src.
func (a *Autoencoder) CopyWeightsFrom(src *Autoencoder) {
	a.Enc.CopyWeightsFrom(src.Enc)
	a.Dec.CopyWeightsFrom(src.Dec)
}
