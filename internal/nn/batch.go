package nn

import (
	"fmt"

	"hierdrl/internal/mat"
)

// Batched layer application: one minibatch flows through each layer as a
// single B×In · Inᵀ×Out GEMM instead of B separate GEMV calls. Row b of
// every batched result is bitwise identical to the per-sample path applied
// to row b (the mat kernels guarantee per-element accumulation order), so
// the batched and scalar code paths are interchangeable — the batched ones
// are just faster and allocate O(layers) large buffers instead of
// O(batch·layers) small ones.

// InferBatch computes Y = act(X·Wᵀ + b) for a whole minibatch without
// capturing backprop state. X is B×In, Y must be B×Out; no scratch is
// needed, so with caller-owned X and Y the call is allocation-free.
func (d *Dense) InferBatch(X, Y *mat.Dense) {
	if X.Cols != d.In || Y.Cols != d.Out || X.Rows != Y.Rows {
		panic(fmt.Sprintf("nn: Dense.InferBatch shapes X=%dx%d Y=%dx%d want In=%d Out=%d",
			X.Rows, X.Cols, Y.Rows, Y.Cols, d.In, d.Out))
	}
	mat.MulMatTWithBT(X, d.W, d.transposedW(), Y)
	for b := 0; b < Y.Rows; b++ {
		row := Y.Row(b)
		mat.AddScaled(row, 1, d.B)
		applyAct(d.Act, row, row)
	}
}

// ForwardBatch computes Y = act(X·Wᵀ + b) for a whole minibatch and returns
// a backward closure that accumulates dW/db over the batch (in ascending
// sample order, matching a loop of per-sample Forward calls) and returns
// dL/dX.
func (d *Dense) ForwardBatch(X *mat.Dense) (Y *mat.Dense, back func(dY *mat.Dense) *mat.Dense) {
	return d.forwardBatchWS(nil, X, true)
}

// forwardBatchWS is ForwardBatch with all scratch taken from ws (nil means
// heap-allocate) and an optional skip of the dL/dX computation for layers
// whose input gradient nobody consumes. Buffers taken from ws stay live
// until the caller's next ws.Reset, which must not happen between forward
// and backward.
func (d *Dense) forwardBatchWS(ws *mat.Workspace, X *mat.Dense, needDX bool) (Y *mat.Dense, back func(dY *mat.Dense) *mat.Dense) {
	if X.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense.ForwardBatch input width %d want %d", X.Cols, d.In))
	}
	takeMat := func(r, c int) *mat.Dense {
		if ws != nil {
			return ws.TakeMatUninit(r, c)
		}
		return mat.NewDense(r, c)
	}
	B := X.Rows
	pre := takeMat(B, d.Out)
	mat.MulMatTWithBT(X, d.W, d.transposedW(), pre)
	Y = takeMat(B, d.Out)
	for b := 0; b < B; b++ {
		prow := pre.Row(b)
		mat.AddScaled(prow, 1, d.B)
		applyAct(d.Act, prow, Y.Row(b))
	}
	Xs := takeMat(B, d.In)
	Xs.CopyFrom(X)
	Ys := Y
	back = func(dY *mat.Dense) *mat.Dense {
		if dY.Rows != B || dY.Cols != d.Out {
			panic(fmt.Sprintf("nn: Dense batched backward grad %dx%d want %dx%d",
				dY.Rows, dY.Cols, B, d.Out))
		}
		dPre := takeMat(B, d.Out)
		for b := 0; b < B; b++ {
			applyActDeriv(d.Act, dY.Row(b), pre.Row(b), Ys.Row(b), dPre.Row(b))
		}
		mat.AddMulTMat(1, dPre, Xs, d.GW)
		for b := 0; b < B; b++ {
			mat.AddScaled(d.GB, 1, dPre.Row(b))
		}
		if !needDX {
			return nil
		}
		dX := takeMat(B, d.In)
		mat.MulMat(dPre, d.W, dX)
		return dX
	}
	return Y, back
}

// InferBatchWS runs the whole network on a minibatch using ws for every
// intermediate, returning the B×Out output matrix (valid until the next ws
// Reset). Steady-state calls are allocation-free.
func (m *MLP) InferBatchWS(ws *mat.Workspace, X *mat.Dense) *mat.Dense {
	h := X
	for _, l := range m.Layers {
		out := ws.TakeMatUninit(h.Rows, l.Out)
		l.InferBatch(h, out)
		h = out
	}
	return h
}

// InferBatch runs the whole network on a minibatch, allocating the
// intermediates. Prefer InferBatchWS on hot paths.
func (m *MLP) InferBatch(X *mat.Dense) *mat.Dense {
	h := X
	for _, l := range m.Layers {
		out := mat.NewDense(h.Rows, l.Out)
		l.InferBatch(h, out)
		h = out
	}
	return h
}

// InferWS runs the network on a single input using ws for every
// intermediate, returning the output vector (valid until the next ws Reset).
// Steady-state calls are allocation-free.
func (m *MLP) InferWS(ws *mat.Workspace, x mat.Vec) mat.Vec {
	h := x
	for _, l := range m.Layers {
		out := ws.TakeUninit(l.Out)
		l.InferFast(h, out)
		h = out
	}
	return h
}

// ForwardBatch runs the network on a minibatch with backprop capture. The
// backward closure accumulates every layer's parameter gradients (per
// parameter tensor, samples contribute in ascending order — matching a loop
// of per-sample Forward calls) and returns dL/dX.
func (m *MLP) ForwardBatch(X *mat.Dense) (Y *mat.Dense, back func(dY *mat.Dense) *mat.Dense) {
	return m.ForwardBatchWS(nil, X, true)
}

// ForwardBatchWS is ForwardBatch with scratch taken from ws (nil to
// heap-allocate). With needInputDX false the first layer skips computing
// dL/dX and the backward closure returns nil — use when nothing upstream
// consumes the input gradient. ws must not be Reset between forward and
// backward.
func (m *MLP) ForwardBatchWS(ws *mat.Workspace, X *mat.Dense, needInputDX bool) (Y *mat.Dense, back func(dY *mat.Dense) *mat.Dense) {
	backs := make([]func(*mat.Dense) *mat.Dense, len(m.Layers))
	h := X
	for i, l := range m.Layers {
		h, backs[i] = l.forwardBatchWS(ws, h, i > 0 || needInputDX)
	}
	back = func(dY *mat.Dense) *mat.Dense {
		g := dY
		for i := len(backs) - 1; i >= 0; i-- {
			g = backs[i](g)
		}
		return g
	}
	return h, back
}
