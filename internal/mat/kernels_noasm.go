//go:build !amd64

package mat

// Portable fallbacks: non-amd64 builds always use the Go tiles.

const useVectorKernels = false

func vaxpy4Tile(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64) {
	vaxpy4(dst, r0, r1, r2, r3, x0, x1, x2, x3)
}

func vaxpy4(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64) {
	for j := range dst {
		s := dst[j]
		s += r0[j] * x0
		s += r1[j] * x1
		s += r2[j] * x2
		s += r3[j] * x3
		dst[j] = s
	}
}

func vaxpy8Tile(dst, r0, r1, r2, r3, r4, r5, r6, r7 []float64,
	x0, x1, x2, x3, x4, x5, x6, x7 float64) {
	vaxpy4(dst, r0, r1, r2, r3, x0, x1, x2, x3)
	vaxpy4(dst, r4, r5, r6, r7, x4, x5, x6, x7)
}

func vaxpy1(dst, r []float64, x float64) {
	for j := range dst {
		dst[j] += r[j] * x
	}
}

// FusedAdam applies one elementwise Adam update across the whole tensor
// (see the amd64 variant for the formula).
func FusedAdam(val, grad, m, v Vec, b1, b2, c1, c2, lr, eps float64) {
	fusedAdamScalar(val, grad, m, v, 0, b1, b2, c1, c2, lr, eps)
}
