package mat

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the sampling helpers the library needs. Every
// stochastic component takes an explicit *RNG so experiments are exactly
// reproducible from a seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)): a log-normal sample whose
// underlying normal has mean mu and standard deviation sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential sample with the given rate (1/mean).
// It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mat: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives a new independent RNG from this one. It is used to hand
// deterministic sub-streams to components (one per server, one per network)
// without sharing mutable state.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// FillXavier initializes m with Xavier/Glorot uniform samples scaled for
// fanIn inputs and fanOut outputs: U(-sqrt(6/(in+out)), +sqrt(6/(in+out))).
func (g *RNG) FillXavier(m *Dense, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = g.Uniform(-limit, limit)
	}
}

// FillNormal initializes m with Gaussian samples.
func (g *RNG) FillNormal(m *Dense, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = g.Normal(mean, std)
	}
}

// FillVecNormal initializes v with Gaussian samples.
func (g *RNG) FillVecNormal(v Vec, mean, std float64) {
	for i := range v {
		v[i] = g.Normal(mean, std)
	}
}
