package mat

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the sampling helpers the library needs. Every
// stochastic component takes an explicit *RNG so experiments are exactly
// reproducible from a seed.
//
// The underlying source is wrapped in a draw counter, which makes the full
// generator state serializable as the pair (seed, draws): every Int63/Uint64
// the source serves advances its internal state by exactly one step, and
// rand.Rand keeps no state of its own outside the source (the Read buffer is
// never used here). Restore re-seeds and replays that many source steps, so
// a restored chain continues bit-for-bit where the saved one stopped.
type RNG struct {
	r    *rand.Rand
	seed int64
	src  countingSource // by value: the counter rides in the RNG's allocation
}

// countingSource wraps a Source64 and counts every draw. It must implement
// Source64: rand.Rand then routes all draws through Uint64/Int63 directly,
// one source step per call, exactly as with the bare source.
type countingSource struct {
	src rand.Source64
	n   int64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.n = 0; c.src.Seed(seed) }

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	g := &RNG{seed: seed}
	g.src.src = rand.NewSource(seed).(rand.Source64)
	g.r = rand.New(&g.src)
	return g
}

// State returns the serializable generator state: the construction seed and
// the number of source draws served since (re)seeding. The pair fully
// determines the stream position.
func (g *RNG) State() (seed, draws int64) { return g.seed, g.src.n }

// Restore rewinds this generator to the given (seed, draws) state in place:
// the source is re-seeded and fast-forwarded draw by draw (~5 ns per step),
// after which the generator produces the exact continuation of the saved
// stream. In-place restoration matters: components hold *RNG fields, so no
// pointer replumbing is needed.
func (g *RNG) Restore(seed, draws int64) {
	if draws < 0 {
		panic("mat: RNG.Restore negative draw count")
	}
	g.seed = seed
	g.src.src.Seed(seed)
	for i := int64(0); i < draws; i++ {
		g.src.src.Uint64()
	}
	g.src.n = draws
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)): a log-normal sample whose
// underlying normal has mean mu and standard deviation sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponential sample with the given rate (1/mean).
// It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mat: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Split derives a new independent RNG from this one. It is used to hand
// deterministic sub-streams to components (one per server, one per network)
// without sharing mutable state.
func (g *RNG) Split() *RNG { return NewRNG(g.r.Int63()) }

// FillXavier initializes m with Xavier/Glorot uniform samples scaled for
// fanIn inputs and fanOut outputs: U(-sqrt(6/(in+out)), +sqrt(6/(in+out))).
func (g *RNG) FillXavier(m *Dense, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = g.Uniform(-limit, limit)
	}
}

// FillNormal initializes m with Gaussian samples.
func (g *RNG) FillNormal(m *Dense, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = g.Normal(mean, std)
	}
}

// FillVecNormal initializes v with Gaussian samples.
func (g *RNG) FillVecNormal(v Vec, mean, std float64) {
	for i := range v {
		v[i] = g.Normal(mean, std)
	}
}
