package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	b := Vec{4, 5, 6}

	sum := v.Clone()
	sum.Add(b)
	want := Vec{5, 7, 9}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Add: got %v want %v", sum, want)
		}
	}

	diff := v.Clone()
	diff.Sub(b)
	want = Vec{-3, -3, -3}
	for i := range want {
		if diff[i] != want[i] {
			t.Fatalf("Sub: got %v want %v", diff, want)
		}
	}

	prod := v.Clone()
	prod.MulElem(b)
	want = Vec{4, 10, 18}
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("MulElem: got %v want %v", prod, want)
		}
	}

	if got := Dot(v, b); got != 32 {
		t.Fatalf("Dot: got %v want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("Sum: got %v want 6", got)
	}
	if got := v.Mean(); got != 2 {
		t.Fatalf("Mean: got %v want 2", got)
	}
	if got := (Vec{}).Mean(); got != 0 {
		t.Fatalf("Mean of empty: got %v want 0", got)
	}
}

func TestVecMaxMin(t *testing.T) {
	v := Vec{3, -1, 7, 7, 2}
	if i, x := v.Max(); i != 2 || x != 7 {
		t.Fatalf("Max: got (%d,%v) want (2,7)", i, x)
	}
	if i, x := v.Min(); i != 1 || x != -1 {
		t.Fatalf("Min: got (%d,%v) want (1,-1)", i, x)
	}
}

func TestVecClamp(t *testing.T) {
	v := Vec{-2, 0.5, 3}
	v.Clamp(0, 1)
	want := Vec{0, 0.5, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Clamp: got %v want %v", v, want)
		}
	}
}

func TestVecHasNaN(t *testing.T) {
	if (Vec{1, 2, 3}).HasNaN() {
		t.Fatal("clean vector reported NaN")
	}
	if !(Vec{1, math.NaN()}).HasNaN() {
		t.Fatal("NaN not detected")
	}
	if !(Vec{math.Inf(1)}).HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestVecAxpy(t *testing.T) {
	x := Vec{1, 2}
	y := Vec{10, 20}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy: got %v", y)
	}
}

func TestVecConcat(t *testing.T) {
	got := Concat(Vec{1}, Vec{2, 3}, Vec{})
	want := Vec{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Concat length: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat: got %v want %v", got, want)
		}
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Add", func() { Vec{1}.Add(Vec{1, 2}) }},
		{"Sub", func() { Vec{1}.Sub(Vec{1, 2}) }},
		{"MulElem", func() { Vec{1}.MulElem(Vec{1, 2}) }},
		{"Dot", func() { Dot(Vec{1}, Vec{1, 2}) }},
		{"Axpy", func() { Axpy(1, Vec{1}, Vec{1, 2}) }},
		{"CopyFrom", func() { Vec{1}.CopyFrom(Vec{1, 2}) }},
		{"MaxEmpty", func() { Vec{}.Max() }},
		{"MinEmpty", func() { Vec{}.Min() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vec{1, 0, -1}
	dst := NewVec(2)
	m.MulVec(x, dst)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec: got %v want [-2 -2]", dst)
	}

	xt := Vec{1, 1}
	dstT := NewVec(3)
	m.MulVecT(xt, dstT)
	want := Vec{5, 7, 9}
	for i := range want {
		if dstT[i] != want[i] {
			t.Fatalf("MulVecT: got %v want %v", dstT, want)
		}
	}
}

func TestDenseMulVecAdd(t *testing.T) {
	m := NewDense(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	dst := Vec{10, 10}
	m.MulVecAdd(Vec{1, 1}, dst)
	if dst[0] != 13 || dst[1] != 17 {
		t.Fatalf("MulVecAdd: got %v", dst)
	}
	dstT := Vec{10, 10}
	m.MulVecTAdd(Vec{1, 1}, dstT)
	if dstT[0] != 14 || dstT[1] != 16 {
		t.Fatalf("MulVecTAdd: got %v", dstT)
	}
}

func TestDenseAddOuter(t *testing.T) {
	m := NewDense(2, 2)
	m.AddOuter(2, Vec{1, 2}, Vec{3, 4})
	want := []float64{6, 8, 12, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter: got %v want %v", m.Data, want)
		}
	}
}

func TestDenseCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
	if !m.Equal(m, 0) {
		t.Fatal("matrix not equal to itself")
	}
	if m.Equal(c, 1e-9) {
		t.Fatal("distinct matrices reported equal")
	}
}

func TestDenseRowAliases(t *testing.T) {
	m := NewDense(2, 3)
	m.Row(1)[2] = 5
	if m.At(1, 2) != 5 {
		t.Fatal("Row must alias matrix storage")
	}
}

// Property: (Mᵀ x)·y == x·(M y) for all M, x, y — the defining adjoint
// identity that the backprop code relies on.
func TestDenseAdjointProperty(t *testing.T) {
	rng := NewRNG(1)
	f := func(seed int64) bool {
		g := NewRNG(seed)
		rows, cols := 1+g.Intn(8), 1+g.Intn(8)
		m := NewDense(rows, cols)
		rng.FillNormal(m, 0, 1)
		x := NewVec(rows)
		y := NewVec(cols)
		rng.FillVecNormal(x, 0, 1)
		rng.FillVecNormal(y, 0, 1)

		mty := NewVec(rows)
		m.MulVec(y, mty)
		mtx := NewVec(cols)
		m.MulVecT(x, mtx)
		return almostEqual(Dot(mtx, y), Dot(x, mty), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank-1 update agrees with the elementwise definition.
func TestDenseAddOuterProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		rows, cols := 1+g.Intn(6), 1+g.Intn(6)
		a := NewVec(rows)
		b := NewVec(cols)
		g.FillVecNormal(a, 0, 2)
		g.FillVecNormal(b, 0, 2)
		alpha := g.Normal(0, 1)
		m := NewDense(rows, cols)
		g.FillNormal(m, 0, 1)
		ref := m.Clone()
		m.AddOuter(alpha, a, b)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want := ref.At(i, j) + alpha*a[i]*b[j]
				if !almostEqual(m.At(i, j), want, 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseShapePanics(t *testing.T) {
	m := NewDense(2, 3)
	cases := []struct {
		name string
		fn   func()
	}{
		{"MulVec", func() { m.MulVec(NewVec(2), NewVec(2)) }},
		{"MulVecT", func() { m.MulVecT(NewVec(3), NewVec(3)) }},
		{"AddOuter", func() { m.AddOuter(1, NewVec(3), NewVec(3)) }},
		{"CopyFrom", func() { m.CopyFrom(NewDense(3, 2)) }},
		{"NegativeDims", func() { NewDense(-1, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(7)
	d := NewRNG(8)
	same := true
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently-seeded RNGs produced identical streams")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(42)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if !almostEqual(mean, 3, 0.05) {
		t.Fatalf("Normal mean: got %v want 3", mean)
	}
	if !almostEqual(variance, 4, 0.15) {
		t.Fatalf("Normal variance: got %v want 4", variance)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(0.5)
	}
	if mean := sum / n; !almostEqual(mean, 2, 0.05) {
		t.Fatalf("Exponential mean: got %v want 2", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential with rate 0 should panic")
		}
	}()
	g.Exponential(0)
}

func TestRNGXavierBounds(t *testing.T) {
	g := NewRNG(3)
	m := NewDense(10, 20)
	g.FillXavier(m, 20, 10)
	limit := math.Sqrt(6.0 / 30.0)
	for _, x := range m.Data {
		if x < -limit || x > limit {
			t.Fatalf("Xavier sample %v outside ±%v", x, limit)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(5)
	a := g.Split()
	b := g.Split()
	equal := true
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			equal = false
			break
		}
	}
	if equal {
		t.Fatal("Split returned correlated streams")
	}
}

func TestVecNorm2(t *testing.T) {
	if got := (Vec{3, 4}).Norm2(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2: got %v want 5", got)
	}
	m := NewDense(1, 2)
	m.Data[0], m.Data[1] = 3, 4
	if got := m.FrobNorm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("FrobNorm: got %v want 5", got)
	}
}
