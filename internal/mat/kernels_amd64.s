//go:build amd64

#include "textflag.h"

// AVX2 implementations of the fused 4-row axpy kernels. Lanes map to
// independent output elements of dst, and each element receives its four
// row contributions strictly in row order (mul, then add, one row at a
// time), so results are bitwise identical to the scalar Go tile in
// kernels.go — vector parallelism across elements, not across the sum.
//
// Both functions require len(dst) to be a multiple of 4 (the Go wrappers
// peel the scalar tail) and len(r*) >= len(dst). dst must not alias any r.

// func vaxpy4asm(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)
TEXT ·vaxpy4asm(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R9
	MOVQ r0_base+24(FP), SI
	MOVQ r1_base+48(FP), DX
	MOVQ r2_base+72(FP), CX
	MOVQ r3_base+96(FP), R8
	VBROADCASTSD x0+120(FP), Y0
	VBROADCASTSD x1+128(FP), Y1
	VBROADCASTSD x2+136(FP), Y2
	VBROADCASTSD x3+144(FP), Y3
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-16, BX

loop16:
	CMPQ AX, BX
	JGE  tail4
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD 64(DI)(AX*8), Y6
	VMOVUPD 96(DI)(AX*8), Y7

	VMOVUPD (SI)(AX*8), Y8
	VMOVUPD 32(SI)(AX*8), Y9
	VMOVUPD 64(SI)(AX*8), Y10
	VMOVUPD 96(SI)(AX*8), Y11
	VMULPD  Y0, Y8, Y8
	VMULPD  Y0, Y9, Y9
	VMULPD  Y0, Y10, Y10
	VMULPD  Y0, Y11, Y11
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VADDPD  Y10, Y6, Y6
	VADDPD  Y11, Y7, Y7

	VMOVUPD (DX)(AX*8), Y8
	VMOVUPD 32(DX)(AX*8), Y9
	VMOVUPD 64(DX)(AX*8), Y10
	VMOVUPD 96(DX)(AX*8), Y11
	VMULPD  Y1, Y8, Y8
	VMULPD  Y1, Y9, Y9
	VMULPD  Y1, Y10, Y10
	VMULPD  Y1, Y11, Y11
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VADDPD  Y10, Y6, Y6
	VADDPD  Y11, Y7, Y7

	VMOVUPD (CX)(AX*8), Y8
	VMOVUPD 32(CX)(AX*8), Y9
	VMOVUPD 64(CX)(AX*8), Y10
	VMOVUPD 96(CX)(AX*8), Y11
	VMULPD  Y2, Y8, Y8
	VMULPD  Y2, Y9, Y9
	VMULPD  Y2, Y10, Y10
	VMULPD  Y2, Y11, Y11
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VADDPD  Y10, Y6, Y6
	VADDPD  Y11, Y7, Y7

	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD 32(R8)(AX*8), Y9
	VMOVUPD 64(R8)(AX*8), Y10
	VMOVUPD 96(R8)(AX*8), Y11
	VMULPD  Y3, Y8, Y8
	VMULPD  Y3, Y9, Y9
	VMULPD  Y3, Y10, Y10
	VMULPD  Y3, Y11, Y11
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VADDPD  Y10, Y6, Y6
	VADDPD  Y11, Y7, Y7

	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, 64(DI)(AX*8)
	VMOVUPD Y7, 96(DI)(AX*8)
	ADDQ    $16, AX
	JMP     loop16

tail4:
	CMPQ AX, R9
	JGE  done
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y8
	VMULPD  Y0, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (DX)(AX*8), Y8
	VMULPD  Y1, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (CX)(AX*8), Y8
	VMULPD  Y2, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R8)(AX*8), Y8
	VMULPD  Y3, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     tail4

done:
	VZEROUPPER
	RET

// func vaxpy1asm(dst, r []float64, x float64)
TEXT ·vaxpy1asm(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R9
	MOVQ r_base+24(FP), SI
	VBROADCASTSD x+48(FP), Y0
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-16, BX

loop16v1:
	CMPQ AX, BX
	JGE  tail4v1
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMOVUPD 64(DI)(AX*8), Y6
	VMOVUPD 96(DI)(AX*8), Y7
	VMOVUPD (SI)(AX*8), Y8
	VMOVUPD 32(SI)(AX*8), Y9
	VMOVUPD 64(SI)(AX*8), Y10
	VMOVUPD 96(SI)(AX*8), Y11
	VMULPD  Y0, Y8, Y8
	VMULPD  Y0, Y9, Y9
	VMULPD  Y0, Y10, Y10
	VMULPD  Y0, Y11, Y11
	VADDPD  Y8, Y4, Y4
	VADDPD  Y9, Y5, Y5
	VADDPD  Y10, Y6, Y6
	VADDPD  Y11, Y7, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, 64(DI)(AX*8)
	VMOVUPD Y7, 96(DI)(AX*8)
	ADDQ    $16, AX
	JMP     loop16v1

tail4v1:
	CMPQ AX, R9
	JGE  donev1
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y8
	VMULPD  Y0, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     tail4v1

donev1:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fusedAdamAsm(val, grad, m, v []float64, b1, omb1, b2, omb2, c1, c2, lr, eps float64)
// len(val) must be a multiple of 4; the Go wrapper peels the tail.
// Per lane, in scalar expression order:
//   m = b1*m + omb1*g
//   v = b2*v + (omb2*g)*g
//   val -= (lr*(m/c1)) / (sqrt(v/c2) + eps)
// Every operation is IEEE correctly rounded, so lanes match the scalar
// path bitwise.
TEXT ·fusedAdamAsm(SB), NOSPLIT, $0-160
	MOVQ val_base+0(FP), DI
	MOVQ val_len+8(FP), R9
	MOVQ grad_base+24(FP), SI
	MOVQ m_base+48(FP), DX
	MOVQ v_base+72(FP), CX
	VBROADCASTSD b1+96(FP), Y0
	VBROADCASTSD omb1+104(FP), Y1
	VBROADCASTSD b2+112(FP), Y2
	VBROADCASTSD omb2+120(FP), Y3
	VBROADCASTSD c1+128(FP), Y4
	VBROADCASTSD c2+136(FP), Y5
	VBROADCASTSD lr+144(FP), Y6
	VBROADCASTSD eps+152(FP), Y7
	XORQ AX, AX

adamloop:
	CMPQ AX, R9
	JGE  adamdone
	VMOVUPD (SI)(AX*8), Y10  // g
	VMOVUPD (DX)(AX*8), Y8   // m
	VMOVUPD (CX)(AX*8), Y9   // v
	// m = b1*m + omb1*g
	VMULPD  Y0, Y8, Y8
	VMULPD  Y1, Y10, Y12
	VADDPD  Y12, Y8, Y8
	VMOVUPD Y8, (DX)(AX*8)
	// v = b2*v + (omb2*g)*g
	VMULPD  Y2, Y9, Y9
	VMULPD  Y3, Y10, Y12
	VMULPD  Y10, Y12, Y12
	VADDPD  Y12, Y9, Y9
	VMOVUPD Y9, (CX)(AX*8)
	// val -= (lr*(m/c1)) / (sqrt(v/c2) + eps)
	VDIVPD  Y4, Y8, Y8       // mHat = m/c1
	VDIVPD  Y5, Y9, Y9       // vHat = v/c2
	VSQRTPD Y9, Y9
	VADDPD  Y7, Y9, Y9
	VMULPD  Y6, Y8, Y8       // lr*mHat
	VDIVPD  Y9, Y8, Y8
	VMOVUPD (DI)(AX*8), Y11
	VSUBPD  Y8, Y11, Y11
	VMOVUPD Y11, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     adamloop

adamdone:
	VZEROUPPER
	RET

// AVX-512 variants: identical per-element semantics with 8-wide lanes.
// Same contracts as the AVX2 versions (len(dst) multiple of 4).

// func vaxpy4asm512(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)
TEXT ·vaxpy4asm512(SB), NOSPLIT, $0-152
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R9
	MOVQ r0_base+24(FP), SI
	MOVQ r1_base+48(FP), DX
	MOVQ r2_base+72(FP), CX
	MOVQ r3_base+96(FP), R8
	VBROADCASTSD x0+120(FP), Z0
	VBROADCASTSD x1+128(FP), Z1
	VBROADCASTSD x2+136(FP), Z2
	VBROADCASTSD x3+144(FP), Z3
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-32, BX

loop32z:
	CMPQ AX, BX
	JGE  tail8z
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD 64(DI)(AX*8), Z5
	VMOVUPD 128(DI)(AX*8), Z6
	VMOVUPD 192(DI)(AX*8), Z7

	VMOVUPD (SI)(AX*8), Z8
	VMOVUPD 64(SI)(AX*8), Z9
	VMOVUPD 128(SI)(AX*8), Z10
	VMOVUPD 192(SI)(AX*8), Z11
	VMULPD  Z0, Z8, Z8
	VMULPD  Z0, Z9, Z9
	VMULPD  Z0, Z10, Z10
	VMULPD  Z0, Z11, Z11
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5
	VADDPD  Z10, Z6, Z6
	VADDPD  Z11, Z7, Z7

	VMOVUPD (DX)(AX*8), Z8
	VMOVUPD 64(DX)(AX*8), Z9
	VMOVUPD 128(DX)(AX*8), Z10
	VMOVUPD 192(DX)(AX*8), Z11
	VMULPD  Z1, Z8, Z8
	VMULPD  Z1, Z9, Z9
	VMULPD  Z1, Z10, Z10
	VMULPD  Z1, Z11, Z11
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5
	VADDPD  Z10, Z6, Z6
	VADDPD  Z11, Z7, Z7

	VMOVUPD (CX)(AX*8), Z8
	VMOVUPD 64(CX)(AX*8), Z9
	VMOVUPD 128(CX)(AX*8), Z10
	VMOVUPD 192(CX)(AX*8), Z11
	VMULPD  Z2, Z8, Z8
	VMULPD  Z2, Z9, Z9
	VMULPD  Z2, Z10, Z10
	VMULPD  Z2, Z11, Z11
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5
	VADDPD  Z10, Z6, Z6
	VADDPD  Z11, Z7, Z7

	VMOVUPD (R8)(AX*8), Z8
	VMOVUPD 64(R8)(AX*8), Z9
	VMOVUPD 128(R8)(AX*8), Z10
	VMOVUPD 192(R8)(AX*8), Z11
	VMULPD  Z3, Z8, Z8
	VMULPD  Z3, Z9, Z9
	VMULPD  Z3, Z10, Z10
	VMULPD  Z3, Z11, Z11
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5
	VADDPD  Z10, Z6, Z6
	VADDPD  Z11, Z7, Z7

	VMOVUPD Z4, (DI)(AX*8)
	VMOVUPD Z5, 64(DI)(AX*8)
	VMOVUPD Z6, 128(DI)(AX*8)
	VMOVUPD Z7, 192(DI)(AX*8)
	ADDQ    $32, AX
	JMP     loop32z

tail8z:
	MOVQ R9, BX
	ANDQ $-8, BX

tail8zloop:
	CMPQ AX, BX
	JGE  tail4z
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD (SI)(AX*8), Z8
	VMULPD  Z0, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (DX)(AX*8), Z8
	VMULPD  Z1, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (CX)(AX*8), Z8
	VMULPD  Z2, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R8)(AX*8), Z8
	VMULPD  Z3, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD Z4, (DI)(AX*8)
	ADDQ    $8, AX
	JMP     tail8zloop

tail4z:
	CMPQ AX, R9
	JGE  done512
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y8
	VMULPD  Y0, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (DX)(AX*8), Y8
	VMULPD  Y1, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (CX)(AX*8), Y8
	VMULPD  Y2, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R8)(AX*8), Y8
	VMULPD  Y3, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     tail4z

done512:
	VZEROUPPER
	RET

// func vaxpy8asm512(dst, r0, r1, r2, r3, r4, r5, r6, r7 []float64, x0, x1, x2, x3, x4, x5, x6, x7 float64)
// Eight fused row contributions per pass: per element the adds arrive in
// strict row order r0..r7 — the same sequence two chained vaxpy4 calls
// produce — so results are bitwise identical while dst is loaded and stored
// once instead of twice and the dispatch loop runs half as often.
// len(dst) must be a multiple of 4; r* must be at least as long as dst.
TEXT ·vaxpy8asm512(SB), NOSPLIT, $0-280
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R9
	MOVQ r0_base+24(FP), SI
	MOVQ r1_base+48(FP), DX
	MOVQ r2_base+72(FP), CX
	MOVQ r3_base+96(FP), R8
	MOVQ r4_base+120(FP), R10
	MOVQ r5_base+144(FP), R11
	MOVQ r6_base+168(FP), R12
	MOVQ r7_base+192(FP), R13
	VBROADCASTSD x0+216(FP), Z0
	VBROADCASTSD x1+224(FP), Z1
	VBROADCASTSD x2+232(FP), Z2
	VBROADCASTSD x3+240(FP), Z3
	VBROADCASTSD x4+248(FP), Z16
	VBROADCASTSD x5+256(FP), Z17
	VBROADCASTSD x6+264(FP), Z18
	VBROADCASTSD x7+272(FP), Z19
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-16, BX

loop16z8:
	CMPQ AX, BX
	JGE  tail8z8
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD 64(DI)(AX*8), Z5

	VMOVUPD (SI)(AX*8), Z8
	VMOVUPD 64(SI)(AX*8), Z9
	VMULPD  Z0, Z8, Z8
	VMULPD  Z0, Z9, Z9
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5

	VMOVUPD (DX)(AX*8), Z10
	VMOVUPD 64(DX)(AX*8), Z11
	VMULPD  Z1, Z10, Z10
	VMULPD  Z1, Z11, Z11
	VADDPD  Z10, Z4, Z4
	VADDPD  Z11, Z5, Z5

	VMOVUPD (CX)(AX*8), Z8
	VMOVUPD 64(CX)(AX*8), Z9
	VMULPD  Z2, Z8, Z8
	VMULPD  Z2, Z9, Z9
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5

	VMOVUPD (R8)(AX*8), Z10
	VMOVUPD 64(R8)(AX*8), Z11
	VMULPD  Z3, Z10, Z10
	VMULPD  Z3, Z11, Z11
	VADDPD  Z10, Z4, Z4
	VADDPD  Z11, Z5, Z5

	VMOVUPD (R10)(AX*8), Z8
	VMOVUPD 64(R10)(AX*8), Z9
	VMULPD  Z16, Z8, Z8
	VMULPD  Z16, Z9, Z9
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5

	VMOVUPD (R11)(AX*8), Z10
	VMOVUPD 64(R11)(AX*8), Z11
	VMULPD  Z17, Z10, Z10
	VMULPD  Z17, Z11, Z11
	VADDPD  Z10, Z4, Z4
	VADDPD  Z11, Z5, Z5

	VMOVUPD (R12)(AX*8), Z8
	VMOVUPD 64(R12)(AX*8), Z9
	VMULPD  Z18, Z8, Z8
	VMULPD  Z18, Z9, Z9
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5

	VMOVUPD (R13)(AX*8), Z10
	VMOVUPD 64(R13)(AX*8), Z11
	VMULPD  Z19, Z10, Z10
	VMULPD  Z19, Z11, Z11
	VADDPD  Z10, Z4, Z4
	VADDPD  Z11, Z5, Z5

	VMOVUPD Z4, (DI)(AX*8)
	VMOVUPD Z5, 64(DI)(AX*8)
	ADDQ    $16, AX
	JMP     loop16z8

tail8z8:
	MOVQ R9, BX
	ANDQ $-8, BX

tail8z8loop:
	CMPQ AX, BX
	JGE  tail4z8
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD (SI)(AX*8), Z8
	VMULPD  Z0, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (DX)(AX*8), Z8
	VMULPD  Z1, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (CX)(AX*8), Z8
	VMULPD  Z2, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R8)(AX*8), Z8
	VMULPD  Z3, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R10)(AX*8), Z8
	VMULPD  Z16, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R11)(AX*8), Z8
	VMULPD  Z17, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R12)(AX*8), Z8
	VMULPD  Z18, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD (R13)(AX*8), Z8
	VMULPD  Z19, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD Z4, (DI)(AX*8)
	ADDQ    $8, AX
	JMP     tail8z8loop

tail4z8:
	CMPQ AX, R9
	JGE  done512v8
	// Rebroadcast the high coefficients into VEX-addressable registers:
	// EVEX-encoded YMM ops on Z16+ would need AVX-512VL, which the dispatch
	// does not require.
	VBROADCASTSD x4+248(FP), Y5
	VBROADCASTSD x5+256(FP), Y6
	VBROADCASTSD x6+264(FP), Y7
	VBROADCASTSD x7+272(FP), Y9
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y8
	VMULPD  Y0, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (DX)(AX*8), Y8
	VMULPD  Y1, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (CX)(AX*8), Y8
	VMULPD  Y2, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R8)(AX*8), Y8
	VMULPD  Y3, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R10)(AX*8), Y8
	VMULPD  Y5, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R11)(AX*8), Y8
	VMULPD  Y6, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R12)(AX*8), Y8
	VMULPD  Y7, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD (R13)(AX*8), Y8
	VMULPD  Y9, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     tail4z8

done512v8:
	VZEROUPPER
	RET

// func vaxpy1asm512(dst, r []float64, x float64)
TEXT ·vaxpy1asm512(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), R9
	MOVQ r_base+24(FP), SI
	VBROADCASTSD x+48(FP), Z0
	XORQ AX, AX
	MOVQ R9, BX
	ANDQ $-32, BX

loop32z1:
	CMPQ AX, BX
	JGE  tail8z1
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD 64(DI)(AX*8), Z5
	VMOVUPD 128(DI)(AX*8), Z6
	VMOVUPD 192(DI)(AX*8), Z7
	VMOVUPD (SI)(AX*8), Z8
	VMOVUPD 64(SI)(AX*8), Z9
	VMOVUPD 128(SI)(AX*8), Z10
	VMOVUPD 192(SI)(AX*8), Z11
	VMULPD  Z0, Z8, Z8
	VMULPD  Z0, Z9, Z9
	VMULPD  Z0, Z10, Z10
	VMULPD  Z0, Z11, Z11
	VADDPD  Z8, Z4, Z4
	VADDPD  Z9, Z5, Z5
	VADDPD  Z10, Z6, Z6
	VADDPD  Z11, Z7, Z7
	VMOVUPD Z4, (DI)(AX*8)
	VMOVUPD Z5, 64(DI)(AX*8)
	VMOVUPD Z6, 128(DI)(AX*8)
	VMOVUPD Z7, 192(DI)(AX*8)
	ADDQ    $32, AX
	JMP     loop32z1

tail8z1:
	MOVQ R9, BX
	ANDQ $-8, BX

tail8z1loop:
	CMPQ AX, BX
	JGE  tail4z1
	VMOVUPD (DI)(AX*8), Z4
	VMOVUPD (SI)(AX*8), Z8
	VMULPD  Z0, Z8, Z8
	VADDPD  Z8, Z4, Z4
	VMOVUPD Z4, (DI)(AX*8)
	ADDQ    $8, AX
	JMP     tail8z1loop

tail4z1:
	CMPQ AX, R9
	JGE  done512v1
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y8
	VMULPD  Y0, Y8, Y8
	VADDPD  Y8, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     tail4z1

done512v1:
	VZEROUPPER
	RET
