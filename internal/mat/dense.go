package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewDense negative dims %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) Vec { return Vec(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// CopyFrom copies src into m. It panics on shape mismatch.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d != %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// MulVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols. dst may not alias x.
func (m *Dense) MulVec(x, dst Vec) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	gemvRows4(m.Data, 0, m.Rows, m.Cols, x, dst)
}

// MulVecAdd computes dst += m * x.
func (m *Dense) MulVecAdd(x, dst Vec) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecAdd shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	gemvAddRows4(m.Data, m.Rows, m.Cols, x, dst)
}

// MulVecT computes dst = mᵀ * x. dst must have length m.Cols and x length
// m.Rows. dst may not alias x.
func (m *Dense) MulVecT(x, dst Vec) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	gemvTAdd(m.Data, m.Rows, m.Cols, x, dst)
}

// MulVecTAdd computes dst += mᵀ * x.
func (m *Dense) MulVecTAdd(x, dst Vec) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTAdd shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	gemvTAdd(m.Data, m.Rows, m.Cols, x, dst)
}

// AddOuter performs the rank-1 update m += alpha * a * bᵀ, where a has
// length m.Rows and b has length m.Cols.
func (m *Dense) AddOuter(alpha float64, a, b Vec) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuter shape mismatch m=%dx%d len(a)=%d len(b)=%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		addScaled(row, ai, b)
	}
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// Equal reports whether m and n have identical shape and all elements are
// within tol of each other.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, x := range m.Data {
		if math.Abs(x-n.Data[i]) > tol {
			return false
		}
	}
	return true
}
