//go:build amd64

package mat

// AVX2 dispatch for the fused axpy kernels. useVectorKernels is decided
// once at init; when false (no AVX2, or the OS does not save YMM state)
// everything falls back to the portable Go tiles, which compute the exact
// same bits.

var useVectorKernels = detectAVX2()
var useAVX512 = useVectorKernels && detectAVX512()

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func detectAVX512() bool {
	// Needs AVX512F plus OS support for opmask and ZMM state (XCR0 bits
	// 5-7 alongside SSE/AVX).
	xcr0, _ := xgetbv0()
	if xcr0&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx512f = 1 << 16
	return ebx7&avx512f != 0
}

func vaxpy4asm(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)
func vaxpy1asm(dst, r []float64, x float64)
func vaxpy4asm512(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64)
func vaxpy8asm512(dst, r0, r1, r2, r3, r4, r5, r6, r7 []float64, x0, x1, x2, x3, x4, x5, x6, x7 float64)
func vaxpy1asm512(dst, r []float64, x float64)
func fusedAdamAsm(val, grad, m, v []float64, b1, omb1, b2, omb2, c1, c2, lr, eps float64)

// FusedAdam applies one elementwise Adam update
//
//	m = b1*m + (1-b1)*g
//	v = b2*v + (1-b2)*g*g
//	val -= lr*(m/c1) / (sqrt(v/c2) + eps)
//
// across the whole tensor, bitwise identical to the scalar loop (every
// SIMD lane op is correctly rounded).
func FusedAdam(val, grad, m, v Vec, b1, b2, c1, c2, lr, eps float64) {
	n := len(val)
	grad = grad[:n]
	m = m[:n]
	v = v[:n]
	start := 0
	if useVectorKernels && n >= 4 {
		n4 := n &^ 3
		fusedAdamAsm(val[:n4], grad, m, v, b1, 1-b1, b2, 1-b2, c1, c2, lr, eps)
		start = n4
	}
	fusedAdamScalar(val, grad, m, v, start, b1, b2, c1, c2, lr, eps)
}

// vaxpy4Tile is the pre-truncated fast path: len(dst) must already be a
// (possibly zero) multiple of 4 and r* at least as long.
func vaxpy4Tile(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX512 {
		vaxpy4asm512(dst, r0, r1, r2, r3, x0, x1, x2, x3)
	} else {
		vaxpy4asm(dst, r0, r1, r2, r3, x0, x1, x2, x3)
	}
}

// vaxpy8Tile fuses eight row contributions into one pass over dst (loaded
// and stored once). Per element the adds arrive in ascending row order, so
// the result is bitwise identical to two chained vaxpy4Tile calls — which is
// exactly the fallback when AVX-512 is unavailable. len(dst) must already be
// a (possibly zero) multiple of 4 and r* at least as long.
func vaxpy8Tile(dst, r0, r1, r2, r3, r4, r5, r6, r7 []float64,
	x0, x1, x2, x3, x4, x5, x6, x7 float64) {
	if len(dst) == 0 {
		return
	}
	if useAVX512 {
		vaxpy8asm512(dst, r0, r1, r2, r3, r4, r5, r6, r7, x0, x1, x2, x3, x4, x5, x6, x7)
		return
	}
	vaxpy4Tile(dst, r0, r1, r2, r3, x0, x1, x2, x3)
	vaxpy4Tile(dst, r4, r5, r6, r7, x4, x5, x6, x7)
}

// vaxpy4 computes dst[j] += r0[j]*x0; += r1[j]*x1; += r2[j]*x2; += r3[j]*x3
// for every j, in exactly that per-element order.
func vaxpy4(dst, r0, r1, r2, r3 []float64, x0, x1, x2, x3 float64) {
	n4 := len(dst) &^ 3
	if n4 > 0 {
		if useAVX512 {
			vaxpy4asm512(dst[:n4], r0, r1, r2, r3, x0, x1, x2, x3)
		} else {
			vaxpy4asm(dst[:n4], r0, r1, r2, r3, x0, x1, x2, x3)
		}
	}
	for j := n4; j < len(dst); j++ {
		s := dst[j]
		s += r0[j] * x0
		s += r1[j] * x1
		s += r2[j] * x2
		s += r3[j] * x3
		dst[j] = s
	}
}

// vaxpy1 computes dst[j] += r[j]*x for every j.
func vaxpy1(dst, r []float64, x float64) {
	n4 := len(dst) &^ 3
	if n4 > 0 {
		if useAVX512 {
			vaxpy1asm512(dst[:n4], r, x)
		} else {
			vaxpy1asm(dst[:n4], r, x)
		}
	}
	for j := n4; j < len(dst); j++ {
		dst[j] += r[j] * x
	}
}
