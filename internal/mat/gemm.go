package mat

import (
	"fmt"
	"sync"
)

// Batched matrix-matrix products. These are the compute core behind the
// minibatch neural-network paths: one GEMM replaces a loop of GEMV calls,
// amortizing weight-matrix traffic across the whole batch while producing
// bitwise-identical results row for row (see kernels.go for the ordering
// contract).

// MulMatT computes c = a * bᵀ, where a is M×K, b is N×K, and c is M×N.
// Row i of c equals b.MulVec(a.Row(i), ...) exactly: this is the layout used
// by a batched dense-layer forward pass Y = X·Wᵀ, where both operands are
// walked row-major. c may not alias a or b.
func MulMatT(a, b, c *Dense) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulMatT shape mismatch a=%dx%d b=%dx%d c=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	// Large-batch fast path: transpose b once and accumulate each output row
	// as a sequence of vectorized axpys over k. For every output element the
	// contributions still arrive in ascending k — the exact order of the dot
	// products below — so both paths produce identical bits; the transposed
	// form just exposes contiguous vectors to the SIMD kernel. (A zero
	// coefficient is skipped; adding its ±0 product is bitwise equivalent
	// for any +0-initialized accumulation, so the shortcut is free.)
	if useVectorKernels && a.Rows >= 4 && b.Rows >= 8 && a.Cols >= 2 {
		sb := getTransposed(b)
		for i := 0; i < a.Rows; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
			gemvTAdd(sb.data, b.Cols, b.Rows, a.Row(i), crow)
		}
		gemmScratch.Put(sb)
		return
	}
	for i := 0; i < a.Rows; i++ {
		gemvRows4(b.Data, 0, b.Rows, b.Cols, a.Row(i), c.Row(i))
	}
}

// BTUsable reports whether a cached transpose of an outRows×K matrix would
// actually be read by MulMatTWithBT/MulVecWithBT — callers skip building
// and maintaining the cache otherwise (no SIMD kernels, or the output is
// too narrow for them).
func BTUsable(outRows int) bool { return useVectorKernels && outRows >= 8 }

// MulMatTWithBT is MulMatT with a caller-maintained transpose bt of b
// (bt = bᵀ, shaped K×N). With a valid bt the axpy fast path applies at any
// batch size — the caller amortizes the transpose across many calls (e.g. a
// layer caching Wᵀ between weight updates). bt may be nil, which always
// takes the dot-direction path. Results are bitwise identical to MulMatT.
func MulMatTWithBT(a, b, bt, c *Dense) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows ||
		(bt != nil && (bt.Rows != b.Cols || bt.Cols != b.Rows)) {
		panic(fmt.Sprintf("mat: MulMatTWithBT shape mismatch a=%dx%d b=%dx%d c=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if bt != nil && useVectorKernels && b.Rows >= 8 {
		for i := 0; i < a.Rows; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
			gemvTAdd(bt.Data, bt.Rows, bt.Cols, a.Row(i), crow)
		}
		return
	}
	for i := 0; i < a.Rows; i++ {
		gemvRows4(b.Data, 0, b.Rows, b.Cols, a.Row(i), c.Row(i))
	}
}

// TransposeInto writes srcᵀ into dst (shaped src.Cols × src.Rows).
func TransposeInto(src, dst *Dense) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("mat: TransposeInto shape mismatch src=%dx%d dst=%dx%d",
			src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	rows, cols := src.Rows, src.Cols
	for i := 0; i < rows; i++ {
		row := src.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			dst.Data[j*rows+i] = v
		}
	}
}

// MulVecWithBT computes dst = b*x using the cached transpose bt of b when
// the vector kernels are enabled (bt may be nil to force the plain GEMV
// path); bitwise identical to b.MulVec(x, dst).
func MulVecWithBT(b, bt *Dense, x, dst Vec) {
	if len(x) != b.Cols || len(dst) != b.Rows {
		panic(fmt.Sprintf("mat: MulVecWithBT shape mismatch m=%dx%d len(x)=%d len(dst)=%d",
			b.Rows, b.Cols, len(x), len(dst)))
	}
	if bt != nil && useVectorKernels && b.Rows >= 8 {
		for j := range dst {
			dst[j] = 0
		}
		gemvTAdd(bt.Data, bt.Rows, bt.Cols, x, dst)
		return
	}
	gemvRows4(b.Data, 0, b.Rows, b.Cols, x, dst)
}

// gemmScratch recycles transpose panels across GEMM calls (safe for
// concurrent use; each call owns its holder between Get and Put, and the
// holder is a stable pointer so the round trip does not allocate).
var gemmScratch sync.Pool

type scratchBuf struct{ data []float64 }

func getTransposed(b *Dense) *scratchBuf {
	n := b.Rows * b.Cols
	sb, _ := gemmScratch.Get().(*scratchBuf)
	if sb == nil {
		sb = &scratchBuf{}
	}
	if cap(sb.data) < n {
		sb.data = make([]float64, n)
	} else {
		sb.data = sb.data[:n]
	}
	// sb.data holds bᵀ, laid out b.Cols x b.Rows.
	rows, cols := b.Rows, b.Cols
	bt := sb.data
	for i := 0; i < rows; i++ {
		row := b.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			bt[j*rows+i] = v
		}
	}
	return sb
}

// MulMat computes c = a * b, where a is M×K, b is K×N, and c is M×N. Row i
// of c equals b.MulVecT(a.Row(i), ...) exactly, including the skip-zero
// shortcut: this is the layout used by a batched backward pass dX = dY·W.
// c may not alias a or b.
func MulMat(a, b, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulMat shape mismatch a=%dx%d b=%dx%d c=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		for j := range crow {
			crow[j] = 0
		}
		gemvTAdd(b.Data, b.Rows, b.Cols, a.Row(i), crow)
	}
}

// AddMulTMat performs the rank-K update c += alpha * aᵀ * b, where a is
// B×M, b is B×N, and c is M×N. The batch dimension B is the outermost loop,
// so for every element of c the per-sample contributions accumulate in
// ascending sample order — exactly the sequence a loop of AddOuter(alpha,
// a.Row(s), b.Row(s)) calls would produce, including the skip-zero
// shortcut. This is the batched weight-gradient update dW += dYᵀ·X.
func AddMulTMat(alpha float64, a, b, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: AddMulTMat shape mismatch a=%dx%d b=%dx%d c=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	s := 0
	for ; s+4 <= a.Rows; s += 4 {
		b0 := b.Row(s)
		b1 := b.Row(s + 1)
		b2 := b.Row(s + 2)
		b3 := b.Row(s + 3)
		for o := 0; o < c.Rows; o++ {
			a0 := alpha * a.At(s, o)
			a1 := alpha * a.At(s+1, o)
			a2 := alpha * a.At(s+2, o)
			a3 := alpha * a.At(s+3, o)
			crow := c.Row(o)
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				// Preserve the scalar path's skip-zero semantics exactly.
				addScaled(crow, a0, b0)
				addScaled(crow, a1, b1)
				addScaled(crow, a2, b2)
				addScaled(crow, a3, b3)
				continue
			}
			if useVectorKernels && len(crow) >= 8 {
				vaxpy4(crow, b0, b1, b2, b3, a0, a1, a2, a3)
				continue
			}
			for j := range crow {
				v := crow[j]
				v += a0 * b0[j]
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				crow[j] = v
			}
		}
	}
	for ; s < a.Rows; s++ {
		c.AddOuter(alpha, a.Row(s), b.Row(s))
	}
}

// AddScaled computes y += alpha*x, skipping entirely when alpha is zero
// (mirrors AddOuter's per-row shortcut). With alpha == 1 the result is
// bitwise identical to y.Add(x), since multiplying by 1.0 is exact.
func AddScaled(y Vec, alpha float64, x Vec) { addScaled(y, alpha, x) }

func addScaled(y Vec, alpha float64, x Vec) {
	if alpha == 0 {
		return
	}
	x = x[:len(y)]
	if useVectorKernels && len(y) >= 8 {
		vaxpy1(y, x, alpha)
		return
	}
	for j := range y {
		y[j] += alpha * x[j]
	}
}
