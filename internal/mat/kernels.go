package mat

import "math"

// Register-tiled inner kernels shared by the GEMV and GEMM entry points.
//
// Every kernel preserves the per-output-element accumulation order of the
// straightforward scalar loops: a tile processes several independent outputs
// (or several in-order contributions to one output) with one accumulator per
// output, and contributions to any single element are always added in the
// same sequence the scalar path would use. Batched results are therefore
// bitwise identical to the per-vector results, which is what lets the
// experiment metrics stay exactly reproducible while the hot loops get the
// instruction-level parallelism and memory reuse of a 4-way tile.
//
// The row slices are re-sliced to the vector length before each inner loop;
// combined with `range` indexing this lets the compiler prove every access
// in bounds and drop the per-element checks (verified with
// -d=ssa/check_bce), which matters as much as the tiling itself.

// gemvRows4 computes dst[i0..i0+rows) = A[i0..i0+rows) * x for a row-major
// a with the given stride, processing rows in tiles of four so x is loaded
// once per tile. rows may be any non-negative count.
func gemvRows4(a []float64, i0, rows, cols int, x, dst []float64) {
	n := len(x)
	i := i0
	for ; i+4 <= i0+rows; i += 4 {
		r0 := a[i*cols : i*cols+cols][:n]
		r1 := a[(i+1)*cols : (i+1)*cols+cols][:n]
		r2 := a[(i+2)*cols : (i+2)*cols+cols][:n]
		r3 := a[(i+3)*cols : (i+3)*cols+cols][:n]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < i0+rows; i++ {
		row := a[i*cols : i*cols+cols][:n]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// gemvAddRows4 is gemvRows4 with dst[i] += instead of dst[i] =.
func gemvAddRows4(a []float64, rows, cols int, x, dst []float64) {
	n := len(x)
	i := 0
	for ; i+4 <= rows; i += 4 {
		r0 := a[i*cols : i*cols+cols][:n]
		r1 := a[(i+1)*cols : (i+1)*cols+cols][:n]
		r2 := a[(i+2)*cols : (i+2)*cols+cols][:n]
		r3 := a[(i+3)*cols : (i+3)*cols+cols][:n]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i] += s0
		dst[i+1] += s1
		dst[i+2] += s2
		dst[i+3] += s3
	}
	for ; i < rows; i++ {
		row := a[i*cols : i*cols+cols][:n]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] += s
	}
}

// axpyRow accumulates dst += xi * a[row] with the seed's skip-zero shortcut.
func axpyRow(a []float64, row, cols int, xi float64, dst []float64) {
	if xi == 0 {
		return
	}
	r := a[row*cols : row*cols+cols][:len(dst)]
	if useVectorKernels && len(dst) >= 8 {
		vaxpy1(dst, r, xi)
		return
	}
	for j := range dst {
		dst[j] += r[j] * xi
	}
}

// fusedAdamScalar is the portable Adam update for elements [start, len),
// with the exact expression shapes of the historical optimizer loop.
func fusedAdamScalar(val, grad, m, v Vec, start int, b1, b2, c1, c2, lr, eps float64) {
	for j := start; j < len(val); j++ {
		g := grad[j]
		m[j] = b1*m[j] + (1-b1)*g
		v[j] = b2*v[j] + (1-b2)*g*g
		mHat := m[j] / c1
		vHat := v[j] / c2
		val[j] -= lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

// gemvTAdd computes dst += A^T * x (dst length cols, x length rows) — the
// shared entry point of every axpy-direction GEMV/GEMM loop. Zero
// coefficients are skipped (exactly as the scalar reference skips them) and
// the surviving rows are compacted into fused 8-row passes, so zero-rich
// inputs — idle servers produce exactly-0.0 state features — run through the
// wide kernel instead of degrading to one axpy per row. Per output element
// the non-zero contributions still arrive in strictly ascending row order,
// the exact add sequence of gemvTAddRows4, so every output bit matches.
func gemvTAdd(a []float64, rows, cols int, x, dst []float64) {
	n := len(dst)
	if !useVectorKernels || n < 8 {
		gemvTAddRows4(a, rows, cols, x, dst)
		return
	}
	n4 := n &^ 3
	vdst := dst[:n4]
	var pr [8][]float64
	var pc [8]float64
	np := 0
	for i := 0; i < rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		pr[np] = a[i*cols : i*cols+cols][:n]
		pc[np] = xi
		np++
		if np < 8 {
			continue
		}
		np = 0
		vaxpy8Tile(vdst, pr[0], pr[1], pr[2], pr[3], pr[4], pr[5], pr[6], pr[7],
			pc[0], pc[1], pc[2], pc[3], pc[4], pc[5], pc[6], pc[7])
		for j := n4; j < n; j++ {
			s := dst[j]
			s += pr[0][j] * pc[0]
			s += pr[1][j] * pc[1]
			s += pr[2][j] * pc[2]
			s += pr[3][j] * pc[3]
			s += pr[4][j] * pc[4]
			s += pr[5][j] * pc[5]
			s += pr[6][j] * pc[6]
			s += pr[7][j] * pc[7]
			dst[j] = s
		}
	}
	k := 0
	if np >= 4 {
		vaxpy4Tile(vdst, pr[0], pr[1], pr[2], pr[3], pc[0], pc[1], pc[2], pc[3])
		for j := n4; j < n; j++ {
			s := dst[j]
			s += pr[0][j] * pc[0]
			s += pr[1][j] * pc[1]
			s += pr[2][j] * pc[2]
			s += pr[3][j] * pc[3]
			dst[j] = s
		}
		k = 4
	}
	for ; k < np; k++ {
		vaxpy1(dst, pr[k], pc[k])
	}
}

// gemvTAddRows4 computes dst += A^T * x (dst length cols, x length rows),
// tiling four matrix rows per pass. Per element dst[j] the contributions
// arrive in ascending row order, exactly as the scalar loop adds them; a tile
// containing a zero coefficient falls back to the sequential per-row path so
// the skip-zero semantics of the scalar kernel are preserved verbatim.
func gemvTAddRows4(a []float64, rows, cols int, x, dst []float64) {
	n := len(dst)
	i := 0
	if useVectorKernels && n >= 8 {
		// Hoist the SIMD dispatch out of the tile loop: one n4 computation
		// and one dst reslice serve every tile.
		n4 := n &^ 3
		vdst := dst[:n4]
		for ; i+4 <= rows; i += 4 {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
				axpyRow(a, i, cols, x0, dst)
				axpyRow(a, i+1, cols, x1, dst)
				axpyRow(a, i+2, cols, x2, dst)
				axpyRow(a, i+3, cols, x3, dst)
				continue
			}
			r0 := a[i*cols : i*cols+cols][:n]
			r1 := a[(i+1)*cols : (i+1)*cols+cols][:n]
			r2 := a[(i+2)*cols : (i+2)*cols+cols][:n]
			r3 := a[(i+3)*cols : (i+3)*cols+cols][:n]
			vaxpy4Tile(vdst, r0, r1, r2, r3, x0, x1, x2, x3)
			for j := n4; j < n; j++ {
				s := dst[j]
				s += r0[j] * x0
				s += r1[j] * x1
				s += r2[j] * x2
				s += r3[j] * x3
				dst[j] = s
			}
		}
		for ; i < rows; i++ {
			axpyRow(a, i, cols, x[i], dst)
		}
		return
	}
	for ; i+4 <= rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			axpyRow(a, i, cols, x0, dst)
			axpyRow(a, i+1, cols, x1, dst)
			axpyRow(a, i+2, cols, x2, dst)
			axpyRow(a, i+3, cols, x3, dst)
			continue
		}
		r0 := a[i*cols : i*cols+cols][:n]
		r1 := a[(i+1)*cols : (i+1)*cols+cols][:n]
		r2 := a[(i+2)*cols : (i+2)*cols+cols][:n]
		r3 := a[(i+3)*cols : (i+3)*cols+cols][:n]
		for j := range dst {
			s := dst[j]
			s += r0[j] * x0
			s += r1[j] * x1
			s += r2[j] * x2
			s += r3[j] * x3
			dst[j] = s
		}
	}
	for ; i < rows; i++ {
		axpyRow(a, i, cols, x[i], dst)
	}
}
