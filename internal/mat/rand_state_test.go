package mat

import (
	"math/rand"
	"testing"
)

// The counting wrapper must be invisible: every draw sequence has to match
// a bare math/rand generator with the same seed, because the repository's
// golden results pin those exact streams.
func TestRNGMatchesBareMathRand(t *testing.T) {
	g := NewRNG(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		switch i % 6 {
		case 0:
			if a, b := g.Float64(), ref.Float64(); a != b {
				t.Fatalf("Float64 draw %d: %v != %v", i, a, b)
			}
		case 1:
			if a, b := g.Intn(97), ref.Intn(97); a != b {
				t.Fatalf("Intn draw %d: %d != %d", i, a, b)
			}
		case 2:
			if a, b := g.Int63(), ref.Int63(); a != b {
				t.Fatalf("Int63 draw %d: %d != %d", i, a, b)
			}
		case 3:
			if a, b := g.Normal(1, 2), 1+2*ref.NormFloat64(); a != b {
				t.Fatalf("Normal draw %d: %v != %v", i, a, b)
			}
		case 4:
			if a, b := g.Exponential(0.5), ref.ExpFloat64()/0.5; a != b {
				t.Fatalf("Exponential draw %d: %v != %v", i, a, b)
			}
		case 5:
			ap, bp := g.Perm(7), ref.Perm(7)
			for k := range ap {
				if ap[k] != bp[k] {
					t.Fatalf("Perm draw %d: %v != %v", i, ap, bp)
				}
			}
		}
	}
}

// Saving mid-stream and restoring into a fresh generator must continue the
// stream bit for bit, across every sampler (including the variable-draw
// ziggurat samplers).
func TestRNGStateRoundTrip(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1234; i++ {
		g.Normal(0, 1)
		g.Float64()
		g.Exponential(1)
	}
	seed, draws := g.State()
	if seed != 7 {
		t.Fatalf("seed = %d, want 7", seed)
	}

	h := NewRNG(1) // deliberately different construction seed
	h.Restore(seed, draws)
	if s2, d2 := h.State(); s2 != seed || d2 != draws {
		t.Fatalf("restored state (%d,%d) != saved (%d,%d)", s2, d2, seed, draws)
	}
	for i := 0; i < 2000; i++ {
		if a, b := g.Normal(3, 0.5), h.Normal(3, 0.5); a != b {
			t.Fatalf("Normal draw %d after restore: %v != %v", i, a, b)
		}
		if a, b := g.Intn(1000), h.Intn(1000); a != b {
			t.Fatalf("Intn draw %d after restore: %d != %d", i, a, b)
		}
	}
}

// Split children must carry their own (seed, draws) state independent of the
// parent's.
func TestRNGSplitState(t *testing.T) {
	g := NewRNG(99)
	child := g.Split()
	child.Float64()
	child.Float64()
	seed, draws := child.State()

	clone := NewRNG(0)
	clone.Restore(seed, draws)
	for i := 0; i < 100; i++ {
		if a, b := child.Float64(), clone.Float64(); a != b {
			t.Fatalf("split child draw %d: %v != %v", i, a, b)
		}
	}
	if draws == 0 {
		t.Fatal("child draws not counted")
	}
}
