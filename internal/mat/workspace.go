package mat

// Workspace is a bump-allocator arena for scratch vectors and matrices.
// Call Reset at the start of a computation and Take/TakeMat for each scratch
// buffer; after the arena has grown to the high-water mark of the workload,
// every subsequent computation is allocation-free. A Workspace is not safe
// for concurrent use — give each goroutine (each agent, each network) its
// own.
type Workspace struct {
	buf  []float64
	off  int
	mats []Dense
	moff int
}

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles the arena. Buffers handed out before the call must no
// longer be used; their contents will be overwritten by subsequent Takes.
func (w *Workspace) Reset() {
	w.off = 0
	w.moff = 0
}

// Take returns a zeroed scratch vector of length n valid until the next
// Reset.
func (w *Workspace) Take(n int) Vec {
	if w.off+n > len(w.buf) {
		grown := 2*len(w.buf) + n
		// Old buffers stay valid: they keep aliasing the previous backing
		// array, which outlives the swap for as long as callers hold them.
		w.buf = make([]float64, grown)
		w.off = 0
	}
	v := Vec(w.buf[w.off : w.off+n])
	w.off += n
	for i := range v {
		v[i] = 0
	}
	return v
}

// TakeUninit is Take without the zero fill, for buffers every element of
// which the caller overwrites before reading (e.g. GEMV/GEMM destinations).
func (w *Workspace) TakeUninit(n int) Vec {
	if w.off+n > len(w.buf) {
		grown := 2*len(w.buf) + n
		w.buf = make([]float64, grown)
		w.off = 0
	}
	v := Vec(w.buf[w.off : w.off+n])
	w.off += n
	return v
}

// TakeMat returns a zeroed scratch rows×cols matrix valid until the next
// Reset. The matrix header itself comes from the arena, so steady-state use
// performs no heap allocation.
func (w *Workspace) TakeMat(rows, cols int) *Dense {
	m := w.takeMatHeader(rows, cols)
	m.Data = w.Take(rows * cols)
	return m
}

// TakeMatUninit is TakeMat without the zero fill.
func (w *Workspace) TakeMatUninit(rows, cols int) *Dense {
	m := w.takeMatHeader(rows, cols)
	m.Data = w.TakeUninit(rows * cols)
	return m
}

func (w *Workspace) takeMatHeader(rows, cols int) *Dense {
	if w.moff == len(w.mats) {
		w.mats = append(w.mats, Dense{})
	}
	m := &w.mats[w.moff]
	w.moff++
	m.Rows, m.Cols = rows, cols
	return m
}
