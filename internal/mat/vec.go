// Package mat provides the small dense linear-algebra kernels used by the
// neural-network and reinforcement-learning substrates. It is deliberately
// minimal: float64 vectors, row-major dense matrices, and the BLAS-1/2
// operations the paper's networks need (mat-vec, transposed mat-vec, rank-1
// update). Everything is allocation-conscious so the hot training loops can
// reuse buffers.
package mat

import (
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element to s.
func (v Vec) Fill(s float64) {
	for i := range v {
		v[i] = s
	}
}

// Zero sets every element to 0.
func (v Vec) Zero() { v.Fill(0) }

// Scale multiplies every element by s in place.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Add adds b to v element-wise in place. It panics if lengths differ.
func (v Vec) Add(b Vec) {
	if len(v) != len(b) {
		panic(fmt.Sprintf("mat: Add length mismatch %d != %d", len(v), len(b)))
	}
	for i := range v {
		v[i] += b[i]
	}
}

// Sub subtracts b from v element-wise in place. It panics if lengths differ.
func (v Vec) Sub(b Vec) {
	if len(v) != len(b) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d != %d", len(v), len(b)))
	}
	for i := range v {
		v[i] -= b[i]
	}
}

// MulElem multiplies v by b element-wise in place. It panics if lengths
// differ.
func (v Vec) MulElem(b Vec) {
	if len(v) != len(b) {
		panic(fmt.Sprintf("mat: MulElem length mismatch %d != %d", len(v), len(b)))
	}
	for i := range v {
		v[i] *= b[i]
	}
}

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
func Axpy(alpha float64, x, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. It panics on an empty
// vector.
func (v Vec) Max() (idx int, val float64) {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	idx, val = 0, v[0]
	for i, x := range v {
		if x > val {
			idx, val = i, x
		}
	}
	return idx, val
}

// Min returns the minimum element and its index. It panics on an empty
// vector.
func (v Vec) Min() (idx int, val float64) {
	if len(v) == 0 {
		panic("mat: Min of empty vector")
	}
	idx, val = 0, v[0]
	for i, x := range v {
		if x < val {
			idx, val = i, x
		}
	}
	return idx, val
}

// CopyFrom copies src into v. It panics if lengths differ.
func (v Vec) CopyFrom(src Vec) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("mat: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Concat returns a new vector that is the concatenation of the inputs.
func Concat(vs ...Vec) Vec {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vec, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Clamp limits every element of v to [lo, hi] in place.
func (v Vec) Clamp(lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// HasNaN reports whether any element is NaN or infinite.
func (v Vec) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
