package mat

import (
	"math"
	"testing"
)

// naiveMulVec is the pre-tiling scalar reference for dst = m*x.
func naiveMulVec(m *Dense, x, dst Vec) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// naiveMulVecT is the pre-tiling scalar reference for dst = mᵀ*x, including
// the skip-zero shortcut.
func naiveMulVecT(m *Dense, x, dst Vec) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// testShapes covers edge shapes (1×N, N×1, tile remainders) plus bulk sizes.
var testShapes = []struct{ r, c int }{
	{1, 1}, {1, 7}, {7, 1}, {2, 3}, {3, 2}, {4, 4}, {5, 5},
	{8, 3}, {3, 8}, {13, 17}, {17, 13}, {32, 64}, {64, 32}, {30, 103},
}

func randDense(r, c int, rng *RNG) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Normal(0, 1)
	}
	return m
}

func randVec(n int, rng *RNG) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.Normal(0, 1)
	}
	return v
}

// sprinkleZeros forces exact zeros so the skip-zero fallback paths execute.
func sprinkleZeros(v Vec, rng *RNG) {
	for i := range v {
		if rng.Float64() < 0.3 {
			v[i] = 0
		}
	}
}

func maxAbsDiff(a, b Vec) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestMulVecMatchesScalarReference(t *testing.T) {
	rng := NewRNG(1)
	for _, sh := range testShapes {
		m := randDense(sh.r, sh.c, rng)
		x := randVec(sh.c, rng)
		got := NewVec(sh.r)
		want := NewVec(sh.r)
		m.MulVec(x, got)
		naiveMulVec(m, x, want)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Errorf("%dx%d: MulVec diverges from scalar reference by %g", sh.r, sh.c, d)
		}
		gotAdd := randVec(sh.r, rng)
		wantAdd := gotAdd.Clone()
		m.MulVecAdd(x, gotAdd)
		tmp := NewVec(sh.r)
		naiveMulVec(m, x, tmp)
		for i := range wantAdd {
			wantAdd[i] += tmp[i]
		}
		if d := maxAbsDiff(gotAdd, wantAdd); d != 0 {
			t.Errorf("%dx%d: MulVecAdd diverges by %g", sh.r, sh.c, d)
		}
	}
}

func TestMulVecTMatchesScalarReference(t *testing.T) {
	rng := NewRNG(2)
	for _, sh := range testShapes {
		m := randDense(sh.r, sh.c, rng)
		x := randVec(sh.r, rng)
		sprinkleZeros(x, rng)
		got := NewVec(sh.c)
		want := NewVec(sh.c)
		m.MulVecT(x, got)
		naiveMulVecT(m, x, want)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Errorf("%dx%d: MulVecT diverges from scalar reference by %g", sh.r, sh.c, d)
		}
	}
}

func TestMulMatTMatchesPerRowGEMV(t *testing.T) {
	rng := NewRNG(3)
	for _, sh := range testShapes {
		for _, batch := range []int{1, 2, 5, 32} {
			a := randDense(batch, sh.c, rng)
			b := randDense(sh.r, sh.c, rng)
			c := NewDense(batch, sh.r)
			MulMatT(a, b, c)
			want := NewVec(sh.r)
			for i := 0; i < batch; i++ {
				b.MulVec(a.Row(i), want)
				if d := maxAbsDiff(c.Row(i), want); d != 0 {
					t.Fatalf("batch=%d shape=%dx%d row %d: MulMatT diverges by %g",
						batch, sh.r, sh.c, i, d)
				}
			}
		}
	}
}

func TestMulMatMatchesPerRowGEMVT(t *testing.T) {
	rng := NewRNG(4)
	for _, sh := range testShapes {
		for _, batch := range []int{1, 2, 5, 32} {
			a := randDense(batch, sh.r, rng)
			sprinkleZeros(a.Data, rng)
			b := randDense(sh.r, sh.c, rng)
			c := NewDense(batch, sh.c)
			MulMat(a, b, c)
			want := NewVec(sh.c)
			for i := 0; i < batch; i++ {
				b.MulVecT(a.Row(i), want)
				if d := maxAbsDiff(c.Row(i), want); d != 0 {
					t.Fatalf("batch=%d shape=%dx%d row %d: MulMat diverges by %g",
						batch, sh.r, sh.c, i, d)
				}
			}
		}
	}
}

func TestAddMulTMatMatchesSequentialAddOuter(t *testing.T) {
	rng := NewRNG(5)
	for _, sh := range testShapes {
		for _, batch := range []int{1, 3, 4, 7, 32} {
			a := randDense(batch, sh.r, rng)
			sprinkleZeros(a.Data, rng)
			b := randDense(batch, sh.c, rng)
			got := randDense(sh.r, sh.c, rng)
			want := got.Clone()
			AddMulTMat(1, a, b, got)
			for s := 0; s < batch; s++ {
				want.AddOuter(1, a.Row(s), b.Row(s))
			}
			if !got.Equal(want, 0) {
				t.Fatalf("batch=%d shape=%dx%d: AddMulTMat diverges from sequential AddOuter",
					batch, sh.r, sh.c)
			}
		}
	}
}

func TestGEMMShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	for name, f := range map[string]func(){
		"MulMat":     func() { MulMat(a, b, NewDense(2, 3)) },
		"MulMatT":    func() { MulMatT(a, NewDense(4, 4), NewDense(2, 4)) },
		"AddMulTMat": func() { AddMulTMat(1, a, NewDense(3, 3), NewDense(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	v := ws.Take(8)
	v.Fill(3)
	m := ws.TakeMat(4, 4)
	m.Data[0] = 7
	ws.Reset()
	v2 := ws.Take(8)
	for _, x := range v2 {
		if x != 0 {
			t.Fatal("Take did not zero recycled memory")
		}
	}
	m2 := ws.TakeMat(4, 4)
	if m2.Rows != 4 || m2.Cols != 4 {
		t.Fatalf("TakeMat shape %dx%d", m2.Rows, m2.Cols)
	}
	for _, x := range m2.Data {
		if x != 0 {
			t.Fatal("TakeMat did not zero recycled memory")
		}
	}
	// Steady state is allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		_ = ws.Take(8)
		_ = ws.TakeMat(4, 4)
	})
	if allocs != 0 {
		t.Fatalf("workspace steady state allocates %v per run", allocs)
	}
}
