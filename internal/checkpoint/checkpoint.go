// Package checkpoint implements the durable snapshot container: a
// versioned, CRC-guarded binary format into which every stateful component
// of a session serializes itself at a decision-epoch boundary, and from
// which a crashed run can be restored bit for bit.
//
// Layout (all integers little-endian):
//
//	magic       8 bytes  "HDRLCKPT"
//	version     uint32   format version (Version)
//	fingerprint uint64   hash of the canonical config encoding
//	nSections   uint32
//	section table, nSections entries:
//	    nameLen uint16, name bytes, payloadLen uint64, crc32 uint32 (IEEE)
//	payloads, concatenated in table order
//
// Every payload is independently checksummed, so corruption is localized to
// a named section in error messages. The container carries no pointers and
// no code — restoration rebuilds the object graph from the Config and then
// overwrites each component's state from its section.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot file.
const Magic = "HDRLCKPT"

// Version is the current snapshot format version. Readers reject any other
// version with ErrVersion. Version 2 added the extended fault classes'
// per-server state (effective speed, degrade and drain bookkeeping) and the
// session migration/domain tallies. Version 3 extended the metrics section
// with the telemetry sketch state (sketch-only flag, wait sum, t-digests).
const Version uint32 = 3

// maxSectionLen bounds a single section payload (1 GiB) so a corrupt length
// field cannot drive a huge allocation before the CRC check runs.
const maxSectionLen = 1 << 30

// Sentinel errors. Restore failures wrap exactly one of these, so callers
// can classify with errors.Is.
var (
	// ErrCorrupt marks a truncated, malformed, or checksum-failing snapshot.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrConfigMismatch marks a snapshot whose configuration (or shard
	// count) does not match the restore target.
	ErrConfigMismatch = errors.New("checkpoint: config mismatch")
)

// Stateful is the opt-in interface for pluggable components (allocators,
// power managers, predictors, failure clocks, retry policies) that carry
// run-time state: they serialize into and restore from a section stream.
// RestoreState reads exactly what SaveState wrote.
type Stateful interface {
	SaveState(e *Enc)
	RestoreState(d *Dec) error
}

// RNGState is the serializable face of a deterministic generator (seed plus
// draw count, see mat.RNG). The interface lives here so every component's
// state I/O writes RNG chains identically.
type RNGState interface {
	State() (seed, draws int64)
	Restore(seed, draws int64)
}

// SaveRNG appends a generator's (seed, draws) state.
func SaveRNG(e *Enc, r RNGState) {
	seed, draws := r.State()
	e.I64(seed)
	e.I64(draws)
}

// RestoreRNG reads a (seed, draws) state and rewinds r to it in place.
func RestoreRNG(d *Dec, r RNGState) error {
	seed := d.I64()
	draws := d.I64()
	if err := d.err; err != nil {
		return err
	}
	if draws < 0 {
		d.fail("negative RNG draw count %d", draws)
		return d.err
	}
	r.Restore(seed, draws)
	return nil
}

// Stateless is the opt-in marker for pluggable components that carry no
// run-time state (their behavior is a pure function of construction
// parameters). A registered component must implement Stateful or Stateless
// to be checkpointable; anything implementing neither fails Checkpoint
// loudly rather than silently dropping state.
type Stateless interface {
	CheckpointStateless()
}

// ErrNotCheckpointable marks a pluggable component that implements neither
// Stateful nor Stateless: the snapshot cannot represent it, and writing one
// anyway would silently drop its state, so Checkpoint fails loudly instead.
var ErrNotCheckpointable = errors.New("checkpoint: component is neither Stateful nor Stateless")

// saveFailure carries an ErrNotCheckpointable out of a SaveState call chain
// (SaveState itself cannot return errors) to the Catch at the top.
type saveFailure struct{ err error }

// SaveComponent writes a pluggable component's state: a presence flag and,
// for a Stateful, its payload. A component implementing neither interface
// aborts the snapshot by panicking with a failure that Catch converts back
// into an ErrNotCheckpointable.
func SaveComponent(e *Enc, c any) {
	switch v := c.(type) {
	case Stateful:
		e.Bool(true)
		v.SaveState(e)
	case Stateless:
		e.Bool(false)
	default:
		panic(saveFailure{fmt.Errorf("%w: %T", ErrNotCheckpointable, c)})
	}
}

// RestoreComponent reads what SaveComponent wrote into the freshly
// constructed component c, which must have the same checkpointability as
// the one that was saved.
func RestoreComponent(d *Dec, c any) error {
	hasState := d.Bool()
	if err := d.err; err != nil {
		return err
	}
	if !hasState {
		if _, ok := c.(Stateful); ok {
			d.fail("stateless snapshot for stateful component %T", c)
			return d.err
		}
		return nil
	}
	v, ok := c.(Stateful)
	if !ok {
		d.fail("stateful snapshot for stateless component %T", c)
		return d.err
	}
	return v.RestoreState(d)
}

// Catch converts a SaveComponent abort into an error return. Use as
// `defer checkpoint.Catch(&err)` in the function driving a snapshot write.
// Unrelated panics propagate.
func Catch(err *error) {
	if r := recover(); r != nil {
		f, ok := r.(saveFailure)
		if !ok {
			panic(r)
		}
		*err = f.err
	}
}

// Enc appends primitive values to an in-memory section payload. It never
// fails: sections are buffered and checksummed at WriteTo time.
type Enc struct {
	buf []byte
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I32 appends a little-endian int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by exact bit pattern (NaN payloads and signed
// zeros round-trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.F64(x)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.Int(len(v))
	for _, x := range v {
		e.I64(x)
	}
}

// Ints appends a length-prefixed []int.
func (e *Enc) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Str appends a length-prefixed string.
func (e *Enc) Str(v string) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(v []byte) {
	e.Int(len(v))
	e.buf = append(e.buf, v...)
}

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Dec reads primitive values from a section payload. Errors are sticky:
// after the first failure every read returns the zero value, and Err
// reports the latched error (wrapped around ErrCorrupt). This lets restore
// code decode a whole struct linearly and check once.
type Dec struct {
	name string
	buf  []byte
	off  int
	err  error
}

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: section %q: %s", ErrCorrupt, d.name, fmt.Sprintf(format, args...))
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Sticky returns the latched decode error without the end-of-payload check.
// Component RestoreState methods use it at their validation points, since a
// section payload routinely continues past any one component's state; the
// top-level restore driver calls Err once per section instead.
func (d *Dec) Sticky() error { return d.err }

// Err returns the latched decode error, or a trailing-garbage error when
// the payload was not fully consumed. Call once after decoding a section.
func (d *Dec) Err() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: section %q: %d trailing bytes", ErrCorrupt, d.name, len(d.buf)-d.off)
	}
	return nil
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid boolean")
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64-encoded int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64 by exact bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// SliceLen decodes an element count and validates it against the remaining
// payload (elemSize is a lower bound on the encoded size per element), so a
// corrupt length fails instead of driving an absurd allocation or loop.
func (d *Dec) SliceLen(elemSize int) int { return d.sliceLen(elemSize) }

// sliceLen validates a decoded element count against the remaining payload
// (elemSize is a lower bound on the encoded size per element), so corrupt
// lengths fail instead of allocating absurd slices.
func (d *Dec) sliceLen(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(d.buf)-d.off {
		d.fail("invalid slice length %d", n)
		return 0
	}
	return n
}

// F64s reads a length-prefixed []float64.
func (d *Dec) F64s() []float64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}

// F64sInto reads a length-prefixed []float64 whose length must equal
// len(dst), decoding in place.
func (d *Dec) F64sInto(dst []float64) {
	n := d.Int()
	if d.err != nil {
		return
	}
	if n != len(dst) {
		d.fail("float64 slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = d.F64()
	}
}

// I64s reads a length-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.sliceLen(1)
	if n == 0 {
		return ""
	}
	return string(d.take(n))
}

// Bytes reads a length-prefixed byte slice (copied out of the payload).
func (d *Dec) Bytes() []byte {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// Writer assembles a snapshot: named sections appended in order, flushed
// with header, table, and per-section CRCs by WriteTo.
type Writer struct {
	fingerprint uint64
	names       []string
	sections    []*Enc
}

// NewWriter starts a snapshot carrying the given config fingerprint.
func NewWriter(fingerprint uint64) *Writer {
	return &Writer{fingerprint: fingerprint}
}

// Section starts a new named section and returns its encoder. Names must be
// unique within a snapshot.
func (w *Writer) Section(name string) *Enc {
	for _, n := range w.names {
		if n == name {
			panic(fmt.Sprintf("checkpoint: duplicate section %q", name))
		}
	}
	e := &Enc{}
	w.names = append(w.names, name)
	w.sections = append(w.sections, e)
	return e
}

// WriteTo serializes the assembled snapshot.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var hdr []byte
	hdr = append(hdr, Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	hdr = binary.LittleEndian.AppendUint64(hdr, w.fingerprint)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(w.sections)))
	for i, e := range w.sections {
		name := w.names[i]
		hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
		hdr = append(hdr, name...)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(e.buf)))
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(e.buf))
	}
	var written int64
	n, err := out.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("checkpoint: write header: %w", err)
	}
	for i, e := range w.sections {
		n, err := out.Write(e.buf)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("checkpoint: write section %q: %w", w.names[i], err)
		}
	}
	return written, nil
}

// Reader parses and validates a snapshot: magic, version, section table,
// and every section CRC are checked up front, so decode code downstream
// only ever sees structurally intact payloads.
type Reader struct {
	fingerprint uint64
	order       []string
	sections    map[string][]byte
}

func readFull(r io.Reader, n int, what string) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, fmt.Errorf("%w: short read in %s: %v", ErrCorrupt, what, err)
	}
	return b, nil
}

// NewReader parses a snapshot from r.
func NewReader(r io.Reader) (*Reader, error) {
	fixed, err := readFull(r, len(Magic)+4+8+4, "header")
	if err != nil {
		return nil, err
	}
	if string(fixed[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, fixed[:len(Magic)])
	}
	off := len(Magic)
	if v := binary.LittleEndian.Uint32(fixed[off:]); v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, reader supports %d", ErrVersion, v, Version)
	}
	off += 4
	fp := binary.LittleEndian.Uint64(fixed[off:])
	off += 8
	nSections := binary.LittleEndian.Uint32(fixed[off:])
	if nSections > 4096 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, nSections)
	}

	type entry struct {
		name string
		n    uint64
		crc  uint32
	}
	entries := make([]entry, nSections)
	for i := range entries {
		lb, err := readFull(r, 2, "section table")
		if err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint16(lb))
		nb, err := readFull(r, nameLen+8+4, "section table")
		if err != nil {
			return nil, err
		}
		entries[i] = entry{
			name: string(nb[:nameLen]),
			n:    binary.LittleEndian.Uint64(nb[nameLen:]),
			crc:  binary.LittleEndian.Uint32(nb[nameLen+8:]),
		}
		if entries[i].n > maxSectionLen {
			return nil, fmt.Errorf("%w: section %q length %d exceeds limit", ErrCorrupt, entries[i].name, entries[i].n)
		}
	}
	rd := &Reader{fingerprint: fp, sections: make(map[string][]byte, nSections)}
	for _, e := range entries {
		payload, err := readFull(r, int(e.n), "section "+e.name)
		if err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(payload); got != e.crc {
			return nil, fmt.Errorf("%w: section %q CRC mismatch (got %08x, want %08x)",
				ErrCorrupt, e.name, got, e.crc)
		}
		if _, dup := rd.sections[e.name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, e.name)
		}
		rd.order = append(rd.order, e.name)
		rd.sections[e.name] = payload
	}
	return rd, nil
}

// Fingerprint returns the config fingerprint stored in the header.
func (r *Reader) Fingerprint() uint64 { return r.fingerprint }

// Sections returns the section names in file order.
func (r *Reader) Sections() []string { return r.order }

// Section returns a decoder over the named payload, or an ErrCorrupt-wrapped
// error when the snapshot lacks it.
func (r *Reader) Section(name string) (*Dec, error) {
	payload, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return &Dec{name: name, buf: payload}, nil
}
