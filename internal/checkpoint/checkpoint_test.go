package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func buildSnapshot(t *testing.T) []byte {
	t.Helper()
	w := NewWriter(0xDEADBEEFCAFE)
	a := w.Section("alpha")
	a.U8(7)
	a.Bool(true)
	a.U32(123456)
	a.I64(-42)
	a.F64(math.Pi)
	a.F64(math.Copysign(0, -1))
	a.Str("hello, snapshot")
	a.F64s([]float64{1.5, -2.5, math.Inf(1)})
	a.I64s([]int64{9, -9})
	a.Ints([]int{3, 1, 4})
	a.Bytes([]byte{0xAA, 0xBB})
	b := w.Section("beta")
	b.Int(99)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	raw := buildSnapshot(t)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Fingerprint() != 0xDEADBEEFCAFE {
		t.Fatalf("fingerprint = %#x", r.Fingerprint())
	}
	if got := r.Sections(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("sections = %v", got)
	}

	d, err := r.Section("alpha")
	if err != nil {
		t.Fatalf("Section(alpha): %v", err)
	}
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if !d.Bool() {
		t.Fatal("Bool = false")
	}
	if v := d.U32(); v != 123456 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("negative zero lost: %v", v)
	}
	if v := d.Str(); v != "hello, snapshot" {
		t.Fatalf("Str = %q", v)
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || !math.IsInf(fs[2], 1) {
		t.Fatalf("F64s = %v", fs)
	}
	is := d.I64s()
	if len(is) != 2 || is[0] != 9 || is[1] != -9 {
		t.Fatalf("I64s = %v", is)
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != 3 || ints[2] != 4 {
		t.Fatalf("Ints = %v", ints)
	}
	bs := d.Bytes()
	if len(bs) != 2 || bs[0] != 0xAA || bs[1] != 0xBB {
		t.Fatalf("Bytes = %v", bs)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err after full decode: %v", err)
	}

	d2, err := r.Section("beta")
	if err != nil {
		t.Fatalf("Section(beta): %v", err)
	}
	if v := d2.Int(); v != 99 {
		t.Fatalf("beta Int = %d", v)
	}
	if err := d2.Err(); err != nil {
		t.Fatalf("beta Err: %v", err)
	}
}

func TestDecStickyErrors(t *testing.T) {
	d := &Dec{name: "t", buf: []byte{1, 2}}
	_ = d.U64() // overruns
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overrun err = %v", err)
	}
	// Subsequent reads stay zero, error stays latched.
	if v := d.I64(); v != 0 {
		t.Fatalf("read after error = %d", v)
	}
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("latched err = %v", err)
	}
}

func TestDecTrailingBytes(t *testing.T) {
	d := &Dec{name: "t", buf: []byte{1, 0, 0, 0, 0, 0, 0, 0, 0xFF}}
	_ = d.U64()
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes err = %v", err)
	}
}

func TestDecInvalidSliceLength(t *testing.T) {
	// Length prefix claims 2^40 floats in a tiny payload.
	e := &Enc{}
	e.I64(1 << 40)
	d := &Dec{name: "t", buf: e.buf}
	if v := d.F64s(); v != nil {
		t.Fatalf("F64s on bad length = %v", v)
	}
	if err := d.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad length err = %v", err)
	}
}

func TestDecF64sInto(t *testing.T) {
	e := &Enc{}
	e.F64s([]float64{1, 2, 3})
	d := &Dec{name: "t", buf: e.buf}
	dst := make([]float64, 3)
	d.F64sInto(dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("F64sInto = %v", dst)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	// Length mismatch fails.
	d2 := &Dec{name: "t", buf: e.buf}
	d2.F64sInto(make([]float64, 2))
	if err := d2.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched F64sInto err = %v", err)
	}
}

// Table-driven corruption classes at the container layer: each mutation of a
// valid snapshot must be rejected with the right sentinel.
func TestReaderRejectsMutations(t *testing.T) {
	valid := buildSnapshot(t)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"truncated header", func(b []byte) []byte { return b[:5] }, ErrCorrupt},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt},
		{"future version", func(b []byte) []byte { b[8] = 0xEE; return b }, ErrVersion},
		{"truncated table", func(b []byte) []byte { return b[:len(Magic)+4+8+4+1] }, ErrCorrupt},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrCorrupt},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-3] ^= 0x10; return b }, ErrCorrupt},
		{"crc field flip", func(b []byte) []byte {
			// Flip a byte in the middle of the section table (CRC or length
			// field of a section entry).
			b[len(Magic)+4+8+4+2+len("alpha")+9] ^= 0x01
			return b
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mut(append([]byte(nil), valid...))
			_, err := NewReader(bytes.NewReader(mutated))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMissingSection(t *testing.T) {
	r, err := NewReader(bytes.NewReader(buildSnapshot(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section("gamma"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section err = %v", err)
	}
}
