package lstm

import (
	"testing"

	"hierdrl/internal/mat"
)

func TestStepInferMatchesStep(t *testing.T) {
	rng := mat.NewRNG(3)
	c := NewCell(4, 12, rng)
	buf := c.NewInferBuf()
	ref := c.NewState()
	fast := c.NewState()
	gen := mat.NewRNG(5)
	for step := 0; step < 10; step++ {
		x := mat.NewVec(4)
		for i := range x {
			x[i] = gen.Normal(0, 1)
		}
		ref, _ = c.Step(x, ref)
		c.StepInfer(x, fast, fast, buf)
		for k := 0; k < c.Hidden; k++ {
			if ref.H[k] != fast.H[k] || ref.C[k] != fast.C[k] {
				t.Fatalf("step %d unit %d: StepInfer diverges from Step (H %v vs %v, C %v vs %v)",
					step, k, fast.H[k], ref.H[k], fast.C[k], ref.C[k])
			}
		}
	}
}

// refPredict replicates the seed's allocating Predict loop.
func refPredict(n *Network, window []float64) float64 {
	st := n.cell.NewState()
	xIn := mat.NewVec(1)
	cellIn := mat.NewVec(n.cfg.CellIn)
	for _, v := range window {
		xIn[0] = v
		n.in.Infer(xIn, cellIn)
		st, _ = n.cell.Step(cellIn, st)
	}
	out := mat.NewVec(1)
	n.out.Infer(st.H, out)
	return out[0]
}

func TestPredictMatchesReferenceAndIsZeroAlloc(t *testing.T) {
	rng := mat.NewRNG(7)
	net := NewNetwork(DefaultNetworkConfig(), rng)
	gen := mat.NewRNG(9)
	window := make([]float64, 35)
	for i := range window {
		window[i] = gen.Normal(0, 1)
	}
	want := refPredict(net, window)
	if got := net.Predict(window); got != want {
		t.Fatalf("Predict %v != reference %v", got, want)
	}
	allocs := testing.AllocsPerRun(50, func() { net.Predict(window) })
	if allocs != 0 {
		t.Fatalf("steady-state Predict allocates %v per run, want 0", allocs)
	}
}
