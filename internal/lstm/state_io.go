package lstm

import (
	"fmt"

	"hierdrl/internal/checkpoint"
)

// SaveParams serializes every trainable tensor in enumeration order.
// Gradients and cached transposes are scratch and excluded.
func (n *Network) SaveParams(e *checkpoint.Enc) {
	params := n.Params()
	e.Int(len(params))
	for _, p := range params {
		e.F64s(p.Val)
	}
}

// RestoreParams reads what SaveParams wrote into the existing tensors (the
// architecture is construction config, so shapes must match) and invalidates
// the cached transposes.
func (n *Network) RestoreParams(d *checkpoint.Dec) error {
	params := n.Params()
	cnt := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if cnt != len(params) {
		return fmt.Errorf("%w: LSTM tensor count %d, want %d", checkpoint.ErrConfigMismatch, cnt, len(params))
	}
	for _, p := range params {
		d.F64sInto(p.Val)
	}
	if err := d.Sticky(); err != nil {
		return err
	}
	n.InvalidateTransposes()
	return nil
}

// SaveState implements checkpoint.Stateful: weights, optimizer moments, the
// training RNG, and the full observation trajectory (history window, Welford
// moments, step counters). Inference and BPTT scratch buffers are rebuilt
// lazily and carry no information.
func (p *Predictor) SaveState(e *checkpoint.Enc) {
	p.net.SaveParams(e)
	p.opt.SaveState(e)
	checkpoint.SaveRNG(e, p.rng)
	e.F64(p.lastArrival)
	e.F64s(p.history)
	e.Int(p.count)
	e.F64(p.mean)
	e.F64(p.m2)
	e.Int(p.trained)
	e.Int(p.sinceT)
}

// RestoreState implements checkpoint.Stateful.
func (p *Predictor) RestoreState(d *checkpoint.Dec) error {
	if err := p.net.RestoreParams(d); err != nil {
		return err
	}
	if err := p.opt.RestoreState(d); err != nil {
		return err
	}
	if err := checkpoint.RestoreRNG(d, p.rng); err != nil {
		return err
	}
	p.lastArrival = d.F64()
	p.history = d.F64s()
	p.count = d.Int()
	p.mean = d.F64()
	p.m2 = d.F64()
	p.trained = d.Int()
	p.sinceT = d.Int()
	return d.Sticky()
}

var _ checkpoint.Stateful = (*Predictor)(nil)
