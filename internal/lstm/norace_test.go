//go:build !race

package lstm

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
