package lstm

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

func TestCellShapes(t *testing.T) {
	rng := mat.NewRNG(1)
	c := NewCell(2, 4, rng)
	st := c.NewState()
	if len(st.H) != 4 || len(st.C) != 4 {
		t.Fatalf("state dims: H=%d C=%d", len(st.H), len(st.C))
	}
	next, back := c.Step(mat.Vec{0.5, -0.5}, st)
	if len(next.H) != 4 || len(next.C) != 4 {
		t.Fatal("step output dims wrong")
	}
	dx, dh, dc := back(mat.NewVec(4), mat.NewVec(4))
	if len(dx) != 2 || len(dh) != 4 || len(dc) != 4 {
		t.Fatal("backward dims wrong")
	}
}

func TestCellZeroStateIsZero(t *testing.T) {
	rng := mat.NewRNG(2)
	c := NewCell(1, 3, rng)
	st := c.NewState()
	for i := range st.H {
		if st.H[i] != 0 || st.C[i] != 0 {
			t.Fatal("initial state must be zero (paper Sec. VI-A)")
		}
	}
}

func TestCellStateCloneIndependent(t *testing.T) {
	rng := mat.NewRNG(3)
	c := NewCell(1, 2, rng)
	st := c.NewState()
	cl := st.Clone()
	cl.H[0] = 99
	if st.H[0] == 99 {
		t.Fatal("Clone aliases state")
	}
}

// Finite-difference gradient check of a full BPTT pass over a short window.
func TestNetworkBPTTGradCheck(t *testing.T) {
	rng := mat.NewRNG(4)
	cfg := NetworkConfig{CellIn: 2, Hidden: 3, InitStd: 0.5, InitBias: 0.1}
	net := NewNetwork(cfg, rng)
	window := []float64{0.3, -0.5, 0.8, 0.2}
	target := 0.7

	lossFn := func() float64 {
		d := net.Predict(window) - target
		return d * d
	}

	params := net.Params()
	nn.ZeroGrads(params)
	net.BPTT(window, target, 1)

	const h = 1e-6
	for _, p := range params {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + h
			lp := lossFn()
			p.Val[i] = orig - h
			lm := lossFn()
			p.Val[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: analytic %v numeric %v",
					p.Name, i, p.Grad[i], want)
			}
		}
	}
}

// The LSTM must learn a simple alternating sequence far better than chance.
func TestNetworkLearnsAlternatingSequence(t *testing.T) {
	rng := mat.NewRNG(5)
	cfg := NetworkConfig{CellIn: 1, Hidden: 8, InitStd: 0.3, InitBias: 0.1}
	net := NewNetwork(cfg, rng)
	opt := nn.NewAdam(0.01)
	params := net.Params()

	seq := func(i int) float64 {
		if i%2 == 0 {
			return 0.8
		}
		return -0.8
	}
	const look = 6
	for epoch := 0; epoch < 300; epoch++ {
		nn.ZeroGrads(params)
		start := rng.Intn(2)
		w := make([]float64, look)
		for i := range w {
			w[i] = seq(start + i)
		}
		net.BPTT(w, seq(start+look), 1)
		nn.ClipGrads(params, 10)
		opt.Step(params)
	}
	w := make([]float64, look)
	for i := range w {
		w[i] = seq(i)
	}
	pred := net.Predict(w)
	if math.Abs(pred-seq(look)) > 0.2 {
		t.Fatalf("failed to learn alternating sequence: pred %v want %v", pred, seq(look))
	}
}

func TestNetworkLearnsLongerPeriodThanMarkov(t *testing.T) {
	// Period-3 pattern requires memory beyond the previous sample; this is
	// exactly the "one long inter-arrival ruins linear predictors" argument
	// of Sec. VI-A.
	rng := mat.NewRNG(6)
	cfg := NetworkConfig{CellIn: 1, Hidden: 12, InitStd: 0.3, InitBias: 0.1}
	net := NewNetwork(cfg, rng)
	opt := nn.NewAdam(0.01)
	params := net.Params()

	pattern := []float64{0.9, -0.2, -0.7}
	seq := func(i int) float64 { return pattern[i%3] }
	const look = 7
	for epoch := 0; epoch < 600; epoch++ {
		nn.ZeroGrads(params)
		start := rng.Intn(3)
		w := make([]float64, look)
		for i := range w {
			w[i] = seq(start + i)
		}
		net.BPTT(w, seq(start+look), 1)
		nn.ClipGrads(params, 10)
		opt.Step(params)
	}
	var worst float64
	for start := 0; start < 3; start++ {
		w := make([]float64, look)
		for i := range w {
			w[i] = seq(start + i)
		}
		if e := math.Abs(net.Predict(w) - seq(start+look)); e > worst {
			worst = e
		}
	}
	if worst > 0.25 {
		t.Fatalf("failed to learn period-3 sequence, worst error %v", worst)
	}
}

func TestPredictorFallbacksBeforeTraining(t *testing.T) {
	rng := mat.NewRNG(7)
	cfg := DefaultPredictorConfig()
	p := NewPredictor(cfg, rng)
	if !math.IsInf(p.Predict(), 1) {
		t.Fatal("empty predictor should predict +Inf")
	}
	p.ObserveArrival(0)
	p.ObserveArrival(10)
	p.ObserveArrival(20)
	if p.Ready() {
		t.Fatal("predictor should not be ready with 2 samples")
	}
	// Fallback is the running mean in log space; with constant gaps of 10 it
	// must be close to 10.
	if pred := p.Predict(); math.Abs(pred-10) > 0.5 {
		t.Fatalf("fallback prediction %v want ~10", pred)
	}
}

func TestPredictorLearnsConstantGaps(t *testing.T) {
	rng := mat.NewRNG(8)
	cfg := DefaultPredictorConfig()
	cfg.Lookback = 10
	cfg.TrainEvery = 4
	cfg.BatchSize = 4
	p := NewPredictor(cfg, rng)
	tNow := 0.0
	for i := 0; i < 400; i++ {
		p.ObserveArrival(tNow)
		tNow += 30
	}
	if !p.Ready() {
		t.Fatal("predictor not ready after 400 arrivals")
	}
	pred := p.Predict()
	if math.Abs(pred-30) > 6 {
		t.Fatalf("constant-gap prediction %v want ~30", pred)
	}
}

func TestPredictorLearnsAlternatingGaps(t *testing.T) {
	rng := mat.NewRNG(9)
	cfg := DefaultPredictorConfig()
	cfg.Lookback = 8
	cfg.TrainEvery = 2
	cfg.BatchSize = 6
	p := NewPredictor(cfg, rng)
	tNow := 0.0
	gaps := []float64{5, 120}
	for i := 0; i < 1200; i++ {
		p.ObserveArrival(tNow)
		tNow += gaps[i%2]
	}
	// After arrival i, history ends with gap gaps[(i-1)%2]; the next gap is
	// gaps[i%2]. We observed 1200 arrivals (i = 0..1199), so the next gap is
	// gaps[1199%2] = 120... but check both phases via direct queries.
	pred := p.Predict()
	// The last recorded gap was gaps[1198%2]=5 so next should be 120.
	if math.Abs(pred-120) > 60 {
		t.Fatalf("alternating-gap prediction %v want ~120", pred)
	}
}

func TestPredictorRejectsOutOfOrderArrivals(t *testing.T) {
	rng := mat.NewRNG(10)
	p := NewPredictor(DefaultPredictorConfig(), rng)
	p.ObserveArrival(100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order arrival should panic")
		}
	}()
	p.ObserveArrival(50)
}

func TestPredictorHistoryBounded(t *testing.T) {
	rng := mat.NewRNG(11)
	cfg := DefaultPredictorConfig()
	cfg.Lookback = 5
	cfg.HistoryCap = 64
	cfg.TrainEvery = 1000000 // disable training for this test
	p := NewPredictor(cfg, rng)
	for i := 0; i < 1000; i++ {
		p.ObserveGap(float64(i%7) + 1)
	}
	if len(p.history) > 64 {
		t.Fatalf("history grew to %d, cap 64", len(p.history))
	}
	if p.ObservedArrivals() != 1000 {
		t.Fatalf("ObservedArrivals %d want 1000", p.ObservedArrivals())
	}
}

func TestDiscretizer(t *testing.T) {
	d := NewDiscretizer([]float64{10, 20, 40})
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {9.99, 0}, {10, 1}, {15, 1}, {20, 2}, {39, 2}, {40, 3}, {1e9, 3},
	}
	for _, tc := range cases {
		if got := d.Categorize(tc.x); got != tc.want {
			t.Errorf("Categorize(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if d.NumCategories() != 4 {
		t.Fatalf("NumCategories: got %d want 4", d.NumCategories())
	}
}

func TestDiscretizerMonotoneProperty(t *testing.T) {
	d := DefaultDiscretizer()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return d.Categorize(a) <= d.Categorize(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizerPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted boundaries should panic")
		}
	}()
	NewDiscretizer([]float64{10, 10})
}

func TestNetworkParamCount(t *testing.T) {
	rng := mat.NewRNG(12)
	cfg := DefaultNetworkConfig() // CellIn=1, Hidden=30
	net := NewNetwork(cfg, rng)
	// in: 1*1+1 = 2; cell: 4 gates * ((1+30)*30 + 30) = 4*960 = 3840;
	// out: 30*1+1 = 31. Total 3873.
	if got := net.NumParams(); got != 3873 {
		t.Fatalf("NumParams: got %d want 3873", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	rng := mat.NewRNG(13)
	cases := []struct {
		name string
		fn   func()
	}{
		{"CellZeroIn", func() { NewCell(0, 3, rng) }},
		{"NetworkBad", func() { NewNetwork(NetworkConfig{}, rng) }},
		{"PredictorZeroLookback", func() {
			cfg := DefaultPredictorConfig()
			cfg.Lookback = 0
			NewPredictor(cfg, rng)
		}},
		{"PredictorTinyCap", func() {
			cfg := DefaultPredictorConfig()
			cfg.HistoryCap = cfg.Lookback
			NewPredictor(cfg, rng)
		}},
		{"NegativeGap", func() {
			NewPredictor(DefaultPredictorConfig(), rng).ObserveGap(-1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// referenceBPTT is the closure-based unroll the buffered BPTT replaced:
// Dense.Forward + Cell.Step per time step, backward in descending time. The
// rewritten BPTT must reproduce its loss and every accumulated gradient
// bit for bit.
func referenceBPTT(n *Network, window []float64, target, weight float64) float64 {
	inBacks := make([]func(mat.Vec) mat.Vec, len(window))
	stepBacks := make([]StepBack, len(window))
	st := n.cell.NewState()
	for t, v := range window {
		cellIn, inBack := n.in.Forward(mat.Vec{v})
		var back StepBack
		st, back = n.cell.Step(cellIn, st)
		inBacks[t] = inBack
		stepBacks[t] = back
	}
	pred, outBack := n.out.Forward(st.H)
	err := pred[0] - target
	dH := outBack(mat.Vec{2 * weight * err})
	dC := mat.NewVec(n.cfg.Hidden)
	for t := len(window) - 1; t >= 0; t-- {
		dx, dHPrev, dCPrev := stepBacks[t](dH, dC)
		inBacks[t](dx)
		dH, dC = dHPrev, dCPrev
	}
	return err * err
}

func TestBPTTMatchesClosureReferenceBitwise(t *testing.T) {
	cfg := NetworkConfig{CellIn: 2, Hidden: 9, InitStd: 0.4, InitBias: 0.1}
	a := NewNetwork(cfg, mat.NewRNG(11))
	b := NewNetwork(cfg, mat.NewRNG(11))
	g := mat.NewRNG(12)
	for round := 0; round < 5; round++ {
		window := make([]float64, 6+round)
		for i := range window {
			window[i] = g.Normal(0, 1)
		}
		target := g.Normal(0, 1)
		lossA := a.BPTT(window, target, 0.5)
		lossB := referenceBPTT(b, window, target, 0.5)
		if lossA != lossB {
			t.Fatalf("round %d: loss %v != reference %v", round, lossA, lossB)
		}
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Grad {
			if pa[i].Grad[j] != pb[i].Grad[j] {
				t.Fatalf("param %s grad[%d]: %v != reference %v",
					pa[i].Name, j, pa[i].Grad[j], pb[i].Grad[j])
			}
		}
	}
}

func TestBPTTZeroAllocOnceWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pinning is meaningless under -race")
	}
	net := NewNetwork(DefaultNetworkConfig(), mat.NewRNG(3))
	window := make([]float64, 35)
	g := mat.NewRNG(4)
	for i := range window {
		window[i] = g.Normal(0, 1)
	}
	net.BPTT(window, 0.3, 1) // warm the scratch
	net.Params()             // warm the enumeration cache
	avg := testing.AllocsPerRun(50, func() { net.BPTT(window, 0.3, 1) })
	if avg != 0 {
		t.Fatalf("warm BPTT allocates %v per sample, want 0", avg)
	}
}
