package lstm

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// PredictorConfig configures the local-tier workload predictor.
type PredictorConfig struct {
	// Lookback is the number of past inter-arrival times fed to the network.
	// The paper uses 35.
	Lookback int
	// Network configures the underlying LSTM.
	Network NetworkConfig
	// LearningRate for Adam. The paper uses Adam but does not state the rate;
	// 0.005 converges quickly at this scale.
	LearningRate float64
	// TrainEvery controls online training cadence: after every TrainEvery
	// observed arrivals the predictor replays BatchSize recent windows.
	TrainEvery int
	// BatchSize is the number of windows replayed per training round.
	BatchSize int
	// HistoryCap bounds the retained inter-arrival history.
	HistoryCap int
	// ClipNorm is the gradient-norm clip applied before each Adam step.
	ClipNorm float64
}

// DefaultPredictorConfig returns the paper's settings with pragmatic
// defaults where the paper is silent.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		Lookback:     35,
		Network:      DefaultNetworkConfig(),
		LearningRate: 0.005,
		TrainEvery:   16,
		BatchSize:    8,
		HistoryCap:   4096,
		ClipNorm:     10,
	}
}

// Predictor forecasts the next job inter-arrival time for one server from
// its observed arrival history. Raw inter-arrival times span several orders
// of magnitude, so they are modeled in log1p space with running
// standardization (Welford), which keeps the network inputs well-scaled
// without a separate normalization pass.
type Predictor struct {
	cfg PredictorConfig
	net *Network
	opt *nn.Adam
	rng *mat.RNG

	lastArrival float64 // most recent arrival time, or NaN before the first
	history     []float64

	// Welford running moments of log1p(inter-arrival).
	count   int
	mean    float64
	m2      float64
	trained int
	sinceT  int

	// winBuf is reused by window(): windows are consumed synchronously by
	// Predict/BPTT, which never retain the slice.
	winBuf []float64
}

// NewPredictor returns a Predictor with freshly initialized weights.
func NewPredictor(cfg PredictorConfig, rng *mat.RNG) *Predictor {
	if cfg.Lookback <= 0 {
		panic(fmt.Sprintf("lstm: NewPredictor invalid lookback %d", cfg.Lookback))
	}
	if cfg.HistoryCap < cfg.Lookback+1 {
		panic("lstm: HistoryCap must exceed Lookback")
	}
	return &Predictor{
		cfg:         cfg,
		net:         NewNetwork(cfg.Network, rng),
		opt:         nn.NewAdam(cfg.LearningRate),
		rng:         rng,
		lastArrival: math.NaN(),
	}
}

// ObserveArrival records a job arrival at time t (seconds) and triggers
// periodic online training.
func (p *Predictor) ObserveArrival(t float64) {
	if !math.IsNaN(p.lastArrival) {
		gap := t - p.lastArrival
		if gap < 0 {
			panic(fmt.Sprintf("lstm: arrivals out of order: %v after %v", t, p.lastArrival))
		}
		p.observeGap(gap)
	}
	p.lastArrival = t
}

// ObserveGap records a raw inter-arrival sample directly (used when replaying
// traces offline).
func (p *Predictor) ObserveGap(gap float64) {
	if gap < 0 {
		panic("lstm: negative inter-arrival")
	}
	p.observeGap(gap)
}

func (p *Predictor) observeGap(gap float64) {
	z := math.Log1p(gap)
	p.count++
	delta := z - p.mean
	p.mean += delta / float64(p.count)
	p.m2 += delta * (z - p.mean)

	p.history = append(p.history, gap)
	if len(p.history) > p.cfg.HistoryCap {
		p.history = p.history[len(p.history)-p.cfg.HistoryCap:]
	}
	p.sinceT++
	if p.sinceT >= p.cfg.TrainEvery && len(p.history) > p.cfg.Lookback {
		p.sinceT = 0
		p.trainRound()
	}
}

func (p *Predictor) std() float64 {
	if p.count < 2 {
		return 1
	}
	s := math.Sqrt(p.m2 / float64(p.count-1))
	if s < 1e-6 {
		return 1e-6
	}
	return s
}

// normalize maps a raw gap to network space.
func (p *Predictor) normalize(gap float64) float64 {
	return (math.Log1p(gap) - p.mean) / p.std()
}

// denormalize maps a network-space value back to seconds (clamped >= 0).
func (p *Predictor) denormalize(z float64) float64 {
	gap := math.Expm1(z*p.std() + p.mean)
	if gap < 0 || math.IsNaN(gap) {
		return 0
	}
	return gap
}

func (p *Predictor) window(end int) []float64 {
	if p.winBuf == nil {
		p.winBuf = make([]float64, p.cfg.Lookback)
	}
	w := p.winBuf
	for i := 0; i < p.cfg.Lookback; i++ {
		w[i] = p.normalize(p.history[end-p.cfg.Lookback+i])
	}
	return w
}

func (p *Predictor) trainRound() {
	params := p.net.Params()
	nn.ZeroGrads(params)
	batch := p.cfg.BatchSize
	if batch <= 0 {
		batch = 1
	}
	scale := 1 / float64(batch)
	for b := 0; b < batch; b++ {
		// Sample a random training window from history, biased toward the
		// recent past (the workload is non-stationary).
		maxEnd := len(p.history) - 1
		minEnd := p.cfg.Lookback
		span := maxEnd - minEnd
		end := maxEnd
		if span > 0 {
			// Quadratic recency bias.
			u := p.rng.Float64()
			end = minEnd + int(float64(span)*math.Sqrt(u))
		}
		target := p.normalize(p.history[end])
		p.net.BPTT(p.window(end), target, scale)
	}
	if p.cfg.ClipNorm > 0 {
		nn.ClipGrads(params, p.cfg.ClipNorm)
	}
	p.opt.Step(params)
	p.net.InvalidateTransposes()
	p.trained++
}

// Ready reports whether the predictor has enough history for an LSTM
// prediction (otherwise Predict falls back to the running mean).
func (p *Predictor) Ready() bool {
	return len(p.history) >= p.cfg.Lookback && p.trained > 0
}

// Predict returns the expected next inter-arrival time in seconds.
// Before enough history accumulates it falls back to the running mean
// inter-arrival (or a large default when nothing has been observed).
func (p *Predictor) Predict() float64 {
	if !p.Ready() {
		if p.count == 0 {
			return math.Inf(1)
		}
		return math.Expm1(p.mean)
	}
	w := p.window(len(p.history))
	return p.denormalize(p.net.Predict(w))
}

// TrainingRounds reports how many Adam steps have been applied (diagnostics).
func (p *Predictor) TrainingRounds() int { return p.trained }

// ObservedArrivals reports how many inter-arrival samples have been recorded.
func (p *Predictor) ObservedArrivals() int { return p.count }

// Discretizer maps a continuous inter-arrival prediction to one of n
// categories via explicit boundaries, producing the finite state component
// the local RL power manager needs (paper Sec. VI-A: "we discretize the
// output inter-arrival time prediction by setting n predefined categories").
type Discretizer struct {
	bounds []float64
}

// NewDiscretizer builds a Discretizer from strictly increasing boundaries.
// A prediction x maps to the smallest i with x < bounds[i], or len(bounds)
// when x exceeds every boundary, so there are len(bounds)+1 categories.
func NewDiscretizer(bounds []float64) *Discretizer {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("lstm: Discretizer boundaries must be strictly increasing")
		}
	}
	return &Discretizer{bounds: append([]float64(nil), bounds...)}
}

// DefaultDiscretizer covers the timeout-relevant horizon: boundaries at
// 15, 30, 60, 90, 120, 300 s give 7 categories.
func DefaultDiscretizer() *Discretizer {
	return NewDiscretizer([]float64{15, 30, 60, 90, 120, 300})
}

// Categorize returns the category index for prediction x.
func (d *Discretizer) Categorize(x float64) int {
	for i, b := range d.bounds {
		if x < b {
			return i
		}
	}
	return len(d.bounds)
}

// NumCategories returns the number of categories.
func (d *Discretizer) NumCategories() int { return len(d.bounds) + 1 }
