// Package lstm implements the long short-term memory network used by the
// paper's local-tier workload predictor (Sec. VI-A): an input hidden layer,
// one LSTM cell layer whose weights are shared across all time steps, and an
// output hidden layer. Training uses truncated back-propagation through time
// (BPTT) with the Adam optimizer, exactly as the paper prescribes (look-back
// window of 35 inter-arrival times, 30 hidden units).
package lstm

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// Cell is a single LSTM cell. The four gate layers each map the concatenated
// [x; hPrev] vector to the hidden dimension. One Cell object is applied at
// every time step, which shares the weights across time (gradients
// accumulate across applications).
type Cell struct {
	In, Hidden int

	forget *nn.Dense // sigmoid
	input  *nn.Dense // sigmoid
	cand   *nn.Dense // tanh
	output *nn.Dense // sigmoid
}

// NewCell returns an LSTM cell with Xavier-initialized gate weights. The
// forget-gate bias starts at 1 (the standard trick that eases learning of
// long dependencies).
func NewCell(in, hidden int, rng *mat.RNG) *Cell {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("lstm: NewCell invalid dims in=%d hidden=%d", in, hidden))
	}
	c := &Cell{
		In:     in,
		Hidden: hidden,
		forget: nn.NewDense(in+hidden, hidden, nn.Sigmoid{}, rng),
		input:  nn.NewDense(in+hidden, hidden, nn.Sigmoid{}, rng),
		cand:   nn.NewDense(in+hidden, hidden, nn.Tanh{}, rng),
		output: nn.NewDense(in+hidden, hidden, nn.Sigmoid{}, rng),
	}
	c.forget.B.Fill(1)
	return c
}

// State is the recurrent state (h, c) carried between time steps.
type State struct {
	H mat.Vec
	C mat.Vec
}

// NewState returns the zero initial state, as the paper specifies.
func (c *Cell) NewState() State {
	return State{H: mat.NewVec(c.Hidden), C: mat.NewVec(c.Hidden)}
}

// Clone returns an independent copy of the state.
func (s State) Clone() State {
	return State{H: s.H.Clone(), C: s.C.Clone()}
}

// StepBack undoes one step of the recurrence during BPTT: given the loss
// gradients with respect to this step's outputs (dH, dC), it returns the
// gradients with respect to the step inputs.
type StepBack func(dH, dC mat.Vec) (dx, dHPrev, dCPrev mat.Vec)

// Step advances the recurrence by one time step and returns the new state
// plus a backward closure. Gate parameter gradients accumulate in the cell.
func (c *Cell) Step(x mat.Vec, prev State) (State, StepBack) {
	if len(x) != c.In {
		panic(fmt.Sprintf("lstm: Step input length %d want %d", len(x), c.In))
	}
	z := mat.Concat(x, prev.H)

	f, backF := c.forget.Forward(z)
	i, backI := c.input.Forward(z)
	g, backG := c.cand.Forward(z) // candidate values, tanh
	o, backO := c.output.Forward(z)

	cNew := mat.NewVec(c.Hidden)
	for k := range cNew {
		cNew[k] = f[k]*prev.C[k] + i[k]*g[k]
	}
	tanhC := mat.NewVec(c.Hidden)
	for k := range tanhC {
		tanhC[k] = math.Tanh(cNew[k])
	}
	hNew := mat.NewVec(c.Hidden)
	for k := range hNew {
		hNew[k] = o[k] * tanhC[k]
	}

	cPrevSaved := prev.C.Clone()
	back := func(dH, dC mat.Vec) (dx, dHPrev, dCPrev mat.Vec) {
		if len(dH) != c.Hidden || len(dC) != c.Hidden {
			panic("lstm: StepBack gradient length mismatch")
		}
		dO := mat.NewVec(c.Hidden)
		dCTotal := mat.NewVec(c.Hidden)
		for k := range dH {
			dO[k] = dH[k] * tanhC[k]
			dCTotal[k] = dH[k]*o[k]*(1-tanhC[k]*tanhC[k]) + dC[k]
		}
		dF := mat.NewVec(c.Hidden)
		dI := mat.NewVec(c.Hidden)
		dG := mat.NewVec(c.Hidden)
		dCPrev = mat.NewVec(c.Hidden)
		for k := range dCTotal {
			dF[k] = dCTotal[k] * cPrevSaved[k]
			dI[k] = dCTotal[k] * g[k]
			dG[k] = dCTotal[k] * i[k]
			dCPrev[k] = dCTotal[k] * f[k]
		}
		dz := backF(dF)
		dz.Add(backI(dI))
		dz.Add(backG(dG))
		dz.Add(backO(dO))

		dx = mat.Vec(dz[:c.In]).Clone()
		dHPrev = mat.Vec(dz[c.In:]).Clone()
		return dx, dHPrev, dCPrev
	}
	return State{H: hNew, C: cNew}, back
}

// InferBuf holds the reusable gate buffers for inference-only stepping.
// One buffer set serves an entire Predict recurrence: the gates are
// recomputed every step, so the same five vectors are overwritten 35 times
// instead of being reallocated 35 times.
type InferBuf struct {
	z, f, i, g, o mat.Vec
}

// NewInferBuf allocates gate buffers matching the cell's dimensions.
func (c *Cell) NewInferBuf() *InferBuf {
	return &InferBuf{
		z: mat.NewVec(c.In + c.Hidden),
		f: mat.NewVec(c.Hidden),
		i: mat.NewVec(c.Hidden),
		g: mat.NewVec(c.Hidden),
		o: mat.NewVec(c.Hidden),
	}
}

// StepInfer advances the recurrence one step without capturing backprop
// state, writing the new state into next. prev and next may be the same
// State (in-place stepping); buf is overwritten. The arithmetic is
// identical to Step, so the resulting state matches bitwise.
func (c *Cell) StepInfer(x mat.Vec, prev, next State, buf *InferBuf) {
	if len(x) != c.In {
		panic(fmt.Sprintf("lstm: StepInfer input length %d want %d", len(x), c.In))
	}
	copy(buf.z[:c.In], x)
	copy(buf.z[c.In:], prev.H)

	c.forget.InferFast(buf.z, buf.f)
	c.input.InferFast(buf.z, buf.i)
	c.cand.InferFast(buf.z, buf.g)
	c.output.InferFast(buf.z, buf.o)

	for k := 0; k < c.Hidden; k++ {
		cNew := buf.f[k]*prev.C[k] + buf.i[k]*buf.g[k]
		next.C[k] = cNew
		next.H[k] = buf.o[k] * math.Tanh(cNew)
	}
}

// InvalidateTransposes marks the gates' cached weight transposes stale;
// call after mutating gate weights through Params.
func (c *Cell) InvalidateTransposes() {
	c.forget.InvalidateTranspose()
	c.input.InvalidateTranspose()
	c.cand.InvalidateTranspose()
	c.output.InvalidateTranspose()
}

// Params enumerates all gate parameters.
func (c *Cell) Params() []nn.Param {
	var ps []nn.Param
	for _, g := range []struct {
		name  string
		layer *nn.Dense
	}{
		{"forget", c.forget}, {"input", c.input}, {"cand", c.cand}, {"output", c.output},
	} {
		for _, p := range g.layer.Params() {
			p.Name = g.name + "." + p.Name
			ps = append(ps, p)
		}
	}
	return ps
}

// NumParams returns the total scalar parameter count of the cell.
func (c *Cell) NumParams() int {
	return c.forget.NumParams() + c.input.NumParams() +
		c.cand.NumParams() + c.output.NumParams()
}
