package lstm

import (
	"fmt"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// NetworkConfig configures the three-layer prediction network of Fig. 7:
// input hidden layer -> LSTM cell layer -> output hidden layer.
type NetworkConfig struct {
	// CellIn is the input size of the LSTM cell. The paper uses 1 (scalar
	// inter-arrival times).
	CellIn int
	// Hidden is the number of LSTM hidden units. The paper uses 30.
	Hidden int
	// InitStd is the standard deviation for the normal initialization of the
	// input/output hidden layers. The paper uses 1.0 with bias 0.1.
	InitStd float64
	// InitBias is the constant bias initialization. The paper uses 0.1.
	InitBias float64
}

// DefaultNetworkConfig returns the paper's settings.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{CellIn: 1, Hidden: 30, InitStd: 1.0, InitBias: 0.1}
}

// Network is the full scalar-sequence regression model: it consumes a window
// of scalar observations and predicts the next one.
type Network struct {
	cfg NetworkConfig

	in   *nn.Dense // 1 -> CellIn, tanh ("input hidden layer")
	cell *Cell     // CellIn -> Hidden
	out  *nn.Dense // Hidden -> 1, linear ("output hidden layer")

	// Reusable inference scratch: Predict steps the same state and gate
	// buffers through the window instead of allocating per step. Lazily
	// built; a Network is not safe for concurrent use (each server's
	// predictor owns its own).
	inferBuf   *InferBuf
	inferState State
	xIn        mat.Vec
	cellIn     mat.Vec
	outBuf     mat.Vec
}

// NewNetwork builds the network described by cfg.
func NewNetwork(cfg NetworkConfig, rng *mat.RNG) *Network {
	if cfg.CellIn <= 0 || cfg.Hidden <= 0 {
		panic(fmt.Sprintf("lstm: NewNetwork invalid config %+v", cfg))
	}
	n := &Network{
		cfg:  cfg,
		in:   nn.NewDense(1, cfg.CellIn, nn.Tanh{}, rng),
		cell: NewCell(cfg.CellIn, cfg.Hidden, rng),
		out:  nn.NewDense(cfg.Hidden, 1, nn.Identity{}, rng),
	}
	// Paper Sec. VI-A: input/output layer weights ~ N(0, InitStd), biases
	// set to the constant InitBias; LSTM initial state all zeros.
	rng.FillNormal(n.in.W, 0, cfg.InitStd)
	n.in.B.Fill(cfg.InitBias)
	rng.FillNormal(n.out.W, 0, cfg.InitStd)
	n.out.B.Fill(cfg.InitBias)
	return n
}

// Predict runs the window through the recurrence and returns the model's
// estimate of the next value. No backprop state is captured; all scratch
// (state, gate buffers) is reused across steps and across calls, so
// steady-state prediction is allocation-free.
func (n *Network) Predict(window []float64) float64 {
	if n.inferBuf == nil {
		n.inferBuf = n.cell.NewInferBuf()
		n.inferState = n.cell.NewState()
		n.xIn = mat.NewVec(1)
		n.cellIn = mat.NewVec(n.cfg.CellIn)
		n.outBuf = mat.NewVec(1)
	}
	st := n.inferState
	st.H.Zero()
	st.C.Zero()
	for _, v := range window {
		n.xIn[0] = v
		n.in.InferFast(n.xIn, n.cellIn)
		n.cell.StepInfer(n.cellIn, st, st, n.inferBuf)
	}
	n.out.InferFast(st.H, n.outBuf)
	return n.outBuf[0]
}

// trainState bundles the per-step closures of one BPTT unroll.
type trainState struct {
	inBacks   []func(mat.Vec) mat.Vec
	stepBacks []StepBack
	final     State
}

func (n *Network) unroll(window []float64) trainState {
	ts := trainState{
		inBacks:   make([]func(mat.Vec) mat.Vec, len(window)),
		stepBacks: make([]StepBack, len(window)),
	}
	st := n.cell.NewState()
	for t, v := range window {
		cellIn, inBack := n.in.Forward(mat.Vec{v})
		var back StepBack
		st, back = n.cell.Step(cellIn, st)
		ts.inBacks[t] = inBack
		ts.stepBacks[t] = back
	}
	ts.final = st
	return ts
}

// BPTT runs one forward+backward pass for a single (window, target) sample,
// accumulating gradients (scaled by weight) into the network parameters and
// returning the squared prediction error.
func (n *Network) BPTT(window []float64, target, weight float64) float64 {
	if len(window) == 0 {
		panic("lstm: BPTT empty window")
	}
	ts := n.unroll(window)
	pred, outBack := n.out.Forward(ts.final.H)
	err := pred[0] - target
	// d(weight * err^2)/dpred = 2*weight*err
	dH := outBack(mat.Vec{2 * weight * err})
	dC := mat.NewVec(n.cfg.Hidden)
	for t := len(window) - 1; t >= 0; t-- {
		dx, dHPrev, dCPrev := ts.stepBacks[t](dH, dC)
		n.inBack(ts.inBacks[t], dx)
		dH, dC = dHPrev, dCPrev
	}
	return err * err
}

func (n *Network) inBack(back func(mat.Vec) mat.Vec, dCellIn mat.Vec) {
	back(dCellIn) // gradient w.r.t. the scalar input is discarded
}

// InvalidateTransposes marks every cached weight transpose stale; call
// after mutating weights through Params (e.g. an optimizer step).
func (n *Network) InvalidateTransposes() {
	n.in.InvalidateTranspose()
	n.cell.InvalidateTransposes()
	n.out.InvalidateTranspose()
}

// Params enumerates every trainable parameter of the network.
func (n *Network) Params() []nn.Param {
	var ps []nn.Param
	for _, p := range n.in.Params() {
		p.Name = "in." + p.Name
		ps = append(ps, p)
	}
	ps = append(ps, n.cell.Params()...)
	for _, p := range n.out.Params() {
		p.Name = "out." + p.Name
		ps = append(ps, p)
	}
	return ps
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	return n.in.NumParams() + n.cell.NumParams() + n.out.NumParams()
}
