package lstm

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// NetworkConfig configures the three-layer prediction network of Fig. 7:
// input hidden layer -> LSTM cell layer -> output hidden layer.
type NetworkConfig struct {
	// CellIn is the input size of the LSTM cell. The paper uses 1 (scalar
	// inter-arrival times).
	CellIn int
	// Hidden is the number of LSTM hidden units. The paper uses 30.
	Hidden int
	// InitStd is the standard deviation for the normal initialization of the
	// input/output hidden layers. The paper uses 1.0 with bias 0.1.
	InitStd float64
	// InitBias is the constant bias initialization. The paper uses 0.1.
	InitBias float64
}

// DefaultNetworkConfig returns the paper's settings.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{CellIn: 1, Hidden: 30, InitStd: 1.0, InitBias: 0.1}
}

// Network is the full scalar-sequence regression model: it consumes a window
// of scalar observations and predicts the next one.
type Network struct {
	cfg NetworkConfig

	in   *nn.Dense // 1 -> CellIn, tanh ("input hidden layer")
	cell *Cell     // CellIn -> Hidden
	out  *nn.Dense // Hidden -> 1, linear ("output hidden layer")

	// Reusable inference scratch: Predict steps the same state and gate
	// buffers through the window instead of allocating per step. Lazily
	// built; a Network is not safe for concurrent use (each server's
	// predictor owns its own).
	inferBuf   *InferBuf
	inferState State
	xIn        mat.Vec
	cellIn     mat.Vec
	outBuf     mat.Vec

	// bptt holds the training scratch: per-step saved activations plus the
	// backward-pass work vectors. Sized on first use and reused for every
	// subsequent BPTT sample, so steady-state training allocates nothing.
	bptt bpttScratch

	// params caches the parameter enumeration (tensors are fixed at
	// construction; rebuilding the slice per optimizer round allocates).
	params []nn.Param
}

// NewNetwork builds the network described by cfg.
func NewNetwork(cfg NetworkConfig, rng *mat.RNG) *Network {
	if cfg.CellIn <= 0 || cfg.Hidden <= 0 {
		panic(fmt.Sprintf("lstm: NewNetwork invalid config %+v", cfg))
	}
	n := &Network{
		cfg:  cfg,
		in:   nn.NewDense(1, cfg.CellIn, nn.Tanh{}, rng),
		cell: NewCell(cfg.CellIn, cfg.Hidden, rng),
		out:  nn.NewDense(cfg.Hidden, 1, nn.Identity{}, rng),
	}
	// Paper Sec. VI-A: input/output layer weights ~ N(0, InitStd), biases
	// set to the constant InitBias; LSTM initial state all zeros.
	rng.FillNormal(n.in.W, 0, cfg.InitStd)
	n.in.B.Fill(cfg.InitBias)
	rng.FillNormal(n.out.W, 0, cfg.InitStd)
	n.out.B.Fill(cfg.InitBias)
	return n
}

// Predict runs the window through the recurrence and returns the model's
// estimate of the next value. No backprop state is captured; all scratch
// (state, gate buffers) is reused across steps and across calls, so
// steady-state prediction is allocation-free.
func (n *Network) Predict(window []float64) float64 {
	if n.inferBuf == nil {
		n.inferBuf = n.cell.NewInferBuf()
		n.inferState = n.cell.NewState()
		n.xIn = mat.NewVec(1)
		n.cellIn = mat.NewVec(n.cfg.CellIn)
		n.outBuf = mat.NewVec(1)
	}
	st := n.inferState
	st.H.Zero()
	st.C.Zero()
	for _, v := range window {
		n.xIn[0] = v
		n.in.InferFast(n.xIn, n.cellIn)
		n.cell.StepInfer(n.cellIn, st, st, n.inferBuf)
	}
	n.out.InferFast(st.H, n.outBuf)
	return n.outBuf[0]
}

// bpttStep holds one time step's saved activations: everything the backward
// pass reads. One set per step, reused across BPTT samples.
type bpttStep struct {
	x      mat.Vec // scalar network input, length 1
	inPre  mat.Vec // input-layer pre-activation (CellIn)
	cellIn mat.Vec // input-layer output = cell input (CellIn)
	z      mat.Vec // [cellIn ; hPrev] gate input (CellIn+Hidden)
	fPre   mat.Vec // gate pre-activations and outputs (Hidden each)
	f      mat.Vec
	iPre   mat.Vec
	i      mat.Vec
	gPre   mat.Vec
	g      mat.Vec
	oPre   mat.Vec
	o      mat.Vec
	c      mat.Vec // cell state after the step
	tanhC  mat.Vec
	h      mat.Vec // hidden state after the step
}

// bpttScratch is the full training scratch of one network: per-step saved
// activations plus the backward-pass work vectors.
type bpttScratch struct {
	steps []bpttStep
	zeroC mat.Vec // the all-zero initial cell state (never written)

	outPre, outY, dyOut, dPreOut mat.Vec // output-layer buffers (length 1)
	dxIn, dPreIn                 mat.Vec // input-layer backward scratch

	dH, dC, dO, dCTotal, dF, dI, dG, dCPrev mat.Vec // Hidden each
	dz, dzTmp, dPre                         mat.Vec // gate backward scratch
}

func (n *Network) ensureBPTT(steps int) {
	b := &n.bptt
	hidden := n.cfg.Hidden
	cellIn := n.cfg.CellIn
	for len(b.steps) < steps {
		b.steps = append(b.steps, bpttStep{
			x:      mat.NewVec(1),
			inPre:  mat.NewVec(cellIn),
			cellIn: mat.NewVec(cellIn),
			z:      mat.NewVec(cellIn + hidden),
			fPre:   mat.NewVec(hidden),
			f:      mat.NewVec(hidden),
			iPre:   mat.NewVec(hidden),
			i:      mat.NewVec(hidden),
			gPre:   mat.NewVec(hidden),
			g:      mat.NewVec(hidden),
			oPre:   mat.NewVec(hidden),
			o:      mat.NewVec(hidden),
			c:      mat.NewVec(hidden),
			tanhC:  mat.NewVec(hidden),
			h:      mat.NewVec(hidden),
		})
	}
	if b.zeroC == nil {
		b.zeroC = mat.NewVec(hidden)
		b.outPre = mat.NewVec(1)
		b.outY = mat.NewVec(1)
		b.dyOut = mat.NewVec(1)
		b.dPreOut = mat.NewVec(1)
		b.dxIn = mat.NewVec(1)
		b.dPreIn = mat.NewVec(cellIn)
		b.dH = mat.NewVec(hidden)
		b.dC = mat.NewVec(hidden)
		b.dO = mat.NewVec(hidden)
		b.dCTotal = mat.NewVec(hidden)
		b.dF = mat.NewVec(hidden)
		b.dI = mat.NewVec(hidden)
		b.dG = mat.NewVec(hidden)
		b.dCPrev = mat.NewVec(hidden)
		b.dz = mat.NewVec(cellIn + hidden)
		b.dzTmp = mat.NewVec(cellIn + hidden)
		b.dPre = mat.NewVec(hidden)
	}
}

// BPTT runs one forward+backward pass for a single (window, target) sample,
// accumulating gradients (scaled by weight) into the network parameters and
// returning the squared prediction error.
//
// All activations are saved in reusable per-step buffers and the backward
// pass walks them in place, so a warm call performs no heap allocation. The
// arithmetic — op for op, including the gate order F, I, G, O and the
// descending-time gradient accumulation — replays the closure-based
// reference unroll exactly, so every gradient (and therefore every trained
// weight) is bitwise identical to it; lstm_test asserts this.
func (n *Network) BPTT(window []float64, target, weight float64) float64 {
	if len(window) == 0 {
		panic("lstm: BPTT empty window")
	}
	n.ensureBPTT(len(window))
	b := &n.bptt
	in, hid := n.cfg.CellIn, n.cfg.Hidden

	// Forward unroll with saved activations.
	hPrev, cPrev := b.zeroC, b.zeroC
	for t, v := range window {
		st := &b.steps[t]
		st.x[0] = v
		n.in.ForwardSaved(st.x, st.inPre, st.cellIn)
		copy(st.z[:in], st.cellIn)
		copy(st.z[in:], hPrev)
		n.cell.forget.ForwardSaved(st.z, st.fPre, st.f)
		n.cell.input.ForwardSaved(st.z, st.iPre, st.i)
		n.cell.cand.ForwardSaved(st.z, st.gPre, st.g)
		n.cell.output.ForwardSaved(st.z, st.oPre, st.o)
		for k := 0; k < hid; k++ {
			st.c[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
		}
		for k := 0; k < hid; k++ {
			st.tanhC[k] = math.Tanh(st.c[k])
		}
		for k := 0; k < hid; k++ {
			st.h[k] = st.o[k] * st.tanhC[k]
		}
		hPrev, cPrev = st.h, st.c
	}

	// Output layer and loss gradient.
	final := &b.steps[len(window)-1]
	n.out.ForwardSaved(final.h, b.outPre, b.outY)
	err := b.outY[0] - target
	// d(weight * err^2)/dpred = 2*weight*err
	b.dyOut[0] = 2 * weight * err
	n.out.BackwardSaved(final.h, b.outPre, b.outY, b.dyOut, b.dPreOut, b.dH)
	b.dC.Zero()

	// Backward through time: per step the gates backpropagate in F, I, G, O
	// order, then the input layer — the exact parameter-gradient
	// accumulation sequence of the reference unroll.
	for t := len(window) - 1; t >= 0; t-- {
		st := &b.steps[t]
		cPrev := b.zeroC
		if t > 0 {
			cPrev = b.steps[t-1].c
		}
		for k := 0; k < hid; k++ {
			b.dO[k] = b.dH[k] * st.tanhC[k]
			b.dCTotal[k] = b.dH[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k]) + b.dC[k]
		}
		for k := 0; k < hid; k++ {
			b.dF[k] = b.dCTotal[k] * cPrev[k]
			b.dI[k] = b.dCTotal[k] * st.g[k]
			b.dG[k] = b.dCTotal[k] * st.i[k]
			b.dCPrev[k] = b.dCTotal[k] * st.f[k]
		}
		n.cell.forget.BackwardSaved(st.z, st.fPre, st.f, b.dF, b.dPre, b.dz)
		n.cell.input.BackwardSaved(st.z, st.iPre, st.i, b.dI, b.dPre, b.dzTmp)
		b.dz.Add(b.dzTmp)
		n.cell.cand.BackwardSaved(st.z, st.gPre, st.g, b.dG, b.dPre, b.dzTmp)
		b.dz.Add(b.dzTmp)
		n.cell.output.BackwardSaved(st.z, st.oPre, st.o, b.dO, b.dPre, b.dzTmp)
		b.dz.Add(b.dzTmp)
		// Input layer: gradient w.r.t. the scalar input is discarded.
		n.in.BackwardSaved(st.x, st.inPre, st.cellIn, b.dz[:in], b.dPreIn, b.dxIn)
		copy(b.dH, b.dz[in:])
		b.dC, b.dCPrev = b.dCPrev, b.dC
	}
	return err * err
}

// InvalidateTransposes marks every cached weight transpose stale; call
// after mutating weights through Params (e.g. an optimizer step).
func (n *Network) InvalidateTransposes() {
	n.in.InvalidateTranspose()
	n.cell.InvalidateTransposes()
	n.out.InvalidateTranspose()
}

// Params enumerates every trainable parameter of the network. The
// enumeration is cached — the tensors are fixed at construction, and the
// online predictor asks for them once per training round.
func (n *Network) Params() []nn.Param {
	if n.params == nil {
		for _, p := range n.in.Params() {
			p.Name = "in." + p.Name
			n.params = append(n.params, p)
		}
		n.params = append(n.params, n.cell.Params()...)
		for _, p := range n.out.Params() {
			p.Name = "out." + p.Name
			n.params = append(n.params, p)
		}
	}
	return n.params
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	return n.in.NumParams() + n.cell.NumParams() + n.out.NumParams()
}
