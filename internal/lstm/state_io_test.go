package lstm

import (
	"bytes"
	"math"
	"testing"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/mat"
)

// TestPredictorStateRoundTrip: a predictor restored mid-training must track
// the uninterrupted one bitwise — same weights, same Adam moments, same
// observation window and Welford normalizer, same training cadence counter,
// so identical further arrivals produce identical predictions and identical
// further training rounds.
func TestPredictorStateRoundTrip(t *testing.T) {
	cfg := DefaultPredictorConfig()
	cfg.Lookback = 6
	cfg.TrainEvery = 8
	cfg.BatchSize = 4

	arrival := func(i int) float64 {
		// Deterministic bursty-ish arrival process.
		return float64(i) + 0.4*math.Sin(float64(i)*0.7)
	}

	p1 := NewPredictor(cfg, mat.NewRNG(11))
	i := 0
	for ; i < 40; i++ {
		p1.ObserveArrival(arrival(i))
	}
	if p1.TrainingRounds() == 0 {
		t.Fatal("predictor never trained before the checkpoint; test needs a mid-training snapshot")
	}

	w := checkpoint.NewWriter(0)
	p1.SaveState(w.Section("lstm"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	// Different construction seed: every weight and RNG draw must come from
	// the snapshot, not from construction.
	p2 := NewPredictor(cfg, mat.NewRNG(77))
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("lstm")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if err := p2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}

	if p2.ObservedArrivals() != p1.ObservedArrivals() || p2.TrainingRounds() != p1.TrainingRounds() {
		t.Fatalf("counters diverge: (%d,%d) vs (%d,%d)",
			p2.ObservedArrivals(), p2.TrainingRounds(), p1.ObservedArrivals(), p1.TrainingRounds())
	}

	// Continue both across at least two more training rounds.
	for ; i < 64; i++ {
		p1.ObserveArrival(arrival(i))
		p2.ObserveArrival(arrival(i))
		if g1, g2 := p1.Predict(), p2.Predict(); math.Float64bits(g1) != math.Float64bits(g2) {
			t.Fatalf("prediction after arrival %d diverges: %v vs %v", i, g1, g2)
		}
	}
	if p1.TrainingRounds() == p2.TrainingRounds() && p1.TrainingRounds() < 6 {
		t.Fatalf("expected further training rounds after restore, got %d", p1.TrainingRounds())
	}
}
