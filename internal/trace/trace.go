// Package trace models the Google cluster-usage workload the paper
// evaluates on: job records with an arrival time, a duration, and per-job
// CPU/memory/disk demands normalized to one server. The real traces are
// proprietary-scale (and not redistributable here), so the package also
// provides a synthetic generator that matches the published marginals —
// diurnal, bursty arrivals; heavy-tailed durations clipped to
// [1 min, 2 h]; small fractional resource requests — plus a CSV codec so
// genuinely extracted traces can be dropped in unchanged.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// NumResources is the number of resource dimensions (CPU, memory, disk), the
// |D| of the paper.
const NumResources = 3

// Resource dimension indices.
const (
	CPU = iota
	Memory
	Disk
)

// Job is one VM/job request extracted from (or synthesized to match) the
// Google cluster traces.
type Job struct {
	// ID is the position of the job in the trace (0-based, arrival order).
	ID int
	// Arrival is the absolute arrival time in seconds from trace start.
	Arrival float64
	// Duration is the job execution time in seconds (resource-holding time
	// once started). The paper clips durations to [60 s, 7200 s].
	Duration float64
	// Req holds the CPU/memory/disk demands, normalized to one server
	// (each in (0, 1]).
	Req [NumResources]float64
}

// Validate checks the invariants every job must satisfy. The comparisons
// are written in the affirmative so NaN fields (which compare false either
// way) are rejected rather than slipping through.
func (j Job) Validate() error {
	if !(j.Arrival >= 0) || math.IsInf(j.Arrival, 0) {
		return fmt.Errorf("trace: job %d: invalid arrival %v", j.ID, j.Arrival)
	}
	if !(j.Duration > 0) || math.IsInf(j.Duration, 0) {
		return fmt.Errorf("trace: job %d: invalid duration %v", j.ID, j.Duration)
	}
	for p, r := range j.Req {
		if !(r > 0 && r <= 1) {
			return fmt.Errorf("trace: job %d: resource %d demand %v outside (0,1]", j.ID, p, r)
		}
	}
	return nil
}

// Trace is an arrival-ordered sequence of jobs.
type Trace struct {
	Jobs []Job
}

// Validate checks per-job invariants and global arrival ordering.
func (t *Trace) Validate() error {
	prev := -1.0
	for i, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.ID != i {
			return fmt.Errorf("trace: job at position %d has ID %d", i, j.ID)
		}
		if j.Arrival < prev {
			return fmt.Errorf("trace: job %d arrives at %v before predecessor at %v",
				j.ID, j.Arrival, prev)
		}
		prev = j.Arrival
	}
	return nil
}

// Len returns the number of jobs.
func (t *Trace) Len() int { return len(t.Jobs) }

// Span returns the time between the first and last arrival, or 0 for traces
// with fewer than two jobs.
func (t *Trace) Span() float64 {
	if len(t.Jobs) < 2 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Arrival - t.Jobs[0].Arrival
}

// Slice returns a sub-trace with jobs [from, to) re-IDed from 0 and arrival
// times rebased so the first job arrives at 0.
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 || to > len(t.Jobs) || from > to {
		panic(fmt.Sprintf("trace: Slice bounds [%d,%d) of %d", from, to, len(t.Jobs)))
	}
	out := &Trace{Jobs: make([]Job, to-from)}
	if to == from {
		return out
	}
	base := t.Jobs[from].Arrival
	for i := from; i < to; i++ {
		j := t.Jobs[i]
		j.ID = i - from
		j.Arrival -= base
		out.Jobs[i-from] = j
	}
	return out
}

// Segments splits the trace into n contiguous segments of (nearly) equal job
// count, mirroring the paper's "split the traces into 200 segments" step.
func (t *Trace) Segments(n int) []*Trace {
	if n <= 0 {
		panic(fmt.Sprintf("trace: Segments with n=%d", n))
	}
	out := make([]*Trace, 0, n)
	per := len(t.Jobs) / n
	rem := len(t.Jobs) % n
	start := 0
	for i := 0; i < n; i++ {
		size := per
		if i < rem {
			size++
		}
		out = append(out, t.Slice(start, start+size))
		start += size
	}
	return out
}

// Stats summarizes a trace for calibration and test assertions.
type Stats struct {
	Jobs            int
	Span            float64
	MeanInterArrive float64
	MeanDuration    float64
	P95Duration     float64
	MeanReq         [NumResources]float64
	// OfferedLoad is the long-run average resource demand in units of
	// servers: sum over jobs of duration*req / span, per dimension.
	OfferedLoad [NumResources]float64
}

// ComputeStats scans the trace once and returns its summary statistics.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Jobs: len(t.Jobs), Span: t.Span()}
	if len(t.Jobs) == 0 {
		return s
	}
	durations := make([]float64, 0, len(t.Jobs))
	var durSum float64
	var reqSum [NumResources]float64
	var loadSum [NumResources]float64
	for _, j := range t.Jobs {
		durSum += j.Duration
		durations = append(durations, j.Duration)
		for p := 0; p < NumResources; p++ {
			reqSum[p] += j.Req[p]
			loadSum[p] += j.Req[p] * j.Duration
		}
	}
	n := float64(len(t.Jobs))
	s.MeanDuration = durSum / n
	sort.Float64s(durations)
	s.P95Duration = durations[int(0.95*float64(len(durations)-1))]
	for p := 0; p < NumResources; p++ {
		s.MeanReq[p] = reqSum[p] / n
	}
	if s.Span > 0 {
		s.MeanInterArrive = s.Span / float64(len(t.Jobs)-1)
		for p := 0; p < NumResources; p++ {
			s.OfferedLoad[p] = loadSum[p] / s.Span
		}
	}
	return s
}

// WriteCSV writes the trace in the canonical format:
// one "arrival,duration,cpu,mem,disk" row per job, with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("arrival,duration,cpu,mem,disk\n"); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range t.Jobs {
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%s\n",
			formatF(j.Arrival), formatF(j.Duration),
			formatF(j.Req[CPU]), formatF(j.Req[Memory]), formatF(j.Req[Disk]))
		if err != nil {
			return fmt.Errorf("trace: write job %d: %w", j.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// WriteCSVStream writes jobs pulled from next (until it reports false) in
// the canonical CSV format, without requiring the workload to exist in
// memory — the scale-10k preset writes 2M-job traces through it.
func WriteCSVStream(w io.Writer, next func() (Job, bool)) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("arrival,duration,cpu,mem,disk\n"); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for {
		j, ok := next()
		if !ok {
			break
		}
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%s\n",
			formatF(j.Arrival), formatF(j.Duration),
			formatF(j.Req[CPU]), formatF(j.Req[Memory]), formatF(j.Req[Disk]))
		if err != nil {
			return fmt.Errorf("trace: write job %d: %w", j.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

func formatF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// ParseCSVRow parses one canonical "arrival,duration,cpu,mem,disk" row into
// a Job. The caller owns ID assignment and semantic checking (Job.Validate);
// this is the single definition of the row syntax, shared by ReadCSV and
// streaming ingestion frontends.
func ParseCSVRow(text string) (Job, error) {
	j, err := parseCSVRow(text)
	if err != nil {
		return Job{}, fmt.Errorf("trace: %w", err)
	}
	return j, nil
}

func parseCSVRow(text string) (Job, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 5 {
		return Job{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	var vals [5]float64
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Job{}, fmt.Errorf("field %d: %w", i, err)
		}
		vals[i] = v
	}
	return Job{
		Arrival:  vals[0],
		Duration: vals[1],
		Req:      [NumResources]float64{vals[2], vals[3], vals[4]},
	}, nil
}

// ReadCSV parses a trace in the canonical CSV format and validates it.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "arrival") {
			continue
		}
		j, err := parseCSVRow(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		j.ID = len(t.Jobs)
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
