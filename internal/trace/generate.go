package trace

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
)

// GeneratorConfig parameterizes the synthetic Google-style workload. The
// defaults are calibrated so that one simulated week produces ~95,000 jobs
// whose offered CPU load suits a 30–40 server cluster — the operating point
// of the paper's evaluation (Sec. VII-A).
type GeneratorConfig struct {
	// NumJobs is the number of jobs to generate.
	NumJobs int
	// BaseRate is the long-run mean arrival rate in jobs/second before
	// diurnal and burst modulation.
	BaseRate float64
	// DiurnalAmplitude in [0,1) scales the sinusoidal day/night swing.
	DiurnalAmplitude float64
	// BurstRateFactor multiplies the arrival rate while a burst is active
	// (a two-state Markov-modulated Poisson process).
	BurstRateFactor float64
	// MeanBurstEvery is the mean time between burst onsets, seconds.
	MeanBurstEvery float64
	// MeanBurstLen is the mean burst duration, seconds.
	MeanBurstLen float64

	// DurationLogMedian is the median job duration in seconds (the
	// log-normal's exp(mu)).
	DurationLogMedian float64
	// DurationLogSigma is the log-normal sigma for durations.
	DurationLogSigma float64
	// MinDuration/MaxDuration clip durations; the paper keeps jobs within
	// [1 minute, 2 hours].
	MinDuration float64
	MaxDuration float64

	// CPULogMedian/CPULogSigma parameterize the log-normal CPU demand.
	CPULogMedian float64
	CPULogSigma  float64
	// MemCorrelation blends memory demand between an independent draw (0)
	// and the job's CPU demand (1); Google jobs show strongly correlated
	// CPU/memory requests.
	MemCorrelation float64
	// DiskLogMedian/DiskLogSigma parameterize the log-normal disk demand.
	DiskLogMedian float64
	DiskLogSigma  float64
	// MinReq/MaxReq clip each per-dimension demand.
	MinReq float64
	MaxReq float64
}

// DefaultGeneratorConfig returns the calibrated defaults described above.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		NumJobs:          95000,
		BaseRate:         95000.0 / (7 * 86400), // ~0.157 jobs/s over a week
		DiurnalAmplitude: 0.35,
		BurstRateFactor:  1.8,
		MeanBurstEvery:   4 * 3600,
		MeanBurstLen:     300,

		DurationLogMedian: 650,
		DurationLogSigma:  0.9,
		MinDuration:       60,
		MaxDuration:       7200,

		CPULogMedian:   0.035,
		CPULogSigma:    0.8,
		MemCorrelation: 0.7,
		DiskLogMedian:  0.010,
		DiskLogSigma:   0.7,
		MinReq:         0.002,
		MaxReq:         0.6,
	}
}

// Validate checks the configuration for consistency.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumJobs <= 0:
		return fmt.Errorf("trace: NumJobs must be positive, got %d", c.NumJobs)
	case c.BaseRate <= 0:
		return fmt.Errorf("trace: BaseRate must be positive, got %v", c.BaseRate)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("trace: DiurnalAmplitude must be in [0,1), got %v", c.DiurnalAmplitude)
	case c.BurstRateFactor < 1:
		return fmt.Errorf("trace: BurstRateFactor must be >= 1, got %v", c.BurstRateFactor)
	case c.MeanBurstEvery <= 0 || c.MeanBurstLen <= 0:
		return fmt.Errorf("trace: burst timing must be positive")
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return fmt.Errorf("trace: invalid duration clip [%v,%v]", c.MinDuration, c.MaxDuration)
	case c.DurationLogMedian <= 0 || c.CPULogMedian <= 0 || c.DiskLogMedian <= 0:
		return fmt.Errorf("trace: log-medians must be positive")
	case c.MemCorrelation < 0 || c.MemCorrelation > 1:
		return fmt.Errorf("trace: MemCorrelation must be in [0,1], got %v", c.MemCorrelation)
	case c.MinReq <= 0 || c.MaxReq > 1 || c.MaxReq < c.MinReq:
		return fmt.Errorf("trace: invalid demand clip [%v,%v]", c.MinReq, c.MaxReq)
	}
	return nil
}

// Source is a pull-based incremental job producer: Next returns the jobs of
// a workload in arrival order until ok is false. *Stream implements it, as do
// the composable generators in internal/workload; the streaming runners
// accept any Source so multi-million-job workloads never materialize. A
// Source is not safe for concurrent use.
type Source interface {
	Next() (Job, bool)
}

// Collect drains src into a materialized, validated Trace — for small
// workloads, goldens, and round-trip tests (large workloads should stay
// streamed).
func Collect(src Source) (*Trace, error) {
	t := &Trace{}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: collected trace invalid: %w", err)
	}
	return t, nil
}

// Stream is the incremental form of Generate: it produces the exact job
// sequence Generate would (same RNG draw order, bit for bit) one job at a
// time, so multi-million-job workloads — the scale-10k preset streams >= 2M
// jobs — never materialize in memory. A Stream is not safe for concurrent
// use.
type Stream struct {
	cfg        GeneratorConfig
	rng        *mat.RNG
	now        float64
	burstUntil float64
	nextBurst  float64
	produced   int
}

// NewStream validates cfg and returns a generator positioned before the
// first job. cfg.NumJobs bounds the stream.
func NewStream(cfg GeneratorConfig, seed int64) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := mat.NewRNG(seed)
	return &Stream{
		cfg:        cfg,
		rng:        rng,
		burstUntil: -1.0,
		nextBurst:  rng.Exponential(1 / cfg.MeanBurstEvery),
	}, nil
}

// Produced returns the number of jobs generated so far.
func (g *Stream) Produced() int { return g.produced }

var _ Source = (*Stream)(nil)

// Next returns the next job of the workload; ok is false once cfg.NumJobs
// jobs have been produced.
func (g *Stream) Next() (j Job, ok bool) {
	if g.produced >= g.cfg.NumJobs {
		return Job{}, false
	}
	cfg, rng := &g.cfg, g.rng
	// Instantaneous rate = base * diurnal(t) * burst(t). We sample the
	// next gap from the current rate (piecewise-constant approximation,
	// refreshed at every arrival — gaps are seconds, modulation periods
	// are hours, so the approximation error is negligible).
	rate := cfg.BaseRate * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*g.now/86400-math.Pi/2))
	if g.now >= g.nextBurst && g.burstUntil < g.now {
		g.burstUntil = g.now + rng.Exponential(1/cfg.MeanBurstLen)
		g.nextBurst = g.now + rng.Exponential(1/cfg.MeanBurstEvery)
	}
	if g.now < g.burstUntil {
		rate *= cfg.BurstRateFactor
	}
	g.now += rng.Exponential(rate)

	dur := clamp(rng.LogNormal(math.Log(cfg.DurationLogMedian), cfg.DurationLogSigma),
		cfg.MinDuration, cfg.MaxDuration)
	cpu := clamp(rng.LogNormal(math.Log(cfg.CPULogMedian), cfg.CPULogSigma),
		cfg.MinReq, cfg.MaxReq)
	memIndep := rng.LogNormal(math.Log(cfg.CPULogMedian), cfg.CPULogSigma)
	mem := clamp(cfg.MemCorrelation*cpu+(1-cfg.MemCorrelation)*memIndep,
		cfg.MinReq, cfg.MaxReq)
	disk := clamp(rng.LogNormal(math.Log(cfg.DiskLogMedian), cfg.DiskLogSigma),
		cfg.MinReq, cfg.MaxReq)

	j = Job{
		ID:       g.produced,
		Arrival:  g.now,
		Duration: dur,
		Req:      [NumResources]float64{cpu, mem, disk},
	}
	g.produced++
	return j, true
}

// Generate produces a synthetic trace. The same seed always yields the same
// trace (and the same sequence a Stream with that seed yields).
func Generate(cfg GeneratorConfig, seed int64) (*Trace, error) {
	g, err := NewStream(cfg, seed)
	if err != nil {
		return nil, err
	}
	t := &Trace{Jobs: make([]Job, 0, cfg.NumJobs)}
	for {
		j, ok := g.Next()
		if !ok {
			break
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated trace invalid: %w", err)
	}
	return t, nil
}

// MustGenerate is Generate for tests and examples with known-good configs.
func MustGenerate(cfg GeneratorConfig, seed int64) *Trace {
	t, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return t
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
