package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallConfig(n int) GeneratorConfig {
	cfg := DefaultGeneratorConfig()
	cfg.NumJobs = n
	return cfg
}

func TestJobValidate(t *testing.T) {
	good := Job{ID: 0, Arrival: 1, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []Job{
		{ID: 0, Arrival: -1, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}},
		{ID: 0, Arrival: 0, Duration: 0, Req: [3]float64{0.1, 0.1, 0.1}},
		{ID: 0, Arrival: 0, Duration: 60, Req: [3]float64{0, 0.1, 0.1}},
		{ID: 0, Arrival: 0, Duration: 60, Req: [3]float64{0.1, 1.5, 0.1}},
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestTraceValidateOrdering(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 0, Arrival: 5, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}},
		{ID: 1, Arrival: 3, Duration: 60, Req: [3]float64{0.1, 0.1, 0.1}},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	tr.Jobs[1].Arrival = 6
	if err := tr.Validate(); err != nil {
		t.Fatalf("ordered trace rejected: %v", err)
	}
	tr.Jobs[1].ID = 7
	if err := tr.Validate(); err == nil {
		t.Fatal("mis-IDed trace accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := MustGenerate(smallConfig(500), 42)
	b := MustGenerate(smallConfig(500), 42)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs between same-seed runs", i)
		}
	}
	c := MustGenerate(smallConfig(500), 43)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateRespectsClips(t *testing.T) {
	cfg := smallConfig(2000)
	tr := MustGenerate(cfg, 1)
	for _, j := range tr.Jobs {
		if j.Duration < cfg.MinDuration || j.Duration > cfg.MaxDuration {
			t.Fatalf("job %d duration %v outside [%v,%v]",
				j.ID, j.Duration, cfg.MinDuration, cfg.MaxDuration)
		}
		for p, r := range j.Req {
			if r < cfg.MinReq || r > cfg.MaxReq {
				t.Fatalf("job %d resource %d demand %v outside [%v,%v]",
					j.ID, p, r, cfg.MinReq, cfg.MaxReq)
			}
		}
	}
}

func TestGenerateMarginals(t *testing.T) {
	// With default calibration a 20k-job sample must land near the
	// published operating point: inter-arrival ~6.4 s, durations with a
	// heavy tail under 2 h, small CPU demands.
	tr := MustGenerate(smallConfig(20000), 7)
	s := tr.ComputeStats()
	if s.MeanInterArrive < 3 || s.MeanInterArrive > 10 {
		t.Fatalf("mean inter-arrival %v outside plausible band", s.MeanInterArrive)
	}
	if s.MeanDuration < 500 || s.MeanDuration > 1400 {
		t.Fatalf("mean duration %v outside plausible band", s.MeanDuration)
	}
	if s.P95Duration <= s.MeanDuration {
		t.Fatalf("duration distribution not right-skewed: p95 %v mean %v",
			s.P95Duration, s.MeanDuration)
	}
	if s.MeanReq[CPU] < 0.02 || s.MeanReq[CPU] > 0.09 {
		t.Fatalf("mean CPU demand %v outside plausible band", s.MeanReq[CPU])
	}
	// Offered CPU load must fit comfortably in a 30-server cluster but be
	// non-trivial (several servers' worth).
	if s.OfferedLoad[CPU] < 2 || s.OfferedLoad[CPU] > 15 {
		t.Fatalf("offered CPU load %v servers outside [2,15]", s.OfferedLoad[CPU])
	}
}

func TestGenerateWeekJobCount(t *testing.T) {
	// The default config should produce ~95k jobs in ~one week of simulated
	// time; test at 1/10 scale to stay fast.
	cfg := DefaultGeneratorConfig()
	cfg.NumJobs = 9500
	tr := MustGenerate(cfg, 3)
	span := tr.Span()
	week := 7.0 * 86400 / 10
	if span < week*0.6 || span > week*1.6 {
		t.Fatalf("9500 jobs span %v s, want roughly %v", span, week)
	}
}

func TestGenerateDiurnalModulation(t *testing.T) {
	cfg := smallConfig(40000)
	cfg.BurstRateFactor = 1 // isolate the diurnal component
	cfg.DiurnalAmplitude = 0.5
	tr := MustGenerate(cfg, 11)
	// With phase -pi/2 the modulation sin(2*pi*t/86400 - pi/2) is negative
	// for time-of-day in [0, 6h) and (18h, 24h), positive in (6h, 18h).
	// Compare arrival counts between those windows.
	var lowWin, highWin int
	for _, j := range tr.Jobs {
		tod := math.Mod(j.Arrival, 86400)
		if tod < 21600 || tod >= 64800 {
			lowWin++
		} else {
			highWin++
		}
	}
	if float64(highWin) < 1.2*float64(lowWin) {
		t.Fatalf("diurnal pattern absent: low=%d high=%d", lowWin, highWin)
	}
}

func TestGenerateBurstsIncreaseVariance(t *testing.T) {
	base := smallConfig(30000)
	base.BurstRateFactor = 1
	bursty := smallConfig(30000)
	bursty.BurstRateFactor = 6
	bursty.MeanBurstEvery = 1800
	bursty.MeanBurstLen = 600

	cv := func(tr *Trace) float64 {
		var gaps []float64
		for i := 1; i < tr.Len(); i++ {
			gaps = append(gaps, tr.Jobs[i].Arrival-tr.Jobs[i-1].Arrival)
		}
		var sum, sumSq float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		for _, g := range gaps {
			d := g - mean
			sumSq += d * d
		}
		return math.Sqrt(sumSq/float64(len(gaps))) / mean
	}
	if cv(MustGenerate(bursty, 5)) <= cv(MustGenerate(base, 5)) {
		t.Fatal("bursty config did not increase inter-arrival variability")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := MustGenerate(smallConfig(300), 9)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round-trip length %d want %d", back.Len(), tr.Len())
	}
	for i := range tr.Jobs {
		if tr.Jobs[i] != back.Jobs[i] {
			t.Fatalf("job %d changed in round trip:\n  %+v\n  %+v",
				i, tr.Jobs[i], back.Jobs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"ShortRow":   "arrival,duration,cpu,mem,disk\n1,2,0.1\n",
		"BadNumber":  "1,x,0.1,0.1,0.1\n",
		"OutOfOrder": "5,60,0.1,0.1,0.1\n3,60,0.1,0.1,0.1\n",
		"BadDemand":  "1,60,2.0,0.1,0.1\n",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestReadCSVSkipsBlankAndHeader(t *testing.T) {
	data := "arrival,duration,cpu,mem,disk\n\n1,60,0.1,0.2,0.3\n\n2,70,0.1,0.2,0.3\n"
	tr, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tr.Len() != 2 {
		t.Fatalf("parsed %d jobs want 2", tr.Len())
	}
}

func TestSliceRebases(t *testing.T) {
	tr := MustGenerate(smallConfig(100), 13)
	sub := tr.Slice(10, 20)
	if sub.Len() != 10 {
		t.Fatalf("slice length %d want 10", sub.Len())
	}
	if sub.Jobs[0].Arrival != 0 {
		t.Fatalf("slice not rebased: first arrival %v", sub.Jobs[0].Arrival)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("slice invalid: %v", err)
	}
	want := tr.Jobs[15].Arrival - tr.Jobs[10].Arrival
	if math.Abs(sub.Jobs[5].Arrival-want) > 1e-9 {
		t.Fatalf("relative arrivals changed: %v want %v", sub.Jobs[5].Arrival, want)
	}
}

func TestSliceBoundsPanics(t *testing.T) {
	tr := MustGenerate(smallConfig(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Slice(5, 20)
}

func TestSegments(t *testing.T) {
	tr := MustGenerate(smallConfig(103), 17)
	segs := tr.Segments(10)
	if len(segs) != 10 {
		t.Fatalf("got %d segments want 10", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += s.Len()
		if err := s.Validate(); err != nil {
			t.Fatalf("segment invalid: %v", err)
		}
	}
	if total != 103 {
		t.Fatalf("segments cover %d jobs want 103", total)
	}
	// First 3 segments get the remainder.
	if segs[0].Len() != 11 || segs[3].Len() != 10 {
		t.Fatalf("segment sizes: %d, %d", segs[0].Len(), segs[3].Len())
	}
}

func TestConfigValidate(t *testing.T) {
	mod := func(f func(*GeneratorConfig)) GeneratorConfig {
		c := DefaultGeneratorConfig()
		f(&c)
		return c
	}
	bad := []GeneratorConfig{
		mod(func(c *GeneratorConfig) { c.NumJobs = 0 }),
		mod(func(c *GeneratorConfig) { c.BaseRate = 0 }),
		mod(func(c *GeneratorConfig) { c.DiurnalAmplitude = 1 }),
		mod(func(c *GeneratorConfig) { c.BurstRateFactor = 0.5 }),
		mod(func(c *GeneratorConfig) { c.MinDuration = 0 }),
		mod(func(c *GeneratorConfig) { c.MaxDuration = 1 }),
		mod(func(c *GeneratorConfig) { c.MemCorrelation = 2 }),
		mod(func(c *GeneratorConfig) { c.MaxReq = 1.5 }),
		mod(func(c *GeneratorConfig) { c.MinReq = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := Generate(c, 1); err == nil {
			t.Errorf("Generate accepted bad config %d", i)
		}
	}
	if err := DefaultGeneratorConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// Property: any generated trace passes validation and is arrival-ordered.
func TestGenerateAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := Generate(smallConfig(200), seed)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStatsEmptyAndSingle(t *testing.T) {
	empty := &Trace{}
	s := empty.ComputeStats()
	if s.Jobs != 0 || s.Span != 0 {
		t.Fatal("empty trace stats wrong")
	}
	one := &Trace{Jobs: []Job{{ID: 0, Arrival: 0, Duration: 100, Req: [3]float64{0.1, 0.1, 0.1}}}}
	s = one.ComputeStats()
	if s.MeanDuration != 100 || s.Span != 0 {
		t.Fatalf("single-job stats wrong: %+v", s)
	}
}

// TestStreamMatchesGenerate asserts the incremental generator yields exactly
// Generate's job sequence (same RNG draw order, bit for bit), in both
// one-at-a-time and batch consumption.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumJobs = 2000
	want := MustGenerate(cfg, 31)

	g, err := NewStream(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		j, ok := g.Next()
		if !ok {
			if i != len(want.Jobs) {
				t.Fatalf("stream produced %d jobs, want %d", i, len(want.Jobs))
			}
			break
		}
		w := want.Jobs[i]
		if j.ID != w.ID || j.Arrival != w.Arrival || j.Duration != w.Duration || j.Req != w.Req {
			t.Fatalf("job %d: stream %+v generate %+v", i, j, w)
		}
	}
	if g.Produced() != cfg.NumJobs {
		t.Fatalf("Produced() = %d, want %d", g.Produced(), cfg.NumJobs)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("stream produced past NumJobs")
	}
	if _, err := NewStream(GeneratorConfig{}, 1); err == nil {
		t.Fatal("NewStream accepted an invalid config")
	}
}

// TestWriteCSVStreamRoundTrip asserts the streaming writer emits exactly the
// canonical format ReadCSV parses back.
func TestWriteCSVStreamRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumJobs = 200
	want := MustGenerate(cfg, 8)
	g, err := NewStream(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSVStream(&buf, g.Next); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("round trip %d jobs, want %d", got.Len(), want.Len())
	}
	for i := range want.Jobs {
		if got.Jobs[i].Arrival != want.Jobs[i].Arrival || got.Jobs[i].Req != want.Jobs[i].Req {
			t.Fatalf("job %d: %+v vs %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
}
