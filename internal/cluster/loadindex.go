package cluster

import (
	"fmt"
	"math"
)

// LoadIndex is a tournament (min-segment) tree over one shard's committed
// loads, keeping the least-committed server queryable in O(1) with O(log n)
// updates on server events. It exists because a latency-greedy allocator at
// 10k-server scale cannot afford the historical O(M) snapshot scan per
// arrival: with the index, the per-arrival cost collapses to a P-way reduce
// over shard minima, and the O(log n) maintenance rides inside the shard
// workers where it parallelizes.
//
// Tie-breaking prefers the lower index (left child on equality), which is
// exactly the order the sequential scan's strict `<` comparison produces —
// so the indexed argmin is bitwise-faithful to policy.LeastLoaded.
//
// Fault injection composes with the tree for free: a down server reports
// CommittedLoad = +Inf (see Server.CommittedLoad), the same value the
// [n, size) padding leaves carry, so crashed servers lose every tournament
// without any index-side special case — graceful degradation falls out of
// the existing comparison rule.
type LoadIndex struct {
	n     int
	size  int       // leaf capacity: smallest power of two >= n
	win   []int32   // win[k] = winning leaf index of internal node k (1-based heap layout)
	loads []float64 // leaf values, +Inf for the [n, size) padding
}

func newLoadIndex(n int) *LoadIndex {
	size := 1
	for size < n {
		size *= 2
	}
	x := &LoadIndex{
		n:     n,
		size:  size,
		win:   make([]int32, size), // nodes 1..size-1 used; 0 unused
		loads: make([]float64, size),
	}
	for i := n; i < size; i++ {
		x.loads[i] = math.Inf(1)
	}
	x.rebuild()
	return x
}

// rebuild recomputes every internal node bottom-up.
func (x *LoadIndex) rebuild() {
	if x.size == 1 {
		return
	}
	for k := x.size - 1; k >= 1; k-- {
		x.win[k] = x.winner(k)
	}
}

// winner computes internal node k's winning leaf from its two children.
func (x *LoadIndex) winner(k int) int32 {
	l, r := 2*k, 2*k+1
	var li, ri int32
	if l >= x.size {
		li, ri = int32(l-x.size), int32(r-x.size)
	} else {
		li, ri = x.win[l], x.win[r]
	}
	if x.loads[li] <= x.loads[ri] {
		return li
	}
	return ri
}

// Update sets leaf local's load and repairs the path to the root. A no-op
// when the load is unchanged (most power-only server events).
func (x *LoadIndex) Update(local int, load float64) {
	if x.loads[local] == load {
		return
	}
	x.loads[local] = load
	for k := (local + x.size) / 2; k >= 1; k /= 2 {
		w := x.winner(k)
		if w == x.win[k] && w != int32(local) {
			// The node's winner is another leaf whose value is untouched, so
			// this node's (winner, value) pair — and every ancestor's — is
			// unchanged.
			return
		}
		x.win[k] = w
	}
}

// ArgMin returns the shard-local index and load of the least-committed
// server (lowest index on ties).
func (x *LoadIndex) ArgMin() (local int, load float64) {
	if x.size == 1 {
		return 0, x.loads[0]
	}
	w := x.win[1]
	return int(w), x.loads[w]
}

// invariantCheck validates the tree against a fresh scan of live server
// state (lo is the shard's global offset).
func (x *LoadIndex) invariantCheck(c *Cluster, lo int) {
	for i := 0; i < x.n; i++ {
		if got, want := x.loads[i], c.servers[lo+i].CommittedLoad(); got != want {
			panic(fmt.Sprintf("cluster: load index leaf %d drift: cached %v live %v", lo+i, got, want))
		}
	}
	best, bestLoad := 0, x.loads[0]
	for i := 1; i < x.n; i++ {
		if x.loads[i] < bestLoad {
			best, bestLoad = i, x.loads[i]
		}
	}
	if got, _ := x.ArgMin(); got != best {
		panic(fmt.Sprintf("cluster: load index argmin drift: tree %d scan %d", got, best))
	}
}

// EnableLoadIndex builds the per-shard least-committed tournament trees and
// keeps them maintained on every server event. Call once, before any event
// fires (typically right after construction).
func (c *Cluster) EnableLoadIndex() {
	for s := range c.shards {
		g := &c.shards[s]
		if g.idx != nil {
			continue
		}
		g.idx = newLoadIndex(g.hi - g.lo)
		for i := g.lo; i < g.hi; i++ {
			g.idx.Update(i-g.lo, c.servers[i].CommittedLoad())
		}
	}
}

// HasLoadIndex reports whether EnableLoadIndex has been called.
func (c *Cluster) HasLoadIndex() bool { return c.shards[0].idx != nil }

// LeastCommitted returns the server with the smallest committed load
// (running plus queued demand, binding dimension), preferring lower indices
// on exact ties — the same argmin, bit for bit, as policy.LeastLoaded's
// sequential snapshot scan, including its >=2.0 sentinel fallback to server
// 0. Parallel tier: barrier-time only.
func (c *Cluster) LeastCommitted() int {
	g0 := &c.shards[0]
	local, best := g0.idx.ArgMin()
	bestServer := g0.lo + local
	for s := 1; s < len(c.shards); s++ {
		g := &c.shards[s]
		if l, load := g.idx.ArgMin(); load < best {
			best, bestServer = load, g.lo+l
		}
	}
	if best >= 2.0 {
		// policy.LeastLoaded initializes its best at 2.0 and only moves on a
		// strict improvement, so an all-overcommitted cluster yields 0.
		return 0
	}
	return bestServer
}
