package cluster

import (
	"fmt"

	"hierdrl/internal/sim"
	"hierdrl/internal/trace"
)

// Job is a VM/job request flowing through the cluster. Latency is defined as
// Finished - Arrival (queueing plus execution), per Sec. III of the paper.
type Job struct {
	// ID is the trace-order identifier.
	ID int
	// Arrival is the time the job entered the cluster (the global tier's
	// decision epoch).
	Arrival sim.Time
	// Duration is the execution time once resources are granted.
	Duration float64
	// Req is the job's resource demand.
	Req Resources

	// Server is the index the global tier dispatched the job to (-1 before
	// dispatch).
	Server int
	// Started is when the server granted resources (valid once started).
	Started sim.Time
	// Finished is when the job completed (valid once finished).
	Finished sim.Time

	started  bool
	finished bool

	// srv is the server executing the job, set when resources are granted;
	// the completion event carries the job as its payload and dispatches
	// through this back-pointer.
	srv *Server
	// done is the pending completion timer, retained so a server crash can
	// cancel it; runIdx is the job's slot in the server's crash interrupt
	// list (maintained only under fault injection). Both are reset by Renew.
	done   sim.Timer
	runIdx int32
}

// NewJob builds a cluster job from a trace record.
func NewJob(tj trace.Job) *Job {
	j := &Job{}
	j.Renew(tj)
	return j
}

// Renew re-initializes a completed (or fresh) Job in place from a trace
// record, so runners can pool Job objects instead of allocating one per
// arrival. Every field is reset; the result is indistinguishable from
// NewJob's.
func (j *Job) Renew(tj trace.Job) {
	*j = Job{
		ID:       tj.ID,
		Arrival:  sim.Time(tj.Arrival),
		Duration: tj.Duration,
		Req:      FromTraceReq(tj.Req),
		Server:   -1,
	}
}

// StartedAt reports whether and when the job started executing.
func (j *Job) StartedAt() (sim.Time, bool) { return j.Started, j.started }

// FinishedAt reports whether and when the job completed.
func (j *Job) FinishedAt() (sim.Time, bool) { return j.Finished, j.finished }

// Latency returns Finished - Arrival. It panics for unfinished jobs.
func (j *Job) Latency() float64 {
	if !j.finished {
		panic(fmt.Sprintf("cluster: Latency of unfinished job %d", j.ID))
	}
	return float64(j.Finished - j.Arrival)
}

// WaitTime returns Started - Arrival (queueing plus any wake delay). It
// panics for jobs that have not started.
func (j *Job) WaitTime() float64 {
	if !j.started {
		panic(fmt.Sprintf("cluster: WaitTime of unstarted job %d", j.ID))
	}
	return float64(j.Started - j.Arrival)
}
