package cluster

import (
	"fmt"
	"math"
	"sort"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/fault"
	"hierdrl/internal/sim"
)

// This file serializes the complete resumable state of a cluster at an event
// boundary: every live job (waiting or executing), every server's structural
// and timer state, and the per-shard incremental aggregates — verbatim, so a
// restored run's floating-point accumulators continue bit for bit.
//
// Timers are captured as (at, seq) pairs and re-scheduled through
// sim.ScheduleRestored with their original trampolines, which the restoring
// side selects from the server's power state (a pending trans timer is a wake
// completion while StateWaking and a shutdown completion while
// StateShuttingDown; the fault timer is a crash while up and a repair while
// down). The lane's RestoreBegin must have run before RestoreState so the
// explicit sequence numbers land in an empty queue.

// saveTimer appends a presence flag plus the (at, seq) key of a pending timer.
func saveTimer(e *checkpoint.Enc, tm sim.Timer) {
	if !tm.Pending() {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.F64(float64(tm.At()))
	e.I64(tm.Seq())
}

// restoreTimer reads what saveTimer wrote and re-schedules the event on sm
// with its original key. An instant before the lane clock (or NaN) marks a
// corrupt snapshot rather than a panic inside the scheduler.
func restoreTimer(d *checkpoint.Dec, sm *sim.Simulator, fn func(any), arg any) (sim.Timer, error) {
	present := d.Bool()
	at := sim.Time(0)
	var seq int64
	if present {
		at = sim.Time(d.F64())
		seq = d.I64()
	}
	if err := d.Sticky(); err != nil && present {
		// Surface a truncation before scheduling garbage values.
		return sim.Timer{}, err
	}
	if !present {
		return sim.Timer{}, nil
	}
	if math.IsNaN(float64(at)) || at < sm.Now() {
		return sim.Timer{}, fmt.Errorf("%w: timer at %v before lane clock %v", checkpoint.ErrCorrupt, at, sm.Now())
	}
	return sm.ScheduleRestored(at, seq, fn, arg), nil
}

// saveMultiset appends a jobs-in-system multiset verbatim.
func saveMultiset(e *checkpoint.Enc, m *jobsMultiset) {
	e.Ints(m.buckets)
	e.Int(m.max)
}

// restoreMultiset reads what saveMultiset wrote, validating the cursor.
func restoreMultiset(d *checkpoint.Dec, m *jobsMultiset) error {
	buckets := d.Ints()
	max := d.Int()
	if err := d.Sticky(); err != nil && len(buckets) == 0 {
		return err
	}
	if len(buckets) == 0 || max < 0 || max >= len(buckets) {
		return fmt.Errorf("%w: jobs multiset max %d over %d buckets", checkpoint.ErrCorrupt, max, len(buckets))
	}
	m.buckets = buckets
	m.max = max
	return nil
}

// saveHot appends a length-prefixed []uint64 bitset.
func saveHot(e *checkpoint.Enc, hot []uint64) {
	e.Int(len(hot))
	for _, v := range hot {
		e.U64(v)
	}
}

// restoreHotInto reads a bitset whose length must match len(dst).
func restoreHotInto(d *checkpoint.Dec, dst []uint64) error {
	n := d.SliceLen(8)
	if err := d.Sticky(); err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("%w: hot bitset length %d, want %d", checkpoint.ErrConfigMismatch, n, len(dst))
	}
	for i := range dst {
		dst[i] = d.U64()
	}
	return nil
}

// runningJobs collects each server's executing jobs in a deterministic order:
// the crash-interrupt list verbatim under fault injection (its slot order is
// behavior — crashes evict in it), or the live completion timers discovered
// from the lanes and sorted by sequence number on fault-free runs, where no
// server-side list exists.
func (c *Cluster) runningJobs() [][]*Job {
	running := make([][]*Job, len(c.servers))
	if c.faults {
		for i, s := range c.servers {
			running[i] = s.runJobs
		}
		return running
	}
	for si := range c.shards {
		c.shards[si].sm.ForEachPending(func(at sim.Time, seq int64, cb func(any), arg any) {
			if j, ok := arg.(*Job); ok {
				running[j.srv.id] = append(running[j.srv.id], j)
			}
		})
	}
	for i := range running {
		r := running[i]
		sort.Slice(r, func(a, b int) bool { return r[a].done.Seq() < r[b].done.Seq() })
	}
	return running
}

// SaveState serializes the cluster: the live job table, every server, and the
// per-shard aggregates. extra lists live jobs held outside the cluster (the
// parallel tier's allocated-but-uncommitted dispatches); the returned map
// gives every live job's table index so the caller can serialize its own
// cross-references. Must be called at an event boundary with all shard
// observation logs drained.
func (c *Cluster) SaveState(e *checkpoint.Enc, extra []*Job) map[*Job]int32 {
	if c.PendingLogs() {
		panic("cluster: SaveState with undrained shard observation logs")
	}
	running := c.runningJobs()

	idx := make(map[*Job]int32)
	var table []*Job
	add := func(j *Job) {
		if _, ok := idx[j]; ok {
			panic(fmt.Sprintf("cluster: job %d reachable twice during checkpoint", j.ID))
		}
		idx[j] = int32(len(table))
		table = append(table, j)
	}
	for i, s := range c.servers {
		for _, j := range s.queue[s.qhead:] {
			add(j)
		}
		for _, j := range running[i] {
			add(j)
		}
	}
	for _, j := range extra {
		add(j)
	}

	e.Int(len(table))
	for _, j := range table {
		e.Int(j.ID)
		e.F64(float64(j.Arrival))
		e.F64(j.Duration)
		for p := 0; p < NumResources; p++ {
			e.F64(j.Req[p])
		}
		e.Int(j.Server)
		e.F64(float64(j.Started))
		e.F64(float64(j.Finished))
		e.Bool(j.started)
		e.Bool(j.finished)
	}
	e.Bool(c.faults)

	for i, s := range c.servers {
		e.Int(int(s.state))
		for p := 0; p < NumResources; p++ {
			e.F64(s.used[p])
		}
		for p := 0; p < NumResources; p++ {
			e.F64(s.pending[p])
		}
		e.Int(s.running)
		e.F64(s.speed)
		e.Bool(s.degraded)
		e.F64(float64(s.degradedAt))
		e.F64(s.degradedSec)
		e.Bool(s.draining)
		e.I64(s.drains)
		q := s.queue[s.qhead:]
		e.Int(len(q))
		for _, j := range q {
			e.I32(idx[j])
		}
		e.Int(len(running[i]))
		for _, j := range running[i] {
			e.I32(idx[j])
			e.F64(float64(j.done.At()))
			e.I64(j.done.Seq())
		}
		saveTimer(e, s.timeout)
		saveTimer(e, s.trans)
		saveTimer(e, s.flt)
		e.I64(s.fails)
		e.I64(s.repairs)
		e.F64(float64(s.downAt))
		e.F64(s.downSec)
		e.F64(float64(s.lastT))
		e.F64(s.lastPower)
		e.F64(s.energyJ)
		e.I64(s.wakeups)
		e.I64(s.shutdowns)
		e.I64(s.completed)
		checkpoint.SaveComponent(e, s.dpm)
		if s.fclock != nil {
			e.Bool(true)
			checkpoint.SaveComponent(e, s.fclock)
		} else {
			e.Bool(false)
		}
	}

	for si := range c.shards {
		g := &c.shards[si]
		e.F64(g.totalPower)
		e.Int(g.jobsInSystem)
		e.F64s(g.prevPower)
		e.Ints(g.prevJobs)
		e.F64s(g.reliTerms)
		saveHot(e, g.reliHot)
		e.Bool(g.reliDirty)
		e.F64(g.reliSum)
		saveMultiset(e, &g.jobs)
		e.I64(g.completed)
		e.I64(g.submitted)
		e.Int(g.down)
		e.Int(g.draining)
		e.I64(g.fails)
	}
	return idx
}

// jobRecBytes is the fixed encoded size of one job-table record: six 8-byte
// scalar fields, NumResources demand entries, two booleans.
const jobRecBytes = (6+NumResources)*8 + 2

// RestoreState reads what SaveState wrote into a freshly constructed cluster
// of the same configuration, re-scheduling every live timer on the (already
// RestoreBegin-reset) lanes. It returns the decoded job table so the caller
// can resolve its own cross-references (in-flight dispatches).
func (c *Cluster) RestoreState(d *checkpoint.Dec) ([]*Job, error) {
	n := d.SliceLen(jobRecBytes)
	if err := d.Sticky(); err != nil {
		return nil, err
	}
	table := make([]*Job, n)
	for i := range table {
		j := &Job{
			ID:       d.Int(),
			Arrival:  sim.Time(d.F64()),
			Duration: d.F64(),
		}
		for p := 0; p < NumResources; p++ {
			j.Req[p] = d.F64()
		}
		j.Server = d.Int()
		j.Started = sim.Time(d.F64())
		j.Finished = sim.Time(d.F64())
		j.started = d.Bool()
		j.finished = d.Bool()
		table[i] = j
	}
	jobAt := func(k int32) (*Job, error) {
		if k < 0 || int(k) >= len(table) {
			return nil, fmt.Errorf("%w: job table index %d of %d", checkpoint.ErrCorrupt, k, len(table))
		}
		return table[k], nil
	}
	wantFaults := d.Bool()
	if err := d.Sticky(); err != nil {
		return nil, err
	}
	if wantFaults != c.faults {
		return nil, fmt.Errorf("%w: snapshot faults=%v, cluster faults=%v", checkpoint.ErrConfigMismatch, wantFaults, c.faults)
	}

	for _, s := range c.servers {
		st := PowerState(d.Int())
		if st < StateSleep || st > StateDown {
			return nil, fmt.Errorf("%w: server %d power state %d", checkpoint.ErrCorrupt, s.id, st)
		}
		s.state = st
		for p := 0; p < NumResources; p++ {
			s.used[p] = d.F64()
		}
		for p := 0; p < NumResources; p++ {
			s.pending[p] = d.F64()
		}
		s.running = d.Int()
		s.speed = d.F64()
		s.degraded = d.Bool()
		s.degradedAt = sim.Time(d.F64())
		s.degradedSec = d.F64()
		s.draining = d.Bool()
		s.drains = d.I64()
		if err := d.Sticky(); err != nil {
			return nil, err
		}
		if !(s.speed > 0) || math.IsInf(s.speed, 1) {
			return nil, fmt.Errorf("%w: server %d effective speed %v", checkpoint.ErrCorrupt, s.id, s.speed)
		}
		if s.draining && st != StateActive {
			return nil, fmt.Errorf("%w: server %d draining in power state %v", checkpoint.ErrCorrupt, s.id, st)
		}
		nq := d.SliceLen(4)
		if err := d.Sticky(); err != nil {
			return nil, err
		}
		s.queue = s.queue[:0]
		s.qhead = 0
		for k := 0; k < nq; k++ {
			j, err := jobAt(d.I32())
			if err != nil {
				return nil, err
			}
			s.queue = append(s.queue, j)
		}
		nr := d.SliceLen(4 + 8 + 8)
		if err := d.Sticky(); err != nil {
			return nil, err
		}
		s.runJobs = s.runJobs[:0]
		if s.running != nr {
			return nil, fmt.Errorf("%w: server %d running count %d, %d completion timers", checkpoint.ErrCorrupt, s.id, s.running, nr)
		}
		for k := 0; k < nr; k++ {
			j, err := jobAt(d.I32())
			if err != nil {
				return nil, err
			}
			at := sim.Time(d.F64())
			seq := d.I64()
			if err := d.Sticky(); err != nil {
				return nil, err
			}
			if math.IsNaN(float64(at)) || at < s.sm.Now() {
				return nil, fmt.Errorf("%w: job %d completion at %v before lane clock %v", checkpoint.ErrCorrupt, j.ID, at, s.sm.Now())
			}
			j.srv = s
			j.done = s.sm.ScheduleRestored(at, seq, jobComplete, j)
			if c.faults {
				j.runIdx = int32(k)
				s.runJobs = append(s.runJobs, j)
			}
		}
		var err error
		if s.timeout, err = restoreTimer(d, s.sm, serverTimeoutExpire, s); err != nil {
			return nil, err
		}
		transFn := serverWakeComplete
		if st == StateShuttingDown {
			transFn = serverShutdownComplete
		}
		if s.trans, err = restoreTimer(d, s.sm, transFn, s); err != nil {
			return nil, err
		}
		if got, want := s.trans.Pending(), st == StateWaking || st == StateShuttingDown; got != want {
			return nil, fmt.Errorf("%w: server %d state %v with transition timer %v", checkpoint.ErrCorrupt, s.id, st, got)
		}
		// The fault trampoline is selected from the model kind and the
		// server's phase: a down server's pending timer is always its repair;
		// otherwise a degrade model alternates start/end on the degraded flag,
		// a drain model's timer opens the next maintenance window (none is
		// pending mid-drain — onDrainStart consumed it), and a crash model's
		// timer is the next crash.
		fltFn := serverCrash
		switch {
		case st == StateDown:
			fltFn = serverRepair
		case c.faultKind == fault.KindDegrade && s.degraded:
			fltFn = serverDegradeEnd
		case c.faultKind == fault.KindDegrade:
			fltFn = serverDegradeStart
		case c.faultKind == fault.KindDrain:
			fltFn = serverDrainStart
		}
		if s.flt, err = restoreTimer(d, s.sm, fltFn, s); err != nil {
			return nil, err
		}
		if s.flt.Pending() && s.fclock == nil {
			return nil, fmt.Errorf("%w: server %d fault timer without a failure clock", checkpoint.ErrCorrupt, s.id)
		}
		if s.draining && s.flt.Pending() {
			return nil, fmt.Errorf("%w: server %d draining with a pending fault timer", checkpoint.ErrCorrupt, s.id)
		}
		s.fails = d.I64()
		s.repairs = d.I64()
		s.downAt = sim.Time(d.F64())
		s.downSec = d.F64()
		s.lastT = sim.Time(d.F64())
		s.lastPower = d.F64()
		s.energyJ = d.F64()
		s.wakeups = d.I64()
		s.shutdowns = d.I64()
		s.completed = d.I64()
		if err := checkpoint.RestoreComponent(d, s.dpm); err != nil {
			return nil, err
		}
		hasClock := d.Bool()
		if err := d.Sticky(); err != nil {
			return nil, err
		}
		if hasClock != (s.fclock != nil) {
			return nil, fmt.Errorf("%w: snapshot clock presence %v for server %d, cluster has %v",
				checkpoint.ErrConfigMismatch, hasClock, s.id, s.fclock != nil)
		}
		if hasClock {
			if err := checkpoint.RestoreComponent(d, s.fclock); err != nil {
				return nil, err
			}
		}
	}

	for si := range c.shards {
		g := &c.shards[si]
		g.totalPower = d.F64()
		g.jobsInSystem = d.Int()
		pp := d.F64s()
		pj := d.Ints()
		rt := d.F64s()
		if err := d.Sticky(); err != nil {
			return nil, err
		}
		if len(pp) != len(g.prevPower) || len(pj) != len(g.prevJobs) || len(rt) != len(g.reliTerms) {
			return nil, fmt.Errorf("%w: shard %d aggregate widths (%d,%d,%d), want (%d,%d,%d)",
				checkpoint.ErrConfigMismatch, si, len(pp), len(pj), len(rt),
				len(g.prevPower), len(g.prevJobs), len(g.reliTerms))
		}
		copy(g.prevPower, pp)
		copy(g.prevJobs, pj)
		copy(g.reliTerms, rt)
		if err := restoreHotInto(d, g.reliHot); err != nil {
			return nil, err
		}
		g.reliDirty = d.Bool()
		g.reliSum = d.F64()
		if err := restoreMultiset(d, &g.jobs); err != nil {
			return nil, err
		}
		g.completed = d.I64()
		g.submitted = d.I64()
		g.down = d.Int()
		g.draining = d.Int()
		g.fails = d.I64()
		g.changes = g.changes[:0]
		g.dones = g.dones[:0]
		g.trans = g.trans[:0]
		g.interrupts = g.interrupts[:0]
		g.migrates = g.migrates[:0]
		g.degrades = g.degrades[:0]
		g.maints = g.maints[:0]
	}
	if err := d.Sticky(); err != nil {
		return nil, err
	}

	// The load index is derived state: rebuild it from the restored servers
	// rather than trusting (and having to validate) a serialized copy.
	for si := range c.shards {
		g := &c.shards[si]
		if g.idx == nil {
			continue
		}
		for i := g.lo; i < g.hi; i++ {
			g.idx.loads[i-g.lo] = c.servers[i].CommittedLoad()
		}
		g.idx.rebuild()
	}
	return table, nil
}

// SaveState serializes the merged-replay bookkeeping verbatim (the replayed
// FP accumulators must continue bit for bit, exactly like the shard-local
// ones).
func (m *Merger) SaveState(e *checkpoint.Enc) {
	e.F64(m.totalPower)
	e.Int(m.jobsInSystem)
	e.F64s(m.prevPower)
	e.Ints(m.prevJobs)
	e.F64s(m.reliTerms)
	saveHot(e, m.reliHot)
	saveMultiset(e, &m.jobs)
}

// RestoreState reads what SaveState wrote into a freshly constructed Merger
// of the same cluster size.
func (m *Merger) RestoreState(d *checkpoint.Dec) error {
	m.totalPower = d.F64()
	m.jobsInSystem = d.Int()
	pp := d.F64s()
	pj := d.Ints()
	rt := d.F64s()
	if err := d.Sticky(); err != nil {
		return err
	}
	if len(pp) != len(m.prevPower) || len(pj) != len(m.prevJobs) || len(rt) != len(m.reliTerms) {
		return fmt.Errorf("%w: merger aggregate widths (%d,%d,%d), want (%d,%d,%d)",
			checkpoint.ErrConfigMismatch, len(pp), len(pj), len(rt),
			len(m.prevPower), len(m.prevJobs), len(m.reliTerms))
	}
	copy(m.prevPower, pp)
	copy(m.prevJobs, pj)
	copy(m.reliTerms, rt)
	if err := restoreHotInto(d, m.reliHot); err != nil {
		return err
	}
	return restoreMultiset(d, &m.jobs)
}

var _ checkpoint.Stateful = (*Merger)(nil)
