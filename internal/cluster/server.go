package cluster

import (
	"fmt"
	"math"

	"hierdrl/internal/fault"
	"hierdrl/internal/sim"
	"hierdrl/internal/trace"
)

// PowerState is a server's power mode.
type PowerState int

// Power modes. Idle is represented as StateActive with zero running jobs;
// the DPM layer observes that condition through the decision-epoch hooks.
const (
	StateSleep PowerState = iota + 1
	StateWaking
	StateActive
	StateShuttingDown
	// StateDown is a crashed or maintenance-drained server (fault
	// injection): zero power draw, no jobs, rejected by every allocator view
	// until its repair completes / its maintenance window elapses.
	StateDown
)

// String implements fmt.Stringer.
func (s PowerState) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateWaking:
		return "waking"
	case StateActive:
		return "active"
	case StateShuttingDown:
		return "shutting-down"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// DPMPolicy is the local tier's interface to one server. Implementations
// live in internal/local (RL-based timeout manager, fixed timeout, always-on,
// ad-hoc immediate sleep).
//
// The three methods map to the paper's decision-epoch taxonomy (Sec. VI-B):
// OnIdle is case (1) — the server just became idle with an empty queue and
// the policy returns the sleep timeout in seconds (0 = sleep immediately,
// +Inf = stay on). OnArrival covers cases (2) and (3) — a job arrived, and
// the pre-transition power state tells the policy which case applies.
// Observe streams reward-rate changes (power draw and jobs in system) so the
// policy can integrate its Eqn. (5) reward exactly.
type DPMPolicy interface {
	OnIdle(t sim.Time, s *Server) float64
	OnArrival(t sim.Time, s *Server, stateBefore PowerState)
	Observe(t sim.Time, powerW float64, jobsInSystem int)
}

// ServerConfig parameterizes one server.
type ServerConfig struct {
	// Capacity is the resource capacity (normally UnitCapacity).
	Capacity Resources
	// Power is the power model.
	Power PowerModel
	// TonSeconds is the sleep->active transition time (paper: 30 s).
	TonSeconds float64
	// ToffSeconds is the active->sleep transition time (paper: 30 s).
	ToffSeconds float64
	// InitialState is the power mode at t=0 (default StateSleep).
	InitialState PowerState
	// Speed is the relative execution-speed factor: a job of nominal
	// duration D occupies this server for D/Speed seconds. Zero means 1.0,
	// and 1.0 leaves service times bitwise unchanged (IEEE x/1.0 == x), so
	// homogeneous configurations reproduce historical results exactly.
	Speed float64
}

// DefaultServerConfig returns the paper's calibration.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Capacity:     UnitCapacity(),
		Power:        DefaultPowerModel(),
		TonSeconds:   30,
		ToffSeconds:  30,
		InitialState: StateSleep,
	}
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.TonSeconds < 0 || c.ToffSeconds < 0 {
		return fmt.Errorf("cluster: negative transition times Ton=%v Toff=%v",
			c.TonSeconds, c.ToffSeconds)
	}
	if c.Speed < 0 || math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0) {
		return fmt.Errorf("cluster: Speed must be a non-negative finite factor, got %v", c.Speed)
	}
	for p, v := range c.Capacity {
		if v <= 0 {
			return fmt.Errorf("cluster: capacity resource %d must be positive, got %v", p, v)
		}
	}
	switch c.InitialState {
	case StateSleep, StateActive, 0:
	default:
		return fmt.Errorf("cluster: initial state must be sleep or active, got %v", c.InitialState)
	}
	return nil
}

// Server simulates one physical machine: FCFS queue with head-of-line
// blocking, resource accounting, the power-mode state machine of Fig. 4, and
// exact energy integration.
type Server struct {
	id  int
	sm  *sim.Simulator
	cfg ServerConfig
	dpm DPMPolicy

	state PowerState
	// speed is the current effective execution-speed factor; baseSpeed is the
	// configured class speed (cfg.Speed, 0 -> 1). They differ only while a
	// fail-slow fault holds the server degraded.
	speed     float64
	baseSpeed float64
	used      Resources
	// queue is the FCFS wait line, consumed through qhead so steady-state
	// push/pop reuses the backing array instead of re-slicing capacity away
	// (append after s.queue[1:] re-slicing allocated once per drained queue).
	queue   []*Job
	qhead   int
	pending Resources // cached sum of queued jobs' demands
	running int

	timeout sim.Timer
	// trans tracks the in-flight wake/shutdown completion event so a crash
	// can cancel it; the fault-free path stores and clears it but never
	// cancels (pure value writes, no behavior change).
	trans sim.Timer

	// Fault layer (all zero when no failure clock is attached).
	fclock fault.Clock
	// fkind tells the server what a clock firing means: crash (evict all),
	// degrade (slow down), or drain (planned maintenance window).
	fkind fault.Kind
	// degradeTo is the precomputed degraded speed (baseSpeed * model factor),
	// meaningful only for KindDegrade.
	degradeTo float64
	// flt is the pending fault-onset timer while up, the pending repair timer
	// while down, and the pending restore timer while degraded — at most one
	// exists at a time, and only a draining server (running jobs winding
	// down, power-off not yet scheduled) has none.
	flt sim.Timer
	// runJobs tracks executing jobs in start order so a crash can interrupt
	// them deterministically; maintained only when fclock != nil.
	runJobs []*Job
	fails   int64
	repairs int64
	downAt  sim.Time
	downSec float64
	// Fail-slow bookkeeping: degraded intervals mirror the downAt/downSec
	// scheme but never change the power state.
	degraded    bool
	degradedAt  sim.Time
	degradedSec float64
	// Maintenance-drain bookkeeping: draining is true from the window opening
	// until the graceful power-off (only ever while StateActive with running
	// jobs — an idle server powers off the instant its window opens).
	draining bool
	drains   int64
	// onInterrupt receives every job a crash evicts (running first in start
	// order, then the FCFS queue front to back).
	onInterrupt func(t sim.Time, j *Job)
	// onMigrate receives every queued job a drain start migrates away
	// (front to back; running jobs finish in place and are never migrated).
	onMigrate func(t sim.Time, j *Job)
	// onFault reports up/down flips (down=true on crash or maintenance
	// power-off) for the cluster's shard-local failure bookkeeping, before
	// the eviction cascade.
	onFault func(t sim.Time, s *Server, down bool)
	// onDegrade reports degrade onset (degraded=true) and restore.
	onDegrade func(t sim.Time, s *Server, degraded bool)
	// onDrain reports a maintenance window opening, before the queue
	// migration cascade.
	onDrain func(t sim.Time, s *Server)

	// Energy accounting.
	lastT     sim.Time
	lastPower float64
	energyJ   float64

	// Statistics.
	wakeups   int64
	shutdowns int64
	completed int64

	// onUpdate fires after every change to the server's power draw or
	// jobs-in-system count, with the server already in its new state. The
	// cluster uses it to maintain aggregates incrementally.
	onUpdate func(t sim.Time, s *Server)
	// onJobDone fires when a job completes.
	onJobDone func(t sim.Time, j *Job)
	// onTransition fires after every power-mode change (nil when no observer
	// is attached; the nil check keeps the unobserved hot path free).
	onTransition func(t sim.Time, s *Server, from, to PowerState)
}

// NewServer builds a server attached to the given simulator. dpm must not be
// nil (use local.AlwaysOn for an unmanaged server).
func NewServer(id int, sm *sim.Simulator, cfg ServerConfig, dpm DPMPolicy) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dpm == nil {
		return nil, fmt.Errorf("cluster: server %d: nil DPM policy", id)
	}
	st := cfg.InitialState
	if st == 0 {
		st = StateSleep
	}
	sp := cfg.Speed
	if sp == 0 {
		sp = 1
	}
	s := &Server{
		id:        id,
		sm:        sm,
		cfg:       cfg,
		dpm:       dpm,
		state:     st,
		speed:     sp,
		baseSpeed: sp,
		lastT:     sm.Now(),
	}
	s.lastPower = s.currentPower()
	return s, nil
}

// ID returns the server index.
func (s *Server) ID() int { return s.id }

// State returns the current power mode.
func (s *Server) State() PowerState { return s.state }

// Speed returns the current effective execution-speed factor (1.0 =
// nominal); a fail-slow fault lowers it until the matching restore.
func (s *Server) Speed() float64 { return s.speed }

// BaseSpeed returns the configured class speed factor, unaffected by faults.
func (s *Server) BaseSpeed() float64 { return s.baseSpeed }

// QueueLen returns the number of jobs waiting (not yet granted resources).
func (s *Server) QueueLen() int { return len(s.queue) - s.qhead }

// Running returns the number of executing jobs.
func (s *Server) Running() int { return s.running }

// JobsInSystem returns waiting plus executing jobs (the JQ(t) signal feeding
// Eqn. (5), via Little's law a proxy for per-job latency).
func (s *Server) JobsInSystem() int { return len(s.queue) - s.qhead + s.running }

// Used returns the resources currently granted to running jobs.
func (s *Server) Used() Resources { return s.used }

// Utilization returns the fractional utilization per resource dimension.
func (s *Server) Utilization() Resources {
	var u Resources
	for p := range u {
		u[p] = s.used[p] / s.cfg.Capacity[p]
	}
	return u
}

// CPUUtil returns the CPU utilization fraction driving the power model.
func (s *Server) CPUUtil() float64 {
	return s.used[trace.CPU] / s.cfg.Capacity[trace.CPU]
}

// PendingDemand returns the total resource demand of queued jobs
// (maintained incrementally).
func (s *Server) PendingDemand() Resources { return s.pending }

// CommittedUtilization returns running plus queued demand per resource,
// normalized by capacity — the backlog-aware load signal used by the
// reliability objective and the DRL state.
func (s *Server) CommittedUtilization() Resources {
	var u Resources
	for p := range u {
		u[p] = (s.used[p] + s.pending[p]) / s.cfg.Capacity[p]
	}
	return u
}

// CommittedLoad returns the binding-dimension committed load — exactly the
// expression policy.LeastLoaded evaluates from a snapshot
// (Utilization().Add(PendingDemand()).MaxFrac()), so the incremental
// LoadIndex stays bitwise-faithful to the sequential scan. A down server
// reports +Inf, which masks it out of every least-committed tournament (the
// LoadIndex tree handles +Inf natively — its padding leaves already use it).
// Down and draining servers both report +Inf: a draining server still runs
// its last jobs but accepts no new work, so it must lose every tournament.
func (s *Server) CommittedLoad() float64 {
	if s.state == StateDown || s.draining {
		return math.Inf(1)
	}
	return s.Utilization().Add(s.pending).MaxFrac()
}

// Power returns the instantaneous power draw in watts.
func (s *Server) Power() float64 { return s.lastPower }

// EnergyJoules returns the energy integrated through time t.
func (s *Server) EnergyJoules(t sim.Time) float64 {
	if t < s.lastT {
		panic(fmt.Sprintf("cluster: EnergyJoules time %v before last update %v", t, s.lastT))
	}
	return s.energyJ + s.lastPower*float64(t-s.lastT)
}

// Wakeups returns how many sleep->active transitions have begun.
func (s *Server) Wakeups() int64 { return s.wakeups }

// Shutdowns returns how many active->sleep transitions have begun.
func (s *Server) Shutdowns() int64 { return s.shutdowns }

// Completed returns the number of finished jobs.
func (s *Server) Completed() int64 { return s.completed }

// SetHooks installs the cluster-level callbacks.
func (s *Server) SetHooks(onUpdate func(sim.Time, *Server), onJobDone func(sim.Time, *Job)) {
	s.onUpdate = onUpdate
	s.onJobDone = onJobDone
}

// SetTransitionHook installs an observer for power-mode changes. A nil hook
// (the default) costs one branch per transition.
func (s *Server) SetTransitionHook(fn func(t sim.Time, s *Server, from, to PowerState)) {
	s.onTransition = fn
}

// setState changes the power mode and notifies the transition observer.
func (s *Server) setState(to PowerState) {
	from := s.state
	s.state = to
	if s.onTransition != nil {
		s.onTransition(s.sm.Now(), s, from, to)
	}
}

// queuePop removes and returns the queue head. The backing array is consumed
// through qhead and recycled when the queue drains (or compacted when the
// dead prefix dominates), so steady-state queueing never reallocates.
// Session.popHead (package hierdrl) mirrors this scheme for the pending
// arrival queue — change it in both places together.
func (s *Server) queuePop() *Job {
	j := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	} else if s.qhead > 32 && s.qhead*2 > len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	return j
}

func (s *Server) currentPower() float64 {
	switch s.state {
	case StateSleep:
		return s.cfg.Power.Sleep()
	case StateWaking, StateShuttingDown:
		return s.cfg.Power.Transition()
	case StateActive:
		return s.cfg.Power.Active(s.CPUUtil())
	case StateDown:
		return 0
	default:
		panic(fmt.Sprintf("cluster: server %d in invalid state %v", s.id, s.state))
	}
}

// sync integrates energy up to now, recomputes power, and fires the hooks.
// Call after every state mutation.
func (s *Server) sync() {
	now := s.sm.Now()
	s.energyJ += s.lastPower * float64(now-s.lastT)
	s.lastT = now
	s.lastPower = s.currentPower()
	if s.onUpdate != nil {
		s.onUpdate(now, s)
	}
	s.dpm.Observe(now, s.lastPower, s.JobsInSystem())
}

// Submit hands a job to this server at the current simulation time. It
// panics if the job's demand exceeds the server's total capacity — such a
// job would block the FCFS queue forever, which is always a modeling error.
func (s *Server) Submit(j *Job) {
	if !j.Req.FitsIn(s.cfg.Capacity) {
		panic(fmt.Sprintf("cluster: job %d demand %v exceeds server %d capacity %v",
			j.ID, j.Req, s.id, s.cfg.Capacity))
	}
	if s.state == StateDown || s.draining {
		panic(fmt.Sprintf("cluster: job %d submitted to unavailable server %d (state %v, draining %v; callers must remap through NextUp)",
			j.ID, s.id, s.state, s.draining))
	}
	now := s.sm.Now()
	stateBefore := s.state
	j.Server = s.id

	s.queue = append(s.queue, j)
	s.pending = s.pending.Add(j.Req)
	// Cancel a pending idle timeout: the server has work again.
	if s.timeout.Cancel() {
		s.timeout = sim.Timer{}
	}

	switch s.state {
	case StateSleep:
		s.beginWake()
	case StateActive:
		s.tryStart()
	case StateWaking, StateShuttingDown:
		// Job waits; the in-flight transition completes first (Fig. 4(a)).
	}
	s.sync()
	// The DPM hears about the arrival after the server reacted, with the
	// pre-transition state so it can classify the epoch (case 2 vs 3).
	s.dpm.OnArrival(now, s, stateBefore)
}

// Event trampolines: package-level functions plus a pointer-shaped argument
// make every hot-path Schedule call allocation-free (no closure, no method
// value).
func serverWakeComplete(a any)     { a.(*Server).onWakeComplete() }
func serverShutdownComplete(a any) { a.(*Server).onShutdownComplete() }
func serverTimeoutExpire(a any)    { a.(*Server).onTimeoutExpire() }
func jobComplete(a any)            { j := a.(*Job); j.srv.onJobComplete(j) }
func serverCrash(a any)            { a.(*Server).onCrash() }
func serverRepair(a any)           { a.(*Server).onRepair() }
func serverDegradeStart(a any)     { a.(*Server).onDegradeStart() }
func serverDegradeEnd(a any)       { a.(*Server).onDegradeEnd() }
func serverDrainStart(a any)       { a.(*Server).onDrainStart() }

func (s *Server) beginWake() {
	s.setState(StateWaking)
	s.wakeups++
	s.trans = s.sm.ScheduleAfterArg(s.cfg.TonSeconds, serverWakeComplete, s)
}

func (s *Server) onWakeComplete() {
	s.trans = sim.Timer{}
	if s.state != StateWaking {
		panic(fmt.Sprintf("cluster: server %d wake completion in state %v", s.id, s.state))
	}
	s.setState(StateActive)
	s.tryStart()
	s.sync()
	if s.running == 0 && s.QueueLen() == 0 {
		// Defensive: a wake with nothing to do still constitutes an idle
		// decision epoch.
		s.enterIdleEpoch()
	}
}

// tryStart grants resources to queued jobs in strict FCFS order, stopping at
// the first job that does not fit (head-of-line blocking, Sec. III).
func (s *Server) tryStart() {
	now := s.sm.Now()
	for s.qhead < len(s.queue) {
		head := s.queue[s.qhead]
		free := s.cfg.Capacity.Sub(s.used)
		if !head.Req.FitsIn(free) {
			return
		}
		s.queuePop()
		s.pending = s.pending.Sub(head.Req)
		s.used = s.used.Add(head.Req)
		s.running++
		head.Started = now
		head.started = true
		head.srv = s
		// Service time scales with the class speed factor; at the default
		// speed 1.0 the division is exact, so homogeneous clusters schedule
		// the historical instants bit for bit.
		head.done = s.sm.ScheduleAfterArg(head.Duration/s.speed, jobComplete, head)
		if s.fclock != nil {
			head.runIdx = int32(len(s.runJobs))
			s.runJobs = append(s.runJobs, head)
		}
	}
}

func (s *Server) onJobComplete(j *Job) {
	now := s.sm.Now()
	j.done = sim.Timer{}
	if s.fclock != nil {
		// Swap-remove from the crash interrupt list.
		last := len(s.runJobs) - 1
		moved := s.runJobs[last]
		s.runJobs[j.runIdx] = moved
		moved.runIdx = j.runIdx
		s.runJobs[last] = nil
		s.runJobs = s.runJobs[:last]
	}
	s.used = s.used.Sub(j.Req)
	if !s.used.NonNegative() {
		panic(fmt.Sprintf("cluster: server %d negative utilization after job %d", s.id, j.ID))
	}
	s.running--
	s.completed++
	j.Finished = now
	j.finished = true

	s.tryStart()
	s.sync()
	if s.onJobDone != nil {
		s.onJobDone(now, j)
	}
	if s.draining {
		// A draining server bypasses the DPM: once the last running job
		// finishes (its queue migrated away at the window opening), it powers
		// off gracefully instead of entering an idle decision epoch.
		if s.running == 0 {
			s.maintenanceDown()
		}
	} else if s.state == StateActive && s.running == 0 && s.QueueLen() == 0 {
		s.enterIdleEpoch()
	}
}

// enterIdleEpoch is decision-epoch case (1): ask the DPM for a timeout.
func (s *Server) enterIdleEpoch() {
	timeout := s.dpm.OnIdle(s.sm.Now(), s)
	switch {
	case timeout < 0 || math.IsNaN(timeout):
		panic(fmt.Sprintf("cluster: server %d DPM returned invalid timeout %v", s.id, timeout))
	case timeout == 0:
		s.beginShutdown()
		s.sync()
	case math.IsInf(timeout, 1):
		// Stay active indefinitely.
	default:
		s.timeout = s.sm.ScheduleAfterArg(timeout, serverTimeoutExpire, s)
	}
}

func (s *Server) onTimeoutExpire() {
	s.timeout = sim.Timer{}
	if s.state != StateActive || s.running != 0 || s.QueueLen() != 0 {
		panic(fmt.Sprintf("cluster: server %d timeout expired in state %v run=%d q=%d",
			s.id, s.state, s.running, s.QueueLen()))
	}
	s.beginShutdown()
	s.sync()
}

func (s *Server) beginShutdown() {
	s.setState(StateShuttingDown)
	s.shutdowns++
	s.trans = s.sm.ScheduleAfterArg(s.cfg.ToffSeconds, serverShutdownComplete, s)
}

func (s *Server) onShutdownComplete() {
	s.trans = sim.Timer{}
	if s.state != StateShuttingDown {
		panic(fmt.Sprintf("cluster: server %d shutdown completion in state %v", s.id, s.state))
	}
	s.setState(StateSleep)
	s.sync()
	if s.QueueLen() > 0 {
		// A job arrived mid-shutdown (Fig. 4(a)): wake right back up.
		s.beginWake()
		s.sync()
	}
}

// FaultHooks bundles the cluster-level callbacks a fault clock reports
// through. OnInterrupt and OnFault must be non-nil for crash/drain kinds;
// OnDegrade, OnDrain, and OnMigrate are consulted only by their own kinds.
type FaultHooks struct {
	OnInterrupt func(t sim.Time, j *Job)
	OnMigrate   func(t sim.Time, j *Job)
	OnFault     func(t sim.Time, s *Server, down bool)
	OnDegrade   func(t sim.Time, s *Server, degraded bool)
	OnDrain     func(t sim.Time, s *Server)
}

// SetFaultClock attaches a deterministic fault clock of the given kind and
// schedules the server's first onset event. A nil clock exempts the server.
// degradeFactor is the fail-slow speed multiplier (ignored for other kinds).
// Call once, before any event fires.
func (s *Server) SetFaultClock(c fault.Clock, kind fault.Kind, degradeFactor float64, hooks FaultHooks) {
	if c == nil {
		return
	}
	s.fclock = c
	s.fkind = kind
	s.degradeTo = s.baseSpeed * degradeFactor
	s.onInterrupt = hooks.OnInterrupt
	s.onMigrate = hooks.OnMigrate
	s.onFault = hooks.OnFault
	s.onDegrade = hooks.OnDegrade
	s.onDrain = hooks.OnDrain
	s.armFault(c.NextFailure())
}

// armFault schedules the next fault onset through the kind's trampoline.
func (s *Server) armFault(delay float64) {
	switch s.fkind {
	case fault.KindDegrade:
		s.flt = s.sm.ScheduleAfterArg(delay, serverDegradeStart, s)
	case fault.KindDrain:
		s.flt = s.sm.ScheduleAfterArg(delay, serverDrainStart, s)
	default:
		s.flt = s.sm.ScheduleAfterArg(delay, serverCrash, s)
	}
}

// onCrash is the crash event. The eviction order is part of the determinism
// contract: state flips to StateDown first (so the transition observer sees
// the failure before any job callback), then running jobs are interrupted in
// start order, then the FCFS queue front to back. Energy integrates at the
// pre-crash power before the draw drops to zero.
func (s *Server) onCrash() {
	s.flt = sim.Timer{}
	now := s.sm.Now()
	if s.timeout.Cancel() {
		s.timeout = sim.Timer{}
	}
	if s.trans.Cancel() {
		s.trans = sim.Timer{}
	}
	s.setState(StateDown)
	s.fails++
	s.downAt = now
	if s.onFault != nil {
		s.onFault(now, s, true)
	}
	for i, j := range s.runJobs {
		j.done.Cancel()
		j.done = sim.Timer{}
		j.srv = nil
		s.runJobs[i] = nil
		s.onInterrupt(now, j)
	}
	s.runJobs = s.runJobs[:0]
	s.running = 0
	s.used = Resources{}
	for s.qhead < len(s.queue) {
		s.onInterrupt(now, s.queuePop())
	}
	s.pending = Resources{}
	s.sync()
	s.flt = s.sm.ScheduleAfterArg(s.fclock.NextRepair(), serverRepair, s)
}

// onRepair is the repair event: the server rejoins cold (StateSleep, empty
// queue) and its next crash is drawn immediately from its own chain.
func (s *Server) onRepair() {
	s.flt = sim.Timer{}
	now := s.sm.Now()
	if s.state != StateDown {
		panic(fmt.Sprintf("cluster: server %d repair in state %v", s.id, s.state))
	}
	s.repairs++
	s.downSec += float64(now - s.downAt)
	s.setState(StateSleep)
	if s.onFault != nil {
		s.onFault(now, s, false)
	}
	s.sync()
	s.armFault(s.fclock.NextFailure())
}

// onDegradeStart is the fail-slow onset: the effective speed drops to
// baseSpeed*factor for jobs that start from now on; already-running jobs
// keep their committed completion instants. Power draw, utilization, and the
// power state are untouched, so no sync is needed — only the speed changes.
func (s *Server) onDegradeStart() {
	s.flt = sim.Timer{}
	now := s.sm.Now()
	s.degraded = true
	s.degradedAt = now
	s.fails++
	s.speed = s.degradeTo
	if s.onDegrade != nil {
		s.onDegrade(now, s, true)
	}
	s.flt = s.sm.ScheduleAfterArg(s.fclock.NextRepair(), serverDegradeEnd, s)
}

// onDegradeEnd restores full speed and draws the next degrade onset.
func (s *Server) onDegradeEnd() {
	s.flt = sim.Timer{}
	now := s.sm.Now()
	s.degraded = false
	s.degradedSec += float64(now - s.degradedAt)
	s.repairs++
	s.speed = s.baseSpeed
	if s.onDegrade != nil {
		s.onDegrade(now, s, false)
	}
	s.flt = s.sm.ScheduleAfterArg(s.fclock.NextFailure(), serverDegradeStart, s)
}

// onDrainStart opens a maintenance window. The ordering mirrors onCrash —
// bookkeeping hook first, then the job cascade — but the cascade is gentler:
// queued jobs migrate (front to back, counted JobsMigrated upstream) instead
// of being interrupted, and running jobs finish in place. The power-off
// happens immediately if nothing is running, else when the last job drains.
func (s *Server) onDrainStart() {
	s.flt = sim.Timer{}
	now := s.sm.Now()
	s.draining = true
	s.drains++
	if s.timeout.Cancel() {
		s.timeout = sim.Timer{}
	}
	if s.onDrain != nil {
		s.onDrain(now, s)
	}
	for s.qhead < len(s.queue) {
		s.onMigrate(now, s.queuePop())
	}
	s.pending = Resources{}
	s.sync()
	if s.running == 0 {
		s.maintenanceDown()
	}
}

// maintenanceDown is the graceful power-off at the end of a drain: same
// StateDown machinery as a crash (zero draw, masked from allocators, repair
// timer pending) but with nothing evicted. onFault fires while draining is
// still set, so the cluster can move the server from its draining count to
// its down count atomically.
func (s *Server) maintenanceDown() {
	now := s.sm.Now()
	if s.trans.Cancel() {
		s.trans = sim.Timer{}
	}
	s.setState(StateDown)
	s.fails++
	s.downAt = now
	if s.onFault != nil {
		s.onFault(now, s, true)
	}
	s.draining = false
	s.sync()
	s.flt = s.sm.ScheduleAfterArg(s.fclock.NextRepair(), serverRepair, s)
}

// Down reports whether the server is currently crashed.
func (s *Server) Down() bool { return s.state == StateDown }

// Failures returns how many crashes have occurred.
func (s *Server) Failures() int64 { return s.fails }

// Repairs returns how many repairs have completed.
func (s *Server) Repairs() int64 { return s.repairs }

// DownSeconds returns the total downtime through t, including the still-open
// interval if the server is down now.
func (s *Server) DownSeconds(t sim.Time) float64 {
	d := s.downSec
	if s.state == StateDown {
		d += float64(t - s.downAt)
	}
	return d
}

// RepairedDownSeconds returns the downtime of completed down intervals only
// (the MTTR numerator).
func (s *Server) RepairedDownSeconds() float64 { return s.downSec }

// RepairAt returns the scheduled repair instant; meaningful only while the
// server is down (the pending fault timer is then the repair event).
func (s *Server) RepairAt() sim.Time { return s.flt.At() }

// Draining reports whether a maintenance window is open but the server is
// still finishing running jobs (it accepts no new work meanwhile).
func (s *Server) Draining() bool { return s.draining }

// Drains returns how many maintenance windows have opened.
func (s *Server) Drains() int64 { return s.drains }

// Degraded reports whether a fail-slow fault currently holds the server at
// reduced speed.
func (s *Server) Degraded() bool { return s.degraded }

// DegradedSeconds returns the total time spent degraded through t, including
// the still-open interval if the server is degraded now.
func (s *Server) DegradedSeconds(t sim.Time) float64 {
	d := s.degradedSec
	if s.degraded {
		d += float64(t - s.degradedAt)
	}
	return d
}

// drainEndsAt returns the instant a draining server runs dry (the latest
// committed completion among its running jobs) — the next time its
// availability can change, used for all-unavailable parking.
func (s *Server) drainEndsAt() sim.Time {
	var at sim.Time
	for _, j := range s.runJobs {
		if j.done.At() > at {
			at = j.done.At()
		}
	}
	return at
}
