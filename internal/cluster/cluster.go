package cluster

import (
	"fmt"
	"math"
	"math/bits"

	"hierdrl/internal/fault"
	"hierdrl/internal/sim"
)

// Config parameterizes a cluster of M servers. By default the cluster is
// homogeneous (every server gets Server verbatim); a non-empty Classes list
// partitions the machines into heterogeneous server classes instead.
type Config struct {
	// M is the number of physical servers (paper evaluates 30 and 40).
	M int
	// Server is the per-server configuration. With Classes set it remains the
	// template every class derives from (capacity, transition times, initial
	// state), each class overriding only speed and power curve.
	Server ServerConfig
	// HotSpotThreshold is the utilization above which the reliability
	// objective starts penalizing a server (hot-spot avoidance, Sec. V-A).
	HotSpotThreshold float64
	// Classes, when non-empty, declares heterogeneous server classes assigned
	// to contiguous id ranges in declaration order (class 0 gets servers
	// [0, Count0), class 1 the next Count1 ids, and so on). The counts must
	// sum to exactly M. An empty list is the historical homogeneous cluster,
	// bit for bit.
	Classes []ServerClass
}

// ServerClass describes one heterogeneous slice of the cluster: Count
// machines sharing a speed factor and a power curve. All other per-server
// parameters (capacity, Ton/Toff, initial state) come from Config.Server.
type ServerClass struct {
	// Name labels the class in docs and tooling (optional).
	Name string
	// Count is how many servers belong to this class (must be positive).
	Count int
	// Speed is the relative execution-speed factor: a job of nominal duration
	// D runs for D/Speed seconds on this class. Zero means 1.0 (nominal);
	// 1.0 leaves service times bitwise unchanged (IEEE x/1.0 == x).
	Speed float64
	// Power is the class's power curve. A zero model inherits Config.Server's
	// power model.
	Power PowerModel
}

// DefaultConfig returns the paper's cluster calibration with M servers.
func DefaultConfig(m int) Config {
	return Config{M: m, Server: DefaultServerConfig(), HotSpotThreshold: 0.8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("cluster: M must be positive, got %d", c.M)
	}
	if c.HotSpotThreshold <= 0 || c.HotSpotThreshold >= 1 {
		return fmt.Errorf("cluster: HotSpotThreshold must be in (0,1), got %v", c.HotSpotThreshold)
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if len(c.Classes) == 0 {
		return nil
	}
	total := 0
	for i, cl := range c.Classes {
		if cl.Count <= 0 {
			return fmt.Errorf("cluster: class %d (%q) Count must be positive, got %d", i, cl.Name, cl.Count)
		}
		if cl.Speed < 0 || math.IsNaN(cl.Speed) || math.IsInf(cl.Speed, 0) {
			return fmt.Errorf("cluster: class %d (%q) Speed must be a non-negative finite factor, got %v", i, cl.Name, cl.Speed)
		}
		if cl.Power != (PowerModel{}) {
			if err := cl.Power.Validate(); err != nil {
				return fmt.Errorf("cluster: class %d (%q): %w", i, cl.Name, err)
			}
		}
		total += cl.Count
	}
	if total != c.M {
		return fmt.Errorf("cluster: class counts sum to %d but M=%d", total, c.M)
	}
	return nil
}

// serverConfigFor derives server i's effective configuration: the shared
// Server template with its class's speed factor and power curve applied.
// Classes own contiguous id ranges in declaration order; with no classes the
// template is returned verbatim (homogeneous cluster).
func (c Config) serverConfigFor(i int) ServerConfig {
	sc := c.Server
	if len(c.Classes) == 0 {
		return sc
	}
	lo := 0
	for _, cl := range c.Classes {
		if i < lo+cl.Count {
			if cl.Speed != 0 {
				sc.Speed = cl.Speed
			}
			if cl.Power != (PowerModel{}) {
				sc.Power = cl.Power
			}
			return sc
		}
		lo += cl.Count
	}
	panic(fmt.Sprintf("cluster: server %d beyond class ranges (sum %d)", i, lo))
}

// shardGroup is one horizontal partition of the cluster: a contiguous server
// range [lo, hi) stepped by its own event lane, carrying its own incremental
// aggregates so no cross-shard cache line is written on the hot path. The
// strict tier is the P=1 special case — one group over all servers, whose
// aggregate arithmetic is instruction-for-instruction the historical
// single-cluster bookkeeping (same accumulators, same update order), so
// strict results are bitwise unchanged.
type shardGroup struct {
	sm     *sim.Simulator
	lo, hi int

	// Incremental aggregates over [lo, hi), all indexed shard-locally.
	totalPower   float64
	jobsInSystem int
	prevPower    []float64
	prevJobs     []int

	// Per-shard reliability partial state: reliTerms caches every local
	// server's per-resource hot-spot penalty term, reliHot is a bitmask of
	// local servers with a non-zero term, and reliSum memoizes the sparse
	// ascending-order partial sum (recomputed only when reliDirty). The
	// global objective is a fixed-shard-order reduction of these partials.
	reliTerms []float64
	reliHot   []uint64
	reliDirty bool
	reliSum   float64

	// jobs is a counting multiset of local jobs-in-system values backing an
	// O(1) running per-shard maximum.
	jobs jobsMultiset

	completed int64
	submitted int64

	// Fault-layer bookkeeping, written only by the shard's own lane (crash
	// and repair events run on it): down counts currently-down local servers
	// (crashed or powered off for maintenance), draining counts local servers
	// with an open maintenance window still finishing jobs, fails counts
	// local fault onsets (crashes, degrade windows, maintenance windows).
	down     int
	draining int
	fails    int64

	// idx, when enabled, maintains the least-committed-server tournament
	// tree over this shard (see LoadIndex).
	idx *LoadIndex

	// Async-mode logs. Exactly one worker goroutine owns a shard during a
	// parallel phase, so appends are single-writer; the coordinator drains
	// them at the epoch barrier (the barrier's synchronization orders the
	// accesses).
	changes    []ChangeRec
	dones      []DoneRec
	trans      []TransRec
	interrupts []InterruptRec
	migrates   []InterruptRec
	degrades   []DegradeRec
	maints     []MaintRec
}

// Cluster aggregates M servers across one or more shard groups, maintains
// incremental totals (power draw, jobs in system, reliability partial sums),
// and exposes the state snapshot the allocation tiers consume.
type Cluster struct {
	cfg     Config
	servers []*Server
	shards  []shardGroup
	shardOf []int32 // server id -> shard index

	// async switches the hot-path callbacks from synchronous dispatch to
	// per-shard logging (parallel tier). logChanges/logTransitions gate the
	// corresponding log streams so runs without a consumer log nothing.
	async          bool
	logChanges     bool
	logTransitions bool

	// OnChange fires after any server changes power draw or occupancy, with
	// aggregates already updated. The global DRL tier uses it to integrate
	// its Eqn. (4) reward exactly. In async mode it must be nil — the
	// Merger's change-feed replay takes its place.
	OnChange func(t sim.Time)
	// OnJobDone fires when any job completes (async mode: replayed at the
	// epoch barrier through DrainDones, in merged time order).
	OnJobDone func(t sim.Time, j *Job)
	// OnTransition fires after any server changes power mode (wake begin,
	// wake complete, shutdown begin, shutdown complete). Nil by default;
	// transitions are rare relative to job events so the forwarding branch
	// costs nothing on the hot path.
	OnTransition func(t sim.Time, server int, from, to PowerState)
	// OnInterrupt fires for every job a crash evicts (strict tier; async
	// mode logs InterruptRecs instead, replayed at the epoch barrier through
	// DrainInterrupts in merged time order).
	OnInterrupt func(t sim.Time, j *Job)
	// OnMigrate fires for every queued job a maintenance drain migrates away
	// (strict tier; async mode replays through DrainMigrates).
	OnMigrate func(t sim.Time, j *Job)
	// OnDegrade fires on fail-slow onset (factor < 1) and restore
	// (factor == 1) — strict tier; async mode replays through DrainDegrades.
	OnDegrade func(t sim.Time, server int, factor float64)
	// OnDrainStart fires when a server's maintenance window opens, before its
	// queue migrates — strict tier; async mode replays through DrainMaints.
	OnDrainStart func(t sim.Time, server int)

	// faults records that EnableFaults installed failure clocks; faultKind
	// and degradeFactor record the installed model's class.
	faults        bool
	faultKind     fault.Kind
	degradeFactor float64
	// dynSpeed marks that effective speeds can change mid-run (fail-slow), so
	// snapshot refreshes must rewrite View.Speed instead of filling it once.
	dynSpeed bool

	// drainCur is the reusable per-shard cursor scratch of the barrier-time
	// log merges (see shard.go).
	drainCur []int
}

// New builds a single-lane cluster (the strict tier). dpmFactory is invoked
// once per server index to produce that server's local power-management
// policy (the paper's distributed local tier: one independent manager per
// machine).
func New(cfg Config, sm *sim.Simulator, dpmFactory func(serverID int) DPMPolicy) (*Cluster, error) {
	return NewSharded(cfg, []*sim.Simulator{sm}, dpmFactory)
}

// NewSharded builds a cluster partitioned into len(lanes) contiguous shard
// groups, server i belonging to the lane of its shard. The factory is still
// invoked in ascending server order regardless of the partitioning, so every
// RNG-splitting factory produces the exact construction-time draw sequence
// of the strict tier.
func NewSharded(cfg Config, lanes []*sim.Simulator, dpmFactory func(serverID int) DPMPolicy) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dpmFactory == nil {
		return nil, fmt.Errorf("cluster: nil DPM factory")
	}
	p := len(lanes)
	if p <= 0 {
		return nil, fmt.Errorf("cluster: no event lanes")
	}
	if p > cfg.M {
		return nil, fmt.Errorf("cluster: %d lanes for %d servers", p, cfg.M)
	}
	for i, sm := range lanes {
		if sm == nil {
			return nil, fmt.Errorf("cluster: nil lane %d", i)
		}
	}
	c := &Cluster{
		cfg:     cfg,
		servers: make([]*Server, cfg.M),
		shards:  make([]shardGroup, p),
		shardOf: make([]int32, cfg.M),
	}
	// Balanced contiguous ranges: the first M%P shards take one extra server.
	base, rem := cfg.M/p, cfg.M%p
	lo := 0
	for s := range c.shards {
		n := base
		if s < rem {
			n++
		}
		g := &c.shards[s]
		g.sm = lanes[s]
		g.lo, g.hi = lo, lo+n
		g.prevPower = make([]float64, n)
		g.prevJobs = make([]int, n)
		g.reliTerms = make([]float64, n*NumResources)
		g.reliHot = make([]uint64, (n+63)/64)
		g.jobs.init(n) // every server starts empty
		for i := g.lo; i < g.hi; i++ {
			c.shardOf[i] = int32(s)
		}
		lo += n
	}
	for i := 0; i < cfg.M; i++ {
		dpm := dpmFactory(i)
		g := &c.shards[c.shardOf[i]]
		s, err := NewServer(i, g.sm, cfg.serverConfigFor(i), dpm)
		if err != nil {
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		s.SetHooks(c.serverUpdated, c.jobDone)
		s.SetTransitionHook(c.serverTransition)
		c.servers[i] = s
		g.prevPower[i-g.lo] = s.Power()
		g.totalPower += s.Power()
	}
	return c, nil
}

// M returns the number of servers.
func (c *Cluster) M() int { return c.cfg.M }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Sim returns the simulator driving the first shard (strict-tier callers,
// which always run one lane).
func (c *Cluster) Sim() *sim.Simulator { return c.shards[0].sm }

// Shards returns the number of shard groups.
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardRange returns the [lo, hi) server range of shard s.
func (c *Cluster) ShardRange(s int) (lo, hi int) { return c.shards[s].lo, c.shards[s].hi }

// ShardOf returns the shard index owning server i.
func (c *Cluster) ShardOf(i int) int { return int(c.shardOf[i]) }

// Lane returns shard s's simulator.
func (c *Cluster) Lane(s int) *sim.Simulator { return c.shards[s].sm }

// Clock returns the most advanced lane clock — for the strict tier, simply
// the clock. (Individual lanes lag behind between epoch barriers.)
func (c *Cluster) Clock() sim.Time {
	now := c.shards[0].sm.Now()
	for i := 1; i < len(c.shards); i++ {
		if t := c.shards[i].sm.Now(); t > now {
			now = t
		}
	}
	return now
}

// SetAsync switches the cluster's observation callbacks into per-shard
// logging mode (the parallel tier): server events append ChangeRec/DoneRec/
// TransRec entries to their shard's log instead of invoking OnChange/
// OnJobDone/OnTransition synchronously, and the coordinator replays the
// merged streams at each epoch barrier. logChanges must be set exactly when
// a change-feed consumer (a Merger) exists; logTransitions exactly when a
// transition observer is attached. OnChange must be nil in async mode.
func (c *Cluster) SetAsync(logChanges, logTransitions bool) {
	if c.OnChange != nil {
		panic("cluster: SetAsync with a synchronous OnChange attached")
	}
	c.async = true
	c.logChanges = logChanges
	c.logTransitions = logTransitions
}

// Submit dispatches job j to the given server at the current time (of the
// server's lane).
func (c *Cluster) Submit(j *Job, server int) {
	if server < 0 || server >= len(c.servers) {
		panic(fmt.Sprintf("cluster: Submit to invalid server %d of %d", server, len(c.servers)))
	}
	// The counter is shard-local: Submit runs on the target server's lane,
	// and one barrier phase may commit dispatches on several lanes at once.
	c.shards[c.shardOf[server]].submitted++
	c.servers[server].Submit(j)
}

// EnableFaults installs per-server fault clocks of the given kind and
// schedules each server's first onset event. clockFor is invoked in ascending
// server order; a nil clock exempts that server. degradeFactor is the
// fail-slow speed multiplier (ignored for other kinds). Call once, before any
// event fires.
func (c *Cluster) EnableFaults(clockFor func(serverID int) fault.Clock, kind fault.Kind, degradeFactor float64) {
	c.faults = true
	c.faultKind = kind
	c.degradeFactor = degradeFactor
	if kind == fault.KindDegrade {
		c.dynSpeed = true
	}
	hooks := FaultHooks{
		OnInterrupt: c.jobInterrupted,
		OnMigrate:   c.jobMigrated,
		OnFault:     c.serverFault,
		OnDegrade:   c.serverDegraded,
		OnDrain:     c.serverDrain,
	}
	for i, s := range c.servers {
		s.SetFaultClock(clockFor(i), kind, degradeFactor, hooks)
	}
}

// FaultsEnabled reports whether EnableFaults has been called.
func (c *Cluster) FaultsEnabled() bool { return c.faults }

// FaultKind returns the installed fault model's class (KindCrash when no
// faults are enabled).
func (c *Cluster) FaultKind() fault.Kind { return c.faultKind }

// serverFault maintains the shard-local down/failure counters. It runs on
// the failing server's own lane (single-writer), before the eviction
// cascade. A maintenance power-off arrives with s.draining still set, so the
// server moves from the draining count to the down count atomically.
func (c *Cluster) serverFault(t sim.Time, s *Server, down bool) {
	g := &c.shards[c.shardOf[s.ID()]]
	if down {
		g.down++
		g.fails++
		if s.draining {
			g.draining--
		}
	} else {
		g.down--
	}
}

// serverDegraded maintains the shard-local fault counter for fail-slow
// onsets and forwards the event (synchronously in the strict tier, via the
// shard's degrade log in async mode).
func (c *Cluster) serverDegraded(t sim.Time, s *Server, degraded bool) {
	g := &c.shards[c.shardOf[s.ID()]]
	factor := 1.0
	if degraded {
		g.fails++
		factor = c.degradeFactor
	}
	if c.async {
		g.degrades = append(g.degrades, DegradeRec{At: t, Server: int32(s.ID()), Factor: factor})
		return
	}
	if c.OnDegrade != nil {
		c.OnDegrade(t, s.ID(), factor)
	}
}

// serverDrain maintains the shard-local draining counter and forwards the
// window-open event.
func (c *Cluster) serverDrain(t sim.Time, s *Server) {
	g := &c.shards[c.shardOf[s.ID()]]
	g.draining++
	if c.async {
		g.maints = append(g.maints, MaintRec{At: t, Server: int32(s.ID())})
		return
	}
	if c.OnDrainStart != nil {
		c.OnDrainStart(t, s.ID())
	}
}

// jobMigrated forwards one drain-migrated job: synchronously through
// OnMigrate in the strict tier, via the shard's migrate log in async mode
// (unconditional there — re-dispatch handling is mandatory whenever faults
// are enabled, exactly like interrupts).
func (c *Cluster) jobMigrated(t sim.Time, j *Job) {
	if c.async {
		g := &c.shards[c.shardOf[j.Server]]
		g.migrates = append(g.migrates, InterruptRec{At: t, J: j})
		return
	}
	if c.OnMigrate != nil {
		c.OnMigrate(t, j)
	}
}

// jobInterrupted forwards one crash-evicted job: synchronously through
// OnInterrupt in the strict tier, via the shard's interrupt log in async
// mode (logging is unconditional there — requeue handling is mandatory
// whenever faults are enabled).
func (c *Cluster) jobInterrupted(t sim.Time, j *Job) {
	if c.async {
		g := &c.shards[c.shardOf[j.Server]]
		g.interrupts = append(g.interrupts, InterruptRec{At: t, J: j})
		return
	}
	if c.OnInterrupt != nil {
		c.OnInterrupt(t, j)
	}
}

// DownServers returns how many servers are currently crashed (parallel
// tier: barrier-time only, like every aggregate).
func (c *Cluster) DownServers() int {
	n := c.shards[0].down
	for i := 1; i < len(c.shards); i++ {
		n += c.shards[i].down
	}
	return n
}

// Failures returns the total crash count so far.
func (c *Cluster) Failures() int64 {
	n := c.shards[0].fails
	for i := 1; i < len(c.shards); i++ {
		n += c.shards[i].fails
	}
	return n
}

// Repairs returns the total completed-repair count so far.
func (c *Cluster) Repairs() int64 {
	var n int64
	for _, s := range c.servers {
		n += s.Repairs()
	}
	return n
}

// Down reports whether server i is currently crashed.
func (c *Cluster) Down(i int) bool { return c.servers[i].Down() }

// Accepting reports whether server i can take new work: neither down nor
// draining for maintenance.
func (c *Cluster) Accepting(i int) bool {
	s := c.servers[i]
	return s.state != StateDown && !s.draining
}

// UnavailableServers returns how many servers currently reject new work —
// down (crashed or maintenance) plus draining. With no drain model it equals
// DownServers. Parallel tier: barrier-time only, like every aggregate.
func (c *Cluster) UnavailableServers() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].down + c.shards[i].draining
	}
	return n
}

// NextUp returns the first accepting server scanning cyclically upward from
// `from` — the graceful-degradation remap applied when an allocator's pick
// is dead or draining. Returns from itself when it accepts work, -1 when no
// server does.
func (c *Cluster) NextUp(from int) int {
	m := len(c.servers)
	for k := 0; k < m; k++ {
		i := from + k
		if i >= m {
			i -= m
		}
		if c.Accepting(i) {
			return i
		}
	}
	return -1
}

// NextRepairAt returns the earliest scheduled repair instant among down
// servers. Call only while at least one server is down.
func (c *Cluster) NextRepairAt() sim.Time {
	best := sim.Time(math.MaxFloat64)
	found := false
	for _, s := range c.servers {
		if s.Down() {
			if at := s.RepairAt(); !found || at < best {
				best, found = at, true
			}
		}
	}
	if !found {
		panic("cluster: NextRepairAt with no server down")
	}
	return best
}

// NextAvailAt returns the earliest instant an unavailable server's state can
// next change: the soonest repair among down servers, or the soonest run-dry
// instant among draining servers (whose graceful power-off then schedules the
// real repair — parking there makes progress because the completion event
// fires first at that instant). Call only while at least one server is
// unavailable; with no drain model it equals NextRepairAt.
func (c *Cluster) NextAvailAt() sim.Time {
	best := sim.Time(math.MaxFloat64)
	found := false
	for _, s := range c.servers {
		var at sim.Time
		switch {
		case s.Down():
			at = s.RepairAt()
		case s.draining:
			at = s.drainEndsAt()
		default:
			continue
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	if !found {
		panic("cluster: NextAvailAt with no server unavailable")
	}
	return best
}

// Drains returns the total maintenance windows opened so far.
func (c *Cluster) Drains() int64 {
	var n int64
	for _, s := range c.servers {
		n += s.Drains()
	}
	return n
}

// DegradedSeconds integrates every server's fail-slow time through t.
func (c *Cluster) DegradedSeconds(t sim.Time) float64 {
	var d float64
	for _, s := range c.servers {
		d += s.DegradedSeconds(t)
	}
	return d
}

// DownSeconds integrates every server's downtime through t (the
// availability integral's numerator).
func (c *Cluster) DownSeconds(t sim.Time) float64 {
	var d float64
	for _, s := range c.servers {
		d += s.DownSeconds(t)
	}
	return d
}

// RepairedDownSeconds sums completed down intervals across servers (the
// MTTR numerator).
func (c *Cluster) RepairedDownSeconds() float64 {
	var d float64
	for _, s := range c.servers {
		d += s.RepairedDownSeconds()
	}
	return d
}

func (c *Cluster) serverUpdated(t sim.Time, s *Server) {
	i := s.ID()
	g := &c.shards[c.shardOf[i]]
	li := i - g.lo
	jobs := s.JobsInSystem()
	g.totalPower += s.Power() - g.prevPower[li]
	g.jobsInSystem += jobs - g.prevJobs[li]
	if old := g.prevJobs[li]; old != jobs {
		g.jobs.move(old, jobs)
	}
	g.prevPower[li] = s.Power()
	g.prevJobs[li] = jobs
	updateReliTerms(g.reliTerms, g.reliHot, li, s.CommittedUtilization(), c.cfg.HotSpotThreshold)
	g.reliDirty = true
	if g.idx != nil {
		g.idx.Update(li, s.CommittedLoad())
	}
	if c.async {
		if c.logChanges {
			g.changes = append(g.changes, ChangeRec{
				At:     t,
				Server: int32(i),
				Jobs:   int32(jobs),
				Power:  s.Power(),
				CU:     s.CommittedUtilization(),
			})
		}
		return
	}
	if c.OnChange != nil {
		c.OnChange(t)
	}
}

// updateReliTerms recomputes one server's hot-spot penalty terms (the only
// terms a single-server event can change) and its bit in the hot mask; local
// is the index within terms/hot. The per-term arithmetic is exactly the full
// scan's, so the cached values are bitwise identical to freshly computed
// ones. Shared verbatim by the per-shard partial state and the Merger's
// strict-order global replay.
func updateReliTerms(terms []float64, hot []uint64, local int, u Resources, theta float64) {
	denom := (1 - theta) * (1 - theta)
	base := local * NumResources
	any := false
	for p, v := range u {
		if over := v - theta; over > 0 {
			terms[base+p] = over * over / denom
			any = true
		} else {
			terms[base+p] = 0
		}
	}
	if any {
		hot[local/64] |= 1 << (uint(local) % 64)
	} else {
		hot[local/64] &^= 1 << (uint(local) % 64)
	}
}

// sparseReliSum sums the non-zero cached penalty terms in ascending index
// order. Skipped terms are exactly 0.0 and adding 0.0 to a non-negative
// accumulator is exact, so the sparse sum is bitwise identical to a full
// in-order rescan of the cached terms.
func sparseReliSum(terms []float64, hot []uint64) float64 {
	var s float64
	for w, word := range hot {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			base := (w*64 + b) * NumResources
			for p := 0; p < NumResources; p++ {
				if t := terms[base+p]; t != 0 {
					s += t
				}
			}
		}
	}
	return s
}

// reliPartial returns the shard's cached hot-spot partial sum, rescanned
// only when a server event dirtied it. The cached value is the rescan's
// value, so memoization never changes a bit.
func (g *shardGroup) reliPartial() float64 {
	if g.reliDirty {
		g.reliSum = sparseReliSum(g.reliTerms, g.reliHot)
		g.reliDirty = false
	}
	return g.reliSum
}

func (c *Cluster) serverTransition(t sim.Time, s *Server, from, to PowerState) {
	if c.async {
		if c.logTransitions {
			g := &c.shards[c.shardOf[s.ID()]]
			g.trans = append(g.trans, TransRec{At: t, Server: int32(s.ID()), From: from, To: to})
		}
		return
	}
	if c.OnTransition != nil {
		c.OnTransition(t, s.ID(), from, to)
	}
}

func (c *Cluster) jobDone(t sim.Time, j *Job) {
	g := &c.shards[c.shardOf[j.Server]]
	g.completed++
	if c.async {
		g.dones = append(g.dones, DoneRec{At: t, J: j})
		return
	}
	if c.OnJobDone != nil {
		c.OnJobDone(t, j)
	}
}

// TotalPower returns the cluster's instantaneous draw in watts: the
// fixed-order reduction of the per-shard incremental accumulators (see
// InvariantCheck for the O(M) recomputation). Parallel tier: barrier-time
// only.
func (c *Cluster) TotalPower() float64 {
	p := c.shards[0].totalPower
	for i := 1; i < len(c.shards); i++ {
		p += c.shards[i].totalPower
	}
	return p
}

// JobsInSystem returns the number of jobs queued or running anywhere.
func (c *Cluster) JobsInSystem() int {
	n := c.shards[0].jobsInSystem
	for i := 1; i < len(c.shards); i++ {
		n += c.shards[i].jobsInSystem
	}
	return n
}

// Submitted returns the number of jobs dispatched so far.
func (c *Cluster) Submitted() int64 {
	n := c.shards[0].submitted
	for i := 1; i < len(c.shards); i++ {
		n += c.shards[i].submitted
	}
	return n
}

// Completed returns the number of jobs finished so far.
func (c *Cluster) Completed() int64 {
	n := c.shards[0].completed
	for i := 1; i < len(c.shards); i++ {
		n += c.shards[i].completed
	}
	return n
}

// TotalEnergyJoules integrates every server's energy through time t.
func (c *Cluster) TotalEnergyJoules(t sim.Time) float64 {
	var e float64
	for _, s := range c.servers {
		e += s.EnergyJoules(t)
	}
	return e
}

// RangeEnergyJoules integrates energy through time t over servers [lo, hi).
// Server classes occupy contiguous index ranges, so per-class rollups are
// range sums.
func (c *Cluster) RangeEnergyJoules(t sim.Time, lo, hi int) float64 {
	var e float64
	for i := lo; i < hi; i++ {
		e += c.servers[i].EnergyJoules(t)
	}
	return e
}

// ServerClasses returns the configured heterogeneous classes (nil for a
// homogeneous cluster). Classes map onto contiguous server-index ranges in
// declaration order.
func (c *Cluster) ServerClasses() []ServerClass { return c.cfg.Classes }

// ReliabilityObj returns the Reli(t) term of the global reward (Eqn. 4):
// a hot-spot penalty sum_m sum_p max(0, u_mp - theta)^2 / (1-theta)^2 over
// the *committed* utilization (running plus queued demand — a backlogged
// server is the hottest spot there is), plus a co-location pressure term:
// the job count on the most loaded server (VM stacking on one failure
// domain). The paper motivates load balancing and anti-co-location but gives
// no formula; DESIGN.md records this concretization. Both terms increase
// when load piles onto individual machines, so the penalty is monotone in
// exactly the placements reliability engineering forbids.
// The value is maintained incrementally as per-shard partial sums (each
// server event refreshes only that server's cached penalty terms and dirties
// its shard's partial), reduced here in fixed ascending shard order. With
// one shard this is the historical sparse ascending sum, bit for bit; the
// parallel tier's bitwise-exact change feed instead flows through the
// Merger, which replays the strict global summation order.
func (c *Cluster) ReliabilityObj() float64 {
	hot := c.shards[0].reliPartial()
	maxJobs := c.shards[0].jobs.max
	for i := 1; i < len(c.shards); i++ {
		g := &c.shards[i]
		hot += g.reliPartial()
		if g.jobs.max > maxJobs {
			maxJobs = g.jobs.max
		}
	}
	return hot + float64(maxJobs)
}

// reliabilityRecompute is the reference scan of the reliability objective,
// recomputing every penalty term from live server state in the same
// per-shard partial-sum order the incremental path reduces in, so the
// comparison is exact at any shard count. InvariantCheck and the equivalence
// tests compare it against the incremental value bit for bit.
func (c *Cluster) reliabilityRecompute() float64 {
	theta := c.cfg.HotSpotThreshold
	denom := (1 - theta) * (1 - theta)
	var hot float64
	maxJobs := 0
	for gi := range c.shards {
		g := &c.shards[gi]
		var part float64
		for i := g.lo; i < g.hi; i++ {
			s := c.servers[i]
			u := s.CommittedUtilization()
			for _, v := range u {
				if over := v - theta; over > 0 {
					part += over * over / denom
				}
			}
			if n := s.JobsInSystem(); n > maxJobs {
				maxJobs = n
			}
		}
		hot += part
	}
	return hot + float64(maxJobs)
}

// View is an immutable snapshot of cluster state handed to allocators.
type View struct {
	Now      sim.Time
	M        int
	Util     []Resources  // running utilization per server
	Pending  []Resources  // queued demand per server
	QueueLen []int        // waiting jobs per server
	InSystem []int        // waiting + running per server
	State    []PowerState // power mode per server
	// Speed is each server's effective execution-speed factor (all 1.0 on a
	// homogeneous cluster). Without a fail-slow fault model speeds are
	// immutable after construction, so the slice is filled once when the
	// view is first sized; under the degrade model SnapshotRange refreshes
	// it, so allocators see degraded capacity. Hand-built views may leave it
	// nil; speed-aware allocators must treat nil as "all nominal".
	Speed []float64
}

// Snapshot captures the current state of every server into a freshly
// allocated View. Hot paths should hold one View and use SnapshotInto.
func (c *Cluster) Snapshot() *View {
	return c.SnapshotInto(&View{})
}

// SnapshotPrepare sizes v's slices for this cluster (allocating only when
// not already sized) and stamps M, without refreshing any server state. The
// parallel tier prepares the shared view once, then each shard worker
// refreshes its own disjoint range through SnapshotRange — the per-shard
// view "buffers" alias non-overlapping sections of one backing array, so the
// merge is free and the whole refresh is allocation-free once warm.
func (c *Cluster) SnapshotPrepare(v *View) {
	m := len(c.servers)
	if len(v.Util) != m {
		v.Util = make([]Resources, m)
		v.Pending = make([]Resources, m)
		v.QueueLen = make([]int, m)
		v.InSystem = make([]int, m)
		v.State = make([]PowerState, m)
	}
	if len(v.Speed) != m {
		v.Speed = make([]float64, m)
		for i, s := range c.servers {
			v.Speed[i] = s.Speed()
		}
	}
	v.M = m
}

// SnapshotRange refreshes servers [lo, hi) of a prepared view. Distinct
// ranges touch disjoint memory, so concurrent refreshes of different shards'
// ranges are race-free.
func (c *Cluster) SnapshotRange(v *View, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := c.servers[i]
		v.Util[i] = s.Utilization()
		v.Pending[i] = s.PendingDemand()
		v.QueueLen[i] = s.QueueLen()
		v.InSystem[i] = s.JobsInSystem()
		v.State[i] = s.State()
	}
	// Speed is refreshed only under a fail-slow model: the branch keeps the
	// fault-free refresh loop (and its zero-alloc pin) byte-identical.
	if c.dynSpeed && v.Speed != nil {
		for i := lo; i < hi; i++ {
			v.Speed[i] = c.servers[i].Speed()
		}
	}
}

// SnapshotInto captures the current state of every server into v, reusing
// its slices when already sized for this cluster. After the first call on a
// given View the refresh is allocation-free. It returns v for convenience.
func (c *Cluster) SnapshotInto(v *View) *View {
	c.SnapshotPrepare(v)
	v.Now = c.Clock()
	c.SnapshotRange(v, 0, len(c.servers))
	return v
}

// InvariantCheck recomputes the aggregates from scratch and panics if the
// incremental bookkeeping drifted. Tests call it liberally.
func (c *Cluster) InvariantCheck() {
	var power float64
	jobs := 0
	for _, s := range c.servers {
		power += s.Power()
		jobs += s.JobsInSystem()
	}
	if math.Abs(power-c.TotalPower()) > 1e-6 {
		panic(fmt.Sprintf("cluster: power drift: incremental %v recomputed %v",
			c.TotalPower(), power))
	}
	if jobs != c.JobsInSystem() {
		panic(fmt.Sprintf("cluster: jobs drift: incremental %d recomputed %d",
			c.JobsInSystem(), jobs))
	}
	if inc, ref := c.ReliabilityObj(), c.reliabilityRecompute(); inc != ref {
		panic(fmt.Sprintf("cluster: reliability drift: incremental %v recomputed %v",
			inc, ref))
	}
	down := 0
	for _, s := range c.servers {
		if s.Down() {
			down++
		}
	}
	if down != c.DownServers() {
		panic(fmt.Sprintf("cluster: down-server drift: incremental %d recomputed %d",
			c.DownServers(), down))
	}
	unavail := 0
	for _, s := range c.servers {
		if s.Down() || s.Draining() {
			unavail++
		}
	}
	if unavail != c.UnavailableServers() {
		panic(fmt.Sprintf("cluster: unavailable-server drift: incremental %d recomputed %d",
			c.UnavailableServers(), unavail))
	}
	for s := range c.shards {
		if idx := c.shards[s].idx; idx != nil {
			idx.invariantCheck(c, c.shards[s].lo)
		}
	}
}

// jobsMultiset is a counting multiset of per-server jobs-in-system values
// backing an O(1) amortized running maximum. The shard groups and the
// Merger share it so both maintain the co-location term with identical
// (integer, hence exact) arithmetic.
type jobsMultiset struct {
	buckets []int
	max     int
}

func (m *jobsMultiset) init(servers int) {
	m.buckets = make([]int, 8)
	m.buckets[0] = servers // every server starts empty
	m.max = 0
}

// move shifts one server's jobs-in-system count between buckets and
// maintains the running maximum.
func (m *jobsMultiset) move(old, now int) {
	m.buckets[old]--
	if now >= len(m.buckets) {
		grown := make([]int, 2*now+1)
		copy(grown, m.buckets)
		m.buckets = grown
	}
	m.buckets[now]++
	if now > m.max {
		m.max = now
	} else if old == m.max && m.buckets[old] == 0 {
		for m.max > 0 && m.buckets[m.max] == 0 {
			m.max--
		}
	}
}
