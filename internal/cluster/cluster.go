package cluster

import (
	"fmt"
	"math"

	"hierdrl/internal/sim"
)

// Config parameterizes a homogeneous cluster of M servers.
type Config struct {
	// M is the number of physical servers (paper evaluates 30 and 40).
	M int
	// Server is the per-server configuration.
	Server ServerConfig
	// HotSpotThreshold is the utilization above which the reliability
	// objective starts penalizing a server (hot-spot avoidance, Sec. V-A).
	HotSpotThreshold float64
}

// DefaultConfig returns the paper's cluster calibration with M servers.
func DefaultConfig(m int) Config {
	return Config{M: m, Server: DefaultServerConfig(), HotSpotThreshold: 0.8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("cluster: M must be positive, got %d", c.M)
	}
	if c.HotSpotThreshold <= 0 || c.HotSpotThreshold >= 1 {
		return fmt.Errorf("cluster: HotSpotThreshold must be in (0,1), got %v", c.HotSpotThreshold)
	}
	return c.Server.Validate()
}

// Cluster aggregates M servers, maintains incremental totals (power draw,
// jobs in system), and exposes the state snapshot the allocation tiers
// consume.
type Cluster struct {
	cfg     Config
	sm      *sim.Simulator
	servers []*Server

	totalPower   float64
	jobsInSystem int
	prevPower    []float64
	prevJobs     []int

	// OnChange fires after any server changes power draw or occupancy, with
	// aggregates already updated. The global DRL tier uses it to integrate
	// its Eqn. (4) reward exactly.
	OnChange func(t sim.Time)
	// OnJobDone fires when any job completes.
	OnJobDone func(t sim.Time, j *Job)

	submitted int64
	completed int64
}

// New builds a cluster. dpmFactory is invoked once per server index to
// produce that server's local power-management policy (the paper's
// distributed local tier: one independent manager per machine).
func New(cfg Config, sm *sim.Simulator, dpmFactory func(serverID int) DPMPolicy) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dpmFactory == nil {
		return nil, fmt.Errorf("cluster: nil DPM factory")
	}
	c := &Cluster{
		cfg:       cfg,
		sm:        sm,
		servers:   make([]*Server, cfg.M),
		prevPower: make([]float64, cfg.M),
		prevJobs:  make([]int, cfg.M),
	}
	for i := 0; i < cfg.M; i++ {
		dpm := dpmFactory(i)
		s, err := NewServer(i, sm, cfg.Server, dpm)
		if err != nil {
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		s.SetHooks(c.serverUpdated, c.jobDone)
		c.servers[i] = s
		c.prevPower[i] = s.Power()
		c.totalPower += s.Power()
	}
	return c, nil
}

// M returns the number of servers.
func (c *Cluster) M() int { return c.cfg.M }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Sim returns the simulator driving this cluster.
func (c *Cluster) Sim() *sim.Simulator { return c.sm }

// Submit dispatches job j to the given server at the current time.
func (c *Cluster) Submit(j *Job, server int) {
	if server < 0 || server >= len(c.servers) {
		panic(fmt.Sprintf("cluster: Submit to invalid server %d of %d", server, len(c.servers)))
	}
	c.submitted++
	c.servers[server].Submit(j)
}

func (c *Cluster) serverUpdated(t sim.Time, s *Server) {
	i := s.ID()
	c.totalPower += s.Power() - c.prevPower[i]
	c.jobsInSystem += s.JobsInSystem() - c.prevJobs[i]
	c.prevPower[i] = s.Power()
	c.prevJobs[i] = s.JobsInSystem()
	if c.OnChange != nil {
		c.OnChange(t)
	}
}

func (c *Cluster) jobDone(t sim.Time, j *Job) {
	c.completed++
	if c.OnJobDone != nil {
		c.OnJobDone(t, j)
	}
}

// TotalPower returns the cluster's instantaneous draw in watts (maintained
// incrementally; see InvariantCheck for the O(M) recomputation).
func (c *Cluster) TotalPower() float64 { return c.totalPower }

// JobsInSystem returns the number of jobs queued or running anywhere.
func (c *Cluster) JobsInSystem() int { return c.jobsInSystem }

// Submitted returns the number of jobs dispatched so far.
func (c *Cluster) Submitted() int64 { return c.submitted }

// Completed returns the number of jobs finished so far.
func (c *Cluster) Completed() int64 { return c.completed }

// TotalEnergyJoules integrates every server's energy through time t.
func (c *Cluster) TotalEnergyJoules(t sim.Time) float64 {
	var e float64
	for _, s := range c.servers {
		e += s.EnergyJoules(t)
	}
	return e
}

// ReliabilityObj returns the Reli(t) term of the global reward (Eqn. 4):
// a hot-spot penalty sum_m sum_p max(0, u_mp - theta)^2 / (1-theta)^2 over
// the *committed* utilization (running plus queued demand — a backlogged
// server is the hottest spot there is), plus a co-location pressure term:
// the job count on the most loaded server (VM stacking on one failure
// domain). The paper motivates load balancing and anti-co-location but gives
// no formula; DESIGN.md records this concretization. Both terms increase
// when load piles onto individual machines, so the penalty is monotone in
// exactly the placements reliability engineering forbids.
func (c *Cluster) ReliabilityObj() float64 {
	theta := c.cfg.HotSpotThreshold
	denom := (1 - theta) * (1 - theta)
	var hot float64
	maxJobs := 0
	for _, s := range c.servers {
		u := s.CommittedUtilization()
		for _, v := range u {
			if over := v - theta; over > 0 {
				hot += over * over / denom
			}
		}
		if n := s.JobsInSystem(); n > maxJobs {
			maxJobs = n
		}
	}
	return hot + float64(maxJobs)
}

// View is an immutable snapshot of cluster state handed to allocators.
type View struct {
	Now      sim.Time
	M        int
	Util     []Resources  // running utilization per server
	Pending  []Resources  // queued demand per server
	QueueLen []int        // waiting jobs per server
	InSystem []int        // waiting + running per server
	State    []PowerState // power mode per server
}

// Snapshot captures the current state of every server.
func (c *Cluster) Snapshot() *View {
	v := &View{
		Now:      c.sm.Now(),
		M:        len(c.servers),
		Util:     make([]Resources, len(c.servers)),
		Pending:  make([]Resources, len(c.servers)),
		QueueLen: make([]int, len(c.servers)),
		InSystem: make([]int, len(c.servers)),
		State:    make([]PowerState, len(c.servers)),
	}
	for i, s := range c.servers {
		v.Util[i] = s.Utilization()
		v.Pending[i] = s.PendingDemand()
		v.QueueLen[i] = s.QueueLen()
		v.InSystem[i] = s.JobsInSystem()
		v.State[i] = s.State()
	}
	return v
}

// InvariantCheck recomputes the aggregates from scratch and panics if the
// incremental bookkeeping drifted. Tests call it liberally.
func (c *Cluster) InvariantCheck() {
	var power float64
	jobs := 0
	for _, s := range c.servers {
		power += s.Power()
		jobs += s.JobsInSystem()
	}
	if math.Abs(power-c.totalPower) > 1e-6 {
		panic(fmt.Sprintf("cluster: power drift: incremental %v recomputed %v",
			c.totalPower, power))
	}
	if jobs != c.jobsInSystem {
		panic(fmt.Sprintf("cluster: jobs drift: incremental %d recomputed %d",
			c.jobsInSystem, jobs))
	}
}
