package cluster

import (
	"fmt"
	"math"
	"math/bits"

	"hierdrl/internal/sim"
)

// Config parameterizes a homogeneous cluster of M servers.
type Config struct {
	// M is the number of physical servers (paper evaluates 30 and 40).
	M int
	// Server is the per-server configuration.
	Server ServerConfig
	// HotSpotThreshold is the utilization above which the reliability
	// objective starts penalizing a server (hot-spot avoidance, Sec. V-A).
	HotSpotThreshold float64
}

// DefaultConfig returns the paper's cluster calibration with M servers.
func DefaultConfig(m int) Config {
	return Config{M: m, Server: DefaultServerConfig(), HotSpotThreshold: 0.8}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("cluster: M must be positive, got %d", c.M)
	}
	if c.HotSpotThreshold <= 0 || c.HotSpotThreshold >= 1 {
		return fmt.Errorf("cluster: HotSpotThreshold must be in (0,1), got %v", c.HotSpotThreshold)
	}
	return c.Server.Validate()
}

// Cluster aggregates M servers, maintains incremental totals (power draw,
// jobs in system), and exposes the state snapshot the allocation tiers
// consume.
type Cluster struct {
	cfg     Config
	sm      *sim.Simulator
	servers []*Server

	totalPower   float64
	jobsInSystem int
	prevPower    []float64
	prevJobs     []int

	// Incremental reliability-objective state. reliTerms caches every
	// server's per-resource hot-spot penalty term (M*NumResources entries,
	// server-major); reliHot is a bitmask of servers with at least one
	// non-zero term, so ReliabilityObj sums sparsely over hot servers in
	// ascending order instead of rescanning all M servers per event.
	// jobBuckets is a counting multiset of per-server jobs-in-system values
	// backing an O(1) running maximum.
	reliTerms  []float64
	reliHot    []uint64
	jobBuckets []int
	maxJobs    int

	// OnChange fires after any server changes power draw or occupancy, with
	// aggregates already updated. The global DRL tier uses it to integrate
	// its Eqn. (4) reward exactly.
	OnChange func(t sim.Time)
	// OnJobDone fires when any job completes.
	OnJobDone func(t sim.Time, j *Job)
	// OnTransition fires after any server changes power mode (wake begin,
	// wake complete, shutdown begin, shutdown complete). Nil by default;
	// transitions are rare relative to job events so the forwarding branch
	// costs nothing on the hot path.
	OnTransition func(t sim.Time, server int, from, to PowerState)

	submitted int64
	completed int64
}

// New builds a cluster. dpmFactory is invoked once per server index to
// produce that server's local power-management policy (the paper's
// distributed local tier: one independent manager per machine).
func New(cfg Config, sm *sim.Simulator, dpmFactory func(serverID int) DPMPolicy) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dpmFactory == nil {
		return nil, fmt.Errorf("cluster: nil DPM factory")
	}
	c := &Cluster{
		cfg:        cfg,
		sm:         sm,
		servers:    make([]*Server, cfg.M),
		prevPower:  make([]float64, cfg.M),
		prevJobs:   make([]int, cfg.M),
		reliTerms:  make([]float64, cfg.M*NumResources),
		reliHot:    make([]uint64, (cfg.M+63)/64),
		jobBuckets: make([]int, 8),
	}
	c.jobBuckets[0] = cfg.M // every server starts empty
	for i := 0; i < cfg.M; i++ {
		dpm := dpmFactory(i)
		s, err := NewServer(i, sm, cfg.Server, dpm)
		if err != nil {
			return nil, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		s.SetHooks(c.serverUpdated, c.jobDone)
		s.SetTransitionHook(c.serverTransition)
		c.servers[i] = s
		c.prevPower[i] = s.Power()
		c.totalPower += s.Power()
	}
	return c, nil
}

// M returns the number of servers.
func (c *Cluster) M() int { return c.cfg.M }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Sim returns the simulator driving this cluster.
func (c *Cluster) Sim() *sim.Simulator { return c.sm }

// Submit dispatches job j to the given server at the current time.
func (c *Cluster) Submit(j *Job, server int) {
	if server < 0 || server >= len(c.servers) {
		panic(fmt.Sprintf("cluster: Submit to invalid server %d of %d", server, len(c.servers)))
	}
	c.submitted++
	c.servers[server].Submit(j)
}

func (c *Cluster) serverUpdated(t sim.Time, s *Server) {
	i := s.ID()
	jobs := s.JobsInSystem()
	c.totalPower += s.Power() - c.prevPower[i]
	c.jobsInSystem += jobs - c.prevJobs[i]
	if old := c.prevJobs[i]; old != jobs {
		c.bucketMove(old, jobs)
	}
	c.prevPower[i] = s.Power()
	c.prevJobs[i] = jobs
	c.updateReliTerms(i, s)
	if c.OnChange != nil {
		c.OnChange(t)
	}
}

// bucketMove shifts one server's jobs-in-system count between multiset
// buckets and maintains the running maximum in O(1) amortized time.
func (c *Cluster) bucketMove(old, now int) {
	c.jobBuckets[old]--
	if now >= len(c.jobBuckets) {
		grown := make([]int, 2*now+1)
		copy(grown, c.jobBuckets)
		c.jobBuckets = grown
	}
	c.jobBuckets[now]++
	if now > c.maxJobs {
		c.maxJobs = now
	} else if old == c.maxJobs && c.jobBuckets[old] == 0 {
		for c.maxJobs > 0 && c.jobBuckets[c.maxJobs] == 0 {
			c.maxJobs--
		}
	}
}

// updateReliTerms recomputes server i's hot-spot penalty terms (the only
// terms a single-server event can change) and its bit in the hot mask. The
// per-term arithmetic is exactly the full scan's, so the cached values are
// bitwise identical to freshly computed ones.
func (c *Cluster) updateReliTerms(i int, s *Server) {
	theta := c.cfg.HotSpotThreshold
	denom := (1 - theta) * (1 - theta)
	u := s.CommittedUtilization()
	base := i * NumResources
	any := false
	for p, v := range u {
		if over := v - theta; over > 0 {
			c.reliTerms[base+p] = over * over / denom
			any = true
		} else {
			c.reliTerms[base+p] = 0
		}
	}
	if any {
		c.reliHot[i/64] |= 1 << (uint(i) % 64)
	} else {
		c.reliHot[i/64] &^= 1 << (uint(i) % 64)
	}
}

func (c *Cluster) serverTransition(t sim.Time, s *Server, from, to PowerState) {
	if c.OnTransition != nil {
		c.OnTransition(t, s.ID(), from, to)
	}
}

func (c *Cluster) jobDone(t sim.Time, j *Job) {
	c.completed++
	if c.OnJobDone != nil {
		c.OnJobDone(t, j)
	}
}

// TotalPower returns the cluster's instantaneous draw in watts (maintained
// incrementally; see InvariantCheck for the O(M) recomputation).
func (c *Cluster) TotalPower() float64 { return c.totalPower }

// JobsInSystem returns the number of jobs queued or running anywhere.
func (c *Cluster) JobsInSystem() int { return c.jobsInSystem }

// Submitted returns the number of jobs dispatched so far.
func (c *Cluster) Submitted() int64 { return c.submitted }

// Completed returns the number of jobs finished so far.
func (c *Cluster) Completed() int64 { return c.completed }

// TotalEnergyJoules integrates every server's energy through time t.
func (c *Cluster) TotalEnergyJoules(t sim.Time) float64 {
	var e float64
	for _, s := range c.servers {
		e += s.EnergyJoules(t)
	}
	return e
}

// ReliabilityObj returns the Reli(t) term of the global reward (Eqn. 4):
// a hot-spot penalty sum_m sum_p max(0, u_mp - theta)^2 / (1-theta)^2 over
// the *committed* utilization (running plus queued demand — a backlogged
// server is the hottest spot there is), plus a co-location pressure term:
// the job count on the most loaded server (VM stacking on one failure
// domain). The paper motivates load balancing and anti-co-location but gives
// no formula; DESIGN.md records this concretization. Both terms increase
// when load piles onto individual machines, so the penalty is monotone in
// exactly the placements reliability engineering forbids.
// The value is maintained incrementally: each server event refreshes only
// that server's cached penalty terms, and this accessor sums the non-zero
// terms sparsely in ascending server order. Skipped terms are exactly 0.0
// and adding 0.0 to a non-negative accumulator is exact, so the sparse sum
// is bitwise identical to the full O(M·P) rescan (reliabilityRecompute, kept
// for invariant checking).
func (c *Cluster) ReliabilityObj() float64 {
	var hot float64
	for w, word := range c.reliHot {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			base := (w*64 + b) * NumResources
			for p := 0; p < NumResources; p++ {
				if t := c.reliTerms[base+p]; t != 0 {
					hot += t
				}
			}
		}
	}
	return hot + float64(c.maxJobs)
}

// reliabilityRecompute is the reference O(M·P) scan of the reliability
// objective. InvariantCheck and the equivalence tests compare it against the
// incremental value bit for bit.
func (c *Cluster) reliabilityRecompute() float64 {
	theta := c.cfg.HotSpotThreshold
	denom := (1 - theta) * (1 - theta)
	var hot float64
	maxJobs := 0
	for _, s := range c.servers {
		u := s.CommittedUtilization()
		for _, v := range u {
			if over := v - theta; over > 0 {
				hot += over * over / denom
			}
		}
		if n := s.JobsInSystem(); n > maxJobs {
			maxJobs = n
		}
	}
	return hot + float64(maxJobs)
}

// View is an immutable snapshot of cluster state handed to allocators.
type View struct {
	Now      sim.Time
	M        int
	Util     []Resources  // running utilization per server
	Pending  []Resources  // queued demand per server
	QueueLen []int        // waiting jobs per server
	InSystem []int        // waiting + running per server
	State    []PowerState // power mode per server
}

// Snapshot captures the current state of every server into a freshly
// allocated View. Hot paths should hold one View and use SnapshotInto.
func (c *Cluster) Snapshot() *View {
	return c.SnapshotInto(&View{})
}

// SnapshotInto captures the current state of every server into v, reusing
// its slices when already sized for this cluster. After the first call on a
// given View the refresh is allocation-free. It returns v for convenience.
func (c *Cluster) SnapshotInto(v *View) *View {
	m := len(c.servers)
	if len(v.Util) != m {
		v.Util = make([]Resources, m)
		v.Pending = make([]Resources, m)
		v.QueueLen = make([]int, m)
		v.InSystem = make([]int, m)
		v.State = make([]PowerState, m)
	}
	v.Now = c.sm.Now()
	v.M = m
	for i, s := range c.servers {
		v.Util[i] = s.Utilization()
		v.Pending[i] = s.PendingDemand()
		v.QueueLen[i] = s.QueueLen()
		v.InSystem[i] = s.JobsInSystem()
		v.State[i] = s.State()
	}
	return v
}

// InvariantCheck recomputes the aggregates from scratch and panics if the
// incremental bookkeeping drifted. Tests call it liberally.
func (c *Cluster) InvariantCheck() {
	var power float64
	jobs := 0
	for _, s := range c.servers {
		power += s.Power()
		jobs += s.JobsInSystem()
	}
	if math.Abs(power-c.totalPower) > 1e-6 {
		panic(fmt.Sprintf("cluster: power drift: incremental %v recomputed %v",
			c.totalPower, power))
	}
	if jobs != c.jobsInSystem {
		panic(fmt.Sprintf("cluster: jobs drift: incremental %d recomputed %d",
			c.jobsInSystem, jobs))
	}
	if inc, ref := c.ReliabilityObj(), c.reliabilityRecompute(); inc != ref {
		panic(fmt.Sprintf("cluster: reliability drift: incremental %v recomputed %v",
			inc, ref))
	}
}
