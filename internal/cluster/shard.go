package cluster

import (
	"fmt"
	"math"

	"hierdrl/internal/sim"
)

// The parallel tier's observation streams. Between two epoch barriers every
// shard appends its server events to private logs (single writer: the shard's
// worker); at the barrier the coordinator replays them through DrainChanges/
// DrainDones/DrainTrans in merged global time order. Per-shard logs are
// time-sorted by construction (each lane's clock is monotone), so the merge
// is a k-way min pick with ties broken by ascending shard index — making the
// replayed order a pure function of simulated time and the fixed partition,
// never of goroutine scheduling. That is the parallel tier's reproducibility
// contract (DESIGN.md §12).

// ChangeRec is one aggregate-relevant server event: the server's post-event
// power draw, jobs-in-system count, and committed utilization. It carries
// everything the Merger needs to replay the strict tier's incremental global
// bookkeeping arithmetic exactly.
type ChangeRec struct {
	At     sim.Time
	Server int32
	Jobs   int32
	Power  float64
	CU     Resources
}

// DoneRec is one job completion.
type DoneRec struct {
	At sim.Time
	J  *Job
}

// TransRec is one power-mode transition.
type TransRec struct {
	At     sim.Time
	Server int32
	From   PowerState
	To     PowerState
}

// InterruptRec is one crash-evicted job awaiting its retry decision.
type InterruptRec struct {
	At sim.Time
	J  *Job
}

// DegradeRec is one fail-slow edge: Factor is the new effective speed
// multiplier (1.0 on restore to full speed).
type DegradeRec struct {
	At     sim.Time
	Server int32
	Factor float64
}

// MaintRec is one maintenance-window opening (the drain start; the eventual
// power-off and repair travel the transition/fault streams).
type MaintRec struct {
	At     sim.Time
	Server int32
}

// prepCursor resets the cluster-retained per-shard merge cursor (allocated
// once), so draining allocates nothing.
func (c *Cluster) prepCursor() []int {
	if cap(c.drainCur) < len(c.shards) {
		c.drainCur = make([]int, len(c.shards))
	}
	cur := c.drainCur[:len(c.shards)]
	for i := range cur {
		cur[i] = 0
	}
	return cur
}

// The seven Drain* loops below are intentionally parallel copies of one
// k-way merge: a generic driver would either box the per-record emit into a
// per-barrier closure (breaking the zero-alloc epoch) or hide the ordering
// rule behind adapters. The rule they must share — pop the earliest head,
// ties to the lowest shard index, per-shard FIFO — is the reproducibility
// contract; change it in all seven together (TestDrainOrderMerged covers
// each stream).

// DrainChanges replays every logged ChangeRec in merged (time, shard) order
// through the Merger, then resets the logs (keeping capacity).
func (c *Cluster) DrainChanges(m *Merger) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].changes
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		m.Apply(&c.shards[best].changes[cur[best]])
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].changes = c.shards[s].changes[:0]
	}
}

// DrainDones replays every logged completion in merged (time, shard) order,
// then resets the logs (keeping capacity).
func (c *Cluster) DrainDones(fn func(t sim.Time, j *Job)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].dones
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].dones[cur[best]]
		fn(rec.At, rec.J)
		rec.J = nil // drop the reference so the log slab never pins a pooled job
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].dones = c.shards[s].dones[:0]
	}
}

// DrainTrans replays every logged power-mode transition in merged
// (time, shard) order, then resets the logs (keeping capacity).
func (c *Cluster) DrainTrans(fn func(t sim.Time, server int, from, to PowerState)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].trans
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].trans[cur[best]]
		fn(rec.At, int(rec.Server), rec.From, rec.To)
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].trans = c.shards[s].trans[:0]
	}
}

// DrainInterrupts replays every logged crash eviction in merged
// (time, shard) order, then resets the logs (keeping capacity). The session
// routes each job through its RetryPolicy here, so requeue decisions happen
// at the barrier in a deterministic order.
func (c *Cluster) DrainInterrupts(fn func(t sim.Time, j *Job)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].interrupts
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].interrupts[cur[best]]
		fn(rec.At, rec.J)
		rec.J = nil // drop the reference so the log slab never pins a pooled job
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].interrupts = c.shards[s].interrupts[:0]
	}
}

// DrainMigrates replays every logged drain-time migration in merged
// (time, shard) order, then resets the logs (keeping capacity). Like
// DrainInterrupts, the session routes each job through its RetryPolicy here.
func (c *Cluster) DrainMigrates(fn func(t sim.Time, j *Job)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].migrates
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].migrates[cur[best]]
		fn(rec.At, rec.J)
		rec.J = nil // drop the reference so the log slab never pins a pooled job
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].migrates = c.shards[s].migrates[:0]
	}
}

// DrainDegrades replays every logged fail-slow edge in merged (time, shard)
// order, then resets the logs (keeping capacity).
func (c *Cluster) DrainDegrades(fn func(t sim.Time, server int, factor float64)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].degrades
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].degrades[cur[best]]
		fn(rec.At, int(rec.Server), rec.Factor)
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].degrades = c.shards[s].degrades[:0]
	}
}

// DrainMaints replays every logged maintenance-window opening in merged
// (time, shard) order, then resets the logs (keeping capacity).
func (c *Cluster) DrainMaints(fn func(t sim.Time, server int)) {
	cur := c.prepCursor()
	for {
		best := -1
		var bestAt sim.Time
		for s := range c.shards {
			log := c.shards[s].maints
			if cur[s] >= len(log) {
				continue
			}
			if at := log[cur[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		rec := &c.shards[best].maints[cur[best]]
		fn(rec.At, int(rec.Server))
		cur[best]++
	}
	for s := range c.shards {
		c.shards[s].maints = c.shards[s].maints[:0]
	}
}

// PendingLogs reports whether any shard has undrained log entries (test and
// invariant surface).
func (c *Cluster) PendingLogs() bool {
	for s := range c.shards {
		g := &c.shards[s]
		if len(g.changes) > 0 || len(g.dones) > 0 || len(g.trans) > 0 || len(g.interrupts) > 0 ||
			len(g.migrates) > 0 || len(g.degrades) > 0 || len(g.maints) > 0 {
			return true
		}
	}
	return false
}

// Merger replays the parallel tier's merged change feed through the strict
// tier's exact global bookkeeping: one incremental power accumulator, one
// jobs-in-system counter, one global reliability term cache with the
// ascending sparse summation, one jobs multiset. Because per-server state
// evolution is shard-local (bitwise identical to strict) and the merged
// record order equals the strict event order whenever no two shards fire at
// the same instant, the (power, jobs, reliability) stream a DRL agent
// observes through a Merger is bitwise identical to the strict tier's —
// which is what keeps sharded learning runs equal to strict ones (DESIGN.md
// §12 documents the simultaneity caveat).
type Merger struct {
	theta        float64
	totalPower   float64
	jobsInSystem int
	prevPower    []float64
	prevJobs     []int
	reliTerms    []float64
	reliHot      []uint64
	jobs         jobsMultiset

	// OnChange receives the replayed feed: the post-event global aggregates
	// at the event's instant, in merged time order.
	OnChange func(t sim.Time, powerW float64, jobsInSystem int, reli float64)
}

// NewMerger builds a Merger whose initial state replicates the cluster's
// construction-time aggregates (the same ascending initial power summation
// the strict constructor performs).
func NewMerger(c *Cluster) *Merger {
	m := &Merger{
		theta:     c.cfg.HotSpotThreshold,
		prevPower: make([]float64, c.cfg.M),
		prevJobs:  make([]int, c.cfg.M),
		reliTerms: make([]float64, c.cfg.M*NumResources),
		reliHot:   make([]uint64, (c.cfg.M+63)/64),
	}
	m.jobs.init(c.cfg.M)
	for i, s := range c.servers {
		m.prevPower[i] = s.Power()
		m.totalPower += s.Power()
	}
	return m
}

// Apply replays one change record through the strict global bookkeeping and
// fires OnChange.
func (m *Merger) Apply(rec *ChangeRec) {
	i := int(rec.Server)
	jobs := int(rec.Jobs)
	m.totalPower += rec.Power - m.prevPower[i]
	m.jobsInSystem += jobs - m.prevJobs[i]
	if old := m.prevJobs[i]; old != jobs {
		m.jobs.move(old, jobs)
	}
	m.prevPower[i] = rec.Power
	m.prevJobs[i] = jobs
	updateReliTerms(m.reliTerms, m.reliHot, i, rec.CU, m.theta)
	if m.OnChange != nil {
		m.OnChange(rec.At, m.totalPower, m.jobsInSystem, m.Reliability())
	}
}

// TotalPower returns the replayed global power accumulator.
func (m *Merger) TotalPower() float64 { return m.totalPower }

// JobsInSystem returns the replayed global jobs-in-system counter.
func (m *Merger) JobsInSystem() int { return m.jobsInSystem }

// Reliability returns the replayed reliability objective: the strict tier's
// ascending sparse sum over the global term cache plus the max-jobs term.
func (m *Merger) Reliability() float64 {
	return sparseReliSum(m.reliTerms, m.reliHot) + float64(m.jobs.max)
}

// InvariantCheck compares the replayed aggregates against the cluster's
// per-shard incremental ones. Power and reliability are FP sums in different
// association orders, so they match to tolerance, not bitwise; the integer
// counters must be exact. Valid only at a barrier with all logs drained.
func (m *Merger) InvariantCheck(c *Cluster) {
	if c.PendingLogs() {
		panic("cluster: Merger.InvariantCheck with undrained logs")
	}
	if got, want := m.jobsInSystem, c.JobsInSystem(); got != want {
		panic(fmt.Sprintf("cluster: merger jobs drift: replayed %d incremental %d", got, want))
	}
	if got, want := m.totalPower, c.TotalPower(); !closeRel(got, want, 1e-9) {
		panic(fmt.Sprintf("cluster: merger power drift: replayed %v incremental %v", got, want))
	}
	if got, want := m.Reliability(), c.ReliabilityObj(); !closeRel(got, want, 1e-9) {
		panic(fmt.Sprintf("cluster: merger reliability drift: replayed %v incremental %v", got, want))
	}
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}
