package cluster

import (
	"math"
	"testing"

	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

type shardTestDPM struct{}

// adHocTestDPM sleeps the instant a server idles (transition-stream tests).
type adHocTestDPM struct{}

func (adHocTestDPM) OnIdle(sim.Time, *Server) float64        { return 0 }
func (adHocTestDPM) OnArrival(sim.Time, *Server, PowerState) {}
func (adHocTestDPM) Observe(sim.Time, float64, int)          {}

func (shardTestDPM) OnIdle(sim.Time, *Server) float64       { return math.Inf(1) }
func (shardTestDPM) OnArrival(sim.Time, *Server, PowerState) {}
func (shardTestDPM) Observe(sim.Time, float64, int)          {}

func newShardedForTest(t *testing.T, m, p int) (*Cluster, []*sim.Simulator) {
	t.Helper()
	lanes := make([]*sim.Simulator, p)
	for i := range lanes {
		lanes[i] = sim.New()
	}
	cfg := DefaultConfig(m)
	cfg.Server.InitialState = StateActive
	c, err := NewSharded(cfg, lanes, func(int) DPMPolicy { return shardTestDPM{} })
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return c, lanes
}

// TestShardedPartition asserts the contiguous balanced partition and the
// server->shard mapping.
func TestShardedPartition(t *testing.T) {
	c, _ := newShardedForTest(t, 10, 3)
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	covered := 0
	prevHi := 0
	for s := 0; s < c.Shards(); s++ {
		lo, hi := c.ShardRange(s)
		if lo != prevHi {
			t.Fatalf("shard %d range [%d,%d) not contiguous with previous hi %d", s, lo, hi, prevHi)
		}
		if n := hi - lo; n != 3 && n != 4 {
			t.Fatalf("shard %d has %d servers, want 3 or 4", s, n)
		}
		for i := lo; i < hi; i++ {
			if c.ShardOf(i) != s {
				t.Fatalf("ShardOf(%d) = %d, want %d", i, c.ShardOf(i), s)
			}
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != 10 {
		t.Fatalf("partition covers %d servers, want 10", covered)
	}
	if _, err := NewSharded(DefaultConfig(2), make([]*sim.Simulator, 3), func(int) DPMPolicy { return shardTestDPM{} }); err == nil {
		t.Fatal("NewSharded with more lanes than servers did not fail")
	}
}

// driveSharded submits a deterministic job pattern across the shards and
// steps the lanes to completion, interleaving lane work the way the epoch
// loop does (all lanes to a horizon, then further submits).
func driveSharded(t *testing.T, c *Cluster, lanes []*sim.Simulator, rng *mat.RNG, jobs int) {
	t.Helper()
	arrival := 0.0
	for id := 0; id < jobs; id++ {
		arrival += rng.Exponential(0.5)
		for _, ln := range lanes {
			ln.RunBefore(sim.Time(arrival))
		}
		target := rng.Intn(c.M())
		lane := lanes[c.ShardOf(target)]
		lane.AdvanceTo(sim.Time(arrival))
		cpu := 0.05 + 0.3*rng.Float64()
		c.Submit(&Job{
			ID:       id,
			Arrival:  sim.Time(arrival),
			Duration: 1 + rng.Float64()*20,
			Req:      Resources{cpu, cpu * 0.8, cpu * 0.5},
			Server:   -1,
		}, target)
	}
	for _, ln := range lanes {
		ln.RunBefore(sim.Time(math.MaxFloat64))
	}
}

// TestShardedAggregatesMatchStrict drives the same deterministic workload
// through a 1-shard (strict) and a 4-shard cluster and asserts the final
// aggregates agree — integers exactly, FP reductions to tight tolerance —
// and that every incremental invariant holds on both.
func TestShardedAggregatesMatchStrict(t *testing.T) {
	strict, strictLanes := newShardedForTest(t, 13, 1)
	sharded, shardLanes := newShardedForTest(t, 13, 4)
	sharded.EnableLoadIndex()
	strict.EnableLoadIndex()

	driveSharded(t, strict, strictLanes, mat.NewRNG(42), 400)
	driveSharded(t, sharded, shardLanes, mat.NewRNG(42), 400)

	strict.InvariantCheck()
	sharded.InvariantCheck()

	if a, b := strict.Completed(), sharded.Completed(); a != b {
		t.Fatalf("completed %d vs %d", a, b)
	}
	if a, b := strict.JobsInSystem(), sharded.JobsInSystem(); a != b {
		t.Fatalf("jobs in system %d vs %d", a, b)
	}
	if a, b := strict.TotalPower(), sharded.TotalPower(); !closeRel(a, b, 1e-9) {
		t.Fatalf("power %v vs %v", a, b)
	}
	if a, b := strict.ReliabilityObj(), sharded.ReliabilityObj(); !closeRel(a, b, 1e-9) {
		t.Fatalf("reliability %v vs %v", a, b)
	}
	now := sim.Time(1e9)
	if a, b := strict.TotalEnergyJoules(now), sharded.TotalEnergyJoules(now); a != b {
		// Energy is a per-server sum in ascending order on both sides:
		// identical per-server histories make it bitwise equal.
		t.Fatalf("energy %v vs %v", a, b)
	}
	if a, b := strict.LeastCommitted(), sharded.LeastCommitted(); a != b {
		t.Fatalf("least committed %d vs %d", a, b)
	}
}

// TestAsyncMergerBitwise drives identical workloads through a strict cluster
// (synchronous OnChange) and an async sharded cluster (logged changes,
// Merger replay at barriers) and asserts the replayed observation stream —
// (t, power, jobs, reliability) in merged time order — is bitwise identical
// to the strict one. This is the exactness contract that keeps sharded DRL
// runs equal to strict ones.
func TestAsyncMergerBitwise(t *testing.T) {
	type obs struct {
		t     sim.Time
		power float64
		jobs  int
		reli  float64
	}

	var strictFeed []obs
	strict, strictLanes := newShardedForTest(t, 12, 1)
	strict.OnChange = func(tm sim.Time) {
		strictFeed = append(strictFeed, obs{tm, strict.TotalPower(), strict.JobsInSystem(), strict.ReliabilityObj()})
	}
	driveSharded(t, strict, strictLanes, mat.NewRNG(7), 300)

	var mergedFeed []obs
	async, asyncLanes := newShardedForTest(t, 12, 3)
	async.SetAsync(true, false)
	m := NewMerger(async)
	m.OnChange = func(tm sim.Time, power float64, jobs int, reli float64) {
		mergedFeed = append(mergedFeed, obs{tm, power, jobs, reli})
	}
	// Replay with periodic barriers: drain the logs every few submissions,
	// as the epoch loop does.
	rng := mat.NewRNG(7)
	arrival := 0.0
	for id := 0; id < 300; id++ {
		arrival += rng.Exponential(0.5)
		for _, ln := range asyncLanes {
			ln.RunBefore(sim.Time(arrival))
		}
		target := rng.Intn(async.M())
		asyncLanes[async.ShardOf(target)].AdvanceTo(sim.Time(arrival))
		cpu := 0.05 + 0.3*rng.Float64()
		async.Submit(&Job{
			ID: id, Arrival: sim.Time(arrival), Duration: 1 + rng.Float64()*20,
			Req: Resources{cpu, cpu * 0.8, cpu * 0.5}, Server: -1,
		}, target)
		if id%5 == 0 {
			async.DrainChanges(m)
			async.DrainDones(func(sim.Time, *Job) {})
		}
	}
	for _, ln := range asyncLanes {
		ln.RunBefore(sim.Time(math.MaxFloat64))
	}
	async.DrainChanges(m)
	async.DrainDones(func(sim.Time, *Job) {})
	m.InvariantCheck(async)

	if len(strictFeed) != len(mergedFeed) {
		t.Fatalf("feed lengths differ: strict %d merged %d", len(strictFeed), len(mergedFeed))
	}
	for i := range strictFeed {
		a, b := strictFeed[i], mergedFeed[i]
		if a.t != b.t || a.jobs != b.jobs ||
			math.Float64bits(a.power) != math.Float64bits(b.power) ||
			math.Float64bits(a.reli) != math.Float64bits(b.reli) {
			t.Fatalf("feed[%d]: strict %+v merged %+v", i, a, b)
		}
	}
}

// TestDrainOrderMerged asserts all three drain streams — completions,
// changes, transitions — replay in global (time, shard) order even when
// shards complete out of phase. (The three merge loops in shard.go are
// deliberate copies; this test is what keeps them in sync.)
func TestDrainOrderMerged(t *testing.T) {
	lanes := make([]*sim.Simulator, 4)
	for i := range lanes {
		lanes[i] = sim.New()
	}
	cfg := DefaultConfig(4)
	cfg.Server.InitialState = StateActive
	// Immediate-sleep DPM: every completion triggers shutdown transitions,
	// so the transition stream has content to order.
	c, err := NewSharded(cfg, lanes, func(int) DPMPolicy { return adHocTestDPM{} })
	if err != nil {
		t.Fatal(err)
	}
	c.SetAsync(true, true)
	// One job per server, durations chosen so completion order crosses
	// shards: server 3 finishes first, then 1, then 2, then 0.
	durations := []float64{40, 20, 30, 10}
	for i, d := range durations {
		lanes[i].AdvanceTo(0)
		c.Submit(&Job{ID: i, Arrival: 0, Duration: d, Req: Resources{0.1, 0.1, 0.1}, Server: -1}, i)
	}
	for _, ln := range lanes {
		ln.RunBefore(sim.Time(math.MaxFloat64))
	}
	var order []int
	var times []sim.Time
	c.DrainDones(func(tm sim.Time, j *Job) {
		order = append(order, j.ID)
		times = append(times, tm)
	})
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatalf("drain times not monotone: %v", times)
		}
	}

	// The change feed and (here empty-by-config) transition stream obey the
	// same merged ordering: times monotone, ties resolved to the lower shard.
	m := NewMerger(c)
	var changeTimes []sim.Time
	m.OnChange = func(tm sim.Time, _ float64, _ int, _ float64) {
		changeTimes = append(changeTimes, tm)
	}
	c.DrainChanges(m)
	if len(changeTimes) == 0 {
		t.Fatal("no change records logged")
	}
	for i := 1; i < len(changeTimes); i++ {
		if changeTimes[i] < changeTimes[i-1] {
			t.Fatalf("change times not monotone: %v", changeTimes)
		}
	}
	var transTimes []sim.Time
	c.DrainTrans(func(tm sim.Time, _ int, _, _ PowerState) {
		transTimes = append(transTimes, tm)
	})
	if len(transTimes) == 0 {
		t.Fatal("no transition records logged")
	}
	for i := 1; i < len(transTimes); i++ {
		if transTimes[i] < transTimes[i-1] {
			t.Fatalf("transition times not monotone: %v", transTimes)
		}
	}
	if c.PendingLogs() {
		t.Fatal("logs not reset after drain")
	}
}

// TestLoadIndexProperty cross-checks the tournament tree against a linear
// scan (with the scan's lowest-index tie preference) under random updates.
func TestLoadIndexProperty(t *testing.T) {
	rng := mat.NewRNG(99)
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100} {
		x := newLoadIndex(n)
		loads := make([]float64, n)
		for step := 0; step < 500; step++ {
			i := rng.Intn(n)
			v := float64(rng.Intn(8)) / 4 // coarse grid to force ties
			loads[i] = v
			x.Update(i, v)
			best, bestLoad := 0, loads[0]
			for k := 1; k < n; k++ {
				if loads[k] < bestLoad {
					best, bestLoad = k, loads[k]
				}
			}
			gotIdx, gotLoad := x.ArgMin()
			if gotIdx != best || gotLoad != bestLoad {
				t.Fatalf("n=%d step=%d: ArgMin=(%d,%v), scan=(%d,%v)", n, step, gotIdx, gotLoad, best, bestLoad)
			}
		}
	}
}
