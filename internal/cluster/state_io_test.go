package cluster

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/fault"
	"hierdrl/internal/sim"
)

// statelessDPM is a checkpoint-aware fixed-timeout stub: all its behavior is
// construction config, so it round-trips as a Stateless component.
type statelessDPM struct{ timeout float64 }

func (d statelessDPM) OnIdle(sim.Time, *Server) float64        { return d.timeout }
func (d statelessDPM) OnArrival(sim.Time, *Server, PowerState) {}
func (d statelessDPM) Observe(sim.Time, float64, int)          {}
func (d statelessDPM) CheckpointStateless()                    {}

// doneRec is one OnJobDone observation, captured bit-exactly.
type doneRec struct {
	id   int
	at   uint64
	fin  uint64
	srv  int
	wait uint64
}

func recordDones(c *Cluster, out *[]doneRec) {
	c.OnJobDone = func(t sim.Time, j *Job) {
		*out = append(*out, doneRec{
			id:   j.ID,
			at:   math.Float64bits(float64(t)),
			fin:  math.Float64bits(float64(j.Finished)),
			srv:  j.Server,
			wait: math.Float64bits(float64(j.Started - j.Arrival)),
		})
	}
}

// finals collects the cluster-level aggregate observables whose bits must
// survive a checkpoint/restore round trip.
type finals struct {
	completed int64
	fired     int64
	energy    uint64
	power     uint64
	reli      uint64
	jobsInSys int
	down      int
	fails     int64
}

func snapshotFinals(c *Cluster, sm *sim.Simulator) finals {
	return finals{
		completed: c.Completed(),
		fired:     sm.Fired(),
		energy:    math.Float64bits(c.TotalEnergyJoules(sm.Now())),
		power:     math.Float64bits(c.TotalPower()),
		reli:      math.Float64bits(c.ReliabilityObj()),
		jobsInSys: c.JobsInSystem(),
		down:      c.DownServers(),
		fails:     c.Failures(),
	}
}

// buildWorkload schedules nJobs arrivals with deterministic durations on a
// round-robin server assignment, all strictly before the checkpoint instant.
func buildWorkload(sm *sim.Simulator, c *Cluster, nJobs int) {
	for i := 0; i < nJobs; i++ {
		j := mkJob(i, float64(i%8)+0.25*float64(i/8), 4+float64(i%5)*7, 0.15+0.05*float64(i%3))
		srv := i % c.M()
		jj, s := j, srv
		sm.Schedule(jj.Arrival, func() {
			// Remap through NextUp so crashed targets skip to a live server
			// (identity on fault-free runs); drop the job if all are down.
			if up := c.NextUp(s); up >= 0 {
				c.Submit(jj, up)
			}
		})
	}
}

// roundTrip checkpoints c at the current event boundary and restores the
// snapshot into a freshly built cluster, failing the test on any error.
func roundTrip(t *testing.T, c *Cluster, sm *sim.Simulator, mk func() (*Cluster, *sim.Simulator)) (*Cluster, *sim.Simulator) {
	t.Helper()
	w := checkpoint.NewWriter(0)
	c.SaveState(w.Section("cluster"), nil)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	seq, prioSeq, nFired := sm.Counters()

	c2, sm2 := mk()
	sm2.RestoreBegin(sm.Now(), seq, prioSeq, nFired)
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("cluster")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if _, err := c2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing section bytes: %v", err)
	}
	return c2, sm2
}

// TestClusterCheckpointRoundTripFaultFree checkpoints a loaded cluster
// mid-run (jobs queued and executing, servers mid-transition) and verifies
// the restored continuation is bitwise identical to the uninterrupted one:
// same completion stream, same energy/power/reliability accumulator bits.
func TestClusterCheckpointRoundTripFaultFree(t *testing.T) {
	cfg := DefaultConfig(4)
	mk := func() (*Cluster, *sim.Simulator) {
		sm := sim.New()
		c, err := New(cfg, sm, func(int) DPMPolicy { return statelessDPM{timeout: 3} })
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return c, sm
	}

	c1, sm1 := mk()
	buildWorkload(sm1, c1, 24)
	sm1.Run(10) // all arrivals fired; completions and DPM timers pending

	if got := c1.JobsInSystem(); got == 0 {
		t.Fatal("workload drained before the checkpoint instant; test needs live jobs")
	}

	c2, sm2 := roundTrip(t, c1, sm1, mk)

	var dones1, dones2 []doneRec
	recordDones(c1, &dones1)
	recordDones(c2, &dones2)
	sm1.RunAll(1 << 20)
	sm2.RunAll(1 << 20)

	if f1, f2 := snapshotFinals(c1, sm1), snapshotFinals(c2, sm2); f1 != f2 {
		t.Fatalf("final aggregates diverge:\n  reference %+v\n  restored  %+v", f1, f2)
	}
	if len(dones1) != len(dones2) {
		t.Fatalf("completion counts diverge: %d vs %d", len(dones1), len(dones2))
	}
	for i := range dones1 {
		if dones1[i] != dones2[i] {
			t.Fatalf("completion %d diverges: %+v vs %+v", i, dones1[i], dones2[i])
		}
	}
}

// TestClusterCheckpointRoundTripWithFaults does the same with crash/repair
// clocks live: down servers, pending repair timers, eviction bookkeeping and
// the per-server RNG chains must all round-trip so the post-restore failure
// schedule continues exactly where the snapshot left off.
func TestClusterCheckpointRoundTripWithFaults(t *testing.T) {
	cfg := DefaultConfig(4)
	model, err := fault.NewExpCrash(7, 15, 4)
	if err != nil {
		t.Fatalf("NewExpCrash: %v", err)
	}
	var lost1, lost2 []int
	mk := func(lost *[]int) func() (*Cluster, *sim.Simulator) {
		return func() (*Cluster, *sim.Simulator) {
			sm := sim.New()
			c, err := New(cfg, sm, func(int) DPMPolicy { return statelessDPM{timeout: 3} })
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			c.EnableFaults(model.ClockFor, fault.KindCrash, 1)
			c.OnInterrupt = func(t sim.Time, j *Job) { *lost = append(*lost, j.ID) }
			return c, sm
		}
	}

	c1, sm1 := mk(&lost1)()
	buildWorkload(sm1, c1, 24)
	sm1.Run(10)
	preLost := len(lost1)

	c2, sm2 := roundTrip(t, c1, sm1, mk(&lost2))

	var dones1, dones2 []doneRec
	recordDones(c1, &dones1)
	recordDones(c2, &dones2)
	sm1.Run(60)
	sm2.Run(60)

	if f1, f2 := snapshotFinals(c1, sm1), snapshotFinals(c2, sm2); f1 != f2 {
		t.Fatalf("final aggregates diverge:\n  reference %+v\n  restored  %+v", f1, f2)
	}
	if c1.Failures() == 0 {
		t.Fatal("no crashes in 60s at MTTF 15 over 4 servers; fault path untested")
	}
	post1 := lost1[preLost:]
	if len(post1) != len(lost2) {
		t.Fatalf("post-checkpoint interrupts diverge: %d vs %d", len(post1), len(lost2))
	}
	for i := range post1 {
		if post1[i] != lost2[i] {
			t.Fatalf("interrupt %d diverges: job %d vs %d", i, post1[i], lost2[i])
		}
	}
}

// TestClusterRestoreFaultFlagMismatch: a faults-enabled snapshot must not
// restore into a fault-free cluster (and vice versa) — that is a config
// mismatch, not a crash.
func TestClusterRestoreFaultFlagMismatch(t *testing.T) {
	cfg := DefaultConfig(2)
	sm := sim.New()
	c, err := New(cfg, sm, func(int) DPMPolicy { return statelessDPM{timeout: 3} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := checkpoint.NewWriter(0)
	c.SaveState(w.Section("cluster"), nil)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	sm2 := sim.New()
	c2, err := New(cfg, sm2, func(int) DPMPolicy { return statelessDPM{timeout: 3} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	model, _ := fault.NewExpCrash(1, 100, 10)
	c2.EnableFaults(model.ClockFor, fault.KindCrash, 1)
	seq, prioSeq, nFired := sm.Counters()
	sm2.RestoreBegin(sm.Now(), seq, prioSeq, nFired)

	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, _ := rd.Section("cluster")
	if _, err := c2.RestoreState(d); !errors.Is(err, checkpoint.ErrConfigMismatch) {
		t.Fatalf("faults mismatch: got %v, want ErrConfigMismatch", err)
	}
}

// TestMergerStateRoundTrip drives the merged-replay accumulators to
// arbitrary values and verifies they restore verbatim into a fresh Merger.
func TestMergerStateRoundTrip(t *testing.T) {
	cfg := DefaultConfig(6)
	mk := func() (*Cluster, *Merger) {
		lanes := []*sim.Simulator{sim.New(), sim.New()}
		c, err := NewSharded(cfg, lanes, func(int) DPMPolicy { return statelessDPM{timeout: 3} })
		if err != nil {
			t.Fatalf("NewSharded: %v", err)
		}
		return c, NewMerger(c)
	}
	_, m1 := mk()
	m1.totalPower = 1234.5678
	m1.jobsInSystem = 17
	for i := range m1.prevPower {
		m1.prevPower[i] = 100 + float64(i)*1.25
		m1.prevJobs[i] = i * 3
		m1.reliTerms[i] = float64(i) * 0.015625
	}
	m1.reliHot[0] = 0x2a
	m1.jobs.buckets[3] = 5
	m1.jobs.max = 3

	w := checkpoint.NewWriter(0)
	m1.SaveState(w.Section("merger"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	_, m2 := mk()
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, _ := rd.Section("merger")
	if err := m2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing section bytes: %v", err)
	}
	if m2.totalPower != m1.totalPower || m2.jobsInSystem != m1.jobsInSystem {
		t.Fatalf("scalars diverge: (%v,%d) vs (%v,%d)", m2.totalPower, m2.jobsInSystem, m1.totalPower, m1.jobsInSystem)
	}
	for i := range m1.prevPower {
		if m2.prevPower[i] != m1.prevPower[i] || m2.prevJobs[i] != m1.prevJobs[i] || m2.reliTerms[i] != m1.reliTerms[i] {
			t.Fatalf("per-server accumulators diverge at %d", i)
		}
	}
	if m2.reliHot[0] != m1.reliHot[0] || m2.jobs.max != m1.jobs.max || m2.jobs.buckets[3] != m1.jobs.buckets[3] {
		t.Fatal("reliability bitset or jobs multiset diverged")
	}
}
