package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

// Little's-law conservation: once the system drains, the time integral of
// jobs-in-system equals the sum of per-job latencies exactly. Both tiers'
// reward functions lean on this identity (Sec. V-A and VI-B cite Little's
// law to justify using queue length as a latency proxy), so we verify it to
// machine precision on random workloads.
func TestLittlesLawConservation(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		m := 1 + g.Intn(4)
		cfg := DefaultConfig(m)
		timeout := []float64{0, 45, math.Inf(1)}[g.Intn(3)]
		c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: timeout} })
		if err != nil {
			return false
		}

		// Integrate N(t) via the change feed.
		var integral float64
		lastT := sim.Time(0)
		lastN := 0
		c.OnChange = func(now sim.Time) {
			integral += float64(lastN) * float64(now-lastT)
			lastT = now
			lastN = c.JobsInSystem()
		}

		n := 3 + g.Intn(25)
		jobs := make([]*Job, n)
		tNow := 0.0
		for i := range jobs {
			tNow += g.Exponential(0.02)
			jobs[i] = &Job{
				ID:       i,
				Arrival:  sim.Time(tNow),
				Duration: 5 + g.Float64()*300,
				Req:      Resources{0.1 + g.Float64()*0.5, 0.1, 0.1},
				Server:   -1,
			}
		}
		for _, j := range jobs {
			j := j
			srv := g.Intn(m)
			sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
		}
		sm.RunAll(100000)

		var latencySum float64
		for _, j := range jobs {
			latencySum += j.Latency()
		}
		return math.Abs(integral-latencySum) < 1e-6*(1+latencySum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The cached pending-demand must always equal the sum of queued jobs'
// demands, and committed utilization must equal used+pending, at every
// change point of a random workload.
func TestPendingDemandCacheInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		cfg := DefaultServerConfig()
		srv, err := NewServer(0, sm, cfg, fixedDPM{timeout: 30})
		if err != nil {
			return false
		}
		ok := true
		check := func() {
			var want Resources
			for _, j := range srv.queue[srv.qhead:] {
				want = want.Add(j.Req)
			}
			got := srv.PendingDemand()
			for p := range want {
				if math.Abs(got[p]-want[p]) > 1e-9 {
					ok = false
				}
			}
			cu := srv.CommittedUtilization()
			for p := range cu {
				if math.Abs(cu[p]-(srv.used[p]+srv.pending[p])/cfg.Capacity[p]) > 1e-9 {
					ok = false
				}
			}
		}
		srv.SetHooks(func(sim.Time, *Server) { check() }, nil)

		tNow := 0.0
		for i := 0; i < 30; i++ {
			tNow += g.Exponential(0.05)
			j := &Job{
				ID: i, Arrival: sim.Time(tNow),
				Duration: 5 + g.Float64()*120,
				Req:      Resources{0.2 + g.Float64()*0.6, 0.1, 0.1},
				Server:   -1,
			}
			sm.Schedule(j.Arrival, func() { srv.Submit(j) })
		}
		sm.RunAll(100000)
		check()
		for _, v := range srv.PendingDemand() {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRejectsOversizedJob(t *testing.T) {
	sm := sim.New()
	srv, err := NewServer(0, sm, DefaultServerConfig(), fixedDPM{timeout: 0})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized job accepted")
		}
	}()
	srv.Submit(&Job{ID: 0, Duration: 10, Req: Resources{1.5, 0.1, 0.1}, Server: -1})
}

// The incrementally maintained reliability objective must equal the full
// O(M·P) rescan — bit for bit, not approximately — after every single event
// of a randomized run. The sparse sum skips only exact-0.0 terms in
// ascending server order, so any deviation indicates a bookkeeping bug.
func TestReliabilityIncrementalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		m := 1 + g.Intn(6)
		cfg := DefaultConfig(m)
		timeout := []float64{0, 45, math.Inf(1)}[g.Intn(3)]
		c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: timeout} })
		if err != nil {
			return false
		}
		ok := true
		c.OnChange = func(sim.Time) {
			if inc, ref := c.ReliabilityObj(), c.reliabilityRecompute(); inc != ref {
				t.Logf("seed %d: incremental %v != recomputed %v", seed, inc, ref)
				ok = false
			}
		}
		n := 5 + g.Intn(40)
		tNow := 0.0
		for i := 0; i < n; i++ {
			tNow += g.Exponential(0.02)
			// Deliberately oversubscribe some servers so hot-spot terms and
			// deep queues actually occur.
			j := &Job{
				ID:       i,
				Arrival:  sim.Time(tNow),
				Duration: 5 + g.Float64()*400,
				Req:      Resources{0.2 + g.Float64()*0.7, 0.1 + g.Float64()*0.5, 0.1},
				Server:   -1,
			}
			srv := g.Intn(m)
			sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
		}
		sm.RunAll(100000)
		return ok && c.ReliabilityObj() == c.reliabilityRecompute()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// SnapshotInto must produce exactly what Snapshot produces, and refreshing a
// warm View must not allocate.
func TestSnapshotIntoMatchesSnapshotAndIsAllocFree(t *testing.T) {
	sm := sim.New()
	c, err := New(DefaultConfig(4), sm, func(int) DPMPolicy { return fixedDPM{timeout: 30} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g := mat.NewRNG(9)
	tNow := 0.0
	for i := 0; i < 25; i++ {
		tNow += g.Exponential(0.05)
		j := &Job{ID: i, Arrival: sim.Time(tNow), Duration: 30 + g.Float64()*200,
			Req: Resources{0.2 + g.Float64()*0.4, 0.1, 0.1}, Server: -1}
		srv := g.Intn(4)
		sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
	}
	sm.Run(sim.Time(tNow / 2))

	var reused View
	c.SnapshotInto(&reused)
	fresh := c.Snapshot()
	if fresh.Now != reused.Now || fresh.M != reused.M {
		t.Fatalf("header mismatch: %+v vs %+v", fresh, reused)
	}
	for i := 0; i < fresh.M; i++ {
		if fresh.Util[i] != reused.Util[i] || fresh.Pending[i] != reused.Pending[i] ||
			fresh.QueueLen[i] != reused.QueueLen[i] || fresh.InSystem[i] != reused.InSystem[i] ||
			fresh.State[i] != reused.State[i] {
			t.Fatalf("server %d mismatch", i)
		}
	}
	if raceEnabled {
		t.Skip("allocation pinning is meaningless under -race")
	}
	avg := testing.AllocsPerRun(200, func() { c.SnapshotInto(&reused) })
	if avg != 0 {
		t.Fatalf("warm SnapshotInto allocates %v per call, want 0", avg)
	}
}

// Energy must be conserved across DPM policies in the sense that for an
// identical workload, total energy == integral of reported power. We verify
// by sampling TotalPower at every event and integrating manually.
func TestClusterEnergyMatchesPowerIntegral(t *testing.T) {
	sm := sim.New()
	cfg := DefaultConfig(3)
	c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: 40} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var integral float64
	lastT := sim.Time(0)
	lastP := c.TotalPower()
	c.OnChange = func(now sim.Time) {
		integral += lastP * float64(now-lastT)
		lastT = now
		lastP = c.TotalPower()
	}
	g := mat.NewRNG(4)
	tNow := 0.0
	for i := 0; i < 40; i++ {
		tNow += g.Exponential(0.02)
		j := &Job{ID: i, Arrival: sim.Time(tNow), Duration: 10 + g.Float64()*200,
			Req: Resources{0.1 + g.Float64()*0.4, 0.1, 0.1}, Server: -1}
		srv := g.Intn(3)
		sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
	}
	sm.RunAll(100000)
	// Close the integral at the final instant.
	integral += lastP * float64(sm.Now()-lastT)
	want := c.TotalEnergyJoules(sm.Now())
	if math.Abs(integral-want) > 1e-6*(1+want) {
		t.Fatalf("power integral %v != energy %v", integral, want)
	}
}
