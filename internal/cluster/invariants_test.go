package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

// Little's-law conservation: once the system drains, the time integral of
// jobs-in-system equals the sum of per-job latencies exactly. Both tiers'
// reward functions lean on this identity (Sec. V-A and VI-B cite Little's
// law to justify using queue length as a latency proxy), so we verify it to
// machine precision on random workloads.
func TestLittlesLawConservation(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		m := 1 + g.Intn(4)
		cfg := DefaultConfig(m)
		timeout := []float64{0, 45, math.Inf(1)}[g.Intn(3)]
		c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: timeout} })
		if err != nil {
			return false
		}

		// Integrate N(t) via the change feed.
		var integral float64
		lastT := sim.Time(0)
		lastN := 0
		c.OnChange = func(now sim.Time) {
			integral += float64(lastN) * float64(now-lastT)
			lastT = now
			lastN = c.JobsInSystem()
		}

		n := 3 + g.Intn(25)
		jobs := make([]*Job, n)
		tNow := 0.0
		for i := range jobs {
			tNow += g.Exponential(0.02)
			jobs[i] = &Job{
				ID:       i,
				Arrival:  sim.Time(tNow),
				Duration: 5 + g.Float64()*300,
				Req:      Resources{0.1 + g.Float64()*0.5, 0.1, 0.1},
				Server:   -1,
			}
		}
		for _, j := range jobs {
			j := j
			srv := g.Intn(m)
			sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
		}
		sm.RunAll(100000)

		var latencySum float64
		for _, j := range jobs {
			latencySum += j.Latency()
		}
		return math.Abs(integral-latencySum) < 1e-6*(1+latencySum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The cached pending-demand must always equal the sum of queued jobs'
// demands, and committed utilization must equal used+pending, at every
// change point of a random workload.
func TestPendingDemandCacheInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		cfg := DefaultServerConfig()
		srv, err := NewServer(0, sm, cfg, fixedDPM{timeout: 30})
		if err != nil {
			return false
		}
		ok := true
		check := func() {
			var want Resources
			for _, j := range srv.queue {
				want = want.Add(j.Req)
			}
			got := srv.PendingDemand()
			for p := range want {
				if math.Abs(got[p]-want[p]) > 1e-9 {
					ok = false
				}
			}
			cu := srv.CommittedUtilization()
			for p := range cu {
				if math.Abs(cu[p]-(srv.used[p]+srv.pending[p])/cfg.Capacity[p]) > 1e-9 {
					ok = false
				}
			}
		}
		srv.SetHooks(func(sim.Time, *Server) { check() }, nil)

		tNow := 0.0
		for i := 0; i < 30; i++ {
			tNow += g.Exponential(0.05)
			j := &Job{
				ID: i, Arrival: sim.Time(tNow),
				Duration: 5 + g.Float64()*120,
				Req:      Resources{0.2 + g.Float64()*0.6, 0.1, 0.1},
				Server:   -1,
			}
			sm.Schedule(j.Arrival, func() { srv.Submit(j) })
		}
		sm.RunAll(100000)
		check()
		for _, v := range srv.PendingDemand() {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRejectsOversizedJob(t *testing.T) {
	sm := sim.New()
	srv, err := NewServer(0, sm, DefaultServerConfig(), fixedDPM{timeout: 0})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized job accepted")
		}
	}()
	srv.Submit(&Job{ID: 0, Duration: 10, Req: Resources{1.5, 0.1, 0.1}, Server: -1})
}

// Energy must be conserved across DPM policies in the sense that for an
// identical workload, total energy == integral of reported power. We verify
// by sampling TotalPower at every event and integrating manually.
func TestClusterEnergyMatchesPowerIntegral(t *testing.T) {
	sm := sim.New()
	cfg := DefaultConfig(3)
	c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: 40} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var integral float64
	lastT := sim.Time(0)
	lastP := c.TotalPower()
	c.OnChange = func(now sim.Time) {
		integral += lastP * float64(now-lastT)
		lastT = now
		lastP = c.TotalPower()
	}
	g := mat.NewRNG(4)
	tNow := 0.0
	for i := 0; i < 40; i++ {
		tNow += g.Exponential(0.02)
		j := &Job{ID: i, Arrival: sim.Time(tNow), Duration: 10 + g.Float64()*200,
			Req: Resources{0.1 + g.Float64()*0.4, 0.1, 0.1}, Server: -1}
		srv := g.Intn(3)
		sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
	}
	sm.RunAll(100000)
	// Close the integral at the final instant.
	integral += lastP * float64(sm.Now()-lastT)
	want := c.TotalEnergyJoules(sm.Now())
	if math.Abs(integral-want) > 1e-6*(1+want) {
		t.Fatalf("power integral %v != energy %v", integral, want)
	}
}
