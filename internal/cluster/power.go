// Package cluster implements the simulated server-cluster environment of the
// paper (Sec. III): M physical servers with active/idle/sleep power modes,
// Ton/Toff mode-transition delays, FCFS queueing with head-of-line blocking,
// the Fan/Weber/Barroso CPU-utilization power model (Eqn. 3), exact energy
// integration, and per-server pluggable dynamic power management policies.
package cluster

import (
	"fmt"
	"math"
)

// PowerModel maps server activity to power draw in watts.
//
// The paper uses P(x) = P(0%) + (P(100%) - P(0%)) (2x - x^1.4) for an active
// server at CPU utilization x (Eqn. 3, from Fan et al.), zero power in
// sleep, and a transition draw above idle while switching modes.
type PowerModel struct {
	// IdleW is P(0%), watts drawn by an active server with no load.
	IdleW float64
	// PeakW is P(100%), watts drawn at full CPU utilization.
	PeakW float64
	// TransitionW is the draw during sleep<->active transitions. The paper
	// notes it exceeds P(0%); we default to PeakW (PowerNap-style worst
	// case).
	TransitionW float64
}

// DefaultPowerModel returns the paper's calibration: P(0%) = 87 W,
// P(100%) = 145 W (Sec. VII-A), transitions at peak power.
func DefaultPowerModel() PowerModel {
	return PowerModel{IdleW: 87, PeakW: 145, TransitionW: 145}
}

// Validate checks the model for consistency.
func (p PowerModel) Validate() error {
	switch {
	case p.IdleW < 0:
		return fmt.Errorf("cluster: negative idle power %v", p.IdleW)
	case p.PeakW < p.IdleW:
		return fmt.Errorf("cluster: peak power %v below idle %v", p.PeakW, p.IdleW)
	case p.TransitionW < p.IdleW:
		return fmt.Errorf("cluster: transition power %v below idle %v", p.TransitionW, p.IdleW)
	}
	return nil
}

// Active returns the draw of an active server at CPU utilization x in [0,1]
// per Eqn. (3). Utilization outside [0,1] is clamped.
func (p PowerModel) Active(x float64) float64 {
	if x < 0 {
		x = 0
	} else if x > 1 {
		x = 1
	}
	return p.IdleW + (p.PeakW-p.IdleW)*(2*x-math.Pow(x, 1.4))
}

// Sleep returns the draw of a sleeping server (zero, per Sec. III).
func (p PowerModel) Sleep() float64 { return 0 }

// Transition returns the draw during a mode transition.
func (p PowerModel) Transition() float64 { return p.TransitionW }
