package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

// fixedDPM is a test stub: constant timeout, no learning.
type fixedDPM struct{ timeout float64 }

func (d fixedDPM) OnIdle(sim.Time, *Server) float64           { return d.timeout }
func (d fixedDPM) OnArrival(sim.Time, *Server, PowerState)    {}
func (d fixedDPM) Observe(t sim.Time, powerW float64, jq int) {}

// recordingDPM captures the decision-epoch callbacks for assertions.
type recordingDPM struct {
	timeout  float64
	idleAt   []sim.Time
	arrivals []PowerState
}

func (d *recordingDPM) OnIdle(t sim.Time, _ *Server) float64 {
	d.idleAt = append(d.idleAt, t)
	return d.timeout
}
func (d *recordingDPM) OnArrival(_ sim.Time, _ *Server, st PowerState) {
	d.arrivals = append(d.arrivals, st)
}
func (d *recordingDPM) Observe(sim.Time, float64, int) {}

func mkJob(id int, arrival, duration, cpu float64) *Job {
	return &Job{
		ID:       id,
		Arrival:  sim.Time(arrival),
		Duration: duration,
		Req:      Resources{cpu, cpu / 2, cpu / 4},
		Server:   -1,
	}
}

func newTestServer(t *testing.T, sm *sim.Simulator, cfg ServerConfig, dpm DPMPolicy) *Server {
	t.Helper()
	s, err := NewServer(0, sm, cfg, dpm)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s
}

func TestPowerModelEndpoints(t *testing.T) {
	p := DefaultPowerModel()
	if got := p.Active(0); math.Abs(got-87) > 1e-12 {
		t.Fatalf("P(0%%) = %v want 87", got)
	}
	if got := p.Active(1); math.Abs(got-145) > 1e-12 {
		t.Fatalf("P(100%%) = %v want 145", got)
	}
	if p.Sleep() != 0 {
		t.Fatalf("sleep power = %v want 0", p.Sleep())
	}
	if p.Transition() != 145 {
		t.Fatalf("transition power = %v want 145", p.Transition())
	}
	// Clamping.
	if p.Active(-1) != p.Active(0) || p.Active(2) != p.Active(1) {
		t.Fatal("Active must clamp utilization to [0,1]")
	}
}

// Property: Eqn. (3) is monotone increasing in utilization and bounded by
// [idle, peak].
func TestPowerModelMonotoneProperty(t *testing.T) {
	p := DefaultPowerModel()
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := p.Active(a), p.Active(b)
		return pa <= pb+1e-12 && pa >= p.IdleW-1e-12 && pb <= p.PeakW+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerModelValidate(t *testing.T) {
	bad := []PowerModel{
		{IdleW: -1, PeakW: 100, TransitionW: 100},
		{IdleW: 100, PeakW: 50, TransitionW: 100},
		{IdleW: 87, PeakW: 145, TransitionW: 50},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	if err := DefaultPowerModel().Validate(); err != nil {
		t.Fatalf("default model rejected: %v", err)
	}
}

func TestResourcesOps(t *testing.T) {
	a := Resources{0.5, 0.3, 0.1}
	b := Resources{0.2, 0.2, 0.05}
	sum := a.Add(b)
	wantSum := Resources{0.7, 0.5, 0.15}
	for p := range sum {
		if math.Abs(sum[p]-wantSum[p]) > 1e-12 {
			t.Fatalf("Add: %v", sum)
		}
	}
	diff := sum.Sub(b)
	for p := range diff {
		if math.Abs(diff[p]-a[p]) > 1e-12 {
			t.Fatalf("Sub: %v", diff)
		}
	}
	if !b.FitsIn(a) {
		t.Fatal("b should fit in a")
	}
	if (Resources{0.6, 0, 0}).FitsIn(a) {
		t.Fatal("0.6 CPU should not fit in 0.5")
	}
	if a.MaxFrac() != 0.5 {
		t.Fatalf("MaxFrac: %v", a.MaxFrac())
	}
	if !a.NonNegative() {
		t.Fatal("a is non-negative")
	}
	if (Resources{-0.1, 0, 0}).NonNegative() {
		t.Fatal("negative resource accepted")
	}
	if err := (Resources{0.5, 1.2, 0}).Validate(); err == nil {
		t.Fatal("over-unit resource accepted")
	}
}

func TestServerLifecycleTimings(t *testing.T) {
	sm := sim.New()
	cfg := DefaultServerConfig() // Ton=Toff=30, starts asleep
	dpm := &recordingDPM{timeout: 60}
	s := newTestServer(t, sm, cfg, dpm)

	j := mkJob(0, 100, 200, 0.5)
	sm.Schedule(j.Arrival, func() { s.Submit(j) })
	sm.RunAll(100)

	// Waking 100->130, executing 130->330, idle 330->390, shutdown 390->420.
	if st, ok := j.StartedAt(); !ok || st != 130 {
		t.Fatalf("job started at %v want 130", st)
	}
	if fin, ok := j.FinishedAt(); !ok || fin != 330 {
		t.Fatalf("job finished at %v want 330", fin)
	}
	if j.Latency() != 230 {
		t.Fatalf("latency %v want 230", j.Latency())
	}
	if j.WaitTime() != 30 {
		t.Fatalf("wait time %v want 30 (Ton)", j.WaitTime())
	}
	if s.State() != StateSleep {
		t.Fatalf("final state %v want sleep", s.State())
	}
	if len(dpm.idleAt) != 1 || dpm.idleAt[0] != 330 {
		t.Fatalf("idle epochs %v want [330]", dpm.idleAt)
	}
	if len(dpm.arrivals) != 1 || dpm.arrivals[0] != StateSleep {
		t.Fatalf("arrival epochs %v want [sleep]", dpm.arrivals)
	}
	if s.Wakeups() != 1 || s.Shutdowns() != 1 || s.Completed() != 1 {
		t.Fatalf("counters: wake=%d shut=%d done=%d", s.Wakeups(), s.Shutdowns(), s.Completed())
	}

	// Exact energy accounting at t=500.
	pm := cfg.Power
	want := 30*pm.Transition() + 200*pm.Active(0.5) + 60*pm.Active(0) + 30*pm.Transition()
	if got := s.EnergyJoules(500); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestServerFCFSFig3Scenario(t *testing.T) {
	// Paper Fig. 3: job1 (50%) and job2 (40%) run immediately; job3 (40%)
	// arrives while 90% is used and must wait for job1's completion.
	sm := sim.New()
	cfg := DefaultServerConfig()
	cfg.InitialState = StateActive
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: math.Inf(1)})

	j1 := &Job{ID: 1, Arrival: 0, Duration: 100, Req: Resources{0.5, 0.1, 0.1}, Server: -1}
	j2 := &Job{ID: 2, Arrival: 10, Duration: 200, Req: Resources{0.4, 0.1, 0.1}, Server: -1}
	j3 := &Job{ID: 3, Arrival: 20, Duration: 50, Req: Resources{0.4, 0.1, 0.1}, Server: -1}
	for _, j := range []*Job{j1, j2, j3} {
		j := j
		sm.Schedule(j.Arrival, func() { s.Submit(j) })
	}
	sm.RunAll(100)

	if st, _ := j1.StartedAt(); st != 0 {
		t.Fatalf("j1 started %v want 0", st)
	}
	if st, _ := j2.StartedAt(); st != 10 {
		t.Fatalf("j2 started %v want 10", st)
	}
	if st, _ := j3.StartedAt(); st != 100 {
		t.Fatalf("j3 started %v want 100 (after j1 completes)", st)
	}
	if j3.Latency() != 130 {
		t.Fatalf("j3 latency %v want 130 (80 wait + 50 run)", j3.Latency())
	}
}

func TestServerHeadOfLineBlocking(t *testing.T) {
	// FCFS means a small job cannot overtake a blocked head-of-queue job
	// even when it would fit.
	sm := sim.New()
	cfg := DefaultServerConfig()
	cfg.InitialState = StateActive
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: math.Inf(1)})

	j1 := &Job{ID: 1, Arrival: 0, Duration: 100, Req: Resources{0.6, 0.1, 0.1}, Server: -1}
	j2 := &Job{ID: 2, Arrival: 10, Duration: 10, Req: Resources{0.6, 0.1, 0.1}, Server: -1}
	j3 := &Job{ID: 3, Arrival: 20, Duration: 10, Req: Resources{0.1, 0.1, 0.1}, Server: -1}
	for _, j := range []*Job{j1, j2, j3} {
		j := j
		sm.Schedule(j.Arrival, func() { s.Submit(j) })
	}
	sm.RunAll(100)

	if st, _ := j3.StartedAt(); st != 100 {
		t.Fatalf("j3 started %v want 100: FCFS must not let it overtake j2", st)
	}
	if st, _ := j2.StartedAt(); st != 100 {
		t.Fatalf("j2 started %v want 100", st)
	}
}

func TestArrivalDuringShutdownFig4a(t *testing.T) {
	// Ad-hoc power management (timeout 0): a job arriving mid-shutdown
	// waits out Toff then a full Ton (Fig. 4(a)).
	sm := sim.New()
	cfg := DefaultServerConfig()
	dpm := fixedDPM{timeout: 0}
	s := newTestServer(t, sm, cfg, dpm)

	j1 := mkJob(1, 0, 100, 0.5)  // wake 0-30, run 30-130, shutdown 130-160
	j2 := mkJob(2, 140, 50, 0.5) // arrives mid-shutdown
	for _, j := range []*Job{j1, j2} {
		j := j
		sm.Schedule(j.Arrival, func() { s.Submit(j) })
	}
	sm.RunAll(100)

	if fin, _ := j1.FinishedAt(); fin != 130 {
		t.Fatalf("j1 finished %v want 130", fin)
	}
	// Shutdown completes at 160, wake 160-190, j2 runs 190-240.
	if st, _ := j2.StartedAt(); st != 190 {
		t.Fatalf("j2 started %v want 190 (Toff completes, then Ton)", st)
	}
	if j2.Latency() != 100 {
		t.Fatalf("j2 latency %v want 100", j2.Latency())
	}
	if s.Wakeups() != 2 {
		t.Fatalf("wakeups %d want 2", s.Wakeups())
	}
}

func TestTimeoutAvoidsShutdownFig4b(t *testing.T) {
	// DPM with a timeout (Fig. 4(b)): a job arriving inside the timeout is
	// served immediately with no transition penalty.
	sm := sim.New()
	cfg := DefaultServerConfig()
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: 60})

	j1 := mkJob(1, 0, 100, 0.5)  // wake 0-30, run 30-130, idle from 130
	j2 := mkJob(2, 150, 50, 0.5) // arrives inside the [130,190] timeout
	for _, j := range []*Job{j1, j2} {
		j := j
		sm.Schedule(j.Arrival, func() { s.Submit(j) })
	}
	sm.RunAll(100)

	if st, _ := j2.StartedAt(); st != 150 {
		t.Fatalf("j2 started %v want 150 (no wake needed)", st)
	}
	if j2.Latency() != 50 {
		t.Fatalf("j2 latency %v want 50", j2.Latency())
	}
	if s.Wakeups() != 1 {
		t.Fatalf("wakeups %d want 1 — timeout must have been cancelled", s.Wakeups())
	}
	if s.Shutdowns() != 1 { // only the final idle period expires
		t.Fatalf("shutdowns %d want 1", s.Shutdowns())
	}
}

func TestAlwaysOnNeverSleeps(t *testing.T) {
	sm := sim.New()
	cfg := DefaultServerConfig()
	cfg.InitialState = StateActive
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: math.Inf(1)})
	j := mkJob(1, 10, 100, 0.3)
	sm.Schedule(j.Arrival, func() { s.Submit(j) })
	sm.RunAll(100)
	if s.State() != StateActive {
		t.Fatalf("state %v want active", s.State())
	}
	if s.Shutdowns() != 0 {
		t.Fatalf("shutdowns %d want 0", s.Shutdowns())
	}
	// Energy through t=200: idle except while running.
	pm := cfg.Power
	want := 100*pm.Active(0.3) + 100*pm.Active(0)
	if got := s.EnergyJoules(200); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestServerRejectsInvalidDPMTimeout(t *testing.T) {
	sm := sim.New()
	cfg := DefaultServerConfig()
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: -5})
	j := mkJob(1, 0, 10, 0.5)
	sm.Schedule(0, func() { s.Submit(j) })
	defer func() {
		if recover() == nil {
			t.Fatal("negative DPM timeout must panic")
		}
	}()
	sm.RunAll(100)
}

func TestClusterAggregates(t *testing.T) {
	sm := sim.New()
	cfg := DefaultConfig(4)
	c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: 30} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.M() != 4 {
		t.Fatalf("M = %d", c.M())
	}
	// All asleep: zero power.
	if c.TotalPower() != 0 || c.JobsInSystem() != 0 {
		t.Fatalf("initial aggregates: %v W, %d jobs", c.TotalPower(), c.JobsInSystem())
	}

	var changes int
	c.OnChange = func(sim.Time) { changes++ }
	var doneJobs []*Job
	c.OnJobDone = func(_ sim.Time, j *Job) { doneJobs = append(doneJobs, j) }

	jobs := []*Job{mkJob(0, 0, 100, 0.4), mkJob(1, 5, 100, 0.4), mkJob(2, 10, 100, 0.4)}
	targets := []int{0, 1, 0}
	for i, j := range jobs {
		j, srv := j, targets[i]
		sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
	}
	sm.Run(40) // both servers awake and running by t=40
	c.InvariantCheck()
	if c.JobsInSystem() != 3 {
		t.Fatalf("jobs in system %d want 3", c.JobsInSystem())
	}
	if c.TotalPower() <= 0 {
		t.Fatal("running cluster must draw power")
	}
	sm.RunAll(1000)
	c.InvariantCheck()
	if len(doneJobs) != 3 || c.Completed() != 3 || c.Submitted() != 3 {
		t.Fatalf("completion bookkeeping: done=%d completed=%d submitted=%d",
			len(doneJobs), c.Completed(), c.Submitted())
	}
	if changes == 0 {
		t.Fatal("OnChange never fired")
	}
	if c.TotalPower() != 0 {
		t.Fatalf("final power %v want 0 (all asleep)", c.TotalPower())
	}
	if c.TotalEnergyJoules(sm.Now()) <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestClusterSubmitBounds(t *testing.T) {
	sm := sim.New()
	c, err := New(DefaultConfig(2), sm, func(int) DPMPolicy { return fixedDPM{timeout: 0} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range server must panic")
		}
	}()
	c.Submit(mkJob(0, 0, 10, 0.1), 2)
}

func TestReliabilityObj(t *testing.T) {
	sm := sim.New()
	cfg := DefaultConfig(2)
	cfg.Server.InitialState = StateActive
	c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: math.Inf(1)} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c.ReliabilityObj(); got != 0 {
		t.Fatalf("empty cluster reliability %v want 0", got)
	}
	// Load server 0 above the 0.8 hot-spot threshold.
	j := &Job{ID: 0, Arrival: 0, Duration: 1000, Req: Resources{0.95, 0.1, 0.1}, Server: -1}
	sm.Schedule(0, func() { c.Submit(j, 0) })
	sm.Run(1)
	r := c.ReliabilityObj()
	if r <= 1 {
		// co-location term alone is 1 (all jobs on one server); the
		// hot-spot term must add more.
		t.Fatalf("hot server reliability %v want > 1", r)
	}
}

func TestSnapshot(t *testing.T) {
	sm := sim.New()
	cfg := DefaultConfig(3)
	cfg.Server.InitialState = StateActive
	c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: math.Inf(1)} })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j1 := &Job{ID: 0, Arrival: 0, Duration: 100, Req: Resources{0.7, 0.1, 0.1}, Server: -1}
	j2 := &Job{ID: 1, Arrival: 0, Duration: 100, Req: Resources{0.7, 0.1, 0.1}, Server: -1}
	sm.Schedule(0, func() { c.Submit(j1, 1); c.Submit(j2, 1) })
	sm.Run(1)

	v := c.Snapshot()
	if v.M != 3 || v.Now != 1 {
		t.Fatalf("snapshot meta: M=%d Now=%v", v.M, v.Now)
	}
	if v.Util[1][0] != 0.7 {
		t.Fatalf("server 1 CPU util %v want 0.7", v.Util[1][0])
	}
	if v.QueueLen[1] != 1 || v.InSystem[1] != 2 {
		t.Fatalf("server 1 queue=%d insystem=%d want 1,2", v.QueueLen[1], v.InSystem[1])
	}
	if v.Pending[1][0] != 0.7 {
		t.Fatalf("server 1 pending CPU %v want 0.7", v.Pending[1][0])
	}
	if v.State[0] != StateActive {
		t.Fatalf("server 0 state %v", v.State[0])
	}
}

// Property: random workloads against random fixed-timeout DPMs always
// complete every job, never violate FCFS start-ordering per server, keep
// energy non-negative, and keep the incremental aggregates consistent.
func TestClusterRandomWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		sm := sim.New()
		m := 2 + g.Intn(3)
		cfg := DefaultConfig(m)
		timeout := []float64{0, 30, 90, math.Inf(1)}[g.Intn(4)]
		c, err := New(cfg, sm, func(int) DPMPolicy { return fixedDPM{timeout: timeout} })
		if err != nil {
			return false
		}
		n := 5 + g.Intn(40)
		jobs := make([]*Job, n)
		tNow := 0.0
		for i := range jobs {
			tNow += g.Exponential(0.05)
			jobs[i] = &Job{
				ID:       i,
				Arrival:  sim.Time(tNow),
				Duration: 10 + g.Float64()*500,
				Req:      Resources{0.05 + g.Float64()*0.5, 0.05 + g.Float64()*0.3, 0.05 + g.Float64()*0.2},
				Server:   -1,
			}
		}
		for _, j := range jobs {
			j := j
			srv := g.Intn(m)
			sm.Schedule(j.Arrival, func() { c.Submit(j, srv) })
		}
		sm.RunAll(1000000)
		c.InvariantCheck()
		if c.Completed() != int64(n) {
			return false
		}
		// Per-server FCFS: start times non-decreasing in submission order.
		lastStart := make(map[int]sim.Time)
		for _, j := range jobs {
			st, ok := j.StartedAt()
			if !ok {
				return false
			}
			if prev, seen := lastStart[j.Server]; seen && st < prev {
				return false
			}
			lastStart[j.Server] = st
			if j.Latency() < j.Duration-1e-9 {
				return false
			}
		}
		return c.TotalEnergyJoules(sm.Now()) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Per-server FCFS ordering above is necessary but not sufficient; also check
// that a server's energy equals power integrated over a piecewise profile in
// a deterministic two-job scenario with overlap.
func TestEnergyPiecewiseExact(t *testing.T) {
	sm := sim.New()
	cfg := DefaultServerConfig()
	cfg.InitialState = StateActive
	s := newTestServer(t, sm, cfg, fixedDPM{timeout: math.Inf(1)})

	j1 := &Job{ID: 1, Arrival: 0, Duration: 100, Req: Resources{0.5, 0.1, 0.1}, Server: -1}
	j2 := &Job{ID: 2, Arrival: 50, Duration: 100, Req: Resources{0.3, 0.1, 0.1}, Server: -1}
	sm.Schedule(0, func() { s.Submit(j1) })
	sm.Schedule(50, func() { s.Submit(j2) })
	sm.RunAll(100)

	pm := cfg.Power
	// [0,50): 0.5; [50,100): 0.8; [100,150): 0.3; then idle.
	want := 50*pm.Active(0.5) + 50*pm.Active(0.8) + 50*pm.Active(0.3) + 50*pm.Active(0)
	if got := s.EnergyJoules(200); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy %v want %v", got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(30).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{M: 0, Server: DefaultServerConfig(), HotSpotThreshold: 0.8},
		{M: 2, Server: DefaultServerConfig(), HotSpotThreshold: 0},
		{M: 2, Server: ServerConfig{Capacity: Resources{0, 1, 1},
			Power: DefaultPowerModel()}, HotSpotThreshold: 0.8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	sm := sim.New()
	if _, err := New(DefaultConfig(2), sm, nil); err == nil {
		t.Fatal("nil DPM factory accepted")
	}
	if _, err := NewServer(0, sm, DefaultServerConfig(), nil); err == nil {
		t.Fatal("nil DPM accepted")
	}
}

func TestJobAccessorPanics(t *testing.T) {
	j := mkJob(0, 0, 10, 0.1)
	for name, fn := range map[string]func(){
		"Latency":  func() { j.Latency() },
		"WaitTime": func() { j.WaitTime() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
