package cluster

import (
	"fmt"

	"hierdrl/internal/trace"
)

// NumResources re-exports the resource dimensionality |D|.
const NumResources = trace.NumResources

// Resources is a fixed-size vector of resource quantities (CPU, memory,
// disk), each normalized to one server's capacity.
type Resources [NumResources]float64

// UnitCapacity is a full server: 1.0 of every resource.
func UnitCapacity() Resources { return Resources{1, 1, 1} }

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	for p := range r {
		r[p] += o[p]
	}
	return r
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	for p := range r {
		r[p] -= o[p]
	}
	return r
}

// FitsIn reports whether a demand of r fits within the free capacity o
// (element-wise, with a tiny tolerance against float drift).
func (r Resources) FitsIn(o Resources) bool {
	const eps = 1e-9
	for p := range r {
		if r[p] > o[p]+eps {
			return false
		}
	}
	return true
}

// MaxFrac returns the largest component (the binding dimension).
func (r Resources) MaxFrac() float64 {
	m := r[0]
	for _, v := range r[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// NonNegative reports whether every component is >= -tolerance.
func (r Resources) NonNegative() bool {
	const eps = 1e-9
	for _, v := range r {
		if v < -eps {
			return false
		}
	}
	return true
}

// Validate checks that every component lies in [0, 1].
func (r Resources) Validate() error {
	for p, v := range r {
		if v < 0 || v > 1 {
			return fmt.Errorf("cluster: resource %d value %v outside [0,1]", p, v)
		}
	}
	return nil
}

// FromTraceReq converts a trace job's demand array.
func FromTraceReq(req [trace.NumResources]float64) Resources {
	var r Resources
	copy(r[:], req[:])
	return r
}

// ToTraceReq is FromTraceReq's inverse, used when an interrupted job is
// converted back into a trace record for requeueing.
func (r Resources) ToTraceReq() [trace.NumResources]float64 {
	var req [trace.NumResources]float64
	copy(req[:], r[:])
	return req
}
