// Package policy defines the job-broker allocation interface shared by the
// global DRL tier and the baselines the paper compares against: round-robin
// (the evaluation's main baseline), random, greedy least-loaded, and a
// power-aware packing heuristic (also used as the behaviour policy that
// seeds the DRL agent's experience memory).
package policy

import (
	"fmt"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/trace"
)

// Allocator picks the target server for each arriving job — the action of
// the paper's global tier, taken at every job-arrival decision epoch.
type Allocator interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate returns the server index in [0, v.M) for job j.
	Allocate(j *cluster.Job, v *cluster.View) int
}

// RoundRobin dispatches jobs to servers in cyclic order — the paper's
// baseline. It spreads load evenly, which minimizes queueing but keeps every
// server powered.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin allocator.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Allocator.
func (r *RoundRobin) Name() string { return "round-robin" }

// Allocate implements Allocator.
func (r *RoundRobin) Allocate(_ *cluster.Job, v *cluster.View) int {
	s := r.next % v.M
	r.next = (r.next + 1) % v.M
	return s
}

// Random dispatches uniformly at random.
type Random struct {
	rng *mat.RNG
}

// NewRandom returns a random allocator.
func NewRandom(rng *mat.RNG) *Random { return &Random{rng: rng} }

// Name implements Allocator.
func (r *Random) Name() string { return "random" }

// Allocate implements Allocator.
func (r *Random) Allocate(_ *cluster.Job, v *cluster.View) int {
	return r.rng.Intn(v.M)
}

// LeastLoaded dispatches to the server whose binding dimension (running plus
// queued demand) is smallest — a latency-greedy policy.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded allocator.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Allocator.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Allocate implements Allocator. Down servers are skipped, which matches
// the LoadIndex fast path bit for bit: there a down server reports
// CommittedLoad = +Inf and loses every tournament, so both paths consider
// the same finite candidates in the same order.
func (*LeastLoaded) Allocate(_ *cluster.Job, v *cluster.View) int {
	best, bestLoad := 0, 2.0
	for i := 0; i < v.M; i++ {
		if v.State[i] == cluster.StateDown {
			continue
		}
		load := v.Util[i].Add(v.Pending[i]).MaxFrac()
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// PackFit consolidates: it picks the awake server with the highest CPU
// utilization whose remaining capacity (counting queued demand) still fits
// the job, waking a sleeping server only when no awake server fits. This is
// the power-aware heuristic used to seed the DRL experience memory.
type PackFit struct {
	// Headroom is capacity deliberately left free per dimension to avoid
	// hot spots (default 0.05).
	Headroom float64
}

// NewPackFit returns a consolidating allocator.
func NewPackFit(headroom float64) (*PackFit, error) {
	if headroom < 0 || headroom >= 1 {
		return nil, fmt.Errorf("policy: headroom %v outside [0,1)", headroom)
	}
	return &PackFit{Headroom: headroom}, nil
}

// Name implements Allocator.
func (*PackFit) Name() string { return "pack-fit" }

// Allocate implements Allocator.
func (p *PackFit) Allocate(j *cluster.Job, v *cluster.View) int {
	limit := 1 - p.Headroom
	best := -1
	bestUtil := -1.0
	for i := 0; i < v.M; i++ {
		if v.State[i] == cluster.StateSleep || v.State[i] == cluster.StateShuttingDown ||
			v.State[i] == cluster.StateDown {
			continue
		}
		total := v.Util[i].Add(v.Pending[i]).Add(j.Req)
		fits := true
		for _, x := range total {
			if x > limit {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		if u := v.Util[i][trace.CPU]; u > bestUtil {
			best, bestUtil = i, u
		}
	}
	if best >= 0 {
		return best
	}
	// Wake the first sleeping/least-burdened server.
	best, bestLoad := 0, 1e18
	for i := 0; i < v.M; i++ {
		if v.State[i] == cluster.StateDown {
			continue
		}
		load := v.Util[i].Add(v.Pending[i]).MaxFrac()
		if v.State[i] == cluster.StateSleep {
			load -= 1 // prefer fully sleeping machines for a clean start
		}
		if load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

var (
	_ Allocator = (*RoundRobin)(nil)
	_ Allocator = (*Random)(nil)
	_ Allocator = (*LeastLoaded)(nil)
	_ Allocator = (*PackFit)(nil)
)
