package policy

import (
	"hierdrl/internal/checkpoint"
)

// SaveState implements checkpoint.Stateful: the cyclic cursor.
func (r *RoundRobin) SaveState(e *checkpoint.Enc) { e.Int(r.next) }

// RestoreState implements checkpoint.Stateful.
func (r *RoundRobin) RestoreState(d *checkpoint.Dec) error {
	r.next = d.Int()
	return nil
}

// SaveState implements checkpoint.Stateful: the draw chain.
func (r *Random) SaveState(e *checkpoint.Enc) { checkpoint.SaveRNG(e, r.rng) }

// RestoreState implements checkpoint.Stateful.
func (r *Random) RestoreState(d *checkpoint.Dec) error {
	return checkpoint.RestoreRNG(d, r.rng)
}

// CheckpointStateless marks the memoryless allocators.
func (*LeastLoaded) CheckpointStateless() {}
func (*PackFit) CheckpointStateless()     {}

var (
	_ checkpoint.Stateful  = (*RoundRobin)(nil)
	_ checkpoint.Stateful  = (*Random)(nil)
	_ checkpoint.Stateless = (*LeastLoaded)(nil)
	_ checkpoint.Stateless = (*PackFit)(nil)
)
