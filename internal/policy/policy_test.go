package policy

import (
	"math"
	"testing"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

func emptyView(m int) *cluster.View {
	v := &cluster.View{
		Now:      sim.Time(0),
		M:        m,
		Util:     make([]cluster.Resources, m),
		Pending:  make([]cluster.Resources, m),
		QueueLen: make([]int, m),
		InSystem: make([]int, m),
		State:    make([]cluster.PowerState, m),
	}
	for i := range v.State {
		v.State[i] = cluster.StateActive
	}
	return v
}

func testJob(cpu float64) *cluster.Job {
	return &cluster.Job{ID: 0, Duration: 100, Req: cluster.Resources{cpu, cpu / 2, cpu / 4}, Server: -1}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	v := emptyView(3)
	got := []int{}
	for i := 0; i < 7; i++ {
		got = append(got, rr.Allocate(testJob(0.1), v))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v want %v", got, want)
		}
	}
	if rr.Name() != "round-robin" {
		t.Fatal("name")
	}
}

func TestRandomInRange(t *testing.T) {
	r := NewRandom(mat.NewRNG(1))
	v := emptyView(5)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		s := r.Allocate(testJob(0.1), v)
		if s < 0 || s >= 5 {
			t.Fatalf("out of range %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random allocator only hit %d/5 servers", len(seen))
	}
}

func TestLeastLoadedPicksEmptiest(t *testing.T) {
	ll := NewLeastLoaded()
	v := emptyView(3)
	v.Util[0] = cluster.Resources{0.5, 0.1, 0.1}
	v.Util[1] = cluster.Resources{0.1, 0.1, 0.1}
	v.Util[2] = cluster.Resources{0.3, 0.1, 0.1}
	if got := ll.Allocate(testJob(0.1), v); got != 1 {
		t.Fatalf("least-loaded chose %d want 1", got)
	}
	// Queued demand counts too.
	v.Pending[1] = cluster.Resources{0.6, 0, 0}
	if got := ll.Allocate(testJob(0.1), v); got != 2 {
		t.Fatalf("least-loaded with pending chose %d want 2", got)
	}
}

func TestPackFitConsolidates(t *testing.T) {
	pf, err := NewPackFit(0.05)
	if err != nil {
		t.Fatalf("NewPackFit: %v", err)
	}
	v := emptyView(3)
	v.Util[0] = cluster.Resources{0.2, 0.1, 0.1}
	v.Util[2] = cluster.Resources{0.6, 0.2, 0.1}
	// Job fits on server 2 (0.6+0.3 <= 0.95): consolidation picks the
	// fuller server.
	if got := pf.Allocate(testJob(0.3), v); got != 2 {
		t.Fatalf("pack-fit chose %d want 2", got)
	}
	// A big job that only fits on the emptier awake servers.
	if got := pf.Allocate(testJob(0.5), v); got != 0 {
		t.Fatalf("pack-fit big job chose %d want 0", got)
	}
}

func TestPackFitAvoidsSleepingUnlessNeeded(t *testing.T) {
	pf, _ := NewPackFit(0.05)
	v := emptyView(2)
	v.State[1] = cluster.StateSleep
	v.Util[0] = cluster.Resources{0.3, 0.1, 0.1}
	if got := pf.Allocate(testJob(0.2), v); got != 0 {
		t.Fatalf("pack-fit woke a sleeping server unnecessarily (chose %d)", got)
	}
	// Now server 0 is too full: must fall back to the sleeping machine.
	v.Util[0] = cluster.Resources{0.9, 0.1, 0.1}
	if got := pf.Allocate(testJob(0.2), v); got != 1 {
		t.Fatalf("pack-fit overflow chose %d want 1", got)
	}
}

func TestPackFitSkipsShuttingDown(t *testing.T) {
	pf, _ := NewPackFit(0.05)
	v := emptyView(2)
	v.State[0] = cluster.StateShuttingDown
	if got := pf.Allocate(testJob(0.2), v); got != 1 {
		t.Fatalf("pack-fit chose a shutting-down server (%d)", got)
	}
}

func TestPackFitValidation(t *testing.T) {
	if _, err := NewPackFit(-0.1); err == nil {
		t.Fatal("negative headroom accepted")
	}
	if _, err := NewPackFit(1); err == nil {
		t.Fatal("headroom 1 accepted")
	}
}

func TestAllocatorsStayInRange(t *testing.T) {
	rng := mat.NewRNG(3)
	pf, _ := NewPackFit(0.05)
	allocs := []Allocator{NewRoundRobin(), NewRandom(rng.Split()), NewLeastLoaded(), pf}
	for _, a := range allocs {
		for trial := 0; trial < 100; trial++ {
			m := 1 + rng.Intn(6)
			v := emptyView(m)
			for i := 0; i < m; i++ {
				v.Util[i] = cluster.Resources{rng.Float64(), rng.Float64(), rng.Float64()}
				v.State[i] = []cluster.PowerState{
					cluster.StateSleep, cluster.StateWaking,
					cluster.StateActive, cluster.StateShuttingDown,
				}[rng.Intn(4)]
			}
			got := a.Allocate(testJob(0.1+rng.Float64()*0.4), v)
			if got < 0 || got >= m {
				t.Fatalf("%s returned %d for M=%d", a.Name(), got, m)
			}
		}
	}
}

// TestLeastCommittedMatchesLeastLoadedScan pins the engine's fastLL rewrite:
// cluster.LeastCommitted (the incremental per-shard load index) must return
// exactly the server LeastLoaded.Allocate picks from a fresh snapshot, at
// every decision point of a live workload — including ties (lowest index)
// and the all-overcommitted >=2.0 sentinel fallback.
func TestLeastCommittedMatchesLeastLoadedScan(t *testing.T) {
	for _, shards := range []int{1, 3} {
		lanes := make([]*sim.Simulator, shards)
		for i := range lanes {
			lanes[i] = sim.New()
		}
		cfg := cluster.DefaultConfig(9)
		cfg.Server.InitialState = cluster.StateActive
		cl, err := cluster.NewSharded(cfg, lanes, func(int) cluster.DPMPolicy { return alwaysOnDPM{} })
		if err != nil {
			t.Fatal(err)
		}
		cl.EnableLoadIndex()
		ll := NewLeastLoaded()
		rng := mat.NewRNG(21)
		var v cluster.View
		arrival := 0.0
		for i := 0; i < 400; i++ {
			arrival += rng.Exponential(0.7)
			for _, ln := range lanes {
				ln.RunBefore(sim.Time(arrival))
			}
			cl.SnapshotInto(&v)
			want := ll.Allocate(nil, &v)
			if got := cl.LeastCommitted(); got != want {
				t.Fatalf("shards=%d step %d: LeastCommitted=%d, scan=%d", shards, i, got, want)
			}
			// Oversized bursts periodically push every server past the 2.0
			// sentinel, exercising the fallback branch.
			cpu := 0.05 + 0.4*rng.Float64()
			if i%50 == 49 {
				cpu = 0.9
			}
			target := want
			lanes[cl.ShardOf(target)].AdvanceTo(sim.Time(arrival))
			cl.Submit(&cluster.Job{
				ID: i, Arrival: sim.Time(arrival), Duration: 30 + rng.Float64()*200,
				Req: cluster.Resources{cpu, cpu * 0.8, cpu * 0.5}, Server: -1,
			}, target)
		}
		cl.InvariantCheck()
	}
}

// alwaysOnDPM keeps servers active for the load-index equivalence test.
type alwaysOnDPM struct{}

func (alwaysOnDPM) OnIdle(sim.Time, *cluster.Server) float64                 { return math.Inf(1) }
func (alwaysOnDPM) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}
func (alwaysOnDPM) Observe(sim.Time, float64, int)                          {}
