package global

import (
	"testing"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// refQValues replicates the seed's per-sample QValues path: remote features
// via per-group encoder inference, one per-head forward, dueling combine.
func refQValues(n *QNetwork, s State) mat.Vec {
	remote := make([]mat.Vec, n.enc.K())
	for k := 0; k < n.enc.K(); k++ {
		remote[k] = n.remoteFeature(k, s.Groups[k])
	}
	out := mat.NewVec(n.enc.M())
	for k := 0; k < n.enc.K(); k++ {
		q := duel(n.subFor(k).Infer(n.headInput(k, s, remote)))
		copy(out[k*n.enc.GroupSize():(k+1)*n.enc.GroupSize()], q)
	}
	return out
}

func randState(enc *Encoder, rng *mat.RNG) State {
	s := State{Groups: make([]mat.Vec, enc.K()), Job: mat.NewVec(enc.JobDim())}
	for k := range s.Groups {
		s.Groups[k] = mat.NewVec(enc.GroupDim())
		for i := range s.Groups[k] {
			s.Groups[k][i] = rng.Float64() * 2
		}
	}
	for i := range s.Job {
		s.Job[i] = rng.Float64()
	}
	return s
}

func qnetVariants() []Config {
	base := DefaultConfig(12)
	base.K = 3
	base.AEHidden = []int{8, 4}
	base.SubQHidden = 16
	variants := make([]Config, 0, 4)
	for _, share := range []bool{true, false} {
		for _, useAE := range []bool{true, false} {
			cfg := base
			cfg.ShareWeights = share
			cfg.UseAutoencoder = useAE
			variants = append(variants, cfg)
		}
	}
	return variants
}

func TestQValuesMatchesPerSampleReference(t *testing.T) {
	for _, cfg := range qnetVariants() {
		enc, err := NewEncoder(12, cfg.K, cfg.DurationNormSec)
		if err != nil {
			t.Fatal(err)
		}
		net := NewQNetwork(enc, cfg, mat.NewRNG(3))
		rng := mat.NewRNG(17)
		for trial := 0; trial < 10; trial++ {
			s := randState(enc, rng)
			got := net.QValues(s)
			want := refQValues(net, s)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("share=%v ae=%v trial=%d: QValues[%d]=%v want %v",
						cfg.ShareWeights, cfg.UseAutoencoder, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMaxQBatchMatchesBest(t *testing.T) {
	for _, cfg := range qnetVariants() {
		enc, err := NewEncoder(12, cfg.K, cfg.DurationNormSec)
		if err != nil {
			t.Fatal(err)
		}
		net := NewQNetwork(enc, cfg, mat.NewRNG(5))
		rng := mat.NewRNG(23)
		states := make([]State, 9)
		for i := range states {
			states[i] = randState(enc, rng)
		}
		vals := net.MaxQBatch(states)
		for i, s := range states {
			_, want := net.Best(s)
			if vals[i] != want {
				t.Fatalf("share=%v ae=%v state %d: MaxQBatch=%v Best=%v",
					cfg.ShareWeights, cfg.UseAutoencoder, i, vals[i], want)
			}
		}
		if len(net.MaxQBatch(nil)) != 0 {
			t.Fatal("MaxQBatch(nil) not empty")
		}
	}
}

// refTrainBatch replicates the seed's per-sample TrainBatch loop.
func refTrainBatch(n *QNetwork, batch []TrainItem, opt nn.Optimizer) float64 {
	if len(batch) == 0 {
		return 0
	}
	params := n.Params()
	nn.ZeroGrads(params)
	scale := 1 / float64(len(batch))
	var total float64
	for _, item := range batch {
		total += n.accumulate(item, scale)
	}
	if n.cfg.ClipNorm > 0 {
		nn.ClipGrads(params, n.cfg.ClipNorm)
	}
	opt.Step(params)
	return total / float64(len(batch))
}

func TestTrainBatchMatchesPerSampleReference(t *testing.T) {
	for _, cfg := range qnetVariants() {
		for _, B := range []int{1, 2, 5, 16} {
			enc, err := NewEncoder(12, cfg.K, cfg.DurationNormSec)
			if err != nil {
				t.Fatal(err)
			}
			netA := NewQNetwork(enc, cfg, mat.NewRNG(9))
			netB := NewQNetwork(enc, cfg, mat.NewRNG(9))
			optA := nn.NewAdam(1e-3)
			optB := nn.NewAdam(1e-3)
			rng := mat.NewRNG(int64(31 + B))
			for step := 0; step < 3; step++ {
				batch := make([]TrainItem, B)
				for b := range batch {
					batch[b] = TrainItem{
						S:      randState(enc, rng),
						Action: rng.Intn(12),
						Target: rng.Normal(0, 1),
					}
				}
				lA := netA.TrainBatch(batch, optA)
				lB := refTrainBatch(netB, batch, optB)
				if lA != lB {
					t.Fatalf("share=%v ae=%v B=%d step=%d: loss %v != reference %v",
						cfg.ShareWeights, cfg.UseAutoencoder, B, step, lA, lB)
				}
			}
			psA, psB := netA.Params(), netB.Params()
			for i := range psA {
				for j := range psA[i].Val {
					if psA[i].Val[j] != psB[i].Val[j] {
						t.Fatalf("share=%v ae=%v B=%d: weights diverge at %s[%d]",
							cfg.ShareWeights, cfg.UseAutoencoder, B, psA[i].Name, j)
					}
				}
			}
		}
	}
}

func TestQValuesIntoSteadyStateZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.K = 3
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	enc, err := NewEncoder(12, cfg.K, cfg.DurationNormSec)
	if err != nil {
		t.Fatal(err)
	}
	net := NewQNetwork(enc, cfg, mat.NewRNG(2))
	s := randState(enc, mat.NewRNG(4))
	out := mat.NewVec(enc.M())
	net.QValuesInto(s, out) // prime the arena
	allocs := testing.AllocsPerRun(100, func() {
		net.QValuesInto(s, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state QValuesInto allocates %v per run, want 0", allocs)
	}
}
