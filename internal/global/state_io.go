package global

import (
	"fmt"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/mat"
	"hierdrl/internal/rl"
	"hierdrl/internal/sim"
)

// SaveParams serializes every trainable tensor of the online Q path in
// enumeration order (AE encoders then Sub-Q heads; decoders train only in
// offline pretraining, which never reruns after a restore).
func (n *QNetwork) SaveParams(e *checkpoint.Enc) {
	params := n.Params()
	e.Int(len(params))
	for _, p := range params {
		e.F64s(p.Val)
	}
}

// RestoreParams reads what SaveParams wrote into the existing tensors and
// invalidates the cached transposes. The architecture is construction
// config, so shapes must match.
func (n *QNetwork) RestoreParams(d *checkpoint.Dec) error {
	params := n.Params()
	cnt := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if cnt != len(params) {
		return fmt.Errorf("%w: Q-network tensor count %d, want %d", checkpoint.ErrConfigMismatch, cnt, len(params))
	}
	for _, p := range params {
		d.F64sInto(p.Val)
	}
	if err := d.Sticky(); err != nil {
		return err
	}
	n.InvalidateTransposes()
	return nil
}

func saveVec(e *checkpoint.Enc, v mat.Vec) { e.F64s(v) }

func saveDRLState(e *checkpoint.Enc, s State) {
	e.Int(len(s.Groups))
	for _, g := range s.Groups {
		saveVec(e, g)
	}
	saveVec(e, s.Job)
}

func restoreDRLState(d *checkpoint.Dec) State {
	n := d.SliceLen(8)
	s := State{Groups: make([]mat.Vec, n)}
	for i := 0; i < n; i++ {
		s.Groups[i] = mat.Vec(d.F64s())
	}
	s.Job = mat.Vec(d.F64s())
	return s
}

func saveTransition(e *checkpoint.Enc, tr Transition) {
	saveDRLState(e, tr.S)
	e.Int(tr.Action)
	e.F64(tr.REq)
	e.F64(tr.Tau)
	saveDRLState(e, tr.Next)
	e.Bool(tr.Terminal)
}

func restoreTransition(d *checkpoint.Dec) Transition {
	var tr Transition
	tr.S = restoreDRLState(d)
	tr.Action = d.Int()
	tr.REq = d.F64()
	tr.Tau = d.F64()
	tr.Next = restoreDRLState(d)
	tr.Terminal = d.Bool()
	return tr
}

// SaveState implements checkpoint.Stateful: the complete learning trajectory
// of the DRL broker. Everything a resumed run's decisions can observe is
// captured — both networks' weights, Adam moments, every RNG chain, the
// replay memory with its slot generations, the open sojourn and pending
// transition, the epsilon schedule, the autoencoder sample reservoir (its
// fill level gates an RNG draw per buffered group), and all counters. The
// target-Q memo is deliberately excluded: it is a cache keyed by (slot,
// generation, target version) and recomputes bitwise-identical values from
// the restored target weights.
func (a *Agent) SaveState(e *checkpoint.Enc) {
	if a.behavior != nil {
		// Checkpoints are taken between session decision epochs, after warmup
		// has completed; a live behaviour policy would not survive the
		// round-trip, so refuse to pretend it does.
		panic("global: checkpoint with active behaviour policy")
	}
	a.net.SaveParams(e)
	a.tgt.SaveParams(e)
	a.opt.SaveState(e)
	a.eps.SaveState(e)
	checkpoint.SaveRNG(e, a.eps.RNG())
	checkpoint.SaveRNG(e, a.rng)
	rl.SaveReplay(a.replay, e, saveTransition)
	a.integ.SaveState(e)
	e.F64(a.lastPower)
	e.Int(a.lastJobs)
	e.F64(a.lastReli)
	e.Bool(a.hasPending)
	saveDRLState(e, a.pendingState)
	e.Int(a.pendingAction)
	e.F64(a.pendingTime.Seconds())
	e.Bool(a.frozen)
	e.I64(a.decisions)
	e.I64(a.updates)
	e.F64(a.lossSum)
	e.I64(a.lossN)
	e.I64s(a.actionCounts)
	e.I64(a.tgtVersion)
	e.Int(len(a.aeSamples))
	for _, v := range a.aeSamples {
		saveVec(e, v)
	}
}

// RestoreState implements checkpoint.Stateful. The agent must have been
// constructed from the same Config (same architecture, replay capacity, and
// server count).
func (a *Agent) RestoreState(d *checkpoint.Dec) error {
	if err := a.net.RestoreParams(d); err != nil {
		return err
	}
	if err := a.tgt.RestoreParams(d); err != nil {
		return err
	}
	if err := a.opt.RestoreState(d); err != nil {
		return err
	}
	if err := a.eps.RestoreState(d); err != nil {
		return err
	}
	if err := checkpoint.RestoreRNG(d, a.eps.RNG()); err != nil {
		return err
	}
	if err := checkpoint.RestoreRNG(d, a.rng); err != nil {
		return err
	}
	if err := rl.RestoreReplay(a.replay, d, restoreTransition); err != nil {
		return err
	}
	if err := a.integ.RestoreState(d); err != nil {
		return err
	}
	a.lastPower = d.F64()
	a.lastJobs = d.Int()
	a.lastReli = d.F64()
	a.hasPending = d.Bool()
	a.pendingState = restoreDRLState(d)
	a.pendingAction = d.Int()
	a.pendingTime = sim.Time(d.F64())
	a.frozen = d.Bool()
	a.decisions = d.I64()
	a.updates = d.I64()
	a.lossSum = d.F64()
	a.lossN = d.I64()
	counts := d.I64s()
	a.tgtVersion = d.I64()
	nAE := d.SliceLen(8)
	if err := d.Sticky(); err != nil {
		return err
	}
	if len(counts) != len(a.actionCounts) {
		return fmt.Errorf("%w: action count width %d, want %d", checkpoint.ErrConfigMismatch, len(counts), len(a.actionCounts))
	}
	copy(a.actionCounts, counts)
	a.aeSamples = a.aeSamples[:0]
	for i := 0; i < nAE; i++ {
		a.aeSamples = append(a.aeSamples, mat.Vec(d.F64s()))
	}
	// Invalidate the target-Q memo: restored slot generations restart the
	// (gen, version) keying, and the cached values belong to the pre-restore
	// arrays anyway.
	a.tgtQVal = nil
	a.tgtQGen = nil
	a.tgtQVer = nil
	return d.Sticky()
}

var _ checkpoint.Stateful = (*Agent)(nil)
