package global

import (
	"fmt"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
)

// Encoder turns a cluster snapshot plus the arriving job into the paper's
// state representation (Sec. V-A):
//
//	s = [ g_1, ..., g_K, s_j ]
//
// where g_k stacks the per-resource utilizations of the servers in group
// G_k, and s_j = [u_j1..u_jD, d_j] is the job's demand vector plus its
// (normalized) duration. Groups are contiguous index ranges of equal size.
type Encoder struct {
	m, k      int
	groupSize int
	durNorm   float64
}

// NewEncoder builds an encoder for m servers in k equal groups.
func NewEncoder(m, k int, durNormSec float64) (*Encoder, error) {
	if m <= 0 || k <= 0 || m%k != 0 {
		return nil, fmt.Errorf("global: encoder needs K | M, got M=%d K=%d", m, k)
	}
	if durNormSec <= 0 {
		return nil, fmt.Errorf("global: duration normalizer %v", durNormSec)
	}
	return &Encoder{m: m, k: k, groupSize: m / k, durNorm: durNormSec}, nil
}

// GroupDim is the dimensionality of one group state vector.
func (e *Encoder) GroupDim() int { return e.groupSize * cluster.NumResources }

// JobDim is the dimensionality of the job state vector.
func (e *Encoder) JobDim() int { return cluster.NumResources + 1 }

// K returns the group count.
func (e *Encoder) K() int { return e.k }

// GroupSize returns servers per group.
func (e *Encoder) GroupSize() int { return e.groupSize }

// M returns the server count.
func (e *Encoder) M() int { return e.m }

// GroupOf returns the group index of a server.
func (e *Encoder) GroupOf(server int) int {
	if server < 0 || server >= e.m {
		panic(fmt.Sprintf("global: server %d out of range [0,%d)", server, e.m))
	}
	return server / e.groupSize
}

// OffsetOf returns a server's position within its group.
func (e *Encoder) OffsetOf(server int) int { return server % e.groupSize }

// ServerOf returns the server index for (group, offset).
func (e *Encoder) ServerOf(group, offset int) int {
	if group < 0 || group >= e.k || offset < 0 || offset >= e.groupSize {
		panic(fmt.Sprintf("global: (group=%d, offset=%d) out of range", group, offset))
	}
	return group*e.groupSize + offset
}

// GroupStates extracts the K group vectors g_k from a snapshot. Each
// server's per-resource feature is its *committed* utilization — running
// plus queued demand, clamped at 2.0 — so the agent can distinguish a busy
// server from a backlogged one. (The paper's state is "current resource
// utilization level of each server"; with FCFS head-of-line blocking the
// queued demand is part of that level for any placement-relevant purpose,
// and without it queue-aware allocation is unlearnable.)
func (e *Encoder) GroupStates(v *cluster.View) []mat.Vec {
	if v.M != e.m {
		panic(fmt.Sprintf("global: snapshot M=%d encoder M=%d", v.M, e.m))
	}
	const maxCommitted = 2.0
	out := make([]mat.Vec, e.k)
	for k := 0; k < e.k; k++ {
		g := mat.NewVec(e.GroupDim())
		for o := 0; o < e.groupSize; o++ {
			srv := e.ServerOf(k, o)
			for p := 0; p < cluster.NumResources; p++ {
				committed := v.Util[srv][p] + v.Pending[srv][p]
				if committed > maxCommitted {
					committed = maxCommitted
				}
				g[o*cluster.NumResources+p] = committed
			}
		}
		out[k] = g
	}
	return out
}

// JobState builds s_j for an arriving job.
func (e *Encoder) JobState(j *cluster.Job) mat.Vec {
	s := mat.NewVec(e.JobDim())
	for p := 0; p < cluster.NumResources; p++ {
		s[p] = j.Req[p]
	}
	d := j.Duration / e.durNorm
	if d > 1 {
		d = 1
	}
	s[cluster.NumResources] = d
	return s
}

// State bundles one full DRL state observation.
type State struct {
	Groups []mat.Vec
	Job    mat.Vec
}

// Encode captures the full state at a job arrival.
func (e *Encoder) Encode(v *cluster.View, j *cluster.Job) State {
	var s State
	e.EncodeInto(v, j, &s)
	return s
}

// EncodeInto captures the full state at a job arrival into dst, reusing its
// buffers when already shaped for this encoder. The written values are
// identical to Encode's; after the first call on a given State the refresh
// is allocation-free, which makes the decision epoch's encode step free of
// heap traffic.
func (e *Encoder) EncodeInto(v *cluster.View, j *cluster.Job, dst *State) {
	if v.M != e.m {
		panic(fmt.Sprintf("global: snapshot M=%d encoder M=%d", v.M, e.m))
	}
	e.EnsureShape(dst)
	e.EncodeServersInto(v, dst, 0, e.m)
	e.EncodeJobInto(j, dst)
}

// EnsureShape sizes dst's buffers for this encoder without writing any
// feature, so disjoint server ranges of a pre-shaped state can be filled
// concurrently (EncodeServersInto) before the single-threaded epoch reads it.
func (e *Encoder) EnsureShape(dst *State) {
	if len(dst.Groups) != e.k {
		dst.Groups = make([]mat.Vec, e.k)
	}
	gd := e.GroupDim()
	for k := 0; k < e.k; k++ {
		if len(dst.Groups[k]) != gd {
			dst.Groups[k] = mat.NewVec(gd)
		}
	}
	if len(dst.Job) != e.JobDim() {
		dst.Job = mat.NewVec(e.JobDim())
	}
}

// EncodeServersInto refreshes the group-state features of servers [lo, hi)
// in a pre-shaped dst (see EnsureShape). Every server owns a disjoint
// NumResources-wide strip of its group's vector, so concurrent calls over
// disjoint ranges are race-free — this is the shard-aware encode: each shard
// worker gathers its own servers' features in parallel, and the decision
// epoch's batched Q evaluation reads the assembled state. The per-server
// arithmetic is exactly EncodeInto's, so a range-gathered state is bitwise
// identical to a sequentially encoded one.
func (e *Encoder) EncodeServersInto(v *cluster.View, dst *State, lo, hi int) {
	const maxCommitted = 2.0
	for srv := lo; srv < hi; srv++ {
		g := dst.Groups[srv/e.groupSize]
		o := srv % e.groupSize
		for p := 0; p < cluster.NumResources; p++ {
			committed := v.Util[srv][p] + v.Pending[srv][p]
			if committed > maxCommitted {
				committed = maxCommitted
			}
			g[o*cluster.NumResources+p] = committed
		}
	}
}

// EncodeJobInto refreshes the job part s_j of a pre-shaped dst.
func (e *Encoder) EncodeJobInto(j *cluster.Job, dst *State) {
	for p := 0; p < cluster.NumResources; p++ {
		dst.Job[p] = j.Req[p]
	}
	d := j.Duration / e.durNorm
	if d > 1 {
		d = 1
	}
	dst.Job[cluster.NumResources] = d
}

// Clone deep-copies the state (replay transitions must not alias live
// buffers).
func (s State) Clone() State {
	out := State{Groups: make([]mat.Vec, len(s.Groups)), Job: s.Job.Clone()}
	for i, g := range s.Groups {
		out.Groups[i] = g.Clone()
	}
	return out
}

// CloneInto deep-copies s into dst, reusing dst's buffers when already
// shaped like s. Pooled replay slots use it so storing a transition stops
// allocating once the buffer pool is warm.
func (s State) CloneInto(dst *State) {
	if len(dst.Groups) != len(s.Groups) {
		dst.Groups = make([]mat.Vec, len(s.Groups))
	}
	for i, g := range s.Groups {
		if len(dst.Groups[i]) != len(g) {
			dst.Groups[i] = mat.NewVec(len(g))
		}
		copy(dst.Groups[i], g)
	}
	if len(dst.Job) != len(s.Job) {
		dst.Job = mat.NewVec(len(s.Job))
	}
	copy(dst.Job, s.Job)
}
