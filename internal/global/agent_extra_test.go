package global

import (
	"bytes"
	"math"
	"testing"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

// With masking on, the greedy action must never target a server the job
// cannot currently fit on (unless nothing fits).
func TestAgentMaskedGreedyAvoidsFullServers(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	a, err := NewAgent(cfg, m, mat.NewRNG(3))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.FreezePolicy() // pure greedy

	v := testView(m, nil)
	// Servers 0..2 are committed beyond capacity for a 0.3-CPU job.
	for i := 0; i < 3; i++ {
		v.Util[i] = cluster.Resources{0.9, 0.2, 0.2}
	}
	a.ObserveCluster(0, 100, 0, 0)
	for trial := 0; trial < 25; trial++ {
		v.Now = sim.Time(float64(trial))
		if got := a.Allocate(testJob(0.3, 300), v); got != 3 {
			t.Fatalf("masked greedy chose full server %d", got)
		}
	}
}

// When no server fits, the fallback must pick the least committed one.
func TestAgentMaskedFallbackLeastCommitted(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	a, err := NewAgent(cfg, m, mat.NewRNG(4))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.FreezePolicy()

	v := testView(m, nil)
	v.Util[0] = cluster.Resources{0.95, 0.2, 0.2}
	v.Util[1] = cluster.Resources{0.90, 0.2, 0.2}
	v.Util[2] = cluster.Resources{0.85, 0.2, 0.2}
	v.Util[3] = cluster.Resources{0.80, 0.2, 0.2}
	a.ObserveCluster(0, 100, 0, 0)
	// A 0.5-CPU job fits nowhere; least committed is server 3.
	if got := a.Allocate(testJob(0.5, 300), v); got != 3 {
		t.Fatalf("fallback chose %d want 3 (least committed)", got)
	}
}

// Unmasked configuration must follow the raw argmax even onto full servers
// (the ablation path).
func TestAgentUnmaskedFollowsArgmax(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	cfg.MaskUnfit = false
	a, err := NewAgent(cfg, m, mat.NewRNG(5))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.FreezePolicy()

	v := testView(m, []float64{0.9, 0.9, 0.9, 0.9})
	a.ObserveCluster(0, 100, 0, 0)
	v.Now = 1
	j := testJob(0.3, 300)
	s := a.EncoderRef().Encode(v, j)
	want, _ := a.Network().Best(s)
	if got := a.Allocate(j, v); got != want {
		t.Fatalf("unmasked greedy chose %d want raw argmax %d", got, want)
	}
}

// A behaviour policy must drive at least ~80% of warmup actions, with the
// remainder uniform.
func TestAgentBehaviorPolicyMix(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	a, err := NewAgent(cfg, m, mat.NewRNG(6))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.SetBehavior(func(*cluster.Job, *cluster.View) int { return 2 })

	v := testView(m, nil)
	a.ObserveCluster(0, 100, 0, 0)
	const n = 500
	for i := 0; i < n; i++ {
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.2, 300), v)
	}
	counts := a.ActionCounts()
	if counts[2] < int64(0.7*n) {
		t.Fatalf("behaviour action chosen only %d/%d times", counts[2], n)
	}
	others := counts[0] + counts[1] + counts[3]
	if others == 0 {
		t.Fatal("uniform mix never fired")
	}
	// Clearing the behaviour restores learned control.
	a.SetBehavior(nil)
	a.FreezePolicy()
	v.Now = sim.Time(n)
	if got := a.Allocate(testJob(0.2, 300), v); got < 0 || got >= m {
		t.Fatalf("post-behaviour action %d out of range", got)
	}
}

func TestAgentBehaviorPolicyValidation(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	a, err := NewAgent(cfg, m, mat.NewRNG(7))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	a.SetBehavior(func(*cluster.Job, *cluster.View) int { return 99 })
	v := testView(m, nil)
	a.ObserveCluster(0, 100, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid behaviour action must panic")
		}
	}()
	for i := 0; i < 50; i++ { // the 20% mix may delay the behaviour call
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.2, 300), v)
	}
}

func TestAgentActionCountsAccumulate(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, nil)
	a.ObserveCluster(0, 100, 0, 0)
	for i := 0; i < 12; i++ {
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.2, 300), v)
	}
	var total int64
	for _, c := range a.ActionCounts() {
		total += c
	}
	if total != 12 {
		t.Fatalf("action counts sum %d want 12", total)
	}
	// Returned slice must be a copy.
	a.ActionCounts()[0] = 999
	var again int64
	for _, c := range a.ActionCounts() {
		again += c
	}
	if again != 12 {
		t.Fatal("ActionCounts leaked internal state")
	}
}

// Dueling identity: Q values must satisfy mean(Q over a group's actions) ==
// V head output (since advantages are mean-centered), which we verify
// indirectly: adding a constant to all advantage weights' bias must shift
// every Q in the group equally.
func TestDuelingMeanCenteredAdvantages(t *testing.T) {
	enc, net := qnetFixture(t, 4, true, true)
	s := enc.Encode(testView(4, []float64{0.2, 0.4, 0.6, 0.8}), testJob(0.3, 600))
	q1 := net.QValues(s)
	// Shift all advantage biases of the shared head by +5; V bias untouched.
	head := net.subs[0]
	out := head.Layers[len(head.Layers)-1]
	for o := 1; o < out.Out; o++ {
		out.B[o] += 5
	}
	q2 := net.QValues(s)
	for i := range q1 {
		if diff := q2[i] - q1[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("uniform advantage shift changed Q[%d] by %v (mean-centering broken)", i, diff)
		}
	}
}

// Save/Load round trip: a fresh agent restored from a trained agent's
// weights must produce identical Q values.
func TestAgentWeightsRoundTrip(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, []float64{0.1, 0.5, 0.3, 0.7})
	a.ObserveCluster(0, 100, 1, 0)
	for i := 0; i < 40; i++ { // a few training steps so weights moved
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.2, 300), v)
	}

	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	b := newTestAgent(t, 4)
	if err := b.LoadWeights(&buf); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	s := a.EncoderRef().Encode(v, testJob(0.2, 300))
	qa := a.Network().QValues(s)
	qb := b.Network().QValues(s)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("Q[%d] differs after restore: %v vs %v", i, qa[i], qb[i])
		}
	}

	// Mismatched architecture must be rejected.
	var buf2 bytes.Buffer
	if err := a.SaveWeights(&buf2); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	cfg := DefaultConfig(4)
	cfg.AEHidden = []int{6, 3}
	cfg.SubQHidden = 16
	c, err := NewAgent(cfg, 4, mat.NewRNG(8))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if err := c.LoadWeights(&buf2); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}

// One warm decision epoch — encode, transition close into the pooled replay
// slot, Q inference, action selection, reward-integrator reset — must not
// allocate. Training epochs (every TrainEvery-th call) run batched
// forward/backward closures and are pinned to a small budget instead.
func TestAllocateEpochZeroAllocOnceWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pinning is meaningless under -race")
	}
	m := 6
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	cfg.ReplayCap = 64 // small ring so the slot pool wraps (and warms) fast
	cfg.MiniBatch = 8
	cfg.TrainEvery = 8
	a, err := NewAgent(cfg, m, mat.NewRNG(5))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	// Shrink the AE sample reservoir so its append-growth phase (which
	// legitimately allocates) finishes during warmup and the steady-state
	// in-place replacement path is what gets measured.
	a.aeSampleCap = 16
	v := testView(m, []float64{0.1, 0.9, 0.3, 0.0, 0.5, 0.2})
	j := testJob(0.2, 300)
	a.ObserveCluster(0, 200, 2, 0.5)
	now := 0.0
	epoch := func() {
		now += 5
		v.Now = sim.Time(now)
		a.ObserveCluster(v.Now, 210, 3, 0.4)
		a.Allocate(j, v)
	}
	// Warm every path: fill the AE sample reservoir's append phase is too
	// big to exhaust here, so cap it by running enough epochs to wrap the
	// replay ring twice and exercise several training rounds.
	for i := 0; i < 3*cfg.ReplayCap; i++ {
		epoch()
	}

	// Non-training epochs: exactly zero. AllocsPerRun(1, ...) runs epoch
	// twice (warmup + measured); across TrainEvery probes at least one
	// measured run is training-free. The reservoir replacement, replay
	// write, inference and selection paths must all be allocation-free, so
	// the *minimum* observed is 0.
	min := math.Inf(1)
	for k := 0; k < cfg.TrainEvery; k++ {
		if avg := testing.AllocsPerRun(1, epoch); avg < min {
			min = avg
		}
	}
	if min != 0 {
		t.Fatalf("warm non-training Allocate epoch allocates %v, want 0", min)
	}
	// Averaged over a full train cycle the budget stays small: the only
	// remaining allocations are the batched-backprop closures inside the
	// TrainEvery-th epoch.
	avg := testing.AllocsPerRun(8*cfg.TrainEvery, epoch)
	if avg > 8 {
		t.Fatalf("amortized Allocate epoch allocates %v, want <= 8", avg)
	}
}

// The AE sample reservoir keeps growing until its cap; make sure the
// replacement path (the steady state) really overwrites in place.
func TestAESampleReservoirReplacesInPlace(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, []float64{0.1, 0.2, 0.3, 0.4})
	a.ObserveCluster(0, 200, 2, 0)
	for i := 0; i < 10; i++ {
		v.Now = sim.Time(float64(i+1) * 10)
		a.ObserveCluster(v.Now, 200, 2, 0)
		a.Allocate(testJob(0.2, 300), v)
	}
	if len(a.aeSamples) == 0 {
		t.Fatal("no AE samples buffered")
	}
	for _, s := range a.aeSamples {
		if len(s) != a.enc.GroupDim() {
			t.Fatalf("sample length %d want %d", len(s), a.enc.GroupDim())
		}
	}
}
