package global

import (
	"fmt"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// QNetwork is the Fig. 6 deep Q-network. For each group k, the Sub-Q head
// consumes the group's own raw state g_k, the job state s_j, and the
// *compressed* representations of every other group (from the
// autoencoders), and emits one Q value per server in G_k. The dimension
// asymmetry — raw own-group state vs compressed remote-group state — is
// exactly the paper's representation-learning trick; weight sharing across
// groups makes every sample train every head.
//
// Two ablation switches mirror Sec. V-A's design claims: UseAutoencoder=false
// feeds raw remote state to the heads; ShareWeights=false trains K
// independent autoencoders and heads.
type QNetwork struct {
	enc   *Encoder
	cfg   Config
	aes   []*nn.Autoencoder // len 1 when shared, K otherwise
	subs  []*nn.MLP         // len 1 when shared, K otherwise
	codeD int               // per-remote-group feature width fed to Sub-Q
}

// NewQNetwork builds the network for the given encoder and config.
func NewQNetwork(enc *Encoder, cfg Config, rng *mat.RNG) *QNetwork {
	n := &QNetwork{enc: enc, cfg: cfg}
	codeDim := cfg.AEHidden[len(cfg.AEHidden)-1]
	if cfg.UseAutoencoder {
		n.codeD = codeDim
	} else {
		n.codeD = enc.GroupDim()
	}
	inDim := enc.GroupDim() + enc.JobDim() + (enc.K()-1)*n.codeD
	// Dueling head (Wang et al., cited by the paper for gradient clipping):
	// the first output is the group's state value V, the remaining
	// GroupSize outputs are advantages A_o, combined as
	// Q_o = V + A_o - mean(A). Cloud placement rewards are dominated by
	// global terms (total power, total jobs) that are identical across
	// actions; the decomposition keeps that common mass in V so the
	// network's capacity goes to the per-action differences that actually
	// drive the argmax.
	sizes := []int{inDim, cfg.SubQHidden, enc.GroupSize() + 1}
	acts := []nn.Activation{nn.ELU{}, nn.Identity{}}

	count := 1
	if !cfg.ShareWeights {
		count = enc.K()
	}
	for i := 0; i < count; i++ {
		if cfg.UseAutoencoder {
			n.aes = append(n.aes, nn.NewAutoencoder(enc.GroupDim(), cfg.AEHidden, rng))
		}
		n.subs = append(n.subs, nn.NewMLP(sizes, acts, rng))
	}
	return n
}

func (n *QNetwork) aeFor(k int) *nn.Autoencoder {
	if n.cfg.ShareWeights {
		return n.aes[0]
	}
	return n.aes[k]
}

func (n *QNetwork) subFor(k int) *nn.MLP {
	if n.cfg.ShareWeights {
		return n.subs[0]
	}
	return n.subs[k]
}

// remoteFeature returns the representation of group k' as seen by another
// group's head: the autoencoder code, or the raw state in the ablation.
func (n *QNetwork) remoteFeature(k int, g mat.Vec) mat.Vec {
	if !n.cfg.UseAutoencoder {
		return g
	}
	return n.aeFor(k).EncodeInfer(g)
}

// headInput assembles the Sub-Q input for group k given precomputed remote
// features.
func (n *QNetwork) headInput(k int, s State, remote []mat.Vec) mat.Vec {
	parts := make([]mat.Vec, 0, 1+1+n.enc.K()-1)
	parts = append(parts, s.Groups[k], s.Job)
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp != k {
			parts = append(parts, remote[kp])
		}
	}
	return mat.Concat(parts...)
}

// duel converts a raw head output [V, A_1..A_G] into Q values
// Q_o = V + A_o - mean(A).
func duel(raw mat.Vec) mat.Vec {
	v := raw[0]
	adv := raw[1:]
	meanA := mat.Vec(adv).Mean()
	q := mat.NewVec(len(adv))
	for o, a := range adv {
		q[o] = v + a - meanA
	}
	return q
}

// QValues performs inference for every action: a vector of M Q-value
// estimates, one per server.
func (n *QNetwork) QValues(s State) mat.Vec {
	remote := make([]mat.Vec, n.enc.K())
	for k := 0; k < n.enc.K(); k++ {
		remote[k] = n.remoteFeature(k, s.Groups[k])
	}
	out := mat.NewVec(n.enc.M())
	for k := 0; k < n.enc.K(); k++ {
		q := duel(n.subFor(k).Infer(n.headInput(k, s, remote)))
		copy(out[k*n.enc.GroupSize():(k+1)*n.enc.GroupSize()], q)
	}
	return out
}

// Best returns the greedy action and its value.
func (n *QNetwork) Best(s State) (action int, value float64) {
	q := n.QValues(s)
	return q.Max()
}

// Q returns the value estimate of one (state, action) pair.
func (n *QNetwork) Q(s State, action int) float64 {
	k := n.enc.GroupOf(action)
	remote := make([]mat.Vec, n.enc.K())
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp != k {
			remote[kp] = n.remoteFeature(kp, s.Groups[kp])
		}
	}
	q := duel(n.subFor(k).Infer(n.headInput(k, s, remote)))
	return q[n.enc.OffsetOf(action)]
}

// TrainItem is one supervised pair for Q regression.
type TrainItem struct {
	S      State
	Action int
	Target float64
}

// TrainBatch runs one optimizer step on a minibatch, backpropagating through
// the chosen head and (when autoencoders are enabled) through the encoders
// of the remote groups. It returns the mean squared error.
func (n *QNetwork) TrainBatch(batch []TrainItem, opt nn.Optimizer) float64 {
	if len(batch) == 0 {
		return 0
	}
	params := n.Params()
	nn.ZeroGrads(params)
	scale := 1 / float64(len(batch))
	var total float64
	for _, item := range batch {
		total += n.accumulate(item, scale)
	}
	if n.cfg.ClipNorm > 0 {
		nn.ClipGrads(params, n.cfg.ClipNorm)
	}
	opt.Step(params)
	return total / float64(len(batch))
}

// accumulate adds one item's gradient contribution (scaled) and returns its
// squared error.
func (n *QNetwork) accumulate(item TrainItem, scale float64) float64 {
	k := n.enc.GroupOf(item.Action)
	o := n.enc.OffsetOf(item.Action)

	// Forward remote features with backprop capture, indexed by group.
	remote := make([]mat.Vec, n.enc.K())
	backs := make([]func(mat.Vec) mat.Vec, n.enc.K())
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp == k {
			continue
		}
		if n.cfg.UseAutoencoder {
			remote[kp], backs[kp] = n.aeFor(kp).Encode(item.S.Groups[kp])
		} else {
			remote[kp] = item.S.Groups[kp]
		}
	}
	in := n.headInput(k, item.S, remote)
	raw, subBack := n.subFor(k).Forward(in)
	q := duel(raw)

	err := q[o] - item.Target
	g := 2 * err * scale
	// Backprop through the dueling combination: dQ_o/dV = 1,
	// dQ_o/dA_{o'} = delta_{o o'} - 1/G.
	dOut := mat.NewVec(len(raw))
	dOut[0] = g
	gs := float64(n.enc.GroupSize())
	for op := 0; op < n.enc.GroupSize(); op++ {
		if op == o {
			dOut[1+op] = g * (1 - 1/gs)
		} else {
			dOut[1+op] = g * (-1 / gs)
		}
	}
	dIn := subBack(dOut)

	// Route gradients into the remote encoders. Input layout:
	// [g_k | job | remote features in ascending kp order].
	if n.cfg.UseAutoencoder {
		base := n.enc.GroupDim() + n.enc.JobDim()
		idx := 0
		for kp := 0; kp < n.enc.K(); kp++ {
			if kp == k {
				continue
			}
			seg := mat.Vec(dIn[base+idx*n.codeD : base+(idx+1)*n.codeD])
			backs[kp](seg)
			idx++
		}
	}
	return err * err
}

// PretrainAutoencoder trains the autoencoder(s) on group-state samples with
// the reconstruction objective (the offline representation-learning phase).
// It returns the final epoch's mean loss; it is a no-op (returning 0) when
// the autoencoder path is disabled.
func (n *QNetwork) PretrainAutoencoder(samples []mat.Vec, epochs, batchSize int, lr float64, rng *mat.RNG) float64 {
	if !n.cfg.UseAutoencoder || len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 || epochs <= 0 || lr <= 0 {
		panic(fmt.Sprintf("global: bad AE pretrain params epochs=%d batch=%d lr=%v",
			epochs, batchSize, lr))
	}
	var last float64
	for _, ae := range n.aes {
		opt := nn.NewAdam(lr)
		for e := 0; e < epochs; e++ {
			batch := make([]mat.Vec, 0, batchSize)
			for b := 0; b < batchSize; b++ {
				batch = append(batch, samples[rng.Intn(len(samples))])
			}
			last = ae.TrainBatch(batch, opt, n.cfg.ClipNorm)
		}
	}
	return last
}

// Params enumerates the trainable parameters of the online Q path (encoder
// weights plus Sub-Q heads; decoder weights train only in
// PretrainAutoencoder).
func (n *QNetwork) Params() []nn.Param {
	var ps []nn.Param
	for i, ae := range n.aes {
		for _, p := range ae.Enc.Params() {
			p.Name = fmt.Sprintf("ae%d.%s", i, p.Name)
			ps = append(ps, p)
		}
	}
	for i, sub := range n.subs {
		for _, p := range sub.Params() {
			p.Name = fmt.Sprintf("subq%d.%s", i, p.Name)
			ps = append(ps, p)
		}
	}
	return ps
}

// NumParams returns the scalar parameter count of the online Q path.
func (n *QNetwork) NumParams() int {
	total := 0
	for _, ae := range n.aes {
		total += ae.Enc.NumParams()
	}
	for _, sub := range n.subs {
		total += sub.NumParams()
	}
	return total
}

// CopyWeightsFrom copies all weights (including decoders) from src. Used for
// target-network synchronization; the two networks must share configuration.
func (n *QNetwork) CopyWeightsFrom(src *QNetwork) {
	if len(n.aes) != len(src.aes) || len(n.subs) != len(src.subs) {
		panic("global: CopyWeightsFrom structure mismatch")
	}
	for i := range n.aes {
		n.aes[i].CopyWeightsFrom(src.aes[i])
	}
	for i := range n.subs {
		n.subs[i].CopyWeightsFrom(src.subs[i])
	}
}
