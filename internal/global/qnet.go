package global

import (
	"fmt"

	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
)

// QNetwork is the Fig. 6 deep Q-network. For each group k, the Sub-Q head
// consumes the group's own raw state g_k, the job state s_j, and the
// *compressed* representations of every other group (from the
// autoencoders), and emits one Q value per server in G_k. The dimension
// asymmetry — raw own-group state vs compressed remote-group state — is
// exactly the paper's representation-learning trick; weight sharing across
// groups makes every sample train every head.
//
// Two ablation switches mirror Sec. V-A's design claims: UseAutoencoder=false
// feeds raw remote state to the heads; ShareWeights=false trains K
// independent autoencoders and heads.
//
// Compute model: in the (default) weight-sharing configuration every
// inference and training call collapses to batched GEMMs — all K heads (and
// all remote-group encodes) of a state are evaluated as one matrix-matrix
// product, and TrainBatch pushes the whole minibatch through the network in
// one shot. The batched paths are bitwise identical to the per-sample
// reference paths (see internal/mat kernel ordering contract), which the
// qnet batch tests assert.
type QNetwork struct {
	enc   *Encoder
	cfg   Config
	aes   []*nn.Autoencoder // len 1 when shared, K otherwise
	subs  []*nn.MLP         // len 1 when shared, K otherwise
	codeD int               // per-remote-group feature width fed to Sub-Q

	// ws is the scratch arena for the inference fast paths. A QNetwork is
	// not safe for concurrent use; concurrent experiment runs each own
	// their networks.
	ws        *mat.Workspace
	remoteBuf []mat.Vec

	// params caches the Params() enumeration: the parameter tensors are
	// fixed at construction, so the slice (and the formatted names) never
	// change, and rebuilding it per training step would allocate.
	params []nn.Param
}

// NewQNetwork builds the network for the given encoder and config.
func NewQNetwork(enc *Encoder, cfg Config, rng *mat.RNG) *QNetwork {
	n := &QNetwork{enc: enc, cfg: cfg, ws: mat.NewWorkspace()}
	codeDim := cfg.AEHidden[len(cfg.AEHidden)-1]
	if cfg.UseAutoencoder {
		n.codeD = codeDim
	} else {
		n.codeD = enc.GroupDim()
	}
	inDim := enc.GroupDim() + enc.JobDim() + (enc.K()-1)*n.codeD
	// Dueling head (Wang et al., cited by the paper for gradient clipping):
	// the first output is the group's state value V, the remaining
	// GroupSize outputs are advantages A_o, combined as
	// Q_o = V + A_o - mean(A). Cloud placement rewards are dominated by
	// global terms (total power, total jobs) that are identical across
	// actions; the decomposition keeps that common mass in V so the
	// network's capacity goes to the per-action differences that actually
	// drive the argmax.
	sizes := []int{inDim, cfg.SubQHidden, enc.GroupSize() + 1}
	acts := []nn.Activation{nn.ELU{}, nn.Identity{}}

	count := 1
	if !cfg.ShareWeights {
		count = enc.K()
	}
	for i := 0; i < count; i++ {
		if cfg.UseAutoencoder {
			n.aes = append(n.aes, nn.NewAutoencoder(enc.GroupDim(), cfg.AEHidden, rng))
		}
		n.subs = append(n.subs, nn.NewMLP(sizes, acts, rng))
	}
	n.remoteBuf = make([]mat.Vec, enc.K())
	return n
}

// inDim is the Sub-Q head input width.
func (n *QNetwork) inDim() int {
	return n.enc.GroupDim() + n.enc.JobDim() + (n.enc.K()-1)*n.codeD
}

func (n *QNetwork) aeFor(k int) *nn.Autoencoder {
	if n.cfg.ShareWeights {
		return n.aes[0]
	}
	return n.aes[k]
}

func (n *QNetwork) subFor(k int) *nn.MLP {
	if n.cfg.ShareWeights {
		return n.subs[0]
	}
	return n.subs[k]
}

// remoteFeature returns the representation of group k' as seen by another
// group's head: the autoencoder code, or the raw state in the ablation.
func (n *QNetwork) remoteFeature(k int, g mat.Vec) mat.Vec {
	if !n.cfg.UseAutoencoder {
		return g
	}
	return n.aeFor(k).EncodeInfer(g)
}

// headInput assembles the Sub-Q input for group k given precomputed remote
// features.
func (n *QNetwork) headInput(k int, s State, remote []mat.Vec) mat.Vec {
	parts := make([]mat.Vec, 0, 1+1+n.enc.K()-1)
	parts = append(parts, s.Groups[k], s.Job)
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp != k {
			parts = append(parts, remote[kp])
		}
	}
	return mat.Concat(parts...)
}

// fillHeadInput writes the Sub-Q input for group k into dst (layout
// [g_k | job | remote features in ascending k' order], identical to
// headInput).
func (n *QNetwork) fillHeadInput(dst mat.Vec, k int, s State, remote []mat.Vec) {
	gd := n.enc.GroupDim()
	jd := n.enc.JobDim()
	copy(dst[:gd], s.Groups[k])
	copy(dst[gd:gd+jd], s.Job)
	off := gd + jd
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp == k {
			continue
		}
		copy(dst[off:off+n.codeD], remote[kp])
		off += n.codeD
	}
}

// duel converts a raw head output [V, A_1..A_G] into Q values
// Q_o = V + A_o - mean(A).
func duel(raw mat.Vec) mat.Vec {
	q := mat.NewVec(len(raw) - 1)
	duelInto(raw, q)
	return q
}

// duelInto is duel writing into a caller-owned slice of length len(raw)-1.
func duelInto(raw, q mat.Vec) {
	v := raw[0]
	adv := raw[1:]
	meanA := mat.Vec(adv).Mean()
	for o, a := range adv {
		q[o] = v + a - meanA
	}
}

// remoteFeaturesWS computes the remote-group features of s into the reused
// remoteBuf, batching the shared-encoder case into one GEMM.
func (n *QNetwork) remoteFeaturesWS(ws *mat.Workspace, s State) []mat.Vec {
	K := n.enc.K()
	remote := n.remoteBuf
	switch {
	case !n.cfg.UseAutoencoder:
		for k := 0; k < K; k++ {
			remote[k] = s.Groups[k]
		}
	case n.cfg.ShareWeights:
		X := ws.TakeMatUninit(K, n.enc.GroupDim())
		for k := 0; k < K; k++ {
			X.Row(k).CopyFrom(s.Groups[k])
		}
		codes := n.aes[0].Enc.InferBatchWS(ws, X)
		for k := 0; k < K; k++ {
			remote[k] = codes.Row(k)
		}
	default:
		for k := 0; k < K; k++ {
			remote[k] = n.aes[k].Enc.InferWS(ws, s.Groups[k])
		}
	}
	return remote
}

// QValues performs inference for every action: a vector of M Q-value
// estimates, one per server.
func (n *QNetwork) QValues(s State) mat.Vec {
	out := mat.NewVec(n.enc.M())
	n.QValuesInto(s, out)
	return out
}

// QValuesInto computes QValues into a caller-owned vector of length M. With
// weight sharing, all K Sub-Q heads (and all K remote encodes) evaluate as
// one batched forward; apart from the caller's out vector the call is
// allocation-free at steady state.
func (n *QNetwork) QValuesInto(s State, out mat.Vec) {
	if len(out) != n.enc.M() {
		panic(fmt.Sprintf("global: QValuesInto dst length %d want %d", len(out), n.enc.M()))
	}
	K := n.enc.K()
	G := n.enc.GroupSize()
	ws := n.ws
	ws.Reset()
	remote := n.remoteFeaturesWS(ws, s)
	if n.cfg.ShareWeights {
		in := ws.TakeMatUninit(K, n.inDim())
		for k := 0; k < K; k++ {
			n.fillHeadInput(in.Row(k), k, s, remote)
		}
		raw := n.subs[0].InferBatchWS(ws, in)
		for k := 0; k < K; k++ {
			duelInto(raw.Row(k), out[k*G:(k+1)*G])
		}
		return
	}
	for k := 0; k < K; k++ {
		in := ws.TakeUninit(n.inDim())
		n.fillHeadInput(in, k, s, remote)
		raw := n.subs[k].InferWS(ws, in)
		duelInto(raw, out[k*G:(k+1)*G])
	}
}

// Best returns the greedy action and its value.
func (n *QNetwork) Best(s State) (action int, value float64) {
	q := n.QValues(s)
	return q.Max()
}

// MaxQBatch returns max_a Q(s, a) for every state, batching all states and
// all heads through one forward pass in the weight-sharing configuration.
// Each value is bitwise identical to QValues(s).Max().
func (n *QNetwork) MaxQBatch(states []State) []float64 {
	vals := make([]float64, len(states))
	n.MaxQBatchInto(states, vals)
	return vals
}

// MaxQBatchInto is MaxQBatch writing into a caller-owned slice of length
// len(states); with a retained dst the call is allocation-free at steady
// state.
func (n *QNetwork) MaxQBatchInto(states []State, vals []float64) {
	if len(vals) != len(states) {
		panic(fmt.Sprintf("global: MaxQBatchInto dst length %d want %d", len(vals), len(states)))
	}
	if len(states) == 0 {
		return
	}
	if !n.cfg.ShareWeights {
		for i, s := range states {
			_, vals[i] = n.Best(s)
		}
		return
	}
	K := n.enc.K()
	G := n.enc.GroupSize()
	gd := n.enc.GroupDim()
	ws := n.ws
	ws.Reset()
	R := len(states) * K
	var codes *mat.Dense
	if n.cfg.UseAutoencoder {
		X := ws.TakeMatUninit(R, gd)
		for i, s := range states {
			for k := 0; k < K; k++ {
				X.Row(i*K + k).CopyFrom(s.Groups[k])
			}
		}
		codes = n.aes[0].Enc.InferBatchWS(ws, X)
	}
	in := ws.TakeMatUninit(R, n.inDim())
	remote := n.remoteBuf
	for i, s := range states {
		for k := 0; k < K; k++ {
			if n.cfg.UseAutoencoder {
				remote[k] = codes.Row(i*K + k)
			} else {
				remote[k] = s.Groups[k]
			}
		}
		for k := 0; k < K; k++ {
			n.fillHeadInput(in.Row(i*K+k), k, s, remote)
		}
	}
	raw := n.subs[0].InferBatchWS(ws, in)
	out := ws.TakeUninit(n.enc.M())
	for i := range states {
		for k := 0; k < K; k++ {
			duelInto(raw.Row(i*K+k), out[k*G:(k+1)*G])
		}
		_, vals[i] = out.Max()
	}
}

// Q returns the value estimate of one (state, action) pair.
func (n *QNetwork) Q(s State, action int) float64 {
	k := n.enc.GroupOf(action)
	remote := make([]mat.Vec, n.enc.K())
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp != k {
			remote[kp] = n.remoteFeature(kp, s.Groups[kp])
		}
	}
	q := duel(n.subFor(k).Infer(n.headInput(k, s, remote)))
	return q[n.enc.OffsetOf(action)]
}

// TrainItem is one supervised pair for Q regression.
type TrainItem struct {
	S      State
	Action int
	Target float64
}

// TrainBatch runs one optimizer step on a minibatch, backpropagating through
// the chosen head and (when autoencoders are enabled) through the encoders
// of the remote groups. It returns the mean squared error. With weight
// sharing the whole minibatch flows through the encoder and the Sub-Q head
// as batched GEMMs; the resulting gradients (and therefore weights) are
// bitwise identical to the per-sample accumulation path.
func (n *QNetwork) TrainBatch(batch []TrainItem, opt nn.Optimizer) float64 {
	if len(batch) == 0 {
		return 0
	}
	params := n.Params()
	nn.ZeroGrads(params)
	scale := 1 / float64(len(batch))
	var total float64
	if n.cfg.ShareWeights {
		total = n.accumulateBatch(batch, scale)
	} else {
		for _, item := range batch {
			total += n.accumulate(item, scale)
		}
	}
	if n.cfg.ClipNorm > 0 {
		nn.ClipGrads(params, n.cfg.ClipNorm)
	}
	opt.Step(params)
	n.InvalidateTransposes()
	return total / float64(len(batch))
}

// InvalidateTransposes marks all cached layer transposes stale. TrainBatch
// calls it after every optimizer step; callers mutating weights directly
// (e.g. snapshot restores) must call it themselves.
func (n *QNetwork) InvalidateTransposes() {
	for _, ae := range n.aes {
		ae.Enc.InvalidateTransposes()
		ae.Dec.InvalidateTransposes()
	}
	for _, sub := range n.subs {
		sub.InvalidateTransposes()
	}
}

// accumulateBatch adds the whole minibatch's gradient contribution through
// the batched forward/backward path (weight sharing only) and returns the
// summed squared error. Row ordering everywhere is sample-major with remote
// groups ascending, which makes every parameter tensor receive per-sample
// contributions in exactly the order the per-sample path would produce.
func (n *QNetwork) accumulateBatch(batch []TrainItem, scale float64) float64 {
	B := len(batch)
	K := n.enc.K()
	G := n.enc.GroupSize()
	gd := n.enc.GroupDim()
	jd := n.enc.JobDim()

	// All scratch (inputs, activations, gradients) comes from the arena;
	// nothing here survives the call, and no inference runs concurrently,
	// so the whole training step is allocation-light.
	ws := n.ws
	ws.Reset()

	var codes *mat.Dense
	var aeBack func(*mat.Dense) *mat.Dense
	if n.cfg.UseAutoencoder {
		AEin := ws.TakeMatUninit(B*(K-1), gd)
		idx := 0
		for _, item := range batch {
			k := n.enc.GroupOf(item.Action)
			for kp := 0; kp < K; kp++ {
				if kp == k {
					continue
				}
				AEin.Row(idx).CopyFrom(item.S.Groups[kp])
				idx++
			}
		}
		// The encoder is the graph's input layer: nothing consumes dL/dX.
		codes, aeBack = n.aes[0].Enc.ForwardBatchWS(ws, AEin, false)
	}

	in := ws.TakeMatUninit(B, n.inDim())
	remote := n.remoteBuf
	idx := 0
	for b, item := range batch {
		k := n.enc.GroupOf(item.Action)
		for kp := 0; kp < K; kp++ {
			if kp == k {
				continue
			}
			if n.cfg.UseAutoencoder {
				remote[kp] = codes.Row(idx)
				idx++
			} else {
				remote[kp] = item.S.Groups[kp]
			}
		}
		n.fillHeadInput(in.Row(b), k, item.S, remote)
	}
	raw, subBack := n.subs[0].ForwardBatchWS(ws, in, n.cfg.UseAutoencoder)

	dOut := ws.TakeMatUninit(B, G+1)
	gs := float64(G)
	var total float64
	for b, item := range batch {
		o := n.enc.OffsetOf(item.Action)
		rawRow := raw.Row(b)
		v := rawRow[0]
		adv := mat.Vec(rawRow[1:])
		meanA := adv.Mean()
		q := v + adv[o] - meanA
		err := q - item.Target
		total += err * err
		g := 2 * err * scale
		// Backprop through the dueling combination: dQ_o/dV = 1,
		// dQ_o/dA_{o'} = delta_{o o'} - 1/G.
		dRow := dOut.Row(b)
		dRow[0] = g
		for op := 0; op < G; op++ {
			if op == o {
				dRow[1+op] = g * (1 - 1/gs)
			} else {
				dRow[1+op] = g * (-1 / gs)
			}
		}
	}
	dIn := subBack(dOut)

	if n.cfg.UseAutoencoder {
		dCodes := ws.TakeMatUninit(B*(K-1), n.codeD)
		base := gd + jd
		idx := 0
		for b, item := range batch {
			k := n.enc.GroupOf(item.Action)
			seg := 0
			dRow := dIn.Row(b)
			for kp := 0; kp < K; kp++ {
				if kp == k {
					continue
				}
				copy(dCodes.Row(idx), dRow[base+seg*n.codeD:base+(seg+1)*n.codeD])
				idx++
				seg++
			}
		}
		aeBack(dCodes)
	}
	return total
}

// accumulate adds one item's gradient contribution (scaled) and returns its
// squared error. This is the per-sample reference path: the batched path
// must (and is tested to) reproduce it bitwise.
func (n *QNetwork) accumulate(item TrainItem, scale float64) float64 {
	k := n.enc.GroupOf(item.Action)
	o := n.enc.OffsetOf(item.Action)

	// Forward remote features with backprop capture, indexed by group.
	remote := make([]mat.Vec, n.enc.K())
	backs := make([]func(mat.Vec) mat.Vec, n.enc.K())
	for kp := 0; kp < n.enc.K(); kp++ {
		if kp == k {
			continue
		}
		if n.cfg.UseAutoencoder {
			remote[kp], backs[kp] = n.aeFor(kp).Encode(item.S.Groups[kp])
		} else {
			remote[kp] = item.S.Groups[kp]
		}
	}
	in := n.headInput(k, item.S, remote)
	raw, subBack := n.subFor(k).Forward(in)
	q := duel(raw)

	err := q[o] - item.Target
	g := 2 * err * scale
	// Backprop through the dueling combination: dQ_o/dV = 1,
	// dQ_o/dA_{o'} = delta_{o o'} - 1/G.
	dOut := mat.NewVec(len(raw))
	dOut[0] = g
	gs := float64(n.enc.GroupSize())
	for op := 0; op < n.enc.GroupSize(); op++ {
		if op == o {
			dOut[1+op] = g * (1 - 1/gs)
		} else {
			dOut[1+op] = g * (-1 / gs)
		}
	}
	dIn := subBack(dOut)

	// Route gradients into the remote encoders. Input layout:
	// [g_k | job | remote features in ascending kp order].
	if n.cfg.UseAutoencoder {
		base := n.enc.GroupDim() + n.enc.JobDim()
		idx := 0
		for kp := 0; kp < n.enc.K(); kp++ {
			if kp == k {
				continue
			}
			seg := mat.Vec(dIn[base+idx*n.codeD : base+(idx+1)*n.codeD])
			backs[kp](seg)
			idx++
		}
	}
	return err * err
}

// PretrainAutoencoder trains the autoencoder(s) on group-state samples with
// the reconstruction objective (the offline representation-learning phase).
// It returns the final epoch's mean loss; it is a no-op (returning 0) when
// the autoencoder path is disabled. Each epoch's minibatch runs through the
// batched autoencoder trainer.
func (n *QNetwork) PretrainAutoencoder(samples []mat.Vec, epochs, batchSize int, lr float64, rng *mat.RNG) float64 {
	if !n.cfg.UseAutoencoder || len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 || epochs <= 0 || lr <= 0 {
		panic(fmt.Sprintf("global: bad AE pretrain params epochs=%d batch=%d lr=%v",
			epochs, batchSize, lr))
	}
	var last float64
	for _, ae := range n.aes {
		opt := nn.NewAdam(lr)
		for e := 0; e < epochs; e++ {
			batch := make([]mat.Vec, 0, batchSize)
			for b := 0; b < batchSize; b++ {
				batch = append(batch, samples[rng.Intn(len(samples))])
			}
			last = ae.TrainBatch(batch, opt, n.cfg.ClipNorm)
		}
	}
	return last
}

// Params enumerates the trainable parameters of the online Q path (encoder
// weights plus Sub-Q heads; decoder weights train only in
// PretrainAutoencoder). The enumeration is cached: the tensors are fixed at
// construction, so repeated calls (one per training step) return the same
// slice without allocating.
func (n *QNetwork) Params() []nn.Param {
	if n.params == nil {
		for i, ae := range n.aes {
			for _, p := range ae.Enc.Params() {
				p.Name = fmt.Sprintf("ae%d.%s", i, p.Name)
				n.params = append(n.params, p)
			}
		}
		for i, sub := range n.subs {
			for _, p := range sub.Params() {
				p.Name = fmt.Sprintf("subq%d.%s", i, p.Name)
				n.params = append(n.params, p)
			}
		}
	}
	return n.params
}

// NumParams returns the scalar parameter count of the online Q path.
func (n *QNetwork) NumParams() int {
	total := 0
	for _, ae := range n.aes {
		total += ae.Enc.NumParams()
	}
	for _, sub := range n.subs {
		total += sub.NumParams()
	}
	return total
}

// CopyWeightsFrom copies all weights (including decoders) from src. Used for
// target-network synchronization; the two networks must share configuration.
func (n *QNetwork) CopyWeightsFrom(src *QNetwork) {
	if len(n.aes) != len(src.aes) || len(n.subs) != len(src.subs) {
		panic("global: CopyWeightsFrom structure mismatch")
	}
	for i := range n.aes {
		n.aes[i].CopyWeightsFrom(src.aes[i])
	}
	for i := range n.subs {
		n.subs[i].CopyWeightsFrom(src.subs[i])
	}
}
