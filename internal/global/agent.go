package global

import (
	"fmt"
	"io"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
	"hierdrl/internal/rl"
	"hierdrl/internal/sim"
)

// Transition is one experience-memory record: the SMDP tuple
// (s_k, a_k, equivalent reward rate, sojourn, s_{k+1}).
type Transition struct {
	S      State
	Action int
	REq    float64
	Tau    float64
	Next   State
	// Terminal marks end-of-episode transitions (no successor bootstrap).
	Terminal bool
}

// Agent is the DRL job broker. It implements policy.Allocator, learning
// online: each Allocate call is one decision epoch (a job arrival); the
// reward rate of Eqn. (4) is integrated exactly between consecutive epochs
// via the cluster's change feed; completed transitions land in experience
// replay; and every TrainEvery decisions the DNN takes a minibatch step
// against a periodically synchronized target network.
type Agent struct {
	cfg Config
	enc *Encoder
	net *QNetwork
	tgt *QNetwork
	opt *nn.Adam
	eps *rl.EpsilonGreedy
	rng *mat.RNG

	replay *rl.Replay[Transition]
	integ  *rl.RewardIntegrator

	lastPower float64
	lastJobs  int
	lastReli  float64

	hasPending    bool
	pendingState  State
	pendingAction int
	pendingTime   sim.Time

	// behavior, when non-nil, overrides action selection (Algorithm 1's
	// offline phase allows an arbitrary or refined behaviour policy to
	// fill the experience memory). A 20% uniform mix keeps coverage.
	behavior func(j *cluster.Job, v *cluster.View) int

	frozen       bool
	decisions    int64
	updates      int64
	lossSum      float64
	lossN        int64
	actionCounts []int64

	// Target-network max-Q memoization: the target net is frozen between
	// syncs, so a transition's successor value is a pure function of
	// (replay slot, slot generation, target version). Caching it skips the
	// most expensive recomputation in trainStep without changing a single
	// bit of any result.
	tgtVersion int64
	tgtQVal    []float64
	tgtQGen    []int64
	tgtQVer    []int64

	// aeSamples buffers group states for offline autoencoder pretraining.
	aeSamples   []mat.Vec
	aeSampleCap int

	// Decision-epoch scratch: every per-epoch buffer (encoded state, Q
	// values, fit candidates, training batch assembly) is retained on the
	// agent, so a warm Allocate call performs no heap allocation.
	encScratch  State
	qScratch    mat.Vec
	fitScratch  []int
	idxScratch  []int
	nextScratch []State
	missScratch []int
	itemScratch []TrainItem
	maxQScratch []float64
}

// NewAgent builds a DRL agent for a cluster of m servers.
func NewAgent(cfg Config, m int, rng *mat.RNG) (*Agent, error) {
	if err := cfg.Validate(m); err != nil {
		return nil, err
	}
	enc, err := NewEncoder(m, cfg.K, cfg.DurationNormSec)
	if err != nil {
		return nil, err
	}
	net := NewQNetwork(enc, cfg, rng.Split())
	tgt := NewQNetwork(enc, cfg, rng.Split())
	tgt.CopyWeightsFrom(net)
	return &Agent{
		cfg:          cfg,
		enc:          enc,
		net:          net,
		tgt:          tgt,
		opt:          nn.NewAdam(cfg.LearningRate),
		eps:          rl.NewEpsilonGreedy(cfg.Epsilon, cfg.EpsilonMin, cfg.EpsilonDecay, rng.Split()),
		rng:          rng.Split(),
		replay:       rl.NewReplay[Transition](cfg.ReplayCap),
		integ:        rl.NewRewardIntegrator(cfg.Beta),
		aeSampleCap:  4096,
		actionCounts: make([]int64, m),
	}, nil
}

// Name implements policy.Allocator.
func (a *Agent) Name() string { return "drl" }

// rewardRate computes the Eqn. (4) reward rate from the latest cluster
// observation: r(t) = -w1*Power - w2*#VMs - w3*Reli, all normalized.
func (a *Agent) rewardRate() float64 {
	return -a.cfg.RewardScale * (a.cfg.W1*a.lastPower/a.cfg.PowerNormW +
		a.cfg.W2*float64(a.lastJobs)/a.cfg.VMNorm +
		a.cfg.W3*a.lastReli/a.cfg.ReliNorm)
}

// ObserveCluster streams reward-rate inputs. Wire it so it fires on every
// cluster change (see the runner): power in watts, jobs in system, and the
// reliability objective value.
func (a *Agent) ObserveCluster(t sim.Time, powerW float64, jobsInSystem int, reli float64) {
	a.lastPower = powerW
	a.lastJobs = jobsInSystem
	a.lastReli = reli
	if a.integ.Started() {
		a.integ.SetRate(t.Seconds(), a.rewardRate())
	}
}

// Allocate implements policy.Allocator: one decision epoch. It closes the
// previous transition with the exactly-integrated reward, stores it, picks
// the next action epsilon-greedily from the DNN's Q estimates, and triggers
// minibatch training at sequence boundaries.
func (a *Agent) Allocate(j *cluster.Job, v *cluster.View) int {
	a.enc.EncodeInto(v, j, &a.encScratch)
	return a.allocateEncoded(j, v)
}

// PrepareGather readies the agent for range-gathered encoding: the encode
// scratch is shaped once so shard workers can fill disjoint server ranges of
// it concurrently through PreEncodeServers.
func (a *Agent) PrepareGather() { a.enc.EnsureShape(&a.encScratch) }

// PreEncodeServers refreshes the encode scratch's group features for servers
// [lo, hi) — the sharded engine's gather phase, with each shard worker
// encoding its own range in parallel (ranges are disjoint, so the writes
// never race). Call PrepareGather once first.
func (a *Agent) PreEncodeServers(v *cluster.View, lo, hi int) {
	a.enc.EncodeServersInto(v, &a.encScratch, lo, hi)
}

// AllocatePreEncoded runs one decision epoch whose group features were
// already gathered through PreEncodeServers; only the job part is encoded
// here. The epoch — including the single batched GEMM that evaluates all K
// Sub-Q heads — is otherwise identical to Allocate, and because the gathered
// features are computed with Allocate's exact per-server arithmetic, the
// decision stream is bitwise identical too.
func (a *Agent) AllocatePreEncoded(j *cluster.Job, v *cluster.View) int {
	a.enc.EncodeJobInto(j, &a.encScratch)
	return a.allocateEncoded(j, v)
}

func (a *Agent) allocateEncoded(j *cluster.Job, v *cluster.View) int {
	state := a.encScratch
	a.bufferAESamples(state)

	if a.hasPending {
		rEq, tau := a.integ.EquivalentRate(v.Now.Seconds())
		// Build the transition in the replay slot it will occupy, recycling
		// the evicted transition's state buffers instead of cloning into
		// fresh ones.
		tr := a.replay.NextSlot()
		a.pendingState.CloneInto(&tr.S)
		tr.Action = a.pendingAction
		tr.REq = rEq
		tr.Tau = tau
		state.CloneInto(&tr.Next)
		tr.Terminal = false
		a.replay.CommitSlot()
	}

	var action int
	if a.behavior != nil {
		// Offline-phase rollout: behaviour policy with a 20% uniform mix.
		if a.rng.Float64() < 0.2 {
			action = a.rng.Intn(a.enc.M())
		} else {
			action = a.behavior(j, v)
		}
		if action < 0 || action >= a.enc.M() {
			panic(fmt.Sprintf("global: behaviour policy chose invalid action %d", action))
		}
	} else {
		best := a.greedyAction(state, j, v)
		action = a.eps.SelectAction(a.enc.M(), best)
		// Guided exploration: when epsilon fired, re-draw uniformly among
		// servers the job actually fits on right now, so exploration does
		// not systematically build queues (documented deviation; DESIGN.md
		// §5).
		if action != best {
			action = a.exploreFit(j, v)
		}
	}

	a.actionCounts[action]++
	state.CloneInto(&a.pendingState)
	a.pendingAction = action
	a.pendingTime = v.Now
	a.hasPending = true
	a.integ.Reset(v.Now.Seconds(), a.rewardRate())
	a.decisions++

	if !a.frozen && a.decisions%int64(a.cfg.TrainEvery) == 0 &&
		a.replay.Len() >= a.cfg.MiniBatch {
		a.trainStep()
	}
	return action
}

// greedyAction returns the argmax action, restricted (when MaskUnfit is on)
// to servers whose committed load accommodates the job; when nothing fits it
// falls back to the least-committed server.
func (a *Agent) greedyAction(state State, j *cluster.Job, v *cluster.View) int {
	if a.qScratch == nil {
		a.qScratch = mat.NewVec(a.enc.M())
	}
	a.net.QValuesInto(state, a.qScratch)
	q := a.qScratch
	if !a.cfg.MaskUnfit {
		best, _ := q.Max()
		return best
	}
	best := -1
	bestQ := 0.0
	for i := 0; i < v.M; i++ {
		total := v.Util[i].Add(v.Pending[i]).Add(j.Req)
		fits := true
		for _, x := range total {
			if x > 1 {
				fits = false
				break
			}
		}
		if fits && (best < 0 || q[i] > bestQ) {
			best, bestQ = i, q[i]
		}
	}
	if best >= 0 {
		return best
	}
	// Overload fallback: least-committed server.
	least, lc := 0, 1e18
	for i := 0; i < v.M; i++ {
		if c := v.Util[i].Add(v.Pending[i]).MaxFrac(); c < lc {
			least, lc = i, c
		}
	}
	return least
}

// exploreFit returns a uniform sample among servers where the job fits
// within committed capacity (running + queued demand), falling back to a
// fully uniform draw when no server fits.
func (a *Agent) exploreFit(j *cluster.Job, v *cluster.View) int {
	fits := a.fitScratch[:0]
	for i := 0; i < v.M; i++ {
		total := v.Util[i].Add(v.Pending[i]).Add(j.Req)
		ok := true
		for _, x := range total {
			if x > 1 {
				ok = false
				break
			}
		}
		if ok {
			fits = append(fits, i)
		}
	}
	a.fitScratch = fits
	if len(fits) == 0 {
		return a.rng.Intn(v.M)
	}
	return fits[a.rng.Intn(len(fits))]
}

// SetBehavior installs (or clears, with nil) an external behaviour policy
// for offline-phase rollouts. While set, actions come from the policy (with
// a 20% uniform exploration mix) and the agent only records transitions and
// trains.
func (a *Agent) SetBehavior(b func(j *cluster.Job, v *cluster.View) int) {
	a.behavior = b
}

// FinishEpisode closes the pending transition at the end of a trace segment
// with a terminal (no-bootstrap) record.
func (a *Agent) FinishEpisode(t sim.Time) {
	if !a.hasPending {
		return
	}
	rEq, tau := a.integ.EquivalentRate(t.Seconds())
	tr := a.replay.NextSlot()
	a.pendingState.CloneInto(&tr.S)
	tr.Action = a.pendingAction
	tr.REq = rEq
	tr.Tau = tau
	tr.Terminal = true
	// tr.Next keeps the evicted slot's buffers: terminal transitions never
	// bootstrap, so the successor state is dead weight either way.
	a.replay.CommitSlot()
	a.hasPending = false
}

// trainStep samples a minibatch, computes SMDP targets with the target
// network (Eqn. 2), and applies one clipped Adam update.
func (a *Agent) trainStep() {
	idxs := a.replay.SampleIndicesInto(a.idxScratch[:0], a.cfg.MiniBatch, a.rng)
	a.idxScratch = idxs
	if a.tgtQVal == nil {
		cap := a.replay.Cap()
		a.tgtQVal = make([]float64, cap)
		a.tgtQGen = make([]int64, cap)
		a.tgtQVer = make([]int64, cap)
	}
	// Evaluate uncached non-terminal successors' max-Q through the target
	// network in one batched forward (identical values to per-item Best);
	// memoized slots reuse the bit-identical value computed under the same
	// target-network version.
	nexts := a.nextScratch[:0]
	miss := a.missScratch[:0]
	for _, idx := range idxs {
		tr := a.replay.At(idx)
		if tr.Terminal {
			continue
		}
		if a.tgtQVer[idx] == a.tgtVersion && a.tgtQGen[idx] == a.replay.Gen(idx) {
			continue
		}
		// Mark pending so a duplicate draw in this batch isn't evaluated
		// twice; the real value lands before anyone reads it.
		a.tgtQVer[idx] = a.tgtVersion
		a.tgtQGen[idx] = a.replay.Gen(idx)
		nexts = append(nexts, tr.Next)
		miss = append(miss, idx)
	}
	a.nextScratch = nexts
	a.missScratch = miss
	if cap(a.maxQScratch) < len(nexts) {
		a.maxQScratch = make([]float64, len(nexts))
	}
	maxQ := a.maxQScratch[:len(nexts)]
	a.tgt.MaxQBatchInto(nexts, maxQ)
	for i, idx := range miss {
		a.tgtQVal[idx] = maxQ[i]
	}
	items := a.itemScratch[:0]
	for _, idx := range idxs {
		tr := a.replay.At(idx)
		var next float64
		if !tr.Terminal {
			next = a.tgtQVal[idx]
		}
		items = append(items, TrainItem{
			S:      tr.S,
			Action: tr.Action,
			Target: rl.SMDPTarget(a.cfg.Beta, tr.Tau, tr.REq, next),
		})
	}
	a.itemScratch = items
	loss := a.net.TrainBatch(items, a.opt)
	a.lossSum += loss
	a.lossN++
	a.updates++
	if a.updates%int64(a.cfg.TargetSyncEvery) == 0 {
		a.tgt.CopyWeightsFrom(a.net)
		a.tgtVersion++
	}
}

// TrainOffline runs extra fitted-Q sweeps over the experience memory — the
// Algorithm 1 offline construction phase, used after warmup rollouts.
func (a *Agent) TrainOffline(steps int) {
	for i := 0; i < steps && a.replay.Len() >= a.cfg.MiniBatch; i++ {
		a.trainStep()
	}
}

// PretrainAutoencoder trains the autoencoder(s) on the buffered group-state
// samples (offline representation learning). Returns the final loss.
func (a *Agent) PretrainAutoencoder(epochs int) float64 {
	return a.net.PretrainAutoencoder(a.aeSamples, epochs, 32, 1e-3, a.rng)
}

func (a *Agent) bufferAESamples(s State) {
	for _, g := range s.Groups {
		if len(a.aeSamples) < a.aeSampleCap {
			a.aeSamples = append(a.aeSamples, g.Clone())
		} else {
			// Reservoir-style replacement keeps the buffer representative;
			// overwriting the victim in place keeps it allocation-free.
			idx := a.rng.Intn(a.aeSampleCap)
			a.aeSamples[idx].CopyFrom(g)
		}
	}
}

// FreezePolicy stops exploration and learning (evaluation mode).
func (a *Agent) FreezePolicy() {
	a.eps.SetEpsilon(0)
	a.frozen = true
}

// SetEpsilon overrides the exploration rate (e.g., 1.0 for the random
// warmup rollouts of the offline phase).
func (a *Agent) SetEpsilon(eps float64) { a.eps.SetEpsilon(eps) }

// Epsilon returns the current exploration rate.
func (a *Agent) Epsilon() float64 { return a.eps.Epsilon() }

// Decisions returns the number of allocation epochs seen.
func (a *Agent) Decisions() int64 { return a.decisions }

// Updates returns the number of DNN minibatch updates.
func (a *Agent) Updates() int64 { return a.updates }

// ReplayLen returns the number of stored transitions.
func (a *Agent) ReplayLen() int { return a.replay.Len() }

// MeanLoss returns the mean training loss so far (NaN-free; 0 when no
// updates have run).
func (a *Agent) MeanLoss() float64 {
	if a.lossN == 0 {
		return 0
	}
	return a.lossSum / float64(a.lossN)
}

// ActionCounts returns how many times each server has been chosen —
// a quick skew diagnostic for the learned policy.
func (a *Agent) ActionCounts() []int64 {
	out := make([]int64, len(a.actionCounts))
	copy(out, a.actionCounts)
	return out
}

// Network exposes the online network for tests and ablations.
func (a *Agent) Network() *QNetwork { return a.net }

// Encoder exposes the state encoder.
func (a *Agent) EncoderRef() *Encoder { return a.enc }

// SaveWeights serializes the online network's weights (JSON). Optimizer
// state is not captured: a restored agent resumes with fresh Adam moments,
// which is the standard checkpointing contract.
func (a *Agent) SaveWeights(w io.Writer) error {
	return nn.TakeSnapshot(a.net.Params()).Write(w)
}

// LoadWeights restores weights saved by SaveWeights into the online network
// and synchronizes the target network. The architecture must match.
func (a *Agent) LoadWeights(r io.Reader) error {
	snap, err := nn.ReadSnapshot(r)
	if err != nil {
		return err
	}
	if err := snap.Restore(a.net.Params()); err != nil {
		return err
	}
	a.net.InvalidateTransposes()
	a.tgt.CopyWeightsFrom(a.net)
	a.tgtVersion++
	return nil
}

// String summarizes the agent's learning state.
func (a *Agent) String() string {
	return fmt.Sprintf("drl{decisions=%d updates=%d replay=%d eps=%.3f loss=%.4g}",
		a.decisions, a.updates, a.replay.Len(), a.eps.Epsilon(), a.MeanLoss())
}
