//go:build !race

package global

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
