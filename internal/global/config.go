// Package global implements the global tier of the hierarchical framework
// (Sec. V): DRL-based VM/job allocation. At every job arrival the agent
// picks the target server by estimating Q(s, a) with the paper's Fig. 6
// network — per-group autoencoders compress remote-group state, a Sub-Q head
// scores the servers of one group, and both components share weights across
// all K groups — trained online with continuous-time Q-learning for SMDP
// targets, experience replay, an epsilon-greedy policy, a target network and
// gradient-norm clipping.
package global

import "fmt"

// Config parameterizes the DRL agent.
type Config struct {
	// K is the number of server groups (the paper varies 2–4). M must be
	// divisible by K.
	K int
	// AEHidden are the autoencoder layer sizes; the paper uses two
	// fully-connected ELU layers with 30 and 15 neurons.
	AEHidden []int
	// SubQHidden is the Sub-Q hidden layer width; the paper uses a single
	// fully-connected hidden layer of 128 ELUs.
	SubQHidden int
	// Beta is the continuous-time discount rate (paper: 0.5).
	Beta float64
	// LearningRate for Adam.
	LearningRate float64
	// ClipNorm is the global gradient-norm clip (paper: 10).
	ClipNorm float64
	// Epsilon / EpsilonMin / EpsilonDecay drive epsilon-greedy exploration.
	Epsilon      float64
	EpsilonMin   float64
	EpsilonDecay float64
	// ReplayCap is the experience-memory capacity ND.
	ReplayCap int
	// MiniBatch is the SGD minibatch size.
	MiniBatch int
	// TrainEvery is the execution-sequence length: a DNN update runs after
	// this many decisions (Algorithm 1 line 13).
	TrainEvery int
	// TargetSyncEvery controls how many DNN updates pass between target
	// network synchronizations.
	TargetSyncEvery int
	// W1, W2, W3 weight power, VM count and reliability in the Eqn. (4)
	// reward.
	W1, W2, W3 float64
	// RewardScale multiplies the reward rate before learning. The SMDP
	// fixed point is Q ~ r/Beta, so scaling rewards by Beta keeps Q values
	// O(1) — purely a units change (policy-invariant) that keeps targets
	// inside the regime Xavier-initialized networks and clipped gradients
	// can reach. Defaults to Beta.
	RewardScale float64
	// PowerNormW normalizes cluster power into [0,1] (typically M * peak).
	PowerNormW float64
	// VMNorm normalizes the jobs-in-system count (typically M).
	VMNorm float64
	// ReliNorm normalizes the reliability objective (typically M).
	ReliNorm float64
	// DurationNormSec normalizes the job-duration state feature (the
	// paper's jobs are clipped at 7200 s).
	DurationNormSec float64
	// MaskUnfit restricts the greedy argmax (and guided exploration) to
	// servers whose committed load can accommodate the job, falling back
	// to the least-committed server when none fits. Action masking is a
	// standard applied-DRL guard; without it the early (still-noisy) Q
	// function funnels job runs onto backlogged machines and queues
	// detach from the paper's operating regime. Documented deviation —
	// see DESIGN.md §5; set false for the unmasked ablation.
	MaskUnfit bool
	// UseAutoencoder toggles the representation-learning path; disabling it
	// feeds raw remote-group state to the Sub-Q heads (X2 ablation).
	UseAutoencoder bool
	// ShareWeights toggles weight sharing across groups; disabling it
	// trains K independent autoencoders and Sub-Q heads (X2 ablation).
	ShareWeights bool
}

// DefaultConfig returns the paper's settings for a cluster of m servers.
//
// Note on Beta: the paper quotes beta = 0.5 for Q-learning. At the traced
// arrival rates that is a ~2-second reward horizon — decisions would see the
// instantaneous power delta of a placement but almost none of the queueing
// it causes (job waits run to minutes). We default to 0.05/s (~20 decision
// epochs of lookahead), which preserves the paper's power/latency orderings;
// DESIGN.md records this calibration decision, and the value is a plain
// config field for anyone who wants the literal 0.5.
func DefaultConfig(m int) Config {
	k := 3
	switch {
	case m%3 == 0:
	case m%4 == 0:
		k = 4
	case m%2 == 0:
		k = 2
	default:
		k = 1
	}
	return Config{
		K:               k,
		AEHidden:        []int{30, 15},
		SubQHidden:      128,
		Beta:            0.05,
		LearningRate:    1e-3,
		ClipNorm:        10,
		Epsilon:         0.6,
		EpsilonMin:      0.02,
		EpsilonDecay:    0.9997,
		ReplayCap:       20000,
		MiniBatch:       32,
		TrainEvery:      16,
		TargetSyncEvery: 32,
		W1:              2.0,
		W2:              1.0,
		W3:              1.0,
		RewardScale:     0.05,
		PowerNormW:      float64(m) * 145,
		VMNorm:          float64(m),
		ReliNorm:        float64(m),
		DurationNormSec: 7200,
		MaskUnfit:       true,
		UseAutoencoder:  true,
		ShareWeights:    true,
	}
}

// Validate checks the configuration against the cluster size m.
func (c Config) Validate(m int) error {
	switch {
	case m <= 0:
		return fmt.Errorf("global: cluster size %d", m)
	case c.K <= 0 || m%c.K != 0:
		return fmt.Errorf("global: K=%d must divide M=%d", c.K, m)
	case len(c.AEHidden) == 0:
		return fmt.Errorf("global: empty autoencoder layout")
	case c.SubQHidden <= 0:
		return fmt.Errorf("global: SubQHidden %d", c.SubQHidden)
	case c.Beta <= 0:
		return fmt.Errorf("global: Beta %v", c.Beta)
	case c.LearningRate <= 0:
		return fmt.Errorf("global: LearningRate %v", c.LearningRate)
	case c.ReplayCap <= 0 || c.MiniBatch <= 0 || c.MiniBatch > c.ReplayCap:
		return fmt.Errorf("global: replay %d / minibatch %d", c.ReplayCap, c.MiniBatch)
	case c.TrainEvery <= 0 || c.TargetSyncEvery <= 0:
		return fmt.Errorf("global: TrainEvery %d TargetSyncEvery %d", c.TrainEvery, c.TargetSyncEvery)
	case c.W1 < 0 || c.W2 < 0 || c.W3 < 0:
		return fmt.Errorf("global: negative reward weights")
	case c.PowerNormW <= 0 || c.VMNorm <= 0 || c.ReliNorm <= 0 || c.DurationNormSec <= 0:
		return fmt.Errorf("global: non-positive normalizers")
	case c.RewardScale <= 0:
		return fmt.Errorf("global: RewardScale %v", c.RewardScale)
	}
	return nil
}
