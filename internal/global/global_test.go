package global

import (
	"math"
	"testing"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
	"hierdrl/internal/sim"
)

func testView(m int, utils []float64) *cluster.View {
	v := &cluster.View{
		Now:      sim.Time(0),
		M:        m,
		Util:     make([]cluster.Resources, m),
		Pending:  make([]cluster.Resources, m),
		QueueLen: make([]int, m),
		InSystem: make([]int, m),
		State:    make([]cluster.PowerState, m),
	}
	for i := 0; i < m; i++ {
		u := 0.0
		if i < len(utils) {
			u = utils[i]
		}
		v.Util[i] = cluster.Resources{u, u / 2, u / 4}
		v.State[i] = cluster.StateActive
	}
	return v
}

func testJob(cpu, dur float64) *cluster.Job {
	return &cluster.Job{ID: 0, Duration: dur, Req: cluster.Resources{cpu, cpu / 2, cpu / 4}, Server: -1}
}

func TestEncoderLayout(t *testing.T) {
	e, err := NewEncoder(6, 3, 7200)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	if e.GroupDim() != 2*cluster.NumResources || e.JobDim() != cluster.NumResources+1 {
		t.Fatalf("dims: group=%d job=%d", e.GroupDim(), e.JobDim())
	}
	if e.GroupOf(0) != 0 || e.GroupOf(2) != 1 || e.GroupOf(5) != 2 {
		t.Fatal("GroupOf wrong")
	}
	if e.OffsetOf(3) != 1 || e.ServerOf(1, 1) != 3 {
		t.Fatal("OffsetOf/ServerOf wrong")
	}
	if _, err := NewEncoder(7, 3, 7200); err == nil {
		t.Fatal("non-divisible M accepted")
	}
	if _, err := NewEncoder(6, 3, 0); err == nil {
		t.Fatal("zero duration norm accepted")
	}
}

func TestEncoderStateContents(t *testing.T) {
	e, _ := NewEncoder(4, 2, 7200)
	v := testView(4, []float64{0.1, 0.2, 0.3, 0.4})
	s := e.Encode(v, testJob(0.5, 3600))
	if len(s.Groups) != 2 {
		t.Fatalf("groups: %d", len(s.Groups))
	}
	// Group 0 holds servers 0,1: CPU utils at positions 0 and NumResources.
	if s.Groups[0][0] != 0.1 || s.Groups[0][cluster.NumResources] != 0.2 {
		t.Fatalf("group 0 contents: %v", s.Groups[0])
	}
	if s.Groups[1][0] != 0.3 {
		t.Fatalf("group 1 contents: %v", s.Groups[1])
	}
	// Job: [0.5, 0.25, 0.125, 0.5].
	if s.Job[0] != 0.5 || s.Job[cluster.NumResources] != 0.5 {
		t.Fatalf("job state: %v", s.Job)
	}
	// Duration clamps at 1.
	s2 := e.Encode(v, testJob(0.5, 99999))
	if s2.Job[cluster.NumResources] != 1 {
		t.Fatalf("duration not clamped: %v", s2.Job[cluster.NumResources])
	}
}

func TestStateCloneIndependent(t *testing.T) {
	e, _ := NewEncoder(4, 2, 7200)
	s := e.Encode(testView(4, []float64{0.1, 0.2, 0.3, 0.4}), testJob(0.5, 100))
	c := s.Clone()
	c.Groups[0][0] = 9
	c.Job[0] = 9
	if s.Groups[0][0] == 9 || s.Job[0] == 9 {
		t.Fatal("Clone aliases buffers")
	}
}

func qnetFixture(t *testing.T, m int, share, useAE bool) (*Encoder, *QNetwork) {
	t.Helper()
	cfg := DefaultConfig(m)
	cfg.K = 2
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	cfg.ShareWeights = share
	cfg.UseAutoencoder = useAE
	enc, err := NewEncoder(m, cfg.K, cfg.DurationNormSec)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	return enc, NewQNetwork(enc, cfg, mat.NewRNG(7))
}

func TestQNetworkShapes(t *testing.T) {
	for _, share := range []bool{true, false} {
		for _, useAE := range []bool{true, false} {
			enc, net := qnetFixture(t, 6, share, useAE)
			s := enc.Encode(testView(6, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}),
				testJob(0.3, 600))
			q := net.QValues(s)
			if len(q) != 6 {
				t.Fatalf("share=%v ae=%v: %d Q values want 6", share, useAE, len(q))
			}
			for a := 0; a < 6; a++ {
				if got := net.Q(s, a); math.Abs(got-q[a]) > 1e-12 {
					t.Fatalf("Q(s,%d)=%v but QValues[%d]=%v", a, got, a, q[a])
				}
			}
			best, val := net.Best(s)
			if bi, bv := q.Max(); best != bi || val != bv {
				t.Fatalf("Best mismatch: (%d,%v) vs (%d,%v)", best, val, bi, bv)
			}
		}
	}
}

func TestQNetworkWeightSharingParamCounts(t *testing.T) {
	_, shared := qnetFixture(t, 6, true, true)
	_, unshared := qnetFixture(t, 6, false, true)
	if unshared.NumParams() != 2*shared.NumParams() {
		t.Fatalf("K=2 unshared params %d want 2x shared %d",
			unshared.NumParams(), shared.NumParams())
	}
}

// Gradient check of the full Fig. 6 path: Sub-Q head plus remote-group
// encoders.
func TestQNetworkGradCheck(t *testing.T) {
	enc, net := qnetFixture(t, 4, true, true)
	s := enc.Encode(testView(4, []float64{0.3, 0.7, 0.2, 0.9}), testJob(0.4, 1000))
	item := TrainItem{S: s, Action: 2, Target: 0.5}

	lossFn := func() float64 {
		d := net.Q(s, 2) - 0.5
		return d * d
	}
	params := net.Params()
	nn.ZeroGrads(params)
	net.accumulate(item, 1)

	const h = 1e-6
	for _, p := range params {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + h
			lp := lossFn()
			p.Val[i] = orig - h
			lm := lossFn()
			p.Val[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: analytic %v numeric %v",
					p.Name, i, p.Grad[i], want)
			}
		}
	}
}

func TestQNetworkTrainBatchReducesError(t *testing.T) {
	enc, net := qnetFixture(t, 4, true, true)
	rng := mat.NewRNG(3)
	opt := nn.NewAdam(0.01)

	mkItem := func() TrainItem {
		utils := make([]float64, 4)
		for i := range utils {
			utils[i] = rng.Float64()
		}
		s := enc.Encode(testView(4, utils), testJob(0.2+0.5*rng.Float64(), 600))
		// Learnable rule: target = CPU util of the chosen server's slot.
		a := rng.Intn(4)
		return TrainItem{S: s, Action: a, Target: utils[a]}
	}

	var first, last float64
	for step := 0; step < 400; step++ {
		batch := make([]TrainItem, 16)
		for i := range batch {
			batch[i] = mkItem()
		}
		loss := net.TrainBatch(batch, opt)
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/4 {
		t.Fatalf("training did not reduce loss: first %v last %v", first, last)
	}
}

func TestQNetworkTargetSyncMakesIdentical(t *testing.T) {
	enc, net := qnetFixture(t, 4, true, true)
	_, tgt := qnetFixture(t, 4, true, true)
	s := enc.Encode(testView(4, []float64{0.5, 0.1, 0.9, 0.3}), testJob(0.2, 300))
	// Fresh nets from different RNG draws differ... (same seed here, so
	// perturb first).
	net.Params()[0].Val[0] += 0.5
	qa := net.QValues(s)
	qb := tgt.QValues(s)
	diff := false
	for i := range qa {
		if qa[i] != qb[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("expected nets to differ before sync")
	}
	tgt.CopyWeightsFrom(net)
	qb = tgt.QValues(s)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("networks differ after CopyWeightsFrom")
		}
	}
}

func TestPretrainAutoencoderReducesReconstruction(t *testing.T) {
	enc, net := qnetFixture(t, 6, true, true)
	rng := mat.NewRNG(11)
	// Group states drawn from a 1-D family (scaled ramp): compressible.
	samples := make([]mat.Vec, 200)
	for i := range samples {
		g := mat.NewVec(enc.GroupDim())
		a := rng.Float64()
		for d := range g {
			g[d] = a * float64(d) / float64(len(g))
		}
		samples[i] = g
	}
	before := 0.0
	for _, s := range samples[:50] {
		before += net.aes[0].ReconstructionLoss(s)
	}
	net.PretrainAutoencoder(samples, 300, 16, 1e-3, rng)
	after := 0.0
	for _, s := range samples[:50] {
		after += net.aes[0].ReconstructionLoss(s)
	}
	if after >= before/2 {
		t.Fatalf("AE pretraining ineffective: before %v after %v", before, after)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(30).Validate(30); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if err := DefaultConfig(40).Validate(40); err != nil {
		t.Fatalf("default config M=40 rejected: %v", err)
	}
	mod := func(f func(*Config)) Config {
		c := DefaultConfig(30)
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.K = 7 }), // 30 % 7 != 0
		mod(func(c *Config) { c.AEHidden = nil }),
		mod(func(c *Config) { c.SubQHidden = 0 }),
		mod(func(c *Config) { c.Beta = 0 }),
		mod(func(c *Config) { c.LearningRate = 0 }),
		mod(func(c *Config) { c.MiniBatch = 0 }),
		mod(func(c *Config) { c.MiniBatch = c.ReplayCap + 1 }),
		mod(func(c *Config) { c.TrainEvery = 0 }),
		mod(func(c *Config) { c.W1 = -1 }),
		mod(func(c *Config) { c.PowerNormW = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(30); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigKSelection(t *testing.T) {
	cases := map[int]int{30: 3, 40: 4, 8: 4, 10: 2, 7: 1, 9: 3}
	for m, wantK := range cases {
		if got := DefaultConfig(m).K; got != wantK {
			t.Errorf("DefaultConfig(%d).K = %d want %d", m, got, wantK)
		}
	}
}

func newTestAgent(t *testing.T, m int) *Agent {
	t.Helper()
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 16
	cfg.ReplayCap = 512
	cfg.MiniBatch = 8
	cfg.TrainEvery = 8
	a, err := NewAgent(cfg, m, mat.NewRNG(5))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	return a
}

func TestAgentAllocateAndTransitions(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, []float64{0.1, 0.2, 0.3, 0.4})
	a.ObserveCluster(0, 200, 2, 0)

	for i := 0; i < 20; i++ {
		v.Now = sim.Time(float64(i) * 10)
		a.ObserveCluster(v.Now, 200+float64(i), 2, 0)
		got := a.Allocate(testJob(0.2, 300), v)
		if got < 0 || got >= 4 {
			t.Fatalf("action %d out of range", got)
		}
	}
	if a.Decisions() != 20 {
		t.Fatalf("decisions %d want 20", a.Decisions())
	}
	// 19 completed transitions (the 20th is pending).
	if a.ReplayLen() != 19 {
		t.Fatalf("replay %d want 19", a.ReplayLen())
	}
	if a.Updates() == 0 {
		t.Fatal("no training updates ran")
	}
	a.FinishEpisode(sim.Time(500))
	if a.ReplayLen() != 20 {
		t.Fatalf("replay after FinishEpisode %d want 20", a.ReplayLen())
	}
	// Idempotent.
	a.FinishEpisode(sim.Time(501))
	if a.ReplayLen() != 20 {
		t.Fatal("FinishEpisode not idempotent")
	}
	if a.String() == "" {
		t.Fatal("String must render")
	}
}

func TestAgentFreezeStopsLearning(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, nil)
	a.ObserveCluster(0, 100, 0, 0)
	a.FreezePolicy()
	for i := 0; i < 40; i++ {
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.2, 300), v)
	}
	if a.Updates() != 0 {
		t.Fatalf("frozen agent trained %d times", a.Updates())
	}
	if a.Epsilon() != 0 {
		t.Fatalf("frozen epsilon %v", a.Epsilon())
	}
}

// The agent must learn an allocation preference: with reward dominated by a
// hand-crafted signal that penalizes choosing busy servers (via the
// reliability term), greedy actions should concentrate on idle servers.
func TestAgentLearnsToAvoidHotServer(t *testing.T) {
	m := 4
	cfg := DefaultConfig(m)
	cfg.AEHidden = []int{8, 4}
	cfg.SubQHidden = 24
	cfg.ReplayCap = 4096
	cfg.MiniBatch = 16
	cfg.TrainEvery = 4
	cfg.Epsilon = 0.3
	cfg.EpsilonMin = 0.1
	cfg.EpsilonDecay = 0.999
	cfg.LearningRate = 3e-3
	a, err := NewAgent(cfg, m, mat.NewRNG(9))
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}

	// Synthetic environment: server 0 is "hot" — choosing it yields a much
	// worse reward rate during the sojourn. Other servers are fine.
	v := testView(m, []float64{0.95, 0.1, 0.1, 0.1})
	now := 0.0
	for i := 0; i < 1500; i++ {
		v.Now = sim.Time(now)
		a.ObserveCluster(v.Now, 100, 1, 0)
		act := a.Allocate(testJob(0.2, 300), v)
		// Reward during the sojourn reflects the choice.
		penalty := 0.0
		if act == 0 {
			penalty = float64(m) * 3 // large reliability hit
		}
		a.ObserveCluster(sim.Time(now+0.01), 100, 1, penalty)
		now += 5
	}
	a.FreezePolicy()
	v.Now = sim.Time(now)
	s := a.EncoderRef().Encode(v, testJob(0.2, 300))
	best, _ := a.Network().Best(s)
	if best == 0 {
		q := a.Network().QValues(s)
		t.Fatalf("agent still prefers the hot server: Q=%v", q)
	}
}

func TestAgentPretrainAutoencoder(t *testing.T) {
	a := newTestAgent(t, 4)
	v := testView(4, []float64{0.5, 0.2, 0.7, 0.1})
	a.ObserveCluster(0, 100, 0, 0)
	for i := 0; i < 50; i++ {
		v.Now = sim.Time(float64(i))
		a.Allocate(testJob(0.3, 200), v)
	}
	if loss := a.PretrainAutoencoder(50); loss <= 0 {
		t.Fatalf("AE pretrain loss %v, want positive (it trained)", loss)
	}
}

func TestAgentValidatesConfig(t *testing.T) {
	cfg := DefaultConfig(30)
	cfg.K = 7
	if _, err := NewAgent(cfg, 30, mat.NewRNG(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestEncodeServersRangeMatchesFull asserts that range-gathered encoding —
// the sharded engine's parallel per-shard encode — writes a state bitwise
// identical to the sequential EncodeInto, for ranges that straddle group
// boundaries.
func TestEncodeServersRangeMatchesFull(t *testing.T) {
	m, k := 12, 3
	enc, err := NewEncoder(m, k, 7200)
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(5)
	v := &cluster.View{
		M:        m,
		Util:     make([]cluster.Resources, m),
		Pending:  make([]cluster.Resources, m),
		QueueLen: make([]int, m),
		InSystem: make([]int, m),
		State:    make([]cluster.PowerState, m),
	}
	for i := 0; i < m; i++ {
		v.Util[i] = cluster.Resources{rng.Float64(), rng.Float64(), rng.Float64()}
		v.Pending[i] = cluster.Resources{1.5 * rng.Float64(), rng.Float64(), rng.Float64()}
	}
	j := &cluster.Job{Duration: 900, Req: cluster.Resources{0.3, 0.2, 0.1}}

	var full State
	enc.EncodeInto(v, j, &full)

	var ranged State
	enc.EnsureShape(&ranged)
	// Shard-shaped ranges: 12 servers in 5+4+3, none aligned to the group
	// size of 4.
	enc.EncodeServersInto(v, &ranged, 0, 5)
	enc.EncodeServersInto(v, &ranged, 5, 9)
	enc.EncodeServersInto(v, &ranged, 9, 12)
	enc.EncodeJobInto(j, &ranged)

	for g := range full.Groups {
		for i := range full.Groups[g] {
			if math.Float64bits(full.Groups[g][i]) != math.Float64bits(ranged.Groups[g][i]) {
				t.Fatalf("group %d[%d]: %v vs %v", g, i, full.Groups[g][i], ranged.Groups[g][i])
			}
		}
	}
	for i := range full.Job {
		if math.Float64bits(full.Job[i]) != math.Float64bits(ranged.Job[i]) {
			t.Fatalf("job[%d]: %v vs %v", i, full.Job[i], ranged.Job[i])
		}
	}
}
