package telemetry

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hierdrl/internal/checkpoint"
)

// exactQuantile matches the repo's metrics.percentile index convention
// (sorted, idx = int(q * (n-1))).
func exactQuantile(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

// accuracyCase checks that the digest's estimate at q lands inside the
// exact distribution's [q-dq, q+dq] window — the standard t-digest accuracy
// statement (error is bounded in q-space, not value space).
func checkQuantiles(t *testing.T, name string, samples []float64) {
	t.Helper()
	td := NewTDigest(DefaultCompression)
	for _, x := range samples {
		td.Add(x)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	cases := []struct{ q, dq float64 }{
		{0.5, 0.02},
		{0.9, 0.01},
		{0.95, 0.008},
		{0.99, 0.004},
		{0.999, 0.0015},
	}
	for _, c := range cases {
		got := td.Quantile(c.q)
		lo := exactQuantile(sorted, math.Max(0, c.q-c.dq))
		hi := exactQuantile(sorted, math.Min(1, c.q+c.dq))
		if got < lo || got > hi {
			t.Errorf("%s: q=%v estimate %v outside exact window [%v, %v] (exact %v)",
				name, c.q, got, lo, hi, exactQuantile(sorted, c.q))
		}
	}
	if got := td.Quantile(0); got != sorted[0] {
		t.Errorf("%s: q=0 = %v, want min %v", name, got, sorted[0])
	}
	if got := td.Quantile(1); got != sorted[len(sorted)-1] {
		t.Errorf("%s: q=1 = %v, want max %v", name, got, sorted[len(sorted)-1])
	}
	if got, want := td.Count(), float64(len(samples)); got != want {
		t.Errorf("%s: count %v, want %v", name, got, want)
	}
}

func TestTDigestAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 200000)
	for i := range samples {
		samples[i] = rng.Float64() * 7200
	}
	checkQuantiles(t, "uniform", samples)
}

func TestTDigestAccuracyPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 200000)
	for i := range samples {
		// Pareto(xm=60, alpha=1.5): heavy upper tail, like job latency.
		samples[i] = 60 * math.Pow(1-rng.Float64(), -1/1.5)
	}
	checkQuantiles(t, "pareto", samples)
}

func TestTDigestAccuracyLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 200000)
	for i := range samples {
		samples[i] = math.Exp(5 + 1.2*rng.NormFloat64())
	}
	checkQuantiles(t, "lognormal", samples)
}

func TestTDigestEmptyAndSingle(t *testing.T) {
	td := NewTDigest(DefaultCompression)
	if !math.IsNaN(td.Quantile(0.5)) {
		t.Fatalf("empty digest quantile = %v, want NaN", td.Quantile(0.5))
	}
	td.Add(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := td.Quantile(q); got != 42 {
			t.Fatalf("single-sample digest q=%v = %v, want 42", q, got)
		}
	}
	td.Add(math.NaN())
	if got := td.Count(); got != 1 {
		t.Fatalf("NaN was counted: count %v", got)
	}
}

// TestMergeDeterministicAcrossShardOrders pins the epoch-barrier merge
// contract: MergedInto's result is bitwise identical under any permutation
// of its parts.
func TestMergeDeterministicAcrossShardOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([]*TDigest, 4)
	for i := range parts {
		parts[i] = NewTDigest(DefaultCompression)
		n := 20000 + i*7777
		for k := 0; k < n; k++ {
			parts[i].Add(math.Exp(4 + float64(i)*0.3 + rng.NormFloat64()))
		}
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	var refM, refW []float64
	var refMin, refMax, refCount float64
	for pi, perm := range perms {
		dst := NewTDigest(DefaultCompression)
		ordered := make([]*TDigest, len(perm))
		for k, idx := range perm {
			ordered[k] = parts[idx]
		}
		MergedInto(dst, ordered...)
		if pi == 0 {
			refM = append([]float64(nil), dst.mean...)
			refW = append([]float64(nil), dst.weight...)
			refMin, refMax, refCount = dst.min, dst.max, dst.count
			continue
		}
		if len(dst.mean) != len(refM) {
			t.Fatalf("perm %v: %d centroids, want %d", perm, len(dst.mean), len(refM))
		}
		for i := range refM {
			if math.Float64bits(dst.mean[i]) != math.Float64bits(refM[i]) ||
				math.Float64bits(dst.weight[i]) != math.Float64bits(refW[i]) {
				t.Fatalf("perm %v: centroid %d = (%v, %v), want (%v, %v)",
					perm, i, dst.mean[i], dst.weight[i], refM[i], refW[i])
			}
		}
		if dst.min != refMin || dst.max != refMax || dst.count != refCount {
			t.Fatalf("perm %v: min/max/count %v/%v/%v, want %v/%v/%v",
				perm, dst.min, dst.max, dst.count, refMin, refMax, refCount)
		}
	}
}

// TestMergeAssociativityApproximate: pairwise re-merging ((a+b)+c) loses
// some resolution versus the one-shot merge, but the quantiles must agree
// within the documented tolerance.
func TestMergeAssociativityApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int, shift float64) *TDigest {
		td := NewTDigest(DefaultCompression)
		for k := 0; k < n; k++ {
			td.Add(shift + 1000*rng.Float64())
		}
		return td
	}
	a, b, c := mk(30000, 0), mk(40000, 200), mk(50000, 500)
	oneShot := NewTDigest(DefaultCompression)
	MergedInto(oneShot, a, b, c)
	ab := NewTDigest(DefaultCompression)
	MergedInto(ab, a, b)
	abc := NewTDigest(DefaultCompression)
	MergedInto(abc, ab, c)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		x, y := oneShot.Quantile(q), abc.Quantile(q)
		if rel := math.Abs(x-y) / math.Max(math.Abs(x), 1e-9); rel > 0.02 {
			t.Errorf("q=%v: one-shot %v vs pairwise %v (rel err %v > 2%%)", q, x, y, rel)
		}
	}
	if got, want := abc.Count(), oneShot.Count(); got != want {
		t.Errorf("pairwise count %v, want %v", got, want)
	}
}

func roundTrip(t *testing.T, save func(*checkpoint.Enc), load func(*checkpoint.Dec) error) {
	t.Helper()
	wr := checkpoint.NewWriter(0)
	save(wr.Section("t"))
	var buf bytes.Buffer
	if _, err := wr.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	rd, err := checkpoint.NewReader(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	dec, err := rd.Section("t")
	if err != nil {
		t.Fatalf("section: %v", err)
	}
	if err := load(dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestTDigestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	td := NewTDigest(DefaultCompression)
	for k := 0; k < 50000; k++ {
		td.Add(rng.ExpFloat64() * 300)
	}
	var back TDigest
	back.Init(DefaultCompression)
	roundTrip(t, td.SaveState, back.RestoreState)
	if got, want := back.Count(), td.Count(); got != want {
		t.Fatalf("count %v, want %v", got, want)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if x, y := td.Quantile(q), back.Quantile(q); math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("q=%v: restored %v, want bitwise %v", q, y, x)
		}
	}
	// The restored digest must remain usable: keep adding.
	back.Add(1)
	if got := back.Count(); got != td.Count()+1 {
		t.Fatalf("post-restore add: count %v", got)
	}
}

func TestSketchSetCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sk := NewSketchSet(3)
	for k := 0; k < 60000; k++ {
		lat := rng.ExpFloat64() * 500
		sk.Record(k%3, JobClassOf(60+rng.Float64()*7000), lat, lat*0.1)
	}
	back := NewSketchSet(3)
	roundTrip(t, sk.SaveState, back.RestoreState)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if x, y := sk.MergedLatency().Quantile(q), back.MergedLatency().Quantile(q); math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("merged q=%v: restored %v, want %v", q, y, x)
		}
		if x, y := sk.Wait().Quantile(q), back.Wait().Quantile(q); math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("wait q=%v: restored %v, want %v", q, y, x)
		}
	}
	// Shard-count mismatch must be rejected, not silently mis-shaped.
	wrong := NewSketchSet(2)
	wr := checkpoint.NewWriter(0)
	sk.SaveState(wr.Section("t"))
	var buf bytes.Buffer
	if _, err := wr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rd, err := checkpoint.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := rd.Section("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.RestoreState(dec); err == nil {
		t.Fatal("restore into a 2-shard set accepted a 3-shard snapshot")
	}
}

func TestJobClassOf(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{{60, ClassShort}, {599.9, ClassShort}, {600, ClassMedium}, {3599, ClassMedium}, {3600, ClassLong}, {7200, ClassLong}}
	for _, c := range cases {
		if got := JobClassOf(c.d); got != c.want {
			t.Errorf("JobClassOf(%v) = %s, want %s", c.d, JobClassNames[got], JobClassNames[c.want])
		}
	}
}

// TestTDigestAddZeroAlloc pins the hot path: Add (including its amortized
// flush: buffer sort + two-stream merge + compression, all in preallocated
// scratch) allocates nothing. This pin runs under -race too (obs-smoke).
func TestTDigestAddZeroAlloc(t *testing.T) {
	td := NewTDigest(DefaultCompression)
	rng := rand.New(rand.NewSource(19))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 100
	}
	// Warm: fill past several flush cycles first.
	for i := 0; i < 8192; i++ {
		td.Add(vals[i%len(vals)])
	}
	i := 0
	if avg := testing.AllocsPerRun(20000, func() {
		td.Add(vals[i%len(vals)])
		i++
	}); avg != 0 {
		t.Fatalf("TDigest.Add allocates %v/op, want 0", avg)
	}
	sk := NewSketchSet(2)
	for k := 0; k < 4096; k++ {
		sk.Record(k&1, k%NumJobClasses, vals[k%len(vals)], vals[(k+7)%len(vals)])
	}
	k := 0
	if avg := testing.AllocsPerRun(20000, func() {
		sk.Record(k&1, k%NumJobClasses, vals[k%len(vals)], vals[(k+7)%len(vals)])
		k++
	}); avg != 0 {
		t.Fatalf("SketchSet.Record allocates %v/op, want 0", avg)
	}
}
