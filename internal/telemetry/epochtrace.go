package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// Decision-epoch tracing: a fixed-size ring of per-epoch timing spans,
// recorded by the sharded engine with zero steady-state allocation and
// dumpable as Chrome trace-event JSON (chrome://tracing, Perfetto). Each
// barrier-delimited phase contributes one PhaseSpan per shard (barrier
// wait, dispatch commit, lane run, view refresh + encode) plus the
// coordinator's merged replay and allocation/GEMM segments — the direct
// measurement of the barrier costs ROADMAP item 3 targets.

// Phase-mode labels (mirrors the shard engine's runMode).
const (
	ModeEpoch   = 0 // runBefore: a decision epoch up to an arrival instant
	ModeThrough = 1 // runThrough: bounded advance (StepUntil, fault stalls)
	ModeDrain   = 2 // runAll: closing drain phase
)

var modeNames = [3]string{"epoch", "through", "drain"}

// PhaseSpan times one shard's work within one phase. All instants are
// monotonic nanoseconds since the ring's base (see EpochRing.NowNs).
type PhaseSpan struct {
	StartNs   int64 // worker began waiting at the barrier (shard 0: phase entry)
	WaitNs    int64 // barrier wait (release latency; 0 for the inline shard 0)
	CommitNs  int64 // pended-dispatch commit (Submit cascade)
	RunNs     int64 // lane event execution
	RefreshNs int64 // view-range snapshot + DRL pre-encode
}

// EpochSpan times one barrier-delimited phase end to end.
type EpochSpan struct {
	Epoch   int64   // monotone phase counter (1-based)
	AtSec   float64 // the phase's sim-time horizon (arrival instant for epochs)
	Mode    uint8   // ModeEpoch | ModeThrough | ModeDrain
	StartNs int64   // coordinator released the barrier

	// Coordinator segments after join: merged observation replay, then (for
	// decision epochs) the allocation — including the batched GEMM on DRL
	// configurations — of the arrival.
	ReplayStartNs int64
	ReplayNs      int64
	AllocStartNs  int64
	AllocNs       int64

	Shards []PhaseSpan // indexed by shard ID
}

// EpochRing records the last cap epochs. Begin/Cur are driven by the
// sharded engine's coordinator; workers write only their own Shards slot of
// the current span, between the barrier release and their arrive — the
// barrier's generation counter and done channel order those writes against
// the coordinator's, so the ring needs no locks of its own.
type EpochRing struct {
	spans []EpochSpan
	n     int64 // epochs recorded in total
	cur   *EpochSpan
	base  time.Time
}

// NewEpochRing returns a ring holding the last capacity epochs of a
// p-shard engine (capacity < 1 defaults to 2048).
func NewEpochRing(capacity, p int) *EpochRing {
	if capacity < 1 {
		capacity = 2048
	}
	r := &EpochRing{spans: make([]EpochSpan, capacity), base: time.Now()}
	for i := range r.spans {
		r.spans[i].Shards = make([]PhaseSpan, p)
	}
	return r
}

// NowNs returns monotonic nanoseconds since the ring was created.
// Allocation-free (time.Since reads the monotonic clock).
func (r *EpochRing) NowNs() int64 { return int64(time.Since(r.base)) }

// Begin opens the next epoch slot, resetting it in place (no allocation).
// Must be called by the coordinator before the barrier release.
func (r *EpochRing) Begin(atSec float64, mode uint8) {
	sp := &r.spans[r.n%int64(len(r.spans))]
	r.n++
	for i := range sp.Shards {
		sp.Shards[i] = PhaseSpan{}
	}
	sp.Epoch = r.n
	sp.AtSec = atSec
	sp.Mode = mode
	sp.StartNs = r.NowNs()
	sp.ReplayStartNs, sp.ReplayNs = 0, 0
	sp.AllocStartNs, sp.AllocNs = 0, 0
	r.cur = sp
}

// Cur returns the span opened by the last Begin (nil before the first).
func (r *EpochRing) Cur() *EpochSpan { return r.cur }

// Len returns how many spans the ring currently holds.
func (r *EpochRing) Len() int {
	if r.n < int64(len(r.spans)) {
		return int(r.n)
	}
	return len(r.spans)
}

// Recorded returns the total number of epochs recorded (including those
// that have been overwritten).
func (r *EpochRing) Recorded() int64 { return r.n }

// Spans appends the retained spans in chronological order to dst and
// returns it. The returned spans alias the ring's slots; do not retain
// them across further recording.
func (r *EpochRing) Spans(dst []EpochSpan) []EpochSpan {
	k := int64(len(r.spans))
	if r.n <= k {
		return append(dst, r.spans[:r.n]...)
	}
	head := r.n % k
	dst = append(dst, r.spans[head:]...)
	return append(dst, r.spans[:head]...)
}

// WriteChromeTrace dumps the ring as Chrome trace-event JSON: one "X"
// (complete) event per non-empty phase segment, tid = shard ID (the
// coordinator's replay/alloc segments get tid = P), ts/dur in microseconds.
// Load the file in chrome://tracing or ui.perfetto.dev.
func (r *EpochRing) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	p := 0
	if len(r.spans) > 0 {
		p = len(r.spans[0].Shards)
	}
	fmt.Fprint(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	meta := func(tid int, name string) {
		sep(bw, &first)
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, name)
	}
	for s := 0; s < p; s++ {
		meta(s, fmt.Sprintf("shard %d", s))
	}
	meta(p, "coordinator")
	emit := func(name string, tid int, startNs, durNs, epoch int64, atSec float64, mode uint8) {
		if durNs <= 0 {
			return
		}
		sep(bw, &first)
		fmt.Fprintf(bw, `{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"epoch":%d,"t_sim_s":%g,"mode":%q}}`,
			name, tid, float64(startNs)/1e3, float64(durNs)/1e3, epoch, atSec, modeNames[mode%3])
	}
	var spans []EpochSpan
	spans = r.Spans(spans)
	for i := range spans {
		es := &spans[i]
		for s := range es.Shards {
			ps := &es.Shards[s]
			at := ps.StartNs
			emit("barrier-wait", s, at, ps.WaitNs, es.Epoch, es.AtSec, es.Mode)
			at += ps.WaitNs
			emit("commit", s, at, ps.CommitNs, es.Epoch, es.AtSec, es.Mode)
			at += ps.CommitNs
			emit("run", s, at, ps.RunNs, es.Epoch, es.AtSec, es.Mode)
			at += ps.RunNs
			emit("refresh+encode", s, at, ps.RefreshNs, es.Epoch, es.AtSec, es.Mode)
		}
		emit("replay", p, es.ReplayStartNs, es.ReplayNs, es.Epoch, es.AtSec, es.Mode)
		emit("alloc+gemm", p, es.AllocStartNs, es.AllocNs, es.Epoch, es.AtSec, es.Mode)
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

func sep(w io.Writer, first *bool) {
	if *first {
		*first = false
		return
	}
	io.WriteString(w, ",")
}
