package telemetry

import (
	"fmt"

	"hierdrl/internal/checkpoint"
)

// Job classes for per-class latency rollups. Jobs carry no class tag in the
// trace schema, so telemetry classes are deterministic duration buckets over
// the paper's clipped duration range [60 s, 7200 s]: short < 600 s,
// medium < 3600 s, long otherwise. The bucket is a pure function of the
// job's nominal duration, so it is identical across tiers and shard counts.
const (
	ClassShort = iota
	ClassMedium
	ClassLong
	NumJobClasses
)

// JobClassNames are the /metrics label values, indexed by class.
var JobClassNames = [NumJobClasses]string{"short", "medium", "long"}

// JobClassOf buckets a nominal job duration (seconds) into a class.
func JobClassOf(durationSec float64) int {
	switch {
	case durationSec < 600:
		return ClassShort
	case durationSec < 3600:
		return ClassMedium
	default:
		return ClassLong
	}
}

// SketchSet is the session's live quantile state: one latency digest per
// shard (fed in merged replay order on the coordinator, merged
// deterministically at publish points), one latency digest per job class,
// and one wait-time digest. Everything is preallocated; Record is the
// per-completion hot path and performs no allocation.
type SketchSet struct {
	shards []TDigest // latency, by completing server's shard
	class  []TDigest // latency, by job-duration class
	wait   TDigest   // wait time, all jobs

	merged TDigest // scratch output of MergedLatency
	parts  []*TDigest
}

// NewSketchSet builds the digest set for p shards (p >= 1).
func NewSketchSet(p int) *SketchSet {
	if p < 1 {
		p = 1
	}
	s := &SketchSet{
		shards: make([]TDigest, p),
		class:  make([]TDigest, NumJobClasses),
		parts:  make([]*TDigest, p),
	}
	for i := range s.shards {
		s.shards[i].Init(DefaultCompression)
		s.parts[i] = &s.shards[i]
	}
	for i := range s.class {
		s.class[i].Init(DefaultCompression)
	}
	s.wait.Init(DefaultCompression)
	s.merged.Init(DefaultCompression)
	return s
}

// Shards returns the configured shard count.
func (s *SketchSet) Shards() int { return len(s.shards) }

// Record ingests one completion: latency into the shard and class digests,
// wait into the wait digest. Zero allocations.
func (s *SketchSet) Record(shard, class int, latencySec, waitSec float64) {
	s.shards[shard].Add(latencySec)
	s.class[class].Add(latencySec)
	s.wait.Add(waitSec)
}

// MergedLatency merges the per-shard latency digests (ascending shard
// order into a (mean, weight)-sorted one-shot compression — the result is
// bitwise independent of shard order, see MergedInto) and returns the
// merged digest. The returned digest is owned by the set and valid until
// the next call.
func (s *SketchSet) MergedLatency() *TDigest {
	MergedInto(&s.merged, s.parts...)
	return &s.merged
}

// ClassLatency returns the latency digest of one job class.
func (s *SketchSet) ClassLatency(class int) *TDigest { return &s.class[class] }

// Wait returns the wait-time digest.
func (s *SketchSet) Wait() *TDigest { return &s.wait }

// SaveState serializes every digest (merged scratch excluded — derived).
func (s *SketchSet) SaveState(e *checkpoint.Enc) {
	e.Int(len(s.shards))
	for i := range s.shards {
		s.shards[i].SaveState(e)
	}
	e.Int(len(s.class))
	for i := range s.class {
		s.class[i].SaveState(e)
	}
	s.wait.SaveState(e)
}

// RestoreState reads what SaveState wrote; the set must have been built
// with the same shard count.
func (s *SketchSet) RestoreState(d *checkpoint.Dec) error {
	np := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if np != len(s.shards) {
		return fmt.Errorf("%w: sketch set has %d shard digests, session %d", checkpoint.ErrCorrupt, np, len(s.shards))
	}
	for i := range s.shards {
		if err := s.shards[i].RestoreState(d); err != nil {
			return err
		}
	}
	nc := d.Int()
	if err := d.Sticky(); err != nil {
		return err
	}
	if nc != len(s.class) {
		return fmt.Errorf("%w: sketch set has %d class digests, want %d", checkpoint.ErrCorrupt, nc, len(s.class))
	}
	for i := range s.class {
		if err := s.class[i].RestoreState(d); err != nil {
			return err
		}
	}
	return s.wait.RestoreState(d)
}
