package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"
)

// Server is the session's observability endpoint. It serves only immutable
// byte blobs published by the simulation driver at barrier-time boundaries
// (plus process self-metrics sampled at scrape time), so the HTTP
// goroutines never touch live simulation state — strict-tier bitwise
// goldens and the parallel tier's determinism contract are unaffected by
// scrapes (DESIGN.md §17).
//
//	/metrics        Prometheus text: published sim metrics + process gauges
//	/healthz        200 "ok" liveness probe
//	/snapshot       the latest published SessionSnapshot as JSON
//	/debug/pprof/   net/http/pprof (profile, heap, goroutine, trace, ...)
type Server struct {
	ln    net.Listener
	srv   *http.Server
	prom  atomic.Pointer[[]byte]
	snap  atomic.Pointer[[]byte]
	start time.Time
}

// NewServer binds addr (e.g. "127.0.0.1:9188", ":9188", or "127.0.0.1:0"
// for an ephemeral test port) and starts serving. The bind happens
// synchronously so configuration errors surface at session construction.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	empty := []byte{}
	s.prom.Store(&empty)
	s.snap.Store(&empty)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:0" resolves to the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish atomically replaces the served blobs. prom is the Prometheus
// text body of the simulation's metric families; snapJSON the /snapshot
// body. The server copies both, so the caller may reuse its buffers.
func (s *Server) Publish(prom, snapJSON []byte) {
	p := append([]byte(nil), prom...)
	s.prom.Store(&p)
	j := append([]byte(nil), snapJSON...)
	s.snap.Store(&j)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(*s.prom.Load())
	s.writeProcessMetrics(w)
}

// writeProcessMetrics samples the Go runtime at scrape time: heap, GC,
// goroutines, uptime. These are the only values /metrics reads outside the
// published blob, and they touch only the runtime — never the simulation.
func (s *Server) writeProcessMetrics(w http.ResponseWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines.\n# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_heap_alloc_bytes Heap bytes in use.\n# TYPE go_heap_alloc_bytes gauge\ngo_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_heap_objects Live heap objects.\n# TYPE go_heap_objects gauge\ngo_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP process_uptime_seconds Wall-clock seconds since the telemetry server started.\n# TYPE process_uptime_seconds gauge\nprocess_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	b := *s.snap.Load()
	if len(b) == 0 {
		http.Error(w, `{"error":"no snapshot published yet"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// Close shuts the listener and in-flight connections down. Idempotent.
func (s *Server) Close() error { return s.srv.Close() }
