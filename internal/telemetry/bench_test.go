package telemetry

import (
	"math/rand"
	"testing"
)

// The telemetry benchmark set (benchjson "telemetry" section; gated by
// benchguard through make bench-check): the per-completion sketch insert,
// the epoch-barrier shard merge, and one epoch-span record.

func BenchmarkTDigestAdd(b *testing.B) {
	td := NewTDigest(DefaultCompression)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td.Add(vals[i&8191])
	}
}

func BenchmarkTDigestMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	parts := make([]*TDigest, 4)
	for i := range parts {
		parts[i] = NewTDigest(DefaultCompression)
		for k := 0; k < 100000; k++ {
			parts[i].Add(rng.ExpFloat64() * 100)
		}
		parts[i].flush()
	}
	dst := NewTDigest(DefaultCompression)
	MergedInto(dst, parts...) // pre-size the gather arrays
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergedInto(dst, parts...)
	}
}

func BenchmarkEpochSpanRecord(b *testing.B) {
	r := NewEpochRing(4096, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Begin(float64(i), ModeEpoch)
		sp := r.Cur()
		t0 := r.NowNs()
		for s := range sp.Shards {
			sp.Shards[s].StartNs = t0
			sp.Shards[s].RunNs = r.NowNs() - t0
		}
		sp.ReplayStartNs = r.NowNs()
		sp.ReplayNs = 1
	}
}
