package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func fillSpan(r *EpochRing, at float64, p int) {
	r.Begin(at, ModeEpoch)
	sp := r.Cur()
	base := r.NowNs()
	for s := 0; s < p; s++ {
		sp.Shards[s] = PhaseSpan{StartNs: base, WaitNs: int64(100 * s), CommitNs: 50, RunNs: 1000, RefreshNs: 200}
	}
	sp.ReplayStartNs, sp.ReplayNs = base+2000, 300
	sp.AllocStartNs, sp.AllocNs = base+2300, 400
}

func TestEpochRingWrapAndOrder(t *testing.T) {
	r := NewEpochRing(4, 2)
	for i := 0; i < 7; i++ {
		fillSpan(r, float64(i), 2)
	}
	if got := r.Recorded(); got != 7 {
		t.Fatalf("recorded %d, want 7", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len %d, want 4", got)
	}
	spans := r.Spans(nil)
	for i, es := range spans {
		if want := int64(4 + i); es.Epoch != want {
			t.Fatalf("span %d epoch %d, want %d (chronological order)", i, es.Epoch, want)
		}
	}
}

func TestEpochRingBeginNoAlloc(t *testing.T) {
	r := NewEpochRing(64, 4)
	for i := 0; i < 128; i++ {
		fillSpan(r, float64(i), 4)
	}
	i := 0
	if avg := testing.AllocsPerRun(5000, func() {
		r.Begin(float64(i), ModeEpoch)
		sp := r.Cur()
		sp.Shards[0].RunNs = r.NowNs()
		i++
	}); avg != 0 {
		t.Fatalf("EpochRing.Begin allocates %v/op, want 0", avg)
	}
}

// TestChromeTraceJSON validates the dump is well-formed Chrome trace-event
// JSON with per-shard phases and the coordinator lane — the machine-checkable
// proxy for "loads in chrome://tracing".
func TestChromeTraceJSON(t *testing.T) {
	const p = 3
	r := NewEpochRing(16, p)
	for i := 0; i < 5; i++ {
		fillSpan(r, 100*float64(i), p)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	threads := map[int]bool{}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		case "X":
			threads[ev.Tid] = true
			phases[ev.Name]++
			if ev.Dur <= 0 {
				t.Errorf("event %q has dur %v", ev.Name, ev.Dur)
			}
			if ev.Args["epoch"] == nil || ev.Args["mode"] == nil {
				t.Errorf("event %q missing epoch/mode args", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for s := 0; s < p; s++ {
		if !threads[s] {
			t.Errorf("no events on shard %d lane", s)
		}
	}
	if !threads[p] {
		t.Errorf("no events on the coordinator lane (tid %d)", p)
	}
	for _, name := range []string{"commit", "run", "refresh+encode", "replay", "alloc+gemm", "barrier-wait"} {
		if phases[name] == 0 {
			t.Errorf("no %q events in trace", name)
		}
	}
}
