package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// Before any publish: /metrics serves only process self-metrics,
	// /snapshot 503s.
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "go_goroutines") {
		t.Fatalf("/metrics pre-publish = %d %q", code, body)
	}
	if code, _ := get(t, base+"/snapshot"); code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot pre-publish code = %d, want 503", code)
	}

	srv.Publish([]byte("# TYPE hierdrl_jobs_completed_total counter\nhierdrl_jobs_completed_total 42\n"),
		[]byte(`{"Completed":42}`))
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"hierdrl_jobs_completed_total 42", "go_heap_alloc_bytes", "process_uptime_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, base+"/snapshot"); code != 200 || body != `{"Completed":42}` {
		t.Fatalf("/snapshot = %d %q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
