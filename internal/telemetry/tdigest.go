// Package telemetry is the live-observability core: mergeable quantile
// sketches (t-digest), counters and gauges rendered as Prometheus text, the
// /metrics + /healthz + /snapshot + pprof HTTP endpoint, and the
// decision-epoch trace ring. Everything on the simulation hot path is
// allocation-free once warm, and everything the HTTP goroutine reads is an
// immutable published blob — the simulation's own state is never touched off
// the driver goroutine (DESIGN.md §17).
package telemetry

import (
	"fmt"
	"math"
	"sort"

	"hierdrl/internal/checkpoint"
)

// DefaultCompression is the t-digest compression δ used by the session
// sketches: ~δ centroids bound the memory, and the quantile error in
// q-space shrinks as q(1-q)/δ toward the tails (p99 on latency-like
// distributions is typically within a few tenths of a percent relative).
const DefaultCompression = 100

// TDigest is a merging t-digest (Dunning's MergingDigest with the k1
// arcsine scale function): a fixed-memory quantile sketch whose centroids
// concentrate toward the tails. Adds land in a buffer and are folded into
// the centroid set when it fills, so the amortized hot path is one bounds
// check and two stores — zero allocations once constructed.
//
// Determinism contract: the digest state after any sequence of Add calls is
// a pure function of the inserted multiset *and insertion order*; MergedInto
// re-sorts all centroids by (mean, weight) before a single compression pass,
// so a merged digest is bitwise independent of the order its parts are given
// in (the epoch-barrier shard merge relies on this).
type TDigest struct {
	comp float64

	// Sorted centroid set (mean ascending, len(mean) == len(weight)).
	mean   []float64
	weight []float64

	count    float64 // total weight folded into the centroid set
	min, max float64

	// Insertion buffer, folded at flush.
	buf  []float64
	bufn int

	// gather/scratch arrays reused by flush and compress; pre-sized so the
	// steady-state flush path never allocates.
	gm, gw []float64
	sm, sw []float64
	ps     pairSorter
}

// NewTDigest returns a digest with compression δ (δ < 20 is raised to 20).
func NewTDigest(compression float64) *TDigest {
	t := &TDigest{}
	t.Init(compression)
	return t
}

// Init (re)initializes a zero-value digest in place — SketchSet holds
// digests by value to keep them cache-adjacent.
func (t *TDigest) Init(compression float64) {
	if compression < 20 {
		compression = 20
	}
	t.comp = compression
	maxC := 2*int(math.Ceil(compression)) + 16
	bufCap := 5 * int(math.Ceil(compression))
	t.mean = make([]float64, 0, maxC)
	t.weight = make([]float64, 0, maxC)
	t.buf = make([]float64, bufCap)
	t.gm = make([]float64, 0, maxC+bufCap)
	t.gw = make([]float64, 0, maxC+bufCap)
	t.sm = make([]float64, 0, maxC)
	t.sw = make([]float64, 0, maxC)
	t.resetStats()
}

func (t *TDigest) resetStats() {
	t.mean = t.mean[:0]
	t.weight = t.weight[:0]
	t.count = 0
	t.bufn = 0
	t.min = math.Inf(1)
	t.max = math.Inf(-1)
}

// Reset empties the digest, keeping its buffers.
func (t *TDigest) Reset() { t.resetStats() }

// Compression returns the configured δ.
func (t *TDigest) Compression() float64 { return t.comp }

// Add inserts one sample. NaN is ignored (latency samples are always
// finite; a NaN would poison every centroid mean). Zero allocations: the
// sample lands in the preallocated buffer, and the amortized flush sorts
// and compresses entirely within preallocated scratch.
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf[t.bufn] = x
	t.bufn++
	if t.bufn == len(t.buf) {
		t.flush()
	}
}

// Count returns the total number of samples inserted.
func (t *TDigest) Count() float64 { return t.count + float64(t.bufn) }

// Min and Max return the exact observed extremes (+Inf/-Inf when empty).
func (t *TDigest) Min() float64 { return t.min }
func (t *TDigest) Max() float64 { return t.max }

// flush folds the insertion buffer into the centroid set: sort the buffer,
// two-stream merge with the (already sorted) centroids into the gather
// arrays, then one size-bound compression pass. All within preallocated
// scratch — no allocation.
func (t *TDigest) flush() {
	if t.bufn == 0 {
		return
	}
	b := t.buf[:t.bufn]
	sort.Float64s(b)
	gm, gw := t.gm[:0], t.gw[:0]
	i, j := 0, 0
	for i < len(t.mean) || j < len(b) {
		if j >= len(b) || (i < len(t.mean) && t.mean[i] <= b[j]) {
			gm = append(gm, t.mean[i])
			gw = append(gw, t.weight[i])
			i++
		} else {
			gm = append(gm, b[j])
			gw = append(gw, 1)
			j++
		}
	}
	t.gm, t.gw = gm, gw
	t.bufn = 0
	t.compressSorted(gm, gw)
}

// qLimit is the k1 scale function's weight boundary: the largest quantile a
// centroid starting at q0 may span, k⁻¹(k(q0) + 1) with
// k(q) = (δ/2π)·asin(2q-1).
func qLimit(q0, comp float64) float64 {
	v := 2*q0 - 1
	if v < -1 {
		v = -1
	} else if v > 1 {
		v = 1
	}
	a := math.Asin(v) + 2*math.Pi/comp
	if a >= math.Pi/2 {
		return 1
	}
	return (math.Sin(a) + 1) / 2
}

// compressSorted rebuilds the centroid set from a sorted weighted stream,
// greedily merging neighbors while the k1 weight bound allows. The output
// size is bounded by ~δ regardless of input length, so the preallocated
// scratch never grows in steady state.
func (t *TDigest) compressSorted(ms, ws []float64) {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	om, ow := t.sm[:0], t.sw[:0]
	if len(ms) > 0 {
		curM, curW := ms[0], ws[0]
		wSoFar := 0.0
		limit := qLimit(0, t.comp) * total
		for k := 1; k < len(ms); k++ {
			m, w := ms[k], ws[k]
			if wSoFar+curW+w <= limit {
				curM += w * (m - curM) / (curW + w)
				curW += w
			} else {
				om = append(om, curM)
				ow = append(ow, curW)
				wSoFar += curW
				limit = qLimit(wSoFar/total, t.comp) * total
				curM, curW = m, w
			}
		}
		om = append(om, curM)
		ow = append(ow, curW)
	}
	// Swap: the old centroid arrays become next flush's scratch.
	t.mean, t.sm = om, t.mean[:0]
	t.weight, t.sw = ow, t.weight[:0]
	t.count = total
}

// Quantile returns the value at quantile q in [0, 1] (NaN when empty),
// interpolating piecewise-linearly between centroid midpoints with the
// exact min/max as endpoints.
func (t *TDigest) Quantile(q float64) float64 {
	t.flush()
	n := len(t.mean)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	if n == 1 {
		return t.mean[0]
	}
	target := q * t.count
	// Head: below the first centroid's midpoint, interpolate from min.
	if h := t.weight[0] / 2; target <= h {
		return t.min + target/h*(t.mean[0]-t.min)
	}
	cum := 0.0
	for i := 0; i < n-1; i++ {
		lo := cum + t.weight[i]/2
		cum += t.weight[i]
		hi := cum + t.weight[i+1]/2
		if target <= hi {
			return t.mean[i] + (target-lo)/(hi-lo)*(t.mean[i+1]-t.mean[i])
		}
	}
	// Tail: above the last centroid's midpoint, interpolate toward max.
	lo := t.count - t.weight[n-1]/2
	if span := t.count - lo; span > 0 && target < t.count {
		return t.mean[n-1] + (target-lo)/span*(t.max-t.mean[n-1])
	}
	return t.max
}

// pairSorter sorts parallel (mean, weight) arrays by (mean, weight) — a
// total order over centroids, which is what makes MergedInto independent of
// part order: equal means are tie-broken by weight, and centroids equal in
// both coordinates are interchangeable.
type pairSorter struct {
	m, w []float64
}

func (p *pairSorter) Len() int { return len(p.m) }
func (p *pairSorter) Less(i, j int) bool {
	if p.m[i] != p.m[j] {
		return p.m[i] < p.m[j]
	}
	return p.w[i] < p.w[j]
}
func (p *pairSorter) Swap(i, j int) {
	p.m[i], p.m[j] = p.m[j], p.m[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// MergedInto resets dst and rebuilds it as the merge of parts: all centroids
// are gathered, sorted by the (mean, weight) total order, and compressed in
// one pass. The result is bitwise identical under any permutation of parts.
// dst may not be one of parts. Parts are flushed but otherwise unchanged.
// This is the epoch-barrier merge path, not the per-sample hot path; the
// gather arrays grow to fit all parts' centroids on first use.
func MergedInto(dst *TDigest, parts ...*TDigest) {
	dst.Reset()
	need := 0
	for _, p := range parts {
		p.flush()
		need += len(p.mean)
	}
	if cap(dst.gm) < need {
		dst.gm = make([]float64, 0, need)
		dst.gw = make([]float64, 0, need)
	}
	gm, gw := dst.gm[:0], dst.gw[:0]
	for _, p := range parts {
		gm = append(gm, p.mean...)
		gw = append(gw, p.weight...)
		if p.min < dst.min {
			dst.min = p.min
		}
		if p.max > dst.max {
			dst.max = p.max
		}
	}
	dst.gm, dst.gw = gm, gw
	dst.ps.m, dst.ps.w = gm, gw
	sort.Sort(&dst.ps)
	dst.compressSorted(gm, gw)
}

// SaveState serializes the digest (flushed first, so the byte stream is
// insertion-order canonical up to buffered samples).
func (t *TDigest) SaveState(e *checkpoint.Enc) {
	t.flush()
	e.F64(t.comp)
	e.F64(t.count)
	e.F64(t.min)
	e.F64(t.max)
	e.F64s(t.mean)
	e.F64s(t.weight)
}

// RestoreState reads what SaveState wrote into a digest constructed with
// the same compression.
func (t *TDigest) RestoreState(d *checkpoint.Dec) error {
	comp := d.F64()
	count := d.F64()
	min := d.F64()
	max := d.F64()
	mean := d.F64s()
	weight := d.F64s()
	if err := d.Sticky(); err != nil {
		return err
	}
	if comp != t.comp {
		return fmt.Errorf("%w: tdigest compression %v, configured %v", checkpoint.ErrCorrupt, comp, t.comp)
	}
	if len(mean) != len(weight) || len(mean) > cap(t.mean) {
		return fmt.Errorf("%w: tdigest %d means, %d weights (cap %d)", checkpoint.ErrCorrupt, len(mean), len(weight), cap(t.mean))
	}
	for i, w := range weight {
		if !(w > 0) || math.IsNaN(mean[i]) {
			return fmt.Errorf("%w: tdigest centroid %d: mean %v weight %v", checkpoint.ErrCorrupt, i, mean[i], w)
		}
		if i > 0 && mean[i] < mean[i-1] {
			return fmt.Errorf("%w: tdigest centroids out of order at %d", checkpoint.ErrCorrupt, i)
		}
	}
	if math.IsNaN(count) || (len(mean) > 0) != (count > 0) {
		return fmt.Errorf("%w: tdigest count %v with %d centroids", checkpoint.ErrCorrupt, count, len(mean))
	}
	t.resetStats()
	t.mean = append(t.mean, mean...)
	t.weight = append(t.weight, weight...)
	t.count = count
	t.min = min
	t.max = max
	return nil
}
