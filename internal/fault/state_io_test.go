package fault

import (
	"bytes"
	"math"
	"testing"

	"hierdrl/internal/checkpoint"
)

// TestExpClockRoundTrip: a restored failure clock continues its draw
// sequence bitwise — the post-restore crash/repair schedule is exactly the
// one the interrupted run would have produced.
func TestExpClockRoundTrip(t *testing.T) {
	m, err := NewExpCrash(42, 3600, 300)
	if err != nil {
		t.Fatalf("NewExpCrash: %v", err)
	}
	c1 := m.ClockFor(5).(*expClock)
	// Advance the chain mid-alternation.
	for i := 0; i < 7; i++ {
		c1.NextFailure()
		c1.NextRepair()
	}

	w := checkpoint.NewWriter(0)
	checkpoint.SaveComponent(w.Section("clock"), c1)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	// Restore into a clock from an unrelated seed: every construction draw
	// must be overwritten by the replayed chain.
	m2, err := NewExpCrash(999, 3600, 300)
	if err != nil {
		t.Fatalf("NewExpCrash: %v", err)
	}
	c2 := m2.ClockFor(0).(*expClock)
	c2.NextFailure()
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("clock")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if err := checkpoint.RestoreComponent(d, c2); err != nil {
		t.Fatalf("RestoreComponent: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}

	for i := 0; i < 10; i++ {
		f1, f2 := c1.NextFailure(), c2.NextFailure()
		r1, r2 := c1.NextRepair(), c2.NextRepair()
		if math.Float64bits(f1) != math.Float64bits(f2) || math.Float64bits(r1) != math.Float64bits(r2) {
			t.Fatalf("draw %d diverges: failure %v vs %v, repair %v vs %v", i, f1, f2, r1, r2)
		}
	}
}

// TestRetryPoliciesAreStateless pins the checkpoint contract of the retry
// policies: pure functions of (now, job, attempt) serialize as stateless.
func TestRetryPoliciesAreStateless(t *testing.T) {
	for _, p := range []any{Immediate{}, Backoff{}, DropAfter{}} {
		if _, ok := p.(checkpoint.Stateless); !ok {
			t.Fatalf("%T must be checkpoint.Stateless", p)
		}
		if _, ok := p.(checkpoint.Stateful); ok {
			t.Fatalf("%T must not also be Stateful", p)
		}
	}
}
