// Package fault implements the deterministic failure/repair subsystem:
// per-server exponential crash and repair clocks plus the retry policies
// that decide what happens to jobs a crash interrupts.
//
// Determinism contract: each server's clock is an independent RNG chain
// seeded from (run seed, server ID) only, and it is advanced exclusively by
// that server's own crash/repair events. No draw ever crosses servers and
// nothing else consumes from these chains, so the full failure schedule of
// every server is a pure function of (seed, serverID, mttf, mttr) —
// independent of shard count, event interleaving, and workload. That is what
// keeps fault-enabled runs bitwise run-to-run reproducible at any P.
package fault

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/trace"
)

// Clock draws one server's crash/repair delays, in seconds. Implementations
// must be deterministic given their construction inputs: the engine calls
// NextFailure when the server (re)joins the cluster and NextRepair when it
// crashes, strictly alternating, and replays the same call sequence on every
// run.
type Clock interface {
	// NextFailure returns the delay until the server's next crash, measured
	// from the instant it (re)joined. The crash clock runs in wall-clock
	// time regardless of power state — a server can crash while asleep.
	NextFailure() float64
	// NextRepair returns the delay until a crashed server rejoins (cold).
	NextRepair() float64
}

// Model supplies the per-server failure clocks for one run.
type Model interface {
	Name() string
	// ClockFor returns server serverID's clock, or nil if that server never
	// fails. It is invoked once per server in ascending ID order at session
	// construction.
	ClockFor(serverID int) Clock
}

// RetryPolicy decides an interrupted job's fate. Retry is consulted on the
// attempt-th interruption of job j (attempt counts from 1 across the job's
// lifetime, surviving multiple crashes): it returns the requeue delay in
// seconds and whether to retry at all — false drops the job as lost.
type RetryPolicy interface {
	Name() string
	Retry(now float64, j trace.Job, attempt int) (delaySec float64, retry bool)
}

// chainSeed mixes the run seed and a server ID into one well-separated
// 63-bit seed (splitmix64-style finalizer). Adjacent server IDs — and
// adjacent run seeds — land in unrelated regions of the generator's state
// space, so per-server chains are statistically independent.
func chainSeed(seed int64, serverID int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(serverID+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1)
}

// ExpCrash is the built-in "exp-crash" model: i.i.d. exponential time to
// failure and time to repair, the textbook Markovian machine-repair model.
type ExpCrash struct {
	seed       int64
	mttf, mttr float64
}

// NewExpCrash builds an exponential crash/repair model with the given mean
// time to failure and mean time to repair (both in seconds).
func NewExpCrash(seed int64, mttfSec, mttrSec float64) (*ExpCrash, error) {
	if !(mttfSec > 0) || math.IsInf(mttfSec, 1) {
		return nil, fmt.Errorf("fault: MTTF %v must be positive and finite", mttfSec)
	}
	if !(mttrSec > 0) || math.IsInf(mttrSec, 1) {
		return nil, fmt.Errorf("fault: MTTR %v must be positive and finite", mttrSec)
	}
	return &ExpCrash{seed: seed, mttf: mttfSec, mttr: mttrSec}, nil
}

// Name implements Model.
func (m *ExpCrash) Name() string { return "exp-crash" }

// ClockFor implements Model: every server gets its own chain seeded from
// (run seed, serverID).
func (m *ExpCrash) ClockFor(serverID int) Clock {
	return &expClock{
		rng:      mat.NewRNG(chainSeed(m.seed, serverID)),
		failRate: 1 / m.mttf,
		repRate:  1 / m.mttr,
	}
}

type expClock struct {
	rng      *mat.RNG
	failRate float64
	repRate  float64
}

func (c *expClock) NextFailure() float64 { return c.rng.Exponential(c.failRate) }
func (c *expClock) NextRepair() float64  { return c.rng.Exponential(c.repRate) }

// Immediate is the built-in "immediate" retry policy: every interrupted job
// requeues at the crash instant with no delay and no attempt cap.
type Immediate struct{}

// Name implements RetryPolicy.
func (Immediate) Name() string { return "immediate" }

// Retry implements RetryPolicy.
func (Immediate) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	return 0, true
}

// Backoff is the built-in "backoff" retry policy: capped exponential
// backoff. Attempt k waits min(BaseSec * 2^(k-1), CapSec); when Max > 0 a
// job is dropped after Max interruptions.
type Backoff struct {
	BaseSec float64
	CapSec  float64
	Max     int // 0 = unlimited attempts
}

// NewBackoff validates and builds a capped exponential backoff policy.
func NewBackoff(baseSec, capSec float64, max int) (Backoff, error) {
	if !(baseSec > 0) || math.IsInf(baseSec, 1) {
		return Backoff{}, fmt.Errorf("fault: backoff base %v must be positive and finite", baseSec)
	}
	if !(capSec >= baseSec) || math.IsInf(capSec, 1) {
		return Backoff{}, fmt.Errorf("fault: backoff cap %v must be finite and >= base %v", capSec, baseSec)
	}
	if max < 0 {
		return Backoff{}, fmt.Errorf("fault: backoff max %d must be non-negative", max)
	}
	return Backoff{BaseSec: baseSec, CapSec: capSec, Max: max}, nil
}

// Name implements RetryPolicy.
func (Backoff) Name() string { return "backoff" }

// Retry implements RetryPolicy.
func (b Backoff) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	if b.Max > 0 && attempt > b.Max {
		return 0, false
	}
	d := math.Ldexp(b.BaseSec, attempt-1) // base * 2^(attempt-1); Inf-safe
	if d > b.CapSec {
		d = b.CapSec
	}
	return d, true
}

// DropAfter is the built-in "drop-after" retry policy: up to Max immediate
// requeues, then the job is counted lost.
type DropAfter struct {
	Max int
}

// Name implements RetryPolicy.
func (DropAfter) Name() string { return "drop-after" }

// Retry implements RetryPolicy.
func (d DropAfter) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	return 0, attempt <= d.Max
}
