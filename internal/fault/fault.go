// Package fault implements the deterministic failure/repair subsystem:
// per-server exponential crash and repair clocks plus the retry policies
// that decide what happens to jobs a crash interrupts.
//
// Determinism contract: each server's clock is an independent RNG chain
// seeded from (run seed, server ID) only, and it is advanced exclusively by
// that server's own crash/repair events. No draw ever crosses servers and
// nothing else consumes from these chains, so the full failure schedule of
// every server is a pure function of (seed, serverID, mttf, mttr) —
// independent of shard count, event interleaving, and workload. That is what
// keeps fault-enabled runs bitwise run-to-run reproducible at any P.
package fault

import (
	"fmt"
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/trace"
)

// Clock draws one server's crash/repair delays, in seconds. Implementations
// must be deterministic given their construction inputs: the engine calls
// NextFailure when the server (re)joins the cluster and NextRepair when it
// crashes, strictly alternating, and replays the same call sequence on every
// run.
type Clock interface {
	// NextFailure returns the delay until the server's next crash, measured
	// from the instant it (re)joined. The crash clock runs in wall-clock
	// time regardless of power state — a server can crash while asleep.
	NextFailure() float64
	// NextRepair returns the delay until a crashed server rejoins (cold).
	NextRepair() float64
}

// Model supplies the per-server failure clocks for one run.
type Model interface {
	Name() string
	// ClockFor returns server serverID's clock, or nil if that server never
	// fails. It is invoked once per server in ascending ID order at session
	// construction.
	ClockFor(serverID int) Clock
}

// RetryPolicy decides an interrupted job's fate. Retry is consulted on the
// attempt-th interruption of job j (attempt counts from 1 across the job's
// lifetime, surviving multiple crashes): it returns the requeue delay in
// seconds and whether to retry at all — false drops the job as lost.
type RetryPolicy interface {
	Name() string
	Retry(now float64, j trace.Job, attempt int) (delaySec float64, retry bool)
}

// chainSeed mixes the run seed and a server ID into one well-separated
// 63-bit seed (splitmix64-style finalizer). Adjacent server IDs — and
// adjacent run seeds — land in unrelated regions of the generator's state
// space, so per-server chains are statistically independent.
func chainSeed(seed int64, serverID int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(serverID+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1)
}

// ExpCrash is the built-in "exp-crash" model: i.i.d. exponential time to
// failure and time to repair, the textbook Markovian machine-repair model.
type ExpCrash struct {
	seed       int64
	mttf, mttr float64
}

// NewExpCrash builds an exponential crash/repair model with the given mean
// time to failure and mean time to repair (both in seconds).
func NewExpCrash(seed int64, mttfSec, mttrSec float64) (*ExpCrash, error) {
	if !(mttfSec > 0) || math.IsInf(mttfSec, 1) {
		return nil, fmt.Errorf("fault: MTTF %v must be positive and finite", mttfSec)
	}
	if !(mttrSec > 0) || math.IsInf(mttrSec, 1) {
		return nil, fmt.Errorf("fault: MTTR %v must be positive and finite", mttrSec)
	}
	return &ExpCrash{seed: seed, mttf: mttfSec, mttr: mttrSec}, nil
}

// Name implements Model.
func (m *ExpCrash) Name() string { return "exp-crash" }

// ClockFor implements Model: every server gets its own chain seeded from
// (run seed, serverID).
func (m *ExpCrash) ClockFor(serverID int) Clock {
	return &expClock{
		rng:      mat.NewRNG(chainSeed(m.seed, serverID)),
		failRate: 1 / m.mttf,
		repRate:  1 / m.mttr,
	}
}

type expClock struct {
	rng      *mat.RNG
	failRate float64
	repRate  float64
}

func (c *expClock) NextFailure() float64 { return c.rng.Exponential(c.failRate) }
func (c *expClock) NextRepair() float64  { return c.rng.Exponential(c.repRate) }

// Immediate is the built-in "immediate" retry policy: every interrupted job
// requeues at the crash instant with no delay and no attempt cap.
type Immediate struct{}

// Name implements RetryPolicy.
func (Immediate) Name() string { return "immediate" }

// Retry implements RetryPolicy.
func (Immediate) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	return 0, true
}

// Backoff is the built-in "backoff" retry policy: capped exponential
// backoff. Attempt k waits min(BaseSec * 2^(k-1), CapSec); when Max > 0 a
// job is dropped after Max interruptions.
type Backoff struct {
	BaseSec float64
	CapSec  float64
	Max     int // 0 = unlimited attempts
}

// NewBackoff validates and builds a capped exponential backoff policy.
func NewBackoff(baseSec, capSec float64, max int) (Backoff, error) {
	if !(baseSec > 0) || math.IsInf(baseSec, 1) {
		return Backoff{}, fmt.Errorf("fault: backoff base %v must be positive and finite", baseSec)
	}
	if !(capSec >= baseSec) || math.IsInf(capSec, 1) {
		return Backoff{}, fmt.Errorf("fault: backoff cap %v must be finite and >= base %v", capSec, baseSec)
	}
	if max < 0 {
		return Backoff{}, fmt.Errorf("fault: backoff max %d must be non-negative", max)
	}
	return Backoff{BaseSec: baseSec, CapSec: capSec, Max: max}, nil
}

// Name implements RetryPolicy.
func (Backoff) Name() string { return "backoff" }

// Retry implements RetryPolicy.
func (b Backoff) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	if b.Max > 0 && attempt > b.Max {
		return 0, false
	}
	// Ldexp overflows to +Inf past attempt ~1075 (and a poisoned BaseSec can
	// yield NaN); the inverted comparison clamps every non-finite value to the
	// cap, so the delay handed to the event clock is always finite.
	d := math.Ldexp(b.BaseSec, attempt-1) // base * 2^(attempt-1)
	if !(d < b.CapSec) {
		d = b.CapSec
	}
	return d, true
}

// Kind classifies what a model's clock firings do to a server. The engine
// dispatches on it: crash evicts everything immediately, degrade only slows
// the server down, drain stops intake and powers off once the server runs dry.
type Kind uint8

const (
	// KindCrash kills the server at once: running and queued jobs are evicted
	// through the retry policy, capacity comes back only at repair.
	KindCrash Kind = iota
	// KindDegrade leaves the server up but multiplies its effective speed by
	// the model's factor (fail-slow); the matching repair restores full speed.
	KindDegrade
	// KindDrain starts a planned maintenance window: the server stops
	// accepting work, migrates its queue, finishes its running jobs, then
	// powers off gracefully until the window elapses.
	KindDrain
)

// Classified is an optional Model extension declaring the fault class of the
// model's clock firings. Models that do not implement it are crash models
// (KindCrash), matching the original exp-crash semantics.
type Classified interface {
	Kind() Kind
}

// Degrader is the optional Model extension for KindDegrade models: Factor
// returns the speed multiplier applied while a server is degraded.
type Degrader interface {
	Factor() float64
}

// Domain groups Count contiguous server IDs into one failure domain (a rack
// or availability zone). Domains partition the cluster in declaration order,
// exactly like cluster.Config.Classes partitions it into server classes.
type Domain struct {
	// Name labels the domain in diagnostics (may be empty).
	Name string
	// Count is the number of consecutive servers in the domain.
	Count int
}

// DomainModel is the optional Model extension for topology-aware models: the
// session uses the returned partition to count whole-domain outages.
type DomainModel interface {
	Domains() []Domain
}

// ValidateDomains checks that domains partition exactly m servers.
func ValidateDomains(domains []Domain, m int) error {
	if len(domains) == 0 {
		return fmt.Errorf("fault: no failure domains declared")
	}
	total := 0
	for i, d := range domains {
		if d.Count <= 0 {
			return fmt.Errorf("fault: domain %d (%q) has non-positive count %d", i, d.Name, d.Count)
		}
		total += d.Count
	}
	if total != m {
		return fmt.Errorf("fault: domain counts sum to %d, want M=%d", total, m)
	}
	return nil
}

// EqualDomains partitions m servers into n equal contiguous domains (the
// first m%n domains absorb the remainder), named "dom0".."domN-1".
func EqualDomains(n, m int) []Domain {
	if n <= 0 || n > m {
		n = 1
	}
	out := make([]Domain, n)
	base, rem := m/n, m%n
	for i := range out {
		out[i] = Domain{Name: fmt.Sprintf("dom%d", i), Count: base}
		if i < rem {
			out[i].Count++
		}
	}
	return out
}

// CorrelatedCrash is the built-in "correlated-crash" model: whole failure
// domains crash and repair together. Every member of a domain receives its
// own replica of one domain-level RNG chain — a two-level splitmix64 chain
// seeded from (run seed, domain index), the same discipline the workload
// subsystem uses for component isolation. Because the engine calls
// NextFailure/NextRepair in strict alternation per server, and all members
// start up together at t=0, the replicas stay in perpetual lockstep: the
// whole domain goes down and comes back at identical instants, with zero
// cross-server (and hence zero cross-shard) draws.
type CorrelatedCrash struct {
	domSeed    int64
	domains    []Domain
	domainOf   []int32
	mttf, mttr float64
}

// NewCorrelatedCrash builds a domain-correlated crash/repair model over m
// servers. The domain counts must sum to m.
func NewCorrelatedCrash(seed int64, domains []Domain, m int, mttfSec, mttrSec float64) (*CorrelatedCrash, error) {
	if !(mttfSec > 0) || math.IsInf(mttfSec, 1) {
		return nil, fmt.Errorf("fault: MTTF %v must be positive and finite", mttfSec)
	}
	if !(mttrSec > 0) || math.IsInf(mttrSec, 1) {
		return nil, fmt.Errorf("fault: MTTR %v must be positive and finite", mttrSec)
	}
	if err := ValidateDomains(domains, m); err != nil {
		return nil, err
	}
	domainOf := make([]int32, 0, m)
	for g, d := range domains {
		for i := 0; i < d.Count; i++ {
			domainOf = append(domainOf, int32(g))
		}
	}
	return &CorrelatedCrash{
		// Level 1 separates the domain-chain channel from the per-server
		// channel plain ExpCrash draws from; level 2 (in ClockFor) separates
		// the domains from each other.
		domSeed:  chainSeed(seed, 1),
		domains:  append([]Domain(nil), domains...),
		domainOf: domainOf,
		mttf:     mttfSec,
		mttr:     mttrSec,
	}, nil
}

// Name implements Model.
func (m *CorrelatedCrash) Name() string { return "correlated-crash" }

// Kind implements Classified.
func (m *CorrelatedCrash) Kind() Kind { return KindCrash }

// Domains implements DomainModel.
func (m *CorrelatedCrash) Domains() []Domain { return m.domains }

// ClockFor implements Model: all members of a domain share one chain seed,
// so each holds an identical private replay of the domain schedule.
func (m *CorrelatedCrash) ClockFor(serverID int) Clock {
	g := int(m.domainOf[serverID])
	return &expClock{
		rng:      mat.NewRNG(chainSeed(m.domSeed, g)),
		failRate: 1 / m.mttf,
		repRate:  1 / m.mttr,
	}
}

// FailSlow is the built-in "degrade" model: servers never die, they slow
// down. A firing multiplies the server's effective speed by Factor (jobs
// started while degraded stretch by 1/Factor); the matching repair restores
// full speed. Chains are per-server, exactly like ExpCrash.
type FailSlow struct {
	seed       int64
	factor     float64
	mttd, mttr float64
}

// NewFailSlow builds a fail-slow model: factor is the degraded speed
// multiplier in (0, 1), mttdSec the mean time to degrade, mttrSec the mean
// degraded-window length.
func NewFailSlow(seed int64, factor, mttdSec, mttrSec float64) (*FailSlow, error) {
	if !(factor > 0 && factor < 1) {
		return nil, fmt.Errorf("fault: degrade factor %v must be in (0, 1)", factor)
	}
	if !(mttdSec > 0) || math.IsInf(mttdSec, 1) {
		return nil, fmt.Errorf("fault: MTTF %v must be positive and finite", mttdSec)
	}
	if !(mttrSec > 0) || math.IsInf(mttrSec, 1) {
		return nil, fmt.Errorf("fault: MTTR %v must be positive and finite", mttrSec)
	}
	return &FailSlow{seed: seed, factor: factor, mttd: mttdSec, mttr: mttrSec}, nil
}

// Name implements Model.
func (m *FailSlow) Name() string { return "degrade" }

// Kind implements Classified.
func (m *FailSlow) Kind() Kind { return KindDegrade }

// Factor implements Degrader.
func (m *FailSlow) Factor() float64 { return m.factor }

// ClockFor implements Model: NextFailure is the time to the next degrade
// onset, NextRepair the degraded-window length.
func (m *FailSlow) ClockFor(serverID int) Clock {
	return &expClock{
		rng:      mat.NewRNG(chainSeed(m.seed, serverID)),
		failRate: 1 / m.mttd,
		repRate:  1 / m.mttr,
	}
}

// MaintenanceDrain is the built-in "maintenance-drain" model: planned,
// RNG-free windows. Server i's first window opens everySec*(1 + i/m) after
// t=0 — an even stagger across one period so the fleet never drains at once —
// and each later window opens everySec after the previous rejoin. The window
// lasts windowSec measured from the graceful power-off.
type MaintenanceDrain struct {
	everySec, windowSec float64
	m                   int
}

// NewMaintenanceDrain builds a planned-maintenance model over m servers.
func NewMaintenanceDrain(everySec, windowSec float64, m int) (*MaintenanceDrain, error) {
	if !(everySec > 0) || math.IsInf(everySec, 1) {
		return nil, fmt.Errorf("fault: drain period %v must be positive and finite", everySec)
	}
	if !(windowSec > 0) || math.IsInf(windowSec, 1) {
		return nil, fmt.Errorf("fault: drain window %v must be positive and finite", windowSec)
	}
	if m <= 0 {
		return nil, fmt.Errorf("fault: drain model needs a positive cluster size, got %d", m)
	}
	return &MaintenanceDrain{everySec: everySec, windowSec: windowSec, m: m}, nil
}

// Name implements Model.
func (m *MaintenanceDrain) Name() string { return "maintenance-drain" }

// Kind implements Classified.
func (m *MaintenanceDrain) Kind() Kind { return KindDrain }

// ClockFor implements Model.
func (m *MaintenanceDrain) ClockFor(serverID int) Clock {
	return &drainClock{
		period: m.everySec,
		window: m.windowSec,
		offset: m.everySec * float64(serverID) / float64(m.m),
	}
}

// drainClock is the deterministic maintenance schedule: no RNG at all, just
// the stagger offset folded into the first draw.
type drainClock struct {
	period, window, offset float64
	fired                  bool
}

func (c *drainClock) NextFailure() float64 {
	if !c.fired {
		c.fired = true
		return c.period + c.offset
	}
	return c.period
}

func (c *drainClock) NextRepair() float64 { return c.window }

// DropAfter is the built-in "drop-after" retry policy: up to Max immediate
// requeues, then the job is counted lost.
type DropAfter struct {
	Max int
}

// Name implements RetryPolicy.
func (DropAfter) Name() string { return "drop-after" }

// Retry implements RetryPolicy.
func (d DropAfter) Retry(now float64, j trace.Job, attempt int) (float64, bool) {
	return 0, attempt <= d.Max
}
