package fault

import (
	"hierdrl/internal/checkpoint"
)

// SaveState implements checkpoint.Stateful: the clock is its RNG chain —
// rates are construction config.
func (c *expClock) SaveState(e *checkpoint.Enc) { checkpoint.SaveRNG(e, c.rng) }

// RestoreState implements checkpoint.Stateful.
func (c *expClock) RestoreState(d *checkpoint.Dec) error {
	return checkpoint.RestoreRNG(d, c.rng)
}

// CheckpointStateless marks the retry policies: a job's fate depends only on
// (now, job, attempt), never on prior calls.
func (Immediate) CheckpointStateless() {}
func (Backoff) CheckpointStateless()   {}
func (DropAfter) CheckpointStateless() {}

var (
	_ checkpoint.Stateful  = (*expClock)(nil)
	_ checkpoint.Stateless = Immediate{}
	_ checkpoint.Stateless = Backoff{}
	_ checkpoint.Stateless = DropAfter{}
)
