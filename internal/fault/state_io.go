package fault

import (
	"hierdrl/internal/checkpoint"
)

// SaveState implements checkpoint.Stateful: the clock is its RNG chain —
// rates are construction config.
func (c *expClock) SaveState(e *checkpoint.Enc) { checkpoint.SaveRNG(e, c.rng) }

// RestoreState implements checkpoint.Stateful.
func (c *expClock) RestoreState(d *checkpoint.Dec) error {
	return checkpoint.RestoreRNG(d, c.rng)
}

// SaveState implements checkpoint.Stateful: the maintenance schedule's only
// evolving state is whether the stagger offset has been consumed — period,
// window, and offset are construction config.
func (c *drainClock) SaveState(e *checkpoint.Enc) { e.Bool(c.fired) }

// RestoreState implements checkpoint.Stateful.
func (c *drainClock) RestoreState(d *checkpoint.Dec) error {
	c.fired = d.Bool()
	return d.Sticky()
}

// CheckpointStateless marks the retry policies: a job's fate depends only on
// (now, job, attempt), never on prior calls.
func (Immediate) CheckpointStateless() {}
func (Backoff) CheckpointStateless()   {}
func (DropAfter) CheckpointStateless() {}

var (
	_ checkpoint.Stateful  = (*expClock)(nil)
	_ checkpoint.Stateful  = (*drainClock)(nil)
	_ checkpoint.Stateless = Immediate{}
	_ checkpoint.Stateless = Backoff{}
	_ checkpoint.Stateless = DropAfter{}
)
