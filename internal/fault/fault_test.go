package fault

import (
	"fmt"
	"math"
	"testing"

	"hierdrl/internal/trace"
)

// TestExpCrashChainsDeterministicAndDisjoint pins the determinism contract:
// a server's schedule is a pure function of (seed, serverID, mttf, mttr),
// and distinct servers (or distinct run seeds) draw from unrelated chains.
func TestExpCrashChainsDeterministicAndDisjoint(t *testing.T) {
	m1, err := NewExpCrash(42, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewExpCrash(42, 1000, 100)
	m3, _ := NewExpCrash(43, 1000, 100)

	draw := func(c Clock) [6]uint64 {
		var out [6]uint64
		for i := 0; i < 3; i++ {
			out[2*i] = math.Float64bits(c.NextFailure())
			out[2*i+1] = math.Float64bits(c.NextRepair())
		}
		return out
	}

	for id := 0; id < 8; id++ {
		a, b := draw(m1.ClockFor(id)), draw(m2.ClockFor(id))
		if a != b {
			t.Fatalf("server %d: same (seed, id) produced different schedules: %v vs %v", id, a, b)
		}
		if draw(m1.ClockFor(id)) == draw(m1.ClockFor(id+1)) {
			t.Fatalf("servers %d and %d share a chain", id, id+1)
		}
		if a == draw(m3.ClockFor(id)) {
			t.Fatalf("server %d: seeds 42 and 43 share a chain", id)
		}
	}

	// Draws must be valid exponential variates: positive and finite.
	c := m1.ClockFor(0)
	for i := 0; i < 1000; i++ {
		if f := c.NextFailure(); !(f > 0) || math.IsInf(f, 1) {
			t.Fatalf("NextFailure draw %d = %v", i, f)
		}
		if r := c.NextRepair(); !(r > 0) || math.IsInf(r, 1) {
			t.Fatalf("NextRepair draw %d = %v", i, r)
		}
	}
}

func TestNewExpCrashValidation(t *testing.T) {
	bad := [][2]float64{
		{0, 100}, {-1, 100}, {math.Inf(1), 100}, {math.NaN(), 100},
		{1000, 0}, {1000, -1}, {1000, math.Inf(1)}, {1000, math.NaN()},
	}
	for _, p := range bad {
		if _, err := NewExpCrash(1, p[0], p[1]); err == nil {
			t.Errorf("NewExpCrash(1, %v, %v): want error, got nil", p[0], p[1])
		}
	}
	if _, err := NewExpCrash(1, 1000, 100); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b, err := NewBackoff(30, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	var j trace.Job
	want := []float64{30, 60, 120, 240, 480, 600, 600} // doubles then caps
	for i, w := range want {
		d, ok := b.Retry(0, j, i+1)
		if !ok || d != w {
			t.Fatalf("attempt %d: got (%v, %v), want (%v, true)", i+1, d, ok, w)
		}
	}

	capped, _ := NewBackoff(10, 40, 3)
	if d, ok := capped.Retry(0, j, 3); !ok || d != 40 {
		t.Fatalf("attempt 3: got (%v, %v), want (40, true)", d, ok)
	}
	if _, ok := capped.Retry(0, j, 4); ok {
		t.Fatal("attempt 4 with Max=3: want drop")
	}

	// A huge attempt count must not overflow into Inf or a negative delay.
	if d, ok := b.Retry(0, j, 10000); !ok || d != 600 {
		t.Fatalf("attempt 10000: got (%v, %v), want (600, true)", d, ok)
	}
}

// TestBackoffExtremeAttemptClampsToCap is the overflow regression: Ldexp
// overflows to +Inf past attempt ~1075, and the clamp must hand the event
// clock the finite cap, never Inf or NaN — an Inf delay would park the retry
// forever and a NaN would corrupt the event queue ordering.
func TestBackoffExtremeAttemptClampsToCap(t *testing.T) {
	b, err := NewBackoff(30, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	var j trace.Job
	for _, attempt := range []int{1074, 1075, 1100, 1 << 20, math.MaxInt32} {
		d, ok := b.Retry(0, j, attempt)
		if !ok {
			t.Fatalf("attempt %d: unexpectedly dropped", attempt)
		}
		if d != 600 {
			t.Fatalf("attempt %d: delay %v, want exactly the 600s cap", attempt, d)
		}
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("attempt %d: non-finite delay %v", attempt, d)
		}
	}
	// The clamp must be bitwise-neutral below the cap: the small-attempt
	// schedule is pinned by TestBackoffSchedule, re-check the boundary here.
	if d, _ := b.Retry(0, j, 5); d != 480 {
		t.Fatalf("attempt 5: delay %v, want 480 (clamp disturbed the finite path)", d)
	}
	// A poisoned policy (zero value, not via NewBackoff) yields NaN from
	// Ldexp(0, large)*...; even then the delay must come out finite.
	poisoned := Backoff{BaseSec: math.NaN(), CapSec: 600}
	if d, ok := poisoned.Retry(0, j, 3); !ok || d != 600 {
		t.Fatalf("NaN base: got (%v, %v), want (600, true)", d, ok)
	}
}

func TestNewBackoffValidation(t *testing.T) {
	cases := []struct {
		base, cap float64
		max       int
	}{
		{0, 600, 0}, {-1, 600, 0}, {math.Inf(1), 600, 0}, {math.NaN(), 600, 0},
		{30, 10, 0}, {30, math.Inf(1), 0}, {30, math.NaN(), 0}, {30, 600, -1},
	}
	for _, c := range cases {
		if _, err := NewBackoff(c.base, c.cap, c.max); err == nil {
			t.Errorf("NewBackoff(%v, %v, %d): want error, got nil", c.base, c.cap, c.max)
		}
	}
}

// TestEqualDomains pins the partition shape: n contiguous domains covering
// exactly m servers, the first m%n domains one server larger.
func TestEqualDomains(t *testing.T) {
	cases := []struct {
		n, m int
		want []int
	}{
		{3, 10, []int{4, 3, 3}},
		{5, 30, []int{6, 6, 6, 6, 6}},
		{1, 7, []int{7}},
		{4, 4, []int{1, 1, 1, 1}},
		{0, 5, []int{5}},  // n <= 0 collapses to one domain
		{-2, 5, []int{5}}, // ditto
		{9, 5, []int{5}},  // n > m collapses to one domain
	}
	for _, c := range cases {
		got := EqualDomains(c.n, c.m)
		if len(got) != len(c.want) {
			t.Fatalf("EqualDomains(%d, %d): %d domains, want %d", c.n, c.m, len(got), len(c.want))
		}
		for i, d := range got {
			if d.Count != c.want[i] {
				t.Fatalf("EqualDomains(%d, %d)[%d] = %d, want %d", c.n, c.m, i, d.Count, c.want[i])
			}
			if want := fmt.Sprintf("dom%d", i); d.Name != want {
				t.Fatalf("EqualDomains(%d, %d)[%d].Name = %q, want %q", c.n, c.m, i, d.Name, want)
			}
		}
		if err := ValidateDomains(got, c.m); err != nil {
			t.Fatalf("EqualDomains(%d, %d) fails its own validation: %v", c.n, c.m, err)
		}
	}
}

func TestValidateDomains(t *testing.T) {
	bad := []struct {
		name    string
		domains []Domain
		m       int
	}{
		{"empty", nil, 4},
		{"undercount", []Domain{{Count: 3}}, 4},
		{"overcount", []Domain{{Count: 3}, {Count: 3}}, 4},
		{"zero-count", []Domain{{Count: 0}, {Count: 4}}, 4},
		{"negative-count", []Domain{{Count: -1}, {Count: 5}}, 4},
	}
	for _, c := range bad {
		if err := ValidateDomains(c.domains, c.m); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	if err := ValidateDomains([]Domain{{Name: "a", Count: 1}, {Count: 3}}, 4); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
}

// TestCorrelatedCrashLockstep pins the tentpole determinism contract: every
// member of a failure domain replays the identical domain-level chain (so
// the whole rack crashes and repairs at the same instants with zero
// cross-server draws), distinct domains draw from unrelated chains, and the
// schedule is a pure function of (seed, partition, rates).
func TestCorrelatedCrashLockstep(t *testing.T) {
	domains := []Domain{{Name: "r0", Count: 3}, {Name: "r1", Count: 2}, {Name: "r2", Count: 3}}
	m1, err := NewCorrelatedCrash(42, domains, 8, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewCorrelatedCrash(42, domains, 8, 1000, 100)
	m3, _ := NewCorrelatedCrash(43, domains, 8, 1000, 100)

	draw := func(c Clock) [8]uint64 {
		var out [8]uint64
		for i := 0; i < 4; i++ {
			out[2*i] = math.Float64bits(c.NextFailure())
			out[2*i+1] = math.Float64bits(c.NextRepair())
		}
		return out
	}

	// Members of one domain are in lockstep; a reconstructed model agrees.
	groups := [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7}}
	var perDomain [3][8]uint64
	for g, members := range groups {
		ref := draw(m1.ClockFor(members[0]))
		perDomain[g] = ref
		for _, id := range members[1:] {
			if got := draw(m1.ClockFor(id)); got != ref {
				t.Fatalf("domain %d: server %d diverges from server %d: %v vs %v",
					g, id, members[0], got, ref)
			}
		}
		if got := draw(m2.ClockFor(members[0])); got != ref {
			t.Fatalf("domain %d: same seed reconstructed a different schedule", g)
		}
		if got := draw(m3.ClockFor(members[0])); got == ref {
			t.Fatalf("domain %d: seeds 42 and 43 share a chain", g)
		}
	}
	// Distinct domains draw from distinct chains.
	if perDomain[0] == perDomain[1] || perDomain[1] == perDomain[2] || perDomain[0] == perDomain[2] {
		t.Fatalf("domains share a chain: %v", perDomain)
	}
	// The domain channel must not collide with ExpCrash's per-server channel
	// on the same run seed (level-1 separation).
	exp, _ := NewExpCrash(42, 1000, 100)
	for id := 0; id < 8; id++ {
		if draw(exp.ClockFor(id)) == perDomain[0] {
			t.Fatalf("domain 0 chain collides with exp-crash server %d chain", id)
		}
	}

	if _, err := NewCorrelatedCrash(1, domains, 9, 1000, 100); err == nil {
		t.Fatal("partition not summing to M: want error")
	}
	if _, err := NewCorrelatedCrash(1, domains, 8, 0, 100); err == nil {
		t.Fatal("MTTF 0: want error")
	}
}

// TestFailSlowModel pins the degrade model surface: Kind/Factor/Name, the
// (0,1) factor validation, and per-server deterministic chains.
func TestFailSlowModel(t *testing.T) {
	m1, err := NewFailSlow(7, 0.25, 5000, 600)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Name() != "degrade" || m1.Kind() != KindDegrade || m1.Factor() != 0.25 {
		t.Fatalf("surface: name=%q kind=%d factor=%v", m1.Name(), m1.Kind(), m1.Factor())
	}
	for _, f := range []float64{0, 1, -0.5, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := NewFailSlow(7, f, 5000, 600); err == nil {
			t.Errorf("factor %v: want error, got nil", f)
		}
	}
	m2, _ := NewFailSlow(7, 0.25, 5000, 600)
	c1, c2 := m1.ClockFor(3), m2.ClockFor(3)
	for i := 0; i < 10; i++ {
		if a, b := c1.NextFailure(), c2.NextFailure(); a != b {
			t.Fatalf("draw %d: %v vs %v", i, a, b)
		}
		if a, b := c1.NextRepair(), c2.NextRepair(); a != b {
			t.Fatalf("repair draw %d: %v vs %v", i, a, b)
		}
	}
}

// TestDrainClockSchedule pins the RNG-free maintenance schedule: server i's
// first window opens at everySec*(1 + i/m), every later window everySec
// after the previous rejoin, each lasting exactly windowSec.
func TestDrainClockSchedule(t *testing.T) {
	m, err := NewMaintenanceDrain(14400, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "maintenance-drain" || m.Kind() != KindDrain {
		t.Fatalf("surface: name=%q kind=%d", m.Name(), m.Kind())
	}
	for id := 0; id < 4; id++ {
		c := m.ClockFor(id)
		first := 14400 * (1 + float64(id)/4)
		if got := c.NextFailure(); got != first {
			t.Fatalf("server %d: first window at %v, want %v", id, got, first)
		}
		for i := 0; i < 3; i++ {
			if got := c.NextRepair(); got != 600 {
				t.Fatalf("server %d: window length %v, want 600", id, got)
			}
			if got := c.NextFailure(); got != 14400 {
				t.Fatalf("server %d: later period %v, want 14400", id, got)
			}
		}
	}
	for _, bad := range [][2]float64{{0, 600}, {-1, 600}, {14400, 0}, {math.Inf(1), 600}, {14400, math.NaN()}} {
		if _, err := NewMaintenanceDrain(bad[0], bad[1], 4); err == nil {
			t.Errorf("NewMaintenanceDrain(%v, %v, 4): want error", bad[0], bad[1])
		}
	}
	if _, err := NewMaintenanceDrain(14400, 600, 0); err == nil {
		t.Error("m=0: want error")
	}
}

func TestImmediateAndDropAfter(t *testing.T) {
	var j trace.Job
	for attempt := 1; attempt <= 100; attempt++ {
		if d, ok := (Immediate{}).Retry(0, j, attempt); !ok || d != 0 {
			t.Fatalf("Immediate attempt %d: got (%v, %v), want (0, true)", attempt, d, ok)
		}
	}
	da := DropAfter{Max: 2}
	for attempt, want := range map[int]bool{1: true, 2: true, 3: false, 4: false} {
		if d, ok := da.Retry(0, j, attempt); ok != want || d != 0 {
			t.Fatalf("DropAfter{2} attempt %d: got (%v, %v), want (0, %v)", attempt, d, ok, want)
		}
	}
}
