package fault

import (
	"math"
	"testing"

	"hierdrl/internal/trace"
)

// TestExpCrashChainsDeterministicAndDisjoint pins the determinism contract:
// a server's schedule is a pure function of (seed, serverID, mttf, mttr),
// and distinct servers (or distinct run seeds) draw from unrelated chains.
func TestExpCrashChainsDeterministicAndDisjoint(t *testing.T) {
	m1, err := NewExpCrash(42, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewExpCrash(42, 1000, 100)
	m3, _ := NewExpCrash(43, 1000, 100)

	draw := func(c Clock) [6]uint64 {
		var out [6]uint64
		for i := 0; i < 3; i++ {
			out[2*i] = math.Float64bits(c.NextFailure())
			out[2*i+1] = math.Float64bits(c.NextRepair())
		}
		return out
	}

	for id := 0; id < 8; id++ {
		a, b := draw(m1.ClockFor(id)), draw(m2.ClockFor(id))
		if a != b {
			t.Fatalf("server %d: same (seed, id) produced different schedules: %v vs %v", id, a, b)
		}
		if draw(m1.ClockFor(id)) == draw(m1.ClockFor(id+1)) {
			t.Fatalf("servers %d and %d share a chain", id, id+1)
		}
		if a == draw(m3.ClockFor(id)) {
			t.Fatalf("server %d: seeds 42 and 43 share a chain", id)
		}
	}

	// Draws must be valid exponential variates: positive and finite.
	c := m1.ClockFor(0)
	for i := 0; i < 1000; i++ {
		if f := c.NextFailure(); !(f > 0) || math.IsInf(f, 1) {
			t.Fatalf("NextFailure draw %d = %v", i, f)
		}
		if r := c.NextRepair(); !(r > 0) || math.IsInf(r, 1) {
			t.Fatalf("NextRepair draw %d = %v", i, r)
		}
	}
}

func TestNewExpCrashValidation(t *testing.T) {
	bad := [][2]float64{
		{0, 100}, {-1, 100}, {math.Inf(1), 100}, {math.NaN(), 100},
		{1000, 0}, {1000, -1}, {1000, math.Inf(1)}, {1000, math.NaN()},
	}
	for _, p := range bad {
		if _, err := NewExpCrash(1, p[0], p[1]); err == nil {
			t.Errorf("NewExpCrash(1, %v, %v): want error, got nil", p[0], p[1])
		}
	}
	if _, err := NewExpCrash(1, 1000, 100); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b, err := NewBackoff(30, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	var j trace.Job
	want := []float64{30, 60, 120, 240, 480, 600, 600} // doubles then caps
	for i, w := range want {
		d, ok := b.Retry(0, j, i+1)
		if !ok || d != w {
			t.Fatalf("attempt %d: got (%v, %v), want (%v, true)", i+1, d, ok, w)
		}
	}

	capped, _ := NewBackoff(10, 40, 3)
	if d, ok := capped.Retry(0, j, 3); !ok || d != 40 {
		t.Fatalf("attempt 3: got (%v, %v), want (40, true)", d, ok)
	}
	if _, ok := capped.Retry(0, j, 4); ok {
		t.Fatal("attempt 4 with Max=3: want drop")
	}

	// A huge attempt count must not overflow into Inf or a negative delay.
	if d, ok := b.Retry(0, j, 10000); !ok || d != 600 {
		t.Fatalf("attempt 10000: got (%v, %v), want (600, true)", d, ok)
	}
}

func TestNewBackoffValidation(t *testing.T) {
	cases := []struct {
		base, cap float64
		max       int
	}{
		{0, 600, 0}, {-1, 600, 0}, {math.Inf(1), 600, 0}, {math.NaN(), 600, 0},
		{30, 10, 0}, {30, math.Inf(1), 0}, {30, math.NaN(), 0}, {30, 600, -1},
	}
	for _, c := range cases {
		if _, err := NewBackoff(c.base, c.cap, c.max); err == nil {
			t.Errorf("NewBackoff(%v, %v, %d): want error, got nil", c.base, c.cap, c.max)
		}
	}
}

func TestImmediateAndDropAfter(t *testing.T) {
	var j trace.Job
	for attempt := 1; attempt <= 100; attempt++ {
		if d, ok := (Immediate{}).Retry(0, j, attempt); !ok || d != 0 {
			t.Fatalf("Immediate attempt %d: got (%v, %v), want (0, true)", attempt, d, ok)
		}
	}
	da := DropAfter{Max: 2}
	for attempt, want := range map[int]bool{1: true, 2: true, 3: false, 4: false} {
		if d, ok := da.Retry(0, j, attempt); ok != want || d != 0 {
			t.Fatalf("DropAfter{2} attempt %d: got (%v, %v), want (0, %v)", attempt, d, ok, want)
		}
	}
}
