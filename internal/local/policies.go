// Package local implements the local tier of the hierarchical framework
// (Sec. VI): per-server dynamic power management. The centerpiece is
// RLTimeout — the paper's model-free continuous-time Q-learning power
// manager driven by an LSTM workload predictor — plus the comparison
// policies the evaluation needs: AlwaysOn (round-robin baseline servers
// never sleep), AdHoc (immediate sleep, Fig. 4(a), used by the "DRL-only"
// comparator), and FixedTimeout (the Fig. 10 baselines with 30/60/90 s
// timeouts).
package local

import (
	"fmt"
	"math"

	"hierdrl/internal/cluster"
	"hierdrl/internal/sim"
)

// AlwaysOn keeps the server active forever (no power management).
type AlwaysOn struct{}

// OnIdle implements cluster.DPMPolicy.
func (AlwaysOn) OnIdle(sim.Time, *cluster.Server) float64 { return math.Inf(1) }

// OnArrival implements cluster.DPMPolicy.
func (AlwaysOn) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}

// Observe implements cluster.DPMPolicy.
func (AlwaysOn) Observe(sim.Time, float64, int) {}

// AdHoc sleeps the instant the server goes idle — the wasteful behaviour of
// Fig. 4(a) that the local tier is designed to beat.
type AdHoc struct{}

// OnIdle implements cluster.DPMPolicy.
func (AdHoc) OnIdle(sim.Time, *cluster.Server) float64 { return 0 }

// OnArrival implements cluster.DPMPolicy.
func (AdHoc) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}

// Observe implements cluster.DPMPolicy.
func (AdHoc) Observe(sim.Time, float64, int) {}

// FixedTimeout sleeps after a constant idle timeout (the Fig. 10 baselines
// use 30, 60 and 90 seconds).
type FixedTimeout struct {
	TimeoutSec float64
}

// NewFixedTimeout returns a fixed-timeout policy. timeoutSec must be >= 0.
func NewFixedTimeout(timeoutSec float64) FixedTimeout {
	if timeoutSec < 0 || math.IsNaN(timeoutSec) {
		panic(fmt.Sprintf("local: invalid fixed timeout %v", timeoutSec))
	}
	return FixedTimeout{TimeoutSec: timeoutSec}
}

// OnIdle implements cluster.DPMPolicy.
func (f FixedTimeout) OnIdle(sim.Time, *cluster.Server) float64 { return f.TimeoutSec }

// OnArrival implements cluster.DPMPolicy.
func (f FixedTimeout) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}

// Observe implements cluster.DPMPolicy.
func (f FixedTimeout) Observe(sim.Time, float64, int) {}

var (
	_ cluster.DPMPolicy = AlwaysOn{}
	_ cluster.DPMPolicy = AdHoc{}
	_ cluster.DPMPolicy = FixedTimeout{}
)
