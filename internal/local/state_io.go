package local

import (
	"hierdrl/internal/checkpoint"
)

// CheckpointStateless marks the constant policies: their behavior is a pure
// function of construction parameters, so a snapshot records nothing.
func (AlwaysOn) CheckpointStateless()     {}
func (AdHoc) CheckpointStateless()        {}
func (FixedTimeout) CheckpointStateless() {}

// SaveState implements checkpoint.Stateful: the learned Q-table, the
// epsilon schedule and its RNG, the open sojourn, and the nested arrival
// predictor (which must itself be checkpointable).
func (m *RLTimeout) SaveState(e *checkpoint.Enc) {
	m.table.SaveState(e)
	m.eps.SaveState(e)
	checkpoint.SaveRNG(e, m.eps.RNG())
	m.integ.SaveState(e)
	e.F64(m.lastPower)
	e.Int(m.lastJQ)
	e.Bool(m.hasPending)
	e.Str(m.pendingState)
	e.Int(m.pendingAction)
	e.I64(m.decisions)
	e.I64(m.updates)
	checkpoint.SaveComponent(e, m.pred)
}

// RestoreState implements checkpoint.Stateful.
func (m *RLTimeout) RestoreState(d *checkpoint.Dec) error {
	if err := m.table.RestoreState(d); err != nil {
		return err
	}
	if err := m.eps.RestoreState(d); err != nil {
		return err
	}
	if err := checkpoint.RestoreRNG(d, m.eps.RNG()); err != nil {
		return err
	}
	if err := m.integ.RestoreState(d); err != nil {
		return err
	}
	m.lastPower = d.F64()
	m.lastJQ = d.Int()
	m.hasPending = d.Bool()
	m.pendingState = d.Str()
	m.pendingAction = d.Int()
	m.decisions = d.I64()
	m.updates = d.I64()
	return checkpoint.RestoreComponent(d, m.pred)
}

// SaveState implements checkpoint.Stateful.
func (p *LastValue) SaveState(e *checkpoint.Enc) {
	e.F64(p.last)
	e.F64(p.lastGap)
	e.Int(p.seen)
}

// RestoreState implements checkpoint.Stateful.
func (p *LastValue) RestoreState(d *checkpoint.Dec) error {
	p.last = d.F64()
	p.lastGap = d.F64()
	p.seen = d.Int()
	return nil
}

// SaveState implements checkpoint.Stateful.
func (p *EWMA) SaveState(e *checkpoint.Enc) {
	e.F64(p.last)
	e.F64(p.est)
	e.Int(p.seen)
}

// RestoreState implements checkpoint.Stateful.
func (p *EWMA) RestoreState(d *checkpoint.Dec) error {
	p.last = d.F64()
	p.est = d.F64()
	p.seen = d.Int()
	return nil
}

// SaveState implements checkpoint.Stateful.
func (p *WindowMean) SaveState(e *checkpoint.Enc) {
	e.F64s(p.window)
	e.F64(p.last)
}

// RestoreState implements checkpoint.Stateful.
func (p *WindowMean) RestoreState(d *checkpoint.Dec) error {
	p.window = d.F64s()
	p.last = d.F64()
	return nil
}

var (
	_ checkpoint.Stateless = AlwaysOn{}
	_ checkpoint.Stateless = AdHoc{}
	_ checkpoint.Stateless = FixedTimeout{}
	_ checkpoint.Stateful  = (*RLTimeout)(nil)
	_ checkpoint.Stateful  = (*LastValue)(nil)
	_ checkpoint.Stateful  = (*EWMA)(nil)
	_ checkpoint.Stateful  = (*WindowMean)(nil)
)
