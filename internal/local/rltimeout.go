package local

import (
	"fmt"
	"math"
	"strconv"

	"hierdrl/internal/cluster"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/rl"
	"hierdrl/internal/sim"
)

// RLConfig configures the RL-based power manager (Algorithm 2).
type RLConfig struct {
	// Timeouts is the action set A: candidate idle timeouts in seconds,
	// including 0 for immediate shutdown (Sec. VI-B).
	Timeouts []float64
	// Alpha is the Q-learning rate.
	Alpha float64
	// Beta is the continuous-time discount rate of Eqn. (2).
	Beta float64
	// Epsilon / EpsilonMin / EpsilonDecay drive epsilon-greedy exploration.
	Epsilon      float64
	EpsilonMin   float64
	EpsilonDecay float64
	// PowerWeight is w in Eqn. (5): r(t) = -w*P(t) - (1-w)*JQ(t). Sweeping
	// it traces the Fig. 10 power/latency trade-off curve.
	PowerWeight float64
	// PowerNormW scales watts into the same magnitude band as queue
	// lengths before they enter the reward (P(t)/PowerNormW is ~[0,1]).
	PowerNormW float64
	// PredictorBounds discretizes the inter-arrival prediction into RL
	// state categories.
	PredictorBounds []float64
	// OptimisticInit is the initial Q value for unseen state-action pairs.
	OptimisticInit float64
}

// DefaultRLConfig returns the calibration used throughout the evaluation.
//
// Note on Beta: the paper quotes beta = 0.5 for its (global-tier) Q-learning.
// A 0.5/s discount rate has a ~2 s effective horizon — far shorter than the
// 30 s Ton/Toff transitions — which makes a sleeping server's power savings
// invisible to the learner. The local tier therefore defaults to beta =
// 0.01/s (~100 s horizon, spanning a full sleep/wake cycle); DESIGN.md
// records this calibration decision.
func DefaultRLConfig() RLConfig {
	return RLConfig{
		Timeouts:        []float64{0, 15, 30, 60, 90, 120},
		Alpha:           0.1,
		Beta:            0.01,
		Epsilon:         0.3,
		EpsilonMin:      0.02,
		EpsilonDecay:    0.999,
		PowerWeight:     0.5,
		PowerNormW:      145,
		PredictorBounds: []float64{15, 30, 60, 90, 120, 300},
		OptimisticInit:  0,
	}
}

// Validate checks the configuration.
func (c RLConfig) Validate() error {
	if len(c.Timeouts) == 0 {
		return fmt.Errorf("local: empty timeout action set")
	}
	for _, to := range c.Timeouts {
		if to < 0 || math.IsNaN(to) || math.IsInf(to, 0) {
			return fmt.Errorf("local: invalid timeout action %v", to)
		}
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("local: invalid alpha %v", c.Alpha)
	}
	if c.Beta <= 0 {
		return fmt.Errorf("local: invalid beta %v", c.Beta)
	}
	if c.PowerWeight < 0 || c.PowerWeight > 1 {
		return fmt.Errorf("local: PowerWeight %v outside [0,1]", c.PowerWeight)
	}
	if c.PowerNormW <= 0 {
		return fmt.Errorf("local: PowerNormW must be positive, got %v", c.PowerNormW)
	}
	return nil
}

// RLTimeout is the paper's local-tier power manager: at every case-(1)
// decision epoch (server idle, queue empty) it selects a timeout from the
// action set with epsilon-greedy Q-learning for SMDP. The sojourn of one
// decision runs until the *next* case-(1) epoch, and the Eqn. (5) reward
// rate is integrated exactly over everything that happens in between
// (timeout wait, shutdown, sleep, wake, busy period) — so a bad timeout that
// causes a wake-up delay is charged for the queue it builds.
type RLTimeout struct {
	cfg   RLConfig
	table *rl.QTable
	eps   *rl.EpsilonGreedy
	pred  ArrivalPredictor
	disc  *lstm.Discretizer
	integ *rl.RewardIntegrator

	lastPower float64
	lastJQ    int

	hasPending    bool
	pendingState  string
	pendingAction int

	decisions int64
	updates   int64
}

// NewRLTimeout builds the power manager. pred supplies inter-arrival
// forecasts; pass an lstm.Predictor for the paper's configuration or one of
// the baseline predictors for ablations.
func NewRLTimeout(cfg RLConfig, pred ArrivalPredictor, rng *mat.RNG) (*RLTimeout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pred == nil {
		return nil, fmt.Errorf("local: nil predictor")
	}
	return &RLTimeout{
		cfg:   cfg,
		table: rl.NewQTable(len(cfg.Timeouts), cfg.Alpha, cfg.Beta, cfg.OptimisticInit),
		eps:   rl.NewEpsilonGreedy(cfg.Epsilon, cfg.EpsilonMin, cfg.EpsilonDecay, rng),
		pred:  pred,
		disc:  lstm.NewDiscretizer(cfg.PredictorBounds),
		integ: rl.NewRewardIntegrator(cfg.Beta),
	}, nil
}

// rewardRate computes Eqn. (5) from the latest observation.
func (m *RLTimeout) rewardRate() float64 {
	w := m.cfg.PowerWeight
	return -(w*m.lastPower/m.cfg.PowerNormW + (1-w)*float64(m.lastJQ))
}

// stateKey encodes the RL state: the power manager acts only when the
// machine is idle with an empty queue, so the discriminating observation is
// the predicted next inter-arrival category (Sec. VI-B state parameters).
func (m *RLTimeout) stateKey() string {
	return "c" + strconv.Itoa(m.disc.Categorize(m.pred.Predict()))
}

// OnIdle implements cluster.DPMPolicy — decision-epoch case (1).
func (m *RLTimeout) OnIdle(t sim.Time, _ *cluster.Server) float64 {
	state := m.stateKey()
	// Close the previous sojourn with the exact discounted reward.
	if m.hasPending {
		rEq, tau := m.integ.EquivalentRate(t.Seconds())
		m.table.Update(m.pendingState, m.pendingAction, rEq, tau, state)
		m.updates++
	}
	action := m.eps.Select(len(m.cfg.Timeouts), func() int {
		best, _ := m.table.Best(state)
		return best
	})
	m.pendingState = state
	m.pendingAction = action
	m.hasPending = true
	m.integ.Reset(t.Seconds(), m.rewardRate())
	m.decisions++
	return m.cfg.Timeouts[action]
}

// OnArrival implements cluster.DPMPolicy — decision-epoch cases (2) and (3).
// Per the paper these epochs have a single available action, so no Q update
// happens here; the open sojourn simply keeps integrating reward until the
// next case-(1) epoch. The arrival always feeds the workload predictor.
func (m *RLTimeout) OnArrival(t sim.Time, _ *cluster.Server, _ cluster.PowerState) {
	m.pred.ObserveArrival(t.Seconds())
}

// Observe implements cluster.DPMPolicy: stream the reward-rate inputs.
func (m *RLTimeout) Observe(t sim.Time, powerW float64, jobsInSystem int) {
	m.lastPower = powerW
	m.lastJQ = jobsInSystem
	if m.integ.Started() {
		m.integ.SetRate(t.Seconds(), m.rewardRate())
	}
}

// FreezePolicy disables exploration (evaluation mode).
func (m *RLTimeout) FreezePolicy() { m.eps.SetEpsilon(0) }

// Epsilon returns the current exploration rate.
func (m *RLTimeout) Epsilon() float64 { return m.eps.Epsilon() }

// Decisions returns the number of case-(1) epochs seen.
func (m *RLTimeout) Decisions() int64 { return m.decisions }

// Updates returns the number of Q updates applied.
func (m *RLTimeout) Updates() int64 { return m.updates }

// QTable exposes the learned table for inspection in tests and ablations.
func (m *RLTimeout) QTable() *rl.QTable { return m.table }

var _ cluster.DPMPolicy = (*RLTimeout)(nil)
