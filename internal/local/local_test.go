package local

import (
	"math"
	"testing"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

func TestStaticPolicies(t *testing.T) {
	if got := (AlwaysOn{}).OnIdle(0, nil); !math.IsInf(got, 1) {
		t.Fatalf("AlwaysOn timeout %v want +Inf", got)
	}
	if got := (AdHoc{}).OnIdle(0, nil); got != 0 {
		t.Fatalf("AdHoc timeout %v want 0", got)
	}
	if got := NewFixedTimeout(60).OnIdle(0, nil); got != 60 {
		t.Fatalf("FixedTimeout timeout %v want 60", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative fixed timeout must panic")
		}
	}()
	NewFixedTimeout(-1)
}

func TestLastValuePredictor(t *testing.T) {
	p := NewLastValue()
	if !math.IsInf(p.Predict(), 1) {
		t.Fatal("empty LastValue should predict +Inf")
	}
	p.ObserveArrival(10)
	p.ObserveArrival(25)
	if got := p.Predict(); got != 15 {
		t.Fatalf("LastValue predict %v want 15", got)
	}
	p.ObserveArrival(30)
	if got := p.Predict(); got != 5 {
		t.Fatalf("LastValue predict %v want 5", got)
	}
}

func TestEWMAPredictor(t *testing.T) {
	p := NewEWMA(0.5)
	p.ObserveArrival(0)
	p.ObserveArrival(10) // est = 10
	p.ObserveArrival(30) // est = 0.5*20 + 0.5*10 = 15
	if got := p.Predict(); got != 15 {
		t.Fatalf("EWMA predict %v want 15", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad alpha must panic")
		}
	}()
	NewEWMA(0)
}

func TestWindowMeanPredictor(t *testing.T) {
	p := NewWindowMean(2)
	p.ObserveArrival(0)
	p.ObserveArrival(10)
	p.ObserveArrival(30) // gaps 10, 20 -> mean 15
	if got := p.Predict(); got != 15 {
		t.Fatalf("WindowMean predict %v want 15", got)
	}
	p.ObserveArrival(32) // gaps 20, 2 -> mean 11
	if got := p.Predict(); got != 11 {
		t.Fatalf("WindowMean predict %v want 11 (window slides)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero window must panic")
		}
	}()
	NewWindowMean(0)
}

func TestRLConfigValidate(t *testing.T) {
	if err := DefaultRLConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mod := func(f func(*RLConfig)) RLConfig {
		c := DefaultRLConfig()
		f(&c)
		return c
	}
	bad := []RLConfig{
		mod(func(c *RLConfig) { c.Timeouts = nil }),
		mod(func(c *RLConfig) { c.Timeouts = []float64{-1} }),
		mod(func(c *RLConfig) { c.Timeouts = []float64{math.Inf(1)} }),
		mod(func(c *RLConfig) { c.Alpha = 0 }),
		mod(func(c *RLConfig) { c.Beta = 0 }),
		mod(func(c *RLConfig) { c.PowerWeight = 1.5 }),
		mod(func(c *RLConfig) { c.PowerNormW = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	rng := mat.NewRNG(1)
	if _, err := NewRLTimeout(DefaultRLConfig(), nil, rng); err == nil {
		t.Fatal("nil predictor accepted")
	}
}

// runServerWithRL drives one server under the RL power manager with a
// perfectly periodic workload and returns the manager.
func runServerWithRL(t *testing.T, cfg RLConfig, gap, duration float64, cycles int) *RLTimeout {
	t.Helper()
	rng := mat.NewRNG(99)
	mgr, err := NewRLTimeout(cfg, NewEWMA(0.3), rng)
	if err != nil {
		t.Fatalf("NewRLTimeout: %v", err)
	}
	sm := sim.New()
	scfg := cluster.DefaultServerConfig()
	scfg.InitialState = cluster.StateActive
	srv, err := cluster.NewServer(0, sm, scfg, mgr)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	for i := 0; i < cycles; i++ {
		j := &cluster.Job{
			ID: i, Arrival: sim.Time(float64(i) * gap), Duration: duration,
			Req: cluster.Resources{0.5, 0.2, 0.1}, Server: -1,
		}
		j2 := j
		sm.Schedule(j.Arrival, func() { srv.Submit(j2) })
	}
	sm.RunAll(int64(cycles * 50))
	return mgr
}

// With frequent arrivals (10 s apart) and latency-sensitive weighting, the
// learned policy must keep the server on through the short idle gaps rather
// than thrash through 30+30 s transitions.
func TestRLTimeoutLearnsToStayOnUnderFrequentArrivals(t *testing.T) {
	cfg := DefaultRLConfig()
	cfg.PowerWeight = 0.3 // latency matters more
	mgr := runServerWithRL(t, cfg, 10, 5, 2000)

	if mgr.Decisions() == 0 || mgr.Updates() == 0 {
		t.Fatalf("no learning happened: decisions=%d updates=%d",
			mgr.Decisions(), mgr.Updates())
	}
	// The steady-state idle gap is 5 s, predicted category c0 (< 15 s).
	best, _ := mgr.QTable().Best("c0")
	if to := cfg.Timeouts[best]; to < 15 {
		t.Fatalf("learned timeout %v for frequent arrivals; want >= 15 (stay on)", to)
	}
}

// With rare arrivals (2000 s apart) and power-focused weighting, the learned
// policy must sleep quickly instead of idling at 87 W.
func TestRLTimeoutLearnsToSleepUnderRareArrivals(t *testing.T) {
	cfg := DefaultRLConfig()
	cfg.PowerWeight = 0.95 // power matters much more
	mgr := runServerWithRL(t, cfg, 2000, 10, 600)

	// Predicted gap ~2000 s falls in the top category.
	best, _ := mgr.QTable().Best("c6")
	if to := cfg.Timeouts[best]; to > 30 {
		t.Fatalf("learned timeout %v for rare arrivals; want <= 30 (sleep fast)", to)
	}
}

func TestRLTimeoutFreezePolicy(t *testing.T) {
	rng := mat.NewRNG(5)
	mgr, err := NewRLTimeout(DefaultRLConfig(), NewLastValue(), rng)
	if err != nil {
		t.Fatalf("NewRLTimeout: %v", err)
	}
	mgr.FreezePolicy()
	if mgr.Epsilon() != 0 {
		t.Fatalf("epsilon after freeze %v want 0", mgr.Epsilon())
	}
}

// The reward integrator must see every rate change; this scripted scenario
// checks the first Q update numerically. One decision epoch at t=10 picks a
// timeout; the server idles, sleeps, a job arrives and runs; the next idle
// epoch closes the sojourn. With alpha=1 and a fresh table the new Q value
// equals the SMDP target computed from the integrated reward.
func TestRLTimeoutFirstUpdateMatchesIntegral(t *testing.T) {
	cfg := DefaultRLConfig()
	cfg.Alpha = 1
	cfg.Epsilon = 0 // deterministic greedy (ties -> action 0 = timeout 0)
	cfg.EpsilonMin = 0
	cfg.PowerWeight = 1 // reward = -P/145 only: independent of queue
	rng := mat.NewRNG(7)
	mgr, err := NewRLTimeout(cfg, NewLastValue(), rng)
	if err != nil {
		t.Fatalf("NewRLTimeout: %v", err)
	}
	sm := sim.New()
	scfg := cluster.DefaultServerConfig()
	scfg.InitialState = cluster.StateActive
	srv, err := cluster.NewServer(0, sm, scfg, mgr)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	// Job 1: runs 0-10. Idle epoch at t=10 chooses timeout 0 (greedy tie).
	// Shutdown 10-40, sleep 40-100. Job 2 arrives at 100: wake 100-130,
	// run 130-140. Second idle epoch at t=140 closes the sojourn.
	j1 := &cluster.Job{ID: 0, Arrival: 0, Duration: 10, Req: cluster.Resources{0.5, 0.1, 0.1}, Server: -1}
	j2 := &cluster.Job{ID: 1, Arrival: 100, Duration: 10, Req: cluster.Resources{0.5, 0.1, 0.1}, Server: -1}
	sm.Schedule(0, func() { srv.Submit(j1) })
	sm.Schedule(100, func() { srv.Submit(j2) })
	sm.RunAll(100)

	if mgr.Updates() != 1 {
		t.Fatalf("updates %d want 1", mgr.Updates())
	}
	// Reproduce the expected exact integral over [10, 140):
	// [10,40) shutdown at 145 W, [40,100) sleep 0 W, [100,130) wake 145 W,
	// [130,140) active at P(0.5).
	pm := scfg.Power
	beta := cfg.Beta
	exp := func(x float64) float64 { return math.Exp(x) }
	seg := func(t0, t1, watts float64) float64 {
		// ∫ e^{-beta (u-10)} (-watts/145) du over [t0, t1)
		return -(watts / 145) * (exp(-beta*(t0-10)) - exp(-beta*(t1-10))) / beta
	}
	integral := seg(10, 40, pm.Transition()) + seg(40, 100, 0) +
		seg(100, 130, pm.Transition()) + seg(130, 140, pm.Active(0.5))
	tau := 130.0
	gain := (1 - exp(-beta*tau)) / beta
	rEq := integral / gain
	// Fresh table: max_a' Q = 0, so target = gain * rEq = integral.
	want := gain * rEq
	got := mgr.QTable().Q("c6", 0) // first prediction is +Inf -> top category
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("first Q update %v want %v", got, want)
	}
}

// RLTimeout must satisfy cluster.DPMPolicy and never return invalid
// timeouts under a random workload.
func TestRLTimeoutAlwaysValidTimeouts(t *testing.T) {
	rng := mat.NewRNG(11)
	cfg := DefaultRLConfig()
	mgr, err := NewRLTimeout(cfg, NewEWMA(0.5), rng)
	if err != nil {
		t.Fatalf("NewRLTimeout: %v", err)
	}
	sm := sim.New()
	scfg := cluster.DefaultServerConfig()
	srv, err := cluster.NewServer(0, sm, scfg, mgr)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	tNow := 0.0
	for i := 0; i < 300; i++ {
		tNow += rng.Exponential(1.0 / 40)
		j := &cluster.Job{ID: i, Arrival: sim.Time(tNow), Duration: 5 + rng.Float64()*60,
			Req: cluster.Resources{0.1 + rng.Float64()*0.4, 0.1, 0.1}, Server: -1}
		j2 := j
		sm.Schedule(j.Arrival, func() { srv.Submit(j2) })
	}
	// The server panics on invalid timeouts, so surviving RunAll is the
	// assertion.
	sm.RunAll(100000)
	if srv.Completed() != 300 {
		t.Fatalf("completed %d want 300", srv.Completed())
	}
}
