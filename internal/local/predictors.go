package local

import (
	"fmt"
	"math"

	"hierdrl/internal/lstm"
)

// ArrivalPredictor forecasts the next job inter-arrival time from the stream
// of observed arrival instants. lstm.Predictor is the paper's choice; the
// simpler predictors below are the linear-history baselines the paper argues
// against in Sec. VI-A (one long inter-arrival ruins them), used by the X1
// extension experiment.
type ArrivalPredictor interface {
	// ObserveArrival records a job arrival at absolute time t (seconds).
	ObserveArrival(t float64)
	// Predict returns the expected next inter-arrival time in seconds
	// (+Inf when nothing has been observed).
	Predict() float64
}

var _ ArrivalPredictor = (*lstm.Predictor)(nil)

// LastValue predicts the most recent inter-arrival time.
type LastValue struct {
	last    float64
	lastGap float64
	seen    int
}

// NewLastValue returns a LastValue predictor.
func NewLastValue() *LastValue { return &LastValue{last: math.NaN()} }

// ObserveArrival implements ArrivalPredictor.
func (p *LastValue) ObserveArrival(t float64) {
	if !math.IsNaN(p.last) {
		p.lastGap = t - p.last
		p.seen++
	}
	p.last = t
}

// Predict implements ArrivalPredictor.
func (p *LastValue) Predict() float64 {
	if p.seen == 0 {
		return math.Inf(1)
	}
	return p.lastGap
}

// EWMA predicts an exponentially-weighted moving average of inter-arrival
// times, the classic predictive-shutdown estimator of Hwang & Wu (Sec. VI-A
// reference [31]).
type EWMA struct {
	alpha float64
	last  float64
	est   float64
	seen  int
}

// NewEWMA returns an EWMA predictor with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("local: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha, last: math.NaN()}
}

// ObserveArrival implements ArrivalPredictor.
func (p *EWMA) ObserveArrival(t float64) {
	if !math.IsNaN(p.last) {
		gap := t - p.last
		if p.seen == 0 {
			p.est = gap
		} else {
			p.est = p.alpha*gap + (1-p.alpha)*p.est
		}
		p.seen++
	}
	p.last = t
}

// Predict implements ArrivalPredictor.
func (p *EWMA) Predict() float64 {
	if p.seen == 0 {
		return math.Inf(1)
	}
	return p.est
}

// WindowMean predicts the mean of the last W inter-arrival times (the
// Srivastava et al. linear-regression family reduced to its simplest
// member).
type WindowMean struct {
	window []float64
	cap    int
	last   float64
}

// NewWindowMean returns a WindowMean predictor over the last w gaps.
func NewWindowMean(w int) *WindowMean {
	if w <= 0 {
		panic(fmt.Sprintf("local: WindowMean size %d", w))
	}
	return &WindowMean{cap: w, last: math.NaN()}
}

// ObserveArrival implements ArrivalPredictor.
func (p *WindowMean) ObserveArrival(t float64) {
	if !math.IsNaN(p.last) {
		p.window = append(p.window, t-p.last)
		if len(p.window) > p.cap {
			p.window = p.window[1:]
		}
	}
	p.last = t
}

// Predict implements ArrivalPredictor.
func (p *WindowMean) Predict() float64 {
	if len(p.window) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, g := range p.window {
		s += g
	}
	return s / float64(len(p.window))
}
