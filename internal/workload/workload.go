// Package workload provides composable, deterministic workload generators:
// declarative scenario configurations — a base arrival-rate layer,
// multiplicative rate modulators, and a job-class mix with per-class demand
// and duration distributions — compiled into a trace.Source that produces the
// workload one job at a time.
//
// Determinism contract: a Source's job sequence is a pure function of
// (seed, Config). Every stochastic component (the arrival process, each MMPP
// modulator, the class picker, each class's attribute sampler) draws from its
// own RNG, seeded by splitmix64-mixing the scenario seed with the component's
// structural index. Components therefore never perturb each other's streams:
// adding a modulator or a class changes only the jobs that component touches,
// and the sequence is bitwise reproducible run to run, independent of shard
// count (generation happens before dispatch).
package workload

import (
	"fmt"
	"math"
)

// Default clip bounds, shared with the classic generator's calibration
// (trace.DefaultGeneratorConfig): jobs stay within [1 minute, 2 hours] and
// per-dimension demands within [0.002, 0.6] of a unit server.
const (
	DefaultMinDuration = 60
	DefaultMaxDuration = 7200
	DefaultMinReq      = 0.002
	DefaultMaxReq      = 0.6
)

// BaseKind selects the base arrival-rate layer's shape.
type BaseKind string

// Base layer kinds.
const (
	// BaseConstant is a homogeneous Poisson process at Rate.
	BaseConstant BaseKind = "constant"
	// BaseDiurnal modulates Rate with a sinusoidal day/night swing:
	// rate(t) = Rate * (1 + Amplitude*sin(2π(t+Phase)/Period - π/2)),
	// troughing at t=-Phase (midnight) and peaking half a period later.
	BaseDiurnal BaseKind = "diurnal"
	// BaseRamp interpolates linearly from Rate at t=0 to EndRate at
	// t=RampSec, holding EndRate afterwards (load-growth scenarios).
	BaseRamp BaseKind = "ramp"
)

// Base is the base arrival-rate layer: the deterministic rate profile the
// modulators multiply.
type Base struct {
	// Kind selects the shape.
	Kind BaseKind
	// Rate is the layer's reference rate in jobs/second: the constant rate,
	// the diurnal mean, or the ramp's starting rate.
	Rate float64
	// Amplitude in [0,1) scales the diurnal swing (diurnal only).
	Amplitude float64
	// PeriodSec is the diurnal period (0 = 86400, one day).
	PeriodSec float64
	// PhaseSec shifts the diurnal phase (0 = trough at t=0).
	PhaseSec float64
	// EndRate is the ramp's final rate (ramp only).
	EndRate float64
	// RampSec is the ramp duration (ramp only).
	RampSec float64
}

// ModKind selects a rate modulator's mechanism.
type ModKind string

// Modulator kinds.
const (
	// ModMMPP is a two-state Markov-modulated Poisson overlay: bursts begin
	// after Exponential(MeanEverySec) quiet periods, last
	// Exponential(MeanLenSec), and multiply the rate by Factor while active.
	ModMMPP ModKind = "mmpp"
	// ModFlash is a deterministic flash-crowd spike: the multiplier ramps
	// linearly 1→Peak over RampUpSec starting at AtSec, holds Peak for
	// HoldSec, decays linearly back to 1 over DecaySec, and optionally
	// repeats every RepeatEverySec.
	ModFlash ModKind = "flash"
)

// Modulator is one multiplicative rate layer. Modulators compose: the
// instantaneous rate is the base profile times every modulator's multiplier.
type Modulator struct {
	// Kind selects the mechanism.
	Kind ModKind

	// MMPP parameters.
	Factor       float64 // rate multiplier while a burst is active (>= 1)
	MeanEverySec float64 // mean quiet time between burst onsets
	MeanLenSec   float64 // mean burst duration

	// Flash-crowd parameters.
	AtSec          float64 // spike onset time
	Peak           float64 // peak multiplier (>= 1)
	RampUpSec      float64 // linear ramp-up duration
	HoldSec        float64 // hold-at-peak duration
	DecaySec       float64 // linear decay duration
	RepeatEverySec float64 // repeat period (0 = one-shot)
}

// DistKind selects a scalar distribution family.
type DistKind string

// Distribution kinds.
const (
	// DistFixed is the degenerate distribution at Mean.
	DistFixed DistKind = "fixed"
	// DistExponential has the given Mean (rate 1/Mean).
	DistExponential DistKind = "exponential"
	// DistPareto is the heavy-tailed Pareto(Alpha, Xm): scale Xm, shape
	// Alpha (smaller Alpha = heavier tail; Alpha <= 1 has infinite mean).
	DistPareto DistKind = "pareto"
	// DistLogNormal has median Median and log-space sigma Sigma.
	DistLogNormal DistKind = "lognormal"
)

// Dist is a scalar distribution: one of the families above with its
// parameters. Unused parameters are ignored.
type Dist struct {
	Kind   DistKind
	Mean   float64 // fixed value, or exponential mean
	Alpha  float64 // Pareto shape
	Xm     float64 // Pareto scale (minimum value)
	Median float64 // log-normal median, exp(mu)
	Sigma  float64 // log-normal sigma
}

// Class is one job class of the mix: a selection weight plus the class's
// duration and demand distributions.
type Class struct {
	// Name labels the class (optional, for docs and tooling).
	Name string
	// Weight is the class's selection probability; weights across the mix
	// must sum to ~1.
	Weight float64
	// Duration is the nominal service-time distribution, clipped to
	// [MinDuration, MaxDuration].
	Duration    Dist
	MinDuration float64 // 0 = DefaultMinDuration
	MaxDuration float64 // 0 = DefaultMaxDuration
	// CPU is the CPU-demand distribution, clipped to [MinReq, MaxReq].
	CPU Dist
	// MemCorrelation blends memory demand between an independent CPU-dist
	// draw (0) and the job's CPU demand (1), mirroring the classic
	// generator's correlated-demand model.
	MemCorrelation float64
	// Disk is the disk-demand distribution, clipped to [MinReq, MaxReq].
	Disk   Dist
	MinReq float64 // 0 = DefaultMinReq
	MaxReq float64 // 0 = DefaultMaxReq
}

// Config is a declarative workload: how many jobs, the base rate profile,
// the modulator stack, and the job-class mix.
type Config struct {
	// NumJobs bounds the generated sequence.
	NumJobs int
	// Base is the base arrival-rate layer.
	Base Base
	// Mods is the multiplicative modulator stack (may be empty).
	Mods []Modulator
	// Classes is the job-class mix (must be non-empty, weights summing ~1).
	Classes []Class
}

// weightTol is the tolerance on the class-mix weight sum.
const weightTol = 1e-6

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func positive(x float64) bool { return x > 0 && !math.IsInf(x, 1) } // NaN fails x > 0

// Validate rejects inconsistent configurations: non-positive or non-finite
// rates and parameters, empty class mixes, weights that don't sum to ~1, and
// inverted clip ranges. It validates the normalized form, so zero clip
// fields (meaning "use the defaults") pass.
func (c Config) Validate() error {
	if c.NumJobs <= 0 {
		return fmt.Errorf("workload: NumJobs must be positive, got %d", c.NumJobs)
	}
	if err := c.Base.validate(); err != nil {
		return err
	}
	for i, m := range c.Mods {
		if err := m.validate(); err != nil {
			return fmt.Errorf("workload: modulator %d: %w", i, err)
		}
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("workload: empty class mix (at least one Class required)")
	}
	var wsum float64
	for i, cl := range c.Classes {
		if err := cl.normalized().validate(); err != nil {
			return fmt.Errorf("workload: class %d (%q): %w", i, cl.Name, err)
		}
		wsum += cl.Weight
	}
	if math.Abs(wsum-1) > weightTol {
		return fmt.Errorf("workload: class weights sum to %v, want 1 (±%v)", wsum, weightTol)
	}
	return nil
}

func (b Base) validate() error {
	switch b.Kind {
	case BaseConstant:
		if !positive(b.Rate) {
			return fmt.Errorf("workload: constant base Rate must be positive and finite, got %v", b.Rate)
		}
	case BaseDiurnal:
		if !positive(b.Rate) {
			return fmt.Errorf("workload: diurnal base Rate must be positive and finite, got %v", b.Rate)
		}
		if !(b.Amplitude >= 0 && b.Amplitude < 1) { // NaN fails
			return fmt.Errorf("workload: diurnal Amplitude must be in [0,1), got %v", b.Amplitude)
		}
		if b.PeriodSec != 0 && !positive(b.PeriodSec) {
			return fmt.Errorf("workload: diurnal PeriodSec must be positive and finite, got %v", b.PeriodSec)
		}
		if !finite(b.PhaseSec) {
			return fmt.Errorf("workload: diurnal PhaseSec must be finite, got %v", b.PhaseSec)
		}
	case BaseRamp:
		if !positive(b.Rate) || !positive(b.EndRate) {
			return fmt.Errorf("workload: ramp rates must be positive and finite, got %v -> %v", b.Rate, b.EndRate)
		}
		if !positive(b.RampSec) {
			return fmt.Errorf("workload: RampSec must be positive and finite, got %v", b.RampSec)
		}
	default:
		return fmt.Errorf("workload: unknown base kind %q", b.Kind)
	}
	return nil
}

func (m Modulator) validate() error {
	switch m.Kind {
	case ModMMPP:
		if !(m.Factor >= 1) || !finite(m.Factor) {
			return fmt.Errorf("mmpp Factor must be >= 1 and finite, got %v", m.Factor)
		}
		if !positive(m.MeanEverySec) || !positive(m.MeanLenSec) {
			return fmt.Errorf("mmpp burst timing must be positive and finite, got every=%v len=%v",
				m.MeanEverySec, m.MeanLenSec)
		}
	case ModFlash:
		if !(m.Peak >= 1) || !finite(m.Peak) {
			return fmt.Errorf("flash Peak must be >= 1 and finite, got %v", m.Peak)
		}
		if !(m.AtSec >= 0) || !finite(m.AtSec) {
			return fmt.Errorf("flash AtSec must be non-negative and finite, got %v", m.AtSec)
		}
		for _, d := range [...]float64{m.RampUpSec, m.HoldSec, m.DecaySec} {
			if !(d >= 0) || !finite(d) {
				return fmt.Errorf("flash phase durations must be non-negative and finite, got ramp=%v hold=%v decay=%v",
					m.RampUpSec, m.HoldSec, m.DecaySec)
			}
		}
		if span := m.RampUpSec + m.HoldSec + m.DecaySec; m.RepeatEverySec != 0 && m.RepeatEverySec < span {
			return fmt.Errorf("flash RepeatEverySec %v shorter than spike span %v", m.RepeatEverySec, span)
		}
		if !(m.RepeatEverySec >= 0) || math.IsInf(m.RepeatEverySec, 1) {
			return fmt.Errorf("flash RepeatEverySec must be non-negative and finite, got %v", m.RepeatEverySec)
		}
	default:
		return fmt.Errorf("unknown modulator kind %q", m.Kind)
	}
	return nil
}

func (d Dist) validate(what string) error {
	switch d.Kind {
	case DistFixed:
		if !positive(d.Mean) {
			return fmt.Errorf("%s: fixed value must be positive and finite, got %v", what, d.Mean)
		}
	case DistExponential:
		if !positive(d.Mean) {
			return fmt.Errorf("%s: exponential Mean must be positive and finite, got %v", what, d.Mean)
		}
	case DistPareto:
		if !positive(d.Alpha) || !positive(d.Xm) {
			return fmt.Errorf("%s: Pareto needs positive finite Alpha and Xm, got alpha=%v xm=%v",
				what, d.Alpha, d.Xm)
		}
	case DistLogNormal:
		if !positive(d.Median) {
			return fmt.Errorf("%s: lognormal Median must be positive and finite, got %v", what, d.Median)
		}
		if !(d.Sigma >= 0) || !finite(d.Sigma) {
			return fmt.Errorf("%s: lognormal Sigma must be non-negative and finite, got %v", what, d.Sigma)
		}
	default:
		return fmt.Errorf("%s: unknown distribution kind %q", what, d.Kind)
	}
	return nil
}

// normalized returns the class with zero clip fields replaced by the shared
// defaults.
func (cl Class) normalized() Class {
	if cl.MinDuration == 0 {
		cl.MinDuration = DefaultMinDuration
	}
	if cl.MaxDuration == 0 {
		cl.MaxDuration = DefaultMaxDuration
	}
	if cl.MinReq == 0 {
		cl.MinReq = DefaultMinReq
	}
	if cl.MaxReq == 0 {
		cl.MaxReq = DefaultMaxReq
	}
	return cl
}

// validate checks a normalized class.
func (cl Class) validate() error {
	if !positive(cl.Weight) {
		return fmt.Errorf("Weight must be positive and finite, got %v", cl.Weight)
	}
	if err := cl.Duration.validate("Duration"); err != nil {
		return err
	}
	if err := cl.CPU.validate("CPU"); err != nil {
		return err
	}
	if err := cl.Disk.validate("Disk"); err != nil {
		return err
	}
	if !(cl.MemCorrelation >= 0 && cl.MemCorrelation <= 1) {
		return fmt.Errorf("MemCorrelation must be in [0,1], got %v", cl.MemCorrelation)
	}
	if !positive(cl.MinDuration) || !finite(cl.MaxDuration) || cl.MaxDuration < cl.MinDuration {
		return fmt.Errorf("invalid duration clip [%v,%v]", cl.MinDuration, cl.MaxDuration)
	}
	if !positive(cl.MinReq) || cl.MaxReq > 1 || cl.MaxReq < cl.MinReq {
		return fmt.Errorf("invalid demand clip [%v,%v]", cl.MinReq, cl.MaxReq)
	}
	return nil
}

// normalized returns the config with every class's clip defaults filled in.
func (c Config) normalized() Config {
	classes := make([]Class, len(c.Classes))
	for i, cl := range c.Classes {
		classes[i] = cl.normalized()
	}
	c.Classes = classes
	return c
}
