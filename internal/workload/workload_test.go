package workload

import (
	"math"
	"strings"
	"testing"
)

// validConfig returns a minimal known-good configuration.
func validConfig() Config {
	return Config{
		NumJobs: 100,
		Base:    Base{Kind: BaseConstant, Rate: 0.2},
		Classes: []Class{{
			Name:           "c",
			Weight:         1,
			Duration:       Dist{Kind: DistExponential, Mean: 300},
			CPU:            Dist{Kind: DistLogNormal, Median: 0.03, Sigma: 0.5},
			MemCorrelation: 0.7,
			Disk:           Dist{Kind: DistLogNormal, Median: 0.01, Sigma: 0.5},
		}},
	}
}

// TestConfigValidateTable exercises the validation hardening: non-positive
// rates, NaN/Inf parameters, empty class mixes, broken weight sums, and
// inverted clip ranges must all be rejected with a descriptive error.
func TestConfigValidateTable(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // "" = must validate
	}{
		{"valid-minimal", func(c *Config) {}, ""},
		{"valid-diurnal", func(c *Config) {
			c.Base = Base{Kind: BaseDiurnal, Rate: 0.2, Amplitude: 0.35}
		}, ""},
		{"valid-ramp", func(c *Config) {
			c.Base = Base{Kind: BaseRamp, Rate: 0.1, EndRate: 0.3, RampSec: 86400}
		}, ""},
		{"valid-mods", func(c *Config) {
			c.Mods = []Modulator{
				{Kind: ModMMPP, Factor: 2, MeanEverySec: 3600, MeanLenSec: 300},
				{Kind: ModFlash, AtSec: 100, Peak: 5, RampUpSec: 60, HoldSec: 60, DecaySec: 60},
			}
		}, ""},
		{"valid-two-classes", func(c *Config) {
			second := c.Classes[0]
			c.Classes[0].Weight = 0.25
			second.Weight = 0.75
			second.Duration = Dist{Kind: DistPareto, Alpha: 1.5, Xm: 300}
			c.Classes = append(c.Classes, second)
		}, ""},

		{"zero-jobs", func(c *Config) { c.NumJobs = 0 }, "NumJobs"},
		{"unknown-base-kind", func(c *Config) { c.Base.Kind = "sawtooth" }, "unknown base kind"},
		{"zero-rate", func(c *Config) { c.Base.Rate = 0 }, "Rate"},
		{"negative-rate", func(c *Config) { c.Base.Rate = -1 }, "Rate"},
		{"nan-rate", func(c *Config) { c.Base.Rate = nan }, "Rate"},
		{"inf-rate", func(c *Config) { c.Base.Rate = inf }, "Rate"},
		{"amplitude-one", func(c *Config) {
			c.Base = Base{Kind: BaseDiurnal, Rate: 0.2, Amplitude: 1}
		}, "Amplitude"},
		{"amplitude-nan", func(c *Config) {
			c.Base = Base{Kind: BaseDiurnal, Rate: 0.2, Amplitude: nan}
		}, "Amplitude"},
		{"nan-period", func(c *Config) {
			c.Base = Base{Kind: BaseDiurnal, Rate: 0.2, PeriodSec: nan}
		}, "PeriodSec"},
		{"ramp-zero-end", func(c *Config) {
			c.Base = Base{Kind: BaseRamp, Rate: 0.1, EndRate: 0, RampSec: 86400}
		}, "ramp rates"},
		{"ramp-zero-span", func(c *Config) {
			c.Base = Base{Kind: BaseRamp, Rate: 0.1, EndRate: 0.2, RampSec: 0}
		}, "RampSec"},

		{"unknown-mod-kind", func(c *Config) {
			c.Mods = []Modulator{{Kind: "square"}}
		}, "unknown modulator kind"},
		{"mmpp-sub-unit-factor", func(c *Config) {
			c.Mods = []Modulator{{Kind: ModMMPP, Factor: 0.5, MeanEverySec: 3600, MeanLenSec: 300}}
		}, "Factor"},
		{"mmpp-nan-timing", func(c *Config) {
			c.Mods = []Modulator{{Kind: ModMMPP, Factor: 2, MeanEverySec: nan, MeanLenSec: 300}}
		}, "burst timing"},
		{"flash-sub-unit-peak", func(c *Config) {
			c.Mods = []Modulator{{Kind: ModFlash, Peak: 0.5}}
		}, "Peak"},
		{"flash-negative-phase", func(c *Config) {
			c.Mods = []Modulator{{Kind: ModFlash, Peak: 2, RampUpSec: -1}}
		}, "phase durations"},
		{"flash-repeat-too-short", func(c *Config) {
			c.Mods = []Modulator{{Kind: ModFlash, Peak: 2, RampUpSec: 60, HoldSec: 60, DecaySec: 60, RepeatEverySec: 100}}
		}, "RepeatEverySec"},

		{"empty-classes", func(c *Config) { c.Classes = nil }, "empty class mix"},
		{"weights-dont-sum", func(c *Config) { c.Classes[0].Weight = 0.8 }, "weights sum"},
		{"zero-weight", func(c *Config) { c.Classes[0].Weight = 0 }, "Weight"},
		{"nan-weight", func(c *Config) { c.Classes[0].Weight = nan }, "Weight"},
		{"unknown-dist-kind", func(c *Config) { c.Classes[0].Duration.Kind = "beta" }, "unknown distribution"},
		{"exp-zero-mean", func(c *Config) {
			c.Classes[0].Duration = Dist{Kind: DistExponential, Mean: 0}
		}, "Mean"},
		{"pareto-zero-alpha", func(c *Config) {
			c.Classes[0].Duration = Dist{Kind: DistPareto, Alpha: 0, Xm: 100}
		}, "Alpha"},
		{"lognormal-inf-median", func(c *Config) {
			c.Classes[0].CPU = Dist{Kind: DistLogNormal, Median: inf, Sigma: 0.5}
		}, "Median"},
		{"lognormal-negative-sigma", func(c *Config) {
			c.Classes[0].CPU = Dist{Kind: DistLogNormal, Median: 0.03, Sigma: -1}
		}, "Sigma"},
		{"memcorr-above-one", func(c *Config) { c.Classes[0].MemCorrelation = 1.5 }, "MemCorrelation"},
		{"memcorr-nan", func(c *Config) { c.Classes[0].MemCorrelation = nan }, "MemCorrelation"},
		{"inverted-duration-clip", func(c *Config) {
			c.Classes[0].MinDuration = 600
			c.Classes[0].MaxDuration = 60
		}, "duration clip"},
		{"inverted-demand-clip", func(c *Config) {
			c.Classes[0].MinReq = 0.5
			c.Classes[0].MaxReq = 0.1
		}, "demand clip"},
		{"demand-clip-above-capacity", func(c *Config) {
			c.Classes[0].MaxReq = 1.5
		}, "demand clip"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestSourceDeterministic pins the reproducibility contract: same
// (seed, config) => bitwise-identical job sequence; a different seed
// diverges.
func TestSourceDeterministic(t *testing.T) {
	cfg := validConfig()
	cfg.NumJobs = 500
	cfg.Mods = []Modulator{{Kind: ModMMPP, Factor: 2, MeanEverySec: 3600, MeanLenSec: 300}}
	a := MustSource(cfg, 42)
	b := MustSource(cfg, 42)
	c := MustSource(cfg, 43)
	diverged := false
	for {
		ja, oka := a.Next()
		jb, okb := b.Next()
		jc, okc := c.Next()
		if oka != okb || oka != okc {
			t.Fatalf("stream lengths diverged")
		}
		if !oka {
			break
		}
		if ja != jb {
			t.Fatalf("job %d differs across identical sources: %+v vs %+v", ja.ID, ja, jb)
		}
		if ja != jc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

// TestComponentStreamIsolation pins the per-component RNG chaining: adding a
// deterministic flash modulator changes arrival instants (the rate profile
// moved) but not a single attribute draw — durations and demands are
// bitwise-unchanged because each class samples from its own stream.
func TestComponentStreamIsolation(t *testing.T) {
	plain := validConfig()
	plain.NumJobs = 300
	spiked := plain
	spiked.Mods = []Modulator{{Kind: ModFlash, AtSec: 10, Peak: 8, RampUpSec: 30, HoldSec: 120, DecaySec: 30}}

	a, b := MustSource(plain, 7), MustSource(spiked, 7)
	arrivalsMoved := false
	for {
		ja, oka := a.Next()
		jb, okb := b.Next()
		if oka != okb {
			t.Fatal("stream lengths diverged")
		}
		if !oka {
			break
		}
		if ja.Duration != jb.Duration || ja.Req != jb.Req {
			t.Fatalf("job %d attributes perturbed by a rate-only modulator: %+v vs %+v", ja.ID, ja, jb)
		}
		if ja.Arrival != jb.Arrival {
			arrivalsMoved = true
		}
	}
	if !arrivalsMoved {
		t.Fatal("8x flash spike left every arrival instant unchanged")
	}
}

// TestClipNormalization pins the zero-clip defaults and that samples land
// inside the clip window.
func TestClipNormalization(t *testing.T) {
	cfg := validConfig()
	cfg.NumJobs = 2000
	cfg.Classes[0].Duration = Dist{Kind: DistPareto, Alpha: 1.1, Xm: 30} // heavy tail, low floor
	src := MustSource(cfg, 1)
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if j.Duration < DefaultMinDuration || j.Duration > DefaultMaxDuration {
			t.Fatalf("job %d duration %v outside default clip", j.ID, j.Duration)
		}
		for p, v := range j.Req {
			if v < DefaultMinReq || v > DefaultMaxReq {
				t.Fatalf("job %d resource %d demand %v outside default clip", j.ID, p, v)
			}
		}
	}
}

// TestFlashMultiplierShape pins the piecewise-linear spike profile,
// including the repeat period.
func TestFlashMultiplierShape(t *testing.T) {
	m := Modulator{Kind: ModFlash, AtSec: 100, Peak: 5, RampUpSec: 10, HoldSec: 20, DecaySec: 40, RepeatEverySec: 1000}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {99, 1}, {105, 3}, {110, 5}, {120, 5}, {130, 5},
		{150, 3}, {170, 1}, {500, 1},
		{1105, 3}, {1130, 5}, {1170, 1}, // second occurrence
	} {
		if got := flashMultiplier(m, tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("flashMultiplier(t=%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}
