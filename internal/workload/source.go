package workload

import (
	"math"

	"hierdrl/internal/mat"
	"hierdrl/internal/trace"
)

// chainSeed mixes (seed, component index) through the splitmix64 finalizer —
// the same idiom internal/fault uses for per-server fault chains. Each
// stochastic component of a Source gets its own well-separated RNG stream, so
// the workload is a pure function of (seed, Config) and editing one component
// never perturbs another's draws.
func chainSeed(seed int64, idx int) int64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*uint64(idx+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1)
}

// mmppState is one MMPP modulator's live burst process. Like the classic
// generator, burst boundaries are refreshed at arrival instants (gaps are
// seconds, burst scales are minutes-to-hours, so the piecewise-constant
// approximation error is negligible).
type mmppState struct {
	mod        Modulator
	rng        *mat.RNG
	burstUntil float64
	nextBurst  float64
}

// Source generates the configured workload one job at a time. It implements
// trace.Source; it is not safe for concurrent use.
type Source struct {
	cfg      Config // normalized
	arr      *mat.RNG
	pick     *mat.RNG
	classRNG []*mat.RNG
	cum      []float64 // cumulative class weights
	mmpp     []mmppState
	now      float64
	produced int
}

// NewSource validates cfg and returns a generator positioned before the
// first job. Component RNG streams are seeded by two-level chaining —
// chainSeed(seed, group) selects the component group (arrival process, class
// picker, modulators, classes), then chainSeed(groupSeed, i) the member — so
// the groups are structurally independent: adding a modulator never reseeds
// a class stream, and adding a class never reseeds a modulator.
func NewSource(cfg Config, seed int64) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	s := &Source{
		cfg:  cfg,
		arr:  mat.NewRNG(chainSeed(seed, 0)),
		pick: mat.NewRNG(chainSeed(seed, 1)),
	}
	modSeed, classSeed := chainSeed(seed, 2), chainSeed(seed, 3)
	for i, m := range cfg.Mods {
		if m.Kind != ModMMPP {
			continue
		}
		// Seeded by position in the full Mods list, so a flash layer's slot
		// stays reserved and inserting one never reseeds a neighboring MMPP.
		rng := mat.NewRNG(chainSeed(modSeed, i))
		s.mmpp = append(s.mmpp, mmppState{
			mod:        m,
			rng:        rng,
			burstUntil: -1,
			nextBurst:  rng.Exponential(1 / m.MeanEverySec),
		})
	}
	var wsum float64
	s.cum = make([]float64, len(cfg.Classes))
	s.classRNG = make([]*mat.RNG, len(cfg.Classes))
	for i, cl := range cfg.Classes {
		wsum += cl.Weight
		s.cum[i] = wsum
		s.classRNG[i] = mat.NewRNG(chainSeed(classSeed, i))
	}
	return s, nil
}

// MustSource is NewSource for known-good configs (scenario registration).
func MustSource(cfg Config, seed int64) *Source {
	s, err := NewSource(cfg, seed)
	if err != nil {
		panic(err)
	}
	return s
}

var _ trace.Source = (*Source)(nil)

// Produced returns the number of jobs generated so far.
func (s *Source) Produced() int { return s.produced }

// baseRate evaluates the base layer's deterministic rate profile at t.
func (b Base) baseRate(t float64) float64 {
	switch b.Kind {
	case BaseConstant:
		return b.Rate
	case BaseDiurnal:
		period := b.PeriodSec
		if period == 0 {
			period = 86400
		}
		return b.Rate * (1 + b.Amplitude*math.Sin(2*math.Pi*(t+b.PhaseSec)/period-math.Pi/2))
	case BaseRamp:
		if t >= b.RampSec {
			return b.EndRate
		}
		return b.Rate + (b.EndRate-b.Rate)*(t/b.RampSec)
	default:
		panic("workload: unvalidated base kind " + string(b.Kind))
	}
}

// flashMultiplier evaluates a flash-crowd spike's deterministic multiplier
// at t: 1 outside the spike, a linear ramp to Peak, a hold, a linear decay.
func flashMultiplier(m Modulator, t float64) float64 {
	tt := t - m.AtSec
	if tt < 0 {
		return 1
	}
	if m.RepeatEverySec > 0 {
		tt = math.Mod(tt, m.RepeatEverySec)
	}
	switch {
	case tt < m.RampUpSec:
		return 1 + (m.Peak-1)*(tt/m.RampUpSec)
	case tt < m.RampUpSec+m.HoldSec:
		return m.Peak
	case tt < m.RampUpSec+m.HoldSec+m.DecaySec:
		return m.Peak - (m.Peak-1)*((tt-m.RampUpSec-m.HoldSec)/m.DecaySec)
	default:
		return 1
	}
}

// rateAt composes the instantaneous rate at t: base profile times every
// modulator's multiplier. MMPP burst state is advanced here, at arrival
// instants, from each layer's own RNG.
func (s *Source) rateAt(t float64) float64 {
	rate := s.cfg.Base.baseRate(t)
	for i := range s.mmpp {
		st := &s.mmpp[i]
		if t >= st.nextBurst && st.burstUntil < t {
			st.burstUntil = t + st.rng.Exponential(1/st.mod.MeanLenSec)
			st.nextBurst = t + st.rng.Exponential(1/st.mod.MeanEverySec)
		}
		if t < st.burstUntil {
			rate *= st.mod.Factor
		}
	}
	for _, m := range s.cfg.Mods {
		if m.Kind == ModFlash {
			rate *= flashMultiplier(m, t)
		}
	}
	return rate
}

// sample draws one value from the distribution using rng.
func (d Dist) sample(rng *mat.RNG) float64 {
	switch d.Kind {
	case DistFixed:
		return d.Mean
	case DistExponential:
		return rng.Exponential(1 / d.Mean)
	case DistPareto:
		// Inverse-CDF: Xm / (1-U)^(1/Alpha), U uniform in [0,1).
		return d.Xm / math.Pow(1-rng.Float64(), 1/d.Alpha)
	case DistLogNormal:
		return rng.LogNormal(math.Log(d.Median), d.Sigma)
	default:
		panic("workload: unvalidated distribution kind " + string(d.Kind))
	}
}

// Next returns the next job; ok is false once NumJobs jobs were produced.
// Draw order per job is fixed — arrival gap, class pick, then the class's
// duration, CPU, independent-memory, and disk draws from the class's own
// stream — so every job is reproducible by construction.
func (s *Source) Next() (j trace.Job, ok bool) {
	if s.produced >= s.cfg.NumJobs {
		return trace.Job{}, false
	}
	// Sample the next gap from the rate at the current instant
	// (piecewise-constant approximation, refreshed at every arrival).
	s.now += s.arr.Exponential(s.rateAt(s.now))

	ci := len(s.cum) - 1
	u := s.pick.Float64()
	for i, c := range s.cum {
		if u < c {
			ci = i
			break
		}
	}
	cl, rng := &s.cfg.Classes[ci], s.classRNG[ci]

	dur := clampf(cl.Duration.sample(rng), cl.MinDuration, cl.MaxDuration)
	cpu := clampf(cl.CPU.sample(rng), cl.MinReq, cl.MaxReq)
	memIndep := cl.CPU.sample(rng)
	mem := clampf(cl.MemCorrelation*cpu+(1-cl.MemCorrelation)*memIndep, cl.MinReq, cl.MaxReq)
	disk := clampf(cl.Disk.sample(rng), cl.MinReq, cl.MaxReq)

	j = trace.Job{
		ID:       s.produced,
		Arrival:  s.now,
		Duration: dur,
		Req:      [trace.NumResources]float64{cpu, mem, disk},
	}
	s.produced++
	return j, true
}

func clampf(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
