package metrics

import (
	"hierdrl/internal/checkpoint"
	"hierdrl/internal/sim"
	"hierdrl/internal/telemetry"
)

// SaveState serializes the accumulated measurements: per-job samples, the
// checkpoint series, and the fault tallies. The cluster reference and the
// callbacks are wiring, re-established at restore.
func (c *Collector) SaveState(e *checkpoint.Enc) {
	e.F64(c.accLatency)
	e.F64s(c.waits)
	e.F64s(c.latencies)
	e.Int(c.completed)
	e.Int(len(c.checkpoints))
	for _, cp := range c.checkpoints {
		e.Int(cp.Jobs)
		e.F64(cp.Time.Seconds())
		e.F64(cp.AccLatencySec)
		e.F64(cp.EnergykWh)
	}
	e.I64(c.interrupted)
	e.I64(c.retried)
	e.I64(c.lost)
	e.F64(c.lostWork)
	e.I64(c.migrated)
	e.I64(c.domOutages)
	// Telemetry extension (container Version 3): sketch-only flag, the
	// incrementally kept wait sum, and the live quantile sketches.
	e.Bool(c.sketchOnly)
	e.F64(c.waitSum)
	e.Bool(c.sk != nil)
	if c.sk != nil {
		c.sk.SaveState(e)
	}
}

// RestoreState reads what SaveState wrote. checkpointEvery is construction
// config and is not touched.
func (c *Collector) RestoreState(d *checkpoint.Dec) error {
	c.accLatency = d.F64()
	c.waits = d.F64s()
	c.latencies = d.F64s()
	c.completed = d.Int()
	n := d.SliceLen(32) // 4 fixed 8-byte fields per checkpoint
	if err := d.Sticky(); err != nil {
		return err
	}
	c.checkpoints = c.checkpoints[:0]
	for i := 0; i < n; i++ {
		c.checkpoints = append(c.checkpoints, Checkpoint{
			Jobs:          d.Int(),
			Time:          sim.Time(d.F64()),
			AccLatencySec: d.F64(),
			EnergykWh:     d.F64(),
		})
	}
	c.interrupted = d.I64()
	c.retried = d.I64()
	c.lost = d.I64()
	c.lostWork = d.F64()
	c.migrated = d.I64()
	c.domOutages = d.I64()
	// Telemetry extension: the snapshot is authoritative for the collection
	// mode and the sketch contents — a run checkpointed with sketches resumes
	// with them regardless of which options the restoring caller re-attached
	// (a restore without them would silently lose the percentile history).
	c.sketchOnly = d.Bool()
	c.waitSum = d.F64()
	hasSk := d.Bool()
	if err := d.Sticky(); err != nil {
		return err
	}
	if hasSk {
		if c.sk == nil {
			c.sk = telemetry.NewSketchSet(c.clusterRef.Shards())
		}
		if err := c.sk.RestoreState(d); err != nil {
			return err
		}
	}
	return d.Sticky()
}
