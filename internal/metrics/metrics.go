// Package metrics collects the evaluation measurements of Sec. VII:
// accumulated job latency and energy versus job count (Fig. 8/9 series),
// summary rows at a fixed job count (Table I), and per-job averages for the
// trade-off study (Fig. 10).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"hierdrl/internal/cluster"
	"hierdrl/internal/sim"
	"hierdrl/internal/telemetry"
)

// JoulesPerKWh converts joules to kilowatt-hours.
const JoulesPerKWh = 3.6e6

// Checkpoint is one point of the Fig. 8/9 accumulated series, captured when
// the Nth job completes.
type Checkpoint struct {
	// Jobs is the number of completed jobs at this checkpoint.
	Jobs int
	// Time is the simulation time of the checkpoint.
	Time sim.Time
	// AccLatencySec is the accumulated latency of all completed jobs.
	AccLatencySec float64
	// EnergykWh is the cluster energy consumed so far.
	EnergykWh float64
}

// Summary is one Table I row plus the per-job averages used by Fig. 10.
type Summary struct {
	Policy           string
	M                int
	Jobs             int
	DurationSec      float64 // simulated span
	EnergykWh        float64
	AccLatencySec    float64
	AvgPowerW        float64
	AvgLatencySec    float64
	AvgEnergyJPerJob float64
	// Latency percentiles. Exact (one sort over the retained per-job slice)
	// by default; t-digest approximations under sketch-only collection
	// (documented error bounds in DESIGN.md §17).
	P50LatencySec float64
	P95LatencySec float64
	P99LatencySec float64
	MeanWaitSec   float64
	Wakeups       int64
	Shutdowns     int64

	// Robustness metrics (fault injection). Fault-free runs report
	// Availability 1 and zeros elsewhere.
	Availability    float64 // 1 - (server-seconds down / M * duration)
	MTTRSec         float64 // mean downtime of completed repairs
	Failures        int64
	Repairs         int64
	JobsInterrupted int64 // crash evictions (a job can count more than once)
	JobsMigrated    int64 // drain-time migrations (graceful, no work lost)
	JobsRetried     int64 // evictions/migrations the retry policy requeued
	JobsLost        int64 // jobs dropped by the retry policy
	LostWorkSec     float64 // executed-then-discarded work integral
	DomainOutages   int64 // whole-failure-domain simultaneous-down episodes
	DegradedSec     float64 // server-seconds spent fail-slow (speed < nominal)
	Drains          int64 // maintenance windows opened
}

// String renders the summary as a single aligned row.
func (s Summary) String() string {
	return fmt.Sprintf("%-14s M=%-3d jobs=%-7d energy=%8.2f kWh  accLat=%8.2f e6 s  power=%8.2f W  avgLat=%7.1f s",
		s.Policy, s.M, s.Jobs, s.EnergykWh, s.AccLatencySec/1e6, s.AvgPowerW, s.AvgLatencySec)
}

// Collector accumulates per-job and per-cluster measurements during one run.
type Collector struct {
	checkpointEvery int

	accLatency float64
	waits      []float64
	latencies  []float64
	completed  int

	checkpoints []Checkpoint
	clusterRef  *cluster.Cluster

	// OnCheckpoint fires after each checkpoint is recorded (requires a
	// positive checkpoint interval). Nil by default.
	OnCheckpoint func(cp Checkpoint)

	// CheckpointClock, when non-nil, overrides the instant a checkpoint's
	// energy is integrated at (and stamped with). The sharded engine sets it
	// to the epoch-barrier time: completions are replayed at the barrier,
	// when other shards' servers have already integrated past the completion
	// instant, so barrier time is the earliest instant at which a consistent
	// whole-cluster energy reading exists (DESIGN.md §12).
	CheckpointClock func() sim.Time

	// sk, when non-nil, receives every completion into the live quantile
	// sketches (per-shard latency digests merged deterministically at
	// publish points, per-job-class digests, wait digest). sketchOnly
	// additionally drops the O(jobs) latency/wait slices — summary
	// percentiles then come from the merged sketch and MeanWaitSec from the
	// incrementally kept waitSum (identical FP accumulation order to the
	// slice loop it replaces).
	sk         *telemetry.SketchSet
	sketchOnly bool
	waitSum    float64

	// Fault tallies, owned by the session's retry path and pushed down via
	// SetFaultTallies before Summarize.
	interrupted int64
	migrated    int64
	retried     int64
	lost        int64
	lostWork    float64
	domOutages  int64
}

// NewCollector returns a collector that records a checkpoint every
// checkpointEvery completions (0 disables the series).
func NewCollector(c *cluster.Cluster, checkpointEvery int) *Collector {
	if checkpointEvery < 0 {
		panic(fmt.Sprintf("metrics: negative checkpoint interval %d", checkpointEvery))
	}
	col := &Collector{checkpointEvery: checkpointEvery, clusterRef: c}
	return col
}

// EnableSketches attaches the live quantile sketches (and optionally the
// sketch-only collection mode) before the first completion is recorded.
func (c *Collector) EnableSketches(sk *telemetry.SketchSet, sketchOnly bool) {
	c.sk = sk
	c.sketchOnly = sketchOnly
}

// Sketches returns the attached sketch set (nil unless enabled).
func (c *Collector) Sketches() *telemetry.SketchSet { return c.sk }

// SketchOnly reports whether the per-job sample slices are dropped.
func (c *Collector) SketchOnly() bool { return c.sketchOnly }

// JobDone records a completed job. Wire it to cluster.OnJobDone.
func (c *Collector) JobDone(t sim.Time, j *cluster.Job) {
	lat := j.Latency()
	c.accLatency += lat
	wait := j.WaitTime()
	if c.sk != nil {
		c.sk.Record(c.clusterRef.ShardOf(j.Server), telemetry.JobClassOf(j.Duration), lat, wait)
	}
	if c.sketchOnly {
		c.waitSum += wait
	} else {
		c.latencies = append(c.latencies, lat)
		c.waits = append(c.waits, wait)
	}
	c.completed++
	if c.checkpointEvery > 0 && c.completed%c.checkpointEvery == 0 {
		ct := t
		if c.CheckpointClock != nil {
			ct = c.CheckpointClock()
		}
		cp := Checkpoint{
			Jobs:          c.completed,
			Time:          ct,
			AccLatencySec: c.accLatency,
			EnergykWh:     c.clusterRef.TotalEnergyJoules(ct) / JoulesPerKWh,
		}
		c.checkpoints = append(c.checkpoints, cp)
		if c.OnCheckpoint != nil {
			c.OnCheckpoint(cp)
		}
	}
}

// Reserve pre-sizes the per-job sample buffers for n completions beyond
// those already recorded, so a steady-state JobDone performs no slice
// growth. Callers that know the workload length (batch replay, bounded
// streams) use it to keep the collection path allocation-free — including
// on the second and later bounded streams of a long-lived run.
func (c *Collector) Reserve(n int) {
	if c.sketchOnly {
		return // constant memory: nothing to pre-size
	}
	need := len(c.latencies) + n
	if need <= cap(c.latencies) {
		return
	}
	lat := make([]float64, len(c.latencies), need)
	copy(lat, c.latencies)
	c.latencies = lat
	w := make([]float64, len(c.waits), need)
	copy(w, c.waits)
	c.waits = w
}

// SetFaultTallies records the session-level retry accounting (crash
// evictions, drain migrations, requeues, drops, whole-domain outage episodes,
// and the discarded-work integral) so Summarize can surface it.
func (c *Collector) SetFaultTallies(interrupted, migrated, retried, lost, domainOutages int64, lostWorkSec float64) {
	c.interrupted = interrupted
	c.migrated = migrated
	c.retried = retried
	c.lost = lost
	c.domOutages = domainOutages
	c.lostWork = lostWorkSec
}

// Completed returns the number of completions recorded.
func (c *Collector) Completed() int { return c.completed }

// AccLatency returns the accumulated latency in seconds.
func (c *Collector) AccLatency() float64 { return c.accLatency }

// Checkpoints returns the recorded Fig. 8/9 series.
func (c *Collector) Checkpoints() []Checkpoint { return c.checkpoints }

// Summarize produces the Table I row at the current simulation time.
func (c *Collector) Summarize(policy string, now sim.Time) Summary {
	energyJ := c.clusterRef.TotalEnergyJoules(now)
	s := Summary{
		Policy:        policy,
		M:             c.clusterRef.M(),
		Jobs:          c.completed,
		DurationSec:   now.Seconds(),
		EnergykWh:     energyJ / JoulesPerKWh,
		AccLatencySec: c.accLatency,
	}
	if now > 0 {
		s.AvgPowerW = energyJ / now.Seconds()
	}
	if c.completed > 0 {
		s.AvgLatencySec = c.accLatency / float64(c.completed)
		s.AvgEnergyJPerJob = energyJ / float64(c.completed)
		if c.sketchOnly {
			// Sketch-only mode: approximate percentiles from the merged
			// t-digest (the per-job slices were never retained).
			m := c.sk.MergedLatency()
			s.P50LatencySec = m.Quantile(0.50)
			s.P95LatencySec = m.Quantile(0.95)
			s.P99LatencySec = m.Quantile(0.99)
			s.MeanWaitSec = c.waitSum / float64(c.completed)
		} else {
			// One sorted copy services every quantile (the historical
			// per-quantile copy+sort was O(k · n log n) at scale). The index
			// convention matches the historical percentile() exactly, so
			// P95 stays bitwise identical.
			sorted := append([]float64(nil), c.latencies...)
			sort.Float64s(sorted)
			s.P50LatencySec = quantileSorted(sorted, 0.50)
			s.P95LatencySec = quantileSorted(sorted, 0.95)
			s.P99LatencySec = quantileSorted(sorted, 0.99)
			var w float64
			for _, x := range c.waits {
				w += x
			}
			s.MeanWaitSec = w / float64(len(c.waits))
		}
	}
	for i := 0; i < c.clusterRef.M(); i++ {
		s.Wakeups += c.clusterRef.Server(i).Wakeups()
		s.Shutdowns += c.clusterRef.Server(i).Shutdowns()
	}
	var downSec, repairedSec float64
	for i := 0; i < c.clusterRef.M(); i++ {
		srv := c.clusterRef.Server(i)
		s.Failures += srv.Failures()
		s.Repairs += srv.Repairs()
		downSec += srv.DownSeconds(now)
		repairedSec += srv.RepairedDownSeconds()
		s.DegradedSec += srv.DegradedSeconds(now)
		s.Drains += srv.Drains()
	}
	s.Availability = 1
	if now > 0 {
		s.Availability = 1 - downSec/(float64(c.clusterRef.M())*now.Seconds())
	}
	if s.Repairs > 0 {
		s.MTTRSec = repairedSec / float64(s.Repairs)
	}
	s.JobsInterrupted = c.interrupted
	s.JobsMigrated = c.migrated
	s.JobsRetried = c.retried
	s.JobsLost = c.lost
	s.LostWorkSec = c.lostWork
	s.DomainOutages = c.domOutages
	return s
}

// quantileSorted reads quantile p from an already-sorted sample slice,
// using the same index convention the historical percentile() helper used.
func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// TradeoffPoint is one point of the Fig. 10 study: per-job averages achieved
// by one configuration.
type TradeoffPoint struct {
	Label            string
	Weight           float64 // the latency/power weight that produced it
	AvgLatencySec    float64
	AvgEnergyJPerJob float64
}

// ParetoFront filters points to the non-dominated subset (lower latency and
// lower energy are both better), sorted by latency.
func ParetoFront(points []TradeoffPoint) []TradeoffPoint {
	sorted := append([]TradeoffPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].AvgLatencySec != sorted[j].AvgLatencySec {
			return sorted[i].AvgLatencySec < sorted[j].AvgLatencySec
		}
		return sorted[i].AvgEnergyJPerJob < sorted[j].AvgEnergyJPerJob
	})
	var front []TradeoffPoint
	best := math.Inf(1)
	for _, p := range sorted {
		if p.AvgEnergyJPerJob < best-1e-12 {
			front = append(front, p)
			best = p.AvgEnergyJPerJob
		}
	}
	return front
}

// HypervolumeArea returns the area dominated by the Pareto front of points
// relative to the reference (refLat, refEnergy) corner — the "smallest area
// against the axes" criterion the paper uses to compare trade-off curves
// (smaller front-to-origin area = better; we report the dominated area,
// larger = better).
func HypervolumeArea(points []TradeoffPoint, refLat, refEnergy float64) float64 {
	// Standard 2-D hypervolume with minimization on both axes: sweep the
	// front in increasing latency; each point dominates the rectangle
	// between its energy and the reference energy, over the latency span to
	// the next point.
	front := ParetoFront(points)
	var area float64
	for i, p := range front {
		if p.AvgLatencySec >= refLat || p.AvgEnergyJPerJob >= refEnergy {
			continue
		}
		nextLat := refLat
		if i+1 < len(front) && front[i+1].AvgLatencySec < refLat {
			nextLat = front[i+1].AvgLatencySec
		}
		area += (nextLat - p.AvgLatencySec) * (refEnergy - p.AvgEnergyJPerJob)
	}
	return area
}
