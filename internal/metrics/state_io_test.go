package metrics

import (
	"bytes"
	"math"
	"testing"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/cluster"
	"hierdrl/internal/sim"
)

// TestCollectorStateRoundTrip: the accumulated per-job samples, checkpoint
// series, and fault tallies restore verbatim, and the restored collector
// keeps checkpointing on the original cadence (completed counter survives).
func TestCollectorStateRoundTrip(t *testing.T) {
	sm, c := buildCluster(t, 2)
	col1 := NewCollector(c, 2)
	c.OnJobDone = col1.JobDone
	for i := 0; i < 5; i++ {
		j := &cluster.Job{
			ID: i, Arrival: sim.Time(i * 10), Duration: 30,
			Req: cluster.Resources{0.2, 0.1, 0.1}, Server: -1,
		}
		i := i
		sm.Schedule(j.Arrival, func() { c.Submit(j, i%2) })
	}
	sm.RunAll(1000)
	col1.SetFaultTallies(3, 4, 2, 1, 5, 17.5)
	if col1.Completed() != 5 || len(col1.Checkpoints()) != 2 {
		t.Fatalf("precondition: %d completed, %d checkpoints", col1.Completed(), len(col1.Checkpoints()))
	}

	w := checkpoint.NewWriter(0)
	col1.SaveState(w.Section("metrics"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	sm2, c2 := buildCluster(t, 2)
	col2 := NewCollector(c2, 2)
	c2.OnJobDone = col2.JobDone
	rd, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	d, err := rd.Section("metrics")
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if err := col2.RestoreState(d); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}

	if col2.Completed() != col1.Completed() ||
		math.Float64bits(col2.AccLatency()) != math.Float64bits(col1.AccLatency()) {
		t.Fatalf("accumulators diverge: (%d,%v) vs (%d,%v)",
			col2.Completed(), col2.AccLatency(), col1.Completed(), col1.AccLatency())
	}
	cps1, cps2 := col1.Checkpoints(), col2.Checkpoints()
	if len(cps1) != len(cps2) {
		t.Fatalf("checkpoint series length %d vs %d", len(cps2), len(cps1))
	}
	for i := range cps1 {
		if cps1[i] != cps2[i] {
			t.Fatalf("checkpoint %d diverges: %+v vs %+v", i, cps2[i], cps1[i])
		}
	}
	if col2.interrupted != 3 || col2.migrated != 4 || col2.retried != 2 || col2.lost != 1 ||
		col2.domOutages != 5 || col2.lostWork != 17.5 {
		t.Fatalf("fault tallies diverge: %d/%d/%d/%d/%d/%v", col2.interrupted, col2.migrated,
			col2.retried, col2.lost, col2.domOutages, col2.lostWork)
	}

	// The restored collector continues the per-2-completions cadence: one
	// more completion (odd total) must not checkpoint, the next must.
	j := &cluster.Job{ID: 90, Arrival: 0, Duration: 30, Req: cluster.Resources{0.2, 0.1, 0.1}, Server: -1}
	sm2.Schedule(sm2.Now(), func() { c2.Submit(j, 0) })
	j2 := &cluster.Job{ID: 91, Arrival: 0, Duration: 30, Req: cluster.Resources{0.2, 0.1, 0.1}, Server: -1}
	sm2.Schedule(sm2.Now(), func() { c2.Submit(j2, 1) })
	sm2.RunAll(1000)
	if col2.Completed() != 7 || len(col2.Checkpoints()) != 3 {
		t.Fatalf("post-restore cadence: %d completed, %d checkpoints", col2.Completed(), len(col2.Checkpoints()))
	}
}
