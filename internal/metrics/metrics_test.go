package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hierdrl/internal/cluster"
	"hierdrl/internal/mat"
	"hierdrl/internal/sim"
)

type alwaysOn struct{}

func (alwaysOn) OnIdle(sim.Time, *cluster.Server) float64                { return math.Inf(1) }
func (alwaysOn) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}
func (alwaysOn) Observe(sim.Time, float64, int)                          {}

func buildCluster(t *testing.T, m int) (*sim.Simulator, *cluster.Cluster) {
	t.Helper()
	sm := sim.New()
	cfg := cluster.DefaultConfig(m)
	cfg.Server.InitialState = cluster.StateActive
	c, err := cluster.New(cfg, sm, func(int) cluster.DPMPolicy { return alwaysOn{} })
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return sm, c
}

func TestCollectorAccumulatesAndCheckpoints(t *testing.T) {
	sm, c := buildCluster(t, 2)
	col := NewCollector(c, 2)
	c.OnJobDone = col.JobDone

	for i := 0; i < 4; i++ {
		j := &cluster.Job{
			ID: i, Arrival: sim.Time(i * 10), Duration: 100,
			Req: cluster.Resources{0.2, 0.1, 0.1}, Server: -1,
		}
		i := i
		sm.Schedule(j.Arrival, func() { c.Submit(j, i%2) })
	}
	sm.RunAll(1000)

	if col.Completed() != 4 {
		t.Fatalf("completed %d want 4", col.Completed())
	}
	if col.AccLatency() != 400 { // all run immediately, latency == duration
		t.Fatalf("acc latency %v want 400", col.AccLatency())
	}
	cps := col.Checkpoints()
	if len(cps) != 2 {
		t.Fatalf("checkpoints %d want 2", len(cps))
	}
	if cps[0].Jobs != 2 || cps[1].Jobs != 4 {
		t.Fatalf("checkpoint job counts %d,%d", cps[0].Jobs, cps[1].Jobs)
	}
	if cps[1].AccLatencySec != 400 {
		t.Fatalf("checkpoint acc latency %v", cps[1].AccLatencySec)
	}
	if cps[0].EnergykWh <= 0 || cps[1].EnergykWh < cps[0].EnergykWh {
		t.Fatalf("checkpoint energies %v, %v", cps[0].EnergykWh, cps[1].EnergykWh)
	}
}

func TestSummarize(t *testing.T) {
	sm, c := buildCluster(t, 2)
	col := NewCollector(c, 0)
	c.OnJobDone = col.JobDone

	j := &cluster.Job{ID: 0, Arrival: 0, Duration: 100,
		Req: cluster.Resources{0.5, 0.1, 0.1}, Server: -1}
	sm.Schedule(0, func() { c.Submit(j, 0) })
	sm.RunAll(100)
	sm.Run(200) // idle tail

	s := col.Summarize("test", sm.Now())
	if s.Jobs != 1 || s.M != 2 {
		t.Fatalf("summary meta: %+v", s)
	}
	if s.AvgLatencySec != 100 {
		t.Fatalf("avg latency %v want 100", s.AvgLatencySec)
	}
	// Energy: server0 100 s at P(0.5) + 100 s idle; server1 200 s idle.
	pm := cluster.DefaultPowerModel()
	wantJ := 100*pm.Active(0.5) + 100*pm.Active(0) + 200*pm.Active(0)
	if math.Abs(s.EnergykWh-wantJ/JoulesPerKWh) > 1e-9 {
		t.Fatalf("energy %v kWh want %v", s.EnergykWh, wantJ/JoulesPerKWh)
	}
	if math.Abs(s.AvgPowerW-wantJ/200) > 1e-9 {
		t.Fatalf("avg power %v want %v", s.AvgPowerW, wantJ/200)
	}
	if s.MeanWaitSec != 0 {
		t.Fatalf("mean wait %v want 0", s.MeanWaitSec)
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Floor indexing: p95 of 5 elements is sorted[int(0.95*4)] = sorted[3].
	if got := quantileSorted(xs, 0.95); got != 4 {
		t.Fatalf("p95 %v want 4", got)
	}
	if got := quantileSorted(xs, 1); got != 5 {
		t.Fatalf("p100 %v want 5", got)
	}
	if got := quantileSorted(xs, 0); got != 1 {
		t.Fatalf("p0 %v want 1", got)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestParetoFront(t *testing.T) {
	pts := []TradeoffPoint{
		{Label: "a", AvgLatencySec: 1, AvgEnergyJPerJob: 10},
		{Label: "b", AvgLatencySec: 2, AvgEnergyJPerJob: 5}, // non-dominated
		{Label: "c", AvgLatencySec: 3, AvgEnergyJPerJob: 7}, // dominated by b
		{Label: "d", AvgLatencySec: 4, AvgEnergyJPerJob: 4}, // non-dominated
		{Label: "e", AvgLatencySec: 0.5, AvgEnergyJPerJob: 20},
	}
	front := ParetoFront(pts)
	want := []string{"e", "a", "b", "d"}
	if len(front) != len(want) {
		t.Fatalf("front size %d want %d: %+v", len(front), len(want), front)
	}
	for i, lbl := range want {
		if front[i].Label != lbl {
			t.Fatalf("front[%d] = %s want %s", i, front[i].Label, lbl)
		}
	}
}

// Property: every point not on the front is dominated by some front point.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		n := 1 + g.Intn(30)
		pts := make([]TradeoffPoint, n)
		for i := range pts {
			pts[i] = TradeoffPoint{
				AvgLatencySec:    g.Float64() * 100,
				AvgEnergyJPerJob: g.Float64() * 100,
			}
		}
		front := ParetoFront(pts)
		onFront := func(p TradeoffPoint) bool {
			for _, q := range front {
				if q == p {
					return true
				}
			}
			return false
		}
		for _, p := range pts {
			if onFront(p) {
				continue
			}
			dominated := false
			for _, q := range front {
				if q.AvgLatencySec <= p.AvgLatencySec && q.AvgEnergyJPerJob <= p.AvgEnergyJPerJob {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		// Front must be strictly decreasing in energy as latency grows.
		for i := 1; i < len(front); i++ {
			if front[i].AvgEnergyJPerJob >= front[i-1].AvgEnergyJPerJob {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolumeArea(t *testing.T) {
	pts := []TradeoffPoint{{AvgLatencySec: 1, AvgEnergyJPerJob: 1}}
	got := HypervolumeArea(pts, 3, 3)
	if math.Abs(got-4) > 1e-12 { // (3-1)*(3-1)
		t.Fatalf("single-point hypervolume %v want 4", got)
	}
	// A dominating set has larger hypervolume.
	better := []TradeoffPoint{
		{AvgLatencySec: 0.5, AvgEnergyJPerJob: 1},
		{AvgLatencySec: 1, AvgEnergyJPerJob: 0.5},
	}
	if HypervolumeArea(better, 3, 3) <= got {
		t.Fatal("dominating front must have larger hypervolume")
	}
	// Points outside the reference box contribute nothing.
	if HypervolumeArea([]TradeoffPoint{{AvgLatencySec: 5, AvgEnergyJPerJob: 5}}, 3, 3) != 0 {
		t.Fatal("out-of-box point contributed area")
	}
}

func TestNewCollectorPanics(t *testing.T) {
	_, c := buildCluster(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector(c, -1)
}
