package sim

import (
	"math"
	"testing"
)

// Serializing a live event queue as (now, seq, prioSeq, nFired) plus each
// pending timer's exact (at, seq) key and rebuilding it in a fresh simulator
// must reproduce the original firing order and timestamps bit for bit —
// including mixed priority/normal lanes, same-instant ties, and timers
// scheduled after the restore point.
func TestRestoreRoundTripFiringOrder(t *testing.T) {
	type fired struct {
		label string
		at    Time
	}
	build := func() (*Simulator, *[]fired, map[string]Timer) {
		s := New()
		log := &[]fired{}
		timers := make(map[string]Timer)
		add := func(label string, tm Timer) { timers[label] = tm }
		mk := func(label string) func(any) {
			return func(any) { *log = append(*log, fired{label, s.Now()}) }
		}
		add("n1", s.ScheduleArg(10, mk("n1"), nil))
		add("p1", s.SchedulePriorityArg(10, mk("p1"), nil))
		add("n2", s.ScheduleArg(10, mk("n2"), nil))
		add("p2", s.SchedulePriorityArg(5, mk("p2"), nil))
		add("n3", s.ScheduleArg(3, mk("n3"), nil))
		add("c1", s.ScheduleArg(7, mk("c1"), nil))
		return s, log, timers
	}

	// Reference run: uninterrupted.
	ref, refLog, refTimers := build()
	refTimers["c1"].Cancel()
	for ref.Step() {
	}

	// Checkpointed run: fire the first two events, snapshot, rebuild, finish.
	s, log, timers := build()
	timers["c1"].Cancel()
	s.Step() // n3 at 3
	s.Step() // p2 at 5

	type savedTimer struct {
		label string
		at    Time
		seq   int64
	}
	var saved []savedTimer
	for _, label := range []string{"n1", "p1", "n2"} {
		tm := timers[label]
		if !tm.Pending() {
			t.Fatalf("timer %s not pending at snapshot", label)
		}
		saved = append(saved, savedTimer{label, tm.At(), tm.Seq()})
	}
	now, seq, prioSeq, nFired := s.Now(), s.seq, s.prioSeq, s.Fired()

	// Restore into a simulator that has unrelated history of its own.
	r := New()
	r.ScheduleArg(1, func(any) {}, nil)
	r.Step()
	rlog := &[]fired{}
	r.RestoreBegin(now, seq, prioSeq, nFired)
	if r.Pending() != 0 {
		t.Fatalf("pending after RestoreBegin = %d", r.Pending())
	}
	for _, sv := range saved {
		label := sv.label
		r.ScheduleRestored(sv.at, sv.seq, func(any) {
			*rlog = append(*rlog, fired{label, r.Now()})
		}, nil)
	}
	if r.Now() != now || r.Fired() != nFired {
		t.Fatalf("restored clock/fired = (%v,%d), want (%v,%d)", r.Now(), r.Fired(), now, nFired)
	}
	// A post-restore normal-lane event at t=10 must sort after n1/n2 (earlier
	// seqs) exactly as it would have in the original.
	r.ScheduleArg(10, func(any) { *rlog = append(*rlog, fired{"post", r.Now()}) }, nil)
	s.ScheduleArg(10, func(any) { *log = append(*log, fired{"post", s.Now()}) }, nil)

	for s.Step() {
	}
	for r.Step() {
	}

	// Original-with-snapshot == original straight through (plus "post").
	wantTail := []string{"p1", "n1", "n2", "post"}
	checkTail := func(name string, got []fired) {
		t.Helper()
		if len(got) < len(wantTail) {
			t.Fatalf("%s log too short: %v", name, got)
		}
		tail := got[len(got)-len(wantTail):]
		for i, w := range wantTail {
			if tail[i].label != w || tail[i].at != 10 {
				t.Fatalf("%s tail[%d] = %+v, want %s@10", name, i, tail[i], w)
			}
		}
	}
	checkTail("checkpointed", *log)
	checkTail("restored", *rlog)
	_ = refLog
	if ref.Fired() == 0 {
		t.Fatal("reference run fired nothing")
	}
	if s.Fired() != r.Fired() {
		t.Fatalf("fired counts diverge: %d vs %d", s.Fired(), r.Fired())
	}
	if s.seq != r.seq || s.prioSeq != r.prioSeq {
		t.Fatalf("lane counters diverge: (%d,%d) vs (%d,%d)", s.seq, s.prioSeq, r.seq, r.prioSeq)
	}
}

func TestTimerSeq(t *testing.T) {
	s := New()
	tm := s.ScheduleArg(1, func(any) {}, nil)
	if tm.Seq() != 0 {
		t.Fatalf("first normal seq = %d", tm.Seq())
	}
	tm2 := s.SchedulePriorityArg(1, func(any) {}, nil)
	if tm2.Seq() != math.MinInt64/2 {
		t.Fatalf("first priority seq = %d", tm2.Seq())
	}
	s.Step()
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("Seq on fired timer did not panic")
		}
	}()
	tm.Seq()
}

func TestRestoreBeginReleasesCancelled(t *testing.T) {
	s := New()
	var tms []Timer
	for i := 0; i < 10; i++ {
		tms = append(tms, s.ScheduleArg(Time(i+1), func(any) {}, nil))
	}
	tms[3].Cancel()
	tms[7].Cancel()
	s.RestoreBegin(42, 100, prioSeqBase+5, 7)
	if s.Pending() != 0 || s.queueLen() != 0 {
		t.Fatalf("queue not empty after RestoreBegin: pending=%d heap=%d", s.Pending(), s.queueLen())
	}
	if s.Now() != 42 || s.Fired() != 7 || s.seq != 100 || s.prioSeq != prioSeqBase+5 {
		t.Fatal("counters not restored")
	}
	// Arena slots must be reusable.
	tm := s.ScheduleRestored(50, 99, func(any) {}, nil)
	if !tm.Pending() || tm.Seq() != 99 {
		t.Fatal("ScheduleRestored after RestoreBegin broken")
	}
	// Counters must not advance on restored schedules.
	if s.seq != 100 || s.prioSeq != prioSeqBase+5 {
		t.Fatal("ScheduleRestored advanced lane counters")
	}
}
