// Package sim provides a deterministic discrete-event simulation engine:
// a monotone simulated clock and an index-addressable event queue with
// cancellable timers. Events scheduled for the same instant fire in
// scheduling order (FIFO tie-break by sequence number), which keeps
// whole-cluster simulations exactly reproducible.
//
// The engine is built for allocation-free steady-state stepping: timer slots
// live in a pooled arena addressed by a 4-ary implicit heap of slot indices,
// freed slots are recycled through a free list, and handles are generation
// tagged so Cancel stays O(1)-safe against slot reuse. Callbacks carry an
// explicit argument payload (fn func(any), arg) so models can schedule
// events without constructing a closure per event; the classic func()
// convenience wrappers remain for tests and cold paths.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run. A dedicated
// type keeps simulated instants from mixing silently with durations or wall
// time.
type Time float64

// Seconds returns the time as a raw float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// prioSeqBase is the starting sequence number of the priority lane (see
// SchedulePriorityArg). Priority sequence numbers count up from here and
// normal sequence numbers count up from zero, so every priority event orders
// before every normal event at the same instant while both lanes stay FIFO
// among themselves.
const prioSeqBase = math.MinInt64 / 2

// slot is one pooled timer. A slot cycles free -> pending -> (cancelled ->)
// free; gen increments on every release so stale handles can never observe a
// recycled slot.
type slot struct {
	at        Time
	seq       int64
	fn        func(any)
	arg       any
	gen       uint32
	cancelled bool
}

// Timer is a handle to a scheduled event. The zero value is inert: Cancel
// and Pending report false. Handles are value types — copying one is free
// and all copies observe the same underlying event.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
	at  Time
}

// Cancel prevents the timer from firing. Reports whether the timer was still
// pending. Cancelled slots stay in the heap and are discarded lazily at pop
// time (with periodic compaction), so Cancel is O(1).
func (tm Timer) Cancel() bool {
	s := tm.s
	if s == nil {
		return false
	}
	sl := &s.slots[tm.idx]
	if sl.gen != tm.gen || sl.cancelled {
		return false
	}
	sl.cancelled = true
	sl.fn = nil
	sl.arg = nil
	s.live--
	s.nCancelled++
	// Lazy compaction: once cancelled entries outnumber live ones the heap
	// walks mostly dead weight; rebuild it from the survivors.
	if s.nCancelled > len(s.heap)/2 && len(s.heap) >= minCompactLen {
		s.compact()
	}
	return true
}

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (tm Timer) Pending() bool {
	s := tm.s
	if s == nil {
		return false
	}
	sl := &s.slots[tm.idx]
	return sl.gen == tm.gen && !sl.cancelled
}

// At returns the instant the timer is (or was) scheduled for.
func (tm Timer) At() Time { return tm.at }

// Seq returns the sequence number of a pending timer. Together with At it
// fully determines the timer's position in the event order, which is what a
// checkpoint must preserve: restoring a timer with its exact (at, seq) key
// reproduces the original firing order bit for bit. It panics on a fired,
// cancelled, or zero timer — those have no meaningful sequence number.
func (tm Timer) Seq() int64 {
	if !tm.Pending() {
		panic("sim: Seq on non-pending timer")
	}
	return tm.s.slots[tm.idx].seq
}

// minCompactLen keeps compaction from thrashing on tiny queues.
const minCompactLen = 64

// Simulator owns the clock and the event queue. The zero value is not
// usable; construct with New.
type Simulator struct {
	now   Time
	slots []slot
	free  []int32 // recycled slot indices
	heap  []int32 // 4-ary min-heap of slot indices, ordered by (at, seq)

	seq        int64 // next normal-lane sequence number
	prioSeq    int64 // next priority-lane sequence number
	live       int   // scheduled and not cancelled
	nCancelled int   // cancelled entries still in the heap
	nFired     int64
}

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{prioSeq: prioSeqBase} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// callClosure adapts the zero-argument convenience API onto the payload
// representation. Func values are pointer-shaped, so storing one in the arg
// interface does not allocate.
func callClosure(a any) { a.(func())() }

// Schedule registers fn to run at the absolute instant at. Scheduling in the
// past panics — it always indicates a logic error in the model.
func (s *Simulator) Schedule(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	return s.ScheduleArg(at, callClosure, fn)
}

// ScheduleAfter registers fn to run after the given delay in seconds.
func (s *Simulator) ScheduleAfter(delay float64, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter negative delay %v", delay))
	}
	return s.Schedule(s.now+Time(delay), fn)
}

// ScheduleArg registers fn(arg) to run at the absolute instant at. Unlike
// Schedule it needs no closure: with a package-level fn and a pointer-shaped
// arg the call is allocation-free, which makes steady-state event loops
// zero-alloc.
func (s *Simulator) ScheduleArg(at Time, fn func(any), arg any) Timer {
	tm := s.schedule(at, fn, arg, s.seq)
	s.seq++
	return tm
}

// ScheduleAfterArg registers fn(arg) to run after the given delay in seconds.
func (s *Simulator) ScheduleAfterArg(delay float64, fn func(any), arg any) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfterArg negative delay %v", delay))
	}
	return s.ScheduleArg(s.now+Time(delay), fn, arg)
}

// SchedulePriorityArg registers fn(arg) in the priority lane: at equal
// timestamps a priority event fires before every normal event, and priority
// events fire FIFO among themselves. The trace pump uses it so a streamed
// arrival takes the exact queue position an up-front-scheduled arrival would
// have had (arrivals were historically all scheduled before the run began,
// giving them the smallest sequence numbers).
func (s *Simulator) SchedulePriorityArg(at Time, fn func(any), arg any) Timer {
	tm := s.schedule(at, fn, arg, s.prioSeq)
	s.prioSeq++
	return tm
}

func (s *Simulator) schedule(at Time, fn func(any), arg any, seq int64) Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: Schedule in the past: %v < now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) {
		panic("sim: Schedule at NaN")
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at = at
	sl.seq = seq
	sl.fn = fn
	sl.arg = arg
	sl.cancelled = false
	s.live++
	s.heapPush(idx)
	return Timer{s: s, idx: idx, gen: sl.gen, at: at}
}

// RestoreBegin resets the simulator to an empty queue positioned at a
// checkpointed instant: clock at now, lane counters at the saved seq/prioSeq,
// and the fired count at nFired. Existing slots are released (outstanding
// handles are invalidated via the generation bump) but the arena itself is
// kept, so restoration reuses the allocation. Callers follow up with one
// ScheduleRestored per live checkpointed timer.
func (s *Simulator) RestoreBegin(now Time, seq, prioSeq, nFired int64) {
	for _, idx := range s.heap {
		if s.slots[idx].cancelled {
			s.nCancelled--
		} else {
			s.live--
		}
		s.release(idx)
	}
	s.heap = s.heap[:0]
	if s.live != 0 || s.nCancelled != 0 {
		panic("sim: RestoreBegin bookkeeping mismatch")
	}
	s.now = now
	s.seq = seq
	s.prioSeq = prioSeq
	s.nFired = nFired
}

// ScheduleRestored re-registers a checkpointed timer with its exact original
// (at, seq) key, without advancing either lane counter — the counters were
// already restored wholesale by RestoreBegin. Unlike Schedule it accepts
// at == now with any seq relation, since a restored queue legitimately holds
// same-instant events from both lanes.
func (s *Simulator) ScheduleRestored(at Time, seq int64, fn func(any), arg any) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: ScheduleRestored in the past: %v < now %v", at, s.now))
	}
	return s.schedule(at, fn, arg, seq)
}

// Counters returns the lane's monotone bookkeeping — the next normal and
// priority sequence numbers and the fired-event count — exactly the values a
// later RestoreBegin needs to reproduce this lane's scheduling behavior.
func (s *Simulator) Counters() (seq, prioSeq, nFired int64) {
	return s.seq, s.prioSeq, s.nFired
}

// ForEachPending calls fn for every scheduled, non-cancelled event, in
// unspecified (heap) order. Checkpointing uses it to discover live events
// whose owners keep no external handle (job completion timers on fault-free
// runs); callers needing a canonical order sort by seq.
func (s *Simulator) ForEachPending(fn func(at Time, seq int64, cb func(any), arg any)) {
	for _, idx := range s.heap {
		sl := &s.slots[idx]
		if sl.cancelled {
			continue
		}
		fn(sl.at, sl.seq, sl.fn, sl.arg)
	}
}

// release returns a popped slot to the free list, invalidating outstanding
// handles via the generation bump.
func (s *Simulator) release(idx int32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.arg = nil
	sl.gen++
	s.free = append(s.free, idx)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired (false means the queue is empty).
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		idx := s.heapPop()
		sl := &s.slots[idx]
		if sl.cancelled {
			s.nCancelled--
			s.release(idx)
			continue
		}
		s.now = sl.at
		fn, arg := sl.fn, sl.arg
		s.live--
		s.release(idx)
		s.nFired++
		fn(arg)
		return true
	}
	return false
}

// Run fires events until the queue is empty or the next event is strictly
// after until. The clock ends at min(until, last fired event); it never
// exceeds until.
func (s *Simulator) Run(until Time) {
	for {
		next, ok := s.PeekTime()
		if !ok || next > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunBefore fires every event scheduled strictly before t, leaving the clock
// at the last fired event (it never advances the clock to t on its own). It
// is the per-lane stepping primitive of the sharded engine: between two
// decision epochs every shard runs its own lane up to — but excluding — the
// epoch instant, so an epoch-time dispatch still precedes same-instant lane
// events exactly as the strict tier's priority-lane arrivals do. It reports
// the number of events fired.
func (s *Simulator) RunBefore(t Time) int {
	n := 0
	for {
		next, ok := s.PeekTime()
		if !ok || next >= t {
			return n
		}
		s.Step()
		n++
	}
}

// AdvanceTo moves the clock forward to t without firing anything. It panics
// if t is in the past or if an event strictly before t is still pending —
// jumping over a scheduled event would corrupt the simulation order. The
// sharded engine uses it to position a quiescent lane at the epoch instant
// before committing a dispatch.
func (s *Simulator) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo into the past: %v < now %v", t, s.now))
	}
	if next, ok := s.PeekTime(); ok && next < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v over pending event at %v", t, next))
	}
	s.now = t
}

// RunAll fires every pending event. It panics if more than maxEvents fire,
// protecting tests from runaway self-rescheduling models.
func (s *Simulator) RunAll(maxEvents int64) {
	var fired int64
	for s.Step() {
		fired++
		if fired > maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events", maxEvents))
		}
	}
}

// PeekTime returns the timestamp of the next pending event.
func (s *Simulator) PeekTime() (Time, bool) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		sl := &s.slots[idx]
		if sl.cancelled {
			s.heapPop()
			s.nCancelled--
			s.release(idx)
			continue
		}
		return sl.at, true
	}
	return 0, false
}

// Pending returns the number of queued (non-cancelled) events. It is O(1):
// the live count is maintained across Schedule/Cancel/Step.
func (s *Simulator) Pending() int { return s.live }

// Fired returns the total number of events that have executed.
func (s *Simulator) Fired() int64 { return s.nFired }

// queueLen reports the raw heap length including lazily-cancelled entries
// (exposed to tests asserting compaction behaviour).
func (s *Simulator) queueLen() int { return len(s.heap) }

// --- 4-ary implicit heap over slot indices ---
//
// A 4-ary layout halves the tree depth of a binary heap: sift-down touches
// fewer cache lines per level and the four-child comparison runs over
// adjacent heap entries. Pop order depends only on the (at, seq) total order
// — slot keys are unique — so heap shape never affects event ordering.

// eventLess orders slot a strictly before slot b.
func (s *Simulator) eventLess(a, b int32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (s *Simulator) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
}

func (s *Simulator) heapPop() int32 {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return top
}

func (s *Simulator) siftUp(i int) {
	h := s.heap
	item := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.eventLess(item, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = item
}

func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	item := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !s.eventLess(h[best], item) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = item
}

// compact rebuilds the heap from its non-cancelled entries and frees the
// cancelled slots. Pop order is unaffected: it is fully determined by the
// (at, seq) key order, not by heap layout.
func (s *Simulator) compact() {
	h := s.heap
	kept := h[:0]
	for _, idx := range h {
		if s.slots[idx].cancelled {
			s.nCancelled--
			s.release(idx)
			continue
		}
		kept = append(kept, idx)
	}
	s.heap = kept
	// Bottom-up heapify. The guard matters: for an empty kept slice Go's
	// truncating division makes (len-2)/4 zero, which would sift an empty
	// heap.
	for i := (len(kept) - 2) / 4; i >= 0 && len(kept) > 1; i-- {
		s.siftDown(i)
	}
}
