// Package sim provides a deterministic discrete-event simulation engine:
// a monotone simulated clock and a binary-heap event queue with cancellable
// timers. Events scheduled for the same instant fire in scheduling order
// (FIFO tie-break by sequence number), which keeps whole-cluster simulations
// exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run. A dedicated
// type keeps simulated instants from mixing silently with durations or wall
// time.
type Time float64

// Seconds returns the time as a raw float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Timer is a handle to a scheduled event. Cancel prevents a pending event
// from firing; cancelling an already-fired or already-cancelled timer is a
// no-op.
type Timer struct {
	at        Time
	seq       int64
	fn        func()
	cancelled bool
	fired     bool
}

// Cancel prevents the timer from firing. Reports whether the timer was still
// pending.
func (tm *Timer) Cancel() bool {
	if tm == nil || tm.cancelled || tm.fired {
		return false
	}
	tm.cancelled = true
	tm.fn = nil
	return true
}

// Pending reports whether the timer is scheduled and not yet fired or
// cancelled.
func (tm *Timer) Pending() bool { return tm != nil && !tm.cancelled && !tm.fired }

// At returns the instant the timer is (or was) scheduled for.
func (tm *Timer) At() Time { return tm.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Simulator owns the clock and the event queue. The zero value is not
// usable; construct with New.
type Simulator struct {
	now    Time
	events eventHeap
	seq    int64
	nFired int64
}

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Schedule registers fn to run at the absolute instant at. Scheduling in the
// past panics — it always indicates a logic error in the model.
func (s *Simulator) Schedule(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: Schedule in the past: %v < now %v", at, s.now))
	}
	if math.IsNaN(float64(at)) {
		panic("sim: Schedule at NaN")
	}
	tm := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, tm)
	return tm
}

// ScheduleAfter registers fn to run after the given delay in seconds.
func (s *Simulator) ScheduleAfter(delay float64, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter negative delay %v", delay))
	}
	return s.Schedule(s.now+Time(delay), fn)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired (false means the queue is empty).
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		tm := heap.Pop(&s.events).(*Timer)
		if tm.cancelled {
			continue
		}
		s.now = tm.at
		tm.fired = true
		fn := tm.fn
		tm.fn = nil
		s.nFired++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or the next event is strictly
// after until. The clock ends at min(until, last fired event); it never
// exceeds until.
func (s *Simulator) Run(until Time) {
	for {
		next, ok := s.PeekTime()
		if !ok || next > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll fires every pending event. It panics if more than maxEvents fire,
// protecting tests from runaway self-rescheduling models.
func (s *Simulator) RunAll(maxEvents int64) {
	var fired int64
	for s.Step() {
		fired++
		if fired > maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events", maxEvents))
		}
	}
}

// PeekTime returns the timestamp of the next pending event.
func (s *Simulator) PeekTime() (Time, bool) {
	for len(s.events) > 0 {
		if s.events[0].cancelled {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at, true
	}
	return 0, false
}

// Pending returns the number of queued (non-cancelled) events.
func (s *Simulator) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Fired returns the total number of events that have executed.
func (s *Simulator) Fired() int64 { return s.nFired }
