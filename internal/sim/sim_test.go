package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hierdrl/internal/mat"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.RunAll(10)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v want 3", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired = %d want 3", s.Fired())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.RunAll(20)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestScheduleAfter(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(10, func() {
		s.ScheduleAfter(5, func() { at = s.Now() })
	})
	s.RunAll(10)
	if at != 15 {
		t.Fatalf("ScheduleAfter fired at %v want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(1, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("fresh timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel should report success")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report failure")
	}
	s.RunAll(10)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New()
	tm := s.Schedule(1, func() {})
	s.RunAll(10)
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report failure")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	s.Run(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("clock after Run(3) = %v want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d want 2", s.Pending())
	}
	// Running to a time with no events still advances the clock.
	s.Run(10)
	if s.Now() != 10 {
		t.Fatalf("clock after Run(10) = %v want 10", s.Now())
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
}

func TestEventsCanSchedule(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.ScheduleAfter(1, recurse)
		}
	}
	s.Schedule(0, recurse)
	s.RunAll(1000)
	if depth != 100 {
		t.Fatalf("depth = %d want 100", depth)
	}
	if s.Now() != 99 {
		t.Fatalf("clock = %v want 99", s.Now())
	}
}

func TestRunAllGuard(t *testing.T) {
	s := New()
	var loop func()
	loop = func() { s.ScheduleAfter(1, loop) }
	s.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("RunAll must panic on runaway event loops")
		}
	}()
	s.RunAll(50)
}

func TestSchedulePanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Step()
	cases := map[string]func(){
		"Past":          func() { s.Schedule(1, func() {}) },
		"Nil":           func() { s.Schedule(10, nil) },
		"NaN":           func() { s.Schedule(Time(math.NaN()), func() {}) },
		"NegativeDelay": func() { s.ScheduleAfter(-1, func() {}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPeekTimeSkipsCancelled(t *testing.T) {
	s := New()
	tm := s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	tm.Cancel()
	at, ok := s.PeekTime()
	if !ok || at != 2 {
		t.Fatalf("PeekTime = (%v,%v) want (2,true)", at, ok)
	}
}

// raceEnabled is set by race_test.go under -race; exact allocation pins are
// skipped there (the race runtime instruments allocations).
func skipAllocPinUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation pinning is meaningless under -race")
	}
}

// The steady-state event loop — a self-rearming timer driven through the
// payload API — must not allocate once the slot pool and heap are warm.
func TestEventLoopZeroAlloc(t *testing.T) {
	skipAllocPinUnderRace(t)
	s := New()
	var tick func(any)
	tick = func(a any) {
		s.ScheduleAfterArg(1, tick, a)
	}
	s.ScheduleArg(0, tick, s)
	for i := 0; i < 100; i++ {
		s.Step() // warm the pool
	}
	avg := testing.AllocsPerRun(1000, func() { s.Step() })
	if avg != 0 {
		t.Fatalf("steady-state Step allocates %v per event, want 0", avg)
	}
}

// Pending must be O(1)-consistent across schedule, cancel, and fire.
func TestPendingLiveCount(t *testing.T) {
	s := New()
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.Schedule(Time(i+1), func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d want 10", s.Pending())
	}
	timers[3].Cancel()
	timers[7].Cancel()
	if s.Pending() != 8 {
		t.Fatalf("Pending after 2 cancels = %d want 8", s.Pending())
	}
	s.Step()
	s.Step()
	if s.Pending() != 6 {
		t.Fatalf("Pending after 2 fires = %d want 6", s.Pending())
	}
	s.RunAll(100)
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d want 0", s.Pending())
	}
}

// A fired timer's slot is recycled; a stale handle must not observe (or be
// able to cancel) the new occupant.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	s := New()
	old := s.Schedule(1, func() {})
	s.RunAll(10)
	fired := false
	fresh := s.Schedule(2, func() { fired = true })
	if old.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if old.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer lost")
	}
	s.RunAll(10)
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

// Cancelling more than half the queue must compact it: the raw heap length
// drops back to the live count instead of accumulating tombstones.
func TestCancelledTimerCompaction(t *testing.T) {
	s := New()
	n := 4 * minCompactLen
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = s.Schedule(Time(i+1), func() {})
	}
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			timers[i].Cancel()
		}
	}
	live := n / 4
	if s.Pending() != live {
		t.Fatalf("Pending = %d want %d", s.Pending(), live)
	}
	if got := s.queueLen(); got > live+minCompactLen {
		t.Fatalf("heap holds %d entries for %d live timers; compaction failed", got, live)
	}
	fired := 0
	var last Time
	for s.Step() {
		if s.Now() < last {
			t.Fatal("events fired out of order after compaction")
		}
		last = s.Now()
		fired++
	}
	if fired != live {
		t.Fatalf("fired %d events want %d", fired, live)
	}
}

// Compaction must survive the degenerate case where every surviving heap
// entry is cancelled (the drained-queue-then-final-cancel pattern of long
// FixedTimeout runs): the heapify of an empty kept slice must not index
// into it.
func TestCompactionWithAllEntriesCancelled(t *testing.T) {
	s := New()
	n := 2 * minCompactLen
	// n early live timers, n mid-range timers to cancel, one far-future
	// live timer. The early pool keeps the heap large enough that the
	// cancel loop below never crosses the compaction threshold itself.
	mid := make([]Timer, n)
	for i := 0; i < n; i++ {
		s.Schedule(Time(i+1), func() {})
	}
	for i := range mid {
		mid[i] = s.Schedule(Time(100000+i), func() {})
	}
	last := s.Schedule(200000, func() {})
	for i := range mid {
		mid[i].Cancel()
	}
	// Drive Step directly: each call fires one early live event (the top is
	// always live, so the lazy tombstone discard never runs) and the
	// cancelled fraction of the heap rises past one half.
	for i := 0; i < n; i++ {
		if !s.Step() {
			t.Fatal("ran out of events early")
		}
	}
	// The heap now holds n tombstones plus one live timer. Cancelling it
	// triggers compaction with zero survivors; the heapify of the empty
	// kept slice must not index into it.
	if !last.Cancel() {
		t.Fatal("last timer was not pending")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d want 0", s.Pending())
	}
	if got := s.queueLen(); got != 0 {
		t.Fatalf("heap holds %d entries after full cancellation", got)
	}
	if s.Step() {
		t.Fatal("empty simulator stepped")
	}
}

// Priority-lane events at a tied timestamp fire before every normal event —
// even normal events scheduled earlier — and FIFO among themselves.
func TestPriorityLaneWinsTimestampTies(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(5, func() { order = append(order, "normal1") })
	s.Schedule(5, func() { order = append(order, "normal2") })
	s.SchedulePriorityArg(5, func(a any) { order = append(order, a.(string)) }, "prio1")
	s.SchedulePriorityArg(5, func(a any) { order = append(order, a.(string)) }, "prio2")
	s.RunAll(10)
	want := []string{"prio1", "prio2", "normal1", "normal2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v want %v", order, want)
		}
	}
}

// Property: random schedules always fire in non-decreasing time order and
// the clock matches the last event fired.
func TestChronologicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		s := New()
		n := 1 + g.Intn(50)
		times := make([]float64, n)
		var fired []Time
		for i := range times {
			at := g.Float64() * 100
			times[i] = at
			s.Schedule(Time(at), func() { fired = append(fired, s.Now()) })
		}
		s.RunAll(1000)
		if len(fired) != n {
			return false
		}
		sort.Float64s(times)
		for i, ft := range fired {
			if float64(ft) != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := mat.NewRNG(seed)
		s := New()
		n := 1 + g.Intn(40)
		firedCount := 0
		timers := make([]Timer, n)
		for i := range timers {
			timers[i] = s.Schedule(Time(g.Float64()*50), func() { firedCount++ })
		}
		cancelled := 0
		for _, tm := range timers {
			if g.Float64() < 0.5 {
				tm.Cancel()
				cancelled++
			}
		}
		s.RunAll(1000)
		return firedCount == n-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRunBeforeExcludesBoundary asserts the sharded-lane stepping contract:
// RunBefore(t) fires strictly-before events only and leaves the clock at the
// last fired event, so an epoch-time dispatch can still precede same-instant
// lane events.
func TestRunBeforeExcludesBoundary(t *testing.T) {
	s := New()
	var fired []int
	s.Schedule(1, func() { fired = append(fired, 1) })
	s.Schedule(2, func() { fired = append(fired, 2) })
	s.Schedule(2, func() { fired = append(fired, 3) })
	s.Schedule(3, func() { fired = append(fired, 4) })
	if n := s.RunBefore(2); n != 1 {
		t.Fatalf("RunBefore(2) fired %d events, want 1", n)
	}
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("RunBefore(2) fired %v, want [1]", fired)
	}
	if s.Now() != 1 {
		t.Fatalf("clock at %v after RunBefore(2), want 1 (last fired event)", s.Now())
	}
	if n := s.RunBefore(10); n != 3 {
		t.Fatalf("RunBefore(10) fired %d events, want 3", n)
	}
	if want := []int{1, 2, 3, 4}; len(fired) != 4 || fired[1] != want[1] || fired[3] != want[3] {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if n := s.RunBefore(100); n != 0 {
		t.Fatalf("RunBefore on empty queue fired %d events", n)
	}
}

// TestAdvanceTo asserts the quiescent clock jump and both misuse panics.
func TestAdvanceTo(t *testing.T) {
	s := New()
	s.AdvanceTo(5)
	if s.Now() != 5 {
		t.Fatalf("Now=%v after AdvanceTo(5)", s.Now())
	}
	// Jumping to the timestamp of a pending event is allowed (the event
	// fires afterwards at == now); jumping over it is not.
	s.Schedule(7, func() {})
	s.AdvanceTo(7)
	if s.Now() != 7 {
		t.Fatalf("Now=%v after AdvanceTo(7)", s.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo over a pending event did not panic")
			}
		}()
		s.AdvanceTo(8)
	}()
	if !s.Step() {
		t.Fatal("pending event did not fire")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo into the past did not panic")
			}
		}()
		s.AdvanceTo(3)
	}()
}
