//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// exact allocation pins are skipped under -race.
const raceEnabled = true
