// Package benchfmt parses `go test -bench` text output into the benchmark
// records shared by the perf-tracking tools (cmd/benchjson, which records
// the BENCH_*.json baselines, and cmd/benchguard, which fails CI on
// regressions against them).
package benchfmt

import (
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// NormalizeName strips the trailing "-N" GOMAXPROCS suffix, so results
// recorded on machines with different core counts compare by benchmark
// identity.
func NormalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// ContextLine parses a "goos:"/"goarch:"/"pkg:"/"cpu:" header line,
// reporting ok=false for anything else.
func ContextLine(line string) (key, value string, ok bool) {
	trimmed := strings.TrimSpace(line)
	for _, k := range [...]string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(trimmed, k+":") {
			return k, strings.TrimSpace(trimmed[len(k)+1:]), true
		}
	}
	return "", "", false
}

// ParseLine parses "BenchmarkName-8  10  123 ns/op  4 B/op  2 allocs/op
// 1.5 some_metric" into a Benchmark, reporting ok=false for non-benchmark
// lines.
func ParseLine(line string) (Benchmark, bool) {
	trimmed := strings.TrimSpace(line)
	if !strings.HasPrefix(trimmed, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(trimmed)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
