package hierdrl

import (
	"errors"
	"testing"
)

// TestRunComparisonMatchesSequential pins the concurrency contract: the
// pooled runner must produce exactly the metrics of three independent
// sequential Run calls (per-run RNG chains, shared immutable trace).
func TestRunComparisonMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("six end-to-end runs; skip with -short")
	}
	m := 4
	sc := tinyScale(m)
	cmp, err := RunComparison(m, sc, 0)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}

	tr := sc.trace(0)
	warm := sc.warmupTrace(0)
	seq := make([]*Result, 0, 3)
	for _, mk := range []func() Config{
		func() Config { return RoundRobin(m) },
		func() Config { c := DRLOnly(m); c.WarmupTrace = warm; return c },
		func() Config { c := Hierarchical(m); c.WarmupTrace = warm; return c },
	} {
		cfg := mk()
		cfg.Seed = sc.Seed
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("sequential %s: %v", cfg.Name, err)
		}
		seq = append(seq, res)
	}
	for i, got := range cmp.Rows() {
		want := seq[i].Summary
		if got.EnergykWh != want.EnergykWh || got.AccLatencySec != want.AccLatencySec ||
			got.AvgPowerW != want.AvgPowerW {
			t.Fatalf("%s: concurrent %+v != sequential %+v", got.Policy, got, want)
		}
	}
}

func TestRunParallelErrorSelection(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := runParallel([]func() error{
		func() error { return nil },
		func() error { return errA },
		func() error { return errB },
	})
	if !errors.Is(err, errA) {
		t.Fatalf("runParallel returned %v, want first failing task's error %v", err, errA)
	}
	if err := runParallel(nil); err != nil {
		t.Fatalf("empty task list: %v", err)
	}
}

func TestRunTradeoffOrderingStable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs; skip with -short")
	}
	m := 4
	sc := tinyScale(m)
	lambdas := []float64{0.3, 0.7}
	curves, err := RunTradeoff(m, sc, lambdas)
	if err != nil {
		t.Fatalf("RunTradeoff: %v", err)
	}
	for _, series := range curves.All() {
		if len(series) != len(lambdas) {
			t.Fatalf("series length %d want %d", len(series), len(lambdas))
		}
		for i, p := range series {
			if p.Weight != lambdas[i] {
				t.Fatalf("series point %d weight %v want %v (ordering lost)", i, p.Weight, lambdas[i])
			}
		}
	}
}
