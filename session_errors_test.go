package hierdrl_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hierdrl"
)

// TestSessionStickyError pins the post-error contract on both tiers: once a
// clock-advancing call fails (here: context cancellation mid-run), every
// later Step/StepUntil/Drain returns that same error, and Result reports a
// wrapped partial-run error instead of fabricating measurements from a run
// that never finished.
func TestSessionStickyError(t *testing.T) {
	for _, p := range []int{1, 2} {
		cfg := faultCfg(6)
		tr := hierdrl.SyntheticTraceForCluster(2000, 6, 1)

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var s *hierdrl.Session
		obs := hierdrl.Observer{
			OnJobDone: func(at hierdrl.Time, j *hierdrl.ClusterJob) {
				// Cancel mid-run, once a couple hundred jobs completed.
				if j.ID == 200 {
					cancel()
				}
			},
		}
		s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(p),
			hierdrl.WithContext(ctx), hierdrl.WithObserver(obs))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if err := s.SubmitTrace(tr); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}

		first := s.Drain()
		if !errors.Is(first, context.Canceled) {
			t.Fatalf("P=%d: Drain after cancel = %v, want context.Canceled", p, first)
		}

		// The error is sticky: every subsequent advance returns it verbatim.
		if _, err := s.Step(); !errors.Is(err, context.Canceled) {
			t.Errorf("P=%d: Step after failure = %v, want sticky context.Canceled", p, err)
		}
		if err := s.StepUntil(s.Now() + 1); !errors.Is(err, context.Canceled) {
			t.Errorf("P=%d: StepUntil after failure = %v, want sticky context.Canceled", p, err)
		}
		if err := s.Drain(); !errors.Is(err, context.Canceled) {
			t.Errorf("P=%d: Drain after failure = %v, want sticky context.Canceled", p, err)
		}

		// Result refuses to summarize the partial run, and says why.
		res, err := s.Result()
		if res != nil || err == nil {
			t.Fatalf("P=%d: Result after failure = (%v, %v), want (nil, partial-run error)", p, res, err)
		}
		if !errors.Is(err, context.Canceled) || !strings.Contains(err.Error(), "partial run") {
			t.Errorf("P=%d: Result error %q: want wrapped partial-run context.Canceled", p, err)
		}

		// Read-only accessors keep working on the frozen state.
		if s.Completed() == 0 || s.Ingested() == 0 {
			t.Errorf("P=%d: accessors lost state after failure: completed=%d ingested=%d",
				p, s.Completed(), s.Ingested())
		}
		s.Close()
	}
}
