// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. VII), plus micro-benchmarks of the hot components. The
// experiment benchmarks run the 20x-reduced BenchScale workload and report
// the paper's metrics (energy, accumulated latency, average power) through
// b.ReportMetric, so `go test -bench=.` regenerates every row/series shape;
// `cmd/experiments -scale full` reproduces the full 95,000-job operating
// point.
package hierdrl_test

import (
	"testing"

	"hierdrl"
	"hierdrl/internal/cluster"
	"hierdrl/internal/global"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/nn"
	"hierdrl/internal/sim"
)

// benchScale trims BenchScale further so a single benchmark iteration stays
// in the seconds range.
func benchScale(m int) hierdrl.Scale {
	return hierdrl.Scale{Jobs: 2000, WarmupJobs: 600, Seed: 1, ClusterM: m}
}

func reportComparison(b *testing.B, cmp *hierdrl.Comparison) {
	b.Helper()
	for _, s := range cmp.Rows() {
		b.ReportMetric(s.EnergykWh, s.Policy+"_energy_kWh")
		b.ReportMetric(s.AccLatencySec/1e6, s.Policy+"_latency_Ms")
		b.ReportMetric(s.AvgPowerW, s.Policy+"_power_W")
	}
}

// BenchmarkTable1_M30 regenerates the M=30 block of Table I.
func BenchmarkTable1_M30(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := hierdrl.RunComparison(30, benchScale(30), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, cmp)
		}
	}
}

// BenchmarkTable1_M40 regenerates the M=40 block of Table I.
func BenchmarkTable1_M40(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := hierdrl.RunComparison(40, benchScale(40), 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, cmp)
		}
	}
}

// BenchmarkFig8_M30 regenerates the Fig. 8 accumulated latency/energy series
// (M=30); the checkpoint count mirrors the paper's plotted resolution.
func BenchmarkFig8_M30(b *testing.B) {
	sc := benchScale(30)
	for i := 0; i < b.N; i++ {
		cmp, err := hierdrl.RunComparison(30, sc, sc.Jobs/19)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, cmp)
			b.ReportMetric(float64(len(cmp.Hierarchical.Checkpoints)), "series_points")
		}
	}
}

// BenchmarkFig9_M40 regenerates the Fig. 9 series (M=40).
func BenchmarkFig9_M40(b *testing.B) {
	sc := benchScale(40)
	for i := 0; i < b.N; i++ {
		cmp, err := hierdrl.RunComparison(40, sc, sc.Jobs/19)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportComparison(b, cmp)
			b.ReportMetric(float64(len(cmp.Hierarchical.Checkpoints)), "series_points")
		}
	}
}

// BenchmarkFig10_Tradeoff regenerates the Fig. 10 latency/energy trade-off
// study (hierarchical sweep vs fixed-timeout baselines) and reports the
// dominated hypervolume of each curve (larger = better trade-off).
func BenchmarkFig10_Tradeoff(b *testing.B) {
	sc := hierdrl.Scale{Jobs: 1200, WarmupJobs: 400, Seed: 1, ClusterM: 10}
	lambdas := []float64{0.25, 0.75}
	for i := 0; i < b.N; i++ {
		curves, err := hierdrl.RunTradeoff(10, sc, lambdas)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var refLat, refE float64
			for _, c := range curves.All() {
				for _, p := range c {
					if p.AvgLatencySec > refLat {
						refLat = p.AvgLatencySec
					}
					if p.AvgEnergyJPerJob > refE {
						refE = p.AvgEnergyJPerJob
					}
				}
			}
			refLat *= 1.05
			refE *= 1.05
			b.ReportMetric(hierdrl.HypervolumeOf(curves.Hierarchical, refLat, refE)/1e6, "hier_hypervol")
			b.ReportMetric(hierdrl.HypervolumeOf(curves.Fixed60, refLat, refE)/1e6, "fixed60_hypervol")
		}
	}
}

// BenchmarkX1_LSTMPredictor regenerates the predictor-accuracy extension
// study (LSTM vs linear-history baselines, Sec. VI-A motivation).
func BenchmarkX1_LSTMPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scores, err := hierdrl.RunPredictorComparison(800, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range scores {
				b.ReportMetric(s.RMSELog, s.Name+"_rmse_log")
			}
		}
	}
}

// BenchmarkX2_Ablation regenerates the Fig. 6 architecture ablation
// (autoencoder and weight sharing, K in {2,3}).
func BenchmarkX2_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := hierdrl.RunAblation(12, 60, []int{2, 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				if r.K == 3 {
					b.ReportMetric(r.FinalLoss, r.Variant+"_loss")
				}
			}
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkQNetworkInference measures one global-tier decision: Q values for
// all M=30 actions through the autoencoder + Sub-Q architecture.
func BenchmarkQNetworkInference(b *testing.B) {
	cfg := global.DefaultConfig(30)
	enc, err := global.NewEncoder(30, cfg.K, cfg.DurationNormSec)
	if err != nil {
		b.Fatal(err)
	}
	rng := mat.NewRNG(1)
	net := global.NewQNetwork(enc, cfg, rng)
	v := benchView(30, rng)
	j := &cluster.Job{Duration: 600, Req: cluster.Resources{0.2, 0.1, 0.1}}
	s := enc.Encode(v, j)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.QValues(s)
	}
}

// BenchmarkQNetworkTrainBatch measures one DNN minibatch update (32
// transitions with SMDP targets already computed).
func BenchmarkQNetworkTrainBatch(b *testing.B) {
	cfg := global.DefaultConfig(30)
	enc, err := global.NewEncoder(30, cfg.K, cfg.DurationNormSec)
	if err != nil {
		b.Fatal(err)
	}
	rng := mat.NewRNG(1)
	net := global.NewQNetwork(enc, cfg, rng)
	opt := nn.NewAdam(1e-3)
	j := &cluster.Job{Duration: 600, Req: cluster.Resources{0.2, 0.1, 0.1}}
	batch := make([]global.TrainItem, 32)
	for i := range batch {
		batch[i] = global.TrainItem{
			S:      enc.Encode(benchView(30, rng), j),
			Action: rng.Intn(30),
			Target: rng.Normal(0, 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(batch, opt)
	}
}

// BenchmarkLSTMBPTT measures one paper-sized training sample: BPTT through a
// 35-step window with 30 hidden units.
func BenchmarkLSTMBPTT(b *testing.B) {
	rng := mat.NewRNG(1)
	net := lstm.NewNetwork(lstm.DefaultNetworkConfig(), rng)
	window := make([]float64, 35)
	for i := range window {
		window[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.BPTT(window, 0.5, 1)
	}
}

// BenchmarkLSTMPredict measures one inference through the 35-step window.
func BenchmarkLSTMPredict(b *testing.B) {
	rng := mat.NewRNG(1)
	net := lstm.NewNetwork(lstm.DefaultNetworkConfig(), rng)
	window := make([]float64, 35)
	for i := range window {
		window[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(window)
	}
}

// BenchmarkMatMulVec measures the tiled GEMV kernel at the Sub-Q head's
// layer-1 shape (128x64 weight, single sample).
func BenchmarkMatMulVec(b *testing.B) {
	rng := mat.NewRNG(1)
	W := mat.NewDense(128, 64)
	rng.FillNormal(W, 0, 1)
	x := mat.NewVec(64)
	for i := range x {
		x[i] = rng.Normal(0, 1)
	}
	dst := mat.NewVec(128)
	b.SetBytes(int64(128 * 64 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		W.MulVec(x, dst)
	}
}

// BenchmarkMatMulMat measures the batched GEMM path at the target-network
// evaluation shape (96-row minibatch through the 128x64 layer).
func BenchmarkMatMulMat(b *testing.B) {
	rng := mat.NewRNG(1)
	X := mat.NewDense(96, 64)
	rng.FillNormal(X, 0, 1)
	W := mat.NewDense(128, 64)
	rng.FillNormal(W, 0, 1)
	Y := mat.NewDense(96, 128)
	b.SetBytes(int64(96 * 64 * 128 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulMatT(X, W, Y)
	}
}

// BenchmarkQNetInferBatch measures the batched target-network evaluation:
// max-Q for 32 states through all K heads in one forward.
func BenchmarkQNetInferBatch(b *testing.B) {
	cfg := global.DefaultConfig(30)
	enc, err := global.NewEncoder(30, cfg.K, cfg.DurationNormSec)
	if err != nil {
		b.Fatal(err)
	}
	rng := mat.NewRNG(1)
	net := global.NewQNetwork(enc, cfg, rng)
	j := &cluster.Job{Duration: 600, Req: cluster.Resources{0.2, 0.1, 0.1}}
	states := make([]global.State, 32)
	for i := range states {
		states[i] = enc.Encode(benchView(30, rng), j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.MaxQBatch(states)
	}
}

// BenchmarkEventLoop measures steady-state event throughput through the
// pooled, closure-free scheduling path: one self-rearming timer, zero
// allocations per event once the slot pool is warm.
func BenchmarkEventLoop(b *testing.B) {
	s := sim.New()
	var tick func(any)
	tick = func(a any) { s.ScheduleAfterArg(1, tick, a) }
	s.ScheduleArg(0, tick, s)
	for i := 0; i < 64; i++ {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkSnapshot measures one per-arrival cluster observation: refreshing
// a reused View for an M=30 cluster.
func BenchmarkSnapshot(b *testing.B) {
	sm := sim.New()
	cl, err := cluster.New(cluster.DefaultConfig(30), sm, func(int) cluster.DPMPolicy {
		return benchAlwaysOn{}
	})
	if err != nil {
		b.Fatal(err)
	}
	var v cluster.View
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.SnapshotInto(&v)
	}
}

// benchAlwaysOn avoids importing internal/local just for the benchmark.
type benchAlwaysOn struct{}

func (benchAlwaysOn) OnIdle(sim.Time, *cluster.Server) float64                { return 1e18 }
func (benchAlwaysOn) OnArrival(sim.Time, *cluster.Server, cluster.PowerState) {}
func (benchAlwaysOn) Observe(sim.Time, float64, int)                          {}

// BenchmarkAllocateEpoch measures one full DRL decision epoch on a warm
// M=30 agent: state encode, transition close into the pooled replay, Q
// inference, epsilon-greedy selection, integrator reset — plus the amortized
// share of minibatch training (every TrainEvery-th epoch trains).
func BenchmarkAllocateEpoch(b *testing.B) {
	m := 30
	cfg := global.DefaultConfig(m)
	rng := mat.NewRNG(1)
	agent, err := global.NewAgent(cfg, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	v := benchView(m, rng)
	j := &cluster.Job{Duration: 600, Req: cluster.Resources{0.2, 0.1, 0.1}}
	now := 0.0
	agent.ObserveCluster(0, 3000, 10, 1)
	epoch := func() {
		now += 5
		v.Now = sim.Time(now)
		agent.ObserveCluster(v.Now, 3000, 10, 1)
		agent.Allocate(j, v)
	}
	for i := 0; i < 2*cfg.TrainEvery; i++ {
		epoch()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch()
	}
}

// BenchmarkSimulatorEvents measures raw event-queue throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 1000 {
				s.ScheduleAfter(1, tick)
			}
		}
		s.Schedule(0, tick)
		s.RunAll(2000)
	}
}

// BenchmarkClusterRoundRobin measures end-to-end simulation throughput
// without any learning in the loop (round-robin + always-on).
func BenchmarkClusterRoundRobin(b *testing.B) {
	tr := hierdrl.SyntheticTraceForCluster(2000, 30, 1)
	cfg := hierdrl.RoundRobin(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierdrl.Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func benchView(m int, rng *mat.RNG) *cluster.View {
	v := &cluster.View{
		M:        m,
		Util:     make([]cluster.Resources, m),
		Pending:  make([]cluster.Resources, m),
		QueueLen: make([]int, m),
		InSystem: make([]int, m),
		State:    make([]cluster.PowerState, m),
	}
	for i := 0; i < m; i++ {
		v.Util[i] = cluster.Resources{rng.Float64(), rng.Float64(), rng.Float64()}
		v.State[i] = cluster.StateActive
	}
	return v
}

// BenchmarkShardedEpoch measures the parallel tier's per-job overhead end to
// end at a deliberately small scale (M=64, P=2, least-loaded over the RL
// local tier): barrier release/join, lane stepping, merged log replay,
// load-index allocation, and dispatch. One op = one job pushed through a
// sharded session, so this row tracks the epoch machinery's cost across PRs
// independently of the big scale runs (BENCH_scale.json).
func BenchmarkShardedEpoch(b *testing.B) {
	cfg := hierdrl.ScaleSim(64)
	src, err := hierdrl.ScaleStream(2000+b.N, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := hierdrl.NewSession(cfg, hierdrl.WithShards(2), hierdrl.WithExpectedJobs(2000+b.N))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := &hierdrl.Trace{Jobs: make([]hierdrl.Job, 0, 2000+b.N)}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	if err := s.SubmitTrace(tr); err != nil {
		b.Fatal(err)
	}
	// Warm every pool (event slots, job pool, logs, metric buffers) on the
	// first 2000 jobs, then measure live epochs.
	warmup := tr.Jobs[1999].Arrival
	if err := s.StepUntil(hierdrl.Time(warmup)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Drain(); err != nil {
		b.Fatal(err)
	}
}
