package hierdrl

import (
	"fmt"
	"io"

	"hierdrl/internal/cluster"
	"hierdrl/internal/global"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/policy"
	"hierdrl/internal/trace"
)

// Run executes one experiment end to end: it builds a Session (which runs
// the Algorithm 1 offline phase for DRL configurations with a WarmupTrace),
// replays the trace through it, and returns the measurements. It is a thin
// wrapper over the streaming Session API — NewSession, SubmitTrace, Drain,
// Result — and a Session driven the same way produces bitwise-identical
// results.
func Run(cfg Config, tr *Trace) (*Result, error) {
	return RunWith(cfg, tr)
}

// RunWith is Run with session options — most usefully WithShards(P) to
// execute one large run on P cores (the parallel tier), and WithObserver to
// watch a batch run live.
func RunWith(cfg Config, tr *Trace, opts ...SessionOption) (*Result, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("hierdrl: empty trace")
	}
	s, err := NewSession(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if err := s.SubmitTrace(tr); err != nil {
		return nil, err
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	return s.Result()
}

// validate normalizes cfg in place (defaults) and rejects inconsistent
// configurations. Policy names resolve through the registry, so externally
// registered allocators, power managers, and predictors validate exactly
// like the built-ins.
func validate(cfg *Config) error {
	if cfg.M <= 0 {
		return fmt.Errorf("hierdrl: M must be positive, got %d", cfg.M)
	}
	if err := checkAllocConfig(cfg); err != nil {
		return err
	}
	if err := checkDPMConfig(cfg); err != nil {
		return err
	}
	if cfg.Faults == "" {
		cfg.Faults = FaultNone
	}
	if cfg.Retry == "" {
		cfg.Retry = RetryImmediate
	}
	if err := checkFaultConfig(cfg); err != nil {
		return err
	}
	if err := checkRetryConfig(cfg); err != nil {
		return err
	}
	// An explicit Cluster override must be complete and consistent with M;
	// historically a partial override (M left zero) was silently replaced by
	// the derived default, so a typoed override lost without a trace.
	switch {
	case isZeroClusterConfig(cfg.Cluster):
		cfg.Cluster = cluster.DefaultConfig(cfg.M)
	case cfg.Cluster.M == 0:
		return fmt.Errorf("hierdrl: partial Cluster override (M is zero but other fields are set); set Cluster.M = M or leave Cluster entirely zero")
	case cfg.Cluster.M != cfg.M:
		return fmt.Errorf("hierdrl: cluster M=%d but config M=%d", cfg.Cluster.M, cfg.M)
	default:
		if err := cfg.Cluster.Validate(); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
	}
	if cfg.WarmupEpsilon == 0 {
		cfg.WarmupEpsilon = 1.0
	}
	if cfg.AEPretrainEpochs == 0 {
		cfg.AEPretrainEpochs = 200
	}
	if cfg.OfflineSweeps == 0 {
		cfg.OfflineSweeps = 200
	}
	if cfg.LSTMPredictor.Lookback == 0 {
		cfg.LSTMPredictor = lstm.DefaultPredictorConfig()
	}
	return nil
}

// DefaultClusterConfig returns the paper-calibrated homogeneous cluster
// configuration for m servers — the one Run derives when Config.Cluster is
// left zero. Use it as the base for heterogeneous overrides: set .Classes to
// a []ServerClass whose counts sum to m and assign it to Config.Cluster.
func DefaultClusterConfig(m int) cluster.Config { return cluster.DefaultConfig(m) }

// isZeroClusterConfig reports whether c is entirely unset (the "derive the
// default cluster" sentinel). Config carries a Classes slice, so the struct
// is no longer comparable and the zero check is spelled out field by field.
func isZeroClusterConfig(c cluster.Config) bool {
	return c.M == 0 && c.Server == (cluster.ServerConfig{}) &&
		c.HotSpotThreshold == 0 && len(c.Classes) == 0
}

// warmup runs the Algorithm 1 offline construction phase: a high-epsilon
// rollout over the warmup trace (a throwaway Session pass sharing the agent)
// fills the experience memory and the autoencoder sample buffer; then the
// autoencoder pretrains on reconstruction and fitted-Q sweeps refine the
// DNN.
func warmup(cfg Config, agent *global.Agent, rng *mat.RNG) error {
	prevEps := agent.Epsilon()
	agent.SetEpsilon(cfg.WarmupEpsilon)
	// Algorithm 1 permits an "arbitrary policy and gradually refined
	// policy" for filling the experience memory; a consolidating heuristic
	// (pack-fit, with a 20% uniform mix applied inside the agent) exposes
	// the region of state space the learned policy will actually live in.
	pf, err := policy.NewPackFit(0.05)
	if err != nil {
		return err
	}
	agent.SetBehavior(pf.Allocate)
	defer agent.SetBehavior(nil)
	p, err := newPass(cfg, agent, rng, 0, sessionOptions{})
	if err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	if err := p.SubmitTrace(cfg.WarmupTrace); err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	if err := p.Drain(); err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	if _, err := p.Result(); err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	agent.PretrainAutoencoder(cfg.AEPretrainEpochs)
	agent.TrainOffline(cfg.OfflineSweeps)
	eps := cfg.PostWarmupEpsilon
	if eps <= 0 {
		eps = prevEps
	}
	agent.SetEpsilon(eps)
	return nil
}

// TraceStatsOf summarizes a workload (exposed for examples and tools).
func TraceStatsOf(tr *Trace) TraceStats { return tr.ComputeStats() }

// ReadTraceCSV parses a trace in the canonical CSV format
// ("arrival,duration,cpu,mem,disk" rows); real extracted Google traces can
// be loaded through it unchanged.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes a trace in the canonical CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return tr.WriteCSV(w) }

// WriteTraceCSVStream writes jobs pulled from next (until it reports false)
// in the canonical CSV format, so multi-million-job workloads can be written
// without materializing (pair with ScaleStream / GenerateTrace's streaming
// form).
func WriteTraceCSVStream(w io.Writer, next func() (Job, bool)) error {
	return trace.WriteCSVStream(w, next)
}

// ParseTraceCSVRow parses one "arrival,duration,cpu,mem,disk" row into a
// Job, for streaming frontends that feed Session.Submit line by line (the
// same row syntax ReadTraceCSV consumes; semantic validation happens at
// Submit).
func ParseTraceCSVRow(row string) (Job, error) { return trace.ParseCSVRow(row) }
