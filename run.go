package hierdrl

import (
	"fmt"
	"io"
	"sort"

	"hierdrl/internal/cluster"
	"hierdrl/internal/global"
	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/metrics"
	"hierdrl/internal/policy"
	"hierdrl/internal/sim"
	"hierdrl/internal/trace"
)

// Run executes one experiment end to end: it builds the cluster, the
// allocation tier, and one power manager per server; replays the trace
// event-driven; and returns the measurements. For DRL configurations with a
// WarmupTrace it first performs the Algorithm 1 offline phase.
func Run(cfg Config, tr *Trace) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("hierdrl: empty trace")
	}
	rng := mat.NewRNG(cfg.Seed)

	var agent *global.Agent
	if cfg.Alloc == AllocDRL {
		var err error
		agent, err = global.NewAgent(cfg.Global, cfg.M, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("hierdrl: global agent: %w", err)
		}
		if cfg.WarmupTrace != nil && cfg.WarmupTrace.Len() > 0 {
			if err := warmup(cfg, agent, rng.Split()); err != nil {
				return nil, err
			}
		}
	}
	res, err := runPass(cfg, agent, tr, rng.Split(), cfg.CheckpointEvery)
	if err != nil {
		return nil, err
	}
	if agent != nil {
		res.AgentDiag = agent.String()
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.M <= 0 {
		return fmt.Errorf("hierdrl: M must be positive, got %d", cfg.M)
	}
	switch cfg.Alloc {
	case AllocRoundRobin, AllocRandom, AllocLeastLoaded, AllocPackFit:
	case AllocDRL:
		if err := cfg.Global.Validate(cfg.M); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
	default:
		return fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
	switch cfg.DPM {
	case DPMAlwaysOn, DPMAdHoc:
	case DPMFixedTimeout:
		if cfg.FixedTimeoutSec < 0 {
			return fmt.Errorf("hierdrl: negative fixed timeout %v", cfg.FixedTimeoutSec)
		}
	case DPMRL:
		if err := cfg.LocalRL.Validate(); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		switch cfg.Predictor {
		case PredictorLSTM, PredictorEWMA, PredictorLastValue, PredictorWindowMean:
		case "":
			cfg.Predictor = PredictorLSTM
		default:
			return fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
		}
	default:
		return fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
	if cfg.Cluster.M == 0 {
		cfg.Cluster = cluster.DefaultConfig(cfg.M)
	}
	if cfg.Cluster.M != cfg.M {
		return fmt.Errorf("hierdrl: cluster M=%d but config M=%d", cfg.Cluster.M, cfg.M)
	}
	if cfg.WarmupEpsilon == 0 {
		cfg.WarmupEpsilon = 1.0
	}
	if cfg.AEPretrainEpochs == 0 {
		cfg.AEPretrainEpochs = 200
	}
	if cfg.OfflineSweeps == 0 {
		cfg.OfflineSweeps = 200
	}
	if cfg.LSTMPredictor.Lookback == 0 {
		cfg.LSTMPredictor = lstm.DefaultPredictorConfig()
	}
	return nil
}

// warmup runs the Algorithm 1 offline construction phase: a high-epsilon
// rollout over the warmup trace fills the experience memory and the
// autoencoder sample buffer; then the autoencoder pretrains on
// reconstruction and fitted-Q sweeps refine the DNN.
func warmup(cfg Config, agent *global.Agent, rng *mat.RNG) error {
	prevEps := agent.Epsilon()
	agent.SetEpsilon(cfg.WarmupEpsilon)
	// Algorithm 1 permits an "arbitrary policy and gradually refined
	// policy" for filling the experience memory; a consolidating heuristic
	// (pack-fit, with a 20% uniform mix applied inside the agent) exposes
	// the region of state space the learned policy will actually live in.
	pf, err := policy.NewPackFit(0.05)
	if err != nil {
		return err
	}
	agent.SetBehavior(pf.Allocate)
	defer agent.SetBehavior(nil)
	if _, err := runPass(cfg, agent, cfg.WarmupTrace, rng, 0); err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	agent.PretrainAutoencoder(cfg.AEPretrainEpochs)
	agent.TrainOffline(cfg.OfflineSweeps)
	eps := cfg.PostWarmupEpsilon
	if eps <= 0 {
		eps = prevEps
	}
	agent.SetEpsilon(eps)
	return nil
}

// buildDPM constructs one server's power manager.
func buildDPM(cfg Config, rng *mat.RNG) (cluster.DPMPolicy, error) {
	switch cfg.DPM {
	case DPMAlwaysOn:
		return local.AlwaysOn{}, nil
	case DPMAdHoc:
		return local.AdHoc{}, nil
	case DPMFixedTimeout:
		return local.NewFixedTimeout(cfg.FixedTimeoutSec), nil
	case DPMRL:
		var pred local.ArrivalPredictor
		switch cfg.Predictor {
		case PredictorLSTM:
			pred = lstm.NewPredictor(cfg.LSTMPredictor, rng.Split())
		case PredictorEWMA:
			pred = local.NewEWMA(0.3)
		case PredictorLastValue:
			pred = local.NewLastValue()
		case PredictorWindowMean:
			pred = local.NewWindowMean(10)
		default:
			return nil, fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
		}
		return local.NewRLTimeout(cfg.LocalRL, pred, rng.Split())
	default:
		return nil, fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
}

// buildAllocator constructs the global tier (agent is non-nil for DRL).
func buildAllocator(cfg Config, agent *global.Agent, rng *mat.RNG) (policy.Allocator, error) {
	switch cfg.Alloc {
	case AllocRoundRobin:
		return policy.NewRoundRobin(), nil
	case AllocRandom:
		return policy.NewRandom(rng.Split()), nil
	case AllocLeastLoaded:
		return policy.NewLeastLoaded(), nil
	case AllocPackFit:
		return policy.NewPackFit(0.05)
	case AllocDRL:
		if agent == nil {
			return nil, fmt.Errorf("hierdrl: DRL allocation without an agent")
		}
		return agent, nil
	default:
		return nil, fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
}

// runPass simulates one full trace against a fresh cluster. The agent (if
// any) persists across passes so learning accumulates.
func runPass(cfg Config, agent *global.Agent, tr *Trace, rng *mat.RNG, checkpointEvery int) (*Result, error) {
	sm := sim.New()
	cl, err := cluster.New(cfg.Cluster, sm, func(id int) cluster.DPMPolicy {
		dpm, dErr := buildDPM(cfg, rng)
		if dErr != nil {
			panic(dErr) // cfg was validated; unreachable
		}
		return dpm
	})
	if err != nil {
		return nil, fmt.Errorf("hierdrl: cluster: %w", err)
	}
	alloc, err := buildAllocator(cfg, agent, rng)
	if err != nil {
		return nil, err
	}

	col := metrics.NewCollector(cl, checkpointEvery)
	if agent != nil {
		cl.OnChange = func(t sim.Time) {
			agent.ObserveCluster(t, cl.TotalPower(), cl.JobsInSystem(), cl.ReliabilityObj())
		}
	}

	// Streaming trace pump: instead of pre-scheduling every trace job as its
	// own closure (a 95,000-event queue before the first event fires at full
	// scale), exactly one "next arrival" event is pending at any time and
	// re-arms itself after each arrival. Peak event-queue size drops to
	// O(jobs in flight) and per-arrival scheduling is allocation-free.
	// Priority-lane scheduling reproduces the historical event order exactly:
	// up-front scheduling gave every arrival a smaller sequence number than
	// any simulation-spawned event, so arrivals always won timestamp ties.
	pump := &tracePump{sm: sm, tr: tr, cl: cl, alloc: alloc}
	cl.OnJobDone = func(t sim.Time, j *cluster.Job) {
		col.JobDone(t, j)
		pump.recycle(j)
	}
	pump.arm()
	// Every job submission spawns a bounded number of follow-up events;
	// 64 events per job is a generous runaway guard.
	sm.RunAll(int64(tr.Len())*64 + 1024)

	if agent != nil {
		agent.FinishEpisode(sm.Now())
	}
	if got := cl.Completed(); got != int64(tr.Len()) {
		return nil, fmt.Errorf("hierdrl: %d of %d jobs completed", got, tr.Len())
	}
	cl.InvariantCheck()

	res := &Result{
		Summary:     col.Summarize(cfg.Name, sm.Now()),
		Checkpoints: col.Checkpoints(),
	}
	for i := 0; i < cl.M(); i++ {
		res.TotalWakeups += cl.Server(i).Wakeups()
		res.TotalShutdowns += cl.Server(i).Shutdowns()
	}
	return res, nil
}

// tracePump streams trace arrivals into the cluster one event at a time:
// firing arrival i dispatches job i and re-arms the pump for arrival i+1.
// Completed Job objects are pooled and renewed, so steady-state pumping
// performs no allocation. Traces are normally sorted by arrival (Validate
// enforces it); for robustness an unsorted trace is handled through a
// stable arrival-order index, which reproduces the (arrival, trace-index)
// firing order the event heap produced when all jobs were pre-scheduled.
type tracePump struct {
	sm    *sim.Simulator
	tr    *Trace
	cl    *cluster.Cluster
	alloc policy.Allocator
	view  cluster.View
	order []int32 // nil when the trace is already sorted by arrival
	next  int
	pool  []*cluster.Job
}

// pumpFire is the pump's event trampoline (package-level: no closure).
func pumpFire(a any) { a.(*tracePump).fire() }

// jobAt returns the trace job for pump position i.
func (p *tracePump) jobAt(i int) trace.Job {
	if p.order != nil {
		return p.tr.Jobs[p.order[i]]
	}
	return p.tr.Jobs[i]
}

// arm schedules the next pending arrival (if any) in the priority lane.
func (p *tracePump) arm() {
	if p.next == 0 {
		sorted := true
		for i := 1; i < len(p.tr.Jobs); i++ {
			if p.tr.Jobs[i].Arrival < p.tr.Jobs[i-1].Arrival {
				sorted = false
				break
			}
		}
		if !sorted {
			p.order = make([]int32, len(p.tr.Jobs))
			for i := range p.order {
				p.order[i] = int32(i)
			}
			sort.SliceStable(p.order, func(a, b int) bool {
				return p.tr.Jobs[p.order[a]].Arrival < p.tr.Jobs[p.order[b]].Arrival
			})
		}
	}
	if p.next < p.tr.Len() {
		p.sm.SchedulePriorityArg(sim.Time(p.jobAt(p.next).Arrival), pumpFire, p)
	}
}

func (p *tracePump) fire() {
	tj := p.jobAt(p.next)
	p.next++
	var j *cluster.Job
	if n := len(p.pool); n > 0 {
		j = p.pool[n-1]
		p.pool = p.pool[:n-1]
		j.Renew(tj)
	} else {
		j = cluster.NewJob(tj)
	}
	target := p.alloc.Allocate(j, p.cl.SnapshotInto(&p.view))
	p.cl.Submit(j, target)
	p.arm()
}

// recycle returns a completed job to the pool. Jobs are handed back from
// OnJobDone, after the metrics collector has read everything it needs; no
// component retains job pointers past completion.
func (p *tracePump) recycle(j *cluster.Job) {
	p.pool = append(p.pool, j)
}

// TraceStatsOf summarizes a workload (exposed for examples and tools).
func TraceStatsOf(tr *Trace) TraceStats { return tr.ComputeStats() }

// ReadTraceCSV parses a trace in the canonical CSV format
// ("arrival,duration,cpu,mem,disk" rows); real extracted Google traces can
// be loaded through it unchanged.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes a trace in the canonical CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return tr.WriteCSV(w) }
