package hierdrl

import (
	"fmt"
	"io"

	"hierdrl/internal/cluster"
	"hierdrl/internal/global"
	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/metrics"
	"hierdrl/internal/policy"
	"hierdrl/internal/sim"
	"hierdrl/internal/trace"
)

// Run executes one experiment end to end: it builds the cluster, the
// allocation tier, and one power manager per server; replays the trace
// event-driven; and returns the measurements. For DRL configurations with a
// WarmupTrace it first performs the Algorithm 1 offline phase.
func Run(cfg Config, tr *Trace) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("hierdrl: empty trace")
	}
	rng := mat.NewRNG(cfg.Seed)

	var agent *global.Agent
	if cfg.Alloc == AllocDRL {
		var err error
		agent, err = global.NewAgent(cfg.Global, cfg.M, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("hierdrl: global agent: %w", err)
		}
		if cfg.WarmupTrace != nil && cfg.WarmupTrace.Len() > 0 {
			if err := warmup(cfg, agent, rng.Split()); err != nil {
				return nil, err
			}
		}
	}
	res, err := runPass(cfg, agent, tr, rng.Split(), cfg.CheckpointEvery)
	if err != nil {
		return nil, err
	}
	if agent != nil {
		res.AgentDiag = agent.String()
	}
	return res, nil
}

func validate(cfg *Config) error {
	if cfg.M <= 0 {
		return fmt.Errorf("hierdrl: M must be positive, got %d", cfg.M)
	}
	switch cfg.Alloc {
	case AllocRoundRobin, AllocRandom, AllocLeastLoaded, AllocPackFit:
	case AllocDRL:
		if err := cfg.Global.Validate(cfg.M); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
	default:
		return fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
	switch cfg.DPM {
	case DPMAlwaysOn, DPMAdHoc:
	case DPMFixedTimeout:
		if cfg.FixedTimeoutSec < 0 {
			return fmt.Errorf("hierdrl: negative fixed timeout %v", cfg.FixedTimeoutSec)
		}
	case DPMRL:
		if err := cfg.LocalRL.Validate(); err != nil {
			return fmt.Errorf("hierdrl: %w", err)
		}
		switch cfg.Predictor {
		case PredictorLSTM, PredictorEWMA, PredictorLastValue, PredictorWindowMean:
		case "":
			cfg.Predictor = PredictorLSTM
		default:
			return fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
		}
	default:
		return fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
	if cfg.Cluster.M == 0 {
		cfg.Cluster = cluster.DefaultConfig(cfg.M)
	}
	if cfg.Cluster.M != cfg.M {
		return fmt.Errorf("hierdrl: cluster M=%d but config M=%d", cfg.Cluster.M, cfg.M)
	}
	if cfg.WarmupEpsilon == 0 {
		cfg.WarmupEpsilon = 1.0
	}
	if cfg.AEPretrainEpochs == 0 {
		cfg.AEPretrainEpochs = 200
	}
	if cfg.OfflineSweeps == 0 {
		cfg.OfflineSweeps = 200
	}
	if cfg.LSTMPredictor.Lookback == 0 {
		cfg.LSTMPredictor = lstm.DefaultPredictorConfig()
	}
	return nil
}

// warmup runs the Algorithm 1 offline construction phase: a high-epsilon
// rollout over the warmup trace fills the experience memory and the
// autoencoder sample buffer; then the autoencoder pretrains on
// reconstruction and fitted-Q sweeps refine the DNN.
func warmup(cfg Config, agent *global.Agent, rng *mat.RNG) error {
	prevEps := agent.Epsilon()
	agent.SetEpsilon(cfg.WarmupEpsilon)
	// Algorithm 1 permits an "arbitrary policy and gradually refined
	// policy" for filling the experience memory; a consolidating heuristic
	// (pack-fit, with a 20% uniform mix applied inside the agent) exposes
	// the region of state space the learned policy will actually live in.
	pf, err := policy.NewPackFit(0.05)
	if err != nil {
		return err
	}
	agent.SetBehavior(pf.Allocate)
	defer agent.SetBehavior(nil)
	if _, err := runPass(cfg, agent, cfg.WarmupTrace, rng, 0); err != nil {
		return fmt.Errorf("hierdrl: warmup rollout: %w", err)
	}
	agent.PretrainAutoencoder(cfg.AEPretrainEpochs)
	agent.TrainOffline(cfg.OfflineSweeps)
	eps := cfg.PostWarmupEpsilon
	if eps <= 0 {
		eps = prevEps
	}
	agent.SetEpsilon(eps)
	return nil
}

// buildDPM constructs one server's power manager.
func buildDPM(cfg Config, rng *mat.RNG) (cluster.DPMPolicy, error) {
	switch cfg.DPM {
	case DPMAlwaysOn:
		return local.AlwaysOn{}, nil
	case DPMAdHoc:
		return local.AdHoc{}, nil
	case DPMFixedTimeout:
		return local.NewFixedTimeout(cfg.FixedTimeoutSec), nil
	case DPMRL:
		var pred local.ArrivalPredictor
		switch cfg.Predictor {
		case PredictorLSTM:
			pred = lstm.NewPredictor(cfg.LSTMPredictor, rng.Split())
		case PredictorEWMA:
			pred = local.NewEWMA(0.3)
		case PredictorLastValue:
			pred = local.NewLastValue()
		case PredictorWindowMean:
			pred = local.NewWindowMean(10)
		default:
			return nil, fmt.Errorf("hierdrl: unknown predictor %q", cfg.Predictor)
		}
		return local.NewRLTimeout(cfg.LocalRL, pred, rng.Split())
	default:
		return nil, fmt.Errorf("hierdrl: unknown DPM policy %q", cfg.DPM)
	}
}

// buildAllocator constructs the global tier (agent is non-nil for DRL).
func buildAllocator(cfg Config, agent *global.Agent, rng *mat.RNG) (policy.Allocator, error) {
	switch cfg.Alloc {
	case AllocRoundRobin:
		return policy.NewRoundRobin(), nil
	case AllocRandom:
		return policy.NewRandom(rng.Split()), nil
	case AllocLeastLoaded:
		return policy.NewLeastLoaded(), nil
	case AllocPackFit:
		return policy.NewPackFit(0.05)
	case AllocDRL:
		if agent == nil {
			return nil, fmt.Errorf("hierdrl: DRL allocation without an agent")
		}
		return agent, nil
	default:
		return nil, fmt.Errorf("hierdrl: unknown allocation policy %q", cfg.Alloc)
	}
}

// runPass simulates one full trace against a fresh cluster. The agent (if
// any) persists across passes so learning accumulates.
func runPass(cfg Config, agent *global.Agent, tr *Trace, rng *mat.RNG, checkpointEvery int) (*Result, error) {
	sm := sim.New()
	cl, err := cluster.New(cfg.Cluster, sm, func(id int) cluster.DPMPolicy {
		dpm, dErr := buildDPM(cfg, rng)
		if dErr != nil {
			panic(dErr) // cfg was validated; unreachable
		}
		return dpm
	})
	if err != nil {
		return nil, fmt.Errorf("hierdrl: cluster: %w", err)
	}
	alloc, err := buildAllocator(cfg, agent, rng)
	if err != nil {
		return nil, err
	}

	col := metrics.NewCollector(cl, checkpointEvery)
	cl.OnJobDone = col.JobDone
	if agent != nil {
		cl.OnChange = func(t sim.Time) {
			agent.ObserveCluster(t, cl.TotalPower(), cl.JobsInSystem(), cl.ReliabilityObj())
		}
	}

	for i := range tr.Jobs {
		tj := tr.Jobs[i]
		sm.Schedule(sim.Time(tj.Arrival), func() {
			j := cluster.NewJob(tj)
			target := alloc.Allocate(j, cl.Snapshot())
			cl.Submit(j, target)
		})
	}
	// Every job submission spawns a bounded number of follow-up events;
	// 64 events per job is a generous runaway guard.
	sm.RunAll(int64(tr.Len())*64 + 1024)

	if agent != nil {
		agent.FinishEpisode(sm.Now())
	}
	if got := cl.Completed(); got != int64(tr.Len()) {
		return nil, fmt.Errorf("hierdrl: %d of %d jobs completed", got, tr.Len())
	}
	cl.InvariantCheck()

	res := &Result{
		Summary:     col.Summarize(cfg.Name, sm.Now()),
		Checkpoints: col.Checkpoints(),
	}
	for i := 0; i < cl.M(); i++ {
		res.TotalWakeups += cl.Server(i).Wakeups()
		res.TotalShutdowns += cl.Server(i).Shutdowns()
	}
	return res, nil
}

// TraceStatsOf summarizes a workload (exposed for examples and tools).
func TraceStatsOf(tr *Trace) TraceStats { return tr.ComputeStats() }

// ReadTraceCSV parses a trace in the canonical CSV format
// ("arrival,duration,cpu,mem,disk" rows); real extracted Google traces can
// be loaded through it unchanged.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes a trace in the canonical CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return tr.WriteCSV(w) }
