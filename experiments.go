package hierdrl

import (
	"fmt"
	"math"

	"hierdrl/internal/global"
	"hierdrl/internal/local"
	"hierdrl/internal/lstm"
	"hierdrl/internal/mat"
	"hierdrl/internal/trace"
)

// Scale sizes an experiment. FullScale reproduces the paper's operating
// point; BenchScale keeps `go test -bench` runs tractable.
type Scale struct {
	// Jobs is the measured workload length (the paper reports at 95,000).
	Jobs int
	// WarmupJobs sizes the offline-phase rollout for DRL agents.
	WarmupJobs int
	// Seed drives workload generation and every learner.
	Seed int64
	// ClusterM is the reference cluster size of the *measured* runs; the
	// trace arrival rate is scaled to it (see SyntheticTraceForCluster).
	ClusterM int
}

// FullScale is the paper's configuration: 95,000 jobs on a 30/40-server
// cluster (~one simulated week).
func FullScale(m int) Scale {
	return Scale{Jobs: 95000, WarmupJobs: 20000, Seed: 1, ClusterM: m}
}

// BenchScale is a 20x-reduced configuration for benchmarks and CI.
func BenchScale(m int) Scale {
	return Scale{Jobs: 4750, WarmupJobs: 1000, Seed: 1, ClusterM: m}
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.Jobs <= 0 || s.WarmupJobs < 0 || s.ClusterM <= 0 {
		return fmt.Errorf("hierdrl: invalid scale %+v", s)
	}
	return nil
}

func (s Scale) trace(seedOffset int64) *Trace {
	return SyntheticTraceForCluster(s.Jobs, s.ClusterM, s.Seed+seedOffset)
}

func (s Scale) warmupTrace(seedOffset int64) *Trace {
	if s.WarmupJobs == 0 {
		return nil
	}
	return SyntheticTraceForCluster(s.WarmupJobs, s.ClusterM, s.Seed+1000+seedOffset)
}

// Comparison holds the three-system results of Table I / Fig. 8 / Fig. 9.
type Comparison struct {
	RoundRobin   *Result
	DRLOnly      *Result
	Hierarchical *Result
}

// Rows returns the Table I rows in the paper's order.
func (c *Comparison) Rows() []Summary {
	return []Summary{c.RoundRobin.Summary, c.DRLOnly.Summary, c.Hierarchical.Summary}
}

// RunComparison executes the paper's three systems on the same workload with
// M servers — the engine behind Table I (checkpointEvery = 0) and the
// Fig. 8/9 accumulated series (checkpointEvery > 0).
//
// The three systems run concurrently through a bounded worker pool, each as
// one batch Session (via Run). Every run derives its entire RNG chain from
// its own config seed and shares only the immutable trace, so the results
// are identical (bitwise) to running them sequentially.
func RunComparison(m int, sc Scale, checkpointEvery int) (*Comparison, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tr := sc.trace(0)
	warm := sc.warmupTrace(0)

	cmp := &Comparison{}
	if err := runParallel([]func() error{
		func() error {
			cfg := RoundRobin(m)
			cfg.Seed = sc.Seed
			cfg.CheckpointEvery = checkpointEvery
			res, err := Run(cfg, tr)
			if err != nil {
				return fmt.Errorf("hierdrl: round-robin: %w", err)
			}
			cmp.RoundRobin = res
			return nil
		},
		func() error {
			cfg := DRLOnly(m)
			cfg.Seed = sc.Seed
			cfg.CheckpointEvery = checkpointEvery
			cfg.WarmupTrace = warm
			res, err := Run(cfg, tr)
			if err != nil {
				return fmt.Errorf("hierdrl: drl-only: %w", err)
			}
			cmp.DRLOnly = res
			return nil
		},
		func() error {
			cfg := Hierarchical(m)
			cfg.Seed = sc.Seed
			cfg.CheckpointEvery = checkpointEvery
			cfg.WarmupTrace = warm
			res, err := Run(cfg, tr)
			if err != nil {
				return fmt.Errorf("hierdrl: hierarchical: %w", err)
			}
			cmp.Hierarchical = res
			return nil
		},
	}); err != nil {
		return nil, err
	}
	return cmp, nil
}

// TradeoffCurves holds the Fig. 10 study: one point series per system.
type TradeoffCurves struct {
	Hierarchical []TradeoffPoint
	Fixed30      []TradeoffPoint
	Fixed60      []TradeoffPoint
	Fixed90      []TradeoffPoint
}

// All returns every point (for hypervolume comparisons).
func (tc *TradeoffCurves) All() [][]TradeoffPoint {
	return [][]TradeoffPoint{tc.Hierarchical, tc.Fixed30, tc.Fixed60, tc.Fixed90}
}

// RunTradeoff sweeps the latency-emphasis parameter lambda across all four
// systems of Fig. 10. lambda couples the reward weights coherently: the
// global tier uses W1 = 2(1-lambda) (power) and W2 = 2*lambda (latency
// proxy); the hierarchical local tier additionally sets its Eqn. (5) weight
// w = 1-lambda. The fixed-timeout baselines have no local knob — exactly why
// the paper calls their curves "not complete".
func RunTradeoff(m int, sc Scale, lambdas []float64) (*TradeoffCurves, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("hierdrl: empty lambda sweep")
	}
	for _, lam := range lambdas {
		if lam <= 0 || lam >= 1 {
			return nil, fmt.Errorf("hierdrl: lambda %v outside (0,1)", lam)
		}
	}
	tr := sc.trace(0)
	warm := sc.warmupTrace(0)

	// The whole sweep — every (lambda, system) pair — fans out across the
	// worker pool. Results land in per-index slots so the assembled curves
	// keep the sequential ordering (and, since every run's RNG chain is
	// derived from its own config, the sequential values).
	timeouts := []float64{30, 60, 90}
	perLam := 1 + len(timeouts)
	points := make([]TradeoffPoint, len(lambdas)*perLam)
	tasks := make([]func() error, 0, len(points))
	for li, lam := range lambdas {
		li, lam := li, lam
		apply := func(cfg *Config) {
			cfg.Seed = sc.Seed
			cfg.WarmupTrace = warm
			cfg.Global.W1 = 2 * (1 - lam)
			cfg.Global.W2 = 2 * lam
		}
		tasks = append(tasks, func() error {
			cfg := Hierarchical(m)
			apply(&cfg)
			cfg.LocalRL.PowerWeight = 1 - lam
			res, err := Run(cfg, tr)
			if err != nil {
				return fmt.Errorf("hierdrl: tradeoff hierarchical lambda=%v: %w", lam, err)
			}
			points[li*perLam] = res.Tradeoff("hierarchical", lam)
			return nil
		})
		for ti, timeout := range timeouts {
			ti, timeout := ti, timeout
			tasks = append(tasks, func() error {
				cfg := FixedTimeoutBaseline(m, timeout)
				apply(&cfg)
				res, err := Run(cfg, tr)
				if err != nil {
					return fmt.Errorf("hierdrl: tradeoff fixed-%v lambda=%v: %w",
						timeout, lam, err)
				}
				points[li*perLam+1+ti] = res.Tradeoff(fmt.Sprintf("fixed-%.0f", timeout), lam)
				return nil
			})
		}
	}
	if err := runParallel(tasks); err != nil {
		return nil, err
	}
	out := &TradeoffCurves{}
	for li := range lambdas {
		out.Hierarchical = append(out.Hierarchical, points[li*perLam])
		out.Fixed30 = append(out.Fixed30, points[li*perLam+1])
		out.Fixed60 = append(out.Fixed60, points[li*perLam+2])
		out.Fixed90 = append(out.Fixed90, points[li*perLam+3])
	}
	return out, nil
}

// FaultPoint is one cell of the fault sweep: an allocation policy run under
// a given mean time to failure.
type FaultPoint struct {
	Alloc   AllocPolicy
	MTTFSec float64
	Summary Summary
}

// RunFaultSweep runs every non-learning allocation policy against the same
// workload under increasing failure pressure (decreasing MTTF), with a fixed
// 600s mean repair time and capped-backoff retries — the robustness
// counterpart to RunComparison. It answers how gracefully each policy
// degrades: availability, completed-work latency, retries, and lost work per
// (policy, MTTF) cell. Points are ordered policy-major, matching the input
// mttfs order within each policy.
func RunFaultSweep(m int, sc Scale, mttfs []float64) ([]FaultPoint, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(mttfs) == 0 {
		return nil, fmt.Errorf("hierdrl: empty MTTF sweep")
	}
	for _, mttf := range mttfs {
		if mttf <= 0 || math.IsInf(mttf, 0) || math.IsNaN(mttf) {
			return nil, fmt.Errorf("hierdrl: MTTF %v must be positive and finite", mttf)
		}
	}
	tr := sc.trace(0)
	allocs := []AllocPolicy{AllocRoundRobin, AllocRandom, AllocLeastLoaded, AllocPackFit}
	points := make([]FaultPoint, len(allocs)*len(mttfs))
	tasks := make([]func() error, 0, len(points))
	for ai, alloc := range allocs {
		for mi, mttf := range mttfs {
			ai, mi, alloc, mttf := ai, mi, alloc, mttf
			tasks = append(tasks, func() error {
				cfg := Config{
					Name:            fmt.Sprintf("%s/mttf=%.0fs", alloc, mttf),
					M:               m,
					Seed:            sc.Seed,
					Alloc:           alloc,
					DPM:             DPMFixedTimeout,
					FixedTimeoutSec: 60,
					Faults:          FaultExpCrash,
					MTTFSec:         mttf,
					MTTRSec:         600,
					Retry:           RetryBackoff,
				}
				res, err := Run(cfg, tr)
				if err != nil {
					return fmt.Errorf("hierdrl: fault sweep %s: %w", cfg.Name, err)
				}
				points[ai*len(mttfs)+mi] = FaultPoint{Alloc: alloc, MTTFSec: mttf, Summary: res.Summary}
				return nil
			})
		}
	}
	if err := runParallel(tasks); err != nil {
		return nil, err
	}
	return points, nil
}

// FaultMatrixPoint is one cell of the fault-class matrix: an allocation
// policy run under one fault model at fixed offered load.
type FaultMatrixPoint struct {
	Alloc   AllocPolicy
	Faults  FaultKind
	Summary Summary
}

// RunFaultMatrix runs every non-learning allocation policy against the same
// workload under each fault class — independent exponential crashes,
// correlated rack crashes (one domain per ~6 servers), fail-slow degradation
// (default 0.25 speed factor), and rolling maintenance drains — the
// graceful-degradation counterpart to RunFaultSweep's MTTF pressure sweep.
// All crash/degrade cells share MTTF 30,000 s and MTTR 600 s so the columns
// differ only in failure *shape*, not failure *volume*; drains use the
// default 4 h cadence / 10 min window. Points are ordered policy-major,
// matching the model order {exp-crash, correlated-crash, degrade,
// maintenance-drain} within each policy.
func RunFaultMatrix(m int, sc Scale) ([]FaultMatrixPoint, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	tr := sc.trace(0)
	allocs := []AllocPolicy{AllocRoundRobin, AllocRandom, AllocLeastLoaded, AllocPackFit}
	models := []FaultKind{FaultExpCrash, FaultCorrelatedCrash, FaultDegrade, FaultDrain}
	nDom := m / 6
	if nDom < 1 {
		nDom = 1
	}
	domains := EqualDomains(nDom, m)
	points := make([]FaultMatrixPoint, len(allocs)*len(models))
	tasks := make([]func() error, 0, len(points))
	for ai, alloc := range allocs {
		for fi, model := range models {
			ai, fi, alloc, model := ai, fi, alloc, model
			tasks = append(tasks, func() error {
				cfg := Config{
					Name:            fmt.Sprintf("%s/%s", alloc, model),
					M:               m,
					Seed:            sc.Seed,
					Alloc:           alloc,
					DPM:             DPMFixedTimeout,
					FixedTimeoutSec: 60,
					Faults:          model,
					MTTFSec:         30000,
					MTTRSec:         600,
					Retry:           RetryBackoff,
				}
				if model == FaultCorrelatedCrash {
					cfg.Domains = domains
				}
				res, err := Run(cfg, tr)
				if err != nil {
					return fmt.Errorf("hierdrl: fault matrix %s: %w", cfg.Name, err)
				}
				points[ai*len(models)+fi] = FaultMatrixPoint{
					Alloc: alloc, Faults: model, Summary: res.Summary,
				}
				return nil
			})
		}
	}
	if err := runParallel(tasks); err != nil {
		return nil, err
	}
	return points, nil
}

// ScenarioPoint is one cell of the scenario sweep: an allocation policy run
// on a registered scenario.
type ScenarioPoint struct {
	Scenario string
	Alloc    AllocPolicy
	Summary  Summary
}

// RunScenarioSweep runs every given allocation policy against every named
// scenario — the allocators × scenarios table of EXPERIMENTS.md. Each cell
// streams the scenario's workload through RunSource with a fixed-timeout
// (60 s) local tier, on the scenario's own cluster layout (including
// heterogeneous server classes). jobs > 0 caps each scenario's length (the
// scale scenarios would otherwise stream millions of jobs); seed drives the
// workload and every policy. Cells run concurrently through the worker pool;
// points are ordered scenario-major, matching the input orders.
func RunScenarioSweep(allocs []AllocPolicy, scenarios []string, jobs int, seed int64) ([]ScenarioPoint, error) {
	if len(allocs) == 0 || len(scenarios) == 0 {
		return nil, fmt.Errorf("hierdrl: empty scenario sweep")
	}
	scens := make([]Scenario, len(scenarios))
	for i, name := range scenarios {
		sc, ok := LookupScenario(name)
		if !ok {
			return nil, fmt.Errorf("hierdrl: unknown scenario %q", name)
		}
		scens[i] = sc.Scaled(0, jobs)
	}
	points := make([]ScenarioPoint, len(scenarios)*len(allocs))
	tasks := make([]func() error, 0, len(points))
	for si, scen := range scens {
		for ai, alloc := range allocs {
			si, ai, scen, alloc := si, ai, scen, alloc
			tasks = append(tasks, func() error {
				cfg := Config{
					Name:            fmt.Sprintf("%s/%s", scen.Name, alloc),
					Seed:            seed,
					Alloc:           alloc,
					DPM:             DPMFixedTimeout,
					FixedTimeoutSec: 60,
				}
				scen.ApplyTo(&cfg)
				src, err := scen.Source(seed)
				if err != nil {
					return err
				}
				res, err := RunSource(cfg, src)
				if err != nil {
					return fmt.Errorf("hierdrl: scenario sweep %s: %w", cfg.Name, err)
				}
				points[si*len(allocs)+ai] = ScenarioPoint{
					Scenario: scen.Name, Alloc: alloc, Summary: res.Summary,
				}
				return nil
			})
		}
	}
	if err := runParallel(tasks); err != nil {
		return nil, err
	}
	return points, nil
}

// PredictorScore reports one predictor's accuracy on a held-out stream (the
// X1 extension experiment motivating the LSTM choice of Sec. VI-A).
type PredictorScore struct {
	Name string
	// RMSELog is the root-mean-squared error in log1p space (robust to the
	// heavy-tailed gap distribution).
	RMSELog float64
	// MAE is the mean absolute error in seconds.
	MAE float64
	// Samples scored.
	Samples int
}

// RunPredictorComparison trains each predictor online over one server's
// arrival stream and scores one-step-ahead predictions on the second half of
// the stream.
func RunPredictorComparison(nArrivals int, seed int64) ([]PredictorScore, error) {
	if nArrivals < 200 {
		return nil, fmt.Errorf("hierdrl: need at least 200 arrivals, got %d", nArrivals)
	}
	// Per-server arrival stream: the cluster-level trace thinned by round
	// robin across 30 servers, preserving diurnal/burst structure.
	tr := SyntheticTrace(nArrivals*30, seed)
	arrivals := make([]float64, 0, nArrivals)
	for i := 0; i < tr.Len(); i += 30 {
		arrivals = append(arrivals, tr.Jobs[i].Arrival)
	}

	rng := mat.NewRNG(seed)
	lcfg := lstm.DefaultPredictorConfig()
	lcfg.Lookback = 20
	lcfg.TrainEvery = 4
	lcfg.BatchSize = 6
	preds := []struct {
		name string
		p    local.ArrivalPredictor
	}{
		{"lstm", lstm.NewPredictor(lcfg, rng.Split())},
		{"ewma", local.NewEWMA(0.3)},
		{"last-value", local.NewLastValue()},
		{"window-mean", local.NewWindowMean(10)},
	}

	scores := make([]PredictorScore, len(preds))
	half := len(arrivals) / 2
	for i, pr := range preds {
		var seLog, ae float64
		n := 0
		for k, t := range arrivals {
			if k >= half && k+1 < len(arrivals) {
				actual := arrivals[k+1] - t
				pred := pr.p.Predict()
				if !math.IsInf(pred, 0) {
					dLog := math.Log1p(pred) - math.Log1p(actual)
					seLog += dLog * dLog
					ae += math.Abs(pred - actual)
					n++
				}
			}
			pr.p.ObserveArrival(t)
		}
		scores[i] = PredictorScore{
			Name:    pr.name,
			RMSELog: math.Sqrt(seLog / float64(n)),
			MAE:     ae / float64(n),
			Samples: n,
		}
	}
	return scores, nil
}

// AblationResult reports the X2 experiment: offline Q-regression convergence
// of the Fig. 6 architecture variants on identical replayed transitions.
type AblationResult struct {
	Variant   string
	K         int
	Params    int
	FinalLoss float64
}

// RunAblation compares the full architecture against no-autoencoder and
// no-weight-sharing variants (and different K) by training each for the same
// number of minibatch steps on the same synthetic Q-regression task.
func RunAblation(m, steps int, ks []int, seed int64) ([]AblationResult, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("hierdrl: steps must be positive")
	}
	var out []AblationResult
	for _, k := range ks {
		if k <= 0 || m%k != 0 {
			return nil, fmt.Errorf("hierdrl: K=%d does not divide M=%d", k, m)
		}
		for _, variant := range []struct {
			name         string
			useAE, share bool
		}{
			{"full", true, true},
			{"no-autoencoder", false, true},
			{"no-weight-sharing", true, false},
		} {
			loss, params, err := ablationRun(m, k, steps, variant.useAE, variant.share, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationResult{
				Variant:   variant.name,
				K:         k,
				Params:    params,
				FinalLoss: loss,
			})
		}
	}
	return out, nil
}

func ablationRun(m, k, steps int, useAE, share bool, seed int64) (loss float64, params int, err error) {
	cfg := global.DefaultConfig(m)
	cfg.K = k
	cfg.UseAutoencoder = useAE
	cfg.ShareWeights = share
	if err := cfg.Validate(m); err != nil {
		return 0, 0, err
	}
	enc, err := global.NewEncoder(m, k, cfg.DurationNormSec)
	if err != nil {
		return 0, 0, err
	}
	rng := mat.NewRNG(seed)
	net := global.NewQNetwork(enc, cfg, rng.Split())
	opt := newAdamForAblation(cfg.LearningRate)

	// Shared synthetic task across variants: target = the chosen server's
	// negated CPU load minus the job's CPU demand — a proxy for "prefer
	// lightly loaded servers for big jobs" that every variant can express.
	gen := mat.NewRNG(seed + 7)
	mkItem := func() global.TrainItem {
		v := randomView(m, gen)
		j := randomJob(gen)
		s := enc.Encode(v, j)
		a := gen.Intn(m)
		target := -(v.Util[a][trace.CPU] + j.Req[trace.CPU])
		return global.TrainItem{S: s, Action: a, Target: target}
	}
	var last float64
	for i := 0; i < steps; i++ {
		batch := make([]global.TrainItem, 16)
		for b := range batch {
			batch[b] = mkItem()
		}
		last = net.TrainBatch(batch, opt)
	}
	return last, net.NumParams(), nil
}
