package hierdrl_test

import (
	"math"
	"runtime"
	"testing"

	"hierdrl"
)

// The Seed=1 metric fingerprint of the three-system comparison at a reduced
// operating point (M=6, 500 jobs, 200 warmup jobs). These are the exact
// float64 bit patterns produced by the seed implementation; every
// performance PR must reproduce them bit for bit — the whole optimization
// discipline of this repo is "faster, not different". Regenerate only when
// the simulated dynamics are changed intentionally.
var goldenM6 = map[string][3]uint64{ // policy -> {energy kWh, acc latency s, avg power W}
	"round-robin":  {0x400f46ea46e237cd, 0x411db374cbf7d334, 0x4082dcbb00067e0d},
	"drl-only":     {0x40015ac371791acb, 0x411db9f11e487340, 0x4074e7b5aae93b61},
	"hierarchical": {0x40010363d9ce3ce8, 0x411dba2d37a39144, 0x40746a508dddbfa6},
}

// TestSeed1MetricsBitwiseGolden asserts the acceptance criterion of the
// event-engine rewrite: per-policy energy, accumulated latency, and average
// power at a fixed seed are bitwise identical to the pre-rewrite output.
func TestSeed1MetricsBitwiseGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-system comparison is slow; run without -short")
	}
	sc := hierdrl.Scale{Jobs: 500, WarmupJobs: 200, Seed: 1, ClusterM: 6}
	cmp, err := hierdrl.RunComparison(6, sc, 0)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	for _, s := range cmp.Rows() {
		want, ok := goldenM6[s.Policy]
		if !ok {
			t.Fatalf("unexpected policy %q", s.Policy)
		}
		got := [3]uint64{
			math.Float64bits(s.EnergykWh),
			math.Float64bits(s.AccLatencySec),
			math.Float64bits(s.AvgPowerW),
		}
		// The golden bits were recorded on amd64; other architectures may
		// round math.Exp/Tanh differently, so they get a tolerance check
		// while amd64 stays exact.
		if runtime.GOARCH == "amd64" {
			if got != want {
				t.Errorf("%s: metrics diverged from golden bits:\n got %016x %016x %016x\nwant %016x %016x %016x",
					s.Policy, got[0], got[1], got[2], want[0], want[1], want[2])
			}
			continue
		}
		ref := [3]float64{
			math.Float64frombits(want[0]),
			math.Float64frombits(want[1]),
			math.Float64frombits(want[2]),
		}
		vals := [3]float64{s.EnergykWh, s.AccLatencySec, s.AvgPowerW}
		for i := range vals {
			if math.Abs(vals[i]-ref[i]) > 1e-6*(1+math.Abs(ref[i])) {
				t.Errorf("%s: metric %d = %v want ~%v", s.Policy, i, vals[i], ref[i])
			}
		}
	}
}
