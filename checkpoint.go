// Durable checkpoint/restore: Session.Checkpoint serializes the complete
// resumable state of a run at a decision-epoch boundary into a versioned,
// CRC-guarded snapshot; Restore rebuilds a Session from one that continues
// bitwise-identically to the uninterrupted run (see DESIGN.md §14 for the
// format and the per-tier determinism contract). WithAutoCheckpoint layers a
// crash-safe periodic snapshot file on top (atomic write-rename, keep-last-K).
package hierdrl

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"hierdrl/internal/checkpoint"
	"hierdrl/internal/cluster"
	"hierdrl/internal/sim"
	"hierdrl/internal/trace"
)

// Snapshot error sentinels, re-exported from internal/checkpoint so callers
// can classify Restore failures with errors.Is.
var (
	// ErrCorrupt marks a snapshot that is structurally broken: truncated,
	// bad magic, CRC mismatch, or internally inconsistent field values.
	ErrCorrupt = checkpoint.ErrCorrupt
	// ErrVersion marks a snapshot written by an incompatible format version.
	ErrVersion = checkpoint.ErrVersion
	// ErrConfigMismatch marks a snapshot whose embedded Config does not match
	// its header fingerprint (tampering) or whose structure contradicts the
	// configuration it declares.
	ErrConfigMismatch = checkpoint.ErrConfigMismatch
)

// Snapshot section names, in file order. Sections decouple the container from
// the layout: a reader locates each by name, so reordering or adding sections
// is a version-compatible change.
const (
	secConfig  = "config"
	secEngine  = "engine"
	secCluster = "cluster"
	secSession = "session"
	secAgent   = "agent"
	secAlloc   = "alloc"
	secMetrics = "metrics"
	secMerger  = "merger"
)

// fnv64a hashes b with FNV-1a (64-bit) — the snapshot's config fingerprint.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// configJSON marshals the session's validated config with the warmup trace
// zeroed: the trace is consumed at construction (its effect lives on in the
// agent weights, which the snapshot captures), and at paper scale it would
// dwarf the rest of the snapshot.
func (s *Session) configJSON() ([]byte, error) {
	shadow := s.cfg
	shadow.WarmupTrace = nil
	return json.Marshal(shadow)
}

// Checkpoint serializes the session's complete resumable state to w. It must
// be called at a decision-epoch boundary — any instant user code runs between
// Step / StepUntil / Drain calls qualifies, in both tiers (the parallel tier
// parks its workers at a barrier between epochs, so the lanes are quiescent
// exactly when the caller has control).
//
// The snapshot captures the engine clocks and pending timers, every queued
// and in-flight job, the cluster's power/reliability aggregates, the DRL
// agent (weights, optimizer moments, replay buffer, RNG chains), the
// allocator and per-server power-management policies, the fault clocks and
// retry bookkeeping, and the metrics series — everything Restore needs to
// continue the run bitwise-identically. It does not capture the Observer,
// the context, or the auto-checkpoint configuration; those re-attach through
// Restore's options.
//
// Checkpointing a closed session returns ErrSessionClosed; checkpointing a
// session whose run already failed (context cancellation, guard trip) returns
// the latched error — a partial failed run is not a resumable state.
func (s *Session) Checkpoint(w io.Writer) (err error) {
	if s.closed {
		return ErrSessionClosed
	}
	if s.err != nil {
		return fmt.Errorf("hierdrl: checkpoint of failed session: %w", s.err)
	}
	defer checkpoint.Catch(&err)

	cfgJSON, jerr := s.configJSON()
	if jerr != nil {
		return fmt.Errorf("hierdrl: checkpoint config: %w", jerr)
	}
	wr := checkpoint.NewWriter(fnv64a(cfgJSON))
	wr.Section(secConfig).Bytes(cfgJSON)

	// Register the remaining sections in file order up front; the writer
	// buffers them, so the fill order below can differ (the cluster fills
	// first because its job table indexes the engine's in-flight dispatches).
	engineEnc := wr.Section(secEngine)
	clusterEnc := wr.Section(secCluster)
	sessionEnc := wr.Section(secSession)
	agentEnc := wr.Section(secAgent)
	allocEnc := wr.Section(secAlloc)
	metricsEnc := wr.Section(secMetrics)
	mergerEnc := wr.Section(secMerger)

	// Parallel-tier dispatches already allocated but not yet committed to a
	// lane live only in the coordinator; hand them to the cluster so they
	// join its job table.
	var extra []*cluster.Job
	if s.sr != nil {
		for i := range s.sr.pends {
			extra = append(extra, s.sr.pends[i].job)
		}
	}
	idx := s.cl.SaveState(clusterEnc, extra)

	s.saveEngine(engineEnc, idx)
	s.saveSessionState(sessionEnc)

	if s.agent != nil {
		agentEnc.Bool(true)
		s.agent.SaveState(agentEnc)
	} else {
		agentEnc.Bool(false)
	}

	// The DRL agent doubles as the allocator and is already captured above;
	// every other allocator serializes as its own component.
	if s.cfg.Alloc == AllocDRL {
		allocEnc.Bool(false)
	} else {
		allocEnc.Bool(true)
		checkpoint.SaveComponent(allocEnc, s.alloc)
	}

	s.col.SaveState(metricsEnc)

	if s.sr != nil && s.sr.merger != nil {
		mergerEnc.Bool(true)
		s.sr.merger.SaveState(mergerEnc)
	} else {
		mergerEnc.Bool(false)
	}

	_, err = wr.WriteTo(w)
	return err
}

// saveEngine captures the execution tier: shard count, per-lane clock and
// sequence counters, and the tier-specific in-flight scheduling state (the
// strict tier's pump timer; the parallel tier's engine clock and uncommitted
// dispatches, by cluster job-table index).
func (s *Session) saveEngine(e *checkpoint.Enc, idx map[*cluster.Job]int32) {
	p := 1
	if s.sr != nil {
		p = s.sr.p
	}
	e.Int(p)
	for i := 0; i < p; i++ {
		lane := s.cl.Lane(i)
		e.F64(float64(lane.Now()))
		seq, prioSeq, nFired := lane.Counters()
		e.I64(seq)
		e.I64(prioSeq)
		e.I64(nFired)
	}
	if s.sr == nil {
		if s.pumpTimer.Pending() {
			e.Bool(true)
			e.F64(float64(s.pumpTimer.At()))
			e.I64(s.pumpTimer.Seq())
		} else {
			e.Bool(false)
		}
		return
	}
	e.F64(float64(s.sr.clock))
	e.Int(len(s.sr.pends))
	for i := range s.sr.pends {
		d := &s.sr.pends[i]
		e.I32(idx[d.job])
		e.Int(d.target)
		e.Int(d.shard)
		e.F64(float64(d.at))
	}
}

// pendRecBytes is a lower bound on one serialized parallel-tier dispatch
// (I32 job index + Int target + Int shard + F64 at).
const pendRecBytes = 4 + 8 + 8 + 8

// queuedJobBytes is a lower bound on one serialized pending arrival
// (Int ID + F64 arrival + F64 duration + NumResources × F64).
const queuedJobBytes = 8*3 + 8*trace.NumResources

// saveSessionState captures the ingestion and fault-retry layer: counters,
// the undispatched arrival queue, the per-job retry map (sorted by ID for a
// canonical byte stream), and the retry policy component.
func (s *Session) saveSessionState(e *checkpoint.Enc) {
	e.I64(s.ingested)
	e.Bool(s.finished)
	pending := s.queue[s.qhead:]
	e.Int(len(pending))
	for i := range pending {
		tj := &pending[i]
		e.Int(tj.ID)
		e.F64(tj.Arrival)
		e.F64(tj.Duration)
		for r := 0; r < trace.NumResources; r++ {
			e.F64(tj.Req[r])
		}
	}
	e.Bool(s.fm != nil)
	if s.fm != nil {
		ids := make([]int, 0, len(s.retry))
		for id := range s.retry {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		e.Int(len(ids))
		for _, id := range ids {
			ri := s.retry[id]
			e.Int(id)
			e.Int(ri.attempts)
			e.F64(ri.orig)
		}
		checkpoint.SaveComponent(e, s.rp)
	}
	e.I64(s.interrupted)
	e.I64(s.retried)
	e.I64(s.lost)
	e.F64(s.lostWork)
	e.I64(s.migrated)
	e.I64(s.domainOutages)
}

// Restore rebuilds a Session from a snapshot written by Checkpoint. The
// returned session continues exactly where the checkpointed one stopped:
// stepping it produces the same events, the same decisions, and — at Drain —
// a Result bitwise identical to the uninterrupted run's.
//
// The Config is embedded in the snapshot (warmup trace excluded — its effect
// lives in the restored agent weights), so opts carry only the re-attachable
// runtime state: WithObserver, WithContext, WithAutoCheckpoint. The execution
// tier is part of the snapshot; a WithShards option is ignored. Restore
// fails with ErrCorrupt, ErrVersion, or ErrConfigMismatch on damaged input,
// never with a partially built session.
func Restore(r io.Reader, opts ...SessionOption) (*Session, error) {
	rd, err := checkpoint.NewReader(r)
	if err != nil {
		return nil, err
	}

	cfg, err := restoreConfig(rd)
	if err != nil {
		return nil, err
	}

	engDec, err := rd.Section(secEngine)
	if err != nil {
		return nil, err
	}
	p := engDec.Int()
	if err := engDec.Sticky(); err != nil {
		return nil, err
	}
	if p < 1 || p > 1<<16 {
		return nil, fmt.Errorf("%w: shard count %d", ErrCorrupt, p)
	}

	// Rebuild an equivalent empty session; every stateful component inside it
	// is then overwritten from the snapshot, so the construction-time RNG
	// draws and initial fault timers are irrelevant.
	s, err := NewSession(cfg, append(append([]SessionOption{}, opts...), WithShards(p))...)
	if err != nil {
		return nil, fmt.Errorf("hierdrl: restore: rebuild session: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	// Lane clocks and sequence counters first: RestoreBegin wipes the
	// construction-time event queues, and the cluster's timer re-registration
	// below validates against the restored clocks.
	for i := 0; i < p; i++ {
		now := sim.Time(engDec.F64())
		seq := engDec.I64()
		prioSeq := engDec.I64()
		nFired := engDec.I64()
		if err := engDec.Sticky(); err != nil {
			return nil, err
		}
		if math.IsNaN(float64(now)) || now < 0 || nFired < 0 {
			return nil, fmt.Errorf("%w: lane %d clock %v, %d fired", ErrCorrupt, i, now, nFired)
		}
		s.cl.Lane(i).RestoreBegin(now, seq, prioSeq, nFired)
	}

	clDec, err := rd.Section(secCluster)
	if err != nil {
		return nil, err
	}
	table, err := s.cl.RestoreState(clDec)
	if err != nil {
		return nil, err
	}
	if err := clDec.Err(); err != nil {
		return nil, err
	}

	if err := s.restoreEngineTail(engDec, table); err != nil {
		return nil, err
	}
	if err := engDec.Err(); err != nil {
		return nil, err
	}

	sesDec, err := rd.Section(secSession)
	if err != nil {
		return nil, err
	}
	if err := s.restoreSessionState(sesDec); err != nil {
		return nil, err
	}
	if err := sesDec.Err(); err != nil {
		return nil, err
	}

	agDec, err := rd.Section(secAgent)
	if err != nil {
		return nil, err
	}
	hasAgent := agDec.Bool()
	if err := agDec.Sticky(); err != nil {
		return nil, err
	}
	if hasAgent != (s.agent != nil) {
		return nil, fmt.Errorf("%w: agent presence %v contradicts config", ErrCorrupt, hasAgent)
	}
	if hasAgent {
		if err := s.agent.RestoreState(agDec); err != nil {
			return nil, err
		}
	}
	if err := agDec.Err(); err != nil {
		return nil, err
	}

	alDec, err := rd.Section(secAlloc)
	if err != nil {
		return nil, err
	}
	hasAlloc := alDec.Bool()
	if err := alDec.Sticky(); err != nil {
		return nil, err
	}
	if hasAlloc != (s.cfg.Alloc != AllocDRL) {
		return nil, fmt.Errorf("%w: allocator presence %v contradicts config", ErrCorrupt, hasAlloc)
	}
	if hasAlloc {
		if err := checkpoint.RestoreComponent(alDec, s.alloc); err != nil {
			return nil, err
		}
	}
	if err := alDec.Err(); err != nil {
		return nil, err
	}

	mDec, err := rd.Section(secMetrics)
	if err != nil {
		return nil, err
	}
	if err := s.col.RestoreState(mDec); err != nil {
		return nil, err
	}
	if err := mDec.Err(); err != nil {
		return nil, err
	}

	mgDec, err := rd.Section(secMerger)
	if err != nil {
		return nil, err
	}
	hasMerger := mgDec.Bool()
	if err := mgDec.Sticky(); err != nil {
		return nil, err
	}
	if hasMerger != (s.sr != nil && s.sr.merger != nil) {
		return nil, fmt.Errorf("%w: merger presence %v contradicts config", ErrCorrupt, hasMerger)
	}
	if hasMerger {
		if err := s.sr.merger.RestoreState(mgDec); err != nil {
			return nil, err
		}
	}
	if err := mgDec.Err(); err != nil {
		return nil, err
	}

	ok = true
	return s, nil
}

// restoreConfig decodes and cross-checks the embedded Config: the section
// bytes must hash to the header fingerprint (the snapshot's identity), and
// the JSON must unmarshal cleanly.
func restoreConfig(rd *checkpoint.Reader) (Config, error) {
	var cfg Config
	cfgDec, err := rd.Section(secConfig)
	if err != nil {
		return cfg, err
	}
	cfgJSON := cfgDec.Bytes()
	if err := cfgDec.Err(); err != nil {
		return cfg, err
	}
	if got := fnv64a(cfgJSON); got != rd.Fingerprint() {
		return cfg, fmt.Errorf("%w: header fingerprint %016x but config hashes to %016x",
			ErrConfigMismatch, rd.Fingerprint(), got)
	}
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return cfg, fmt.Errorf("%w: config: %v", ErrCorrupt, err)
	}
	cfg.WarmupTrace = nil
	return cfg, nil
}

// restoreEngineTail decodes the tier-specific scheduling state that follows
// the per-lane counters: the strict tier's pump timer (re-registered with its
// exact original sequence number, preserving event order bit for bit) or the
// parallel tier's engine clock and uncommitted dispatches.
func (s *Session) restoreEngineTail(d *checkpoint.Dec, table []*cluster.Job) error {
	if s.sr == nil {
		if !d.Bool() {
			return d.Sticky()
		}
		at := sim.Time(d.F64())
		seq := d.I64()
		if err := d.Sticky(); err != nil {
			return err
		}
		if math.IsNaN(float64(at)) || at < s.sm.Now() {
			return fmt.Errorf("%w: pump timer at %v before clock %v", ErrCorrupt, at, s.sm.Now())
		}
		s.pumpTimer = s.sm.ScheduleRestored(at, seq, sessionPumpFire, s)
		return nil
	}
	clock := sim.Time(d.F64())
	n := d.SliceLen(pendRecBytes)
	if err := d.Sticky(); err != nil {
		return err
	}
	if math.IsNaN(float64(clock)) || clock < 0 {
		return fmt.Errorf("%w: engine clock %v", ErrCorrupt, clock)
	}
	s.sr.clock = clock
	for k := 0; k < n; k++ {
		ji := d.I32()
		target := d.Int()
		shard := d.Int()
		at := sim.Time(d.F64())
		if err := d.Sticky(); err != nil {
			return err
		}
		if ji < 0 || int(ji) >= len(table) {
			return fmt.Errorf("%w: dispatch %d references job %d of %d", ErrCorrupt, k, ji, len(table))
		}
		if target < 0 || target >= s.cl.M() || shard != s.cl.ShardOf(target) {
			return fmt.Errorf("%w: dispatch %d target %d shard %d", ErrCorrupt, k, target, shard)
		}
		if math.IsNaN(float64(at)) {
			return fmt.Errorf("%w: dispatch %d time is NaN", ErrCorrupt, k)
		}
		s.sr.pends = append(s.sr.pends, dispatch{job: table[ji], target: target, shard: shard, at: at})
	}
	return nil
}

// restoreSessionState decodes the ingestion and fault-retry layer written by
// saveSessionState, validating the arrival queue's (arrival, order) sort
// invariant and the fault-layer presence against the rebuilt config.
func (s *Session) restoreSessionState(d *checkpoint.Dec) error {
	s.ingested = d.I64()
	s.finished = d.Bool()
	nq := d.SliceLen(queuedJobBytes)
	if err := d.Sticky(); err != nil {
		return err
	}
	if s.ingested < 0 {
		return fmt.Errorf("%w: ingested %d", ErrCorrupt, s.ingested)
	}
	s.queue = s.queue[:0]
	s.qhead = 0
	for k := 0; k < nq; k++ {
		var tj trace.Job
		tj.ID = d.Int()
		tj.Arrival = d.F64()
		tj.Duration = d.F64()
		for r := 0; r < trace.NumResources; r++ {
			tj.Req[r] = d.F64()
		}
		if err := d.Sticky(); err != nil {
			return err
		}
		if math.IsNaN(tj.Arrival) || math.IsNaN(tj.Duration) || tj.Duration < 0 {
			return fmt.Errorf("%w: queued job %d arrival %v duration %v", ErrCorrupt, tj.ID, tj.Arrival, tj.Duration)
		}
		if k > 0 && tj.Arrival < s.queue[k-1].Arrival {
			return fmt.Errorf("%w: arrival queue out of order at %d", ErrCorrupt, k)
		}
		s.queue = append(s.queue, tj)
	}
	hasFaults := d.Bool()
	if err := d.Sticky(); err != nil {
		return err
	}
	if hasFaults != (s.fm != nil) {
		return fmt.Errorf("%w: fault layer presence %v contradicts config", ErrCorrupt, hasFaults)
	}
	if hasFaults {
		nr := d.SliceLen(8 + 8 + 8)
		if err := d.Sticky(); err != nil {
			return err
		}
		for k := 0; k < nr; k++ {
			id := d.Int()
			attempts := d.Int()
			orig := d.F64()
			if err := d.Sticky(); err != nil {
				return err
			}
			if attempts < 1 || math.IsNaN(orig) {
				return fmt.Errorf("%w: retry record for job %d: %d attempts, orig %v", ErrCorrupt, id, attempts, orig)
			}
			s.retry[id] = retryInfo{attempts: attempts, orig: orig}
		}
		if err := checkpoint.RestoreComponent(d, s.rp); err != nil {
			return err
		}
	}
	s.interrupted = d.I64()
	s.retried = d.I64()
	s.lost = d.I64()
	s.lostWork = d.F64()
	s.migrated = d.I64()
	s.domainOutages = d.I64()
	if err := d.Sticky(); err != nil {
		return err
	}
	if s.interrupted < 0 || s.retried < 0 || s.lost < 0 || math.IsNaN(s.lostWork) ||
		s.migrated < 0 || s.domainOutages < 0 {
		return fmt.Errorf("%w: fault tallies %d/%d/%d/%d/%d/%v", ErrCorrupt,
			s.interrupted, s.migrated, s.retried, s.lost, s.domainOutages, s.lostWork)
	}
	// The per-domain down counters are derived state: recompute them from the
	// restored server states rather than serializing a redundant copy.
	if s.domIdx != nil {
		for i := range s.domDown {
			s.domDown[i] = 0
		}
		for i := 0; i < s.cl.M(); i++ {
			if s.cl.Down(i) {
				s.domDown[s.domIdx[i]]++
			}
		}
	}
	return nil
}

// SaveWeights serializes only the DRL agent's online-network weights — the
// portable, architecture-checked export for transferring a trained policy
// across runs. It is not a checkpoint: optimizer moments, replay buffer, and
// RNG chains stay behind (use Checkpoint for exact resumption). Errors on
// sessions without a DRL agent.
func (s *Session) SaveWeights(w io.Writer) error {
	if s.agent == nil {
		return fmt.Errorf("hierdrl: SaveWeights: config %q has no DRL agent", s.cfg.Name)
	}
	return s.agent.SaveWeights(w)
}

// LoadWeights restores weights saved by SaveWeights into the session's DRL
// agent (online and target networks). The architecture must match. Errors on
// sessions without a DRL agent.
func (s *Session) LoadWeights(r io.Reader) error {
	if s.agent == nil {
		return fmt.Errorf("hierdrl: LoadWeights: config %q has no DRL agent", s.cfg.Name)
	}
	return s.agent.LoadWeights(r)
}

// Drained reports whether every ingested job has been dispatched and either
// completed or lost — the condition under which Drain stops on fault runs
// (whose crash/repair timers never exhaust the event queue). Callers driving
// their own Step loop use it the same way Drain does: stop at Drained on a
// fault-injected run, at Step reporting idle otherwise.
func (s *Session) Drained() bool { return s.drained() }

// FaultsEnabled reports whether the session injects failures
// (Config.Faults != FaultNone).
func (s *Session) FaultsEnabled() bool { return s.fm != nil }

// autoCheckpoint is the periodic snapshot-to-disk layer configured by
// WithAutoCheckpoint.
type autoCheckpoint struct {
	path  string
	every int64
	keep  int
	last  int64 // completed-job count at the previous snapshot
}

// autoKeep is how many rotated snapshot generations WithAutoCheckpoint
// retains: path (newest), path.1, path.2.
const autoKeep = 3

// WithAutoCheckpoint writes a snapshot of the session to path every
// everyNJobs completed jobs (checked at epoch boundaries inside Step,
// StepUntil, and Drain; everyNJobs < 1 is treated as 1). Each write is
// crash-safe: the snapshot lands in path+".tmp" first and is renamed over
// path only once fully written, and the previous generations are kept as
// path.1 and path.2 — a crash mid-write never destroys the last good
// snapshot. A write failure surfaces from the driving Step/StepUntil/Drain
// call without terminating the run: the session itself stays consistent and
// resumable, and the next boundary retries.
//
// The option applies to NewSession and Restore alike, so a resumed run keeps
// checkpointing to the same file.
func WithAutoCheckpoint(path string, everyNJobs int) SessionOption {
	return func(o *sessionOptions) {
		o.autoPath = path
		o.autoEvery = everyNJobs
	}
}

// autoTick writes a periodic snapshot if the completed-job threshold has
// passed since the last one. Called at epoch boundaries by the clock-advance
// methods; a no-op (one branch) when auto-checkpointing is off.
func (s *Session) autoTick() error {
	if s.auto == nil {
		return nil
	}
	done := s.cl.Completed()
	if done-s.auto.last < s.auto.every {
		return nil
	}
	s.auto.last = done
	if err := s.writeAutoCheckpoint(); err != nil {
		return fmt.Errorf("hierdrl: auto-checkpoint: %w", err)
	}
	return nil
}

// writeAutoCheckpoint performs one atomic snapshot write with rotation:
// serialize to path.tmp, shift the existing generations (path → path.1 →
// path.2), then rename the fresh file into place.
func (s *Session) writeAutoCheckpoint() error {
	tmp := s.auto.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	for g := s.auto.keep - 1; g >= 1; g-- {
		from := s.auto.path
		if g > 1 {
			from = fmt.Sprintf("%s.%d", s.auto.path, g-1)
		}
		to := fmt.Sprintf("%s.%d", s.auto.path, g)
		if err := os.Rename(from, to); err != nil && !os.IsNotExist(err) {
			os.Remove(tmp)
			return err
		}
	}
	return os.Rename(tmp, s.auto.path)
}
