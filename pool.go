package hierdrl

import (
	"runtime"
	"sync"
)

// runParallel executes every task through a bounded worker pool sized to
// the machine (errgroup-style, but dependency-free). All tasks run to
// completion even when one fails; the error returned is the failing task
// with the lowest index, so error selection is deterministic regardless of
// scheduling.
//
// Tasks must be independent: each experiment run owns its RNG chain
// (seeded from its config), its cluster, and its collector, and shares only
// immutable inputs (the trace), so concurrent runs produce bitwise the same
// results as sequential ones.
func runParallel(tasks []func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
